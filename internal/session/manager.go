package session

import (
	"fmt"
	"sort"
	"sync"

	"dbtouch/internal/core"
	"dbtouch/internal/sample"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Manager owns the shared immutable storage layer — one catalog, one
// sample store — and the registry of live sessions on top of it. All
// methods are safe for concurrent use.
type Manager struct {
	cfg     core.Config
	catalog *storage.Catalog

	mu       sync.Mutex
	sessions map[string]*Session
	samples  map[sampleKey]*sampleEntry
	// tick stamps dispatches for least-recently-used eviction.
	tick uint64
	// maxSessions caps live sessions; 0 means unlimited.
	maxSessions int
	evictions   int64
}

// sampleKey identifies one shared hierarchy: sample columns depend only
// on the base column identity and the requested depth.
type sampleKey struct {
	base   *storage.Column
	levels int
}

// sampleEntry single-flights construction of one shared hierarchy.
type sampleEntry struct {
	once   sync.Once
	shared *sample.Shared
	err    error
}

// NewManager builds a session manager whose sessions all run cfg
// (zero-valued fields inherit core.DefaultConfig, as in core.NewKernel).
func NewManager(cfg core.Config) *Manager {
	return &Manager{
		cfg:      cfg,
		catalog:  storage.NewCatalog(),
		sessions: make(map[string]*Session),
		samples:  make(map[sampleKey]*sampleEntry),
	}
}

// Catalog returns the shared catalog. Tables registered here are visible
// to every session.
func (m *Manager) Catalog() *storage.Catalog { return m.catalog }

// SetMaxSessions caps the number of live sessions; creating one past the
// cap evicts the least recently dispatched. Zero (the default) disables
// the cap.
func (m *Manager) SetMaxSessions(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maxSessions = n
}

// Evictions reports how many sessions the cap has evicted.
func (m *Manager) Evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// SessionStat is one session's row in a Stats snapshot.
type SessionStat struct {
	ID string
	// Started reports whether a worker goroutine owns the session.
	Started bool
	// QueueDepth counts enqueued-but-unfinished batches (0 for
	// synchronous sessions).
	QueueDepth int
	// LastUsed is the manager's dispatch tick at the session's last use;
	// lower means closer to LRU eviction.
	LastUsed uint64
}

// Stats is a point-in-time snapshot of the manager — the admission and
// scheduling signals (live sessions, eviction pressure, per-session
// backlog) an operator or a future scheduler watches.
type Stats struct {
	// Live counts registered sessions; Max is the SetMaxSessions cap
	// (0 = unlimited); Evictions counts sessions the cap has removed.
	Live      int
	Max       int
	Evictions int64
	// Sessions lists per-session rows sorted by id.
	Sessions []SessionStat
}

// Stats snapshots the manager. Sessions created or evicted concurrently
// may or may not appear; each row is internally consistent.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := Stats{Live: len(m.sessions), Max: m.maxSessions, Evictions: m.evictions}
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
		st.Sessions = append(st.Sessions, SessionStat{ID: s.id, LastUsed: s.lastUsed})
	}
	m.mu.Unlock()
	for i, s := range live {
		st.Sessions[i].Started = s.Started()
		st.Sessions[i].QueueDepth = s.QueueDepth()
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	return st
}

// sharedSamples is the core.SampleSource installed into every session's
// kernel: the first session to explore a column builds its sample
// hierarchy; later sessions (and concurrent racers) share it.
func (m *Manager) sharedSamples(base *storage.Column, levels int) (*sample.Shared, error) {
	key := sampleKey{base: base, levels: levels}
	m.mu.Lock()
	e, ok := m.samples[key]
	if !ok {
		e = &sampleEntry{}
		m.samples[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() {
		e.shared, e.err = sample.BuildShared(base, levels)
	})
	return e.shared, e.err
}

// Create registers a new session under id. The session's kernel shares
// the manager's catalog and sample store but owns its own virtual clock,
// screen, dispatcher and result log. Creating past the MaxSessions cap
// evicts the least recently dispatched session first.
func (m *Manager) Create(id string) (*Session, error) {
	k := core.NewKernel(m.cfg)
	k.ShareStorage(m.catalog, m.sharedSamples)
	s := &Session{id: id, manager: m, kernel: k}
	s.pendingCond = sync.NewCond(&s.pendingMu)

	m.mu.Lock()
	if _, exists := m.sessions[id]; exists {
		m.mu.Unlock()
		return nil, fmt.Errorf("session %q already exists", id)
	}
	m.tick++
	s.lastUsed = m.tick
	m.sessions[id] = s
	var victim *Session
	if m.maxSessions > 0 && len(m.sessions) > m.maxSessions {
		victim = m.lruLocked(id)
		if victim != nil {
			delete(m.sessions, victim.id)
			m.evictions++
		}
	}
	m.mu.Unlock()

	if victim != nil {
		victim.Close()
	}
	return s, nil
}

// lruLocked picks the least recently dispatched session other than keep.
// Caller holds m.mu.
func (m *Manager) lruLocked(keep string) *Session {
	var victim *Session
	for id, s := range m.sessions {
		if id == keep {
			continue
		}
		if victim == nil || s.lastUsed < victim.lastUsed {
			victim = s
		}
	}
	return victim
}

// Get resolves a session by id.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Len reports the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Sessions lists live session ids (unordered).
func (m *Manager) Sessions() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		out = append(out, id)
	}
	return out
}

// Dispatch routes a touch-event batch to the session identified by id —
// the touchos event stream is demultiplexed here, one hop above each
// session's own dispatcher. Batches for a started session are enqueued to
// its worker (asynchronous; returned results are nil — Drain then read
// Results); otherwise the batch runs synchronously and its results come
// back directly.
func (m *Manager) Dispatch(id string, events []touchos.TouchEvent) ([]core.Result, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("session %q not found", id)
	}
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		return nil, s.Enqueue(events)
	}
	return s.Apply(events)
}

// Evict removes the session and stops its worker, waiting for queued
// batches to finish. Shared storage (catalog, sample hierarchies) stays:
// it belongs to the manager, not the session. Reports whether the session
// existed.
func (m *Manager) Evict(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if !ok {
		return false
	}
	s.Close()
	return true
}

// Close evicts every session and waits for their workers to exit.
func (m *Manager) Close() {
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	for _, s := range all {
		s.Close()
	}
}
