package viz

import (
	"strings"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

func renderSetup(t *testing.T) (*core.Kernel, *core.Object) {
	t.Helper()
	k := core.NewKernel(core.DefaultConfig())
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i)
	}
	m, err := storage.NewMatrix("col", storage.NewIntColumn("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	obj, err := k.CreateColumnObject(m, 0, touchos.NewRect(2, 2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	return k, obj
}

func TestRenderDrawsObjectRectangle(t *testing.T) {
	k, _ := renderSetup(t)
	out := Render(k.Screen(), k.Objects(), nil, 0)
	if !strings.Contains(out, "+") || !strings.Contains(out, "|") {
		t.Fatalf("no rectangle in render:\n%s", out)
	}
	if !strings.Contains(out, "col.v") {
		t.Fatalf("object label missing:\n%s", out)
	}
}

func TestRenderShowsFreshResultThenFades(t *testing.T) {
	k, obj := renderSetup(t)
	r := core.Result{
		Kind: core.ScanValue, ObjectID: obj.ID(), TupleID: 500,
		Value: storage.IntValue(42),
		Time:  0, FadeAt: core.FadeAfter,
	}
	fresh := Render(k.Screen(), k.Objects(), []core.Result{r}, 100*time.Millisecond)
	if !strings.Contains(fresh, "42") {
		t.Fatalf("fresh result missing:\n%s", fresh)
	}
	gone := Render(k.Screen(), k.Objects(), []core.Result{r}, 2*time.Second)
	if strings.Contains(gone, "42") {
		t.Fatal("faded result still visible")
	}
}

func TestRenderDimsAgingResult(t *testing.T) {
	k, obj := renderSetup(t)
	r := core.Result{
		Kind: core.ScanValue, ObjectID: obj.ID(), TupleID: 500,
		Value: storage.IntValue(777777),
		Time:  0, FadeAt: core.FadeAfter,
	}
	aging := Render(k.Screen(), k.Objects(), []core.Result{r}, core.FadeAfter*7/10)
	if strings.Contains(aging, "777777") {
		t.Fatal("aging result should be dimmed")
	}
	if !strings.Contains(aging, "·") {
		t.Fatalf("dimmed glyphs missing:\n%s", aging)
	}
}

func TestRenderSummaryAndJoinLabels(t *testing.T) {
	k, obj := renderSetup(t)
	results := []core.Result{
		{Kind: core.SummaryValue, ObjectID: obj.ID(), TupleID: 100, Agg: 3.5, FadeAt: core.FadeAfter},
		{Kind: core.TuplePeek, ObjectID: obj.ID(), TupleID: 900,
			Tuple: []storage.Value{storage.IntValue(1), storage.StringValue("x")}, FadeAt: core.FadeAfter},
	}
	out := Render(k.Screen(), k.Objects(), results, time.Millisecond)
	if !strings.Contains(out, "3.5") {
		t.Fatalf("summary label missing:\n%s", out)
	}
	if !strings.Contains(out, "(1,x)") {
		t.Fatalf("tuple label missing:\n%s", out)
	}
}

func TestRenderSkipsUnknownObject(t *testing.T) {
	k, _ := renderSetup(t)
	r := core.Result{Kind: core.ScanValue, ObjectID: 999, Value: storage.IntValue(5), FadeAt: core.FadeAfter}
	out := Render(k.Screen(), k.Objects(), []core.Result{r}, time.Millisecond)
	if strings.Contains(out, "5\n") {
		t.Fatal("result for unknown object rendered")
	}
}

func TestCanvasBounds(t *testing.T) {
	c := NewCanvas(5, 5)
	c.set(-1, -1, 'x') // must not panic
	c.set(1000, 1000, 'x')
	c.text(-5, 2, "clipped")
	_ = c.String()
}
