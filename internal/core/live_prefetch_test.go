package core

import (
	"testing"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// TestLiveGrowthExtendsPrefetchFrontier pins the snapshot-aware prefetch
// contract: when a live table grows under a parked forward gesture, the
// repin-triggered warm resumes from the extrapolated frontier — the new
// rows are warm before the gesture resumes into them — and the warm-hit
// counters keep rising across epochs instead of the gesture paying cold
// misses at every version hop.
func TestLiveGrowthExtendsPrefetchFrontier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseSamples = false // track base tuple ids so index space is plain

	const initial = 6000
	vals := make([]int64, initial)
	for i := range vals {
		vals[i] = int64(i)
	}
	tbl, err := storage.NewTable("ev", storage.NewIntColumn("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	k := NewKernel(cfg)
	k.Catalog().RegisterLive(tbl)
	obj, err := k.CreateColumnObject(tbl.Snapshot().Matrix, 0, touchos.NewRect(2, 2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}

	next := int64(initial)
	grow := func(n int) {
		rows := make([][]storage.Value, n)
		for i := range rows {
			rows[i] = []storage.Value{storage.IntValue(next)}
			next++
		}
		if _, err := tbl.AppendBatch(rows); err != nil {
			t.Fatal(err)
		}
	}

	var prevHits int64
	for epoch := 0; epoch < 3; epoch++ {
		// A forward slide across the whole object parks the prefetch
		// frontier at the current end of the data...
		start := time.Duration(0)
		if epoch > 0 {
			start = k.Clock().Now() + time.Millisecond
		}
		if got := len(k.Apply(slideEvents(obj, 2*time.Second, start))); got == 0 {
			t.Fatalf("epoch %d: slide produced no results", epoch)
		}
		now := k.Clock().Now()
		k.RunIdle(now, now+time.Second)

		lvl, err := obj.hierarchy.Level(0)
		if err != nil {
			t.Fatal(err)
		}
		oldLen := lvl.Col.Len()
		hits := lvl.Tracker.Stats().WarmHits
		if hits <= prevHits {
			t.Fatalf("epoch %d: warm hits stalled at %d (previous %d)", epoch, hits, prevHits)
		}
		prevHits = hits

		// ...then the table grows while the finger is down-but-still, and
		// the batch-start repin must warm the appended tail from the
		// frontier, off the touch path.
		warmsBefore := k.Counters().Get("prefetch.grow_warms")
		grow(2500)
		k.Apply(nil)
		if got := k.Counters().Get("prefetch.grow_warms"); got != warmsBefore+1 {
			t.Fatalf("epoch %d: prefetch.grow_warms = %d, want %d", epoch, got, warmsBefore+1)
		}
		lvl, err = obj.hierarchy.Level(0)
		if err != nil {
			t.Fatal(err)
		}
		if got := lvl.Col.Len(); got != oldLen+2500 {
			t.Fatalf("epoch %d: rebound level holds %d rows, want %d", epoch, got, oldLen+2500)
		}
		if !lvl.Tracker.IsWarm(oldLen) {
			t.Fatalf("epoch %d: first appended row (index %d) is cold after the grow warm", epoch, oldLen)
		}
	}
}

// TestBackwardGestureSkipsGrowWarm pins the asymmetry: growth lands at
// the high end of the data, so a backward gesture (moving away from it)
// must not spend its idle budget warming rows it is not heading toward.
func TestBackwardGestureSkipsGrowWarm(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UseSamples = false

	vals := make([]int64, 6000)
	for i := range vals {
		vals[i] = int64(i)
	}
	tbl, err := storage.NewTable("ev", storage.NewIntColumn("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	k := NewKernel(cfg)
	k.Catalog().RegisterLive(tbl)
	obj, err := k.CreateColumnObject(tbl.Snapshot().Matrix, 0, touchos.NewRect(2, 2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}

	// Slide bottom-to-top: tuple ids decrease.
	f := obj.View().Frame()
	synth := gesture.Synth{}
	events := synth.Slide(
		touchos.Point{X: f.Origin.X + f.Size.W/2, Y: f.Origin.Y + f.Size.H - 0.05},
		touchos.Point{X: f.Origin.X + f.Size.W/2, Y: f.Origin.Y + 0.05},
		0, 2*time.Second,
	)
	k.Apply(events)
	now := k.Clock().Now()
	k.RunIdle(now, now+time.Second)

	rows := make([][]storage.Value, 2500)
	for i := range rows {
		rows[i] = []storage.Value{storage.IntValue(int64(6000 + i))}
	}
	if _, err := tbl.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	k.Apply(nil)
	if got := k.Counters().Get("prefetch.grow_warms"); got != 0 {
		t.Fatalf("backward gesture triggered %d grow warms, want 0", got)
	}
}
