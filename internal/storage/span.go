package storage

import "math"

// Span kernels: typed range operators over a column's native backing
// slices. They are the storage half of span-at-a-time slide execution —
// a slide gesture semantically covers a contiguous tuple range, so the
// hot path reads that range as one unit instead of round-tripping every
// cell through Value boxing. All kernels clamp their range to the column
// and iterate in ascending position order, so their results are
// bit-identical to a scalar loop over the same positions (for min/max and
// integer-valued sums, identical on any data; float sums share the same
// left-to-right addition order).

// clampRange clips [lo, hi) to [0, Len()).
func (c *Column) clampRange(lo, hi int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if n := c.Len(); hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// SumRange sums the float coercion of values [lo, hi) left to right and
// reports the count, without boxing. String cells coerce to their
// dictionary code (matching Column.Float).
func (c *Column) SumRange(lo, hi int) (sum float64, n int) {
	lo, hi = c.clampRange(lo, hi)
	switch c.typ {
	case Int64:
		for _, v := range c.ints[lo:hi] {
			sum += float64(v)
		}
	case Float64:
		for _, v := range c.flts[lo:hi] {
			sum += v
		}
	case Bool:
		for _, v := range c.bools[lo:hi] {
			sum += float64(v)
		}
	case String:
		for _, v := range c.codes[lo:hi] {
			sum += float64(v)
		}
	}
	return sum, hi - lo
}

// MinMaxRange reports the minimum and maximum float coercion over
// [lo, hi) and the count. Empty ranges report (+Inf, -Inf, 0); NaN values
// are skipped, matching a scalar `if v < min` loop.
func (c *Column) MinMaxRange(lo, hi int) (min, max float64, n int) {
	lo, hi = c.clampRange(lo, hi)
	min, max = math.Inf(1), math.Inf(-1)
	switch c.typ {
	case Int64:
		for _, raw := range c.ints[lo:hi] {
			v := float64(raw)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	case Float64:
		for _, v := range c.flts[lo:hi] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	case Bool:
		for _, raw := range c.bools[lo:hi] {
			v := float64(raw)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	case String:
		for _, raw := range c.codes[lo:hi] {
			v := float64(raw)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	return min, max, hi - lo
}

// CountRange reports how many stored values fall in [lo, hi) after
// clamping.
func (c *Column) CountRange(lo, hi int) int {
	lo, hi = c.clampRange(lo, hi)
	return hi - lo
}

// AddRangeTo feeds the float coercion of values [lo, hi) in ascending
// order into add — the per-value span path for order-sensitive consumers
// (Welford variance) that still avoids Value boxing and per-call type
// switches.
func (c *Column) AddRangeTo(lo, hi int, add func(float64)) int {
	lo, hi = c.clampRange(lo, hi)
	switch c.typ {
	case Int64:
		for _, v := range c.ints[lo:hi] {
			add(float64(v))
		}
	case Float64:
		for _, v := range c.flts[lo:hi] {
			add(v)
		}
	case Bool:
		for _, v := range c.bools[lo:hi] {
			add(float64(v))
		}
	case String:
		for _, v := range c.codes[lo:hi] {
			add(float64(v))
		}
	}
	return hi - lo
}

// RangeOp is a comparison operator for FilterRange, mirroring
// operator.CmpOp (which converts to it) so the storage layer needs no
// operator import.
type RangeOp uint8

// Filter comparison operators.
const (
	RangeEq RangeOp = iota
	RangeNe
	RangeLt
	RangeLe
	RangeGt
	RangeGe
)

// applyCmp interprets a three-way comparison result under op.
func (op RangeOp) applyCmp(c int) bool {
	switch op {
	case RangeEq:
		return c == 0
	case RangeNe:
		return c != 0
	case RangeLt:
		return c < 0
	case RangeLe:
		return c <= 0
	case RangeGt:
		return c > 0
	case RangeGe:
		return c >= 0
	default:
		return false
	}
}

// applyFloat compares a against b under op with Value.Compare's numeric
// semantics (plain float comparison; NaN fails every ordered test and
// compares equal-ish the way Compare's default branch does).
func (op RangeOp) applyFloat(a, b float64) bool {
	switch {
	case a < b:
		return op == RangeLt || op == RangeLe || op == RangeNe
	case a > b:
		return op == RangeGt || op == RangeGe || op == RangeNe
	default:
		return op == RangeEq || op == RangeLe || op == RangeGe
	}
}

// FilterRange appends to sel the positions in [lo, hi) whose value
// satisfies `value op operand` under Value.Compare semantics, and returns
// the extended selection vector. Numeric and mixed comparisons coerce
// both sides to float64 exactly as Value.Compare does; string columns
// compared against a string operand compare lexicographically, with the
// per-distinct-code outcome memoized so the scan never re-compares a
// repeated string.
func (c *Column) FilterRange(lo, hi int, op RangeOp, operand Value, sel []int32) []int32 {
	lo, hi = c.clampRange(lo, hi)
	if c.typ == String && operand.Type == String {
		pass := c.passByCode(op, operand)
		for i, code := range c.codes[lo:hi] {
			if pass[code] {
				sel = append(sel, int32(lo+i))
			}
		}
		return sel
	}
	b := operand.AsFloat()
	switch c.typ {
	case Int64:
		for i, v := range c.ints[lo:hi] {
			if op.applyFloat(float64(v), b) {
				sel = append(sel, int32(lo+i))
			}
		}
	case Float64:
		for i, v := range c.flts[lo:hi] {
			if op.applyFloat(v, b) {
				sel = append(sel, int32(lo+i))
			}
		}
	case Bool:
		for i, v := range c.bools[lo:hi] {
			if op.applyFloat(float64(v), b) {
				sel = append(sel, int32(lo+i))
			}
		}
	case String:
		// Numeric operand against a string column coerces each distinct
		// string once (Value.Compare parses the string side).
		pass := c.passByCode(op, operand)
		for i, code := range c.codes[lo:hi] {
			if pass[code] {
				sel = append(sel, int32(lo+i))
			}
		}
	}
	return sel
}

// FilterSel appends to out the positions from sel whose value satisfies
// `value op operand` — the conjunct-refinement kernel (evaluate the next
// WHERE conjunct only on survivors of the previous ones).
func (c *Column) FilterSel(sel []int32, op RangeOp, operand Value, out []int32) []int32 {
	n := c.Len()
	if c.typ == String {
		pass := c.passByCode(op, operand)
		for _, p := range sel {
			if p >= 0 && int(p) < n && pass[c.codes[p]] {
				out = append(out, p)
			}
		}
		return out
	}
	b := operand.AsFloat()
	switch c.typ {
	case Int64:
		for _, p := range sel {
			if p >= 0 && int(p) < n && op.applyFloat(float64(c.ints[p]), b) {
				out = append(out, p)
			}
		}
	case Float64:
		for _, p := range sel {
			if p >= 0 && int(p) < n && op.applyFloat(c.flts[p], b) {
				out = append(out, p)
			}
		}
	case Bool:
		for _, p := range sel {
			if p >= 0 && int(p) < n && op.applyFloat(float64(c.bools[p]), b) {
				out = append(out, p)
			}
		}
	}
	return out
}

// passKey identifies one memoized predicate-outcome table.
type passKey struct {
	op      RangeOp
	operand Value
}

// maxPassTables caps the per-column predicate memo. Columns are shared
// and live as long as the process, so without a cap every distinct
// (op, operand) a long-running session — or a stream of remote clients —
// ever filters with would pin an O(|dict|) table forever. At the cap an
// arbitrary table is evicted: tables are pure memos and rebuild on
// demand, so eviction never changes results.
const maxPassTables = 64

// passByCode evaluates the predicate once per distinct dictionary code of
// a string column, so the range scan is a table lookup per cell. Tables
// are memoized per (op, operand) on the column — WHERE conjuncts repeat
// across the touches of a gesture, and recomputing O(|dict|) outcomes per
// touch would dwarf the span scan itself. A table built before new
// strings were interned is extended lazily for the missing codes.
//
// The cache is mutex-guarded because sessions share loaded columns; the
// returned slice is safe to read outside the lock (entries are written
// once, before the slice is published, and extension builds on top of the
// published prefix without rewriting it).
func (c *Column) passByCode(op RangeOp, operand Value) []bool {
	n := c.dict.Len()
	if operand.Type == Float64 && math.IsNaN(operand.F) {
		// NaN never equals itself as a map key; keep it out of the cache.
		return c.extendPass(op, operand, nil, n)
	}
	key := passKey{op: op, operand: operand}
	c.passMu.Lock()
	defer c.passMu.Unlock()
	if pass, ok := c.passCache[key]; ok && len(pass) >= n {
		return pass
	}
	pass := c.extendPass(op, operand, c.passCache[key], n)
	if c.passCache == nil {
		c.passCache = make(map[passKey][]bool)
	}
	if _, exists := c.passCache[key]; !exists && len(c.passCache) >= maxPassTables {
		for victim := range c.passCache {
			delete(c.passCache, victim)
			break
		}
	}
	c.passCache[key] = pass
	return pass
}

// extendPass appends outcomes for dictionary codes [len(pass), n).
func (c *Column) extendPass(op RangeOp, operand Value, pass []bool, n int) []bool {
	for code := len(pass); code < n; code++ {
		v := StringValue(c.dict.Lookup(int32(code)))
		pass = append(pass, op.applyCmp(v.Compare(operand)))
	}
	return pass
}
