// Package gateway is the fleet front door: a reverse proxy that routes
// the dbtouch wire protocol across N dbtouch-serve backends and makes
// backend failure invisible to clients. Sessions are placed by
// rendezvous hashing over the currently-ready backends and pinned in an
// explicit table; every backend is health-checked actively (GET
// /healthz) behind a per-backend circuit breaker with flap damping, so
// a bouncing backend is readmitted only after consecutive successful
// probes — and only probe traffic touches a half-open backend, never a
// thundering herd of client retries.
//
// The proxy path is resilient by construction: per-attempt deadlines,
// capped exponential backoff with full jitter (the shared
// protocol.Backoff policy), Retry-After honored on 503. Mutating
// requests are stamped with a per-session ReqID before forwarding, so a
// retried request whose response was lost in flight is answered from
// the session's dedupe cache instead of executing twice — which is what
// makes retrying performs safe at all.
//
// Failover is resume-based: all backends share one -session-dir, every
// executed request is teed into the session's durable log by whichever
// backend is pinned, and when that backend dies the gateway re-pins the
// session and replays OpResume on the new backend before forwarding the
// in-flight request. The client observes a slower request, not a lost
// session. A draining backend (SIGTERM) flips its /healthz to
// "draining"; the gateway stops routing to it and proactively migrates
// its pinned sessions the same way.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dbtouch/internal/protocol"
)

// ErrNoBackends reports that no backend is currently ready (all tripped,
// draining, or none configured).
var ErrNoBackends = errors.New("gateway: no ready backend")

// maxProxyRequestBytes bounds one forwarded request body (matches the
// server's own /rpc bound).
const maxProxyRequestBytes = 1 << 20

// maxProxyResponseBytes bounds one forwarded response body (matches the
// client's own decode bound).
const maxProxyResponseBytes = 64 << 20

// Gateway option defaults.
const (
	DefaultRequestTimeout   = 30 * time.Second
	DefaultHealthInterval   = time.Second
	DefaultFailThreshold    = 3
	DefaultSuccessThreshold = 2
	DefaultOpenCooldown     = 5 * time.Second
)

// Options configures a Gateway. Zero durations/counts select the
// defaults above.
type Options struct {
	// Backends are the dbtouch-serve roots to front, e.g.
	// "http://127.0.0.1:8081". A bare host:port gets http:// prepended.
	// All backends must share one -session-dir for failover to work.
	Backends []string
	// Retry is the proxy path's backoff policy (shared protocol.Backoff
	// semantics: capped exponential, full jitter, Retry-After floored).
	Retry protocol.Backoff
	// RequestTimeout bounds one forwarded /rpc attempt (default 30s).
	// Streams are never bounded.
	RequestTimeout time.Duration
	// HealthInterval is the active /healthz probe period (default 1s).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (default: HealthInterval).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive failures trip a backend's
	// breaker open (default 3) — the flap damping on the way down.
	FailThreshold int
	// SuccessThreshold is how many consecutive half-open probe successes
	// close the breaker again (default 2) — the flap damping on the way
	// back up.
	SuccessThreshold int
	// OpenCooldown is how long an open breaker waits before the prober
	// tries the backend again, half-open (default 5s).
	OpenCooldown time.Duration
	// Logf, when set, receives one line per state transition (trip,
	// recovery, drain, failover). Nil is silent.
	Logf func(format string, args ...any)
}

// sessEntry is one session's pin-table row: the backend it lives on and
// the ReqID sequence. The entry mutex serializes everything the gateway
// does for that session — forwards, failover resumes, migration — so a
// session's durable log always has exactly one writer.
type sessEntry struct {
	mu  sync.Mutex
	b   *backend
	seq uint64
}

// Gateway fronts a fleet of dbtouch-serve backends. Create with New,
// serve Handler(), stop with Close.
type Gateway struct {
	opts     Options
	backends []*backend
	client   *http.Client
	instance string // distinguishes this gateway's ReqIDs across restarts

	mu     sync.Mutex
	pins   map[string]*sessEntry
	tables map[string]*sync.Mutex // per-table append fan-out serialization
	closed bool

	done chan struct{}
	wg   sync.WaitGroup

	// Counters for /gatewayz.
	failovers  atomic.Int64
	migrations atomic.Int64
	resumes    atomic.Int64
	replayed   atomic.Int64
	retries    atomic.Int64
}

// New builds a gateway over the given backends and starts its health
// prober. Close releases it.
func New(opts Options) (*Gateway, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	g := &Gateway{
		opts:     opts,
		client:   &http.Client{},
		instance: strconv.FormatInt(time.Now().UnixNano(), 36),
		pins:     make(map[string]*sessEntry),
		tables:   make(map[string]*sync.Mutex),
		done:     make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, addr := range opts.Backends {
		base := strings.TrimSuffix(addr, "/")
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		if seen[base] {
			return nil, fmt.Errorf("gateway: duplicate backend %s", base)
		}
		seen[base] = true
		g.backends = append(g.backends, &backend{base: base})
	}
	g.wg.Add(1)
	go g.healthLoop()
	return g, nil
}

// Close stops the health prober. In-flight forwards finish on their own
// deadlines.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	close(g.done)
	g.wg.Wait()
}

func (g *Gateway) requestTimeout() time.Duration {
	if g.opts.RequestTimeout > 0 {
		return g.opts.RequestTimeout
	}
	return DefaultRequestTimeout
}

func (g *Gateway) healthInterval() time.Duration {
	if g.opts.HealthInterval > 0 {
		return g.opts.HealthInterval
	}
	return DefaultHealthInterval
}

func (g *Gateway) probeTimeout() time.Duration {
	if g.opts.ProbeTimeout > 0 {
		return g.opts.ProbeTimeout
	}
	return g.healthInterval()
}

func (g *Gateway) failThreshold() int {
	if g.opts.FailThreshold > 0 {
		return g.opts.FailThreshold
	}
	return DefaultFailThreshold
}

func (g *Gateway) successThreshold() int {
	if g.opts.SuccessThreshold > 0 {
		return g.opts.SuccessThreshold
	}
	return DefaultSuccessThreshold
}

func (g *Gateway) openCooldown() time.Duration {
	if g.opts.OpenCooldown > 0 {
		return g.opts.OpenCooldown
	}
	return DefaultOpenCooldown
}

func (g *Gateway) logf(format string, args ...any) {
	if g.opts.Logf != nil {
		g.opts.Logf(format, args...)
	}
}

// healthLoop probes every backend each interval. Probes run
// sequentially: exactly one gateway probe touches a half-open backend
// per tick, which is the no-thundering-herd property the breaker's
// half-open state exists for.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	t := time.NewTicker(g.healthInterval())
	defer t.Stop()
	for {
		select {
		case <-g.done:
			return
		case <-t.C:
			for _, b := range g.backends {
				g.probe(b)
			}
		}
	}
}

// probe health-checks one backend and feeds the result to its breaker.
func (g *Gateway) probe(b *backend) {
	state, openedAt := b.breakerState()
	if state == BreakerOpen {
		if time.Since(openedAt) < g.openCooldown() {
			return // still cooling down; nothing talks to it
		}
		b.toHalfOpen()
		g.logf("gateway: backend %s half-open, probing", b.base)
	}
	b.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), g.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return
	}
	res, err := g.client.Do(req)
	var status int
	var body string
	if err == nil {
		raw, _ := io.ReadAll(io.LimitReader(res.Body, 256))
		res.Body.Close()
		status, body = res.StatusCode, string(raw)
	}
	switch {
	case err == nil && strings.Contains(body, "draining"):
		// Alive but on the way out: not a breaker failure — the process
		// answers and keeps serving in-flight sessions — but no new
		// traffic, and its pinned sessions move off proactively.
		b.noteSuccess(true, g.successThreshold())
		if b.setDraining(true) {
			g.logf("gateway: backend %s draining, migrating its sessions", b.base)
			g.wg.Add(1)
			go func() {
				defer g.wg.Done()
				g.migrateFrom(b)
			}()
		}
	case err == nil && status == http.StatusOK:
		b.setDraining(false)
		if b.noteSuccess(true, g.successThreshold()) {
			g.logf("gateway: backend %s recovered, breaker closed", b.base)
		}
	default:
		b.probeFails.Add(1)
		if b.noteFailure(g.failThreshold()) {
			g.logf("gateway: backend %s unhealthy, breaker open (probe: status=%d err=%v)", b.base, status, err)
		}
	}
}

// route picks the backend for a session: rendezvous (highest random
// weight) hashing over the ready backends, excluding one if asked. Every
// gateway instance computes the same placement for the same ready set,
// and losing a backend moves only that backend's sessions.
func (g *Gateway) route(session string, exclude *backend) (*backend, error) {
	var best *backend
	var bestScore uint64
	for _, b := range g.backends {
		if b == exclude || !b.ready() {
			continue
		}
		h := fnv.New64a()
		io.WriteString(h, session)
		h.Write([]byte{0})
		io.WriteString(h, b.base)
		if score := h.Sum64(); best == nil || score > bestScore {
			best, bestScore = b, score
		}
	}
	if best == nil {
		return nil, ErrNoBackends
	}
	return best, nil
}

// entry returns the session's pin-table row, creating it on first use.
func (g *Gateway) entry(session string) *sessEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.pins[session]
	if !ok {
		e = &sessEntry{}
		g.pins[session] = e
	}
	return e
}

// dropEntry removes a session from the pin table (after eviction).
func (g *Gateway) dropEntry(session string) {
	g.mu.Lock()
	delete(g.pins, session)
	g.mu.Unlock()
}

// tableLock returns the per-table mutex serializing append fan-out.
func (g *Gateway) tableLock(table string) *sync.Mutex {
	g.mu.Lock()
	defer g.mu.Unlock()
	mu, ok := g.tables[table]
	if !ok {
		mu = &sync.Mutex{}
		g.tables[table] = mu
	}
	return mu
}

// rpcResult is one forwarded response: the raw bytes to relay verbatim
// (byte-transparency — the gateway never re-encodes a backend response)
// plus the decoded envelope for control flow only.
type rpcResult struct {
	status     int
	retryAfter time.Duration
	body       []byte
	resp       protocol.Response
}

// post forwards one raw /rpc body to a backend under the per-attempt
// deadline.
func (g *Gateway) post(b *backend, raw []byte) (rpcResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), g.requestTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/rpc", bytes.NewReader(raw))
	if err != nil {
		return rpcResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := g.client.Do(req)
	if err != nil {
		return rpcResult{}, err
	}
	defer res.Body.Close()
	body, err := io.ReadAll(io.LimitReader(res.Body, maxProxyResponseBytes))
	if err != nil {
		return rpcResult{}, err
	}
	out := rpcResult{status: res.StatusCode, body: body}
	if s := res.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			out.retryAfter = time.Duration(n) * time.Second
		}
	}
	out.resp, _ = protocol.DecodeResponse(body)
	return out, nil
}

// stampedOp lists the session-scoped mutating ops the gateway stamps a
// ReqID onto — exactly the ops the server's durability layer logs, so a
// retried lost-response request dedupes instead of double-executing.
func stampedOp(op string) bool {
	switch op {
	case protocol.OpOpen, protocol.OpCreate, protocol.OpConfigure,
		protocol.OpPerform, protocol.OpIdle, protocol.OpPin:
		return true
	}
	return false
}

// isDraining reports whether a 503 came from a draining backend's
// admission gate (as opposed to genuine overload): route elsewhere
// immediately instead of backing off against a server that is leaving.
func isDraining(res rpcResult) bool {
	return res.status == http.StatusServiceUnavailable &&
		strings.Contains(res.resp.Error, "draining")
}

// resumeOn replays a session's durable log on a backend before traffic
// lands there — the failover move. Failures are tolerated: a session
// that was never opened (or a server without durability) has no log,
// and the forwarded request that follows surfaces the truth either way.
func (g *Gateway) resumeOn(b *backend, session string) {
	raw, err := json.Marshal(protocol.Request{V: protocol.Version, Op: protocol.OpResume, Session: session})
	if err != nil {
		return
	}
	res, err := g.post(b, raw)
	if err != nil || !res.resp.OK {
		return
	}
	g.resumes.Add(1)
	g.replayed.Add(int64(res.resp.Replayed))
}

// dispatch routes one decoded request down the matching forward path.
// raw is the client's original body, relayed untouched whenever the
// gateway adds nothing (byte-transparency).
func (g *Gateway) dispatch(req protocol.Request, raw []byte) (rpcResult, error) {
	switch {
	case req.Op == protocol.OpAppend:
		return g.forwardAppend(req, raw)
	case req.Session != "":
		return g.forwardSession(req)
	default:
		return g.forwardAny(raw)
	}
}

// forwardSession forwards one session-scoped request to its pinned
// backend, stamping a ReqID on mutating ops, retrying overload with
// backoff, and failing over by resume when the backend dies under it.
// The entry lock makes the whole sequence atomic per session.
func (g *Gateway) forwardSession(req protocol.Request) (rpcResult, error) {
	e := g.entry(req.Session)
	e.mu.Lock()
	defer e.mu.Unlock()
	if req.ReqID == "" && stampedOp(req.Op) {
		e.seq++
		req.ReqID = fmt.Sprintf("gw-%s-%d", g.instance, e.seq)
	}
	// Re-marshal rather than forwarding raw: the ReqID stamp requires
	// it, and json round-trips the request losslessly (the client's V is
	// preserved, so version echo behaves as if the client spoke direct).
	raw, err := json.Marshal(req)
	if err != nil {
		return rpcResult{}, err
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		b := e.b
		if b == nil || !b.ready() {
			nb, rerr := g.route(req.Session, nil)
			if rerr != nil {
				lastErr = rerr
				if attempt >= g.opts.Retry.MaxAttempts() {
					break
				}
				g.retries.Add(1)
				time.Sleep(g.opts.Retry.Delay(attempt, 0))
				continue
			}
			if b != nil && nb != b {
				// The pin moved while we weren't looking (its backend
				// tripped or drained): replay the session's log first.
				g.failovers.Add(1)
				g.resumeOn(nb, req.Session)
			}
			b, e.b = nb, nb
		}
		res, err := g.post(b, raw)
		if err == nil {
			if res.status == http.StatusServiceUnavailable {
				if isDraining(res) {
					if b.setDraining(true) {
						g.logf("gateway: backend %s draining (admission gate)", b.base)
					}
					e.b = nil // re-route next iteration
					lastErr = fmt.Errorf("gateway: backend %s is draining", b.base)
					if attempt >= g.opts.Retry.MaxAttempts() {
						return res, nil // pass the 503 through
					}
					continue
				}
				// Genuine overload: same backend, Retry-After honored.
				if attempt >= g.opts.Retry.MaxAttempts() {
					return res, nil
				}
				g.retries.Add(1)
				time.Sleep(g.opts.Retry.Delay(attempt, res.retryAfter))
				continue
			}
			if req.Op == protocol.OpEvict && res.resp.OK {
				g.dropEntry(req.Session)
			}
			return res, nil
		}
		// Transport failure: the request may or may not have executed —
		// its ReqID makes the retry safe. Feed the breaker, re-pin, and
		// replay the log on the replacement before retrying.
		lastErr = err
		if b.noteFailure(g.failThreshold()) {
			g.logf("gateway: backend %s failed on request path, breaker open: %v", b.base, err)
		}
		if attempt >= g.opts.Retry.MaxAttempts() {
			break
		}
		nb, rerr := g.route(req.Session, b)
		if rerr != nil {
			// Nowhere else to go: back off and let the same backend (or
			// a probe-recovered one) take the retry.
			e.b = nil
			g.retries.Add(1)
			time.Sleep(g.opts.Retry.Delay(attempt, 0))
			continue
		}
		g.failovers.Add(1)
		g.resumeOn(nb, req.Session)
		e.b = nb
	}
	return rpcResult{}, fmt.Errorf("%w: session %q: %v", protocol.ErrRetriesExhausted, req.Session, lastErr)
}

// forwardAppend fans an append out to every ready backend: each backend
// holds its own in-memory copy of the live tables, so all of them must
// observe every append or their session states diverge. The per-table
// lock keeps concurrent appends in one order everywhere. The first
// backend's response is the client's answer.
func (g *Gateway) forwardAppend(req protocol.Request, raw []byte) (rpcResult, error) {
	mu := g.tableLock(req.Table)
	mu.Lock()
	defer mu.Unlock()
	var first *rpcResult
	var lastErr error
	for _, b := range g.backends {
		if !b.ready() {
			continue
		}
		res, err := g.post(b, raw)
		if err != nil {
			lastErr = err
			if b.noteFailure(g.failThreshold()) {
				g.logf("gateway: backend %s failed on append fan-out, breaker open: %v", b.base, err)
			}
			continue
		}
		if first == nil {
			r := res
			first = &r
		}
	}
	if first == nil {
		if lastErr == nil {
			lastErr = ErrNoBackends
		}
		return rpcResult{}, lastErr
	}
	return *first, nil
}

// forwardAny forwards a session-less request (stats, unknown ops) to the
// first ready backend, trying the next on transport failure.
func (g *Gateway) forwardAny(raw []byte) (rpcResult, error) {
	var lastErr error = ErrNoBackends
	for _, b := range g.backends {
		if !b.ready() {
			continue
		}
		res, err := g.post(b, raw)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if b.noteFailure(g.failThreshold()) {
			g.logf("gateway: backend %s failed, breaker open: %v", b.base, err)
		}
	}
	return rpcResult{}, lastErr
}

// migrateFrom re-pins every session living on b to a healthy backend,
// replaying each session's log there first. Called when b starts
// draining; each session's entry lock serializes the move against
// in-flight forwards, so the durable log never has two writers.
func (g *Gateway) migrateFrom(b *backend) {
	g.mu.Lock()
	type pinned struct {
		id string
		e  *sessEntry
	}
	var sessions []pinned
	for id, e := range g.pins {
		sessions = append(sessions, pinned{id, e})
	}
	g.mu.Unlock()
	for _, s := range sessions {
		s.e.mu.Lock()
		if s.e.b == b {
			if nb, err := g.route(s.id, b); err == nil {
				g.resumeOn(nb, s.id)
				s.e.b = nb
				g.migrations.Add(1)
				g.logf("gateway: migrated session %q %s -> %s", s.id, b.base, nb.base)
			} else {
				s.e.b = nil // re-pin lazily when a backend comes back
			}
		}
		s.e.mu.Unlock()
	}
}

// Stats is the /gatewayz snapshot.
type Stats struct {
	Backends []BackendStats    `json:"backends"`
	Sessions map[string]string `json:"sessions,omitempty"` // session -> backend
	// Failovers counts re-pins forced by backend failure; Migrations
	// counts proactive drain-time re-pins; Resumes/ReplayedRequests
	// count the log replays that made them invisible; Retries counts
	// backed-off attempts on the proxy path.
	Failovers        int64 `json:"failovers"`
	Migrations       int64 `json:"migrations"`
	Resumes          int64 `json:"resumes"`
	ReplayedRequests int64 `json:"replayedRequests"`
	Retries          int64 `json:"retries"`
}

// Stats snapshots the gateway's routing state.
func (g *Gateway) Stats() Stats {
	st := Stats{
		Failovers:        g.failovers.Load(),
		Migrations:       g.migrations.Load(),
		Resumes:          g.resumes.Load(),
		ReplayedRequests: g.replayed.Load(),
		Retries:          g.retries.Load(),
	}
	for _, b := range g.backends {
		st.Backends = append(st.Backends, b.snapshot())
	}
	g.mu.Lock()
	type row struct {
		id string
		e  *sessEntry
	}
	rows := make([]row, 0, len(g.pins))
	for id, e := range g.pins {
		rows = append(rows, row{id, e})
	}
	g.mu.Unlock()
	st.Sessions = make(map[string]string, len(rows))
	for _, r := range rows {
		r.e.mu.Lock()
		b := r.e.b
		r.e.mu.Unlock()
		if b != nil {
			st.Sessions[r.id] = b.base
		}
	}
	return st
}

// anyReady reports whether at least one backend can take traffic.
func (g *Gateway) anyReady() bool {
	for _, b := range g.backends {
		if b.ready() {
			return true
		}
	}
	return false
}

// Handler serves the gateway's HTTP surface: the protocol endpoints
// /rpc and /stream (drop-in for a dbtouch-serve address), /healthz for
// whatever fronts the gateway itself, and /gatewayz for operators.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rpc", g.handleRPC)
	mux.HandleFunc("/stream", g.handleStream)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/gatewayz", g.handleGatewayz)
	return mux
}

func (g *Gateway) handleRPC(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyRequestBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := protocol.DecodeRequest(body)
	if err != nil {
		// Malformed requests are answered at the edge, like the server.
		writeEnvelope(w, protocol.Errorf("%v", err), 0)
		return
	}
	res, err := g.dispatch(req, body)
	if err != nil {
		resp := protocol.Overloadedf("gateway: %v", err)
		resp.V = req.V
		writeEnvelope(w, resp, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if res.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(res.retryAfter/time.Second)))
	}
	if res.status != 0 && res.status != http.StatusOK {
		w.WriteHeader(res.status)
	}
	w.Write(res.body)
}

// writeEnvelope emits a gateway-originated response envelope; overloaded
// envelopes get the 503 + Retry-After rendering clients already speak.
func writeEnvelope(w http.ResponseWriter, resp protocol.Response, v int) {
	if v > 0 {
		resp.V = v
	}
	w.Header().Set("Content-Type", "application/json")
	data, err := protocol.EncodeResponse(resp)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if resp.Overloaded {
		ra := resp.RetryAfter
		if ra <= 0 {
			ra = protocol.DefaultRetryAfterSec
		}
		w.Header().Set("Retry-After", strconv.Itoa(ra))
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	w.Write(data)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if g.anyReady() {
		w.Write([]byte("ready\n"))
		return
	}
	w.WriteHeader(http.StatusServiceUnavailable)
	w.Write([]byte("starting\n"))
}

func (g *Gateway) handleGatewayz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(g.Stats(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}
