package protocol

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"dbtouch/internal/gesture"
)

// Convenience calls wrapping Client.Do, one per protocol op.

// Open creates a session on the server.
func (c *Client) Open(session string) error {
	_, err := c.Do(Request{Op: OpOpen, Session: session})
	return err
}

// Evict removes a session on the server.
func (c *Client) Evict(session string) error {
	_, err := c.Do(Request{Op: OpEvict, Session: session})
	return err
}

// CreateColumn places one column of a table on the session's screen and
// binds it to name, returning the kernel object id.
func (c *Client) CreateColumn(session, name, table, column string, x, y, w, h float64) (int, error) {
	resp, err := c.Do(Request{
		Op: OpCreate, Session: session, Object: name,
		Create: &CreateSpec{Table: table, Column: column, X: x, Y: y, W: w, H: h},
	})
	return resp.ObjectID, err
}

// CreateTable places a whole table on the session's screen under name.
func (c *Client) CreateTable(session, name, table string, x, y, w, h float64) (int, error) {
	resp, err := c.Do(Request{
		Op: OpCreate, Session: session, Object: name,
		Create: &CreateSpec{Table: table, X: x, Y: y, W: w, H: h},
	})
	return resp.ObjectID, err
}

// Configure applies a touch-configuration delta to a named object.
func (c *Client) Configure(session, name string, spec ActionsSpec) error {
	_, err := c.Do(Request{Op: OpConfigure, Session: session, Object: name, Actions: &spec})
	return err
}

// Perform executes a gesture description against a named object and
// returns the frames it produced. The description's Target is stamped
// server-side from the name.
func (c *Client) Perform(session, name string, g gesture.Gesture) ([]ResultFrame, error) {
	resp, err := c.Do(Request{Op: OpPerform, Session: session, Object: name, Gesture: &g})
	return resp.Results, err
}

// Append appends rows to a live table on the server and returns the new
// snapshot epoch and total row count. Cells are coerced server-side
// (JSON numbers arrive as float64; integer columns coerce them back).
// A rate-limited append surfaces as an overloaded error with Retry-After.
func (c *Client) Append(table string, rows [][]any) (epoch uint64, total int, err error) {
	resp, err := c.Do(Request{Op: OpAppend, Table: table, Rows: rows})
	if err != nil {
		return 0, 0, err
	}
	return resp.Epoch, resp.Rows, nil
}

// Idle advances the session's virtual time with no touch activity.
func (c *Client) Idle(session string, d time.Duration) error {
	_, err := c.Do(Request{Op: OpIdle, Session: session, Idle: d})
	return err
}

// Resume re-materializes an evicted or crashed session from the
// server's persisted request log, returning how many logged requests
// the server replayed. Resuming a session that is already live succeeds
// with 0. Requires a server running with session durability
// (dbtouch-serve -session-dir).
func (c *Client) Resume(session string) (replayed int, err error) {
	resp, err := c.Do(Request{Op: OpResume, Session: session})
	return resp.Replayed, err
}

// Stats snapshots the server's session manager.
func (c *Client) Stats() (StatsFrame, error) {
	resp, err := c.Do(Request{Op: OpStats})
	if err != nil {
		return StatsFrame{}, err
	}
	if resp.Stats == nil {
		return StatsFrame{}, fmt.Errorf("protocol: stats response carried no stats")
	}
	return *resp.Stats, nil
}

// Stream subscribes to a session's live results and invokes fn for each
// frame until fn returns false, the context is cancelled, or the server
// closes the stream. buffer sizes the server-side ring (0 = default).
// The client offers the binary columnar encoding and falls back to v1
// NDJSON if the server predates it — either side can be older than the
// other, and fn sees identical frames regardless of which encoding won.
func (c *Client) Stream(ctx context.Context, session string, buffer int, fn func(ResultFrame) bool) error {
	return c.streamWith(ctx, session, buffer, BinaryContentType+", "+NDJSONContentType, fn)
}

// StreamNDJSON is Stream pinned to the v1 NDJSON encoding — what a
// pre-binary client sends, and the record/replay ground truth.
func (c *Client) StreamNDJSON(ctx context.Context, session string, buffer int, fn func(ResultFrame) bool) error {
	return c.streamWith(ctx, session, buffer, NDJSONContentType, fn)
}

// StreamResumed is Stream with transparent reconnect: when the stream
// drops — the server restarted, or the session was LRU-evicted and its
// subscriptions closed — the client resumes the session from its
// persisted log and reopens the stream, so fn keeps seeing frames
// across session death. Frames emitted while disconnected are not
// replayed (subscriptions observe results from the moment they attach);
// what reconnect guarantees is that the session's state continues
// exactly where its log left off. Returns nil when ctx is cancelled or
// fn returns false; a drop that cannot be resumed (session wire-evicted,
// server unreachable, durability disabled) returns the resume error.
func (c *Client) StreamResumed(ctx context.Context, session string, buffer int, fn func(ResultFrame) bool) error {
	accept := BinaryContentType + ", " + NDJSONContentType
	resumed := false
	attempt := 0
	for {
		fs, err := c.OpenStream(ctx, session, buffer, accept)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			if resumed {
				// A resume already happened and the stream still won't
				// open. With a retry policy, back off and try again (the
				// server may be mid-restart); otherwise surface.
				if c.Retry != nil && attempt < c.Retry.MaxAttempts() {
					if !c.Retry.wait(ctx, attempt, 0) {
						return nil
					}
					attempt++
					resumed = false
					continue
				}
				if c.Retry != nil {
					err = errors.Join(ErrRetriesExhausted, err)
				}
				return fmt.Errorf("protocol: stream %q after resume: %w", session, err)
			}
			if _, rerr := c.Resume(session); rerr != nil {
				return fmt.Errorf("protocol: resuming session %q: %w", session, rerr)
			}
			resumed = true
			continue
		}
		resumed = false
		attempt = 0
		for {
			frame, err := fs.Next()
			if err != nil {
				fs.Close()
				break // stream dropped: resume and reconnect below
			}
			if !fn(frame) {
				fs.Close()
				return nil
			}
		}
		if ctx.Err() != nil {
			return nil
		}
		if _, rerr := c.Resume(session); rerr != nil {
			return fmt.Errorf("protocol: resuming session %q: %w", session, rerr)
		}
		resumed = true
	}
}

func (c *Client) streamWith(ctx context.Context, session string, buffer int, accept string, fn func(ResultFrame) bool) error {
	fs, err := c.OpenStream(ctx, session, buffer, accept)
	if err != nil {
		return err
	}
	defer fs.Close()
	for {
		frame, err := fs.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("protocol: stream frame: %w", err)
		}
		if !fn(frame) {
			return nil
		}
	}
}
