package operator

import (
	"math"
	"testing"
	"testing/quick"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

func TestRunningAggBasics(t *testing.T) {
	vals := []float64{4, 1, 9, 2, 2}
	cases := []struct {
		kind AggKind
		want float64
	}{
		{Count, 5}, {Sum, 18}, {Avg, 3.6}, {Min, 1}, {Max, 9},
	}
	for _, tc := range cases {
		a := NewRunningAgg(tc.kind)
		for _, v := range vals {
			a.Add(v)
		}
		if got := a.Value(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%v = %v, want %v", tc.kind, got, tc.want)
		}
	}
}

func TestRunningAggEmpty(t *testing.T) {
	if got := NewRunningAgg(Count).Value(); got != 0 {
		t.Fatalf("empty count = %v", got)
	}
	if got := NewRunningAgg(Sum).Value(); got != 0 {
		t.Fatalf("empty sum = %v", got)
	}
	for _, k := range []AggKind{Avg, Min, Max, Var, Stddev} {
		if got := NewRunningAgg(k).Value(); !math.IsNaN(got) {
			t.Errorf("empty %v = %v, want NaN", k, got)
		}
	}
}

// Property: the running aggregate equals recomputing from scratch — the
// invariant that lets dbTouch absorb one value per touch.
func TestRunningAggMatchesBatchProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		run := NewRunningAgg(Var)
		var sum float64
		for _, v := range vals {
			run.Add(v)
			sum += v
		}
		if len(vals) < 2 {
			return math.IsNaN(run.Value())
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		want := ss / float64(len(vals)-1)
		return math.Abs(run.Value()-want) <= 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRunningAggStddevIsSqrtVar(t *testing.T) {
	va := NewRunningAgg(Var)
	sd := NewRunningAgg(Stddev)
	for _, v := range []float64{1, 5, 2, 8, 3} {
		va.Add(v)
		sd.Add(v)
	}
	if math.Abs(sd.Value()-math.Sqrt(va.Value())) > 1e-9 {
		t.Fatalf("stddev %v != sqrt(var %v)", sd.Value(), va.Value())
	}
}

func TestRunningAggAddN(t *testing.T) {
	a := NewRunningAgg(Avg)
	a.AddN(4, 20, 2, 8) // four values summing 20
	if got := a.Value(); got != 5 {
		t.Fatalf("AddN avg = %v, want 5", got)
	}
	mn := NewRunningAgg(Min)
	mn.AddN(4, 20, 2, 8)
	if got := mn.Value(); got != 2 {
		t.Fatalf("AddN min = %v, want 2", got)
	}
	a.AddN(0, 100, 0, 0) // zero-count group is a no-op
	if a.N() != 4 {
		t.Fatal("AddN(0) should not change counts")
	}
}

func TestRunningAggReset(t *testing.T) {
	a := NewRunningAgg(Max)
	a.Add(10)
	a.Reset()
	if a.N() != 0 || !math.IsNaN(a.Value()) {
		t.Fatal("Reset incomplete")
	}
	a.Add(3)
	if a.Value() != 3 {
		t.Fatal("post-Reset accumulation broken")
	}
}

func TestParseAggKind(t *testing.T) {
	for name, want := range map[string]AggKind{
		"count": Count, "SUM": Sum, "avg": Avg, "MIN": Min, "max": Max, "VAR": Var, "stddev": Stddev,
	} {
		got, err := ParseAggKind(name)
		if err != nil || got != want {
			t.Errorf("ParseAggKind(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseAggKind("median"); err == nil {
		t.Fatal("unknown aggregate should error")
	}
}

func TestSummarizerWindowClamping(t *testing.T) {
	s := Summarizer{K: 10}
	lo, hi := s.Window(5, 1000)
	if lo != 0 || hi != 16 {
		t.Fatalf("window near start = [%d,%d)", lo, hi)
	}
	lo, hi = s.Window(995, 1000)
	if lo != 985 || hi != 1000 {
		t.Fatalf("window near end = [%d,%d)", lo, hi)
	}
	lo, hi = s.Window(500, 1000)
	if hi-lo != 21 {
		t.Fatalf("interior window size = %d, want 21", hi-lo)
	}
}

func TestSummarizerAt(t *testing.T) {
	col := storage.NewIntColumn("v", []int64{0, 10, 20, 30, 40})
	s := Summarizer{K: 1, Kind: Avg}
	r := s.At(col, 2, nil)
	if r.Value != 20 || r.N != 3 || r.Lo != 1 || r.Hi != 4 {
		t.Fatalf("summary = %+v", r)
	}
	// K=0 degenerates to the single value.
	s0 := Summarizer{K: 0, Kind: Avg}
	if r := s0.At(col, 3, nil); r.Value != 30 || r.N != 1 {
		t.Fatalf("k=0 summary = %+v", r)
	}
}

func TestSummarizerChargesTracker(t *testing.T) {
	clock := vclock.New()
	tr := iomodel.New(clock, iomodel.Params{BlockValues: 2, ColdLatency: 1000, WarmLatency: 1}, nil)
	col := storage.NewIntColumn("v", []int64{1, 2, 3, 4, 5})
	Summarizer{K: 2, Kind: Sum}.At(col, 2, tr)
	if got := tr.Stats().ValuesRead; got != 5 {
		t.Fatalf("values read = %d, want 5", got)
	}
	if clock.Now() == 0 {
		t.Fatal("summary should advance the clock")
	}
}

func TestCmpOps(t *testing.T) {
	five := storage.IntValue(5)
	cases := []struct {
		op   CmpOp
		v    storage.Value
		want bool
	}{
		{Eq, storage.IntValue(5), true}, {Eq, storage.IntValue(4), false},
		{Ne, storage.IntValue(4), true},
		{Lt, storage.IntValue(6), false}, {Lt, storage.IntValue(4), true},
		{Gt, storage.IntValue(6), true}, {Gt, storage.IntValue(4), false},
		{Le, storage.IntValue(5), true},
		{Ge, storage.IntValue(6), true}, {Ge, storage.IntValue(4), false},
	}
	for _, tc := range cases {
		// note: Apply(left=v? ...) semantics: left op right.
		if got := tc.op.Apply(tc.v, five); got != tc.want {
			t.Errorf("%v %v 5 = %v, want %v", tc.v, tc.op, got, tc.want)
		}
	}
}

func TestPredicateEval(t *testing.T) {
	m, err := storage.NewMatrix("t",
		storage.NewIntColumn("a", []int64{1, 10, 3}),
		storage.NewStringColumn("s", []string{"x", "y", "x"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	p := Predicate{Col: 0, Op: Gt, Operand: storage.IntValue(5)}
	ok, err := p.Eval(m, 1, nil)
	if err != nil || !ok {
		t.Fatalf("Eval = %v, %v", ok, err)
	}
	ok, _ = p.Eval(m, 0, nil)
	if ok {
		t.Fatal("1 > 5 should be false")
	}
	ps := Predicate{Col: 1, Op: Eq, Operand: storage.StringValue("x")}
	ok, _ = ps.Eval(m, 2, nil)
	if !ok {
		t.Fatal("string equality failed")
	}
	bad := Predicate{Col: 9, Op: Eq, Operand: storage.IntValue(0)}
	if _, err := bad.Eval(m, 0, nil); err == nil {
		t.Fatal("bad column should error")
	}
}

func TestConjunctStatsDecay(t *testing.T) {
	s := NewConjunctStats(8)
	if s.Selectivity() != 0.5 {
		t.Fatal("prior should be 0.5")
	}
	for i := 0; i < 8; i++ {
		s.Observe(true)
	}
	if s.Selectivity() != 1 {
		t.Fatalf("all-pass selectivity = %v", s.Selectivity())
	}
	// After a regime change the estimate must move toward the new rate.
	for i := 0; i < 16; i++ {
		s.Observe(false)
	}
	if s.Selectivity() > 0.3 {
		t.Fatalf("stale selectivity %v; decay not working", s.Selectivity())
	}
}

func TestSymmetricHashJoinStreams(t *testing.T) {
	left := storage.NewIntColumn("l", []int64{1, 2, 3})
	right := storage.NewIntColumn("r", []int64{3, 1, 1})
	j := NewSymmetricHashJoin(left, right)
	if m := j.PushLeft(0, nil); len(m) != 0 {
		t.Fatal("no matches before right side seen")
	}
	m := j.PushRight(1, nil) // right[1]=1 matches left[0]=1
	if len(m) != 1 || m[0].LeftID != 0 || m[0].RightID != 1 {
		t.Fatalf("matches = %v", m)
	}
	m = j.PushRight(2, nil) // another 1
	if len(m) != 1 {
		t.Fatalf("second right 1 matches = %v", m)
	}
	if j.Matches() != 2 {
		t.Fatalf("total matches = %d", j.Matches())
	}
}

func TestSymmetricJoinIdempotentRevisit(t *testing.T) {
	left := storage.NewIntColumn("l", []int64{7})
	right := storage.NewIntColumn("r", []int64{7})
	j := NewSymmetricHashJoin(left, right)
	j.PushLeft(0, nil)
	j.PushRight(0, nil)
	if m := j.PushLeft(0, nil); len(m) != 0 {
		t.Fatal("revisited tuple must not re-match")
	}
	if j.Matches() != 1 {
		t.Fatalf("matches = %d, want 1", j.Matches())
	}
}

func TestSymmetricJoinOutOfRange(t *testing.T) {
	left := storage.NewIntColumn("l", []int64{1})
	right := storage.NewIntColumn("r", []int64{1})
	j := NewSymmetricHashJoin(left, right)
	if m := j.PushLeft(-1, nil); m != nil {
		t.Fatal("negative id should be ignored")
	}
	if m := j.PushRight(5, nil); m != nil {
		t.Fatal("out-of-range id should be ignored")
	}
}

// Property: pushing everything through the symmetric join yields exactly
// the matches of the blocking join.
func TestSymmetricEqualsBlockingProperty(t *testing.T) {
	f := func(lRaw, rRaw []uint8) bool {
		if len(lRaw) == 0 || len(rRaw) == 0 {
			return true
		}
		l := make([]int64, len(lRaw))
		r := make([]int64, len(rRaw))
		for i, v := range lRaw {
			l[i] = int64(v % 8)
		}
		for i, v := range rRaw {
			r[i] = int64(v % 8)
		}
		left := storage.NewIntColumn("l", l)
		right := storage.NewIntColumn("r", r)
		sym := NewSymmetricHashJoin(left, right)
		var symCount int64
		for i := range l {
			symCount += int64(len(sym.PushLeft(i, nil)))
		}
		for i := range r {
			symCount += int64(len(sym.PushRight(i, nil)))
		}
		blk := NewBlockingHashJoin()
		blk.Build(right, nil)
		var blkCount int64
		for i := range l {
			blkCount += int64(len(blk.Probe(left, i, nil)))
		}
		return symCount == blkCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockingJoinRefusesEarlyProbe(t *testing.T) {
	j := NewBlockingHashJoin()
	probe := storage.NewIntColumn("p", []int64{1})
	if got := j.Probe(probe, 0, nil); got != nil {
		t.Fatal("probe before build must return nothing")
	}
	if j.Built() {
		t.Fatal("not built yet")
	}
}

func TestIncrementalGroupBy(t *testing.T) {
	keys := storage.NewStringColumn("k", []string{"a", "b", "a", "b", "a"})
	vals := storage.NewIntColumn("v", []int64{1, 10, 2, 20, 3})
	g := NewIncrementalGroupBy(keys, vals, Sum)
	for i := 0; i < 5; i++ {
		g.Push(i, nil, nil)
	}
	groups := g.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0].Key != "a" || groups[0].Value != 6 || groups[0].N != 3 {
		t.Fatalf("group a = %+v", groups[0])
	}
	if groups[1].Key != "b" || groups[1].Value != 30 {
		t.Fatalf("group b = %+v", groups[1])
	}
}

func TestGroupByRevisitIdempotent(t *testing.T) {
	keys := storage.NewStringColumn("k", []string{"a"})
	vals := storage.NewIntColumn("v", []int64{5})
	g := NewIncrementalGroupBy(keys, vals, Sum)
	g.Push(0, nil, nil)
	if _, _, ok := g.Push(0, nil, nil); ok {
		t.Fatal("revisit should be a no-op")
	}
	if g.Groups()[0].Value != 5 {
		t.Fatal("revisit double-counted")
	}
	if g.SeenTuples() != 1 {
		t.Fatal("seen count wrong")
	}
}
