package operator

import (
	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
)

// Summarizer computes interactive summaries (paper §2.7): when a slide
// registers position p mapping to tuple idp, dbTouch scans all entries in
// [idp−k, idp+k] and returns a single aggregate value. K can be tuned by
// the user; the aggregation defaults to average, "a good default choice".
type Summarizer struct {
	// K is the half-window: 2K+1 values per touch (clamped at the column
	// ends). K=0 degenerates to a plain scan of one value.
	K int
	// Kind is the window aggregation function.
	Kind AggKind
}

// SummaryResult reports one interactive summary.
type SummaryResult struct {
	// Lo and Hi bound the tuple range [Lo, Hi) actually aggregated.
	Lo, Hi int
	// Value is the window aggregate.
	Value float64
	// N is the number of entries aggregated.
	N int
}

// Window returns the clamped window [lo, hi) around id for a column of n
// tuples.
func (s Summarizer) Window(id, n int) (lo, hi int) {
	lo = id - s.K
	hi = id + s.K + 1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// At computes the summary centered on tuple id, charging every value read
// to the tracker (which advances the virtual clock). A nil tracker skips
// cost accounting (used by tests and the baseline comparison).
func (s Summarizer) At(col *storage.Column, id int, tracker *iomodel.Tracker) SummaryResult {
	lo, hi := s.Window(id, col.Len())
	agg := NewRunningAgg(s.Kind)
	for i := lo; i < hi; i++ {
		if tracker != nil {
			tracker.Access(i)
		}
		agg.Add(col.Float(i))
	}
	return SummaryResult{Lo: lo, Hi: hi, Value: agg.Value(), N: int(agg.N())}
}

// Scan reads the single value at id, charging the tracker; the degenerate
// k=0 path kept separate for the plain-scan gesture.
func Scan(col *storage.Column, id int, tracker *iomodel.Tracker) storage.Value {
	if tracker != nil {
		tracker.Access(id)
	}
	return col.Value(id)
}
