package storage

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// The fused-kernel property suite: every fused filter+aggregate kernel
// must equal the compose-of-parts path — FilterRange (or FilterSel) to a
// selection vector, then a scalar aggregation loop over the selection —
// for all operators × column types × edge cases (NaN data and operands,
// empty and inverted ranges, out-of-bounds clamping). CI runs this under
// -race with the rest of the package.

var fusedOps = []RangeOp{RangeEq, RangeNe, RangeLt, RangeLe, RangeGt, RangeGe}

// composeAgg is the scalar reference: aggregate over the selection
// exactly as a filter-then-add loop would — int64 accumulation for
// integer-backed columns (the fused kernels' exactness contract; it
// matches a float loop bitwise whenever that loop is itself exact, and
// is the more accurate answer beyond 2^53), float left-to-right for
// float columns.
func composeAgg(c *Column, sel []int32) (n int, sum, mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	exact := c.Type() != Float64
	var isum int64
	for _, p := range sel {
		v := c.Float(int(p))
		if exact {
			isum += c.Int(int(p))
		} else {
			sum += v
		}
		n++
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if exact {
		sum = float64(isum)
	}
	return n, sum, mn, mx
}

// eqFloat compares aggregates bitwise, treating two NaNs as equal.
func eqFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return a == b
}

func checkAgainstCompose(t *testing.T, c *Column, lo, hi int, op RangeOp, operand Value, label string) {
	t.Helper()
	sel := c.FilterRange(lo, hi, op, operand, nil)
	// Ground truth: FilterRange itself must match a scalar Value.Compare
	// loop (the compose reference below builds on FilterRange, so this
	// anchors the whole suite to the system comparison semantics — in
	// particular the integer-bound lowering of float comparisons).
	clo, chi := c.clampRange(lo, hi)
	want := sel[:0:0]
	for i := clo; i < chi; i++ {
		if op.applyCmp(c.Value(i).Compare(operand)) {
			want = append(want, int32(i))
		}
	}
	if len(sel) != len(want) {
		t.Fatalf("%s FilterRange[%d,%d) = %d rows, Value.Compare loop = %d", label, lo, hi, len(sel), len(want))
	}
	for i := range sel {
		if sel[i] != want[i] {
			t.Fatalf("%s FilterRange[%d,%d) row %d = %d, Value.Compare loop = %d", label, lo, hi, i, sel[i], want[i])
		}
	}
	wantN, wantSum, wantMin, wantMax := composeAgg(c, sel)
	fa := c.FilterAggRange(lo, hi, op, operand)
	if fa.N != wantN || !eqFloat(fa.Sum, wantSum) || !eqFloat(fa.Min, wantMin) || !eqFloat(fa.Max, wantMax) {
		t.Fatalf("%s FilterAggRange[%d,%d) = %+v, compose = n=%d sum=%v min=%v max=%v",
			label, lo, hi, fa, wantN, wantSum, wantMin, wantMax)
	}
	if fa.Exact && fa.Sum != float64(fa.IntSum) {
		t.Fatalf("%s exact sum mismatch: Sum=%v IntSum=%d", label, fa.Sum, fa.IntSum)
	}
	if got := c.FilterCountRange(lo, hi, op, operand); got != wantN {
		t.Fatalf("%s FilterCountRange[%d,%d) = %d, want %d", label, lo, hi, got, wantN)
	}
	if fs := c.FilterSumRange(lo, hi, op, operand); fs.N != wantN || !eqFloat(fs.Sum, wantSum) {
		t.Fatalf("%s FilterSumRange[%d,%d) = %+v, want n=%d sum=%v", label, lo, hi, fs, wantN, wantSum)
	}
	if fm := c.FilterMinMaxRange(lo, hi, op, operand); fm.N != wantN || !eqFloat(fm.Min, wantMin) || !eqFloat(fm.Max, wantMax) {
		t.Fatalf("%s FilterMinMaxRange[%d,%d) = %+v, want n=%d min=%v max=%v", label, lo, hi, fm, wantN, wantMin, wantMax)
	}
}

func checkSelAgainstCompose(t *testing.T, c *Column, base []int32, op RangeOp, operand Value, label string) {
	t.Helper()
	refined := c.FilterSel(base, op, operand, nil)
	wantN, wantSum, wantMin, wantMax := composeAgg(c, refined)
	fa := c.FilterAggSel(base, op, operand)
	if fa.N != wantN || !eqFloat(fa.Sum, wantSum) || !eqFloat(fa.Min, wantMin) || !eqFloat(fa.Max, wantMax) {
		t.Fatalf("%s FilterAggSel = %+v, compose = n=%d sum=%v min=%v max=%v",
			label, fa, wantN, wantSum, wantMin, wantMax)
	}
	if got := c.FilterCountSel(base, op, operand); got != wantN {
		t.Fatalf("%s FilterCountSel = %d, want %d", label, got, wantN)
	}
	if fs := c.FilterSumSel(base, op, operand); fs.N != wantN || !eqFloat(fs.Sum, wantSum) {
		t.Fatalf("%s FilterSumSel = %+v, want n=%d sum=%v", label, fs, wantN, wantSum)
	}
	if fm := c.FilterMinMaxSel(base, op, operand); fm.N != wantN || !eqFloat(fm.Min, wantMin) || !eqFloat(fm.Max, wantMax) {
		t.Fatalf("%s FilterMinMaxSel = %+v, want n=%d min=%v max=%v", label, fm, wantN, wantMin, wantMax)
	}
}

// fuzzColumns builds one column per type with adversarial values:
// duplicates, extremes, NaN/Inf floats, and a small string dictionary.
func fuzzColumns(rng *rand.Rand, n int) []*Column {
	ints := make([]int64, n)
	flts := make([]float64, n)
	bools := make([]bool, n)
	strs := make([]string, n)
	words := []string{"apple", "fig", "pear", "quince", "banana", "apple "}
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			ints[i] = int64(rng.Intn(5)) // heavy duplicates
		case 1:
			ints[i] = rng.Int63() - rng.Int63()
		default:
			ints[i] = int64(rng.Intn(200)) - 100
		}
		switch rng.Intn(8) {
		case 0:
			flts[i] = math.NaN()
		case 1:
			flts[i] = math.Inf(1 - 2*rng.Intn(2))
		case 2:
			flts[i] = math.Copysign(0, -1)
		default:
			flts[i] = (rng.Float64() - 0.5) * 200
		}
		bools[i] = rng.Intn(2) == 0
		strs[i] = words[rng.Intn(len(words))]
	}
	return []*Column{
		NewIntColumn("i", ints),
		NewFloatColumn("f", flts),
		NewBoolColumn("b", bools),
		NewStringColumn("s", strs),
	}
}

// fuzzOperands yields operands that cross every coercion path, including
// NaN and values outside the data range.
func fuzzOperands(rng *rand.Rand) []Value {
	return []Value{
		IntValue(int64(rng.Intn(10)) - 5),
		IntValue(rng.Int63() - rng.Int63()),
		FloatValue((rng.Float64() - 0.5) * 300),
		FloatValue(math.NaN()),
		FloatValue(math.Inf(1)),
		BoolValue(rng.Intn(2) == 0),
		StringValue("fig"),
		StringValue("zzz"),
		StringValue(""),
	}
}

func TestFusedKernelsMatchCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for round := 0; round < 6; round++ {
		n := 1 + rng.Intn(700)
		cols := fuzzColumns(rng, n)
		ranges := [][2]int{
			{0, n},             // full
			{-7, n + 13},       // clamped both ends
			{n / 3, 2 * n / 3}, // interior
			{n / 2, n / 2},     // empty
			{n - 1, 3},         // inverted (clamps empty)
			{n, n + 5},         // fully out of range
		}
		for _, c := range cols {
			for _, op := range fusedOps {
				for oi, operand := range fuzzOperands(rng) {
					label := fmt.Sprintf("round=%d type=%v op=%d operand#%d", round, c.Type(), op, oi)
					for _, r := range ranges {
						checkAgainstCompose(t, c, r[0], r[1], op, operand, label)
					}
					// Selection-refinement forms over a random base
					// selection (including out-of-range positions, which
					// both paths must skip).
					base := c.FilterRange(0, n, RangeNe, IntValue(math.MaxInt64), nil)
					if len(base) > 0 {
						base = base[:rng.Intn(len(base)+1)]
					}
					base = append(base, int32(n), int32(-1), int32(n+7))
					checkSelAgainstCompose(t, c, base, op, operand, label)
				}
			}
		}
	}
}

// TestBlockedKernelsMatchWholeRange asserts the blocked fused scans —
// which lower the predicate once and chunk at cost-model block borders —
// equal the whole-range kernels for every mode × type × block length,
// and report per-chunk counts that sum to N.
func TestBlockedKernelsMatchWholeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	n := 1000
	cols := fuzzColumns(rng, n)
	modes := []FusedMode{FusedCount, FusedSum, FusedMinMax, FusedFull}
	for _, c := range cols {
		for _, op := range fusedOps {
			for oi, operand := range fuzzOperands(rng) {
				whole := c.FilterAggRange(0, n, op, operand)
				base := c.FilterRange(0, n, RangeNe, IntValue(math.MaxInt64), nil)
				for _, mode := range modes {
					for _, bl := range []int{0, 1, 7, 64, 10000} {
						label := fmt.Sprintf("type=%v op=%d operand#%d mode=%d bl=%d", c.Type(), op, oi, mode, bl)
						counted := 0
						got := c.FilterAggRangeBlocked(0, n, bl, op, operand, mode, func(_, k int) { counted += k })
						checkModeAgainstFull(t, label+" range", got, whole, mode, c.Type())
						if counted != whole.N {
							t.Fatalf("%s: onBlock counts sum to %d, want %d", label, counted, whole.N)
						}
						counted = 0
						gotSel := c.FilterAggSelBlocked(base, bl, op, operand, mode, func(_, k int) { counted += k })
						wholeSel := c.FilterAggSel(base, op, operand)
						checkModeAgainstFull(t, label+" sel", gotSel, wholeSel, mode, c.Type())
						if counted != wholeSel.N {
							t.Fatalf("%s sel: onBlock counts sum to %d, want %d", label, counted, wholeSel.N)
						}
					}
				}
			}
		}
	}
}

// checkModeAgainstFull compares a mode-restricted blocked result to the
// full whole-range result: N always matches; the sum matches for
// sum-maintaining modes (float sums only when unchunked semantics agree,
// so float equality is checked only on integer-backed columns); extrema
// match for extrema-maintaining modes.
func checkModeAgainstFull(t *testing.T, label string, got, whole FilterAgg, mode FusedMode, typ Type) {
	t.Helper()
	if got.N != whole.N {
		t.Fatalf("%s: N = %d, want %d", label, got.N, whole.N)
	}
	sumModes := mode == FusedSum || mode == FusedFull
	if sumModes && typ != Float64 && got.IntSum != whole.IntSum {
		t.Fatalf("%s: IntSum = %d, want %d", label, got.IntSum, whole.IntSum)
	}
	if mode == FusedMinMax || mode == FusedFull {
		if !eqFloat(got.Min, whole.Min) || !eqFloat(got.Max, whole.Max) {
			t.Fatalf("%s: extrema = (%v, %v), want (%v, %v)", label, got.Min, got.Max, whole.Min, whole.Max)
		}
	}
}

// TestFilterAggRangeEmpty pins the zero-qualifier contract: Min/Max are
// ±Inf and Sum 0, matching MinMaxRange over an empty range.
func TestFilterAggRangeEmpty(t *testing.T) {
	c := NewIntColumn("v", []int64{1, 2, 3})
	fa := c.FilterAggRange(0, 3, RangeGt, IntValue(100))
	if fa.N != 0 || fa.Sum != 0 || !math.IsInf(fa.Min, 1) || !math.IsInf(fa.Max, -1) {
		t.Fatalf("no-qualifier FilterAggRange = %+v", fa)
	}
	fa = c.FilterAggRange(2, 2, RangeGe, IntValue(0))
	if fa.N != 0 || !math.IsInf(fa.Min, 1) {
		t.Fatalf("empty-range FilterAggRange = %+v", fa)
	}
}

// TestFilterAggExactSums verifies the int64 accumulation is exact where
// a float64 accumulator would round.
func TestFilterAggExactSums(t *testing.T) {
	big := int64(1) << 60
	c := NewIntColumn("v", []int64{big, 1, big, 1, -big, 1})
	fa := c.FilterAggRange(0, 6, RangeNe, IntValue(big))
	// Qualifying values: 1, 1, -big, 1.
	if !fa.Exact || fa.IntSum != 3-big {
		t.Fatalf("exact sum = %+v, want IntSum %d", fa, 3-big)
	}
	if fa.N != 4 || fa.Min != float64(-big) || fa.Max != 1 {
		t.Fatalf("extrema = %+v", fa)
	}
}

// TestFilterAggMergeOrder verifies chunked scans merge to the whole-range
// answer (the operator layer splits scans at cost-model block borders).
func TestFilterAggMergeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	c := NewIntColumn("v", vals)
	op, operand := RangeLt, IntValue(500)
	whole := c.FilterAggRange(0, len(vals), op, operand)
	var merged FilterAgg
	merged.Min, merged.Max = math.Inf(1), math.Inf(-1)
	for lo := 0; lo < len(vals); lo += 512 {
		hi := lo + 512
		if hi > len(vals) {
			hi = len(vals)
		}
		chunk := c.FilterAggRange(lo, hi, op, operand)
		merged.Merge(chunk)
	}
	if merged.N != whole.N || merged.Sum != whole.Sum || merged.Min != whole.Min || merged.Max != whole.Max || merged.IntSum != whole.IntSum {
		t.Fatalf("merged = %+v, whole = %+v", merged, whole)
	}
}

// TestSumRangeInt64Exact pins the typed integer sum kernel.
func TestSumRangeInt64Exact(t *testing.T) {
	big := int64(1) << 60
	c := NewIntColumn("v", []int64{big, big, big, -big, 5, -2, 9, 11})
	sum, n, ok := c.SumRangeInt64(0, 8)
	if !ok || n != 8 || sum != 2*big+23 {
		t.Fatalf("SumRangeInt64 = %d, %d, %v", sum, n, ok)
	}
	// Unroll remainder handling: sub-multiple-of-4 lengths.
	for lo := 0; lo < 8; lo++ {
		for hi := lo; hi <= 8; hi++ {
			var want int64
			for i := lo; i < hi; i++ {
				want += c.Int(i)
			}
			got, _, _ := c.SumRangeInt64(lo, hi)
			if got != want {
				t.Fatalf("SumRangeInt64(%d,%d) = %d, want %d", lo, hi, got, want)
			}
		}
	}
	bc := NewBoolColumn("b", []bool{true, true, false, true, false, true, true})
	if sum, n, ok := bc.SumRangeInt64(0, 7); !ok || sum != 5 || n != 7 {
		t.Fatalf("bool SumRangeInt64 = %d, %d, %v", sum, n, ok)
	}
	fc := NewFloatColumn("f", []float64{1, 2})
	if _, _, ok := fc.SumRangeInt64(0, 2); ok {
		t.Fatal("float column should report ok=false")
	}
}

// TestPrefixInts pins the exact prefix-sum build kernel.
func TestPrefixInts(t *testing.T) {
	c := NewIntColumn("v", []int64{3, -1, 4, 1, -5})
	dst := make([]int64, 6)
	if !c.PrefixInts(dst) {
		t.Fatal("PrefixInts refused an int column")
	}
	want := []int64{0, 3, 2, 6, 7, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("prefix[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	if c.PrefixInts(make([]int64, 3)) {
		t.Fatal("wrong-length dst should be refused")
	}
	fc := NewFloatColumn("f", []float64{1})
	if fc.PrefixInts(make([]int64, 2)) {
		t.Fatal("float column should be refused")
	}
}

// TestPassCacheLRU asserts eviction order: a hot predicate's memo table
// survives a storm of 64+ distinct cold predicates because eviction
// drops the least-recently-used table, not an arbitrary one.
func TestPassCacheLRU(t *testing.T) {
	vals := make([]string, 500)
	for i := range vals {
		vals[i] = fmt.Sprintf("w%03d", i%40)
	}
	c := NewStringColumn("s", vals)
	hot := StringValue("w007")
	hotKey := passKey{op: RangeEq, operand: hot}

	c.FilterRange(0, c.Len(), RangeEq, hot, nil)
	for i := 0; i < 2*maxPassTables; i++ {
		// One cold, never-repeated predicate...
		c.FilterRange(0, c.Len(), RangeLt, StringValue(fmt.Sprintf("cold%04d", i)), nil)
		// ...interleaved with the hot one staying in use.
		c.FilterRange(0, c.Len(), RangeEq, hot, nil)
	}
	c.passMu.Lock()
	_, hotAlive := c.passCache[hotKey]
	size := len(c.passCache)
	c.passMu.Unlock()
	if !hotAlive {
		t.Fatal("hot predicate table was evicted by cold traffic")
	}
	if size > maxPassTables {
		t.Fatalf("pass cache grew to %d tables, cap is %d", size, maxPassTables)
	}
}
