package gateway_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dbtouch"
	"dbtouch/internal/gateway"
	"dbtouch/internal/gesture"
	"dbtouch/internal/protocol"
	"dbtouch/internal/sessionlog"
)

// testBackend is one in-process dbtouch-serve equivalent: its own
// manager and sessionlog store (over a possibly shared directory — the
// fleet deployment's shared filesystem), served over a real TCP
// listener with the same /healthz + admit-gate wiring as the binary.
type testBackend struct {
	db     *dbtouch.DB
	store  *sessionlog.Store
	health *protocol.Health
	srv    *httptest.Server

	rpcHits    atomic.Int64
	healthHits atomic.Int64
	killed     atomic.Bool
}

func newTestBackend(t *testing.T, dir string, workers int) *testBackend {
	t.Helper()
	b := &testBackend{db: dbtouch.Open(), health: protocol.NewHealth()}
	vals := make([]int64, 50000)
	for i := range vals {
		vals[i] = int64(i * 7 % 1000)
	}
	b.db.NewTable("t").Int("v", vals).MustCreate()
	if workers > 0 {
		if err := b.db.Manager().SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
	}
	st, err := sessionlog.Open(sessionlog.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	b.store = st
	b.db.Manager().EnableDurability(st)
	inner := protocol.NewHTTPHandler(b.db.Manager(), protocol.WithAdmitGate(b.health.Ready))
	mux := http.NewServeMux()
	mux.Handle("/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.healthHits.Add(1)
		b.health.Handler().ServeHTTP(w, r)
	}))
	mux.Handle("/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.rpcHits.Add(1)
		inner.ServeHTTP(w, r)
	}))
	b.srv = httptest.NewServer(mux)
	b.health.Set(protocol.HealthReady)
	t.Cleanup(func() {
		b.kill()
		b.db.Manager().Close()
		st.Close()
	})
	return b
}

// kill makes the backend look dead on the wire: listener closed, live
// connections cut. The process-internal state (manager, store) stays,
// like a kill -9'd process whose durable logs survive on disk.
func (b *testBackend) kill() {
	if b.killed.CompareAndSwap(false, true) {
		b.srv.CloseClientConnections()
		b.srv.Close()
	}
}

func (b *testBackend) url() string { return b.srv.URL }

// fastOpts is a gateway tuned for test time: tight probe period, small
// breaker thresholds, millisecond backoff.
func fastOpts(t *testing.T, backends ...string) gateway.Options {
	return gateway.Options{
		Backends:         backends,
		Retry:            protocol.Backoff{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond, Attempts: 8},
		RequestTimeout:   10 * time.Second,
		HealthInterval:   25 * time.Millisecond,
		FailThreshold:    2,
		SuccessThreshold: 3,
		OpenCooldown:     150 * time.Millisecond,
		Logf:             t.Logf,
	}
}

func newGateway(t *testing.T, opts gateway.Options) (*gateway.Gateway, string) {
	t.Helper()
	g, err := gateway.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(func() {
		srv.Close()
		g.Close()
	})
	return g, srv.URL
}

// rawPost sends one already-encoded request and returns status + body —
// raw bytes on purpose, so equivalence tests compare the exact wire.
func rawPost(t *testing.T, base string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/rpc", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post %s: %v", base, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp.StatusCode, b
}

func encode(t *testing.T, req protocol.Request) []byte {
	t.Helper()
	data, err := protocol.EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// sessionScript is a deterministic per-session request sequence: open,
// create, then n random perform/configure/idle ops seeded by the
// session name. Both the control run and the chaos run execute exactly
// these bytes.
func sessionScript(session string, n int) []protocol.Request {
	h := fnv.New64a()
	io.WriteString(h, session)
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	reqs := []protocol.Request{
		{Op: protocol.OpOpen, Session: session},
		{Op: protocol.OpCreate, Session: session, Object: "o",
			Create: &protocol.CreateSpec{Table: "t", Column: "v", X: 2, Y: 2, W: 2, H: 10}},
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			g := gesture.NewTap(0, rng.Float64())
			reqs = append(reqs, protocol.Request{Op: protocol.OpPerform, Session: session, Object: "o", Gesture: &g})
		case 2:
			g := gesture.NewSlide(0, rng.Float64(), rng.Float64(), 500*time.Millisecond)
			reqs = append(reqs, protocol.Request{Op: protocol.OpPerform, Session: session, Object: "o", Gesture: &g})
		case 3:
			mode := "scan"
			spec := protocol.ActionsSpec{Mode: mode}
			if rng.Intn(2) == 0 {
				spec = protocol.ActionsSpec{Mode: "aggregate", Agg: "sum"}
			}
			reqs = append(reqs, protocol.Request{Op: protocol.OpConfigure, Session: session, Object: "o", Actions: &spec})
		default:
			reqs = append(reqs, protocol.Request{Op: protocol.OpIdle, Session: session,
				Idle: time.Duration(1+rng.Intn(50)) * time.Millisecond})
		}
	}
	return reqs
}

// waitFor polls until cond or the deadline; fails the test with msg.
func waitFor(t *testing.T, d time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timed out waiting for " + msg)
}

func backendState(g *gateway.Gateway, addr string) gateway.BackendStats {
	for _, b := range g.Stats().Backends {
		if b.Addr == addr {
			return b
		}
	}
	return gateway.BackendStats{}
}

// TestGatewayTransparentForwarding: with a healthy backend, every
// response through the gateway is byte-identical to the same request
// against a standalone server — the gateway adds routing, not bytes.
func TestGatewayTransparentForwarding(t *testing.T) {
	backend := newTestBackend(t, t.TempDir(), 0)
	control := newTestBackend(t, t.TempDir(), 0)
	_, gw := newGateway(t, fastOpts(t, backend.url()))

	script := sessionScript("transparent", 12)
	script = append(script, protocol.Request{Op: protocol.OpStats})
	script = append(script, protocol.Request{Op: protocol.OpEvict, Session: "transparent"})
	for i, req := range script {
		raw := encode(t, req)
		gs, gb := rawPost(t, gw, raw)
		cs, cb := rawPost(t, control.url(), raw)
		if req.Op == protocol.OpStats {
			// Stats are live gauges (scheduler counters differ run to
			// run); assert transport equivalence only.
			if gs != cs {
				t.Fatalf("stats status through gateway %d, direct %d", gs, cs)
			}
			continue
		}
		if gs != cs || !bytes.Equal(gb, cb) {
			t.Fatalf("request %d (%s): gateway answered status=%d %s, control status=%d %s",
				i, req.Op, gs, gb, cs, cb)
		}
	}
}

// TestGatewayFailoverByResume: kill the session's pinned backend and
// the next request succeeds on the survivor with a byte-identical
// response — failover is a routing event, not a session loss.
func TestGatewayFailoverByResume(t *testing.T) {
	shared := t.TempDir()
	a := newTestBackend(t, shared, 0)
	b := newTestBackend(t, shared, 0)
	control := newTestBackend(t, t.TempDir(), 0)
	g, gw := newGateway(t, fastOpts(t, a.url(), b.url()))

	script := sessionScript("failover", 10)
	// Run the prefix through both; remember control's answers.
	var controlBodies [][]byte
	for _, req := range script {
		raw := encode(t, req)
		_, cb := rawPost(t, control.url(), raw)
		controlBodies = append(controlBodies, cb)
	}
	half := len(script) / 2
	for i := 0; i < half; i++ {
		_, gb := rawPost(t, gw, encode(t, script[i]))
		if !bytes.Equal(gb, controlBodies[i]) {
			t.Fatalf("pre-kill request %d: gateway %s, control %s", i, gb, controlBodies[i])
		}
	}

	pinned := g.Stats().Sessions["failover"]
	if pinned == "" {
		t.Fatal("session has no pin after traffic")
	}
	victim, survivor := a, b
	if pinned == b.url() {
		victim, survivor = b, a
	}
	victim.kill()

	for i := half; i < len(script); i++ {
		_, gb := rawPost(t, gw, encode(t, script[i]))
		if !bytes.Equal(gb, controlBodies[i]) {
			t.Fatalf("post-kill request %d: gateway %s, control %s", i, gb, controlBodies[i])
		}
	}
	st := g.Stats()
	if st.Failovers == 0 || st.Resumes == 0 {
		t.Fatalf("failover happened silently: %+v", st)
	}
	if got := st.Sessions["failover"]; got != survivor.url() {
		t.Fatalf("session pinned to %s, want survivor %s", got, survivor.url())
	}
}

// TestGatewayBreakerHalfOpenNoHerd: a dead backend trips its breaker
// after FailThreshold probes; once it heals, the breaker goes half-open
// and ONLY probes touch it — client requests during half-open never
// reach the backend — until SuccessThreshold consecutive probe
// successes close it. That is the flap damping + no-thundering-herd
// contract.
func TestGatewayBreakerHalfOpenNoHerd(t *testing.T) {
	backend := newTestBackend(t, t.TempDir(), 0)
	// A second, always-healthy backend keeps the gateway answering
	// while the first is down.
	stable := newTestBackend(t, t.TempDir(), 0)
	opts := fastOpts(t, backend.url(), stable.url())
	opts.HealthInterval = 30 * time.Millisecond
	opts.SuccessThreshold = 5 // stretch the half-open window for the assertion
	g, gw := newGateway(t, opts)

	waitFor(t, 5*time.Second, "initial ready", func() bool {
		return backendState(g, backend.url()).Ready
	})

	// Make the backend unreachable at the TCP level.
	backend.kill()
	waitFor(t, 5*time.Second, "breaker open", func() bool {
		return backendState(g, backend.url()).State == "open"
	})

	// "Heal" it: a fresh listener serving /healthz 200 on a new address
	// is not possible (the gateway pins the address), so resurrect via a
	// new backend is out — instead this test uses the stable backend for
	// traffic and verifies the half-open exclusion on the dead one by
	// observing probe counters... which requires a live /healthz. Use a
	// resurrectable proxy instead: see TestBreakerRecoveryViaProxy in
	// chaos_test.go. Here, assert the open breaker sheds traffic: client
	// requests keep succeeding via the stable backend and the dead one
	// takes no hits.
	before := backend.rpcHits.Load()
	for i := 0; i < 10; i++ {
		req := protocol.Request{Op: protocol.OpOpen, Session: fmt.Sprintf("shed-%d", i)}
		status, body := rawPost(t, gw, encode(t, req))
		if status != http.StatusOK {
			t.Fatalf("request %d through open breaker failed: %d %s", i, status, body)
		}
	}
	if got := backend.rpcHits.Load(); got != before {
		t.Fatalf("open breaker leaked %d requests to the dead backend", got-before)
	}
	if trips := backendState(g, backend.url()).Trips; trips == 0 {
		t.Fatal("breaker never recorded a trip")
	}
}

// TestGatewayDrainMigratesSessions: flipping a backend to draining
// makes the gateway migrate its pinned sessions to a healthy backend
// proactively (resume + re-pin) and stop admitting traffic to it.
func TestGatewayDrainMigratesSessions(t *testing.T) {
	shared := t.TempDir()
	a := newTestBackend(t, shared, 0)
	b := newTestBackend(t, shared, 0)
	control := newTestBackend(t, t.TempDir(), 0)
	g, gw := newGateway(t, fastOpts(t, a.url(), b.url()))

	script := sessionScript("drainer", 8)
	var controlBodies [][]byte
	for _, req := range script {
		raw := encode(t, req)
		_, cb := rawPost(t, control.url(), raw)
		controlBodies = append(controlBodies, cb)
	}
	half := len(script) / 2
	for i := 0; i < half; i++ {
		rawPost(t, gw, encode(t, script[i]))
	}
	pinned := g.Stats().Sessions["drainer"]
	victim, survivor := a, b
	if pinned == b.url() {
		victim, survivor = b, a
	}

	// SIGTERM equivalent: the backend flips /healthz to draining while
	// still serving. The gateway's prober must notice and migrate.
	victim.health.Set(protocol.HealthDraining)
	waitFor(t, 5*time.Second, "session migrated off draining backend", func() bool {
		return g.Stats().Sessions["drainer"] == survivor.url()
	})
	if g.Stats().Migrations == 0 {
		t.Fatal("migration not counted")
	}

	victimHits := victim.rpcHits.Load()
	for i := half; i < len(script); i++ {
		_, gb := rawPost(t, gw, encode(t, script[i]))
		if !bytes.Equal(gb, controlBodies[i]) {
			t.Fatalf("post-drain request %d: gateway %s, control %s", i, gb, controlBodies[i])
		}
	}
	if got := victim.rpcHits.Load(); got != victimHits {
		t.Fatalf("draining backend took %d requests after migration", got-victimHits)
	}
}

// TestGatewayAppendFanout: appends fan out to every ready backend so
// their in-memory live tables stay converged.
func TestGatewayAppendFanout(t *testing.T) {
	mkLive := func(dir string) *testBackend {
		b := newTestBackend(t, dir, 0)
		if _, err := b.db.NewLiveTable("ev").Int("k", nil).Create(); err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := mkLive(t.TempDir())
	b := mkLive(t.TempDir())
	_, gw := newGateway(t, fastOpts(t, a.url(), b.url()))

	appendReq := func(k int64) []byte {
		return encode(t, protocol.Request{Op: protocol.OpAppend, Table: "ev", Rows: [][]any{{k}}})
	}
	for k := int64(0); k < 2; k++ {
		status, body := rawPost(t, gw, appendReq(k))
		if status != http.StatusOK {
			t.Fatalf("append %d: %d %s", k, status, body)
		}
	}
	// One more append directly on each backend: both report the same
	// total, proving both saw the fanned-out rows.
	for _, be := range []*testBackend{a, b} {
		_, body := rawPost(t, be.url(), appendReq(99))
		var resp protocol.Response
		if err := json.Unmarshal(body, &resp); err != nil || !resp.OK {
			t.Fatalf("direct append on %s: %s", be.url(), body)
		}
		if resp.Rows != 3 {
			t.Fatalf("backend %s holds %d rows, want 3 (2 fanned out + 1 direct)", be.url(), resp.Rows)
		}
	}
}

// TestGatewayStreamFailover: a client stream through the gateway keeps
// producing decodable frames across the death of the backend it was
// attached to.
func TestGatewayStreamFailover(t *testing.T) {
	shared := t.TempDir()
	a := newTestBackend(t, shared, 0)
	b := newTestBackend(t, shared, 0)
	g, gw := newGateway(t, fastOpts(t, a.url(), b.url()))

	for _, req := range sessionScript("streamer", 0) { // open + create only
		if status, body := rawPost(t, gw, encode(t, req)); status != http.StatusOK {
			t.Fatalf("%s: %d %s", req.Op, status, body)
		}
	}

	resp, err := http.Get(gw + "/stream?session=streamer&buffer=4096")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream attach: %s", resp.Status)
	}
	lines := make(chan []byte, 1024)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines <- append([]byte(nil), sc.Bytes()...)
		}
		close(lines)
	}()
	readFrame := func(label string) {
		t.Helper()
		deadline := time.After(10 * time.Second)
		for {
			tap := gesture.NewTap(0, 0.5)
			raw := encode(t, protocol.Request{Op: protocol.OpPerform, Session: "streamer", Object: "o", Gesture: &tap})
			if status, body := rawPost(t, gw, raw); status != http.StatusOK {
				t.Fatalf("%s: perform: %d %s", label, status, body)
			}
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("%s: gateway stream closed", label)
				}
				var f protocol.ResultFrame
				if err := json.Unmarshal(line, &f); err != nil {
					t.Fatalf("%s: stream delivered an undecodable frame %q: %v", label, line, err)
				}
				return
			case <-deadline:
				t.Fatalf("%s: no frame arrived", label)
			case <-time.After(50 * time.Millisecond):
			}
		}
	}

	readFrame("before kill")
	pinned := g.Stats().Sessions["streamer"]
	victim := a
	if pinned == b.url() {
		victim = b
	}
	victim.kill()
	readFrame("after kill")
}

// TestGatewayHealthz: the gateway's own /healthz follows its backends.
func TestGatewayHealthz(t *testing.T) {
	backend := newTestBackend(t, t.TempDir(), 0)
	g, gw := newGateway(t, fastOpts(t, backend.url()))
	waitFor(t, 5*time.Second, "backend ready", func() bool {
		return backendState(g, backend.url()).Ready
	})
	res, err := http.Get(gw + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("gateway /healthz: %d %q", res.StatusCode, body)
	}
	backend.kill()
	waitFor(t, 5*time.Second, "gateway unready after backend death", func() bool {
		res, err := http.Get(gw + "/healthz")
		if err != nil {
			return false
		}
		defer res.Body.Close()
		return res.StatusCode == http.StatusServiceUnavailable
	})
	// /gatewayz stays serviceable for diagnosis.
	res, err = http.Get(gw + "/gatewayz")
	if err != nil {
		t.Fatal(err)
	}
	var st gateway.Stats
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatalf("gatewayz decode: %v", err)
	}
	res.Body.Close()
	if len(st.Backends) != 1 || st.Backends[0].State == "" {
		t.Fatalf("gatewayz snapshot: %+v", st)
	}
}
