// Package cache implements gesture-aware caching (paper §2.6 "Caching
// Data"): "dbTouch needs to observe the gesture patterns and adjust the
// caching policy according to the expected progression of the gesture."
//
// The package supplies eviction policies for iomodel trackers — plain LRU
// lives in iomodel; here are the gesture-aware alternative and a
// no-caching strawman — plus a hash-table cache for join state reuse
// (§2.9: "caching of hash tables across the various sample copies can
// enhance future queries") and a hot-range detector feeding
// cache-to-sample promotion.
package cache

import (
	"sort"
	"time"
)

// GestureAware protects blocks the gesture is likely to revisit: blocks
// just *behind* the current movement direction (back-and-forth slides
// re-examine them) and blocks touched repeatedly. Victims are chosen by
// lowest protection score, breaking ties by recency.
type GestureAware struct {
	// Window is how many blocks behind the frontier stay protected.
	Window int
	counts map[int]int
	lastB  int
	dir    int
}

// NewGestureAware returns a policy protecting window blocks behind the
// gesture frontier (window <= 0 selects 8).
func NewGestureAware(window int) *GestureAware {
	if window <= 0 {
		window = 8
	}
	return &GestureAware{Window: window, counts: make(map[int]int), lastB: -1}
}

// Touched implements iomodel.EvictionPolicy.
func (g *GestureAware) Touched(b int, _ time.Duration, dir int) {
	g.counts[b]++
	g.lastB = b
	if dir != 0 {
		g.dir = dir
	}
}

// TouchedN implements iomodel.RangePolicy: one call absorbs a whole
// block's worth of span accesses, keeping ranged charging O(blocks).
func (g *GestureAware) TouchedN(b, n int, _ time.Duration, dir int) {
	g.counts[b] += n
	g.lastB = b
	if dir != 0 {
		g.dir = dir
	}
}

// Forgot implements iomodel.EvictionPolicy.
func (g *GestureAware) Forgot(b int) { delete(g.counts, b) }

// Name implements iomodel.EvictionPolicy.
func (g *GestureAware) Name() string { return "gesture-aware" }

// Victim implements iomodel.EvictionPolicy: keep the finger's
// neighborhood. The gesture frontier is the last touched block; the warm
// block farthest from it is evicted first, with a tie broken toward the
// block *behind* the movement direction beyond the protection window
// (ahead-of-finger blocks are about to be touched; just-behind blocks are
// what a direction reversal revisits).
func (g *GestureAware) Victim(lastUse map[int]time.Duration) int {
	victim := -1
	var victimScore float64
	var victimUse time.Duration
	for b, use := range lastUse {
		dist := b - g.lastB
		if g.lastB < 0 {
			dist = 0
		}
		score := -absInt(dist) // farther = lower = evicted earlier
		if g.dir != 0 && dist*g.dir < 0 && absInt(dist) > float64(g.Window) {
			// Far behind the direction of travel beyond the protected
			// trailing window: least likely to be touched soon.
			score -= float64(g.Window)
		}
		if victim == -1 || score < victimScore || (score == victimScore && use < victimUse) {
			victim, victimScore, victimUse = b, score, use
		}
	}
	return victim
}

func absInt(v int) float64 {
	if v < 0 {
		return float64(-v)
	}
	return float64(v)
}

// None is the no-caching strawman: every block is evicted as soon as the
// budget forces a choice, preferring the most recently used so nothing
// accumulates (used with WarmBudget=1-ish configs to model cold reads).
type None struct{}

// Touched implements iomodel.EvictionPolicy.
func (None) Touched(int, time.Duration, int) {}

// TouchedN implements iomodel.RangePolicy.
func (None) TouchedN(int, int, time.Duration, int) {}

// Forgot implements iomodel.EvictionPolicy.
func (None) Forgot(int) {}

// Name implements iomodel.EvictionPolicy.
func (None) Name() string { return "none" }

// Victim implements iomodel.EvictionPolicy: evict the newest block.
func (None) Victim(lastUse map[int]time.Duration) int {
	victim, newest := -1, time.Duration(-1)
	for b, t := range lastUse {
		if t > newest || (t == newest && b > victim) {
			victim, newest = b, t
		}
	}
	return victim
}

// HotRange is a contiguous run of heavily accessed blocks, a candidate
// for promotion to a stored sample.
type HotRange struct {
	// FromBlock and ToBlock bound the run [FromBlock, ToBlock].
	FromBlock, ToBlock int
	// Touches is the total access count over the run.
	Touches int
}

// HotRanges scans a policy's touch counts for contiguous runs where every
// block has at least minTouches accesses, merging runs separated by at
// most gap blocks. Results are sorted by Touches descending.
func (g *GestureAware) HotRanges(minTouches, gap int) []HotRange {
	if minTouches <= 0 {
		minTouches = 2
	}
	blocks := make([]int, 0, len(g.counts))
	for b, c := range g.counts {
		if c >= minTouches {
			blocks = append(blocks, b)
		}
	}
	sort.Ints(blocks)
	var out []HotRange
	for _, b := range blocks {
		if len(out) > 0 && b-out[len(out)-1].ToBlock <= gap+1 {
			out[len(out)-1].ToBlock = b
			out[len(out)-1].Touches += g.counts[b]
		} else {
			out = append(out, HotRange{FromBlock: b, ToBlock: b, Touches: g.counts[b]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Touches > out[j].Touches })
	return out
}
