package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrAppendLimited is returned by AppendRow/AppendBatch when the table's
// append rate limiter has no budget for the batch. Callers should back
// off and retry; the wire layer maps it to an overloaded response with
// Retry-After.
var ErrAppendLimited = errors.New("storage: append rate limit exceeded")

// Retention bounds how much history a live table keeps. Zero values mean
// unbounded. Retention trims from the front (oldest rows) only; it never
// touches the tail a writer is extending.
type Retention struct {
	// MaxRows caps the number of live rows. After an append pushes the
	// table past the cap, oldest rows become stale; physical reclamation
	// is amortized (see Table compaction), so the visible row count can
	// transiently exceed MaxRows by the compaction threshold.
	MaxRows int
	// MaxAge drops rows whose age column value is older than now-MaxAge.
	// Requires AgeColumn naming an INT column of Unix nanosecond
	// timestamps that is nondecreasing in row order.
	MaxAge time.Duration
	// AgeColumn names the timestamp column MaxAge reads.
	AgeColumn string
}

// TableSnapshot is one immutable published version of a live table.
// Matrix wraps capped prefix views of the table's columns: the appender
// only writes beyond the published lengths, so a snapshot never changes
// after publication. Epoch increases by one per publication; Gen
// increases when compaction rebases the backing arrays (row positions
// shift, so statistics keyed to positions must rebuild rather than
// extend).
type TableSnapshot struct {
	Epoch  uint64
	Gen    uint64
	Rows   int
	Matrix *Matrix
}

// Table is an appendable column set with snapshot versioning: writers
// append under a mutex and publish immutable TableSnapshots; readers pin
// a snapshot and explore it without any coordination with the writer.
// This is the "now is a version, not a constant" contract — exploration
// sessions see a consistent frozen prefix for a whole gesture batch even
// while ingestion keeps appending.
type Table struct {
	name   string
	schema []ColumnMeta

	mu     sync.Mutex
	cols   []*Column
	rows   int
	epoch  uint64
	gen    uint64
	ret    Retention
	ageIdx int
	// staleLo is how far the age-based stale scan has advanced, so each
	// append batch only examines newly expirable rows.
	staleLo int

	// Token-bucket append limiter (rows per second); nil when unlimited.
	lim *appendLimiter

	snap atomic.Pointer[TableSnapshot]
}

type appendLimiter struct {
	rate   float64 // tokens (rows) per second
	burst  float64
	tokens float64
	last   time.Time
}

// NewTable builds a live table over cols (adopted, not copied; all must
// have equal lengths) and publishes the initial snapshot as epoch 1.
// Zero-length columns are allowed: the table becomes explorable once
// rows arrive.
func NewTable(name string, cols ...*Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: live table %q needs at least one column", name)
	}
	rows := cols[0].Len()
	schema := make([]ColumnMeta, len(cols))
	for i, c := range cols {
		if c.Len() != rows {
			return nil, fmt.Errorf("storage: live table %q: column %q has %d rows, want %d", name, c.Name(), c.Len(), rows)
		}
		schema[i] = ColumnMeta{Name: c.Name(), Type: c.Type()}
	}
	t := &Table{name: name, schema: schema, cols: cols, rows: rows, ageIdx: -1}
	if err := t.publishLocked(); err != nil {
		return nil, err
	}
	return t, nil
}

// Name reports the table name.
func (t *Table) Name() string { return t.name }

// Schema reports the column metadata in declaration order.
func (t *Table) Schema() []ColumnMeta { return append([]ColumnMeta(nil), t.schema...) }

// Snapshot returns the current published snapshot. The returned value is
// immutable and safe to read forever.
func (t *Table) Snapshot() *TableSnapshot { return t.snap.Load() }

// Rows reports the published row count.
func (t *Table) Rows() int { return t.Snapshot().Rows }

// Epoch reports the published epoch.
func (t *Table) Epoch() uint64 { return t.Snapshot().Epoch }

// Gen reports the published compaction generation.
func (t *Table) Gen() uint64 { return t.Snapshot().Gen }

// SetRetention installs a retention policy. An AgeColumn that does not
// name an INT column is an error.
func (t *Table) SetRetention(r Retention) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ageIdx := -1
	if r.MaxAge > 0 {
		for i, m := range t.schema {
			if m.Name == r.AgeColumn {
				ageIdx = i
				break
			}
		}
		if ageIdx < 0 {
			return fmt.Errorf("storage: live table %q: retention age column %q not found", t.name, r.AgeColumn)
		}
		if t.schema[ageIdx].Type != Int64 {
			return fmt.Errorf("storage: live table %q: retention age column %q must be INT (unix nanos)", t.name, r.AgeColumn)
		}
	}
	t.ret = r
	t.ageIdx = ageIdx
	t.staleLo = 0
	return nil
}

// SetAppendLimit installs a token-bucket rate limit of rowsPerSec with
// the given burst (rows). rowsPerSec <= 0 removes the limit.
func (t *Table) SetAppendLimit(rowsPerSec float64, burst int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rowsPerSec <= 0 {
		t.lim = nil
		return
	}
	if burst < 1 {
		burst = 1
	}
	t.lim = &appendLimiter{rate: rowsPerSec, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

func (l *appendLimiter) allow(n int, now time.Time) bool {
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	if l.tokens < float64(n) {
		return false
	}
	l.tokens -= float64(n)
	return true
}

// AppendRow appends one row and publishes a new snapshot epoch.
func (t *Table) AppendRow(vals []Value) (*TableSnapshot, error) {
	return t.AppendBatch([][]Value{vals})
}

// AppendBatch appends rows atomically — a single snapshot epoch is
// published covering the whole batch, so readers never observe a partial
// batch — applies retention, and returns the new snapshot.
func (t *Table) AppendBatch(rows [][]Value) (*TableSnapshot, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// An empty batch is a no-op: no rows means no new epoch, which keeps
	// the epoch counter an exact function of the non-empty batches applied
	// (replay harnesses depend on that).
	if len(rows) == 0 {
		return t.snap.Load(), nil
	}
	if t.lim != nil && !t.lim.allow(len(rows), time.Now()) {
		return nil, ErrAppendLimited
	}
	for _, r := range rows {
		if len(r) != len(t.cols) {
			return nil, fmt.Errorf("storage: live table %q: row has %d values, want %d", t.name, len(r), len(t.cols))
		}
	}
	for _, r := range rows {
		for i, c := range t.cols {
			c.Append(r[i])
		}
	}
	t.rows += len(rows)
	t.applyRetentionLocked()
	if err := t.publishLocked(); err != nil {
		return nil, err
	}
	return t.snap.Load(), nil
}

// applyRetentionLocked computes how many head rows are stale under the
// policy and compacts once the stale run is large enough to amortize the
// copy. Compaction is the only reclamation mechanism: a logical head
// offset would misalign zone-map blocks and sample strides, so instead
// survivors are copied into fresh arrays and the generation is bumped,
// telling readers their position-keyed statistics must rebuild.
func (t *Table) applyRetentionLocked() {
	stale := 0
	if t.ret.MaxRows > 0 && t.rows > t.ret.MaxRows {
		stale = t.rows - t.ret.MaxRows
	}
	if t.ret.MaxAge > 0 && t.ageIdx >= 0 {
		cutoff := time.Now().Add(-t.ret.MaxAge).UnixNano()
		ts := t.cols[t.ageIdx].Ints()
		// Timestamps are nondecreasing, so resume the scan where it left
		// off; each row is examined at most once over the table lifetime.
		for t.staleLo < t.rows && ts[t.staleLo] < cutoff {
			t.staleLo++
		}
		if t.staleLo > stale {
			stale = t.staleLo
		}
	}
	// Never drop the last row: pinned readers rebind against a non-empty
	// table, and an all-stale table just keeps its newest row until the
	// next append displaces it.
	if stale > t.rows-1 {
		stale = t.rows - 1
	}
	if stale < 1024 || stale < t.rows-stale {
		return
	}
	live := t.rows - stale
	fresh := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		nc := c.EmptyLike()
		for j := stale; j < t.rows; j++ {
			nc.AppendAt(c, j)
		}
		fresh[i] = nc
	}
	t.cols = fresh
	t.rows = live
	t.staleLo = 0
	t.gen++
}

// publishLocked freezes the current prefix into a new snapshot epoch.
func (t *Table) publishLocked() error {
	views := make([]*Column, len(t.cols))
	for i, c := range t.cols {
		v, err := c.Prefix(t.rows)
		if err != nil {
			return err
		}
		views[i] = v
	}
	m, err := NewMatrix(t.name, views...)
	if err != nil {
		return err
	}
	t.epoch++
	snap := &TableSnapshot{Epoch: t.epoch, Gen: t.gen, Rows: t.rows, Matrix: m}
	t.snap.Store(snap)
	return nil
}
