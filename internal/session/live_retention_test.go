package session

import (
	"fmt"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
)

// Bounded-retention soak: 100k appended rows against a MaxRows policy,
// with exploration interleaved throughout. Everything that could grow
// with ingestion volume must instead stay bounded — the table itself,
// the retained result window, the pinned-version statistics caches, the
// kernel counter set, and the incremental group tables.
func TestLiveRetentionKeepsStateBounded(t *testing.T) {
	const (
		maxRows  = 3000
		nBatches = 1000
		perBatch = 100
		keyCard  = 8
	)
	m := NewManager(core.DefaultConfig())
	tb, err := storage.NewTable("events",
		storage.NewEmptyColumn("ts", storage.Int64),
		storage.NewEmptyColumn("key", storage.String),
		storage.NewEmptyColumn("value", storage.Int64),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.SetRetention(storage.Retention{MaxRows: maxRows}); err != nil {
		t.Fatal(err)
	}
	m.Catalog().RegisterLive(tb)

	// Seed rows so the objects have data to bind to.
	seed := make([][]storage.Value, 128)
	for i := range seed {
		seed[i] = []storage.Value{
			storage.IntValue(int64(i)),
			storage.StringValue(fmt.Sprintf("k%d", i%keyCard)),
			storage.IntValue(int64(i % 997)),
		}
	}
	if _, err := m.Append("events", seed); err != nil {
		t.Fatal(err)
	}

	// Session A slides over the value column (exercising the versioned
	// statistics chains); session B groups the whole table by key
	// (exercising grouper rebind across epochs and compactions).
	sa, err := m.Create("scanner")
	if err != nil {
		t.Fatal(err)
	}
	oa, err := sa.CreateColumnObject("events", "value", equivFrame)
	if err != nil {
		t.Fatal(err)
	}
	oa.SetActions(core.Actions{Mode: core.ModeAggregate, Agg: operator.Sum})
	sb, err := m.Create("grouper")
	if err != nil {
		t.Fatal(err)
	}
	ob, err := sb.CreateTableObject("events", equivFrame)
	if err != nil {
		t.Fatal(err)
	}
	ob.SetActions(core.Actions{Mode: core.ModeScan, Group: &core.GroupSpec{KeyCol: 1, ValCol: 2, Agg: operator.Sum}})

	next := 128
	var cur time.Duration
	for b := 0; b < nBatches; b++ {
		rows := make([][]storage.Value, perBatch)
		for i := range rows {
			rows[i] = []storage.Value{
				storage.IntValue(int64(next + i)),
				storage.StringValue(fmt.Sprintf("k%d", (next+i)%keyCard)),
				storage.IntValue(int64((next + i) % 997)),
			}
		}
		next += perBatch
		snap, err := m.Append("events", rows)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Rows > 2*maxRows+perBatch {
			t.Fatalf("batch %d: table holds %d rows, retention bound is %d", b, snap.Rows, 2*maxRows+perBatch)
		}
		if b%50 == 0 {
			// Touch both sessions; gesture spacing exceeds the fade
			// horizon, so the kernels' retained result windows stay small.
			if _, err := m.Dispatch("scanner", livePinSlide(cur)); err != nil {
				t.Fatal(err)
			}
			if _, err := m.Dispatch("grouper", livePinSlide(cur)); err != nil {
				t.Fatal(err)
			}
			cur += 3 * time.Second
		}
	}

	if got := tb.Rows(); got > 2*maxRows+perBatch {
		t.Fatalf("final table rows %d exceed retention bound %d", got, 2*maxRows+perBatch)
	}
	if tb.Gen() == 0 {
		t.Fatal("100k appends against a 3k cap never compacted")
	}

	st := m.LiveStore().Stats()
	if st.Tables != 1 {
		t.Fatalf("live store tracks %d tables, want 1", st.Tables)
	}
	if st.Pins > 2 {
		t.Fatalf("%d pins outstanding for 2 sessions", st.Pins)
	}
	// Version caches are pruned down to pinned + current on every repin;
	// they must not scale with the thousand epochs that passed.
	if st.CachedVersions > 2*st.Chains+2 {
		t.Fatalf("statistics cache holds %d versions across %d chains", st.CachedVersions, st.Chains)
	}

	for _, id := range []string{"scanner", "grouper"} {
		s, _ := m.Get(id)
		if err := s.Do(func(k *core.Kernel) error {
			emitted := k.Counters().Get("results.emitted")
			if emitted == 0 {
				return fmt.Errorf("%s emitted no results", id)
			}
			// The retained window is fade-bounded: far fewer results than
			// were emitted over the soak.
			if retained := len(k.Results()); int64(retained) >= emitted/2 {
				return fmt.Errorf("%s retains %d of %d results — fade pruning broke", id, retained, emitted)
			}
			// The counter namespace is a fixed vocabulary, not per-epoch.
			if n := len(k.Counters().Names()); n > 40 {
				return fmt.Errorf("%s counter namespace grew to %d entries", id, n)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// The group table is keyed by values, not rows: its cardinality is
	// the key domain even after 100k rows flowed through.
	var groups int
	if err := sb.Do(func(k *core.Kernel) error {
		o, err := k.Object(ob.ID())
		if err != nil {
			return err
		}
		groups = len(o.Groups())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if groups > keyCard {
		t.Fatalf("group table holds %d groups for a %d-key domain", groups, keyCard)
	}
	m.Close()
}
