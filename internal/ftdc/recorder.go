package ftdc

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Defaults for Options zero values.
const (
	// DefaultInterval is the sampler tick.
	DefaultInterval = time.Second
	// DefaultChunkSamples closes a chunk after this many ticks (5 minutes
	// at the default interval), bounding both replay granularity and how
	// much capture a crash can lose.
	DefaultChunkSamples = 300
	// DefaultRetainBytes bounds the whole capture directory.
	DefaultRetainBytes = 64 << 20
)

// Options configures a Recorder. Zero values take the defaults above.
type Options struct {
	// Dir is the capture directory; created if absent. Required.
	Dir string
	// MaxChunkSamples closes a chunk after this many recorded ticks.
	MaxChunkSamples int
	// MaxFileBytes rotates to a new capture file once the current one
	// exceeds this size. It is clamped to RetainBytes/4 so retention
	// always has at least a few files to delete — a single file as large
	// as the whole budget could never be trimmed without losing
	// everything.
	MaxFileBytes int64
	// RetainBytes bounds the total size of closed capture files; the
	// oldest files are deleted first. The directory itself is bounded by
	// RetainBytes + MaxFileBytes + one chunk.
	RetainBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxChunkSamples <= 0 {
		o.MaxChunkSamples = DefaultChunkSamples
	}
	if o.RetainBytes <= 0 {
		o.RetainBytes = DefaultRetainBytes
	}
	if o.MaxFileBytes <= 0 {
		o.MaxFileBytes = 1 << 20
	}
	if o.MaxFileBytes > o.RetainBytes/4 {
		o.MaxFileBytes = o.RetainBytes / 4
		if o.MaxFileBytes < 1 {
			o.MaxFileBytes = 1
		}
	}
	return o
}

// RecorderStats counts what the recorder has done; the session manager
// exposes these as gauges, so the flight recorder records itself too.
type RecorderStats struct {
	Samples       int64 // ticks recorded
	ChunksWritten int64 // chunks flushed to disk
	BytesWritten  int64 // compressed bytes written
	FilesRemoved  int64 // capture files deleted by retention
}

// Recorder accumulates samples into columnar chunks and writes them to a
// bounded capture directory. Safe for concurrent use; Record is cheap
// (no I/O) except on the tick that closes a chunk.
type Recorder struct {
	mu        sync.Mutex
	opts      Options
	names     []string
	cols      [][]int64
	samples   int
	f         *os.File
	fileBytes int64
	seq       int
	buf       []byte
	stats     RecorderStats
	closed    bool
}

// NewRecorder opens (creating if needed) the capture directory and
// starts a fresh capture file after any existing ones, so restarts never
// overwrite history — retention trims it like everything else.
func NewRecorder(opts Options) (*Recorder, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("ftdc: capture directory not set")
	}
	opts = opts.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ftdc: %w", err)
	}
	r := &Recorder{opts: opts}
	files, err := captureFiles(opts.Dir)
	if err != nil {
		return nil, err
	}
	if n := len(files); n > 0 {
		fmt.Sscanf(filepath.Base(files[n-1].name), "ftdc-%08d.bin", &r.seq)
	}
	return r, nil
}

// Record appends one tick. names and values are parallel; a schema
// change (names differing from the previous tick) closes the current
// chunk so every chunk is internally consistent. The slices are copied —
// callers may reuse them.
func (r *Recorder) Record(names []string, values []int64) error {
	if len(names) != len(values) || len(names) == 0 {
		return fmt.Errorf("ftdc: %d names for %d values", len(names), len(values))
	}
	if len(names) > maxChunkMetrics {
		return fmt.Errorf("ftdc: %d metrics exceeds limit %d", len(names), maxChunkMetrics)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("ftdc: recorder closed")
	}
	if !sameSchema(r.names, names) {
		if err := r.flushLocked(); err != nil {
			return err
		}
		r.names = append([]string(nil), names...)
		r.cols = make([][]int64, len(names))
	}
	for i, v := range values {
		r.cols[i] = append(r.cols[i], v)
	}
	r.samples++
	r.stats.Samples++
	if r.samples >= r.opts.MaxChunkSamples {
		return r.flushLocked()
	}
	return nil
}

func sameSchema(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Flush writes any partial chunk to disk — called on shutdown and on
// operator signal, so an incident capture is never missing its last
// minutes.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.flushLocked()
}

// Stats snapshots the recorder's own counters.
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close flushes and closes the current capture file.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	err := r.flushLocked()
	if r.f != nil {
		if cerr := r.f.Close(); err == nil {
			err = cerr
		}
		r.f = nil
	}
	r.closed = true
	return err
}

func (r *Recorder) flushLocked() error {
	if r.samples == 0 {
		return nil
	}
	r.buf = r.buf[:0]
	r.buf = binary.LittleEndian.AppendUint32(r.buf, 0) // placeholder
	r.buf = appendChunk(r.buf, r.names, r.cols)
	binary.LittleEndian.PutUint32(r.buf[:4], uint32(len(r.buf)-4))

	if r.f != nil && r.fileBytes+int64(len(r.buf)) > r.opts.MaxFileBytes {
		if err := r.f.Close(); err != nil {
			return fmt.Errorf("ftdc: %w", err)
		}
		r.f = nil
	}
	if r.f == nil {
		r.seq++
		name := filepath.Join(r.opts.Dir, fmt.Sprintf("ftdc-%08d.bin", r.seq))
		f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("ftdc: %w", err)
		}
		r.f = f
		r.fileBytes = 0
		if err := r.enforceRetentionLocked(); err != nil {
			return err
		}
	}
	if _, err := r.f.Write(r.buf); err != nil {
		return fmt.Errorf("ftdc: %w", err)
	}
	r.fileBytes += int64(len(r.buf))
	r.stats.ChunksWritten++
	r.stats.BytesWritten += int64(len(r.buf))
	for i := range r.cols {
		r.cols[i] = r.cols[i][:0]
	}
	r.samples = 0
	return nil
}

// enforceRetentionLocked deletes the oldest closed capture files until
// everything but the file being written fits RetainBytes.
func (r *Recorder) enforceRetentionLocked() error {
	files, err := captureFiles(r.opts.Dir)
	if err != nil {
		return err
	}
	var total int64
	for _, f := range files {
		total += f.size
	}
	cur := fmt.Sprintf("ftdc-%08d.bin", r.seq)
	for _, f := range files {
		if total <= r.opts.RetainBytes {
			break
		}
		if filepath.Base(f.name) == cur {
			break // never delete the live file
		}
		if err := os.Remove(f.name); err != nil {
			return fmt.Errorf("ftdc: retention: %w", err)
		}
		total -= f.size
		r.stats.FilesRemoved++
	}
	return nil
}

type captureFile struct {
	name string
	size int64
}

// captureFiles lists ftdc-*.bin in the directory, oldest (lowest
// sequence) first.
func captureFiles(dir string) ([]captureFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ftdc: %w", err)
	}
	var files []captureFile
	for _, e := range entries {
		var seq int
		if n, _ := fmt.Sscanf(e.Name(), "ftdc-%08d.bin", &seq); n != 1 {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with retention
		}
		files = append(files, captureFile{name: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })
	return files, nil
}
