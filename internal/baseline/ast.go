package baseline

import (
	"fmt"
	"strconv"
	"strings"

	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
)

// ColumnRef names a column, optionally table-qualified.
type ColumnRef struct {
	Table  string // "" when unqualified
	Column string
}

// String renders the reference.
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// SelectItem is one projection: a column, or an aggregate over a column
// (or over * for COUNT).
type SelectItem struct {
	// Agg is the aggregate, valid when IsAgg.
	IsAgg bool
	Agg   operator.AggKind
	// Star marks COUNT(*).
	Star bool
	Col  ColumnRef
	// Alias is the output name (AS), or "" for the default.
	Alias string
}

// Name returns the output column name.
func (s SelectItem) Name() string {
	if s.Alias != "" {
		return s.Alias
	}
	if s.IsAgg {
		if s.Star {
			return s.Agg.String() + "(*)"
		}
		return s.Agg.String() + "(" + s.Col.String() + ")"
	}
	return s.Col.String()
}

// Condition is one WHERE conjunct: column op literal, or column BETWEEN
// lo AND hi (expanded by the parser into two conjuncts).
type Condition struct {
	Col     ColumnRef
	Op      operator.CmpOp
	Operand storage.Value
}

// String renders the condition.
func (c Condition) String() string {
	return fmt.Sprintf("%s %s %s", c.Col, c.Op, c.Operand)
}

// JoinClause is an equi-join between two tables.
type JoinClause struct {
	Table string
	// LeftCol references the left (FROM) table, RightCol the joined one;
	// the parser normalizes the ON order.
	LeftCol  ColumnRef
	RightCol ColumnRef
}

// OrderClause sorts output.
type OrderClause struct {
	Col  ColumnRef
	Desc bool
}

// SelectStmt is the parsed query.
type SelectStmt struct {
	Items   []SelectItem
	Star    bool // SELECT *
	From    string
	Join    *JoinClause
	Where   []Condition
	GroupBy *ColumnRef
	OrderBy *OrderClause
	Limit   int // -1 = none
}

// String renders the statement canonically (useful in tests/logs).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Star {
		sb.WriteString("*")
	} else {
		parts := make([]string, len(s.Items))
		for i, it := range s.Items {
			parts[i] = it.Name()
		}
		sb.WriteString(strings.Join(parts, ", "))
	}
	sb.WriteString(" FROM " + s.From)
	if s.Join != nil {
		fmt.Fprintf(&sb, " JOIN %s ON %s = %s", s.Join.Table, s.Join.LeftCol, s.Join.RightCol)
	}
	if len(s.Where) > 0 {
		conds := make([]string, len(s.Where))
		for i, c := range s.Where {
			conds[i] = c.String()
		}
		sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if s.GroupBy != nil {
		sb.WriteString(" GROUP BY " + s.GroupBy.String())
	}
	if s.OrderBy != nil {
		sb.WriteString(" ORDER BY " + s.OrderBy.Col.String())
		if s.OrderBy.Desc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		sb.WriteString(" LIMIT " + strconv.Itoa(s.Limit))
	}
	return sb.String()
}
