package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog is the schema-lite registry of matrixes. dbTouch deliberately
// exposes only "what objects exist" (paper §2.2 "Schema-less Querying");
// detailed schema discovery happens through exploration gestures.
type Catalog struct {
	mu       sync.RWMutex
	matrixes map[string]*Matrix
	lives    map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{matrixes: make(map[string]*Matrix), lives: make(map[string]*Table)}
}

// Register adds m under its name, replacing any previous entry with the
// same name (including a live table of that name — the two registries
// share one namespace).
func (c *Catalog) Register(m *Matrix) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.matrixes[m.Name()] = m
	delete(c.lives, m.Name())
}

// RegisterLive adds a live table under its name, replacing any previous
// frozen or live entry with the same name.
func (c *Catalog) RegisterLive(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lives[t.Name()] = t
	delete(c.matrixes, t.Name())
}

// Live resolves a live table by name (nil, false when the name is absent
// or frozen).
func (c *Catalog) Live(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.lives[name]
	return t, ok
}

// IsLive reports whether name is registered as a live table.
func (c *Catalog) IsLive(name string) bool {
	_, ok := c.Live(name)
	return ok
}

// LiveTables lists the registered live tables in name order — the
// iteration surface for telemetry that aggregates append/retention
// counters across every table.
func (c *Catalog) LiveTables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.lives))
	for name := range c.lives {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Table, 0, len(names))
	for _, name := range names {
		out = append(out, c.lives[name])
	}
	return out
}

// Drop removes the named matrix or live table and reports whether it
// existed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, okM := c.matrixes[name]
	_, okL := c.lives[name]
	delete(c.matrixes, name)
	delete(c.lives, name)
	return okM || okL
}

// Get resolves a matrix by name. For a live table this returns the
// current snapshot's matrix — an immutable version, not a handle that
// follows appends; callers that must track epochs resolve via Live.
func (c *Catalog) Get(name string) (*Matrix, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if m, ok := c.matrixes[name]; ok {
		return m, nil
	}
	if t, ok := c.lives[name]; ok {
		return t.Snapshot().Matrix, nil
	}
	return nil, fmt.Errorf("storage: no matrix named %q", name)
}

// List returns the registered names (frozen and live) in sorted order.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.matrixes)+len(c.lives))
	for name := range c.matrixes {
		names = append(names, name)
	}
	for name := range c.lives {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of registered entries (frozen and live).
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.matrixes) + len(c.lives)
}
