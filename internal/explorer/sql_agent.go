package explorer

import (
	"fmt"
	"time"

	"dbtouch/internal/baseline"
	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

// SQLAgent explores a task through the traditional DBMS: global
// aggregates first, then recursive bucketed drill-down with WHERE range
// predicates — the natural strategy at a SQL prompt. Every query is a
// monolithic full scan (the engine has no index on id), and every query
// costs analyst compose time: the two contest handicaps the paper's
// Appendix A pits against each other.
type SQLAgent struct {
	// QueryComposeTime is the analyst time to think up and type one
	// query.
	QueryComposeTime time.Duration
	// Buckets is the drill-down fan-out per round.
	Buckets int
	// MaxRounds bounds the drill-down depth.
	MaxRounds int
	// ZThreshold is the anomaly trigger on bucket means.
	ZThreshold float64
}

// DefaultSQLAgent models a fluent SQL analyst: ten seconds per query,
// eight buckets per round.
func DefaultSQLAgent() SQLAgent {
	return SQLAgent{
		QueryComposeTime: 10 * time.Second,
		Buckets:          8,
		MaxRounds:        8,
		ZThreshold:       2.5,
	}
}

// Run explores the task and reports the discovery.
func (a SQLAgent) Run(task Task, params iomodel.Params) (Discovery, error) {
	clock := vclock.New()
	eng := baseline.New(clock, params)
	m, err := storage.NewMatrix("t", task.IDs, task.Column)
	if err != nil {
		return Discovery{}, err
	}
	if err := eng.Register(m); err != nil {
		return Discovery{}, err
	}

	thinkTime := time.Duration(0)
	queries := 0
	ask := func(sql string) (*baseline.ResultSet, error) {
		clock.Advance(a.QueryComposeTime)
		thinkTime += a.QueryComposeTime
		queries++
		return eng.Query(sql)
	}

	// Global picture first.
	if _, err := ask("SELECT AVG(v), STDDEV(v), MIN(v), MAX(v) FROM t"); err != nil {
		return Discovery{}, err
	}

	lo, hi := 0, task.Rows
	for round := 0; round < a.MaxRounds; round++ {
		buckets := a.Buckets
		width := (hi - lo) / buckets
		if width < 1 {
			break
		}
		means := make([]float64, 0, buckets)
		bounds := make([][2]int, 0, buckets)
		for b := 0; b < buckets; b++ {
			bLo := lo + b*width
			bHi := bLo + width
			if b == buckets-1 {
				bHi = hi
			}
			rs, err := ask(fmt.Sprintf("SELECT AVG(v) FROM t WHERE id >= %d AND id < %d", bLo, bHi))
			if err != nil {
				return Discovery{}, err
			}
			if len(rs.Rows) == 1 && len(rs.Rows[0]) == 1 {
				means = append(means, rs.Rows[0][0].AsFloat())
				bounds = append(bounds, [2]int{bLo, bHi})
			}
		}
		wLo, wHi, found := anomalousRegion(means, a.ZThreshold)
		if !found {
			// No bucket stands out at this width; the pattern is thinner
			// than a bucket — the analyst re-buckets the same range more
			// finely (up to a sanity bound).
			if width <= 2 || a.Buckets >= 64 {
				break
			}
			a.Buckets *= 2
			continue
		}
		lo, hi = bounds[wLo][0], bounds[wHi][1]
		stats := eng.TotalStats()
		if hi-lo <= maxInt(task.Rows/200, 64) {
			elapsed := clock.Now()
			return Discovery{
				Found: true, Lo: lo, Hi: hi,
				Elapsed:     elapsed,
				MachineTime: elapsed - thinkTime,
				TuplesRead:  stats.ValuesRead,
				Actions:     queries,
			}, nil
		}
	}
	elapsed := clock.Now()
	return Discovery{
		Found: lo > 0 || hi < task.Rows, Lo: lo, Hi: hi,
		Elapsed:     elapsed,
		MachineTime: elapsed - thinkTime,
		TuplesRead:  eng.TotalStats().ValuesRead,
		Actions:     queries,
	}, nil
}
