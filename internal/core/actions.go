// Package core implements the dbTouch kernel — the paper's primary
// contribution. The kernel sits between the (simulated) touch operating
// system and the storage substrates (Figure 3): once a touch is
// registered, the kernel maps it to data and executes the configured
// exploration operators, charging all work to a virtual clock. Contrary to
// a traditional engine, the flow runs *per touch*, not per query: the user
// controls the data flow, the kernel reacts. Slide steps execute
// span-at-a-time — each delivered touch covers the whole tuple range swept
// since the previous one and dispatches it through the storage range
// kernels (Config.ScalarSlide selects the tuple-at-a-time reference path).
//
// One kernel is one exploration session's mutable world: clock, screen,
// dispatcher, objects, trackers, result log. The storage it reads
// (catalog, columns, sample hierarchies) can be shared immutably across
// many kernels — internal/session builds the multi-user layer on exactly
// that split.
package core

import (
	"fmt"

	"dbtouch/internal/operator"
)

// Mode selects what a touch on a data object does — the "query actions"
// the user enables before starting a gesture (paper §2.3: "users define
// the query they wish to run by choosing a few query actions... and then
// they start a slide gesture").
type Mode uint8

// Touch modes.
const (
	// ModeScan delivers the raw value under the finger.
	ModeScan Mode = iota
	// ModeAggregate maintains a running aggregate over all touched
	// entries, continuously updated as the gesture evolves.
	ModeAggregate
	// ModeSummary computes an interactive summary: a window aggregate
	// over [id−k, id+k] per touch (paper §2.7).
	ModeSummary
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeScan:
		return "scan"
	case ModeAggregate:
		return "aggregate"
	case ModeSummary:
		return "summary"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// GroupSpec configures incremental grouping: touched tuples contribute
// value-column entries to the group of their key-column entry.
type GroupSpec struct {
	KeyCol int
	ValCol int
	Agg    operator.AggKind
}

// JoinSpec configures a slide-driven join between this object's column
// and another object's column. Touches on either object feed the
// symmetric (non-blocking) hash join.
type JoinSpec struct {
	// OtherObject is the id of the partner data object.
	OtherObject int
	// Side is this object's role: "left" or "right".
	Side JoinSide
}

// JoinSide labels which input of the join an object feeds.
type JoinSide uint8

// Join sides.
const (
	JoinLeft JoinSide = iota
	JoinRight
)

// Actions is the per-object query configuration driving what every touch
// executes.
type Actions struct {
	Mode Mode
	// Agg is the aggregate function for ModeAggregate and ModeSummary.
	Agg operator.AggKind
	// SummaryK is the summary half-window (ModeSummary); 2K+1 entries
	// contribute to each summary value.
	SummaryK int
	// Filters are WHERE conjuncts evaluated per touched tuple; tuples
	// failing the filters produce no result (paper §2.9: "perform
	// selections by posing a where restriction to the scan").
	Filters []operator.Predicate
	// ValueOrder slides in value order through the per-level sorted
	// index instead of position order — the index-scan equivalent
	// (paper §2.6 "Indexing").
	ValueOrder bool
	// Group enables incremental grouping.
	Group *GroupSpec
	// Join enables a slide-driven symmetric join.
	Join *JoinSpec
}

// DefaultActions returns the exploratory default: interactive summaries
// with an average aggregation — "a good default choice" (paper §2.7) —
// and k=10 as in the paper's evaluation.
func DefaultActions() Actions {
	return Actions{Mode: ModeSummary, Agg: operator.Avg, SummaryK: 10}
}
