package ftdc

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// genColumn synthesizes a gauge trajectory of the shapes telemetry
// actually takes: constants, counters, random walks, and violent
// excursions to the int64 edges.
func genColumn(rng *rand.Rand, n int) []int64 {
	col := make([]int64, n)
	switch rng.Intn(5) {
	case 0: // constant gauge
		v := rng.Int63n(1000)
		for i := range col {
			col[i] = v
		}
	case 1: // monotone counter with steady rate
		v, step := rng.Int63n(1e6), rng.Int63n(5000)
		for i := range col {
			col[i] = v
			v += step + rng.Int63n(7)
		}
	case 2: // random walk
		v := int64(0)
		for i := range col {
			v += rng.Int63n(2001) - 1000
			col[i] = v
		}
	case 3: // spiky queue depth
		for i := range col {
			if rng.Intn(10) == 0 {
				col[i] = rng.Int63n(1e9)
			}
		}
	default: // adversarial edges: wrap-around territory
		edges := []int64{0, 1, -1, math.MaxInt64, math.MinInt64, math.MaxInt64 - 1, math.MinInt64 + 1}
		for i := range col {
			col[i] = edges[rng.Intn(len(edges))]
		}
	}
	return col
}

// TestChunkRoundTripExact is the codec's acceptance gate: every gauge
// value decodes bit-for-bit, including wrap-around deltas.
func TestChunkRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		metrics := 1 + rng.Intn(12)
		samples := 1 + rng.Intn(400)
		names := make([]string, metrics)
		cols := make([][]int64, metrics)
		for i := range names {
			names[i] = "metric_" + string(rune('a'+i))
			cols[i] = genColumn(rng, samples)
		}
		payload := appendChunk(nil, names, cols)
		c, err := decodeChunk(payload)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(c.Names, names) {
			t.Fatalf("trial %d: names %v != %v", trial, c.Names, names)
		}
		if !reflect.DeepEqual(c.Columns, cols) {
			t.Fatalf("trial %d: columns diverged", trial)
		}
	}
}

// TestChunkCompression pins what makes always-on capture affordable:
// near-constant gauges cost well under a byte per sample.
func TestChunkCompression(t *testing.T) {
	const samples = 300
	names := []string{"workers", "parked", "steals"}
	cols := make([][]int64, len(names))
	for i := range cols {
		col := make([]int64, samples)
		for j := range col {
			col[j] = 8 // constant gauge
		}
		cols[i] = col
	}
	payload := appendChunk(nil, names, cols)
	raw := 8 * samples * len(names)
	if len(payload) > raw/50 {
		t.Fatalf("constant gauges compressed to %d bytes (raw %d); want ≥ 50x", len(payload), raw)
	}
	t.Logf("300 constant samples x 3 metrics: %d bytes (%.1fx vs raw)", len(payload), float64(raw)/float64(len(payload)))
}

// TestRecorderRoundTrip drives Record → chunks on disk → ReadDir and
// requires exact reproduction, across chunk and file boundaries.
func TestRecorderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(Options{Dir: dir, MaxChunkSamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ts", "live", "steals"}
	const ticks = 200
	want := make([][]int64, ticks)
	rng := rand.New(rand.NewSource(9))
	v := [3]int64{1e9, 0, 0}
	for i := 0; i < ticks; i++ {
		v[0] += 1000 + rng.Int63n(5)
		v[1] = rng.Int63n(100)
		v[2] += rng.Int63n(50)
		want[i] = []int64{v[0], v[1], v[2]}
		if err := rec.Record(names, want[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	chunks, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int64
	for _, c := range chunks {
		if !reflect.DeepEqual(c.Names, names) {
			t.Fatalf("chunk names %v", c.Names)
		}
		for s := 0; s < c.SampleCount(); s++ {
			row := make([]int64, len(c.Columns))
			for m := range c.Columns {
				row[m] = c.Columns[m][s]
			}
			got = append(got, row)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("capture diverged: %d rows decoded, want %d", len(got), len(want))
	}
	// 200 ticks at 32 samples/chunk = 7 chunks (6 full + flush of 8).
	if len(chunks) != 7 {
		t.Fatalf("got %d chunks, want 7", len(chunks))
	}
}

// TestSchemaChangeSplitsChunk: adding a metric mid-capture closes the
// chunk, so no column is ever misattributed.
func TestSchemaChangeSplitsChunk(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec.Record([]string{"a"}, []int64{1})
	rec.Record([]string{"a"}, []int64{2})
	rec.Record([]string{"a", "b"}, []int64{3, 30})
	rec.Record([]string{"a"}, []int64{4})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	chunks, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3 (schema change splits)", len(chunks))
	}
	if !reflect.DeepEqual(chunks[0].Column("a"), []int64{1, 2}) ||
		!reflect.DeepEqual(chunks[1].Column("b"), []int64{30}) ||
		!reflect.DeepEqual(chunks[2].Column("a"), []int64{4}) {
		t.Fatalf("chunks misattributed: %+v", chunks)
	}
}

// TestRecorderRetention soaks the recorder far past its disk budget and
// requires the directory to stay bounded while the newest data survives.
func TestRecorderRetention(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, MaxChunkSamples: 16, MaxFileBytes: 4 << 10, RetainBytes: 16 << 10}
	rec, err := NewRecorder(opts)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"ts", "noise"}
	rng := rand.New(rand.NewSource(3))
	var lastTS int64
	for i := 0; i < 20000; i++ {
		lastTS = int64(i) * 1000
		// Incompressible noise, so chunks have real size.
		if err := rec.Record(names, []int64{lastTS, rng.Int63()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	var total int64
	files, err := captureFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		total += f.size
	}
	bound := opts.RetainBytes + opts.MaxFileBytes + 8<<10 // budget + live file + one chunk of slack
	if total > bound {
		t.Fatalf("capture dir holds %d bytes, bound %d", total, bound)
	}
	if rec.Stats().FilesRemoved == 0 {
		t.Fatal("soak never triggered retention")
	}

	chunks, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) == 0 {
		t.Fatal("retention deleted everything")
	}
	ts := chunks[len(chunks)-1].Column("ts")
	if got := ts[len(ts)-1]; got != lastTS {
		t.Fatalf("newest sample ts=%d, want %d — retention must delete oldest first", got, lastTS)
	}
}

// TestReaderToleratesTruncation: a capture cut mid-chunk (crash, live
// file) yields its decodable prefix without error.
func TestReaderToleratesTruncation(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(Options{Dir: dir, MaxChunkSamples: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ { // 3 full chunks
		rec.Record([]string{"v"}, []int64{int64(i)})
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := captureFiles(dir)
	if err != nil || len(files) == 0 {
		t.Fatalf("capture files: %v %v", files, err)
	}
	path := files[0].name
	full, _ := os.ReadFile(path)
	for _, cut := range []int64{files[0].size - 3, files[0].size / 2, 2} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		chunks, err := ReadFile(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		for _, c := range chunks {
			if c.SampleCount() != 8 {
				t.Fatalf("cut at %d: partial chunk decoded", cut)
			}
		}
	}
}

// TestReaderRejectsCorruption: flipped bytes inside a chunk error rather
// than decode silently wrong.
func TestReaderRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	rec, err := NewRecorder(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec.Record([]string{"v"}, []int64{7})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := captureFiles(dir)
	data, _ := os.ReadFile(files[0].name)
	data[4] ^= 0xFF // corrupt chunk magic
	bad := filepath.Join(dir, "ftdc-00000002.bin")
	os.WriteFile(bad, data, 0o644)
	if _, err := ReadFile(bad); err == nil {
		t.Fatal("corrupt chunk decoded without error")
	}
}
