// Package viz renders the dbTouch front-end in ASCII: data objects appear
// as rectangles on the screen grid, and results pop up in place and fade
// with age, approximating the interactive feel of Figure 2 in a terminal.
// The kernel is fully independent of rendering; examples and the demo CLI
// use this package to show what the user would see.
package viz

import (
	"fmt"
	"strings"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/touchos"
)

// CellsPerCmX and CellsPerCmY map screen centimeters to character cells.
const (
	CellsPerCmX = 4
	CellsPerCmY = 2
)

// Canvas is a character grid.
type Canvas struct {
	w, h  int
	cells [][]rune
}

// NewCanvas allocates a canvas for a screen of the given size in cm.
func NewCanvas(screenW, screenH float64) *Canvas {
	w := int(screenW*CellsPerCmX) + 1
	h := int(screenH*CellsPerCmY) + 1
	cells := make([][]rune, h)
	for i := range cells {
		cells[i] = make([]rune, w)
		for j := range cells[i] {
			cells[i][j] = ' '
		}
	}
	return &Canvas{w: w, h: h, cells: cells}
}

// set writes a rune, ignoring out-of-range coordinates.
func (c *Canvas) set(x, y int, r rune) {
	if x < 0 || y < 0 || x >= c.w || y >= c.h {
		return
	}
	c.cells[y][x] = r
}

// text writes a string horizontally.
func (c *Canvas) text(x, y int, s string) {
	for i, r := range s {
		c.set(x+i, y, r)
	}
}

// String renders the canvas.
func (c *Canvas) String() string {
	var sb strings.Builder
	for _, row := range c.cells {
		sb.WriteString(strings.TrimRight(string(row), " "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// drawRect draws a bordered rectangle for a view frame (cm coords).
func (c *Canvas) drawRect(f touchos.Rect, label string) {
	x0 := int(f.Origin.X * CellsPerCmX)
	y0 := int(f.Origin.Y * CellsPerCmY)
	x1 := int((f.Origin.X + f.Size.W) * CellsPerCmX)
	y1 := int((f.Origin.Y + f.Size.H) * CellsPerCmY)
	for x := x0; x <= x1; x++ {
		c.set(x, y0, '-')
		c.set(x, y1, '-')
	}
	for y := y0; y <= y1; y++ {
		c.set(x0, y, '|')
		c.set(x1, y, '|')
	}
	c.set(x0, y0, '+')
	c.set(x1, y0, '+')
	c.set(x0, y1, '+')
	c.set(x1, y1, '+')
	if label != "" && x1-x0 > 2 {
		max := x1 - x0 - 1
		if len(label) > max {
			label = label[:max]
		}
		c.text(x0+1, y0, label)
	}
}

// Render draws the screen's data objects plus the results still visible
// at virtual time now. Results render next to their object at the height
// proportional to their tuple id; freshly produced values print in full,
// aging ones dim to '·' before vanishing at FadeAt.
func Render(screen *touchos.View, objects []*core.Object, results []core.Result, now time.Duration) string {
	c := NewCanvas(screen.Frame().Size.W, screen.Frame().Size.H)
	byID := make(map[int]*core.Object, len(objects))
	for _, o := range objects {
		byID[o.ID()] = o
		c.drawRect(o.View().Frame(), o.View().Name())
	}
	for _, r := range results {
		if r.FadeAt <= now || r.Time > now {
			continue
		}
		o, ok := byID[r.ObjectID]
		if !ok {
			continue
		}
		f := o.View().Frame()
		rows := o.Rows()
		frac := 0.5
		if rows > 1 {
			frac = float64(r.TupleID) / float64(rows-1)
		}
		x := int((f.Origin.X + f.Size.W + 0.3) * CellsPerCmX)
		y := int((f.Origin.Y + frac*f.Size.H) * CellsPerCmY)
		age := float64(now-r.Time) / float64(r.FadeAt-r.Time)
		label := resultLabel(r)
		switch {
		case age < 0.5:
			c.text(x, y, label)
		case age < 0.8:
			c.text(x, y, dim(label))
		default:
			c.text(x, y, strings.Repeat("·", minInt(3, len(label))))
		}
	}
	return c.String()
}

func resultLabel(r core.Result) string {
	switch r.Kind {
	case core.ScanValue:
		return r.Value.String()
	case core.SummaryValue, core.AggregateValue, core.GroupValue:
		return fmt.Sprintf("%.4g", r.Agg)
	case core.JoinMatches:
		return fmt.Sprintf("⋈%d", len(r.Matches))
	case core.TuplePeek:
		parts := make([]string, 0, len(r.Tuple))
		for _, v := range r.Tuple {
			parts = append(parts, v.String())
		}
		return "(" + strings.Join(parts, ",") + ")"
	default:
		return "?"
	}
}

// dim replaces half the characters with middle dots to suggest fading.
func dim(s string) string {
	out := []rune(s)
	for i := range out {
		if i%2 == 1 {
			out[i] = '·'
		}
	}
	return string(out)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
