package remote

import (
	"fmt"
	"testing"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

func buildPair(t *testing.T, n, offset int) (*vclock.Clock, *Server, *Device) {
	t.Helper()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	server, err := NewServer(storage.NewIntColumn("v", vals), 12, iomodel.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.New()
	dev, err := NewDevice(clock, server, offset, 3, iomodel.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return clock, server, dev
}

func TestLocalAnswerImmediate(t *testing.T) {
	clock, _, dev := buildPair(t, 1<<16, 4)
	ans := dev.Touch(1000, 4) // want == local finest: no remote request
	if ans.Level != 4 {
		t.Fatalf("answer level = %d", ans.Level)
	}
	// Local stride 16: represented id snaps down.
	if ans.BaseID != (1000/16)*16 {
		t.Fatalf("answer base id = %d", ans.BaseID)
	}
	if ans.Value != float64(ans.BaseID) {
		t.Fatalf("answer value = %v", ans.Value)
	}
	if dev.Stats().RoundTrips != 0 || dev.InFlight() != 0 {
		t.Fatal("no remote traffic expected")
	}
	_ = clock
}

func TestRefinementArrivesAfterRTT(t *testing.T) {
	clock, _, dev := buildPair(t, 1<<16, 4)
	dev.BatchWindow = 0 // per-touch requests
	dev.Touch(1000, 0)  // wants base-level detail
	if dev.Stats().RoundTrips != 1 {
		t.Fatalf("round trips = %d", dev.Stats().RoundTrips)
	}
	if got := dev.Poll(); len(got) != 0 {
		t.Fatal("refinement cannot arrive instantly")
	}
	clock.Advance(500 * time.Millisecond)
	got := dev.Poll()
	if len(got) != 1 {
		t.Fatalf("refinements = %v", got)
	}
	r := got[0]
	if r.BaseID != 1000 || r.Value != 1000 || r.Level != 0 {
		t.Fatalf("refinement = %+v", r)
	}
	if r.ArrivesAt <= r.RequestedAt {
		t.Fatal("arrival must be after request")
	}
}

func TestBatchingCutsRoundTrips(t *testing.T) {
	run := func(window time.Duration) Stats {
		clock, _, dev := buildPair(t, 1<<16, 4)
		dev.BatchWindow = window
		for i := 0; i < 30; i++ {
			dev.Touch(i*1000, 0)
			clock.Advance(20 * time.Millisecond)
			dev.Poll()
		}
		dev.Flush()
		clock.Advance(time.Second)
		dev.Poll()
		return dev.Stats()
	}
	batched := run(200 * time.Millisecond)
	perTouch := run(0)
	if batched.RoundTrips >= perTouch.RoundTrips {
		t.Fatalf("batched %d round trips vs per-touch %d", batched.RoundTrips, perTouch.RoundTrips)
	}
	if batched.Refinements != perTouch.Refinements {
		t.Fatalf("batching lost refinements: %d vs %d", batched.Refinements, perTouch.Refinements)
	}
}

func TestBatchDeduplicatesSnappedIDs(t *testing.T) {
	clock, _, dev := buildPair(t, 1<<16, 8)
	dev.BatchWindow = 100 * time.Millisecond
	// Two touches that snap to the same level-2 entry.
	dev.Touch(1000, 2)
	dev.Touch(1001, 2)
	dev.Flush()
	clock.Advance(time.Second)
	got := dev.Poll()
	if len(got) != 1 {
		t.Fatalf("refinements = %d, want 1 (deduplicated)", len(got))
	}
}

func TestServerReadRange(t *testing.T) {
	_, server, _ := buildPair(t, 1024, 2)
	values, ids, cost := server.ReadRange(100, 110, 0)
	if len(values) != 10 || ids[0] != 100 {
		t.Fatalf("read = %v at %v", values, ids)
	}
	if cost <= 0 {
		t.Fatal("server read should cost server time")
	}
}

func TestNewDeviceValidation(t *testing.T) {
	_, server, _ := buildPair(t, 1024, 2)
	clock := vclock.New()
	if _, err := NewDevice(clock, server, -1, 2, iomodel.DefaultParams()); err == nil {
		t.Fatal("negative offset should error")
	}
	if _, err := NewDevice(clock, server, 99, 2, iomodel.DefaultParams()); err == nil {
		t.Fatal("excessive offset should error")
	}
}

func TestBytesMovedAccounting(t *testing.T) {
	clock, _, dev := buildPair(t, 1<<16, 4)
	dev.BatchWindow = 0
	dev.Touch(0, 0)
	dev.Touch(5000, 0)
	clock.Advance(time.Second)
	dev.Poll()
	if got := dev.Stats().BytesMoved; got != 16 {
		t.Fatalf("bytes moved = %d, want 16 (two values)", got)
	}
}

// TestConcurrentDeviceSessions shares one server across many device
// sessions, each on its own goroutine with its own clock — the remote
// half of the session layer's shared-immutable contract. Every device
// must get correct refinements; `go test -race` proves the server side
// is safe under the load.
func TestConcurrentDeviceSessions(t *testing.T) {
	vals := make([]int64, 1<<16)
	for i := range vals {
		vals[i] = int64(i)
	}
	server, err := NewServer(storage.NewIntColumn("v", vals), 12, iomodel.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const devices = 8
	errs := make(chan error, devices)
	for d := 0; d < devices; d++ {
		d := d
		go func() {
			clock := vclock.New()
			dev, err := NewDevice(clock, server, 4, 3, iomodel.DefaultParams())
			if err != nil {
				errs <- err
				return
			}
			dev.BatchWindow = 0
			want := (d*977 + 1000) &^ 15 // stride-16 aligned base id
			dev.Touch(want, 0)
			clock.Advance(time.Second)
			refs := dev.Poll()
			if len(refs) != 1 {
				errs <- fmt.Errorf("device %d: %d refinements, want 1", d, len(refs))
				return
			}
			if refs[0].BaseID != want || refs[0].Value != float64(want) {
				errs <- fmt.Errorf("device %d: refinement (%d, %v), want (%d, %d)", d, refs[0].BaseID, refs[0].Value, want, want)
				return
			}
			errs <- nil
		}()
	}
	for d := 0; d < devices; d++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
