package storage

import "math"

// Fused filter+aggregate kernels: when a WHERE-restricted slide only
// feeds a running aggregate, materializing the qualifying positions is
// pure overhead — the selection vector is written by one kernel, read
// once by the next, and thrown away. The kernels here classify and
// aggregate in a single pass over the native backing slice with the same
// branch-free predicate masks as FilterRange, turning the qualifying test
// into integer mask arithmetic: sum += v&m, count += pass, and min/max
// select through sentinel values, so the inner loop carries no
// data-dependent branch on integer-backed columns.
//
// Float columns keep a branchy accumulate (a masked float add would turn
// -0.0, NaN and Inf non-qualifiers into sum perturbations) with a single
// accumulator in strict left-to-right order over the qualifying values —
// the same order a scalar filter-then-add loop produces within one
// kernel call. Chunked (blocked) scans merge chunk partials in chunk
// order, which reassociates float addition; the pipeline therefore
// routes float sum/avg slides through the unfused path (see
// core.Object.trySlideFused) and fuses floats only for the exact
// min/max/count kinds.

// FilterAgg is the result of one fused filter+aggregate scan: the count,
// sum, minimum and maximum of the qualifying values. With no qualifiers
// Min/Max are +Inf/-Inf and Sum is 0, matching MinMaxRange on an empty
// range. Integer-backed columns report Exact=true and carry the exact
// int64 sum in IntSum (Sum mirrors it in float64); merging exact chunks
// stays exact, so a scan split into cost-model blocks loses nothing.
type FilterAgg struct {
	// N counts qualifying values.
	N int
	// Sum is the float sum of qualifying values (exactly float64(IntSum)
	// when Exact).
	Sum float64
	// IntSum is the exact integer sum for integer-backed columns
	// (overflow wraps, like any int64 sum).
	IntSum int64
	// Exact reports that IntSum is authoritative.
	Exact bool
	// Min and Max are the extrema of qualifying values (+Inf/-Inf when
	// N == 0); NaN qualifiers are skipped, matching a scalar
	// `if v < min` loop.
	Min, Max float64
}

// emptyFilterAgg is the zero-qualifier result.
func emptyFilterAgg() FilterAgg {
	return FilterAgg{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Merge folds b — a later chunk of the same scan — into a, preserving
// chunk order for float sums and exactness for integer sums.
func (a *FilterAgg) Merge(b FilterAgg) {
	if b.N == 0 {
		return
	}
	if a.N == 0 {
		*a = b
		return
	}
	a.N += b.N
	if a.Exact && b.Exact {
		a.IntSum += b.IntSum
		a.Sum = float64(a.IntSum)
	} else {
		a.Exact = false
		a.Sum += b.Sum
	}
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
}

// filterAggInt is the shared masked-accumulation core over int64 values
// with a pre-decomposed predicate.
type filterAggInt struct {
	cnt  int
	isum int64
	mn   int64
	mx   int64
}

func newFilterAggInt() filterAggInt {
	return filterAggInt{mn: math.MaxInt64, mx: math.MinInt64}
}

// absorb folds value v with pass mask p (0 or 1) — no branches: the
// sentinel select keeps mn/mx untouched on a fail.
func (f *filterAggInt) absorb(v int64, p int) {
	m := int64(-p) // 0 or -1
	f.cnt += p
	f.isum += v & m
	f.mn = min(f.mn, v&m|(math.MaxInt64&^m))
	f.mx = max(f.mx, v&m|(math.MinInt64&^m))
}

func (f filterAggInt) result() FilterAgg {
	agg := FilterAgg{N: f.cnt, IntSum: f.isum, Sum: float64(f.isum), Exact: true, Min: math.Inf(1), Max: math.Inf(-1)}
	if f.cnt > 0 {
		agg.Min, agg.Max = float64(f.mn), float64(f.mx)
	}
	return agg
}

// FilterAggRange filters values [lo, hi) by `value op operand` (exactly
// FilterRange's semantics) and aggregates the qualifying values in the
// same pass, returning their count, sum, minimum and maximum — the fused
// kernel behind WHERE + aggregate slides, which skips the selection
// vector entirely. Equal by construction to FilterRange followed by
// aggregation over the selection (asserted by TestFusedKernelsMatchCompose).
//
// All whole-range fused entry points (this one, FilterSumRange,
// FilterMinMaxRange, FilterCountRange) lower the predicate once with
// preparePred and run the mode-specialized fusedChunk inner loops — the
// same kind-specialized kernels the blocked scans use, so the generic
// entry points no longer pay the full count+sum+min/max bookkeeping when
// the caller wants less.
func (c *Column) FilterAggRange(lo, hi int, op RangeOp, operand Value) FilterAgg {
	lo, hi = c.clampRange(lo, hi)
	if hi == lo {
		return emptyFilterAgg()
	}
	pp := c.preparePred(op, operand)
	return c.fusedChunk(&pp, lo, hi, FusedFull)
}

// filterAggBools aggregates qualifying bool cells: the predicate has only
// two possible outcomes, so the loop reduces to table lookups and the
// extrema follow from the pass counts of zeros and ones.
func filterAggBools(vals []byte, b float64, wLt, wGt, wEq int) FilterAgg {
	var tab [2]int
	tab[0] = passFloat(0, b, wLt, wGt, wEq)
	tab[1] = passFloat(1, b, wLt, wGt, wEq)
	cnt, ones := 0, 0
	for _, v := range vals {
		p := tab[v&1]
		cnt += p
		ones += p & int(v&1)
	}
	agg := FilterAgg{N: cnt, IntSum: int64(ones), Sum: float64(ones), Exact: true, Min: math.Inf(1), Max: math.Inf(-1)}
	if cnt > 0 {
		agg.Min, agg.Max = 1, 0
		if cnt > ones { // at least one qualifying zero
			agg.Min = 0
		}
		if ones > 0 {
			agg.Max = 1
		}
	}
	return agg
}

// FilterAggSel filters the positions of sel by `value op operand` and
// aggregates the qualifying values in the same pass — the fused form of
// FilterSel + aggregation for the final conjunct of a multi-conjunct
// WHERE. Out-of-range positions are skipped, matching FilterSel. Like
// the whole-range entry points, the selection forms all route through
// the mode-specialized fusedSelChunk loops.
func (c *Column) FilterAggSel(sel []int32, op RangeOp, operand Value) FilterAgg {
	if len(sel) == 0 {
		return emptyFilterAgg()
	}
	pp := c.preparePred(op, operand)
	return c.fusedSelChunk(&pp, sel, c.Len(), FusedFull)
}

// sumMaskedLe counts and sums values v <= bound — the single-compare
// masked loop, unrolled with independent accumulator pairs so the adds
// overlap in the pipeline (the hottest fused inner loop).
func sumMaskedLe(vals []int64, bound int64) (cnt int, isum int64) {
	var c0, c1, c2, c3 int
	var s0, s1, s2, s3 int64
	v := vals
	for len(v) >= 4 {
		p0 := b2i(v[0] <= bound)
		c0 += p0
		s0 += v[0] & int64(-p0)
		p1 := b2i(v[1] <= bound)
		c1 += p1
		s1 += v[1] & int64(-p1)
		p2 := b2i(v[2] <= bound)
		c2 += p2
		s2 += v[2] & int64(-p2)
		p3 := b2i(v[3] <= bound)
		c3 += p3
		s3 += v[3] & int64(-p3)
		v = v[4:]
	}
	for _, x := range v {
		p := b2i(x <= bound)
		c0 += p
		s0 += x & int64(-p)
	}
	return c0 + c1 + c2 + c3, s0 + s1 + s2 + s3
}

// sumMaskedGe counts and sums values v >= bound.
func sumMaskedGe(vals []int64, bound int64) (cnt int, isum int64) {
	var c0, c1, c2, c3 int
	var s0, s1, s2, s3 int64
	v := vals
	for len(v) >= 4 {
		p0 := b2i(v[0] >= bound)
		c0 += p0
		s0 += v[0] & int64(-p0)
		p1 := b2i(v[1] >= bound)
		c1 += p1
		s1 += v[1] & int64(-p1)
		p2 := b2i(v[2] >= bound)
		c2 += p2
		s2 += v[2] & int64(-p2)
		p3 := b2i(v[3] >= bound)
		c3 += p3
		s3 += v[3] & int64(-p3)
		v = v[4:]
	}
	for _, x := range v {
		p := b2i(x >= bound)
		c0 += p
		s0 += x & int64(-p)
	}
	return c0 + c1 + c2 + c3, s0 + s1 + s2 + s3
}

// filterSumIntsPred is the lowered-predicate fused filter+sum core: the
// SIMD kernel when the build+host provides one (the interval compare
// covers every predicate shape), else the shape-specialized scalar loops
// — single-compare masked sums for the one-sided operators, the
// two-compare interval test only for Eq/Ne.
func filterSumIntsPred(vals []int64, p intPred) (cnt int, isum int64) {
	if simdFilterSum && len(vals) >= simdMinSpan {
		return simdFilterSumInt64(vals, p)
	}
	switch {
	case p.neg == 0 && p.lo == math.MinInt64:
		return sumMaskedLe(vals, p.hi)
	case p.neg == 0 && p.hi == math.MaxInt64:
		return sumMaskedGe(vals, p.lo)
	default:
		for _, v := range vals {
			q := p.test(v)
			cnt += q
			isum += v & int64(-q)
		}
		return cnt, isum
	}
}

// filterAggIntsPred is the lowered-predicate full filter+aggregate core:
// the SIMD kernel when available, else the scalar masked-absorb loop.
func filterAggIntsPred(vals []int64, p intPred) filterAggInt {
	if simdFilterAgg && len(vals) >= simdMinSpan {
		return simdFilterAggInt64(vals, p)
	}
	f := newFilterAggInt()
	for _, v := range vals {
		f.absorb(v, p.test(v))
	}
	return f
}

// filterSumInts is the sum-specialized fused loop over int64 values: the
// float comparison lowers to integer bounds (intPredFor), constant
// predicates collapse to a plain multi-accumulator sum or nothing, and
// everything else dispatches through filterSumIntsPred.
func filterSumInts(vals []int64, b float64, op RangeOp) (cnt int, isum int64) {
	p, none, all := intPredFor(op, b)
	switch {
	case none || len(vals) == 0:
		return 0, 0
	case all:
		return len(vals), sumInt64Kernel(vals)
	default:
		return filterSumIntsPred(vals, p)
	}
}

// FilterSumRange is the sum/avg-specialized fused kernel: count and sum
// of the qualifying values in [lo, hi), skipping the min/max bookkeeping
// FilterAggRange carries (the returned extrema are ±Inf). Semantics
// otherwise identical to FilterAggRange.
func (c *Column) FilterSumRange(lo, hi int, op RangeOp, operand Value) FilterAgg {
	lo, hi = c.clampRange(lo, hi)
	if hi == lo {
		return emptyFilterAgg()
	}
	pp := c.preparePred(op, operand)
	return c.fusedChunk(&pp, lo, hi, FusedSum)
}

// FilterSumSel is FilterSumRange over a prior selection.
func (c *Column) FilterSumSel(sel []int32, op RangeOp, operand Value) FilterAgg {
	if len(sel) == 0 {
		return emptyFilterAgg()
	}
	pp := c.preparePred(op, operand)
	return c.fusedSelChunk(&pp, sel, c.Len(), FusedSum)
}

// FilterMinMaxRange is the min/max-specialized fused kernel: count and
// extrema of the qualifying values in [lo, hi), skipping the sum (the
// returned Sum is 0). Semantics otherwise identical to FilterAggRange.
func (c *Column) FilterMinMaxRange(lo, hi int, op RangeOp, operand Value) FilterAgg {
	lo, hi = c.clampRange(lo, hi)
	if hi == lo {
		return emptyFilterAgg()
	}
	pp := c.preparePred(op, operand)
	fa := c.fusedChunk(&pp, lo, hi, FusedMinMax)
	return FilterAgg{N: fa.N, Min: fa.Min, Max: fa.Max}
}

// FilterMinMaxSel is FilterMinMaxRange over a prior selection.
func (c *Column) FilterMinMaxSel(sel []int32, op RangeOp, operand Value) FilterAgg {
	if len(sel) == 0 {
		return emptyFilterAgg()
	}
	pp := c.preparePred(op, operand)
	fa := c.fusedSelChunk(&pp, sel, c.Len(), FusedMinMax)
	return FilterAgg{N: fa.N, Min: fa.Min, Max: fa.Max}
}

// FusedMode selects what a blocked fused scan maintains — the storage
// mirror of the aggregate kinds the fusion dispatch serves.
type FusedMode uint8

// Blocked fused scan modes.
const (
	// FusedCount maintains only the qualifying count.
	FusedCount FusedMode = iota
	// FusedSum maintains count and sum (extrema come back ±Inf).
	FusedSum
	// FusedMinMax maintains count and extrema (sum comes back 0).
	FusedMinMax
	// FusedFull maintains count, sum and extrema.
	FusedFull
)

// preparedPred is per-scan predicate state lowered exactly once: the
// integer bounds for int columns, the wants masks for float columns, the
// two-outcome table for bools, and the memoized per-code table for
// strings. Blocked scans prepare it up front so per-chunk work is only
// the inner loop.
type preparedPred struct {
	// Int64 columns.
	ip        intPred
	none, all bool
	// Float64 columns.
	b             float64
	wLt, wGt, wEq int
	// Bool columns.
	tab [2]int
	// String columns.
	pass []bool
}

// preparePred lowers the predicate for this column's type.
func (c *Column) preparePred(op RangeOp, operand Value) preparedPred {
	var pp preparedPred
	switch c.typ {
	case String:
		pp.pass = c.passByCode(op, operand)
	case Int64:
		pp.ip, pp.none, pp.all = intPredFor(op, operand.AsFloat())
	case Float64:
		pp.b = operand.AsFloat()
		pp.wLt, pp.wGt, pp.wEq = op.wants()
	case Bool:
		b := operand.AsFloat()
		wLt, wGt, wEq := op.wants()
		pp.tab[0] = passFloat(0, b, wLt, wGt, wEq)
		pp.tab[1] = passFloat(1, b, wLt, wGt, wEq)
	}
	return pp
}

// fusedChunk runs one prepared chunk [lo, hi) (already clamped).
func (c *Column) fusedChunk(pp *preparedPred, lo, hi int, mode FusedMode) FilterAgg {
	c.countSpan(lo, hi)
	switch c.typ {
	case Int64:
		vals := c.ints[lo:hi]
		if pp.none {
			return emptyFilterAgg()
		}
		switch mode {
		case FusedSum:
			var cnt int
			var isum int64
			if pp.all {
				cnt, isum = len(vals), sumInt64Kernel(vals)
			} else {
				cnt, isum = filterSumIntsPred(vals, pp.ip)
			}
			return FilterAgg{N: cnt, IntSum: isum, Sum: float64(isum), Exact: true, Min: math.Inf(1), Max: math.Inf(-1)}
		case FusedCount:
			cnt := 0
			switch {
			case pp.all:
				cnt = len(vals)
			case simdFilterSum && len(vals) >= simdMinSpan:
				cnt, _ = simdFilterSumInt64(vals, pp.ip)
			default:
				for _, v := range vals {
					cnt += pp.ip.test(v)
				}
			}
			return FilterAgg{N: cnt, Exact: true, Min: math.Inf(1), Max: math.Inf(-1)}
		default: // FusedMinMax, FusedFull
			// pp.all lowers to the trivially-true interval, which the
			// shared core handles without a special case.
			f := filterAggIntsPred(vals, pp.ip)
			fa := f.result()
			if mode == FusedMinMax {
				fa.Sum, fa.IntSum = 0, 0
			}
			return fa
		}
	case Float64:
		agg := emptyFilterAgg()
		for _, v := range c.flts[lo:hi] {
			lt, gt := v < pp.b, v > pp.b
			if (lt && pp.wLt != 0) || (gt && pp.wGt != 0) || (!lt && !gt && pp.wEq != 0) {
				agg.N++
				switch mode {
				case FusedCount:
				case FusedSum:
					agg.Sum += v
				default:
					agg.Sum += v
					if v < agg.Min {
						agg.Min = v
					}
					if v > agg.Max {
						agg.Max = v
					}
				}
			}
		}
		if mode == FusedMinMax {
			agg.Sum = 0
		}
		return agg
	case Bool:
		cnt, ones := 0, 0
		for _, v := range c.bools[lo:hi] {
			q := pp.tab[v&1]
			cnt += q
			ones += q & int(v&1)
		}
		return boolFilterAgg(cnt, ones, mode)
	case String:
		switch mode {
		case FusedCount:
			cnt := 0
			for _, code := range c.codes[lo:hi] {
				cnt += b2i(pp.pass[code])
			}
			return FilterAgg{N: cnt, Exact: true, Min: math.Inf(1), Max: math.Inf(-1)}
		case FusedSum:
			cnt := 0
			var isum int64
			for _, code := range c.codes[lo:hi] {
				q := b2i(pp.pass[code])
				cnt += q
				isum += int64(code) & int64(-q)
			}
			return FilterAgg{N: cnt, IntSum: isum, Sum: float64(isum), Exact: true, Min: math.Inf(1), Max: math.Inf(-1)}
		default:
			f := newFilterAggInt()
			for _, code := range c.codes[lo:hi] {
				f.absorb(int64(code), b2i(pp.pass[code]))
			}
			fa := f.result()
			if mode == FusedMinMax {
				fa.Sum, fa.IntSum = 0, 0
			}
			return fa
		}
	}
	return emptyFilterAgg()
}

// boolFilterAgg assembles a bool-column result from pass counts.
func boolFilterAgg(cnt, ones int, mode FusedMode) FilterAgg {
	agg := FilterAgg{N: cnt, Exact: true, Min: math.Inf(1), Max: math.Inf(-1)}
	if mode == FusedSum || mode == FusedFull {
		agg.IntSum, agg.Sum = int64(ones), float64(ones)
	}
	if cnt > 0 && (mode == FusedMinMax || mode == FusedFull) {
		agg.Min, agg.Max = 1, 0
		if cnt > ones {
			agg.Min = 0
		}
		if ones > 0 {
			agg.Max = 1
		}
	}
	return agg
}

// FilterAggRangeBlocked runs a fused filter+aggregate scan over [lo, hi)
// in chunks aligned to blockLen boundaries, lowering the predicate once
// for the whole scan and reporting each chunk's qualifying count to
// onBlock (the cost-charging hook: one chunk never crosses a cost-model
// block) before merging. Result-equal to the corresponding whole-range
// kernel; the chunking only exists so callers can charge per block
// without re-deriving the predicate per chunk.
func (c *Column) FilterAggRangeBlocked(lo, hi, blockLen int, op RangeOp, operand Value, mode FusedMode, onBlock func(start, count int)) FilterAgg {
	lo, hi = c.clampRange(lo, hi)
	total := emptyFilterAgg()
	if hi == lo {
		return total
	}
	if blockLen <= 0 {
		blockLen = hi - lo
	}
	pp := c.preparePred(op, operand)
	for cur := lo; cur < hi; {
		end := (cur/blockLen + 1) * blockLen
		if end > hi {
			end = hi
		}
		fa := c.fusedChunk(&pp, cur, end, mode)
		if onBlock != nil && fa.N > 0 {
			onBlock(cur, fa.N)
		}
		total.Merge(fa)
		cur = end
	}
	return total
}

// FilterAggSelBlocked is FilterAggRangeBlocked over a prior selection:
// the ascending selection is segmented at blockLen boundaries, each
// segment's qualifying count goes to onBlock, and the predicate is
// lowered once. Out-of-range positions are skipped, matching FilterSel.
func (c *Column) FilterAggSelBlocked(sel []int32, blockLen int, op RangeOp, operand Value, mode FusedMode, onBlock func(start, count int)) FilterAgg {
	total := emptyFilterAgg()
	if len(sel) == 0 {
		return total
	}
	if blockLen <= 0 {
		blockLen = c.Len() + 1
	}
	pp := c.preparePred(op, operand)
	n := c.Len()
	for i := 0; i < len(sel); {
		b := int(sel[i]) / blockLen
		j := i + 1
		for j < len(sel) && int(sel[j])/blockLen == b {
			j++
		}
		fa := c.fusedSelChunk(&pp, sel[i:j], n, mode)
		if onBlock != nil && fa.N > 0 {
			onBlock(int(sel[i]), fa.N)
		}
		total.Merge(fa)
		i = j
	}
	return total
}

// fusedSelChunk runs one prepared segment of a selection.
func (c *Column) fusedSelChunk(pp *preparedPred, sel []int32, n int, mode FusedMode) FilterAgg {
	c.countSel(len(sel))
	switch c.typ {
	case Int64:
		if pp.none {
			return emptyFilterAgg()
		}
		switch mode {
		case FusedSum, FusedCount:
			cnt := 0
			var isum int64
			for _, p := range sel {
				if p < 0 || int(p) >= n {
					continue
				}
				v := c.ints[p]
				q := pp.ip.test(v)
				cnt += q
				isum += v & int64(-q)
			}
			agg := FilterAgg{N: cnt, Exact: true, Min: math.Inf(1), Max: math.Inf(-1)}
			if mode == FusedSum {
				agg.IntSum, agg.Sum = isum, float64(isum)
			}
			return agg
		default:
			f := newFilterAggInt()
			for _, p := range sel {
				if p < 0 || int(p) >= n {
					continue
				}
				v := c.ints[p]
				f.absorb(v, pp.ip.test(v))
			}
			fa := f.result()
			if mode == FusedMinMax {
				fa.Sum, fa.IntSum = 0, 0
			}
			return fa
		}
	case Float64:
		agg := emptyFilterAgg()
		for _, p := range sel {
			if p < 0 || int(p) >= n {
				continue
			}
			v := c.flts[p]
			lt, gt := v < pp.b, v > pp.b
			if (lt && pp.wLt != 0) || (gt && pp.wGt != 0) || (!lt && !gt && pp.wEq != 0) {
				agg.N++
				if mode != FusedCount {
					agg.Sum += v
				}
				if mode == FusedMinMax || mode == FusedFull {
					if v < agg.Min {
						agg.Min = v
					}
					if v > agg.Max {
						agg.Max = v
					}
				}
			}
		}
		if mode == FusedMinMax {
			agg.Sum = 0
		}
		return agg
	case Bool:
		cnt, ones := 0, 0
		for _, p := range sel {
			if p < 0 || int(p) >= n {
				continue
			}
			v := c.bools[p] & 1
			q := pp.tab[v]
			cnt += q
			ones += q & int(v)
		}
		return boolFilterAgg(cnt, ones, mode)
	case String:
		f := newFilterAggInt()
		for _, p := range sel {
			if p < 0 || int(p) >= n {
				continue
			}
			code := c.codes[p]
			f.absorb(int64(code), b2i(pp.pass[code]))
		}
		fa := f.result()
		switch mode {
		case FusedCount:
			fa.Sum, fa.IntSum, fa.Min, fa.Max = 0, 0, math.Inf(1), math.Inf(-1)
		case FusedSum:
			fa.Min, fa.Max = math.Inf(1), math.Inf(-1)
		case FusedMinMax:
			fa.Sum, fa.IntSum = 0, 0
		}
		return fa
	}
	return emptyFilterAgg()
}

// FilterCountRange reports how many values in [lo, hi) satisfy
// `value op operand` — the fused kernel for COUNT-only consumers, which
// drops even the sum/min/max bookkeeping. Branch-free on every type.
func (c *Column) FilterCountRange(lo, hi int, op RangeOp, operand Value) int {
	lo, hi = c.clampRange(lo, hi)
	if hi == lo {
		return 0
	}
	pp := c.preparePred(op, operand)
	return c.fusedChunk(&pp, lo, hi, FusedCount).N
}

// FilterCountSel reports how many positions of sel satisfy
// `value op operand` — the COUNT-only twin of FilterAggSel.
func (c *Column) FilterCountSel(sel []int32, op RangeOp, operand Value) int {
	if len(sel) == 0 {
		return 0
	}
	pp := c.preparePred(op, operand)
	return c.fusedSelChunk(&pp, sel, c.Len(), FusedCount).N
}
