package vclock

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", got)
	}
}

func TestAdvanceNegativeIgnored(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	c.Advance(-10 * time.Second)
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now() = %v after negative advance, want 1s", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	if !c.AdvanceTo(4 * time.Second) {
		t.Fatal("AdvanceTo future returned false")
	}
	if c.AdvanceTo(2 * time.Second) {
		t.Fatal("AdvanceTo past returned true")
	}
	if got := c.Now(); got != 4*time.Second {
		t.Fatalf("Now() = %v, want 4s", got)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v after Reset, want 0", c.Now())
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	sw := NewStopwatch(c)
	c.Advance(3 * time.Second)
	if got := sw.Elapsed(); got != 3*time.Second {
		t.Fatalf("Elapsed() = %v, want 3s", got)
	}
	sw.Restart()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("Elapsed() after Restart = %v, want 0", got)
	}
	c.Advance(time.Second)
	if got := sw.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed() = %v, want 1s", got)
	}
}

// TestConcurrentAdvance drives one clock from many goroutines. Each
// session logically owns its clock, but the type promises that racing
// writers still produce a well-defined total and that readers never see
// time move backwards — the property the -race concurrent-session suites
// rely on.
func TestConcurrentAdvance(t *testing.T) {
	c := New()
	const workers = 8
	const steps = 1000
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			last := time.Duration(0)
			for i := 0; i < steps; i++ {
				c.Advance(time.Microsecond)
				now := c.Now()
				if now < last {
					t.Error("clock went backwards")
					return
				}
				last = now
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got, want := c.Now(), time.Duration(workers*steps)*time.Microsecond; got != want {
		t.Fatalf("Now() = %v after concurrent advances, want %v", got, want)
	}
}

// TestConcurrentAdvanceTo checks the CAS loop: concurrent AdvanceTo calls
// end at the maximum target and never rewind.
func TestConcurrentAdvanceTo(t *testing.T) {
	c := New()
	const workers = 8
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		target := time.Duration(w+1) * time.Millisecond
		go func() {
			c.AdvanceTo(target)
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got, want := c.Now(), time.Duration(workers)*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v (max of all targets)", got, want)
	}
}
