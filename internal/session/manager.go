package session

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dbtouch/internal/core"
	"dbtouch/internal/sample"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// DefaultSessionQueueCap bounds one session's queued-but-unexecuted
// batches; Enqueue past it returns ErrOverloaded.
const DefaultSessionQueueCap = 64

// Manager owns the shared immutable storage layer — one catalog, one
// sample store — the bounded work-stealing scheduler started sessions
// run on, and the registry of live sessions. All methods are safe for
// concurrent use.
type Manager struct {
	cfg     core.Config
	catalog *storage.Catalog
	// live refcounts snapshot pins and caches versioned sample chains for
	// live tables, shared by every session's kernel.
	live *sample.LiveStore

	mu       sync.Mutex
	sessions map[string]*Session
	samples  map[sampleKey]*sampleEntry
	// tick stamps dispatches for least-recently-used eviction.
	tick uint64
	// maxSessions caps live sessions; 0 means unlimited.
	maxSessions int
	evictions   int64
	// admissionCap is a hard live-session ceiling: unlike maxSessions it
	// rejects Create with ErrOverloaded instead of evicting. 0 = none.
	admissionCap int
	// sched is the shared worker pool, built lazily on first Start;
	// schedWorkers is the configured pool size (0 = GOMAXPROCS).
	sched        *scheduler
	schedWorkers int

	// budget is the fairness quantum in events per dispatch (0 selects
	// DefaultFairnessBudget); settable at any time.
	budget atomic.Int64
	// queuedBatches gauges the backlog across all sessions (queued plus
	// in-flight batches); maxQueuedBatches caps it (0 = unlimited) and
	// sessionQueueCap caps one session's queue.
	queuedBatches    atomic.Int64
	maxQueuedBatches atomic.Int64
	sessionQueueCap  atomic.Int64

	// dur is the session-persistence state, nil until EnableDurability.
	// Behind an atomic pointer (not m.mu) because the tee path must
	// never call into the store while holding m.mu — the store's Protect
	// callback takes m.mu from under the store's own lock.
	dur atomic.Pointer[durability]
}

// sampleKey identifies one shared hierarchy: sample columns depend only
// on the base column identity and the requested depth.
type sampleKey struct {
	base   *storage.Column
	levels int
}

// sampleEntry single-flights construction of one shared hierarchy.
type sampleEntry struct {
	once   sync.Once
	shared *sample.Shared
	err    error
}

// NewManager builds a session manager whose sessions all run cfg
// (zero-valued fields inherit core.DefaultConfig, as in core.NewKernel).
func NewManager(cfg core.Config) *Manager {
	m := &Manager{
		cfg:      cfg,
		catalog:  storage.NewCatalog(),
		live:     sample.NewLiveStore(),
		sessions: make(map[string]*Session),
		samples:  make(map[sampleKey]*sampleEntry),
	}
	m.sessionQueueCap.Store(DefaultSessionQueueCap)
	return m
}

// scheduler returns the shared worker pool, building it on first use
// (the pool costs nothing until a session starts).
func (m *Manager) scheduler() *scheduler {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.schedulerLocked()
}

// schedulerFor is scheduler() gated on s still being registered: a
// deregistered session (Close/Evict/Manager.Close racing Start) gets no
// pool, so a teardown that already stopped the pool cannot leak a
// freshly rebuilt one. Enqueue deliberately uses the ungated scheduler()
// instead — an appended batch must always reach a pool or Drain would
// hang (its ordering against Close is protected by the closed check
// under s.mu plus Close's drain-then-teardown sequence).
func (m *Manager) schedulerFor(s *Session) *scheduler {
	m.mu.Lock()
	defer m.mu.Unlock()
	if reg, ok := m.sessions[s.id]; !ok || reg != s {
		return nil
	}
	return m.schedulerLocked()
}

// schedulerLocked builds the pool if needed. Caller holds m.mu.
func (m *Manager) schedulerLocked() *scheduler {
	if m.sched == nil {
		n := m.schedWorkers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		m.sched = newScheduler(m, n)
	}
	return m.sched
}

// SetWorkers fixes the scheduler pool size (default GOMAXPROCS). The
// pool is created when the first session starts; afterwards the size
// cannot change.
func (m *Manager) SetWorkers(n int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sched != nil {
		return fmt.Errorf("session: scheduler already running with %d workers", len(m.sched.workers))
	}
	m.schedWorkers = n
	return nil
}

// SetFairnessBudget sets the per-dispatch quantum in touch events
// (default DefaultFairnessBudget): a session yields its worker after
// absorbing this many events, so a spamming session cannot starve
// parked ones. Settable at any time; n <= 0 restores the default.
func (m *Manager) SetFairnessBudget(events int) {
	if events <= 0 {
		events = 0
	}
	m.budget.Store(int64(events))
}

// fairnessBudget resolves the current quantum.
func (m *Manager) fairnessBudget() int {
	if b := m.budget.Load(); b > 0 {
		return int(b)
	}
	return DefaultFairnessBudget
}

// SetSessionQueueCap bounds one session's queued batches (default
// DefaultSessionQueueCap); Enqueue past it returns ErrOverloaded.
// n <= 0 restores the default.
func (m *Manager) SetSessionQueueCap(n int) {
	if n <= 0 {
		n = DefaultSessionQueueCap
	}
	m.sessionQueueCap.Store(int64(n))
}

// SetMaxQueuedBatches caps the total backlog (queued plus in-flight
// batches across all sessions, the QueuedBatches gauge in Stats); at
// the cap, Enqueue and wire performs return ErrOverloaded. 0 (the
// default) disables the cap.
func (m *Manager) SetMaxQueuedBatches(n int) {
	if n < 0 {
		n = 0
	}
	m.maxQueuedBatches.Store(int64(n))
}

// SetAdmissionCap sets a hard ceiling on live sessions: Create past it
// fails with ErrOverloaded. Unlike SetMaxSessions (which silently
// evicts the least recently used session), the admission cap pushes
// back on the creator — the wire protocol turns it into HTTP 503 +
// Retry-After. 0 (the default) disables it.
func (m *Manager) SetAdmissionCap(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.admissionCap = n
}

// overloaded reports whether the global backlog cap is currently hit —
// the admission signal for synchronous wire work.
func (m *Manager) overloaded() (backlog, limit int64, over bool) {
	limit = m.maxQueuedBatches.Load()
	if limit <= 0 {
		return 0, 0, false
	}
	backlog = m.queuedBatches.Load()
	return backlog, limit, backlog >= limit
}

// reserveBatch claims one slot in the global backlog gauge, exactly:
// under a cap, concurrent claimers cannot overshoot it (CAS loop rather
// than check-then-add). The caller releases the slot with
// queuedBatches.Add(-1) — after executing the batch, or immediately if
// the batch is rejected downstream.
func (m *Manager) reserveBatch() (backlog, limit int64, ok bool) {
	limit = m.maxQueuedBatches.Load()
	if limit <= 0 {
		m.queuedBatches.Add(1)
		return 0, 0, true
	}
	for {
		backlog = m.queuedBatches.Load()
		if backlog >= limit {
			return backlog, limit, false
		}
		if m.queuedBatches.CompareAndSwap(backlog, backlog+1) {
			return backlog + 1, limit, true
		}
	}
}

// Catalog returns the shared catalog. Tables registered here are visible
// to every session.
func (m *Manager) Catalog() *storage.Catalog { return m.catalog }

// LiveStore returns the shared live-table snapshot store (pin refcounts
// and versioned sample chains).
func (m *Manager) LiveStore() *sample.LiveStore { return m.live }

// Append appends rows to the named live table and returns the published
// snapshot: the manager-level ingestion entry point the wire protocol
// routes to. Appends need no session — snapshot publication synchronizes
// with every session's batch-start repin.
func (m *Manager) Append(table string, rows [][]storage.Value) (*storage.TableSnapshot, error) {
	t, ok := m.catalog.Live(table)
	if !ok {
		return nil, fmt.Errorf("session: no live table %q", table)
	}
	return t.AppendBatch(rows)
}

// SetMaxSessions caps the number of live sessions; creating one past the
// cap evicts the least recently dispatched. Zero (the default) disables
// the cap.
func (m *Manager) SetMaxSessions(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.maxSessions = n
}

// Evictions reports how many sessions the cap has evicted.
func (m *Manager) Evictions() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evictions
}

// SessionState names a session's scheduling state in stats output.
type SessionState string

// Session scheduling states as reported by Stats and the wire protocol.
const (
	// StateSync: never started; batches run synchronously on the caller.
	StateSync SessionState = "sync"
	// StateParked: started, queue empty, holding no goroutine.
	StateParked SessionState = "parked"
	// StateRunnable: queued batches, waiting in a worker deque.
	StateRunnable SessionState = "runnable"
	// StateRunning: a pool worker is executing its batches.
	StateRunning SessionState = "running"
)

// SessionStat is one session's row in a Stats snapshot.
type SessionStat struct {
	ID string
	// Started reports whether the session runs on the scheduler.
	Started bool
	// State is the scheduling state (sync, parked, runnable, running).
	State SessionState
	// QueueDepth counts enqueued-but-unfinished batches (0 for
	// synchronous sessions).
	QueueDepth int
	// LastUsed is the manager's dispatch tick at the session's last use;
	// lower means closer to LRU eviction.
	LastUsed uint64
}

// Stats is a point-in-time snapshot of the manager — the admission and
// scheduling signals (live sessions, eviction pressure, scheduler load,
// per-session backlog) an operator watches and admission control feeds
// on.
type Stats struct {
	// Live counts registered sessions; Max is the SetMaxSessions cap
	// (0 = unlimited); Evictions counts sessions the cap has removed.
	Live      int
	Max       int
	Evictions int64
	// Workers is the scheduler pool size (0 until the first session
	// starts). Parked/Runnable/Running partition the started sessions by
	// scheduling state; Steals and Dispatches are lifetime pool counters.
	Workers    int
	Parked     int
	Runnable   int
	Running    int
	Steals     int64
	Dispatches int64
	// QueuedBatches is the backlog across all sessions (queued plus
	// in-flight); MaxQueuedBatches is its cap (0 = unlimited).
	QueuedBatches    int64
	MaxQueuedBatches int64
	// Session-durability gauges, all zero until EnableDurability:
	// LoggedRequests counts requests teed to the session log; LogErrors
	// counts append/compaction failures (durability degraded, requests
	// still served); LogCompactions counts checkpoint rewrites; Resumes
	// and ReplayedRequests count successful OpResumes and the requests
	// they replayed.
	LoggedRequests   int64
	LogErrors        int64
	LogCompactions   int64
	Resumes          int64
	ReplayedRequests int64
	// Sessions lists per-session rows sorted by id.
	Sessions []SessionStat
}

// Stats snapshots the manager. Sessions created or evicted concurrently
// may or may not appear; each row is internally consistent.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	st := Stats{Live: len(m.sessions), Max: m.maxSessions, Evictions: m.evictions}
	if m.sched != nil {
		st.Workers = len(m.sched.workers)
		st.Steals = m.sched.steals.Load()
		st.Dispatches = m.sched.dispatches.Load()
	}
	live := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
		st.Sessions = append(st.Sessions, SessionStat{ID: s.id, LastUsed: s.lastUsed})
	}
	m.mu.Unlock()
	st.QueuedBatches = m.queuedBatches.Load()
	st.MaxQueuedBatches = m.maxQueuedBatches.Load()
	if d := m.durability(); d != nil {
		st.LoggedRequests = d.logged.Load()
		st.LogErrors = d.logErrs.Load()
		st.LogCompactions = d.store.Stats().Compactions
		st.Resumes = d.resumes.Load()
		st.ReplayedRequests = d.replayed.Load()
	}
	for i, s := range live {
		st.Sessions[i].Started = s.Started()
		st.Sessions[i].State = s.State()
		st.Sessions[i].QueueDepth = s.QueueDepth()
		switch st.Sessions[i].State {
		case StateParked:
			st.Parked++
		case StateRunnable:
			st.Runnable++
		case StateRunning:
			st.Running++
		}
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	return st
}

// sharedSamples is the core.SampleSource installed into every session's
// kernel: the first session to explore a column builds its sample
// hierarchy; later sessions (and concurrent racers) share it.
func (m *Manager) sharedSamples(base *storage.Column, levels int) (*sample.Shared, error) {
	key := sampleKey{base: base, levels: levels}
	m.mu.Lock()
	e, ok := m.samples[key]
	if !ok {
		e = &sampleEntry{}
		m.samples[key] = e
	}
	m.mu.Unlock()
	e.once.Do(func() {
		e.shared, e.err = sample.BuildShared(base, levels)
	})
	return e.shared, e.err
}

// Create registers a new session under id. The session's kernel shares
// the manager's catalog and sample store but owns its own virtual clock,
// screen, dispatcher and result log. Creating past the MaxSessions cap
// evicts the least recently dispatched session first; creating past the
// AdmissionCap (or while the global backlog cap is hit) is rejected
// with ErrOverloaded instead — no eviction, the caller backs off.
func (m *Manager) Create(id string) (*Session, error) {
	// Admission and duplicate checks come before kernel construction:
	// the rejection path is the hot one under a retry storm, and it must
	// not allocate a kernel just to discard it.
	m.mu.Lock()
	if err := m.admitLocked(id); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.mu.Unlock()

	k := core.NewKernel(m.cfg)
	k.ShareStorage(m.catalog, m.sharedSamples)
	k.ShareLive(m.live)
	s := &Session{id: id, manager: m, kernel: k}
	s.pendingCond = sync.NewCond(&s.pendingMu)

	m.mu.Lock()
	// Re-check: a racing Create may have taken the id or the last
	// admission slot while the kernel was being built.
	if err := m.admitLocked(id); err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.tick++
	s.lastUsed = m.tick
	m.sessions[id] = s
	var victim *Session
	if m.maxSessions > 0 && len(m.sessions) > m.maxSessions {
		victim = m.lruLocked(id)
		if victim != nil {
			delete(m.sessions, victim.id)
			m.evictions++
		}
	}
	m.mu.Unlock()

	if victim != nil {
		victim.Close()
		// LRU eviction only parks the victim's log (closing its cached
		// file handle); the session stays resumable via OpResume.
		m.parkLog(victim.id)
	}
	return s, nil
}

// admitLocked applies Create's rejection rules: duplicate id, global
// backlog at cap, or the hard admission ceiling. Caller holds m.mu.
func (m *Manager) admitLocked(id string) error {
	if _, exists := m.sessions[id]; exists {
		return fmt.Errorf("session %q already exists", id)
	}
	if _, _, over := m.overloaded(); over {
		return fmt.Errorf("session %q: %w (manager backlog at cap; not admitting new sessions)",
			id, ErrOverloaded)
	}
	if m.admissionCap > 0 && len(m.sessions) >= m.admissionCap {
		return fmt.Errorf("session %q: %w (%d live sessions at admission cap %d)",
			id, ErrOverloaded, len(m.sessions), m.admissionCap)
	}
	return nil
}

// lruLocked picks the least recently dispatched session other than keep.
// Caller holds m.mu.
func (m *Manager) lruLocked(keep string) *Session {
	var victim *Session
	for id, s := range m.sessions {
		if id == keep {
			continue
		}
		if victim == nil || s.lastUsed < victim.lastUsed {
			victim = s
		}
	}
	return victim
}

// Get resolves a session by id.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Len reports the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Sessions lists live session ids (unordered).
func (m *Manager) Sessions() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		out = append(out, id)
	}
	return out
}

// Dispatch routes a touch-event batch to the session identified by id —
// the touchos event stream is demultiplexed here, one hop above each
// session's own dispatcher. Batches for a started session are enqueued
// to the scheduler (asynchronous; returned results are nil — Drain then
// read Results, and the error may be ErrOverloaded under backpressure);
// otherwise the batch runs synchronously and its results come back
// directly.
func (m *Manager) Dispatch(id string, events []touchos.TouchEvent) ([]core.Result, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("session %q not found", id)
	}
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		return nil, s.Enqueue(events)
	}
	return s.Apply(events)
}

// Evict removes the session and stops its worker, waiting for queued
// batches to finish. Shared storage (catalog, sample hierarchies) stays:
// it belongs to the manager, not the session. Reports whether the session
// existed.
func (m *Manager) Evict(id string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	delete(m.sessions, id)
	m.mu.Unlock()
	if !ok {
		return false
	}
	s.Close()
	m.parkLog(id)
	return true
}

// Close evicts every session (draining their queued batches) and then
// stops the scheduler's worker pool. The manager remains usable: a
// later Start builds a fresh pool.
func (m *Manager) Close() {
	m.mu.Lock()
	all := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		all = append(all, s)
	}
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()
	// Sessions first: their Close waits for queued batches, which needs
	// the pool alive.
	for _, s := range all {
		s.Close()
		// Every logged request is already on disk; parking just releases
		// the cached file handles. The store itself belongs to whoever
		// enabled durability and is closed there.
		m.parkLog(s.id)
	}
	// A Start/Enqueue racing this Close can lazily rebuild the pool
	// after we detach it; loop until no pool reappears so no worker
	// goroutines are ever leaked.
	for {
		m.mu.Lock()
		sched := m.sched
		m.sched = nil
		m.mu.Unlock()
		if sched == nil {
			return
		}
		sched.stop()
	}
}
