package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/index"
	"dbtouch/internal/iomodel"
	"dbtouch/internal/layout"
	"dbtouch/internal/mapping"
	"dbtouch/internal/operator"
	"dbtouch/internal/prefetch"
	"dbtouch/internal/sample"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Object is a visual data object: a view on screen bound to a matrix (or
// one column of it), carrying all the per-object machinery — sample
// hierarchy, trackers, extrapolator, prefetcher, lazy indexes, and the
// configured touch actions.
type Object struct {
	id     int
	kernel *Kernel
	view   *touchos.View
	matrix *storage.Matrix
	// colIdx is the bound attribute for column objects, -1 for tables.
	colIdx int

	// hierarchy backs column objects; cellTracker backs table objects
	// (index space = row*ncols+col).
	hierarchy   *sample.Hierarchy
	cellTracker *iomodel.Tracker
	// colTrackers charge filter/group/join reads per attribute.
	colTrackers []*iomodel.Tracker

	extrap     *prefetch.Extrapolator
	prefetcher *prefetch.Prefetcher
	indexes    *index.Registry
	actions    Actions
	optimizer  *AdaptiveOptimizer
	agg        *operator.RunningAgg
	grouper    *operator.IncrementalGroupBy
	join       *operator.SymmetricHashJoin
	joinSide   JoinSide

	lastID    int
	lastTouch time.Duration
	lastLevel int
	sliding   bool

	// touchBuckets histograms touched base ids at bucketSize granularity,
	// feeding hot-region detection for cache-to-sample promotion (§2.6).
	touchBuckets map[int]int
	bucketSize   int

	// conv is the in-progress layout conversion after a rotate gesture.
	conv *layout.Conversion

	// live binds the object to its source table when the backing matrix is
	// a live-table snapshot; liveGen tracks the compaction generation the
	// object last rebound to (see live.go).
	live    *storage.Table
	liveGen uint64
}

// ID returns the object identifier.
func (o *Object) ID() int { return o.id }

// View returns the object's view.
func (o *Object) View() *touchos.View { return o.view }

// Matrix returns the backing matrix.
func (o *Object) Matrix() *storage.Matrix { return o.matrix }

// IsColumn reports whether the object is bound to a single column.
func (o *Object) IsColumn() bool { return o.colIdx >= 0 }

// Actions returns the current touch configuration.
func (o *Object) Actions() Actions { return o.actions }

// Groups snapshots the incremental group table (nil when grouping is not
// configured). Its cardinality is the key domain touched so far, not the
// row count — the boundedness tests lean on that.
func (o *Object) Groups() []operator.Group {
	if o.grouper == nil {
		return nil
	}
	return o.grouper.Groups()
}

// SetActions replaces the touch configuration and resets per-query state
// (running aggregates, group tables, optimizer statistics).
func (o *Object) SetActions(a Actions) {
	o.actions = a
	o.agg = operator.NewRunningAgg(a.Agg)
	o.optimizer = NewAdaptiveOptimizer(a.Filters, 64, o.kernel.cfg.AdaptiveOpt)
	for _, f := range a.Filters {
		o.trackerFor(f.Col) // pre-create so evaluations are charged
	}
	o.grouper = nil
	if a.Group != nil && o.matrix.Layout() == storage.ColumnMajor {
		keyCol, errK := o.matrix.Column(a.Group.KeyCol)
		valCol, errV := o.matrix.Column(a.Group.ValCol)
		if errK == nil && errV == nil {
			o.grouper = operator.NewIncrementalGroupBy(keyCol, valCol, a.Group.Agg)
		}
	}
	o.join = nil
	if a.Join != nil {
		o.kernel.wireJoin(o, a.Join)
	}
	o.lastID = -1
}

// Hierarchy exposes the sample hierarchy (column objects; nil for tables).
func (o *Object) Hierarchy() *sample.Hierarchy { return o.hierarchy }

// Rows reports the tuple count of the backing data.
func (o *Object) Rows() int { return o.matrix.NumRows() }

// objectMap builds the touch→tuple translator for the current geometry.
func (o *Object) objectMap() mapping.ObjectMap {
	cols := o.matrix.NumCols()
	if o.IsColumn() {
		cols = 1
	}
	return mapping.ObjectMap{
		Rows:            o.matrix.NumRows(),
		Cols:            cols,
		Granularity:     o.kernel.cfg.Granularity,
		ResolutionPerCm: o.kernel.cfg.ResolutionPerCm,
	}
}

// column returns the bound column of a column object.
func (o *Object) column() (*storage.Column, error) {
	if !o.IsColumn() {
		return nil, fmt.Errorf("core: object %d is a table object", o.id)
	}
	return o.matrix.Column(o.colIdx)
}

// beginSlide resets gesture-tracking state at slide start.
func (o *Object) beginSlide(ev gesture.Event) {
	o.sliding = true
	o.lastID = -1
	o.extrap.Reset()
	o.lastTouch = ev.Time
	o.kernel.counters.Add("gesture.slides", 1)
}

// endSlide finalizes a slide.
func (o *Object) endSlide(gesture.Event) {
	o.sliding = false
}

// processTap handles a single tap: reveal one value (columns) or one full
// tuple (tables) — the schema-discovery touch of paper §2.2.
func (o *Object) processTap(ev gesture.Event) {
	om := o.objectMap()
	if o.IsColumn() {
		id, err := om.RowOnView(o.view, ev.Loc)
		if err != nil {
			o.kernel.counters.Add("touch.mapping_errors", 1)
			return
		}
		v, baseID, err := o.hierarchy.ScanAt(id, 0)
		if err != nil {
			return
		}
		o.kernel.emit(Result{Kind: ScanValue, ObjectID: o.id, TupleID: baseID, Value: v})
		return
	}
	row, col, err := om.CellOnView(o.view, ev.Loc)
	if err != nil {
		o.kernel.counters.Add("touch.mapping_errors", 1)
		return
	}
	o.chargeCell(row, col)
	tuple, err := o.matrix.Row(row)
	if err != nil {
		return
	}
	// Reading the remaining attributes of the tuple costs one access per
	// attribute beyond the touched cell.
	for c := 0; c < o.matrix.NumCols(); c++ {
		if c != col {
			o.chargeCell(row, c)
		}
	}
	o.kernel.emit(Result{Kind: TuplePeek, ObjectID: o.id, TupleID: row, Col: col, Tuple: tuple})
}

// processSlideStep handles one delivered slide sample — the unit of query
// processing in dbTouch. A slide step semantically covers every tuple
// between the previous sample and this one, so the step computes that
// span and dispatches it as one unit: aggregates, filters, grouping and
// joins consume the whole span (vectorized through the storage range
// kernels, or tuple-at-a-time when Config.ScalarSlide selects the
// reference path), while emission stays one result per touch.
func (o *Object) processSlideStep(ev gesture.Event) {
	om := o.objectMap()
	var id, col int
	var err error
	if o.IsColumn() {
		id, err = om.RowOnView(o.view, ev.Loc)
	} else {
		id, col, err = om.CellOnView(o.view, ev.Loc)
	}
	if err != nil {
		o.kernel.counters.Add("touch.mapping_errors", 1)
		return
	}
	if id == o.lastID {
		o.kernel.counters.Add("touch.duplicates", 1)
		return
	}
	interTouch := ev.Time - o.lastTouch
	level := o.chooseLevel(ev, interTouch)
	o.extrap.Observe(id, ev.Time)
	o.setDirection()
	prevID := o.lastID
	o.lastID = id
	o.lastTouch = ev.Time
	o.lastLevel = level
	o.recordTouch(id)

	spanLo, spanHi := spanBounds(prevID, id)

	// Fused fast path: a WHERE whose span feeds only the running
	// aggregate skips the selection vector entirely (one fused
	// filter+aggregate scan). Falls through when positions are needed.
	if o.trySlideFused(id, level, spanLo, spanHi) {
		return
	}

	// WHERE conjuncts gate everything else (paper §2.9: the slide drives
	// the query processing steps). Span execution qualifies every covered
	// tuple: sel holds the ascending qualifying rows; an empty selection
	// means the touch yields no result.
	var sel []int32
	if o.optimizer != nil && o.optimizer.Len() > 0 {
		sel, err = o.optimizer.EvalSpan(o.matrix, spanLo, spanHi, o.colTrackers, o.kernel.cfg.ScalarSlide)
		if err != nil {
			return
		}
		if len(sel) == 0 {
			o.kernel.counters.Add("touch.filtered", 1)
			return
		}
	}

	if o.IsColumn() {
		o.slideColumn(prevID, id, level, sel)
	} else {
		o.slideTable(prevID, id, col, sel)
	}

	if o.grouper != nil {
		o.pushGroupSpan(spanLo, spanHi, sel, id, level)
	}
	if o.join != nil {
		o.pushJoinSpan(spanLo, spanHi, sel, id, level)
	}
}

// trySlideFused handles a filtered aggregate slide through the fused
// filter+aggregate kernels: when the WHERE-qualified span is consumed
// only by the running aggregate — a column object in aggregate mode with
// no group-by, join, or value-order reveal needing the qualifying
// positions — the span is scanned once (filter and aggregate in the same
// pass) instead of materializing a selection vector and re-reading it.
// Multi-conjunct WHEREs evaluate all but the final conjunct normally and
// fuse the last one over the survivors (see AdaptiveOptimizer.FusionPlan
// for when that split is offered). Charging is byte-compatible with the
// unfused path, so the emitted stream — values, counts, virtual times —
// is identical to both the selection-vector path and the scalar
// reference. It reports whether it handled the touch; eligibility checks
// all run before any charging, so a false return falls through to the
// unfused path with no cost double-counted.
func (o *Object) trySlideFused(id, level, spanLo, spanHi int) bool {
	if o.kernel.cfg.ScalarSlide || !o.IsColumn() || o.grouper != nil || o.join != nil {
		return false
	}
	if o.actions.Mode != ModeAggregate || o.actions.ValueOrder {
		return false
	}
	if o.optimizer == nil || o.optimizer.Len() == 0 || o.agg == nil || !operator.FusableAgg(o.agg.Kind()) {
		return false
	}
	// Float sums are order-sensitive: the fused scan merges chunk
	// partials, which reassociates addition and breaks bit-identity with
	// the scalar reference's per-value adds. Sum-consuming kinds over
	// float columns stay on the unfused path; min/max/count fuse fine
	// (exact on any data).
	if col, err := o.column(); err == nil && col.Type() == storage.Float64 &&
		(o.agg.Kind() == operator.Sum || o.agg.Kind() == operator.Avg) {
		return false
	}
	final, prefixLen, ok := o.optimizer.FusionPlan(o.colIdx)
	if !ok {
		return false
	}
	// Filtered touches read base data (chooseLevel), so the span maps
	// 1:1 onto level entries; bail to the generic path if that ever
	// stops holding.
	lvl, err := o.hierarchy.Level(level)
	if err != nil || lvl.Stride != 1 {
		return false
	}
	// The fused scan reads the hierarchy's base column for both the
	// predicate and the aggregate; if the matrix no longer serves that
	// column (a rotate swapped in a converted layout), the generic path
	// owns the fallback semantics.
	if mcol, merr := o.matrix.Column(final.Col); merr != nil || mcol != lvl.Col {
		return false
	}
	if spanLo < 0 {
		spanLo = 0
	}
	if n := lvl.Col.Len(); spanHi > n {
		spanHi = n
	}
	var sel []int32
	if prefixLen > 0 {
		sel, err = o.optimizer.EvalSpanPrefix(o.matrix, spanLo, spanHi, o.colTrackers, prefixLen)
		if err != nil {
			return true // charged like the unfused error path: drop the touch
		}
		if len(sel) == 0 {
			o.optimizer.NoteSpan(spanHi - spanLo)
			o.kernel.counters.Add("touch.filtered", 1)
			return true
		}
	}
	fa := operator.FuseFilterAgg(lvl.Col, spanLo, spanHi, sel, final.Op, final.Operand, o.trackerFor(final.Col), lvl.Tracker, o.agg.Kind())
	o.optimizer.NoteSpan(spanHi - spanLo)
	o.kernel.counters.Add("touch.fused", 1)
	if fa.N == 0 {
		o.kernel.counters.Add("touch.filtered", 1)
		return true
	}
	o.agg.AddSpan(int64(fa.N), fa.Sum, fa.Min, fa.Max)
	o.kernel.emit(Result{
		Kind: AggregateValue, ObjectID: o.id, TupleID: id,
		Agg: o.agg.Value(), N: o.agg.N(), Level: level,
	})
	return true
}

// spanBounds returns the base-tuple range [lo, hi) a slide step covers:
// (prev, id] sliding down, [id, prev) sliding up, just the touched tuple
// on the first step of a gesture.
func spanBounds(prevID, id int) (int, int) {
	switch {
	case prevID < 0:
		return id, id + 1
	case id > prevID:
		return prevID + 1, id + 1
	default:
		return id, prevID
	}
}

// entrySpan maps a base-tuple slide step onto level entries: the entries
// newly covered since the previous touch — including the touched entry,
// excluding the previously consumed one. At coarse levels consecutive
// touches can land on the same entry; the span is then empty (the touch
// refines nothing at this granularity).
func entrySpan(prevID, id, stride, n int) (from, to int) {
	cur := clampIdx(id/stride, n)
	if prevID < 0 {
		return cur, cur + 1
	}
	prev := clampIdx(prevID/stride, n)
	switch {
	case cur > prev:
		return prev + 1, cur + 1
	case cur < prev:
		return cur, prev
	default:
		return cur, cur
	}
}

func clampIdx(idx, n int) int {
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}

// chargeSelRuns charges one read per selected row, batching contiguous
// runs of the ascending selection through ranged accounting.
func chargeSelRuns(tr *iomodel.Tracker, sel []int32) {
	if tr == nil {
		return
	}
	operator.ForEachRun(sel, func(lo, hi int) { tr.AccessRange(lo, hi) })
}

// slideColumn executes the configured mode against the column hierarchy
// for the slide span ending at base tuple id.
func (o *Object) slideColumn(prevID, id, level int, sel []int32) {
	rows := o.matrix.NumRows()
	switch o.actions.Mode {
	case ModeScan:
		if o.actions.ValueOrder {
			// Value-order slides interpret the touch as a rank, so the
			// span selection cannot be projected onto it; the WHERE gate
			// keeps the reference semantics instead — the touched tuple
			// itself must qualify.
			if sel == nil || selContains(sel, id) {
				o.scanValueOrder(id, level)
			}
			return
		}
		if sel != nil {
			// Under a WHERE restriction the scan reveals the qualifying
			// tuple nearest the finger within the covered span.
			id = nearestSelected(sel, id)
		}
		v, baseID, err := o.hierarchy.ScanAt(id, level)
		if err != nil {
			return
		}
		o.kernel.emit(Result{Kind: ScanValue, ObjectID: o.id, TupleID: baseID, Value: v, Level: level})
	case ModeAggregate:
		o.slideAggregateColumn(prevID, id, level, sel)
	case ModeSummary:
		if o.actions.ValueOrder {
			// Same rank-vs-position mismatch as the scan branch: gate on
			// the touched tuple, not the span selection.
			if sel == nil || selContains(sel, id) {
				o.summaryValueOrder(id, level)
			}
			return
		}
		s := operator.Summarizer{K: o.actions.SummaryK, Kind: o.actions.Agg}
		lo, hi := s.Window(id, rows)
		var (
			sum      float64
			n        int
			min, max float64
			err      error
		)
		if o.kernel.cfg.ScalarSlide {
			sum, n, min, max, err = o.hierarchy.WindowAgg(lo, hi, level)
		} else {
			sum, n, min, max, err = o.hierarchy.SpanAgg(lo, hi, level)
		}
		if err != nil || n == 0 {
			return
		}
		o.kernel.emit(Result{
			Kind: SummaryValue, ObjectID: o.id, TupleID: id,
			WindowLo: lo, WindowHi: hi, N: int64(n), Level: level,
			Agg: summaryValue(o.actions.Agg, sum, n, min, max),
		})
	}
}

// nearestSelected picks the selection entry closest to the touched tuple:
// the touched tuple sits at one end of the span, so it is the first or
// last selected row.
func nearestSelected(sel []int32, id int) int {
	if id <= int(sel[0]) {
		return int(sel[0])
	}
	return int(sel[len(sel)-1])
}

// selContains reports whether the ascending selection contains id.
func selContains(sel []int32, id int) bool {
	i := sort.Search(len(sel), func(i int) bool { return sel[i] >= int32(id) })
	return i < len(sel) && sel[i] == int32(id)
}

// slideAggregateColumn absorbs the covered span into the running
// aggregate and emits its current state — the span version of "running
// aggregate continuously updated" (paper §2.3): every tuple the finger
// swept over contributes, not only the sampled one.
func (o *Object) slideAggregateColumn(prevID, id, level int, sel []int32) {
	lvl, err := o.hierarchy.Level(level)
	if err != nil {
		return
	}
	scalar := o.kernel.cfg.ScalarSlide
	if sel != nil {
		// Filtered slides run at base level (chooseLevel): absorb the
		// qualifying rows.
		if scalar {
			for _, r := range sel {
				lvl.Tracker.Access(int(r))
				o.agg.Add(lvl.Col.Float(int(r)))
			}
		} else {
			chargeSelRuns(lvl.Tracker, sel)
			for _, r := range sel {
				o.agg.Add(lvl.Col.Float(int(r)))
			}
		}
		o.kernel.emit(Result{
			Kind: AggregateValue, ObjectID: o.id, TupleID: id,
			Agg: o.agg.Value(), N: o.agg.N(), Level: level,
		})
		return
	}
	from, to := entrySpan(prevID, id, lvl.Stride, lvl.Col.Len())
	switch {
	case scalar:
		for e := from; e < to; e++ {
			lvl.Tracker.Access(e)
			o.agg.Add(lvl.Col.Float(e))
		}
	case o.agg.NeedsPerValue():
		// Variance-family aggregates are order-sensitive: absorb the span
		// value by value over the native slice, charged as one range.
		lvl.Tracker.AccessRange(from, to)
		lvl.Col.AddRangeTo(from, to, o.agg.Add)
	default:
		sum, n, min, max, err := o.hierarchy.SpanEntries(from, to, level)
		if err != nil {
			return
		}
		o.agg.AddSpan(int64(n), sum, min, max)
	}
	o.kernel.emit(Result{
		Kind: AggregateValue, ObjectID: o.id, TupleID: clampIdx(id/lvl.Stride, lvl.Col.Len()) * lvl.Stride,
		Agg: o.agg.Value(), N: o.agg.N(), Level: level,
	})
}

// scanValueOrder serves a scan touch in value order via the per-level
// sorted index: the mapped id is interpreted as a rank.
func (o *Object) scanValueOrder(id, level int) {
	lvl, err := o.hierarchy.Level(level)
	if err != nil {
		return
	}
	idx := o.indexes.For(level, lvl.Col, lvl.Tracker)
	rank := id / lvl.Stride
	if rank >= idx.Len() {
		rank = idx.Len() - 1
	}
	v, pos, err := idx.ValueAtRank(rank, lvl.Tracker)
	if err != nil {
		return
	}
	o.kernel.emit(Result{
		Kind: ScanValue, ObjectID: o.id, TupleID: pos * lvl.Stride,
		Value: storage.FloatValue(v), Level: level,
	})
}

// summaryValueOrder aggregates a rank window via the sorted index —
// summaries over value quantiles rather than positions.
func (o *Object) summaryValueOrder(id, level int) {
	lvl, err := o.hierarchy.Level(level)
	if err != nil {
		return
	}
	idx := o.indexes.For(level, lvl.Col, lvl.Tracker)
	rank := id / lvl.Stride
	k := o.actions.SummaryK
	lo, hi := rank-k, rank+k+1
	if lo < 0 {
		lo = 0
	}
	if hi > idx.Len() {
		hi = idx.Len()
	}
	agg := operator.NewRunningAgg(o.actions.Agg)
	if o.kernel.cfg.ScalarSlide {
		for r := lo; r < hi; r++ {
			v, _, err := idx.ValueAtRank(r, lvl.Tracker)
			if err != nil {
				continue
			}
			agg.Add(v)
		}
	} else {
		idx.AddRankRange(lo, hi, lvl.Tracker, agg.Add)
	}
	if agg.N() == 0 {
		return
	}
	o.kernel.emit(Result{
		Kind: SummaryValue, ObjectID: o.id, TupleID: id,
		WindowLo: lo * lvl.Stride, WindowHi: hi * lvl.Stride,
		Agg: agg.Value(), N: agg.N(), Level: level,
	})
}

// slideTable executes the configured mode against a table object for the
// row span ending at (row, col).
func (o *Object) slideTable(prevRow, row, col int, sel []int32) {
	scalar := o.kernel.cfg.ScalarSlide
	switch o.actions.Mode {
	case ModeScan:
		if sel != nil {
			row = nearestSelected(sel, row)
		}
		o.chargeCell(row, col)
		v, err := o.matrix.At(row, col)
		if err != nil {
			return
		}
		o.kernel.emit(Result{Kind: ScanValue, ObjectID: o.id, TupleID: row, Col: col, Value: v})
	case ModeAggregate:
		spanLo, spanHi := spanBounds(prevRow, row)
		if sel != nil {
			for _, r := range sel {
				o.chargeCell(int(r), col)
				o.agg.Add(o.matrix.Float(int(r), col))
			}
		} else {
			o.absorbCellSpan(o.agg, spanLo, spanHi, col, scalar)
		}
		o.kernel.emit(Result{
			Kind: AggregateValue, ObjectID: o.id, TupleID: row, Col: col,
			Agg: o.agg.Value(), N: o.agg.N(),
		})
	case ModeSummary:
		s := operator.Summarizer{K: o.actions.SummaryK, Kind: o.actions.Agg}
		lo, hi := s.Window(row, o.matrix.NumRows())
		agg := operator.NewRunningAgg(o.actions.Agg)
		o.absorbCellSpan(agg, lo, hi, col, scalar)
		if agg.N() == 0 {
			return
		}
		o.kernel.emit(Result{
			Kind: SummaryValue, ObjectID: o.id, TupleID: row, Col: col,
			WindowLo: lo, WindowHi: hi, Agg: agg.Value(), N: agg.N(),
		})
	}
}

// absorbCellSpan feeds cells (lo..hi, col) into agg. The scalar path
// charges and reads cell by cell; the vectorized path charges the strided
// cell range as one unit and, on column-major layouts, absorbs through
// the typed column kernels.
func (o *Object) absorbCellSpan(agg *operator.RunningAgg, lo, hi, col int, scalar bool) {
	if hi > o.matrix.NumRows() {
		hi = o.matrix.NumRows()
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return
	}
	if scalar {
		for r := lo; r < hi; r++ {
			o.chargeCell(r, col)
			agg.Add(o.matrix.Float(r, col))
		}
		return
	}
	if o.cellTracker != nil {
		ncols := o.matrix.NumCols()
		o.cellTracker.AccessStrided(lo*ncols+col, (hi-1)*ncols+col+1, ncols)
	}
	if c, err := o.matrix.Column(col); err == nil && !agg.NeedsPerValue() {
		sum, n := c.SumRange(lo, hi)
		min, max, _ := c.MinMaxRange(lo, hi)
		agg.AddSpan(int64(n), sum, min, max)
		return
	}
	for r := lo; r < hi; r++ {
		agg.Add(o.matrix.Float(r, col))
	}
}

// pushGroupSpan feeds the covered span (or its qualifying selection)
// into the incremental group-by and emits the touched tuple's group when
// the touch absorbed it.
func (o *Object) pushGroupSpan(spanLo, spanHi int, sel []int32, id, level int) {
	kt := o.trackerFor(o.actions.Group.KeyCol)
	vt := o.trackerFor(o.actions.Group.ValCol)
	wasSeen := o.grouper.Seen(id)
	if o.kernel.cfg.ScalarSlide {
		if sel != nil {
			for _, r := range sel {
				o.grouper.Push(int(r), kt, vt)
			}
		} else {
			for r := spanLo; r < spanHi; r++ {
				o.grouper.Push(r, kt, vt)
			}
		}
	} else if sel != nil {
		operator.ForEachRun(sel, func(lo, hi int) { o.grouper.PushRange(lo, hi, kt, vt) })
	} else {
		o.grouper.PushRange(spanLo, spanHi, kt, vt)
	}
	if wasSeen || !o.grouper.Seen(id) {
		return
	}
	if key, val, ok := o.grouper.GroupOf(id); ok {
		o.kernel.emit(Result{
			Kind: GroupValue, ObjectID: o.id, TupleID: id,
			GroupKey: key, Agg: val, N: int64(o.grouper.SeenTuples()), Level: level,
		})
	}
}

// pushJoinSpan feeds the covered span (or its qualifying selection) into
// the symmetric join and emits all new matches as one result.
func (o *Object) pushJoinSpan(spanLo, spanHi int, sel []int32, id, level int) {
	tracker := o.trackerFor(maxInt(o.colIdx, 0))
	isLeft := o.joinSide == JoinLeft
	var matches []operator.JoinMatch
	if o.kernel.cfg.ScalarSlide {
		push := func(r int) {
			if isLeft {
				matches = append(matches, o.join.PushLeft(r, tracker)...)
			} else {
				matches = append(matches, o.join.PushRight(r, tracker)...)
			}
		}
		if sel != nil {
			for _, r := range sel {
				push(int(r))
			}
		} else {
			for r := spanLo; r < spanHi; r++ {
				push(r)
			}
		}
	} else if sel != nil {
		operator.ForEachRun(sel, func(lo, hi int) {
			matches = append(matches, o.join.PushRange(lo, hi, isLeft, tracker)...)
		})
	} else {
		matches = o.join.PushRange(spanLo, spanHi, isLeft, tracker)
	}
	if len(matches) > 0 {
		o.kernel.emit(Result{
			Kind: JoinMatches, ObjectID: o.id, TupleID: id,
			Matches: matches, N: o.join.Matches(), Level: level,
		})
	}
}

// chooseLevel picks the sample level serving this touch from object
// extent, finger speed and inter-touch time, then escalates coarser if the
// estimated window cost would blow the response bound.
func (o *Object) chooseLevel(ev gesture.Event, interTouch time.Duration) int {
	if !o.kernel.cfg.UseSamples || o.hierarchy == nil {
		return 0
	}
	// WHERE filters qualify the touched base tuple; answering from a
	// coarser sample would return a different tuple's value and break
	// the filter contract, so filtered touches read base data.
	if len(o.actions.Filters) > 0 {
		return 0
	}
	speed := math.Hypot(ev.Velocity.X, ev.Velocity.Y)
	level := o.hierarchy.SelectLevel(o.view.LocalSize().H, speed, interTouch)
	// With enough gesture history, the extrapolator's measured base-tuple
	// step is a better gap estimate than the geometric model: it reflects
	// where consecutive touches actually landed (real sensor cadence and
	// coordinate mapping), so the level tracks the observed touch spacing
	// instead of the screen-extent prediction. chooseLevel runs before
	// this touch is Observed, so the state is genuinely anticipatory.
	if o.extrap != nil && o.extrap.Observed() >= 2 {
		if gap := math.Abs(o.extrap.StepSize()); gap >= 1 {
			level = o.hierarchy.SelectLevelForGap(gap)
		}
	}
	if bound := o.kernel.cfg.ResponseBound; bound > 0 && o.actions.Mode == ModeSummary {
		level = o.escalateForBound(level, bound)
	}
	return level
}

// escalateForBound raises the level until the worst-case window cost fits
// the response bound (paper §4: "there should always be a maximum possible
// wait time for a single touch regardless of the query and the data
// sizes").
func (o *Object) escalateForBound(level int, bound time.Duration) int {
	window := 2*o.actions.SummaryK + 1
	for level < o.hierarchy.NumLevels()-1 {
		lvl, err := o.hierarchy.Level(level)
		if err != nil {
			return level
		}
		entries := window / lvl.Stride
		if entries < 1 {
			entries = 1
		}
		params := lvl.Tracker.Params()
		blocks := entries/params.BlockValues + 1
		worst := time.Duration(blocks)*params.ColdLatency + time.Duration(entries)*params.WarmLatency
		if worst <= bound {
			return level
		}
		level++
	}
	return level
}

// chargeCell charges a table-cell read to the cell tracker.
func (o *Object) chargeCell(row, col int) {
	if o.cellTracker != nil {
		o.cellTracker.Access(row*o.matrix.NumCols() + col)
	}
}

// TrackerFor exposes the per-column tracker (benchmark instrumentation).
func (o *Object) TrackerFor(col int) *iomodel.Tracker { return o.trackerFor(col) }

// OptimizerReorders reports how many times the adaptive optimizer changed
// the conjunct evaluation order.
func (o *Object) OptimizerReorders() int {
	if o.optimizer == nil {
		return 0
	}
	return o.optimizer.Reorders()
}

// trackerFor returns (lazily creating) the per-column tracker.
func (o *Object) trackerFor(col int) *iomodel.Tracker {
	if col < 0 || col >= o.matrix.NumCols() {
		return nil
	}
	for len(o.colTrackers) <= col {
		o.colTrackers = append(o.colTrackers, nil)
	}
	if o.colTrackers[col] == nil {
		o.colTrackers[col] = iomodel.New(o.kernel.clock, o.kernel.cfg.IO, o.kernel.newPolicy())
	}
	return o.colTrackers[col]
}

// setDirection forwards the gesture direction to the active trackers so
// gesture-aware eviction can protect trailing blocks.
func (o *Object) setDirection() {
	dir := o.extrap.Direction()
	if o.hierarchy != nil {
		for i := 0; i < o.hierarchy.NumLevels(); i++ {
			if lvl, err := o.hierarchy.Level(i); err == nil {
				lvl.Tracker.SetDirection(dir)
			}
		}
	}
	if o.cellTracker != nil {
		o.cellTracker.SetDirection(dir)
	}
}

// applyZoom resizes the view by the pinch factor, bounded to stay
// touchable (paper §2.5 "Zoom-in/Zoom-out": the object size bounds the
// addressable data; zooming adjusts the bound).
func (o *Object) applyZoom(scale float64) {
	if scale <= 0 {
		return
	}
	frame := o.view.Frame().ScaledAbout(scale)
	const minExtent = 0.5 // half a centimeter stays tappable
	if frame.Size.W < minExtent || frame.Size.H < minExtent {
		return
	}
	// Keep the object touchable: clamp the frame to the screen (a real
	// UI clamps or pans; data off the glass cannot be touched).
	screen := o.kernel.screen.Frame().Size
	if frame.Size.W > screen.W {
		frame.Size.W = screen.W
	}
	if frame.Size.H > screen.H {
		frame.Size.H = screen.H
	}
	if frame.Origin.X < 0 {
		frame.Origin.X = 0
	}
	if frame.Origin.Y < 0 {
		frame.Origin.Y = 0
	}
	if frame.Origin.X+frame.Size.W > screen.W {
		frame.Origin.X = screen.W - frame.Size.W
	}
	if frame.Origin.Y+frame.Size.H > screen.H {
		frame.Origin.Y = screen.H - frame.Size.H
	}
	o.view.SetFrame(frame)
	if scale > 1 {
		o.kernel.counters.Add("gesture.zoom_in", 1)
	} else {
		o.kernel.counters.Add("gesture.zoom_out", 1)
	}
}

// applyRotate handles a completed two-finger rotation: the view turns a
// quarter turn, and multi-column objects start an incremental physical
// layout conversion with a sample-first preview (paper §2.8).
func (o *Object) applyRotate(angle float64) {
	if math.Abs(angle) < math.Pi/4 {
		return // not a committed quarter turn
	}
	turns := touchos.QuarterTurns(1)
	if angle < 0 {
		turns = touchos.QuarterTurns(-1)
	}
	o.view.Rotate(turns)
	o.kernel.counters.Add("gesture.rotations", 1)
	if o.matrix.NumCols() <= 1 || o.conv != nil {
		return
	}
	conv, err := layout.NewConversion(o.matrix, o.kernel.clock, 4096)
	if err != nil {
		return
	}
	// Sample-first: a strided preview sized to the touchable positions so
	// the user can query the new layout immediately.
	positions := o.objectMap().Positions(o.view.LocalSize().H)
	stride := o.matrix.NumRows() / maxInt(positions, 1)
	if stride > 1 {
		if _, err := conv.SampleFirst(stride); err == nil {
			o.kernel.counters.Add("layout.previews", 1)
		}
	}
	o.conv = conv
	o.kernel.counters.Add("layout.conversions_started", 1)
}

// advanceConversion spends idle time on an in-progress layout conversion
// and swaps the matrix in when complete.
func (o *Object) advanceConversion(budget time.Duration) {
	if o.conv == nil {
		return
	}
	if _, err := o.conv.RunFor(budget); err != nil {
		o.conv = nil
		return
	}
	if o.conv.Done() {
		o.matrix = o.conv.Result()
		o.cellTracker = iomodel.New(o.kernel.clock, o.kernel.cfg.IO, o.kernel.newPolicy())
		o.colTrackers = nil
		o.conv = nil
		o.kernel.counters.Add("layout.conversions_done", 1)
	}
}

// Converting reports whether a layout conversion is in progress and its
// progress fraction.
func (o *Object) Converting() (bool, float64) {
	if o.conv == nil {
		return false, 1
	}
	return true, o.conv.Progress()
}

func summaryValue(kind operator.AggKind, sum float64, n int, min, max float64) float64 {
	switch kind {
	case operator.Count:
		return float64(n)
	case operator.Sum:
		return sum
	case operator.Min:
		return min
	case operator.Max:
		return max
	default: // Avg and variance-family default to the mean over samples
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
