package core

import (
	"fmt"
	"math"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/index"
	"dbtouch/internal/iomodel"
	"dbtouch/internal/layout"
	"dbtouch/internal/mapping"
	"dbtouch/internal/operator"
	"dbtouch/internal/prefetch"
	"dbtouch/internal/sample"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Object is a visual data object: a view on screen bound to a matrix (or
// one column of it), carrying all the per-object machinery — sample
// hierarchy, trackers, extrapolator, prefetcher, lazy indexes, and the
// configured touch actions.
type Object struct {
	id     int
	kernel *Kernel
	view   *touchos.View
	matrix *storage.Matrix
	// colIdx is the bound attribute for column objects, -1 for tables.
	colIdx int

	// hierarchy backs column objects; cellTracker backs table objects
	// (index space = row*ncols+col).
	hierarchy   *sample.Hierarchy
	cellTracker *iomodel.Tracker
	// colTrackers charge filter/group/join reads per attribute.
	colTrackers []*iomodel.Tracker

	extrap     *prefetch.Extrapolator
	prefetcher *prefetch.Prefetcher
	indexes    *index.Registry
	actions    Actions
	optimizer  *AdaptiveOptimizer
	agg        *operator.RunningAgg
	grouper    *operator.IncrementalGroupBy
	join       *operator.SymmetricHashJoin
	joinSide   JoinSide

	lastID    int
	lastTouch time.Duration
	lastLevel int
	sliding   bool

	// touchBuckets histograms touched base ids at bucketSize granularity,
	// feeding hot-region detection for cache-to-sample promotion (§2.6).
	touchBuckets map[int]int
	bucketSize   int

	// conv is the in-progress layout conversion after a rotate gesture.
	conv *layout.Conversion
}

// ID returns the object identifier.
func (o *Object) ID() int { return o.id }

// View returns the object's view.
func (o *Object) View() *touchos.View { return o.view }

// Matrix returns the backing matrix.
func (o *Object) Matrix() *storage.Matrix { return o.matrix }

// IsColumn reports whether the object is bound to a single column.
func (o *Object) IsColumn() bool { return o.colIdx >= 0 }

// Actions returns the current touch configuration.
func (o *Object) Actions() Actions { return o.actions }

// SetActions replaces the touch configuration and resets per-query state
// (running aggregates, group tables, optimizer statistics).
func (o *Object) SetActions(a Actions) {
	o.actions = a
	o.agg = operator.NewRunningAgg(a.Agg)
	o.optimizer = NewAdaptiveOptimizer(a.Filters, 64, o.kernel.cfg.AdaptiveOpt)
	for _, f := range a.Filters {
		o.trackerFor(f.Col) // pre-create so evaluations are charged
	}
	o.grouper = nil
	if a.Group != nil && o.matrix.Layout() == storage.ColumnMajor {
		keyCol, errK := o.matrix.Column(a.Group.KeyCol)
		valCol, errV := o.matrix.Column(a.Group.ValCol)
		if errK == nil && errV == nil {
			o.grouper = operator.NewIncrementalGroupBy(keyCol, valCol, a.Group.Agg)
		}
	}
	o.join = nil
	if a.Join != nil {
		o.kernel.wireJoin(o, a.Join)
	}
	o.lastID = -1
}

// Hierarchy exposes the sample hierarchy (column objects; nil for tables).
func (o *Object) Hierarchy() *sample.Hierarchy { return o.hierarchy }

// Rows reports the tuple count of the backing data.
func (o *Object) Rows() int { return o.matrix.NumRows() }

// objectMap builds the touch→tuple translator for the current geometry.
func (o *Object) objectMap() mapping.ObjectMap {
	cols := o.matrix.NumCols()
	if o.IsColumn() {
		cols = 1
	}
	return mapping.ObjectMap{
		Rows:            o.matrix.NumRows(),
		Cols:            cols,
		Granularity:     o.kernel.cfg.Granularity,
		ResolutionPerCm: o.kernel.cfg.ResolutionPerCm,
	}
}

// column returns the bound column of a column object.
func (o *Object) column() (*storage.Column, error) {
	if !o.IsColumn() {
		return nil, fmt.Errorf("core: object %d is a table object", o.id)
	}
	return o.matrix.Column(o.colIdx)
}

// beginSlide resets gesture-tracking state at slide start.
func (o *Object) beginSlide(ev gesture.Event) {
	o.sliding = true
	o.lastID = -1
	o.extrap.Reset()
	o.lastTouch = ev.Time
	o.kernel.counters.Add("gesture.slides", 1)
}

// endSlide finalizes a slide.
func (o *Object) endSlide(gesture.Event) {
	o.sliding = false
}

// processTap handles a single tap: reveal one value (columns) or one full
// tuple (tables) — the schema-discovery touch of paper §2.2.
func (o *Object) processTap(ev gesture.Event) {
	om := o.objectMap()
	if o.IsColumn() {
		id, err := om.RowOnView(o.view, ev.Loc)
		if err != nil {
			o.kernel.counters.Add("touch.mapping_errors", 1)
			return
		}
		v, baseID, err := o.hierarchy.ScanAt(id, 0)
		if err != nil {
			return
		}
		o.kernel.emit(Result{Kind: ScanValue, ObjectID: o.id, TupleID: baseID, Value: v})
		return
	}
	row, col, err := om.CellOnView(o.view, ev.Loc)
	if err != nil {
		o.kernel.counters.Add("touch.mapping_errors", 1)
		return
	}
	o.chargeCell(row, col)
	tuple, err := o.matrix.Row(row)
	if err != nil {
		return
	}
	// Reading the remaining attributes of the tuple costs one access per
	// attribute beyond the touched cell.
	for c := 0; c < o.matrix.NumCols(); c++ {
		if c != col {
			o.chargeCell(row, c)
		}
	}
	o.kernel.emit(Result{Kind: TuplePeek, ObjectID: o.id, TupleID: row, Col: col, Tuple: tuple})
}

// processSlideStep handles one delivered slide sample — the unit of query
// processing in dbTouch.
func (o *Object) processSlideStep(ev gesture.Event) {
	om := o.objectMap()
	var id, col int
	var err error
	if o.IsColumn() {
		id, err = om.RowOnView(o.view, ev.Loc)
	} else {
		id, col, err = om.CellOnView(o.view, ev.Loc)
	}
	if err != nil {
		o.kernel.counters.Add("touch.mapping_errors", 1)
		return
	}
	if id == o.lastID {
		o.kernel.counters.Add("touch.duplicates", 1)
		return
	}
	interTouch := ev.Time - o.lastTouch
	level := o.chooseLevel(ev, interTouch)
	o.extrap.Observe(id, ev.Time)
	o.setDirection()
	o.lastID = id
	o.lastTouch = ev.Time
	o.lastLevel = level
	o.recordTouch(id)

	// WHERE conjuncts gate everything else (paper §2.9: the slide drives
	// the query processing steps; tuples failing the restriction yield no
	// result).
	if o.optimizer != nil && o.optimizer.Len() > 0 {
		pass, err := o.optimizer.Eval(o.matrix, id, o.colTrackers)
		if err != nil || !pass {
			o.kernel.counters.Add("touch.filtered", 1)
			return
		}
	}

	if o.IsColumn() {
		o.slideColumn(id, level)
	} else {
		o.slideTable(id, col)
	}

	if o.grouper != nil {
		kt := o.trackerFor(o.actions.Group.KeyCol)
		vt := o.trackerFor(o.actions.Group.ValCol)
		if key, val, ok := o.grouper.Push(id, kt, vt); ok {
			o.kernel.emit(Result{
				Kind: GroupValue, ObjectID: o.id, TupleID: id,
				GroupKey: key, Agg: val, N: int64(o.grouper.SeenTuples()), Level: level,
			})
		}
	}
	if o.join != nil {
		o.pushJoin(id, level)
	}
}

// slideColumn executes the configured mode against the column hierarchy.
func (o *Object) slideColumn(id, level int) {
	rows := o.matrix.NumRows()
	switch o.actions.Mode {
	case ModeScan:
		if o.actions.ValueOrder {
			o.scanValueOrder(id, level)
			return
		}
		v, baseID, err := o.hierarchy.ScanAt(id, level)
		if err != nil {
			return
		}
		o.kernel.emit(Result{Kind: ScanValue, ObjectID: o.id, TupleID: baseID, Value: v, Level: level})
	case ModeAggregate:
		v, baseID, err := o.hierarchy.ScanAt(id, level)
		if err != nil {
			return
		}
		o.agg.Add(v.AsFloat())
		o.kernel.emit(Result{
			Kind: AggregateValue, ObjectID: o.id, TupleID: baseID,
			Agg: o.agg.Value(), N: o.agg.N(), Level: level,
		})
	case ModeSummary:
		if o.actions.ValueOrder {
			o.summaryValueOrder(id, level)
			return
		}
		s := operator.Summarizer{K: o.actions.SummaryK, Kind: o.actions.Agg}
		lo, hi := s.Window(id, rows)
		sum, n, min, max, err := o.hierarchy.WindowAgg(lo, hi, level)
		if err != nil || n == 0 {
			return
		}
		o.kernel.emit(Result{
			Kind: SummaryValue, ObjectID: o.id, TupleID: id,
			WindowLo: lo, WindowHi: hi, N: int64(n), Level: level,
			Agg: summaryValue(o.actions.Agg, sum, n, min, max),
		})
	}
}

// scanValueOrder serves a scan touch in value order via the per-level
// sorted index: the mapped id is interpreted as a rank.
func (o *Object) scanValueOrder(id, level int) {
	lvl, err := o.hierarchy.Level(level)
	if err != nil {
		return
	}
	idx := o.indexes.For(level, lvl.Col, lvl.Tracker)
	rank := id / lvl.Stride
	if rank >= idx.Len() {
		rank = idx.Len() - 1
	}
	v, pos, err := idx.ValueAtRank(rank, lvl.Tracker)
	if err != nil {
		return
	}
	o.kernel.emit(Result{
		Kind: ScanValue, ObjectID: o.id, TupleID: pos * lvl.Stride,
		Value: storage.FloatValue(v), Level: level,
	})
}

// summaryValueOrder aggregates a rank window via the sorted index —
// summaries over value quantiles rather than positions.
func (o *Object) summaryValueOrder(id, level int) {
	lvl, err := o.hierarchy.Level(level)
	if err != nil {
		return
	}
	idx := o.indexes.For(level, lvl.Col, lvl.Tracker)
	rank := id / lvl.Stride
	k := o.actions.SummaryK
	lo, hi := rank-k, rank+k+1
	if lo < 0 {
		lo = 0
	}
	if hi > idx.Len() {
		hi = idx.Len()
	}
	agg := operator.NewRunningAgg(o.actions.Agg)
	for r := lo; r < hi; r++ {
		v, _, err := idx.ValueAtRank(r, lvl.Tracker)
		if err != nil {
			continue
		}
		agg.Add(v)
	}
	if agg.N() == 0 {
		return
	}
	o.kernel.emit(Result{
		Kind: SummaryValue, ObjectID: o.id, TupleID: id,
		WindowLo: lo * lvl.Stride, WindowHi: hi * lvl.Stride,
		Agg: agg.Value(), N: agg.N(), Level: level,
	})
}

// slideTable executes the configured mode against a table object at
// (row, col).
func (o *Object) slideTable(row, col int) {
	switch o.actions.Mode {
	case ModeScan:
		o.chargeCell(row, col)
		v, err := o.matrix.At(row, col)
		if err != nil {
			return
		}
		o.kernel.emit(Result{Kind: ScanValue, ObjectID: o.id, TupleID: row, Col: col, Value: v})
	case ModeAggregate:
		o.chargeCell(row, col)
		v, err := o.matrix.At(row, col)
		if err != nil {
			return
		}
		o.agg.Add(v.AsFloat())
		o.kernel.emit(Result{
			Kind: AggregateValue, ObjectID: o.id, TupleID: row, Col: col,
			Agg: o.agg.Value(), N: o.agg.N(),
		})
	case ModeSummary:
		s := operator.Summarizer{K: o.actions.SummaryK, Kind: o.actions.Agg}
		lo, hi := s.Window(row, o.matrix.NumRows())
		agg := operator.NewRunningAgg(o.actions.Agg)
		for r := lo; r < hi; r++ {
			o.chargeCell(r, col)
			v, err := o.matrix.At(r, col)
			if err != nil {
				continue
			}
			agg.Add(v.AsFloat())
		}
		if agg.N() == 0 {
			return
		}
		o.kernel.emit(Result{
			Kind: SummaryValue, ObjectID: o.id, TupleID: row, Col: col,
			WindowLo: lo, WindowHi: hi, Agg: agg.Value(), N: agg.N(),
		})
	}
}

// pushJoin feeds the touched tuple into the symmetric join and emits any
// matches.
func (o *Object) pushJoin(id, level int) {
	tracker := o.trackerFor(maxInt(o.colIdx, 0))
	var matches []operator.JoinMatch
	if o.joinSide == JoinLeft {
		matches = o.join.PushLeft(id, tracker)
	} else {
		matches = o.join.PushRight(id, tracker)
	}
	if len(matches) > 0 {
		o.kernel.emit(Result{
			Kind: JoinMatches, ObjectID: o.id, TupleID: id,
			Matches: matches, N: o.join.Matches(), Level: level,
		})
	}
}

// chooseLevel picks the sample level serving this touch from object
// extent, finger speed and inter-touch time, then escalates coarser if the
// estimated window cost would blow the response bound.
func (o *Object) chooseLevel(ev gesture.Event, interTouch time.Duration) int {
	if !o.kernel.cfg.UseSamples || o.hierarchy == nil {
		return 0
	}
	// WHERE filters qualify the touched base tuple; answering from a
	// coarser sample would return a different tuple's value and break
	// the filter contract, so filtered touches read base data.
	if len(o.actions.Filters) > 0 {
		return 0
	}
	speed := math.Hypot(ev.Velocity.X, ev.Velocity.Y)
	level := o.hierarchy.SelectLevel(o.view.LocalSize().H, speed, interTouch)
	if bound := o.kernel.cfg.ResponseBound; bound > 0 && o.actions.Mode == ModeSummary {
		level = o.escalateForBound(level, bound)
	}
	return level
}

// escalateForBound raises the level until the worst-case window cost fits
// the response bound (paper §4: "there should always be a maximum possible
// wait time for a single touch regardless of the query and the data
// sizes").
func (o *Object) escalateForBound(level int, bound time.Duration) int {
	window := 2*o.actions.SummaryK + 1
	for level < o.hierarchy.NumLevels()-1 {
		lvl, err := o.hierarchy.Level(level)
		if err != nil {
			return level
		}
		entries := window / lvl.Stride
		if entries < 1 {
			entries = 1
		}
		params := lvl.Tracker.Params()
		blocks := entries/params.BlockValues + 1
		worst := time.Duration(blocks)*params.ColdLatency + time.Duration(entries)*params.WarmLatency
		if worst <= bound {
			return level
		}
		level++
	}
	return level
}

// chargeCell charges a table-cell read to the cell tracker.
func (o *Object) chargeCell(row, col int) {
	if o.cellTracker != nil {
		o.cellTracker.Access(row*o.matrix.NumCols() + col)
	}
}

// TrackerFor exposes the per-column tracker (benchmark instrumentation).
func (o *Object) TrackerFor(col int) *iomodel.Tracker { return o.trackerFor(col) }

// OptimizerReorders reports how many times the adaptive optimizer changed
// the conjunct evaluation order.
func (o *Object) OptimizerReorders() int {
	if o.optimizer == nil {
		return 0
	}
	return o.optimizer.Reorders()
}

// trackerFor returns (lazily creating) the per-column tracker.
func (o *Object) trackerFor(col int) *iomodel.Tracker {
	if col < 0 || col >= o.matrix.NumCols() {
		return nil
	}
	for len(o.colTrackers) <= col {
		o.colTrackers = append(o.colTrackers, nil)
	}
	if o.colTrackers[col] == nil {
		o.colTrackers[col] = iomodel.New(o.kernel.clock, o.kernel.cfg.IO, o.kernel.newPolicy())
	}
	return o.colTrackers[col]
}

// setDirection forwards the gesture direction to the active trackers so
// gesture-aware eviction can protect trailing blocks.
func (o *Object) setDirection() {
	dir := o.extrap.Direction()
	if o.hierarchy != nil {
		for i := 0; i < o.hierarchy.NumLevels(); i++ {
			if lvl, err := o.hierarchy.Level(i); err == nil {
				lvl.Tracker.SetDirection(dir)
			}
		}
	}
	if o.cellTracker != nil {
		o.cellTracker.SetDirection(dir)
	}
}

// applyZoom resizes the view by the pinch factor, bounded to stay
// touchable (paper §2.5 "Zoom-in/Zoom-out": the object size bounds the
// addressable data; zooming adjusts the bound).
func (o *Object) applyZoom(scale float64) {
	if scale <= 0 {
		return
	}
	frame := o.view.Frame().ScaledAbout(scale)
	const minExtent = 0.5 // half a centimeter stays tappable
	if frame.Size.W < minExtent || frame.Size.H < minExtent {
		return
	}
	// Keep the object touchable: clamp the frame to the screen (a real
	// UI clamps or pans; data off the glass cannot be touched).
	screen := o.kernel.screen.Frame().Size
	if frame.Size.W > screen.W {
		frame.Size.W = screen.W
	}
	if frame.Size.H > screen.H {
		frame.Size.H = screen.H
	}
	if frame.Origin.X < 0 {
		frame.Origin.X = 0
	}
	if frame.Origin.Y < 0 {
		frame.Origin.Y = 0
	}
	if frame.Origin.X+frame.Size.W > screen.W {
		frame.Origin.X = screen.W - frame.Size.W
	}
	if frame.Origin.Y+frame.Size.H > screen.H {
		frame.Origin.Y = screen.H - frame.Size.H
	}
	o.view.SetFrame(frame)
	if scale > 1 {
		o.kernel.counters.Add("gesture.zoom_in", 1)
	} else {
		o.kernel.counters.Add("gesture.zoom_out", 1)
	}
}

// applyRotate handles a completed two-finger rotation: the view turns a
// quarter turn, and multi-column objects start an incremental physical
// layout conversion with a sample-first preview (paper §2.8).
func (o *Object) applyRotate(angle float64) {
	if math.Abs(angle) < math.Pi/4 {
		return // not a committed quarter turn
	}
	turns := touchos.QuarterTurns(1)
	if angle < 0 {
		turns = touchos.QuarterTurns(-1)
	}
	o.view.Rotate(turns)
	o.kernel.counters.Add("gesture.rotations", 1)
	if o.matrix.NumCols() <= 1 || o.conv != nil {
		return
	}
	conv, err := layout.NewConversion(o.matrix, o.kernel.clock, 4096)
	if err != nil {
		return
	}
	// Sample-first: a strided preview sized to the touchable positions so
	// the user can query the new layout immediately.
	positions := o.objectMap().Positions(o.view.LocalSize().H)
	stride := o.matrix.NumRows() / maxInt(positions, 1)
	if stride > 1 {
		if _, err := conv.SampleFirst(stride); err == nil {
			o.kernel.counters.Add("layout.previews", 1)
		}
	}
	o.conv = conv
	o.kernel.counters.Add("layout.conversions_started", 1)
}

// advanceConversion spends idle time on an in-progress layout conversion
// and swaps the matrix in when complete.
func (o *Object) advanceConversion(budget time.Duration) {
	if o.conv == nil {
		return
	}
	if _, err := o.conv.RunFor(budget); err != nil {
		o.conv = nil
		return
	}
	if o.conv.Done() {
		o.matrix = o.conv.Result()
		o.cellTracker = iomodel.New(o.kernel.clock, o.kernel.cfg.IO, o.kernel.newPolicy())
		o.colTrackers = nil
		o.conv = nil
		o.kernel.counters.Add("layout.conversions_done", 1)
	}
}

// Converting reports whether a layout conversion is in progress and its
// progress fraction.
func (o *Object) Converting() (bool, float64) {
	if o.conv == nil {
		return false, 1
	}
	return true, o.conv.Progress()
}

func summaryValue(kind operator.AggKind, sum float64, n int, min, max float64) float64 {
	switch kind {
	case operator.Count:
		return float64(n)
	case operator.Sum:
		return sum
	case operator.Min:
		return min
	case operator.Max:
		return max
	default: // Avg and variance-family default to the mean over samples
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
