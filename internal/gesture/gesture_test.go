package gesture

import (
	"math"
	"testing"
	"time"

	"dbtouch/internal/touchos"
)

func feedAll(r *Recognizer, events []touchos.TouchEvent) []Event {
	var out []Event
	for _, e := range events {
		out = append(out, r.Feed(e)...)
	}
	return out
}

func kinds(events []Event) map[EventKind]int {
	m := map[EventKind]int{}
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

func TestSynthSlideShape(t *testing.T) {
	s := Synth{}
	events := s.Slide(touchos.Point{X: 1, Y: 0}, touchos.Point{X: 1, Y: 10}, 0, time.Second)
	if events[0].Phase != touchos.TouchBegan {
		t.Fatal("stream must start with began")
	}
	if events[len(events)-1].Phase != touchos.TouchEnded {
		t.Fatal("stream must end with ended")
	}
	// ~60 samples at the default digitizer rate.
	moves := 0
	for i, e := range events {
		if e.Phase == touchos.TouchMoved {
			moves++
		}
		if i > 0 && e.Time < events[i-1].Time {
			t.Fatal("events out of time order")
		}
	}
	if moves < 55 || moves > 65 {
		t.Fatalf("moves = %d, want ≈60", moves)
	}
	// Path is a straight vertical line.
	for _, e := range events {
		if e.Loc.X != 1 {
			t.Fatalf("slide wandered to x=%v", e.Loc.X)
		}
		if e.Loc.Y < 0 || e.Loc.Y > 10.2 {
			t.Fatalf("slide out of range y=%v", e.Loc.Y)
		}
	}
}

func TestSynthCustomRate(t *testing.T) {
	s := Synth{Hz: 10}
	events := s.Slide(touchos.Point{X: 0, Y: 0}, touchos.Point{X: 0, Y: 1}, 0, time.Second)
	moves := 0
	for _, e := range events {
		if e.Phase == touchos.TouchMoved {
			moves++
		}
	}
	if moves < 9 || moves > 11 {
		t.Fatalf("10Hz moves = %d", moves)
	}
}

func TestSynthPauseResumeHoldsPosition(t *testing.T) {
	s := Synth{}
	events := s.PauseResume(touchos.Point{X: 0, Y: 0}, touchos.Point{X: 0, Y: 10}, 0, 2*time.Second, 0.5, time.Second)
	// During [1s, 2s] the finger should sit at y=5.
	held := 0
	for _, e := range events {
		if e.Time > 1100*time.Millisecond && e.Time < 1900*time.Millisecond {
			if math.Abs(e.Loc.Y-5) > 0.01 {
				t.Fatalf("pause wandered to %v at %v", e.Loc.Y, e.Time)
			}
			held++
		}
	}
	if held < 40 {
		t.Fatalf("pause samples = %d, want ≈48", held)
	}
}

func TestSynthBackAndForthReverses(t *testing.T) {
	s := Synth{}
	events := s.BackAndForth(touchos.Point{X: 0, Y: 0}, touchos.Point{X: 0, Y: 10}, 0, time.Second, 1)
	maxY := 0.0
	for _, e := range events {
		if e.Loc.Y > maxY {
			maxY = e.Loc.Y
		}
	}
	last := events[len(events)-1]
	if maxY < 9.9 {
		t.Fatalf("never reached far end: max=%v", maxY)
	}
	if last.Loc.Y > 0.5 {
		t.Fatalf("did not return: final y=%v", last.Loc.Y)
	}
}

func TestMergeOrdersStreams(t *testing.T) {
	s := Synth{}
	a := s.Slide(touchos.Point{X: 0, Y: 0}, touchos.Point{X: 0, Y: 1}, 0, 500*time.Millisecond)
	b := s.Tap(touchos.Point{X: 5, Y: 5}, 200*time.Millisecond)
	merged := Merge(a, b)
	for i := 1; i < len(merged); i++ {
		if merged[i].Time < merged[i-1].Time {
			t.Fatal("merged stream out of order")
		}
	}
	if len(merged) != len(a)+len(b) {
		t.Fatal("merge lost events")
	}
}

func TestRecognizeTap(t *testing.T) {
	r := NewRecognizer(DefaultConfig())
	s := Synth{}
	events := feedAll(r, s.Tap(touchos.Point{X: 3, Y: 3}, 0))
	k := kinds(events)
	if k[Tap] != 1 {
		t.Fatalf("kinds = %v, want one tap", k)
	}
}

func TestRecognizeSlide(t *testing.T) {
	r := NewRecognizer(DefaultConfig())
	s := Synth{}
	events := feedAll(r, s.Slide(touchos.Point{X: 1, Y: 0}, touchos.Point{X: 1, Y: 10}, 0, time.Second))
	k := kinds(events)
	if k[SlideBegan] != 1 || k[SlideEnded] != 1 {
		t.Fatalf("kinds = %v, want one slide began/ended", k)
	}
	if k[SlideStep] < 50 {
		t.Fatalf("slide steps = %d, want ≈60", k[SlideStep])
	}
	if k[Tap] != 0 {
		t.Fatal("slide misrecognized as tap")
	}
	// Velocity should be ≈10 cm/s downward.
	var lastV touchos.Point
	for _, e := range events {
		if e.Kind == SlideStep {
			lastV = e.Velocity
		}
	}
	if math.Abs(lastV.Y-10) > 3 {
		t.Fatalf("slide velocity = %v, want ≈10 cm/s", lastV.Y)
	}
}

func TestRecognizePinchZoomIn(t *testing.T) {
	r := NewRecognizer(DefaultConfig())
	s := Synth{}
	events := feedAll(r, s.Pinch(touchos.Point{X: 5, Y: 5}, 2, 4, 0, 500*time.Millisecond))
	k := kinds(events)
	if k[PinchEnded] != 1 {
		t.Fatalf("kinds = %v, want one pinch-ended", k)
	}
	for _, e := range events {
		if e.Kind == PinchEnded && math.Abs(e.Scale-2) > 0.05 {
			t.Fatalf("pinch scale = %v, want 2", e.Scale)
		}
	}
}

func TestRecognizePinchZoomOut(t *testing.T) {
	r := NewRecognizer(DefaultConfig())
	s := Synth{}
	events := feedAll(r, s.Pinch(touchos.Point{X: 5, Y: 5}, 4, 2, 0, 500*time.Millisecond))
	for _, e := range events {
		if e.Kind == PinchEnded && math.Abs(e.Scale-0.5) > 0.02 {
			t.Fatalf("pinch scale = %v, want 0.5", e.Scale)
		}
	}
}

func TestRecognizeRotation(t *testing.T) {
	r := NewRecognizer(DefaultConfig())
	s := Synth{}
	events := feedAll(r, s.Rotate(touchos.Point{X: 5, Y: 5}, 2, math.Pi/2, 0, 500*time.Millisecond))
	k := kinds(events)
	if k[RotateEnded] != 1 {
		t.Fatalf("kinds = %v, want one rotate-ended", k)
	}
	for _, e := range events {
		if e.Kind == RotateEnded && math.Abs(e.Angle-math.Pi/2) > 0.1 {
			t.Fatalf("rotation angle = %v, want π/2", e.Angle)
		}
	}
}

func TestRecognizeCancelled(t *testing.T) {
	r := NewRecognizer(DefaultConfig())
	events := feedAll(r, []touchos.TouchEvent{
		{Phase: touchos.TouchBegan, Loc: touchos.Point{X: 1, Y: 1}, Time: 0},
		{Phase: touchos.TouchCancelled, Loc: touchos.Point{X: 1, Y: 1}, Time: time.Millisecond},
	})
	if kinds(events)[Cancelled] != 1 {
		t.Fatalf("kinds = %v", kinds(events))
	}
}

func TestLongPressIsNotTap(t *testing.T) {
	r := NewRecognizer(DefaultConfig())
	events := feedAll(r, []touchos.TouchEvent{
		{Phase: touchos.TouchBegan, Loc: touchos.Point{X: 1, Y: 1}, Time: 0},
		{Phase: touchos.TouchEnded, Loc: touchos.Point{X: 1, Y: 1}, Time: time.Second},
	})
	if kinds(events)[Tap] != 0 {
		t.Fatal("1s press should not be a tap")
	}
}

func TestThirdFingerIgnored(t *testing.T) {
	r := NewRecognizer(DefaultConfig())
	out := r.Feed(touchos.TouchEvent{Finger: 2, Phase: touchos.TouchBegan})
	if out != nil {
		t.Fatal("finger >1 should be ignored")
	}
}

func TestRecognizerSequentialGestures(t *testing.T) {
	r := NewRecognizer(DefaultConfig())
	s := Synth{}
	slide := s.Slide(touchos.Point{X: 1, Y: 0}, touchos.Point{X: 1, Y: 5}, 0, 500*time.Millisecond)
	tap := s.Tap(touchos.Point{X: 1, Y: 1}, time.Second)
	all := feedAll(r, append(slide, tap...))
	k := kinds(all)
	if k[SlideEnded] != 1 || k[Tap] != 1 {
		t.Fatalf("kinds = %v: recognizer state leaked between gestures", k)
	}
}
