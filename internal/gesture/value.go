package gesture

import (
	"fmt"
	"time"

	"dbtouch/internal/touchos"
)

// Kind identifies a serializable gesture description. Kinds are stable
// wire strings: they appear verbatim in the versioned protocol encoding.
type Kind string

// Gesture kinds.
const (
	// KindTap touches the object once at fractional height Frac.
	KindTap Kind = "tap"
	// KindSlide sweeps one finger between fractional heights From and To
	// over Dur.
	KindSlide Kind = "slide"
	// KindSlidePause sweeps top-to-bottom over Dur of moving time,
	// resting at PauseAt of the way for PauseDur.
	KindSlidePause Kind = "slide-pause"
	// KindBackAndForth sweeps down and back up Passes times, Dur per leg.
	KindBackAndForth Kind = "back-and-forth"
	// KindZoom pinches the object by scale Factor (> 1 grows, < 1 shrinks).
	KindZoom Kind = "zoom"
	// KindRotate applies a two-finger quarter-turn rotation.
	KindRotate Kind = "rotate"
	// KindMove repositions the object's top-left corner to (X, Y).
	KindMove Kind = "move"
)

// Gesture is a serializable description of one gesture against a data
// object: what a finger intends to do, not the digitizer samples doing
// it. Descriptions travel — over the wire to a server holding the full
// data, into a script file, across a reconnect — and are synthesized
// into touch-event streams only at the kernel that executes them
// (Synthesize). Unused parameter fields are zero and omitted from JSON;
// durations encode as int64 nanoseconds.
type Gesture struct {
	Kind Kind `json:"kind"`
	// Target is the kernel object id the gesture addresses. Wire
	// protocols address objects by name and stamp the id at the
	// executing session (the id space is per session).
	Target int `json:"target,omitempty"`
	// Dur is the gesture's moving time (per leg for KindBackAndForth).
	Dur time.Duration `json:"dur,omitempty"`
	// From and To are fractional heights of a slide (0 = top, 1 = bottom).
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`
	// Frac is the fractional height of a tap.
	Frac float64 `json:"frac,omitempty"`
	// Factor is the pinch scale of a zoom.
	Factor float64 `json:"factor,omitempty"`
	// PauseAt and PauseDur parameterize KindSlidePause.
	PauseAt  float64       `json:"pauseAt,omitempty"`
	PauseDur time.Duration `json:"pauseDur,omitempty"`
	// Passes counts KindBackAndForth round trips.
	Passes int `json:"passes,omitempty"`
	// X and Y are the KindMove destination (centimeters).
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`
}

// NewTap describes a tap on target at fractional height frac.
func NewTap(target int, frac float64) Gesture {
	return Gesture{Kind: KindTap, Target: target, Frac: frac}
}

// NewSlide describes a slide on target between fractional heights from
// and to over dur.
func NewSlide(target int, from, to float64, dur time.Duration) Gesture {
	return Gesture{Kind: KindSlide, Target: target, From: from, To: to, Dur: dur}
}

// NewSlidePause describes a top-to-bottom slide with a mid-gesture rest.
func NewSlidePause(target int, dur time.Duration, pauseAt float64, pauseDur time.Duration) Gesture {
	return Gesture{Kind: KindSlidePause, Target: target, Dur: dur, PauseAt: pauseAt, PauseDur: pauseDur}
}

// NewBackAndForth describes passes down-and-up round trips, legDur per leg.
func NewBackAndForth(target int, legDur time.Duration, passes int) Gesture {
	return Gesture{Kind: KindBackAndForth, Target: target, Dur: legDur, Passes: passes}
}

// NewZoom describes a pinch by scale factor (> 1 zooms in, < 1 out).
func NewZoom(target int, factor float64) Gesture {
	return Gesture{Kind: KindZoom, Target: target, Factor: factor}
}

// NewRotateQuarter describes a two-finger quarter-turn rotation.
func NewRotateQuarter(target int) Gesture {
	return Gesture{Kind: KindRotate, Target: target}
}

// NewMove describes repositioning the object's top-left corner to (x, y).
func NewMove(target int, x, y float64) Gesture {
	return Gesture{Kind: KindMove, Target: target, X: x, Y: y}
}

// Bounds on one description. Descriptions cross a trust boundary (the
// wire protocol performs them for unauthenticated clients) and synthesis
// allocates one event per digitizer period, so the total touch time a
// single description may demand is capped: an hour of gesturing is
// ~430k events — generous for any exploration, harmless to synthesize.
const (
	// MaxGestureDur caps a description's total touch time (all legs of a
	// back-and-forth plus any pause).
	MaxGestureDur = time.Hour
	// MaxPasses caps back-and-forth round trips.
	MaxPasses = 1000
)

// Validate checks that the description is executable: known kind, and
// parameters inside the domain the synthesizer accepts. A zoom with a
// non-positive factor is invalid (the legacy facade treated it as a
// silent no-op; as a first-class value it is a caller error).
func (g Gesture) Validate() error {
	switch g.Kind {
	case KindTap, KindSlide, KindSlidePause, KindBackAndForth, KindRotate, KindMove:
	case KindZoom:
		if g.Factor <= 0 {
			return fmt.Errorf("gesture: zoom factor %v must be positive", g.Factor)
		}
	default:
		return fmt.Errorf("gesture: unknown kind %q", g.Kind)
	}
	if g.Dur < 0 || g.PauseDur < 0 {
		return fmt.Errorf("gesture: negative duration")
	}
	if g.Dur > MaxGestureDur || g.PauseDur > MaxGestureDur {
		return fmt.Errorf("gesture: duration exceeds %v", MaxGestureDur)
	}
	if g.Kind == KindSlidePause && (g.PauseAt < 0 || g.PauseAt > 1) {
		// PauseAt scales the synthesized touch time (the pause sits at
		// PauseAt of the way through Dur), so out-of-range values would
		// defeat the duration cap above.
		return fmt.Errorf("gesture: pause position %v outside [0, 1]", g.PauseAt)
	}
	if g.Kind == KindBackAndForth {
		if g.Passes > MaxPasses {
			return fmt.Errorf("gesture: %d passes exceeds %d", g.Passes, MaxPasses)
		}
		legs := 2 * time.Duration(maxInt(g.Passes, 1))
		if g.Dur > MaxGestureDur/legs {
			return fmt.Errorf("gesture: total touch time %v exceeds %v", g.Dur*legs, MaxGestureDur)
		}
	}
	if g.Dur+g.PauseDur > MaxGestureDur {
		return fmt.Errorf("gesture: total touch time exceeds %v", MaxGestureDur)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Synthesize materializes the description into a digitizer-rate touch
// stream against an object occupying frame, beginning at start. The
// trajectory math here is the single source of truth for how high-level
// gestures become touch samples: the facade, the session layer, and the
// wire protocol all execute through it, so a description produces the
// same stream wherever it is replayed. KindMove synthesizes no events —
// it is applied directly by the executing kernel.
func (g Gesture) Synthesize(s Synth, frame touchos.Rect, start time.Duration) ([]touchos.TouchEvent, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	const inset = 0.02 // finger margin inside the frame, centimeters
	centerX := frame.Origin.X + frame.Size.W/2
	yAt := func(frac float64) float64 {
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return frame.Origin.Y + inset + frac*(frame.Size.H-2*inset)
	}
	top := touchos.Point{X: centerX, Y: frame.Origin.Y + inset}
	bottom := touchos.Point{X: centerX, Y: frame.Origin.Y + frame.Size.H - inset}
	switch g.Kind {
	case KindTap:
		return s.Tap(touchos.Point{
			X: centerX,
			Y: frame.Origin.Y + inset + g.Frac*(frame.Size.H-2*inset),
		}, start), nil
	case KindSlide:
		return s.Slide(
			touchos.Point{X: centerX, Y: yAt(g.From)},
			touchos.Point{X: centerX, Y: yAt(g.To)},
			start, g.Dur,
		), nil
	case KindSlidePause:
		return s.PauseResume(top, bottom, start, g.Dur, g.PauseAt, g.PauseDur), nil
	case KindBackAndForth:
		return s.BackAndForth(top, bottom, start, g.Dur, g.Passes), nil
	case KindZoom:
		center := frame.Center()
		spread := frame.Size.H / 3
		return s.Pinch(center, spread, spread*g.Factor, start, 300*time.Millisecond), nil
	case KindRotate:
		radius := frame.Size.W / 2
		if frame.Size.H < frame.Size.W {
			radius = frame.Size.H / 2
		}
		if radius <= 0.2 {
			radius = 0.2
		}
		return s.Rotate(frame.Center(), radius*0.9, 1.65, start, 400*time.Millisecond), nil
	case KindMove:
		return nil, nil
	default:
		return nil, fmt.Errorf("gesture: unknown kind %q", g.Kind)
	}
}
