#!/usr/bin/env bash
# bench.sh — run the kernel microbenchmarks and the end-to-end touch
# benchmarks, and emit BENCH_kernels.json at the repo root: the tracked
# perf baseline. Re-run after kernel work and commit the diff so
# regressions show up in review.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== storage span kernels (benchtime=$benchtime)" >&2
go test -run=NONE -bench='.' -benchtime="$benchtime" ./internal/storage/ | tee -a "$raw" >&2

echo "== end-to-end touch pipeline" >&2
go test -run=NONE -bench='BenchmarkTouchPipeline$|BenchmarkFig4aGestureSpeed$' -benchtime="$benchtime" . | tee -a "$raw" >&2

awk -v go_version="$(go version)" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", $1, $2)
    m = 0
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m++) line = line ", "
        line = line sprintf("\"%s\": %s", $(i + 1), $i)
    }
    benches[n++] = line "}}"
}
END {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++)
        printf "%s%s\n", benches[i], (i + 1 < n ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > BENCH_kernels.json

echo "wrote BENCH_kernels.json" >&2
