package dbtouch

import (
	"time"

	"dbtouch/internal/ftdc"
)

// FlightRecorderOptions configures StartFlightRecorder. Zero values take
// the ftdc package defaults (1s interval, 300 samples/chunk, 64 MiB
// retention).
type FlightRecorderOptions struct {
	// Dir is the capture directory; created if absent. Required.
	Dir string
	// Interval is the sampling tick.
	Interval time.Duration
	// RetainBytes bounds the capture directory; oldest files are deleted
	// first.
	RetainBytes int64
	// ChunkSamples closes a compressed chunk after this many ticks.
	ChunkSamples int
}

// FlightRecorderStats counts what a recorder has captured and trimmed.
type FlightRecorderStats = ftdc.RecorderStats

// FlightRecorder is a running always-on telemetry capture: every
// manager/scheduler/storage gauge sampled on a fixed tick into
// delta-of-delta compressed columnar chunks under a bounded disk budget.
// Decode a capture with cmd/dbtouch-ftdc.
type FlightRecorder struct {
	sampler *ftdc.Sampler
	rec     *ftdc.Recorder
}

// StartFlightRecorder begins capturing this instance's telemetry. The
// capture is instance-wide (the manager's gauges cover every session),
// regardless of which session handle starts it.
func (db *DB) StartFlightRecorder(opts FlightRecorderOptions) (*FlightRecorder, error) {
	rec, err := ftdc.NewRecorder(ftdc.Options{
		Dir:             opts.Dir,
		MaxChunkSamples: opts.ChunkSamples,
		RetainBytes:     opts.RetainBytes,
	})
	if err != nil {
		return nil, err
	}
	s := ftdc.NewSampler(rec, opts.Interval, db.manager.FTDCSample)
	s.Start()
	return &FlightRecorder{sampler: s, rec: rec}, nil
}

// Flush writes the partial chunk to disk, so the capture is current up
// to the last tick — wired to SIGHUP in dbtouch-serve for incident
// snapshots without a restart.
func (fr *FlightRecorder) Flush() error { return fr.rec.Flush() }

// Stats snapshots the recorder's own counters.
func (fr *FlightRecorder) Stats() FlightRecorderStats { return fr.rec.Stats() }

// Stop ends the capture, flushing the partial chunk.
func (fr *FlightRecorder) Stop() error {
	fr.sampler.Stop()
	return fr.rec.Close()
}
