package experiments

import (
	"fmt"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/metrics"
	"dbtouch/internal/session"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// ConcurrentSessionsResult reports one session-count data point of the
// concurrency experiment.
type ConcurrentSessionsResult struct {
	// Sessions is how many sessions ran the script.
	Sessions int
	// Touches is the total number of touches handled across sessions.
	Touches int64
	// VirtualPerSession is each session's own elapsed virtual time (every
	// session runs the identical script, so the per-session timelines are
	// identical).
	VirtualPerSession time.Duration
	// Wall is the host wall-clock time for the whole group.
	Wall time.Duration
	// AggThroughput is the aggregate gesture throughput: touches handled
	// per second of virtual session time, summed across sessions. Because
	// every session owns an independent virtual clock, this is linear in
	// the session count *by construction* — it states that sessions do
	// not interfere on the virtual-time axis (no cross-session charging),
	// not that they execute in parallel. Contention regressions show up
	// in WallThroughput and Wall instead.
	AggThroughput float64
	// WallThroughput is touches handled per second of host wall-clock
	// time for the whole group — the metric that degrades if a shared
	// lock serializes the span path (and that scales with real cores).
	WallThroughput float64
	// Streams holds each session's full result stream in session order,
	// for equivalence checks against sequential execution.
	Streams [][]core.Result
}

// concurrentScript synthesizes the standard multi-user workload: three
// slides of varying speed and range over the shared column object,
// identical for every session.
func concurrentScript() [][]touchos.TouchEvent {
	var synth gesture.Synth
	x := 3.0
	yAt := func(frac float64) float64 { return 2.02 + frac*(10.0-0.04) }
	var batches [][]touchos.TouchEvent
	cur := time.Duration(0)
	for _, leg := range []struct {
		from, to float64
		dur      time.Duration
	}{
		{0, 1, 1 * time.Second},
		{1, 0.4, 700 * time.Millisecond},
		{0.4, 0.9, 1500 * time.Millisecond},
	} {
		batches = append(batches, synth.Slide(
			touchos.Point{X: x, Y: yAt(leg.from)},
			touchos.Point{X: x, Y: yAt(leg.to)},
			cur, leg.dur,
		))
		cur += leg.dur + 2*time.Second
	}
	return batches
}

// SessionBench is a reusable fixture for the concurrency experiment: the
// manager, the table and the shared sample hierarchy are built once, so
// repeated Run calls (benchmark iterations) time only session creation
// and gesture execution, not data generation.
type SessionBench struct {
	mgr    *session.Manager
	script [][]touchos.TouchEvent
	runID  int
}

// NewSessionBench builds the fixture over one shared table of rows
// tuples.
func NewSessionBench(rows int) *SessionBench {
	mgr := session.NewManager(core.DefaultConfig())
	data := make([]int64, rows)
	for i := range data {
		data[i] = int64(i % 1009)
	}
	mx, err := storage.NewMatrix("t", storage.NewIntColumn("v", data))
	if err != nil {
		panic(err)
	}
	mgr.Catalog().Register(mx)
	return &SessionBench{mgr: mgr, script: concurrentScript()}
}

// Close tears the fixture down.
func (b *SessionBench) Close() { b.mgr.Close() }

// Run executes the standard script on n sessions — on the manager's
// bounded work-stealing scheduler when concurrent, else batch by batch
// on the calling goroutine — and evicts them afterwards, so the fixture
// can be reused.
func (b *SessionBench) Run(n int, concurrent bool) ConcurrentSessionsResult {
	b.runID++
	sessions := make([]*session.Session, n)
	streams := make([][]core.Result, n)
	for i := range sessions {
		s, err := b.mgr.Create(fmt.Sprintf("run%d-user%d", b.runID, i))
		if err != nil {
			panic(err)
		}
		obj, err := s.CreateColumnObject("t", "v", touchos.NewRect(2, 2, 2, 10))
		if err != nil {
			panic(err)
		}
		obj.SetActions(core.DefaultActions())
		i := i
		s.OnResult(func(r core.Result) { streams[i] = append(streams[i], r) })
		sessions[i] = s
	}

	start := time.Now()
	if concurrent {
		for _, s := range sessions {
			s.Start()
		}
		for _, batch := range b.script {
			for _, s := range sessions {
				if err := s.Enqueue(batch); err != nil {
					panic(err)
				}
			}
		}
		for _, s := range sessions {
			s.Drain()
		}
	} else {
		for _, s := range sessions {
			for _, batch := range b.script {
				if _, err := s.Apply(batch); err != nil {
					panic(err)
				}
			}
		}
	}
	wall := time.Since(start)

	res := ConcurrentSessionsResult{Sessions: n, Wall: wall, Streams: streams}
	for _, s := range sessions {
		res.Touches += s.Kernel().Counters().Get("touch.handled")
		res.VirtualPerSession = s.Kernel().Clock().Now()
	}
	if v := res.VirtualPerSession.Seconds(); v > 0 {
		res.AggThroughput = float64(res.Touches) / v
	}
	if w := wall.Seconds(); w > 0 {
		res.WallThroughput = float64(res.Touches) / w
	}
	for _, s := range sessions {
		b.mgr.Evict(s.ID())
	}
	return res
}

// RunConcurrentSessions executes the standard script on n concurrent
// sessions over one shared table of rows tuples and reports the group's
// aggregate numbers. Sessions share the scheduler's bounded worker pool
// but own their virtual clocks and trackers; the column data and sample
// hierarchy are shared.
func RunConcurrentSessions(rows, n int) ConcurrentSessionsResult {
	b := NewSessionBench(rows)
	defer b.Close()
	return b.Run(n, true)
}

// RunSequentialSessions runs the identical workload without the
// scheduler: every batch of every session executes on the calling
// goroutine, one session at a time — the reference for stream-equivalence
// checks.
func RunSequentialSessions(rows, n int) ConcurrentSessionsResult {
	b := NewSessionBench(rows)
	defer b.Close()
	return b.Run(n, false)
}

// ConcurrentSessions sweeps the session count over one shared table: the
// many-users workload of the ROADMAP north star (and of ICEBOAT-style
// interactive analytics deployments). The printed table shows aggregate
// touch throughput growing with the session count while each session's
// own virtual timeline stays identical — concurrency without
// interference.
func ConcurrentSessions(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"sessions", "touches-total", "virtual-per-session", "agg-touches-per-vsec", "v-speedup", "wall", "touches-per-wallsec",
	}}
	b := NewSessionBench(s.Rows)
	defer b.Close()
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		r := b.Run(n, true)
		if n == 1 {
			base = r.AggThroughput
		}
		speedup := 0.0
		if base > 0 {
			speedup = r.AggThroughput / base
		}
		t.AddRow(
			fmt.Sprint(n),
			fmt.Sprint(r.Touches),
			r.VirtualPerSession.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", r.AggThroughput),
			fmt.Sprintf("%.2fx", speedup),
			r.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", r.WallThroughput),
		)
	}
	return t
}
