package operator

import (
	"fmt"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
)

// CmpOp is a comparison operator for predicates.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// ParseCmpOp resolves SQL comparison syntax — the canonical table the
// facade, the script language and the wire protocol all share.
func ParseCmpOp(op string) (CmpOp, error) {
	switch op {
	case "=", "==":
		return Eq, nil
	case "<>", "!=":
		return Ne, nil
	case "<":
		return Lt, nil
	case "<=":
		return Le, nil
	case ">":
		return Gt, nil
	case ">=":
		return Ge, nil
	default:
		return 0, fmt.Errorf("operator: unknown comparison %q", op)
	}
}

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Apply evaluates "left op right" under Value.Compare semantics.
func (op CmpOp) Apply(left, right storage.Value) bool {
	c := left.Compare(right)
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	default:
		return false
	}
}

// Predicate is one conjunct of a WHERE restriction over a matrix column.
type Predicate struct {
	// Col is the attribute index the predicate reads.
	Col int
	Op  CmpOp
	// Operand is the constant compared against.
	Operand storage.Value
}

// String renders the predicate.
func (p Predicate) String() string {
	return fmt.Sprintf("col%d %s %s", p.Col, p.Op, p.Operand)
}

// Eval tests the predicate against tuple row of m, charging one value
// read per evaluation to the per-column tracker (trackers indexed by
// column; nil entries skip accounting).
func (p Predicate) Eval(m *storage.Matrix, row int, trackers []*iomodel.Tracker) (bool, error) {
	v, err := m.At(row, p.Col)
	if err != nil {
		return false, err
	}
	if p.Col < len(trackers) && trackers[p.Col] != nil {
		trackers[p.Col].Access(row)
	}
	return p.Op.Apply(v, p.Operand), nil
}

// rangeOp converts to the storage-layer comparison enum. The two enums
// declare the same operators in the same order (see TestRangeOpMirrors).
func (op CmpOp) rangeOp() storage.RangeOp { return storage.RangeOp(op) }

// EvalRange evaluates the predicate over a tuple span of m, appending
// qualifying row ids to out. With sel == nil the span is [lo, hi); with a
// selection vector only those rows are evaluated (conjunct refinement).
// One read per evaluated row is charged to the predicate column's
// tracker, batched through ranged accounting so the virtual cost matches
// a per-row Eval loop. It returns the refined selection and the number of
// rows evaluated.
func (p Predicate) EvalRange(m *storage.Matrix, lo, hi int, sel []int32, trackers []*iomodel.Tracker, out []int32) ([]int32, int, error) {
	var tracker *iomodel.Tracker
	if p.Col >= 0 && p.Col < len(trackers) {
		tracker = trackers[p.Col]
	}
	if lo < 0 {
		lo = 0
	}
	if n := m.NumRows(); hi > n {
		hi = n
	}
	if col, err := m.Column(p.Col); err == nil {
		if sel == nil {
			if tracker != nil {
				tracker.AccessRange(lo, hi)
			}
			return col.FilterRange(lo, hi, p.Op.rangeOp(), p.Operand, out), hi - lo, nil
		}
		chargeSelection(tracker, sel)
		return col.FilterSel(sel, p.Op.rangeOp(), p.Operand, out), len(sel), nil
	}
	// Row-major fallback: per-row boxed evaluation, span-charged.
	eval := func(row int) (bool, error) {
		v, err := m.At(row, p.Col)
		if err != nil {
			return false, err
		}
		return p.Op.Apply(v, p.Operand), nil
	}
	if sel == nil {
		if tracker != nil {
			tracker.AccessRange(lo, hi)
		}
		for row := lo; row < hi; row++ {
			ok, err := eval(row)
			if err != nil {
				return out, row - lo, err
			}
			if ok {
				out = append(out, int32(row))
			}
		}
		return out, hi - lo, nil
	}
	chargeSelection(tracker, sel)
	for _, row := range sel {
		ok, err := eval(int(row))
		if err != nil {
			return out, len(sel), err
		}
		if ok {
			out = append(out, row)
		}
	}
	return out, len(sel), nil
}

// ForEachRun invokes fn for every maximal contiguous run [lo, hi) of the
// ascending selection vector — the shared primitive behind run-batched
// charging and span dispatch over selections.
func ForEachRun(sel []int32, fn func(lo, hi int)) {
	if len(sel) == 0 {
		return
	}
	runStart, prev := sel[0], sel[0]
	for _, r := range sel[1:] {
		if r != prev+1 {
			fn(int(runStart), int(prev)+1)
			runStart = r
		}
		prev = r
	}
	fn(int(runStart), int(prev)+1)
}

// chargeSelection charges one read per selected row, batching contiguous
// runs of the (ascending) selection through ranged accounting.
func chargeSelection(tracker *iomodel.Tracker, sel []int32) {
	if tracker == nil {
		return
	}
	ForEachRun(sel, func(lo, hi int) { tracker.AccessRange(lo, hi) })
}

// ConjunctStats tracks the observed selectivity and cost of one predicate
// over a sliding window of recent touches. The adaptive optimizer
// (paper §2.9 "Optimization") reorders conjuncts as gestures wander into
// data regions with different properties, so the statistics must forget:
// a decayed counter halves the weight of history every window.
type ConjunctStats struct {
	// window is the decay period in evaluations.
	window  int
	evals   float64
	passes  float64
	samples int
}

// NewConjunctStats returns stats with the given decay window (values
// <= 0 select 64).
func NewConjunctStats(window int) *ConjunctStats {
	if window <= 0 {
		window = 64
	}
	return &ConjunctStats{window: window}
}

// Observe records one evaluation outcome.
func (s *ConjunctStats) Observe(passed bool) {
	s.evals++
	if passed {
		s.passes++
	}
	s.samples++
	if s.samples >= s.window {
		// Exponential decay: keep half the weight.
		s.evals /= 2
		s.passes /= 2
		s.samples = 0
	}
}

// Selectivity estimates the probability a tuple passes. With no
// observations it returns 0.5 (uninformative prior).
func (s *ConjunctStats) Selectivity() float64 {
	if s.evals == 0 {
		return 0.5
	}
	return s.passes / s.evals
}

// Observations reports the (decayed) evaluation weight.
func (s *ConjunctStats) Observations() float64 { return s.evals }
