package gateway

import (
	"bufio"
	"context"
	"encoding/binary"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"dbtouch/internal/protocol"
)

// maxProxyFrameBytes bounds one relayed binary stream frame — a
// corrupt length prefix must not make the proxy buffer gigabytes.
const maxProxyFrameBytes = 64 << 20

// handleStream proxies GET /stream with failover: frames are relayed
// only whole (a backend dying mid-frame tears the backend-side read,
// never the client-side stream), and when the upstream drops, the
// gateway resumes the session on a healthy backend and re-attaches —
// the client keeps one uncorrupted stream across backend deaths.
//
// The encoding negotiated on the first attach is forced on every
// reconnect, so a mid-stream failover cannot flip the client's decoder.
// As with client-side StreamResumed, frames emitted while detached are
// not replayed; what failover preserves is the session's state and the
// stream's framing.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	session := r.URL.Query().Get("session")
	if session == "" {
		http.Error(w, "session required", http.StatusBadRequest)
		return
	}
	buffer := r.URL.Query().Get("buffer")
	accept := r.Header.Get("Accept")
	if accept == "" {
		accept = protocol.NDJSONContentType
	}
	flusher, _ := w.(http.Flusher)

	started := false    // response headers sent to the client
	contentType := ""   // encoding locked in by the first attach
	needResume := false // the previous attach dropped mid-stream
	attempt := 0        // consecutive attach attempts without progress
	for {
		if r.Context().Err() != nil {
			return
		}
		b, err := g.pinned(session)
		if err != nil {
			if !started {
				http.Error(w, "gateway: no ready backend", http.StatusServiceUnavailable)
				return
			}
			if attempt >= g.opts.Retry.MaxAttempts() {
				return
			}
			g.retries.Add(1)
			time.Sleep(g.opts.Retry.Delay(attempt, 0))
			attempt++
			continue
		}
		if needResume {
			// The previous stream dropped: replay the session's log on
			// the (possibly new) backend before re-attaching, under the
			// entry lock so the replay never races an /rpc forward.
			g.resumePinned(session, b)
			needResume = false
		}
		wantAccept := accept
		if contentType != "" {
			wantAccept = contentType
		}
		up, err := g.openBackendStream(r.Context(), b, session, buffer, wantAccept)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			if b.noteFailure(g.failThreshold()) {
				g.logf("gateway: backend %s failed on stream attach, breaker open: %v", b.base, err)
			}
			if attempt >= g.opts.Retry.MaxAttempts() {
				return
			}
			needResume = true
			g.retries.Add(1)
			time.Sleep(g.opts.Retry.Delay(attempt, 0))
			attempt++
			continue
		}
		if up.StatusCode != http.StatusOK {
			// Most likely "session not found": the backend is healthy
			// but doesn't hold the session (a fresh re-pin). Resume and
			// try again; past the budget, relay the refusal.
			body, _ := io.ReadAll(io.LimitReader(up.Body, 1024))
			up.Body.Close()
			if attempt >= g.opts.Retry.MaxAttempts() {
				if !started {
					http.Error(w, strings.TrimSpace(string(body)), up.StatusCode)
				}
				return
			}
			needResume = true
			g.retries.Add(1)
			time.Sleep(g.opts.Retry.Delay(attempt, 0))
			attempt++
			continue
		}
		if !started {
			contentType = up.Header.Get("Content-Type")
			w.Header().Set("Content-Type", contentType)
			w.WriteHeader(http.StatusOK)
			if flusher != nil {
				flusher.Flush()
			}
			started = true
		}
		frames := relayFrames(w, flusher, up.Body, strings.Contains(contentType, protocol.BinaryContentType))
		up.Body.Close()
		if r.Context().Err() != nil {
			return
		}
		// The upstream dropped (backend died or the session was evicted
		// there): resume and re-attach. Forward progress resets the
		// attempt budget; attach loops that relay nothing burn it.
		if frames > 0 {
			attempt = 0
		} else {
			if attempt >= g.opts.Retry.MaxAttempts() {
				return
			}
			time.Sleep(g.opts.Retry.Delay(attempt, 0))
			attempt++
		}
		needResume = true
	}
}

// pinned returns the session's current backend, routing fresh (with a
// resume when the pin moves) if the pinned one is gone or unhealthy.
func (g *Gateway) pinned(session string) (*backend, error) {
	e := g.entry(session)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.b != nil && e.b.ready() {
		return e.b, nil
	}
	nb, err := g.route(session, nil)
	if err != nil {
		return nil, err
	}
	if e.b != nil && nb != e.b {
		g.failovers.Add(1)
		g.resumeOn(nb, session)
	}
	e.b = nb
	return nb, nil
}

// resumePinned replays the session's log on b under the entry lock.
func (g *Gateway) resumePinned(session string, b *backend) {
	e := g.entry(session)
	e.mu.Lock()
	defer e.mu.Unlock()
	g.resumeOn(b, session)
}

// openBackendStream attaches to a backend's /stream for the session.
// The request context is the client's own, so a client disconnect tears
// the upstream attach down with it; there is no read deadline because
// streams are idle-friendly by design.
func (g *Gateway) openBackendStream(ctx context.Context, b *backend, session, buffer, accept string) (*http.Response, error) {
	u := b.base + "/stream?session=" + url.QueryEscape(session)
	if buffer != "" {
		u += "&buffer=" + url.QueryEscape(buffer)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", accept)
	return g.client.Do(req)
}

// relayFrames copies upstream stream bytes to the client one complete
// frame at a time, returning how many frames it forwarded. Binary
// frames are u32 LE length-prefixed; NDJSON frames are whole lines. A
// frame torn by the upstream's death (short read) is dropped entirely —
// the client's decoder only ever sees frame boundaries, which is what
// makes reconnect-and-continue byte-safe.
func relayFrames(w io.Writer, flusher http.Flusher, src io.Reader, isBinary bool) int {
	frames := 0
	br := bufio.NewReader(src)
	if isBinary {
		var hdr [4]byte
		var payload []byte
		for {
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return frames
			}
			n := binary.LittleEndian.Uint32(hdr[:])
			if n == 0 || n > maxProxyFrameBytes {
				return frames // corrupt prefix: stop relaying this attach
			}
			if cap(payload) < int(n) {
				payload = make([]byte, n)
			}
			payload = payload[:n]
			if _, err := io.ReadFull(br, payload); err != nil {
				return frames // torn mid-frame: drop the partial frame
			}
			if _, err := w.Write(hdr[:]); err != nil {
				return frames
			}
			if _, err := w.Write(payload); err != nil {
				return frames
			}
			if flusher != nil {
				flusher.Flush()
			}
			frames++
		}
	}
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return frames // partial line (no trailing \n) is dropped
		}
		if _, err := w.Write(line); err != nil {
			return frames
		}
		if flusher != nil {
			flusher.Flush()
		}
		frames++
	}
}
