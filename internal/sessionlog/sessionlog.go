// Package sessionlog persists exploration sessions as append-only
// request logs — the durability half of ROADMAP item 1 (persistence,
// reconnect, shard-by-session). Every wire request a session executes is
// framed (length prefix + CRC32C + sequence number) and appended to a
// per-session log file; when the tail grows past a threshold the log is
// compacted into a checkpoint file (compressed full history plus
// metadata: virtual clock, bound objects, pinned epochs). Because the
// wire protocol already replays byte-identically to direct calls (the
// PR 3 record/replay contract), checkpoint + tail replayed through
// session.Manager.HandleRequest reconstructs the session bit-exactly —
// an evicted or crashed session resumes exactly where the finger left
// off.
//
// The on-disk contract mirrors internal/ftdc: writes are unbuffered
// (one write syscall per frame, so a kill -9 loses at most the frame
// being written), readers tolerate a torn tail (a partial final frame
// decodes to the complete prefix, never to partial state), and anything
// worse — a corrupt frame with data after it, a checkpoint that fails
// its own checksums — is the typed ErrTornLog, never a silent partial
// replay. A store-wide retention budget drops the oldest parked
// sessions' files first, like the flight recorder's rotation; live
// sessions and table logs are never dropped.
package sessionlog

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Sentinel errors callers test with errors.Is.
var (
	// ErrTornLog reports a log or checkpoint damaged beyond the tolerated
	// torn tail: a frame failed its CRC with data after it, a sequence
	// gap, or a checkpoint that does not decode. Resume refuses to build
	// partial-batch state from such a log.
	ErrTornLog = errors.New("sessionlog: torn log")
	// ErrNoLog reports a session with no persisted log or checkpoint.
	ErrNoLog = errors.New("sessionlog: no log for session")
)

// Frame layout: u32 LE payload length | u32 LE CRC32C over (seq ‖
// payload) | u64 LE sequence number | payload. Sequence numbers are
// contiguous per log and survive compaction (the checkpoint records the
// last sequence it covers), which is what makes the
// crash-between-checkpoint-and-truncate window safe: duplicate frames
// left in the log are recognized and skipped on load.
const frameHeader = 16

// MaxFrameBytes bounds one frame's payload; a length prefix beyond it
// is corruption, not a frame.
const MaxFrameBytes = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded log entry: a sequence number and the raw request
// payload (a protocol.Request JSON encoding, for session and table logs
// both).
type Frame struct {
	Seq     uint64
	Payload []byte
}

// AppendFrame appends the framed encoding of (seq, payload) to dst and
// returns the extended slice. Exported so fault-injection tests can
// craft torn and corrupt logs byte by byte.
func AppendFrame(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	crc := crc32.Update(0, castagnoli, hdr[8:])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseFrames decodes every complete frame in data. tail is the number
// of trailing bytes belonging to a torn final frame (0 when the log
// ends cleanly); tearing is tolerated only at the very end — a frame
// that fails mid-log, or a length prefix beyond MaxFrameBytes, returns
// ErrTornLog.
func parseFrames(data []byte) (frames []Frame, tail int, err error) {
	pos := 0
	for {
		rem := len(data) - pos
		if rem == 0 {
			return frames, 0, nil
		}
		if rem < frameHeader {
			return frames, rem, nil
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		if n > MaxFrameBytes {
			return frames, 0, fmt.Errorf("%w: frame length %d at offset %d exceeds %d",
				ErrTornLog, n, pos, MaxFrameBytes)
		}
		if rem < frameHeader+n {
			return frames, rem, nil
		}
		want := binary.LittleEndian.Uint32(data[pos+4:])
		body := data[pos+8 : pos+frameHeader+n]
		if crc32.Checksum(body, castagnoli) != want {
			if pos+frameHeader+n == len(data) {
				// A final frame that fails its CRC is a torn write (the
				// header landed, part of the payload did not): tolerate it
				// like a short tail.
				return frames, rem, nil
			}
			return frames, 0, fmt.Errorf("%w: CRC mismatch in frame at offset %d", ErrTornLog, pos)
		}
		frames = append(frames, Frame{
			Seq:     binary.LittleEndian.Uint64(body),
			Payload: body[8:],
		})
		pos += frameHeader + n
	}
}

// CheckpointMeta is the header of a checkpoint file: which prefix of
// the request history the checkpoint covers, plus advisory state an
// operator (or a future migration path) can inspect without replaying —
// the session's virtual clock, its wire-name→object-id bindings, and
// the live-table epochs it had pinned at checkpoint time.
type CheckpointMeta struct {
	Session string `json:"session,omitempty"`
	Table   string `json:"table,omitempty"`
	// LastSeq is the sequence number of the last frame the checkpoint
	// covers; Frames is how many frames it holds.
	LastSeq uint64 `json:"lastSeq"`
	Frames  int    `json:"frames"`
	// VClockNS is the session's virtual clock at checkpoint time.
	VClockNS int64 `json:"vclockNs,omitempty"`
	// Objects maps wire object names to kernel ids.
	Objects map[string]int `json:"objects,omitempty"`
	// Epochs maps live-table names to the snapshot epoch the session had
	// pinned.
	Epochs map[string]uint64 `json:"epochs,omitempty"`
	// WrittenUnixNS is the wall-clock write time.
	WrittenUnixNS int64 `json:"writtenUnixNs,omitempty"`
}

// Checkpoint file layout: 8-byte magic, one frame (seq 0) holding the
// JSON meta, then the flate-compressed concatenation of the covered
// frames. Checkpoints are written to a temp file and renamed into
// place, so unlike logs they are never legitimately torn: any decode
// failure is ErrTornLog.
var ckptMagic = [8]byte{'d', 'b', 't', 's', 'l', 'c', 'k', '1'}

// encodeCheckpoint renders meta + frames as a checkpoint file image.
func encodeCheckpoint(meta CheckpointMeta, frames []Frame) ([]byte, error) {
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	buf := append([]byte(nil), ckptMagic[:]...)
	buf = AppendFrame(buf, 0, metaJSON)
	var raw []byte
	for _, fr := range frames {
		raw = AppendFrame(raw, fr.Seq, fr.Payload)
	}
	var comp bytes.Buffer
	zw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return append(buf, comp.Bytes()...), nil
}

// decodeCheckpoint parses a checkpoint file image. Every failure mode
// is ErrTornLog: checkpoints are atomic (temp file + rename), so a bad
// one is corruption, never a tolerated partial write.
func decodeCheckpoint(data []byte) (CheckpointMeta, []Frame, error) {
	meta, rest, err := decodeCheckpointHeader(data)
	if err != nil {
		return meta, nil, err
	}
	zr := flate.NewReader(bytes.NewReader(rest))
	raw, err := io.ReadAll(zr)
	if err != nil {
		return meta, nil, fmt.Errorf("%w: checkpoint body: %v", ErrTornLog, err)
	}
	frames, tail, err := parseFrames(raw)
	if err != nil {
		return meta, nil, fmt.Errorf("checkpoint: %w", err)
	}
	if tail != 0 {
		return meta, nil, fmt.Errorf("%w: checkpoint body ends mid-frame", ErrTornLog)
	}
	if len(frames) != meta.Frames {
		return meta, nil, fmt.Errorf("%w: checkpoint holds %d frames, header says %d",
			ErrTornLog, len(frames), meta.Frames)
	}
	for i, fr := range frames {
		if i > 0 && fr.Seq != frames[i-1].Seq+1 {
			return meta, nil, fmt.Errorf("%w: checkpoint sequence gap at frame %d", ErrTornLog, i)
		}
	}
	if len(frames) > 0 && frames[len(frames)-1].Seq != meta.LastSeq {
		return meta, nil, fmt.Errorf("%w: checkpoint ends at seq %d, header says %d",
			ErrTornLog, frames[len(frames)-1].Seq, meta.LastSeq)
	}
	return meta, frames, nil
}

// decodeCheckpointHeader parses just the magic and meta frame — enough
// to learn LastSeq without decompressing the history (the appender's
// reopen path uses this).
func decodeCheckpointHeader(data []byte) (CheckpointMeta, []byte, error) {
	var meta CheckpointMeta
	if len(data) < len(ckptMagic) || !bytes.Equal(data[:len(ckptMagic)], ckptMagic[:]) {
		return meta, nil, fmt.Errorf("%w: bad checkpoint magic", ErrTornLog)
	}
	body := data[len(ckptMagic):]
	if len(body) < frameHeader {
		return meta, nil, fmt.Errorf("%w: checkpoint truncated before meta", ErrTornLog)
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n > MaxFrameBytes || len(body) < frameHeader+n {
		return meta, nil, fmt.Errorf("%w: checkpoint meta truncated", ErrTornLog)
	}
	want := binary.LittleEndian.Uint32(body[4:])
	frame := body[8 : frameHeader+n]
	if crc32.Checksum(frame, castagnoli) != want {
		return meta, nil, fmt.Errorf("%w: checkpoint meta CRC mismatch", ErrTornLog)
	}
	if err := json.Unmarshal(frame[8:], &meta); err != nil {
		return meta, nil, fmt.Errorf("%w: checkpoint meta: %v", ErrTornLog, err)
	}
	return meta, body[frameHeader+n:], nil
}

// readCheckpointFile loads and decodes a checkpoint file. A missing
// file is (zero, nil, false, nil).
func readCheckpointFile(path string) (CheckpointMeta, []Frame, bool, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return CheckpointMeta{}, nil, false, nil
	}
	if err != nil {
		return CheckpointMeta{}, nil, false, err
	}
	meta, frames, err := decodeCheckpoint(data)
	if err != nil {
		return meta, nil, true, fmt.Errorf("%s: %w", path, err)
	}
	return meta, frames, true, nil
}
