#!/usr/bin/env bash
# bench.sh — run the kernel microbenchmarks and the end-to-end touch
# benchmarks, and emit BENCH_kernels.json at the repo root: the tracked
# perf baseline. Re-run after kernel work and commit the diff so
# regressions show up in review.
#
# Usage: scripts/bench.sh [benchtime]   (default 1s)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-1s}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "== host memory bandwidth (STREAM triad + read sweeps)" >&2
stream_out="$(go run scripts/stream.go)"
echo "$stream_out" >&2
triad_mbps="$(echo "$stream_out" | awk '/^triad_mbps/ {print $2}')"
read_mbps="$(echo "$stream_out" | awk '/^read_mbps/ {print $2}')"
read_llc_mbps="$(echo "$stream_out" | awk '/^read_llc_mbps/ {print $2}')"
cpu_features="$(echo "$stream_out" | awk '/^features/ {print $2}')"

echo "== storage span kernels (benchtime=$benchtime)" >&2
go test -run=NONE -bench='.' -benchtime="$benchtime" ./internal/storage/ | tee -a "$raw" >&2

echo "== end-to-end touch pipeline" >&2
go test -run=NONE -bench='BenchmarkTouchPipeline$|BenchmarkFig4aGestureSpeed$' -benchtime="$benchtime" . | tee -a "$raw" >&2

echo "== live ingestion under exploration" >&2
go test -run=NONE -bench='BenchmarkAppendWhileTouching$' -benchtime="$benchtime" ./internal/session/ | tee -a "$raw" >&2

echo "== wire serialization (binary vs JSON result frames)" >&2
go test -run=NONE -bench='BenchmarkResultFrame(Encode|Decode)(Binary|JSON)$' -benchtime="$benchtime" ./internal/protocol/ | tee -a "$raw" >&2

awk -v go_version="$(go version)" \
    -v goamd64="$(go env GOAMD64)" \
    -v cpu_features="${cpu_features:-}" \
    -v triad_mbps="${triad_mbps:-0}" \
    -v read_mbps="${read_mbps:-0}" \
    -v read_llc_mbps="${read_llc_mbps:-0}" '
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    line = sprintf("    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", $1, $2)
    m = 0
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m++) line = line ", "
        line = line sprintf("\"%s\": %s", $(i + 1), $i)
    }
    benches[n++] = line "}}"
}
END {
    printf "{\n"
    printf "  \"go\": \"%s\",\n", go_version
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"goamd64\": \"%s\",\n", goamd64
    printf "  \"cpu_features\": \"%s\",\n", cpu_features
    printf "  \"stream_triad_mbps\": %s,\n", triad_mbps
    printf "  \"stream_read_mbps\": %s,\n", read_mbps
    printf "  \"stream_read_llc_mbps\": %s,\n", read_llc_mbps
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++)
        printf "%s%s\n", benches[i], (i + 1 < n ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > BENCH_kernels.json

echo "wrote BENCH_kernels.json" >&2
