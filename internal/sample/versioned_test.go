package sample

import (
	"fmt"
	"math"
	"testing"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

// The versioned-chain contract: a Shared served incrementally from the
// chain must be indistinguishable from one built from scratch over the
// same frozen prefix — same level structure, and bit-identical
// SpanEntries everywhere (exact int sums, left-to-right float sums, zone
// maps). These tests drive the chain through odd-sized append epochs and
// differential every epoch against BuildShared.

const vtBlock = 8 // small zone-map blocks so spans cross many boundaries

func vtParams() iomodel.Params {
	return iomodel.Params{BlockValues: vtBlock, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond}
}

// spanPoints picks span endpoints that straddle zone-map block edges,
// level boundaries, and the extremes for a level of length n.
func spanPoints(n int) []int {
	pts := []int{0, 1, vtBlock - 1, vtBlock, vtBlock + 1, 3 * vtBlock, n / 2, n - vtBlock - 1, n - 1, n}
	out := pts[:0]
	for _, p := range pts {
		if p >= 0 && p <= n {
			out = append(out, p)
		}
	}
	return out
}

// diffShared asserts got (from the chain) and want (frozen BuildShared)
// agree on level structure and on SpanEntries over every tested span of
// every level.
func diffShared(t *testing.T, label string, got, want *Shared) {
	t.Helper()
	if got.NumLevels() != want.NumLevels() {
		t.Fatalf("%s: chain has %d levels, frozen build %d", label, got.NumLevels(), want.NumLevels())
	}
	clock := vclock.New()
	gh := got.Attach(clock, vtParams(), nil)
	wh := want.Attach(clock, vtParams(), nil)
	for lvl := 0; lvl < got.NumLevels(); lvl++ {
		gl, _ := gh.Level(lvl)
		wl, _ := wh.Level(lvl)
		if gl.Col.Len() != wl.Col.Len() || gl.Stride != wl.Stride {
			t.Fatalf("%s level %d: chain len/stride %d/%d, frozen %d/%d",
				label, lvl, gl.Col.Len(), gl.Stride, wl.Col.Len(), wl.Stride)
		}
		pts := spanPoints(gl.Col.Len())
		for _, from := range pts {
			for _, to := range pts {
				if from >= to {
					continue
				}
				gs, gn, gmn, gmx, gerr := gh.SpanEntries(from, to, lvl)
				ws, wn, wmn, wmx, werr := wh.SpanEntries(from, to, lvl)
				if (gerr == nil) != (werr == nil) {
					t.Fatalf("%s level %d [%d,%d): err %v vs %v", label, lvl, from, to, gerr, werr)
				}
				if math.Float64bits(gs) != math.Float64bits(ws) || gn != wn ||
					math.Float64bits(gmn) != math.Float64bits(wmn) || math.Float64bits(gmx) != math.Float64bits(wmx) {
					t.Fatalf("%s level %d [%d,%d): chain (%v,%d,%v,%v), frozen (%v,%d,%v,%v)",
						label, lvl, from, to, gs, gn, gmn, gmx, ws, wn, wmn, wmx)
				}
			}
		}
	}
}

// batchSizes are deliberately odd and ragged so level lengths, block
// boundaries, and the minLen level-spawn threshold are all crossed
// mid-batch.
var batchSizes = []int{130, 1, 7, 255, 64, 3, 511, 129, 1000, 17}

func TestVersionedMatchesFrozenBuildInt(t *testing.T) {
	// Values beyond 2^53 verify the exact-int64 prefix path survives
	// incremental extension.
	big := int64(1) << 60
	var vals []int64
	full := storage.NewEmptyColumn("v", storage.Int64)
	v := NewVersioned(4, vtBlock)
	for bi, bs := range batchSizes {
		for i := 0; i < bs; i++ {
			x := int64(len(vals))
			if x%97 == 0 {
				x = big + x
			}
			vals = append(vals, x)
			full.Append(storage.IntValue(x))
		}
		base, err := full.Prefix(len(vals))
		if err != nil {
			t.Fatalf("Prefix: %v", err)
		}
		got, err := v.ForSnapshot(0, base)
		if err != nil {
			t.Fatalf("ForSnapshot: %v", err)
		}
		want, err := BuildShared(base, 4)
		if err != nil {
			t.Fatalf("BuildShared: %v", err)
		}
		diffShared(t, fmt.Sprintf("int batch %d (rows %d)", bi, len(vals)), got, want)
		// Level 0 must be the snapshot's own column pointer: the fused
		// slide path relies on that identity.
		if got.levels[0].col != base {
			t.Fatalf("batch %d: chain level 0 is not the snapshot column", bi)
		}
	}
}

func TestVersionedMatchesFrozenBuildFloat(t *testing.T) {
	// Floats with wildly mixed magnitudes make the prefix sum order
	// observable: only a strictly left-to-right extension matches the
	// frozen single-pass build bit for bit.
	full := storage.NewEmptyColumn("v", storage.Float64)
	n := 0
	v := NewVersioned(3, vtBlock)
	for bi, bs := range batchSizes {
		for i := 0; i < bs; i++ {
			x := float64(n) * 1.37
			if n%13 == 0 {
				x *= 1e15
			}
			if n%7 == 0 {
				x = -x
			}
			full.Append(storage.FloatValue(x))
			n++
		}
		base, err := full.Prefix(n)
		if err != nil {
			t.Fatalf("Prefix: %v", err)
		}
		got, err := v.ForSnapshot(0, base)
		if err != nil {
			t.Fatalf("ForSnapshot: %v", err)
		}
		want, err := BuildShared(base, 3)
		if err != nil {
			t.Fatalf("BuildShared: %v", err)
		}
		diffShared(t, fmt.Sprintf("float batch %d (rows %d)", bi, n), got, want)
	}
}

func TestVersionedMatchesFrozenBuildString(t *testing.T) {
	full := storage.NewEmptyColumn("v", storage.String)
	n := 0
	v := NewVersioned(2, vtBlock)
	for bi, bs := range batchSizes[:6] {
		for i := 0; i < bs; i++ {
			full.Append(storage.StringValue(fmt.Sprintf("key%d", n%23)))
			n++
		}
		base, err := full.Prefix(n)
		if err != nil {
			t.Fatalf("Prefix: %v", err)
		}
		got, err := v.ForSnapshot(0, base)
		if err != nil {
			t.Fatalf("ForSnapshot: %v", err)
		}
		want, err := BuildShared(base, 2)
		if err != nil {
			t.Fatalf("BuildShared: %v", err)
		}
		diffShared(t, fmt.Sprintf("string batch %d (rows %d)", bi, n), got, want)
	}
}

// TestVersionedCacheIdentity: the same (gen, rows) version resolves to
// the same *Shared (sessions pinning one snapshot share statistics), and
// prune drops what the keep-set omits without harming correctness.
func TestVersionedCacheIdentity(t *testing.T) {
	vals := make([]int64, 300)
	for i := range vals {
		vals[i] = int64(i)
	}
	full := storage.NewIntColumn("v", vals)
	v := NewVersioned(2, vtBlock)
	base, _ := full.Prefix(200)
	s1, err := v.ForSnapshot(0, base)
	if err != nil {
		t.Fatalf("ForSnapshot: %v", err)
	}
	s2, err := v.ForSnapshot(0, base)
	if err != nil {
		t.Fatalf("ForSnapshot: %v", err)
	}
	if s1 != s2 {
		t.Fatal("same version returned distinct Shareds")
	}
	base2, _ := full.Prefix(300)
	if _, err := v.ForSnapshot(0, base2); err != nil {
		t.Fatalf("ForSnapshot: %v", err)
	}
	if v.cachedVersions() != 2 {
		t.Fatalf("cached %d versions, want 2", v.cachedVersions())
	}
	v.prune(map[verKey]bool{{gen: 0, rows: 300}: true})
	if v.cachedVersions() != 1 {
		t.Fatalf("cached %d versions after prune, want 1", v.cachedVersions())
	}
	// The pruned version rebuilds on demand, correctly.
	s3, err := v.ForSnapshot(0, base)
	if err != nil {
		t.Fatalf("ForSnapshot after prune: %v", err)
	}
	want, _ := BuildShared(base, 2)
	diffShared(t, "post-prune rebuild", s3, want)
}

// TestVersionedGenerationChange: a compaction bumps the generation and
// rebases positions — the chain must restart its tails for the new gen
// and serve older-gen pins via one-off frozen builds, both correct.
func TestVersionedGenerationChange(t *testing.T) {
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = int64(i * 3)
	}
	full := storage.NewIntColumn("v", vals)
	v := NewVersioned(2, vtBlock)
	oldBase, _ := full.Prefix(400)
	if _, err := v.ForSnapshot(0, oldBase); err != nil {
		t.Fatalf("ForSnapshot gen 0: %v", err)
	}
	// Compaction: survivors are rows 200.. of the old array, rebased to 0.
	surv := make([]int64, 300)
	copy(surv, vals[200:])
	compacted := storage.NewIntColumn("v", surv)
	nb, _ := compacted.Prefix(300)
	got, err := v.ForSnapshot(1, nb)
	if err != nil {
		t.Fatalf("ForSnapshot gen 1: %v", err)
	}
	want, _ := BuildShared(nb, 2)
	diffShared(t, "post-compaction gen 1", got, want)
	// A session still pinned to the pre-compaction snapshot gets correct
	// stats through the rebuild path.
	gotOld, err := v.ForSnapshot(0, oldBase)
	if err != nil {
		t.Fatalf("ForSnapshot old gen after compaction: %v", err)
	}
	wantOld, _ := BuildShared(oldBase, 2)
	diffShared(t, "stale-gen pin", gotOld, wantOld)
}
