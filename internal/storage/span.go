package storage

import "math"

// Span kernels: typed range operators over a column's native backing
// slices. They are the storage half of span-at-a-time slide execution —
// a slide gesture semantically covers a contiguous tuple range, so the
// hot path reads that range as one unit instead of round-tripping every
// cell through Value boxing. All kernels clamp their range to the column
// and iterate in ascending position order.
//
// Result contract against a scalar loop over the same positions:
// min/max are identical on any data; integer-backed columns (int, bool,
// string codes) accumulate sums in int64, which is exact and therefore
// bit-identical to a scalar float loop whenever that loop is itself exact
// (every partial sum representable in a float64 — all data the
// equivalence suites run); float64 columns keep a single accumulator in
// strict left-to-right order so float sums share the scalar path's
// addition order bit for bit.
//
// The inner loops are written for the Go compiler's strengths (see
// ARCHITECTURE.md "Kernel layer"): one slice expression hoists the bounds
// check out of the loop, integer min/max compile to conditional moves,
// multi-accumulator unrolling breaks the add dependency chain, and the
// filter kernels classify each element with branch-free mask arithmetic
// instead of a data-dependent branch.

// clampRange clips [lo, hi) to [0, Len()).
func (c *Column) clampRange(lo, hi int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if n := c.Len(); hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// sumInt64Kernel is the dispatched int64 sum: the SIMD kernel when the
// build+host provides one and the span is long enough to amortize the
// vector setup, else the scalar reference. Both orders are bit-identical
// because wrapping int64 addition is associative.
func sumInt64Kernel(v []int64) int64 {
	if simdSum && len(v) >= simdMinSpan {
		return simdSumInt64(v)
	}
	return sumInt64(v)
}

// simdMinSpan is the span length below which kernels skip the SIMD path:
// shorter spans are dominated by broadcast/reduce setup and the scalar
// loop wins.
const simdMinSpan = 16

// sumInt64 sums an int64 slice with four accumulators, breaking the
// loop-carried dependency chain so independent adds overlap in the
// pipeline.
func sumInt64(v []int64) int64 {
	var s0, s1, s2, s3 int64
	for len(v) >= 4 {
		s0 += v[0]
		s1 += v[1]
		s2 += v[2]
		s3 += v[3]
		v = v[4:]
	}
	for _, x := range v {
		s0 += x
	}
	return s0 + s1 + s2 + s3
}

// sumBytes sums a byte slice (bool storage: 0/1 per element) with four
// widened accumulators.
func sumBytes(v []byte) int64 {
	var s0, s1, s2, s3 int64
	for len(v) >= 4 {
		s0 += int64(v[0])
		s1 += int64(v[1])
		s2 += int64(v[2])
		s3 += int64(v[3])
		v = v[4:]
	}
	for _, x := range v {
		s0 += int64(x)
	}
	return s0 + s1 + s2 + s3
}

// sumCodes sums an int32 slice widened to int64 with four accumulators.
func sumCodes(v []int32) int64 {
	var s0, s1, s2, s3 int64
	for len(v) >= 4 {
		s0 += int64(v[0])
		s1 += int64(v[1])
		s2 += int64(v[2])
		s3 += int64(v[3])
		v = v[4:]
	}
	for _, x := range v {
		s0 += int64(x)
	}
	return s0 + s1 + s2 + s3
}

// SumRangeInt64 sums values [lo, hi) of an integer-backed column exactly
// in int64 arithmetic (bool cells count 0/1, string cells their
// dictionary code; overflow wraps like any int64 addition). ok reports
// whether the column is integer-backed; float columns return ok == false
// and must use SumRange.
func (c *Column) SumRangeInt64(lo, hi int) (sum int64, n int, ok bool) {
	lo, hi = c.clampRange(lo, hi)
	c.countSpan(lo, hi)
	switch c.typ {
	case Int64:
		return sumInt64Kernel(c.ints[lo:hi]), hi - lo, true
	case Bool:
		return sumBytes(c.bools[lo:hi]), hi - lo, true
	case String:
		return sumCodes(c.codes[lo:hi]), hi - lo, true
	}
	return 0, 0, false
}

// SumRange sums the float coercion of values [lo, hi) and reports the
// count, without boxing. String cells coerce to their dictionary code
// (matching Column.Float). Integer-backed columns accumulate in int64
// (exact); float columns accumulate strictly left to right.
func (c *Column) SumRange(lo, hi int) (sum float64, n int) {
	lo, hi = c.clampRange(lo, hi)
	if c.typ == Float64 {
		c.countSpan(lo, hi)
		for _, v := range c.flts[lo:hi] {
			sum += v
		}
		return sum, hi - lo
	}
	isum, n, ok := c.SumRangeInt64(lo, hi)
	if !ok {
		return 0, 0
	}
	return float64(isum), n
}

// PrefixInts fills dst — which must have length Len()+1 — with exclusive
// integer prefix sums: dst[i] is the exact int64 sum of values [0, i)
// (bool cells 0/1, string cells their dictionary code). It reports false
// without writing for float columns; callers keep a float64 prefix for
// those. This is the build kernel for exact span statistics over integer
// data (sample.spanStats).
func (c *Column) PrefixInts(dst []int64) bool {
	if len(dst) != c.Len()+1 {
		return false
	}
	dst[0] = 0
	var acc int64
	switch c.typ {
	case Int64:
		for i, v := range c.ints {
			acc += v
			dst[i+1] = acc
		}
	case Bool:
		for i, v := range c.bools {
			acc += int64(v)
			dst[i+1] = acc
		}
	case String:
		for i, v := range c.codes {
			acc += int64(v)
			dst[i+1] = acc
		}
	default:
		return false
	}
	return true
}

// MinMaxRange reports the minimum and maximum float coercion over
// [lo, hi) and the count. Empty ranges report (+Inf, -Inf, 0); NaN values
// are skipped, matching a scalar `if v < min` loop. Integer-backed
// columns compare natively — no per-element float conversion — with
// branch-free (conditional-move) inner loops; the single conversion
// happens once at the end.
func (c *Column) MinMaxRange(lo, hi int) (mn, mx float64, n int) {
	lo, hi = c.clampRange(lo, hi)
	if hi == lo {
		return math.Inf(1), math.Inf(-1), 0
	}
	c.countSpan(lo, hi)
	switch c.typ {
	case Int64:
		if simdMinMax && hi-lo >= simdMinSpan {
			lov, hiv := simdMinMaxInt64(c.ints[lo:hi])
			return float64(lov), float64(hiv), hi - lo
		}
		lov, hiv := int64(math.MaxInt64), int64(math.MinInt64)
		for _, v := range c.ints[lo:hi] {
			lov = min(lov, v)
			hiv = max(hiv, v)
		}
		return float64(lov), float64(hiv), hi - lo
	case Float64:
		if simdMinMax && hi-lo >= simdMinSpan {
			mn, mx = simdMinMaxFloat64(c.flts[lo:hi])
			return mn, mx, hi - lo
		}
		mn, mx = math.Inf(1), math.Inf(-1)
		for _, v := range c.flts[lo:hi] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return mn, mx, hi - lo
	case Bool:
		lov, hiv := byte(1), byte(0)
		for _, v := range c.bools[lo:hi] {
			lov = min(lov, v)
			hiv = max(hiv, v)
		}
		return float64(lov), float64(hiv), hi - lo
	case String:
		lov, hiv := int32(math.MaxInt32), int32(math.MinInt32)
		for _, v := range c.codes[lo:hi] {
			lov = min(lov, v)
			hiv = max(hiv, v)
		}
		return float64(lov), float64(hiv), hi - lo
	}
	return math.Inf(1), math.Inf(-1), 0
}

// CountRange reports how many stored values fall in [lo, hi) after
// clamping.
func (c *Column) CountRange(lo, hi int) int {
	lo, hi = c.clampRange(lo, hi)
	return hi - lo
}

// AddRangeTo feeds the float coercion of values [lo, hi) in ascending
// order into add — the per-value span path for order-sensitive consumers
// (Welford variance) that still avoids Value boxing and per-call type
// switches.
func (c *Column) AddRangeTo(lo, hi int, add func(float64)) int {
	lo, hi = c.clampRange(lo, hi)
	c.countSpan(lo, hi)
	switch c.typ {
	case Int64:
		for _, v := range c.ints[lo:hi] {
			add(float64(v))
		}
	case Float64:
		for _, v := range c.flts[lo:hi] {
			add(v)
		}
	case Bool:
		for _, v := range c.bools[lo:hi] {
			add(float64(v))
		}
	case String:
		for _, v := range c.codes[lo:hi] {
			add(float64(v))
		}
	}
	return hi - lo
}

// RangeOp is a comparison operator for FilterRange, mirroring
// operator.CmpOp (which converts to it) so the storage layer needs no
// operator import.
type RangeOp uint8

// Filter comparison operators.
const (
	RangeEq RangeOp = iota
	RangeNe
	RangeLt
	RangeLe
	RangeGt
	RangeGe
)

// applyCmp interprets a three-way comparison result under op.
func (op RangeOp) applyCmp(c int) bool {
	switch op {
	case RangeEq:
		return c == 0
	case RangeNe:
		return c != 0
	case RangeLt:
		return c < 0
	case RangeLe:
		return c <= 0
	case RangeGt:
		return c > 0
	case RangeGe:
		return c >= 0
	default:
		return false
	}
}

// wants decomposes op into pass masks over the three-way float comparison
// outcome, hoisting the operator dispatch out of the inner loops: an
// element passes iff lt·wLt | gt·wGt | eqish·wEq, where eqish means
// neither ordered test held. This reproduces Value.Compare's numeric
// semantics exactly — NaN fails both ordered tests and therefore counts
// as "equal-ish", passing Eq/Le/Ge, the way Compare's default branch
// does.
func (op RangeOp) wants() (wLt, wGt, wEq int) {
	switch op {
	case RangeEq:
		return 0, 0, 1
	case RangeNe:
		return 1, 1, 0
	case RangeLt:
		return 1, 0, 0
	case RangeLe:
		return 1, 0, 1
	case RangeGt:
		return 0, 1, 0
	case RangeGe:
		return 0, 1, 1
	default:
		return 0, 0, 0
	}
}

// b2i converts a comparison outcome to 0/1 without a branch (the compiler
// lowers the inlined form to SETcc).
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// passFloat reports (as 0/1) whether `a op b` holds under the
// pre-decomposed wants masks — the branch-free predicate evaluated once
// per element by the float-column filter kernels.
func passFloat(a, b float64, wLt, wGt, wEq int) int {
	lt := b2i(a < b)
	gt := b2i(a > b)
	return lt&wLt | gt&wGt | (1^(lt|gt))&wEq
}

// intPred is an integer-interval predicate exactly equivalent to a float
// comparison over an int64 column: pass ⇔ (lo <= v && v <= hi) ^ neg.
// The int64→float64 conversion is monotone (non-strictly), so the pass
// set of `float64(v) op b` is always an interval of int64 (or its
// complement, for Ne); lowering the comparison to integer bounds removes
// the per-element CVTSI2SD and float compare from the inner loops while
// reproducing Value.Compare's float semantics bit for bit — including
// values beyond 2^53, where the conversion rounds.
type intPred struct {
	lo, hi int64
	// neg is 0, or 1 to complement the interval (RangeNe).
	neg int
}

// test reports (as 0/1) whether v passes — two integer compares, no
// branches.
func (p intPred) test(v int64) int {
	return (b2i(v >= p.lo) & b2i(v <= p.hi)) ^ p.neg
}

// maxIntWhere returns the largest int64 satisfying pred, which must be
// downward closed (pred(v) ⇒ pred(w) for all w < v); ok is false when no
// value satisfies it. Binary search in the order-preserving unsigned
// domain: ~64 float compares once per kernel call.
func maxIntWhere(pred func(int64) bool) (t int64, ok bool) {
	lo, hi := int64(math.MinInt64), int64(math.MaxInt64)
	if !pred(lo) {
		return 0, false
	}
	if pred(hi) {
		return hi, true
	}
	// Invariant: pred(lo) && !pred(hi).
	for {
		ulo, uhi := uint64(lo)^(1<<63), uint64(hi)^(1<<63)
		if uhi-ulo <= 1 {
			return lo, true
		}
		mid := int64((ulo + (uhi-ulo)/2) ^ (1 << 63))
		if pred(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
}

// intPredFor lowers `float64(v) op b` to an integer predicate, with
// constant outcomes reported separately (none/all) so inner loops can
// skip the test — or the whole scan — entirely. NaN operands follow
// Value.Compare's default branch: every value is "equal-ish", so Eq, Le
// and Ge pass everything and Lt, Gt, Ne pass nothing.
func intPredFor(op RangeOp, b float64) (p intPred, none, all bool) {
	// tLt: largest v with float64(v) < b; tLe: largest v with
	// !(float64(v) > b) — both pass sets are downward closed.
	tLt, okLt := maxIntWhere(func(v int64) bool { return float64(v) < b })
	tLe, okLe := maxIntWhere(func(v int64) bool { return !(float64(v) > b) })
	const minI, maxI = int64(math.MinInt64), int64(math.MaxInt64)
	// The always-false predicate keeps test() correct even for callers
	// that only consult the test and skip the none flag.
	never := intPred{lo: 0, hi: -1}
	interval := func(lo, hi int64) (intPred, bool, bool) {
		if lo > hi {
			return never, true, false
		}
		return intPred{lo: lo, hi: hi}, false, lo == minI && hi == maxI
	}
	switch op {
	case RangeLt:
		if !okLt {
			return never, true, false
		}
		return interval(minI, tLt)
	case RangeLe:
		if !okLe {
			return never, true, false
		}
		return interval(minI, tLe)
	case RangeGt:
		if !okLe {
			return intPred{lo: minI, hi: maxI}, false, true
		}
		if tLe == maxI {
			return never, true, false
		}
		return interval(tLe+1, maxI)
	case RangeGe:
		if !okLt {
			return intPred{lo: minI, hi: maxI}, false, true
		}
		if tLt == maxI {
			return never, true, false
		}
		return interval(tLt+1, maxI)
	case RangeEq, RangeNe:
		lo := minI
		if okLt {
			if tLt == maxI {
				lo = 0
				tLe = -1 // force the empty interval below
			} else {
				lo = tLt + 1
			}
		}
		hi := tLe
		if !okLe {
			lo, hi = 0, -1
		}
		p, none, all := interval(lo, hi)
		if op == RangeNe {
			// Complement: constant outcomes swap, a genuine interval
			// negates. The constant cases rebuild p so it stays usable
			// by callers that only consult the test.
			switch {
			case none:
				return intPred{lo: minI, hi: maxI}, false, true
			case all:
				return never, true, false
			default:
				p.neg = 1
				return p, false, false
			}
		}
		return p, none, all
	default:
		return never, true, false
	}
}

// selGrow extends sel with n writable scratch slots and returns the
// (possibly reallocated) slice plus the scratch window. The filter
// kernels write candidates unconditionally into the window and advance
// the cursor by the 0/1 pass mask, so qualifying positions compact to the
// front without a data-dependent branch.
func selGrow(sel []int32, n int) ([]int32, []int32) {
	need := len(sel) + n
	if cap(sel) < need {
		grown := make([]int32, len(sel), need)
		copy(grown, sel)
		sel = grown
	}
	return sel, sel[len(sel):need]
}

// FilterRange appends to sel the positions in [lo, hi) whose value
// satisfies `value op operand` under Value.Compare semantics, and returns
// the extended selection vector. Numeric and mixed comparisons coerce
// both sides to float64 exactly as Value.Compare does; string columns
// compared against a string operand compare lexicographically, with the
// per-distinct-code outcome memoized so the scan never re-compares a
// repeated string. The inner loops are branch-free: every candidate
// position is written, and the output cursor advances only on a pass.
func (c *Column) FilterRange(lo, hi int, op RangeOp, operand Value, sel []int32) []int32 {
	lo, hi = c.clampRange(lo, hi)
	if hi == lo {
		return sel
	}
	c.countSpan(lo, hi)
	if c.typ == String {
		// String and numeric operands both go through the memoized
		// per-code outcome table (numeric operands coerce each distinct
		// string once, as Value.Compare parses the string side).
		pass := c.passByCode(op, operand)
		sel, buf := selGrow(sel, hi-lo)
		j := 0
		for i, code := range c.codes[lo:hi] {
			buf[j] = int32(lo + i)
			j += b2i(pass[code])
		}
		return sel[:len(sel)+j]
	}
	b := operand.AsFloat()
	wLt, wGt, wEq := op.wants()
	sel, buf := selGrow(sel, hi-lo)
	j := 0
	switch c.typ {
	case Int64:
		p, none, all := intPredFor(op, b)
		switch {
		case none:
		case all:
			for i := lo; i < hi; i++ {
				buf[j] = int32(i)
				j++
			}
		default:
			if simdCompress && hi-lo >= simdMinSpan {
				j = simdCompressInt64(c.ints[lo:hi], p, lo, buf)
				break
			}
			for i, v := range c.ints[lo:hi] {
				buf[j] = int32(lo + i)
				j += p.test(v)
			}
		}
	case Float64:
		if simdCompress && hi-lo >= simdMinSpan {
			j = simdCompressFloat64(c.flts[lo:hi], b, wLt, wGt, wEq, lo, buf)
			break
		}
		for i, v := range c.flts[lo:hi] {
			buf[j] = int32(lo + i)
			j += passFloat(v, b, wLt, wGt, wEq)
		}
	case Bool:
		var tab [2]int
		tab[0] = passFloat(0, b, wLt, wGt, wEq)
		tab[1] = passFloat(1, b, wLt, wGt, wEq)
		for i, v := range c.bools[lo:hi] {
			buf[j] = int32(lo + i)
			j += tab[v&1]
		}
	}
	return sel[:len(sel)+j]
}

// FilterSel appends to out the positions from sel whose value satisfies
// `value op operand` — the conjunct-refinement kernel (evaluate the next
// WHERE conjunct only on survivors of the previous ones). Same branch-free
// compaction as FilterRange.
func (c *Column) FilterSel(sel []int32, op RangeOp, operand Value, out []int32) []int32 {
	n := c.Len()
	if len(sel) == 0 {
		return out
	}
	c.countSel(len(sel))
	if c.typ == String {
		pass := c.passByCode(op, operand)
		out, buf := selGrow(out, len(sel))
		j := 0
		for _, p := range sel {
			if p < 0 || int(p) >= n {
				continue
			}
			buf[j] = p
			j += b2i(pass[c.codes[p]])
		}
		return out[:len(out)+j]
	}
	b := operand.AsFloat()
	wLt, wGt, wEq := op.wants()
	out, buf := selGrow(out, len(sel))
	j := 0
	switch c.typ {
	case Int64:
		ip, none, _ := intPredFor(op, b)
		if none {
			return out
		}
		for _, p := range sel {
			if p < 0 || int(p) >= n {
				continue
			}
			buf[j] = p
			j += ip.test(c.ints[p])
		}
	case Float64:
		for _, p := range sel {
			if p < 0 || int(p) >= n {
				continue
			}
			buf[j] = p
			j += passFloat(c.flts[p], b, wLt, wGt, wEq)
		}
	case Bool:
		var tab [2]int
		tab[0] = passFloat(0, b, wLt, wGt, wEq)
		tab[1] = passFloat(1, b, wLt, wGt, wEq)
		for _, p := range sel {
			if p < 0 || int(p) >= n {
				continue
			}
			buf[j] = p
			j += tab[c.bools[p]&1]
		}
	}
	return out[:len(out)+j]
}

// passKey identifies one memoized predicate-outcome table.
type passKey struct {
	op      RangeOp
	operand Value
}

// maxPassTables caps the per-column predicate memo. Columns are shared
// and live as long as the process, so without a cap every distinct
// (op, operand) a long-running session — or a stream of remote clients —
// ever filters with would pin an O(|dict|) table forever. At the cap the
// least-recently-used table is evicted: tables are pure memos and rebuild
// on demand, so eviction never changes results, and LRU keeps the hot
// conjuncts of active gestures cached through storms of one-off
// predicates.
const maxPassTables = 64

// passByCode evaluates the predicate once per distinct dictionary code of
// a string column, so the range scan is a table lookup per cell. Tables
// are memoized per (op, operand) on the column — WHERE conjuncts repeat
// across the touches of a gesture, and recomputing O(|dict|) outcomes per
// touch would dwarf the span scan itself. A table built before new
// strings were interned is extended lazily for the missing codes.
//
// The cache is mutex-guarded because sessions share loaded columns; the
// returned slice is safe to read outside the lock (entries are written
// once, before the slice is published, and extension builds on top of the
// published prefix without rewriting it).
func (c *Column) passByCode(op RangeOp, operand Value) []bool {
	n := c.dict.Len()
	if operand.Type == Float64 && math.IsNaN(operand.F) {
		// NaN never equals itself as a map key; keep it out of the cache.
		return c.extendPass(op, operand, nil, n)
	}
	key := passKey{op: op, operand: operand}
	c.passMu.Lock()
	defer c.passMu.Unlock()
	if pass, ok := c.passCache[key]; ok && len(pass) >= n {
		c.touchPass(key)
		return pass
	}
	pass := c.extendPass(op, operand, c.passCache[key], n)
	if c.passCache == nil {
		c.passCache = make(map[passKey][]bool)
		c.passUse = make(map[passKey]uint64)
	}
	if _, exists := c.passCache[key]; !exists && len(c.passCache) >= maxPassTables {
		var victim passKey
		oldest := uint64(math.MaxUint64)
		for k := range c.passCache {
			if u := c.passUse[k]; u < oldest {
				oldest, victim = u, k
			}
		}
		delete(c.passCache, victim)
		delete(c.passUse, victim)
	}
	c.passCache[key] = pass
	c.touchPass(key)
	return pass
}

// touchPass stamps key as most recently used. Callers hold passMu.
func (c *Column) touchPass(key passKey) {
	c.passTick++
	c.passUse[key] = c.passTick
}

// extendPass appends outcomes for dictionary codes [len(pass), n).
func (c *Column) extendPass(op RangeOp, operand Value, pass []bool, n int) []bool {
	for code := len(pass); code < n; code++ {
		v := StringValue(c.dict.Lookup(int32(code)))
		pass = append(pass, op.applyCmp(v.Compare(operand)))
	}
	return pass
}
