package storage

import (
	"fmt"
	"sync"
)

// Column is a dense, fixed-width array of values of one type — the basic
// dbTouch data object backing store. Int and float columns store native
// slices; bool columns store bytes; string columns store dictionary codes.
//
// Sharing contract: loaded columns are immutable and may be read by any
// number of concurrent exploration sessions without locking — every read
// kernel (Value/Float, the span kernels, Gather/Strided/Slice) only looks
// at the backing slices. The lazily memoized predicate tables are the one
// piece of internal mutable state and are mutex-guarded. Mutators (Append,
// Set, Rename) are reserved for single-owner use before a column is
// shared: loaders, builders, and layout conversions.
type Column struct {
	name  string
	typ   Type
	ints  []int64
	flts  []float64
	bools []byte
	codes []int32
	dict  *Dictionary

	// passMu guards passCache: concurrent sessions filtering the same
	// shared string column memoize into the same table map.
	passMu sync.Mutex
	// passCache memoizes FilterRange/FilterSel predicate-outcome tables
	// per (op, operand); see passByCode.
	passCache map[passKey][]bool
	// passUse/passTick order passCache entries by recency for LRU
	// eviction at maxPassTables.
	passUse  map[passKey]uint64
	passTick uint64
}

// NewIntColumn builds an INT column over vals (the slice is adopted, not
// copied).
func NewIntColumn(name string, vals []int64) *Column {
	return &Column{name: name, typ: Int64, ints: vals}
}

// NewFloatColumn builds a FLOAT column over vals (adopted, not copied).
func NewFloatColumn(name string, vals []float64) *Column {
	return &Column{name: name, typ: Float64, flts: vals}
}

// NewBoolColumn builds a BOOL column over vals.
func NewBoolColumn(name string, vals []bool) *Column {
	b := make([]byte, len(vals))
	for i, v := range vals {
		if v {
			b[i] = 1
		}
	}
	return &Column{name: name, typ: Bool, bools: b}
}

// NewStringColumn builds a dictionary-encoded STRING column over vals.
func NewStringColumn(name string, vals []string) *Column {
	d := NewDictionary()
	codes := make([]int32, len(vals))
	for i, v := range vals {
		codes[i] = d.Intern(v)
	}
	return &Column{name: name, typ: String, codes: codes, dict: d}
}

// NewEmptyColumn builds a zero-length column of the given type, ready for
// Append.
func NewEmptyColumn(name string, typ Type) *Column {
	c := &Column{name: name, typ: typ}
	if typ == String {
		c.dict = NewDictionary()
	}
	return c
}

// Name reports the column name.
func (c *Column) Name() string { return c.name }

// Rename sets the column name (used when projecting a column out of a
// table into its own object).
func (c *Column) Rename(name string) { c.name = name }

// Type reports the column type.
func (c *Column) Type() Type { return c.typ }

// Len reports the number of values.
func (c *Column) Len() int {
	switch c.typ {
	case Int64:
		return len(c.ints)
	case Float64:
		return len(c.flts)
	case Bool:
		return len(c.bools)
	case String:
		return len(c.codes)
	default:
		return 0
	}
}

// Dict exposes the dictionary of a STRING column (nil otherwise).
func (c *Column) Dict() *Dictionary { return c.dict }

// Value returns the cell at i. It panics if i is out of range, matching
// slice semantics.
func (c *Column) Value(i int) Value {
	switch c.typ {
	case Int64:
		return IntValue(c.ints[i])
	case Float64:
		return FloatValue(c.flts[i])
	case Bool:
		return BoolValue(c.bools[i] != 0)
	case String:
		return StringValue(c.dict.Lookup(c.codes[i]))
	default:
		return Value{}
	}
}

// Float returns the cell at i coerced to float64 — the hot path for
// aggregation, avoiding Value boxing.
func (c *Column) Float(i int) float64 {
	switch c.typ {
	case Int64:
		return float64(c.ints[i])
	case Float64:
		return c.flts[i]
	case Bool:
		return float64(c.bools[i])
	case String:
		return float64(c.codes[i])
	default:
		return 0
	}
}

// Int returns the cell at i as int64 (float cells truncate).
func (c *Column) Int(i int) int64 {
	switch c.typ {
	case Int64:
		return c.ints[i]
	case Float64:
		return int64(c.flts[i])
	case Bool:
		return int64(c.bools[i])
	case String:
		return int64(c.codes[i])
	default:
		return 0
	}
}

// Append adds v to the end of the column, coercing to the column type.
func (c *Column) Append(v Value) {
	switch c.typ {
	case Int64:
		if v.Type == Float64 {
			c.ints = append(c.ints, int64(v.F))
		} else {
			c.ints = append(c.ints, v.I)
		}
	case Float64:
		c.flts = append(c.flts, v.AsFloat())
	case Bool:
		if v.B {
			c.bools = append(c.bools, 1)
		} else {
			c.bools = append(c.bools, 0)
		}
	case String:
		c.codes = append(c.codes, c.dict.Intern(v.S))
	}
}

// Set overwrites the cell at i with v, coercing to the column type.
func (c *Column) Set(i int, v Value) {
	switch c.typ {
	case Int64:
		if v.Type == Float64 {
			c.ints[i] = int64(v.F)
		} else {
			c.ints[i] = v.I
		}
	case Float64:
		c.flts[i] = v.AsFloat()
	case Bool:
		if v.B {
			c.bools[i] = 1
		} else {
			c.bools[i] = 0
		}
	case String:
		c.codes[i] = c.dict.Intern(v.S)
	}
}

// Prefix returns a read-only view of the first n values sharing c's
// backing arrays. The view's slices are capped (three-index sliced) so a
// later Append on c that grows the backing array in place can never leak
// past-the-end values into the view — this is the copy-on-tail snapshot
// primitive used by live tables: the appender only ever writes at indexes
// ≥ n, so published prefixes stay immutable without copying.
func (c *Column) Prefix(n int) (*Column, error) {
	if n < 0 || n > c.Len() {
		return nil, fmt.Errorf("storage: prefix %d out of range for column %q of length %d", n, c.name, c.Len())
	}
	s := &Column{name: c.name, typ: c.typ, dict: c.dict}
	switch c.typ {
	case Int64:
		s.ints = c.ints[:n:n]
	case Float64:
		s.flts = c.flts[:n:n]
	case Bool:
		s.bools = c.bools[:n:n]
	case String:
		s.codes = c.codes[:n:n]
	}
	return s, nil
}

// EmptyLike returns a zero-length column with c's name and type. String
// columns share c's dictionary so codes appended via AppendAt stay valid.
func (c *Column) EmptyLike() *Column {
	out := &Column{name: c.name, typ: c.typ, dict: c.dict}
	return out
}

// AppendAt appends src's cell at i to c without Value boxing — the hot
// path for extending sample-level tails and for retention compaction.
// The columns must have the same type; string columns must share a
// dictionary (codes are copied verbatim).
func (c *Column) AppendAt(src *Column, i int) {
	switch c.typ {
	case Int64:
		c.ints = append(c.ints, src.ints[i])
	case Float64:
		c.flts = append(c.flts, src.flts[i])
	case Bool:
		c.bools = append(c.bools, src.bools[i])
	case String:
		c.codes = append(c.codes, src.codes[i])
	}
}

// Slice returns a new column sharing c's backing arrays over [lo, hi).
func (c *Column) Slice(lo, hi int) (*Column, error) {
	if lo < 0 || hi > c.Len() || lo > hi {
		return nil, fmt.Errorf("storage: slice [%d,%d) out of range for column %q of length %d", lo, hi, c.name, c.Len())
	}
	s := &Column{name: c.name, typ: c.typ, dict: c.dict}
	switch c.typ {
	case Int64:
		s.ints = c.ints[lo:hi]
	case Float64:
		s.flts = c.flts[lo:hi]
	case Bool:
		s.bools = c.bools[lo:hi]
	case String:
		s.codes = c.codes[lo:hi]
	}
	return s, nil
}

// Gather builds a new column from the cells of c at the given positions,
// copying typed backing slices directly (no Value boxing). Positions out
// of range are skipped. String columns share c's dictionary: the gathered
// codes stay valid and no re-interning pass is needed.
func (c *Column) Gather(positions []int) *Column {
	out := &Column{name: c.name, typ: c.typ}
	n := c.Len()
	switch c.typ {
	case Int64:
		out.ints = make([]int64, 0, len(positions))
		for _, p := range positions {
			if p >= 0 && p < n {
				out.ints = append(out.ints, c.ints[p])
			}
		}
	case Float64:
		out.flts = make([]float64, 0, len(positions))
		for _, p := range positions {
			if p >= 0 && p < n {
				out.flts = append(out.flts, c.flts[p])
			}
		}
	case Bool:
		out.bools = make([]byte, 0, len(positions))
		for _, p := range positions {
			if p >= 0 && p < n {
				out.bools = append(out.bools, c.bools[p])
			}
		}
	case String:
		out.dict = c.dict
		out.codes = make([]int32, 0, len(positions))
		for _, p := range positions {
			if p >= 0 && p < n {
				out.codes = append(out.codes, c.codes[p])
			}
		}
	}
	return out
}

// Strided builds a new column containing every stride-th value of c
// starting at offset — the building block for sample hierarchies.
func (c *Column) Strided(offset, stride int) *Column {
	out := NewEmptyColumn(c.name, c.typ)
	if stride <= 0 {
		return out
	}
	n := c.Len()
	if offset < 0 {
		offset = 0
	}
	switch c.typ {
	case Int64:
		vals := make([]int64, 0, (n-offset+stride-1)/stride)
		for i := offset; i < n; i += stride {
			vals = append(vals, c.ints[i])
		}
		out.ints = vals
	case Float64:
		vals := make([]float64, 0, (n-offset+stride-1)/stride)
		for i := offset; i < n; i += stride {
			vals = append(vals, c.flts[i])
		}
		out.flts = vals
	case Bool:
		vals := make([]byte, 0, (n-offset+stride-1)/stride)
		for i := offset; i < n; i += stride {
			vals = append(vals, c.bools[i])
		}
		out.bools = vals
	case String:
		// Share the dictionary: strided codes stay valid and the copy
		// skips per-cell lookup+re-intern round trips.
		out.dict = c.dict
		vals := make([]int32, 0, (n-offset+stride-1)/stride)
		for i := offset; i < n; i += stride {
			vals = append(vals, c.codes[i])
		}
		out.codes = vals
	}
	return out
}

// Clone returns a deep copy of the column.
func (c *Column) Clone() *Column {
	out := &Column{name: c.name, typ: c.typ}
	switch c.typ {
	case Int64:
		out.ints = append([]int64(nil), c.ints...)
	case Float64:
		out.flts = append([]float64(nil), c.flts...)
	case Bool:
		out.bools = append([]byte(nil), c.bools...)
	case String:
		out.codes = append([]int32(nil), c.codes...)
		out.dict = c.dict.Clone()
	}
	return out
}

// Ints exposes the backing int64 slice of an INT column (nil otherwise).
// Callers must not resize it.
func (c *Column) Ints() []int64 { return c.ints }

// Floats exposes the backing float64 slice of a FLOAT column.
func (c *Column) Floats() []float64 { return c.flts }
