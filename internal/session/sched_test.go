package session

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/touchos"
)

// The scheduler suite pins the three contracts the work-stealing pool
// adds on top of the session layer: fairness (a gesture-spamming
// session cannot delay an idle session's touch beyond the budget),
// admission control (past the caps, Enqueue/Create return ErrOverloaded
// instead of queueing unboundedly), and boundedness (goroutines are
// O(workers), never O(sessions)). The fairness and admission tests are
// deterministic: a single-worker pool processes deques in FIFO order,
// and a gate session whose OnResult callback blocks on a channel wedges
// the worker while the test stages the queues.

// tapAt synthesizes one tap batch on the standard object frame at the
// given virtual time.
func tapAt(at time.Duration) []touchos.TouchEvent {
	var synth gesture.Synth
	return synth.Tap(touchos.Point{X: 3, Y: 5}, at)
}

// gateManager builds a single-worker manager with a gate session whose
// first result blocks until release is closed — enqueue the returned
// batch to wedge the pool's only worker.
func gateManager(t *testing.T, rows int) (m *Manager, gate *Session, release chan struct{}) {
	t.Helper()
	m = testManager(t, rows)
	if err := m.SetWorkers(1); err != nil {
		t.Fatal(err)
	}
	gate = newColumnSession(t, m, "gate")
	release = make(chan struct{})
	blocked := false
	gate.OnResult(func(core.Result) {
		if !blocked {
			blocked = true
			<-release
		}
	})
	return m, gate, release
}

// TestFairnessBudgetPreemptsSpammer: a hostile session with an
// unbounded appetite (40 queued tap batches) must not delay an idle
// session's single touch beyond the fairness budget. Deterministic
// setup: one worker, the gate wedges it while both queues are staged,
// and the victim's OnResult callback — running on the only worker —
// snapshots exactly how many hostile batches executed first.
func TestFairnessBudgetPreemptsSpammer(t *testing.T) {
	m, gate, release := gateManager(t, 50_000)
	defer m.Close()

	perBatch := len(tapAt(0))
	if perBatch == 0 {
		t.Fatal("tap synthesized no events")
	}
	// Budget = exactly two hostile batches per dispatch.
	m.SetFairnessBudget(2 * perBatch)

	hostile := newColumnSession(t, m, "hostile")
	victim := newColumnSession(t, m, "victim")
	const hostileBatches = 40

	hostileRan := -1
	victim.OnResult(func(core.Result) {
		if hostileRan < 0 {
			hostileRan = hostileBatches - hostile.QueueDepth()
		}
	})

	gate.Start()
	hostile.Start()
	victim.Start()
	if err := gate.Enqueue(tapAt(0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hostileBatches; i++ {
		if err := hostile.Enqueue(tapAt(time.Duration(i) * 50 * time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if err := victim.Enqueue(tapAt(0)); err != nil {
		t.Fatal(err)
	}
	close(release)
	victim.Drain()
	hostile.Drain()
	gate.Drain()

	if hostileRan < 0 {
		t.Fatal("victim tap produced no result")
	}
	// The victim waited for at most one budget's worth of hostile work
	// (two batches), not the whole 40-batch backlog.
	if hostileRan != 2 {
		t.Fatalf("victim ran after %d hostile batches, want exactly the 2-batch budget", hostileRan)
	}

	// Scheduling must never leak into virtual time: the victim's touch
	// carries the same virtual timestamp as the identical tap on an
	// undisturbed synchronous session.
	ref := newColumnSession(t, m, "ref")
	refResults, err := ref.Apply(tapAt(0))
	if err != nil {
		t.Fatal(err)
	}
	vres := victim.Results()
	if len(vres) == 0 || len(refResults) == 0 {
		t.Fatal("no results to compare")
	}
	if vres[0].Time != refResults[0].Time {
		t.Fatalf("victim result at virtual %v, isolated reference at %v — scheduling leaked into the virtual clock",
			vres[0].Time, refResults[0].Time)
	}
}

// TestEnqueueOverloadedSessionCap: the per-session queue cap rejects
// with ErrOverloaded instead of queueing or blocking.
func TestEnqueueOverloadedSessionCap(t *testing.T) {
	m, gate, release := gateManager(t, 10_000)
	defer m.Close()
	m.SetSessionQueueCap(2)

	b := newColumnSession(t, m, "b")
	gate.Start()
	b.Start()
	if err := gate.Enqueue(tapAt(0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := b.Enqueue(tapAt(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	err := b.Enqueue(tapAt(3 * time.Second))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third enqueue past cap: err = %v, want ErrOverloaded", err)
	}
	close(release)
	b.Drain()
	// Backpressure cleared after the backlog drains.
	if err := b.Enqueue(tapAt(4 * time.Second)); err != nil {
		t.Fatalf("enqueue after drain: %v", err)
	}
	b.Drain()
}

// TestOverloadedGlobalCap: the manager-wide backlog cap (the
// QueuedBatches gauge in Stats) rejects both new batches and new
// sessions with ErrOverloaded while the backlog is at the cap.
func TestOverloadedGlobalCap(t *testing.T) {
	m, gate, release := gateManager(t, 10_000)
	defer m.Close()
	m.SetMaxQueuedBatches(3)

	b := newColumnSession(t, m, "b")
	gate.Start()
	b.Start()
	// gate's wedged batch stays in-flight and counts against the cap.
	if err := gate.Enqueue(tapAt(0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := b.Enqueue(tapAt(time.Duration(i) * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Enqueue(tapAt(3 * time.Second)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("enqueue past global cap: err = %v, want ErrOverloaded", err)
	}
	if st := m.Stats(); st.QueuedBatches != 3 || st.MaxQueuedBatches != 3 {
		t.Fatalf("stats gauge = %d/%d, want 3/3", st.QueuedBatches, st.MaxQueuedBatches)
	}
	// A drowning manager does not admit new users either.
	if _, err := m.Create("late"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("create under backlog cap: err = %v, want ErrOverloaded", err)
	}
	close(release)
	gate.Drain()
	b.Drain()
	if _, err := m.Create("late"); err != nil {
		t.Fatalf("create after drain: %v", err)
	}
}

// TestCreateAdmissionCap: the hard live-session ceiling rejects Create
// with ErrOverloaded (no silent LRU eviction), and admits again after
// an eviction frees a slot.
func TestCreateAdmissionCap(t *testing.T) {
	m := testManager(t, 10_000)
	defer m.Close()
	m.SetAdmissionCap(2)
	if _, err := m.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("b"); err != nil {
		t.Fatal(err)
	}
	_, err := m.Create("c")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("create past admission cap: err = %v, want ErrOverloaded", err)
	}
	if m.Len() != 2 {
		t.Fatalf("admission cap evicted: %d live, want 2", m.Len())
	}
	m.Evict("a")
	if _, err := m.Create("c"); err != nil {
		t.Fatalf("create after eviction: %v", err)
	}
}

// TestIdleSessionsHoldNoGoroutines: parked sessions cost zero
// goroutines — many started-but-idle sessions leave the process at
// baseline + the bounded pool.
func TestIdleSessionsHoldNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	m := testManager(t, 50_000)
	defer m.Close()
	const idle = 500
	for i := 0; i < idle; i++ {
		s, err := m.Create(fmt.Sprintf("idle%d", i))
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
	}
	active := newColumnSession(t, m, "active")
	active.Start()
	if err := active.Enqueue(slideEvents(active, time.Second)); err != nil {
		t.Fatal(err)
	}
	active.Drain()
	if len(active.Results()) == 0 {
		t.Fatal("active session produced no results")
	}
	limit := base + runtime.GOMAXPROCS(0) + 2
	if g := runtime.NumGoroutine(); g > limit {
		t.Fatalf("%d goroutines for %d idle sessions; want O(workers) ≤ %d", g, idle, limit)
	}
	st := m.Stats()
	if st.Workers == 0 || st.Parked != idle+1 {
		t.Fatalf("stats: workers=%d parked=%d, want workers>0 parked=%d", st.Workers, st.Parked, idle+1)
	}
	if st.Dispatches == 0 {
		t.Fatal("stats: no dispatches recorded")
	}
}

// BenchmarkIdleSessions is the ISSUE 4 acceptance benchmark: 10k
// registered, started, mostly-idle sessions plus 8 active ones on the
// bounded pool. The goroutines metric stays O(workers) — not
// O(sessions) — and touches/wallsec for the active few stays flat
// because parked sessions are never visited by the scheduler.
func BenchmarkIdleSessions(b *testing.B) {
	const idle = 10_000
	const active = 8
	m := testManager(b, 100_000)
	defer m.Close()
	for i := 0; i < idle; i++ {
		s, err := m.Create(fmt.Sprintf("idle%d", i))
		if err != nil {
			b.Fatal(err)
		}
		s.Start()
	}
	acts := make([]*Session, active)
	for i := range acts {
		acts[i] = newColumnSession(b, m, fmt.Sprintf("active%d", i))
		acts[i].Start()
	}
	var touches int64
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range acts {
			if err := s.Enqueue(slideEvents(s, time.Second)); err != nil {
				b.Fatal(err)
			}
		}
		for _, s := range acts {
			s.Drain()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(runtime.NumGoroutine()), "goroutines")
	for _, s := range acts {
		touches += s.Kernel().Counters().Get("touch.handled")
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		b.ReportMetric(float64(touches)/wall, "touches/wallsec")
	}
	st := m.Stats()
	b.ReportMetric(float64(st.Steals), "steals")
	if g := runtime.NumGoroutine(); g > idle/10 {
		b.Fatalf("goroutine count %d is O(sessions), want O(workers)", g)
	}
}
