package protocol

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"dbtouch/internal/core"
)

// ErrOverloaded is the client-side face of server admission control: a
// request answered 503/overloaded wraps it, so callers back off with
// errors.Is(err, protocol.ErrOverloaded) and retry after the hinted
// delay.
var ErrOverloaded = errors.New("protocol: server overloaded")

// maxRequestBytes bounds one wire request; gestures and specs are tiny.
const maxRequestBytes = 1 << 20

// maxResponseBytes bounds one decoded response on the client side.
// Responses carry whole result batches (a long gesture is tens of
// thousands of frames), so the bound is generous — it exists to keep a
// broken server from exhausting client memory, not to size payloads.
const maxResponseBytes = 64 << 20

// maxStreamBuffer caps the client-requested /stream ring size: the
// buffer is allocated up front, so an unbounded query parameter would
// let one request exhaust server memory.
const maxStreamBuffer = 1 << 16

// maxBinaryBatch caps how many queued results one binary frame coalesces:
// the first result is taken blocking, then TryNext drains whatever has
// already accumulated, so a fast producer amortizes the frame header over
// thousands of values while an idle session still flushes every result
// immediately.
const maxBinaryBatch = 4096

// Router handles decoded protocol requests. session.Manager implements
// it; tests may substitute fakes.
type Router interface {
	HandleRequest(Request) Response
}

// Subscriber is the optional streaming side of a Router: it opens a
// bounded result stream on a session. session.Manager implements it.
type Subscriber interface {
	SubscribeSession(id string, buffer int) (*core.ResultStream, error)
}

// NewHTTPHandler serves the wire protocol over HTTP:
//
//	POST /rpc                            one Request in, one Response out
//	GET  /stream?session=ID[&buffer=N]   results as NDJSON frames, flushed
//	                                     as the session emits them, until
//	                                     the client disconnects
//
// The stream endpoint requires the router to implement Subscriber.
func NewHTTPHandler(r Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/rpc", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(req.Body, maxRequestBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		decoded, err := DecodeRequest(body)
		var resp Response
		if err != nil {
			resp = Errorf("%v", err)
		} else {
			resp = r.HandleRequest(decoded)
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := EncodeResponse(resp)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if resp.Overloaded {
			// Admission control speaks HTTP: 503 plus a Retry-After hint,
			// with the full response envelope still in the body.
			ra := resp.RetryAfter
			if ra <= 0 {
				ra = DefaultRetryAfterSec
			}
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write(data)
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, req *http.Request) {
		sub, ok := r.(Subscriber)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusNotImplemented)
			return
		}
		id := req.URL.Query().Get("session")
		buffer, _ := strconv.Atoi(req.URL.Query().Get("buffer"))
		if buffer > maxStreamBuffer {
			buffer = maxStreamBuffer
		}
		stream, err := sub.SubscribeSession(id, buffer)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		defer stream.Close()
		flusher, canFlush := w.(http.Flusher)
		// Content negotiation through the version gate: a v2 client asks
		// for the binary columnar encoding via Accept; everyone else gets
		// the v1 NDJSON frames unchanged. The response Content-Type tells
		// the client which decoder won.
		binary := strings.Contains(req.Header.Get("Accept"), BinaryContentType)
		if binary {
			w.Header().Set("Content-Type", BinaryContentType)
		} else {
			w.Header().Set("Content-Type", NDJSONContentType)
		}
		if canFlush {
			flusher.Flush()
		}
		// Unblock Next when the client goes away.
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-req.Context().Done():
				stream.Close()
			case <-done:
			}
		}()
		if binary {
			var buf []byte
			batch := make([]core.Result, 0, 64)
			for {
				result, ok := stream.Next()
				if !ok {
					return
				}
				// Coalesce whatever the session has already queued into one
				// columnar frame; an idle stream still ships frame-per-result.
				batch = append(batch[:0], result)
				for len(batch) < maxBinaryBatch {
					r, ok := stream.TryNext()
					if !ok {
						break
					}
					batch = append(batch, r)
				}
				buf = AppendBinaryResults(buf[:0], id, 0, batch)
				if _, err := w.Write(buf); err != nil {
					return
				}
				if canFlush {
					flusher.Flush()
				}
			}
		}
		enc := json.NewEncoder(w)
		for {
			result, ok := stream.Next()
			if !ok {
				return
			}
			if err := enc.Encode(FrameResult(result)); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
	})
	return mux
}

// Client speaks the wire protocol to a dbtouch-serve endpoint — the thin
// half of the remote deployment: it holds no data, only descriptions of
// intent and the frames that come back.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// AutoResume makes the client transparent to session loss: when a
	// session-scoped request fails with Gone (the session was evicted or
	// the server restarted), the client sends one OpResume and retries
	// the request once. Requires a server running with session
	// durability; without one the original Gone failure surfaces.
	AutoResume bool
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Do sends one request and decodes the server's response envelope. A
// transport-level failure returns an error; a server-side failure comes
// back inside the Response (OK=false) wrapped as an error too. With
// AutoResume set, a Gone failure on a session-scoped request triggers
// one OpResume + retry before surfacing.
func (c *Client) Do(req Request) (Response, error) {
	resp, err := c.do(req)
	if err != nil && resp.Gone && c.AutoResume && req.Session != "" && resumableOp(req.Op) {
		if _, rerr := c.Resume(req.Session); rerr != nil {
			return resp, err // surface the original failure
		}
		return c.do(req)
	}
	return resp, err
}

// resumableOp reports whether a Gone failure on op is worth a resume +
// retry: session-scoped work, not lifecycle or server-scoped ops.
func resumableOp(op string) bool {
	switch op {
	case OpCreate, OpConfigure, OpPerform, OpIdle, OpPin:
		return true
	}
	return false
}

func (c *Client) do(req Request) (Response, error) {
	data, err := EncodeRequest(req)
	if err != nil {
		return Response{}, err
	}
	httpResp, err := c.httpClient().Post(c.Base+"/rpc", "application/json", bytes.NewReader(data))
	if err != nil {
		return Response{}, err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, maxResponseBytes))
	if err != nil {
		return Response{}, err
	}
	resp, err := DecodeResponse(body)
	if err != nil {
		return Response{}, err
	}
	if resp.Overloaded || httpResp.StatusCode == http.StatusServiceUnavailable {
		ra := resp.RetryAfter
		if ra <= 0 {
			ra = DefaultRetryAfterSec
		}
		return resp, fmt.Errorf("%w (retry after %ds): %s", ErrOverloaded, ra, resp.Error)
	}
	if !resp.OK {
		return resp, fmt.Errorf("protocol: server: %s", resp.Error)
	}
	return resp, nil
}

// FrameStream iterates result frames from a /stream connection in
// whichever encoding the server chose; ContentType records the winner.
// Next returns io.EOF when the server closes the stream cleanly.
type FrameStream struct {
	// ContentType is the negotiated encoding: BinaryContentType or
	// NDJSONContentType.
	ContentType string

	body io.ReadCloser
	bin  *BinaryScanner
	dec  *json.Decoder
}

// Next returns the next result frame or io.EOF at a clean end of stream.
func (fs *FrameStream) Next() (ResultFrame, error) {
	if fs.bin != nil {
		return fs.bin.Next()
	}
	var f ResultFrame
	if err := fs.dec.Decode(&f); err != nil {
		return ResultFrame{}, err
	}
	return f, nil
}

// Close releases the underlying connection.
func (fs *FrameStream) Close() error { return fs.body.Close() }

// OpenStream opens the session's result stream with the given Accept
// preference and wires up the decoder the server chose. Most callers use
// Client.Stream / Client.StreamNDJSON, which wrap this in the callback
// loop; tests use it directly to pin negotiation outcomes.
func (c *Client) OpenStream(ctx context.Context, session string, buffer int, accept string) (*FrameStream, error) {
	u := c.Base + "/stream?session=" + url.QueryEscape(session)
	if buffer > 0 {
		u += "&buffer=" + strconv.Itoa(buffer)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", accept)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		return nil, fmt.Errorf("protocol: stream: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fs := &FrameStream{ContentType: resp.Header.Get("Content-Type"), body: resp.Body}
	if strings.Contains(fs.ContentType, BinaryContentType) {
		fs.bin = NewBinaryScanner(resp.Body)
	} else {
		fs.dec = json.NewDecoder(resp.Body)
	}
	return fs, nil
}
