package operator

import (
	"testing"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

func spanTracker() (*iomodel.Tracker, *vclock.Clock) {
	clock := vclock.New()
	params := iomodel.Params{BlockValues: 8, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond}
	return iomodel.New(clock, params, nil), clock
}

func TestRangeOpMirrors(t *testing.T) {
	// CmpOp converts to storage.RangeOp by ordinal; the two enums must
	// stay declared in the same order.
	pairs := []struct {
		cmp CmpOp
		rng storage.RangeOp
	}{
		{Eq, storage.RangeEq}, {Ne, storage.RangeNe}, {Lt, storage.RangeLt},
		{Le, storage.RangeLe}, {Gt, storage.RangeGt}, {Ge, storage.RangeGe},
	}
	for _, p := range pairs {
		if p.cmp.rangeOp() != p.rng {
			t.Fatalf("CmpOp %v maps to RangeOp %d, want %d", p.cmp, p.cmp.rangeOp(), p.rng)
		}
	}
}

func TestAddSpanMatchesSequentialAdds(t *testing.T) {
	vals := []float64{5, 1, 9, 3, 7, 2}
	for _, kind := range []AggKind{Count, Sum, Avg, Min, Max} {
		seq := NewRunningAgg(kind)
		span := NewRunningAgg(kind)
		for _, v := range vals {
			seq.Add(v)
		}
		var sum, min, max float64
		min, max = vals[0], vals[0]
		for _, v := range vals {
			if v != vals[0] {
				if v < min {
					min = v
				}
				if v > max {
					max = v
				}
			}
		}
		sum = 5 + 1 + 9 + 3 + 7 + 2
		span.AddSpan(int64(len(vals)), sum, min, max)
		if seq.Value() != span.Value() || seq.N() != span.N() {
			t.Fatalf("%v: seq (%v,%d) span (%v,%d)", kind, seq.Value(), seq.N(), span.Value(), span.N())
		}
		if NewRunningAgg(kind).NeedsPerValue() {
			t.Fatalf("%v should be span-mergeable", kind)
		}
	}
	for _, kind := range []AggKind{Var, Stddev} {
		if !NewRunningAgg(kind).NeedsPerValue() {
			t.Fatalf("%v must require per-value absorption", kind)
		}
	}
	// Empty spans are no-ops.
	a := NewRunningAgg(Sum)
	a.AddSpan(0, 99, 0, 0)
	if a.N() != 0 || a.Value() != 0 {
		t.Fatal("empty span mutated aggregate")
	}
}

func TestGroupByPushRangeMatchesPushLoop(t *testing.T) {
	keys := []string{"a", "b", "a", "c", "b", "a", "c", "b"}
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	mk := func() (*IncrementalGroupBy, *iomodel.Tracker, *iomodel.Tracker, *vclock.Clock) {
		kc := storage.NewStringColumn("k", keys)
		vc := storage.NewIntColumn("v", vals)
		kt, clock := spanTracker()
		params := iomodel.Params{BlockValues: 8, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond}
		vt := iomodel.New(clock, params, nil)
		return NewIncrementalGroupBy(kc, vc, Sum), kt, vt, clock
	}
	scalar, skt, svt, sClock := mk()
	span, vkt, vvt, vClock := mk()

	// Pre-absorb id 3 so the range has a hole.
	scalar.Push(3, skt, svt)
	span.Push(3, vkt, vvt)

	for id := 1; id < 7; id++ {
		scalar.Push(id, skt, svt)
	}
	if got := span.PushRange(1, 7, vkt, vvt); got != 5 {
		t.Fatalf("PushRange absorbed %d, want 5", got)
	}
	sg, vg := scalar.Groups(), span.Groups()
	if len(sg) != len(vg) {
		t.Fatalf("group tables diverge: %v vs %v", sg, vg)
	}
	for i := range sg {
		if sg[i] != vg[i] {
			t.Fatalf("group %d diverges: %+v vs %+v", i, sg[i], vg[i])
		}
	}
	if scalar.SeenTuples() != span.SeenTuples() {
		t.Fatal("seen counts diverge")
	}
	if sClock.Now() != vClock.Now() {
		t.Fatalf("virtual cost diverged: %v vs %v", sClock.Now(), vClock.Now())
	}
	// GroupOf reads without absorbing.
	key, val, ok := span.GroupOf(5)
	if !ok || key != "a" || val != 3+6 {
		t.Fatalf("GroupOf = %q %v %v", key, val, ok)
	}
	// GroupOf reports group-level state: tuple 7's group ("b") exists even
	// though tuple 7 itself was never absorbed.
	if key, _, ok := span.GroupOf(7); !ok || key != "b" {
		t.Fatalf("GroupOf(7) = %q %v", key, ok)
	}
	if _, _, ok := span.GroupOf(-1); ok {
		t.Fatal("out-of-range GroupOf must fail")
	}
	if !span.Seen(3) || span.Seen(7) {
		t.Fatal("Seen bitset wrong")
	}
}

func TestGroupKeyNamesMatchValueString(t *testing.T) {
	ic := storage.NewIntColumn("k", []int64{42, -7})
	fc := storage.NewFloatColumn("f", []float64{1.5, 2.25})
	bc := storage.NewBoolColumn("b", []bool{true, false})
	vc := storage.NewIntColumn("v", []int64{1, 2})
	for _, kc := range []*storage.Column{ic, fc, bc} {
		g := NewIncrementalGroupBy(kc, vc, Count)
		for id := 0; id < 2; id++ {
			key, _, ok := g.Push(id, nil, nil)
			if !ok || key != kc.Value(id).String() {
				t.Fatalf("%v key %q != %q", kc.Type(), key, kc.Value(id).String())
			}
		}
	}
}

func TestJoinPushRangeMatchesPushLoop(t *testing.T) {
	left := storage.NewIntColumn("l", []int64{1, 2, 3, 4, 5, 6})
	right := storage.NewIntColumn("r", []int64{6, 5, 4, 3, 2, 1})
	scalar := NewSymmetricHashJoin(left, right)
	span := NewSymmetricHashJoin(left, right)

	st, sClock := spanTracker()
	vt, vClock := spanTracker()

	for id := 0; id < 6; id++ {
		scalar.PushRight(id, st)
	}
	span.PushRange(0, 6, false, vt)

	var scalarMatches []JoinMatch
	for id := 1; id < 5; id++ {
		scalarMatches = append(scalarMatches, scalar.PushLeft(id, st)...)
	}
	spanMatches := span.PushRange(1, 5, true, vt)
	if len(scalarMatches) != len(spanMatches) {
		t.Fatalf("matches diverge: %v vs %v", scalarMatches, spanMatches)
	}
	for i := range scalarMatches {
		if scalarMatches[i] != spanMatches[i] {
			t.Fatalf("match %d diverges: %+v vs %+v", i, scalarMatches[i], spanMatches[i])
		}
	}
	if scalar.Matches() != span.Matches() || scalar.SeenLeft() != span.SeenLeft() || scalar.SeenRight() != span.SeenRight() {
		t.Fatal("join counters diverge")
	}
	if sClock.Now() != vClock.Now() {
		t.Fatalf("virtual cost diverged: %v vs %v", sClock.Now(), vClock.Now())
	}
	// Revisiting a span absorbs nothing new.
	if got := span.PushRange(0, 6, true, vt); len(got) != 0 && span.SeenLeft() != 6 {
		t.Fatal("revisit should only absorb fresh tuples")
	}
}

func TestEvalRangeMatchesEvalLoop(t *testing.T) {
	n := 500
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(i % 97)
		b[i] = int64(i % 13)
	}
	m, err := storage.NewMatrix("t", storage.NewIntColumn("a", a), storage.NewIntColumn("b", b))
	if err != nil {
		t.Fatal(err)
	}
	p := Predicate{Col: 0, Op: Lt, Operand: storage.IntValue(40)}
	q := Predicate{Col: 1, Op: Ge, Operand: storage.IntValue(5)}

	mkTrackers := func() ([]*iomodel.Tracker, *vclock.Clock) {
		clock := vclock.New()
		params := iomodel.Params{BlockValues: 32, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond}
		return []*iomodel.Tracker{iomodel.New(clock, params, nil), iomodel.New(clock, params, nil)}, clock
	}
	sTr, sClock := mkTrackers()
	vTr, vClock := mkTrackers()

	// Scalar: conjunct-by-conjunct over the span with short-circuit.
	var want []int32
	for row := 100; row < 400; row++ {
		ok1, err := p.Eval(m, row, sTr)
		if err != nil {
			t.Fatal(err)
		}
		if !ok1 {
			continue
		}
		ok2, err := q.Eval(m, row, sTr)
		if err != nil {
			t.Fatal(err)
		}
		if ok2 {
			want = append(want, int32(row))
		}
	}

	sel, evaluated, err := p.EvalRange(m, 100, 400, nil, vTr, nil)
	if err != nil || evaluated != 300 {
		t.Fatalf("EvalRange: %v evaluated %d", err, evaluated)
	}
	got, _, err := q.EvalRange(m, 100, 400, sel, vTr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("selections diverge: %d vs %d rows", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d vs %d", i, got[i], want[i])
		}
	}
	if sClock.Now() != vClock.Now() {
		t.Fatalf("virtual cost diverged: scalar %v vector %v", sClock.Now(), vClock.Now())
	}
	for c := range sTr {
		if sTr[c].Stats() != vTr[c].Stats() {
			t.Fatalf("tracker %d stats diverge: %+v vs %+v", c, sTr[c].Stats(), vTr[c].Stats())
		}
	}
}
