#!/usr/bin/env bash
# resume_roundtrip.sh — end-to-end durability gate (wired into CI): run
# dbtouch-serve with a session log directory, drive half an exploration
# at it, kill -9 the process mid-session, restart it on the same
# directory, resume over the wire, finish the exploration — and prove
# the concatenated perform responses are byte-identical to an
# uninterrupted run on a server that never crashed.
. "$(dirname "$0")/lib.sh"
lib_init

# One exploration, split into a prefix (before the crash) and a suffix
# (after resume). Gestures only — open/create are issued separately so
# the replayed-request count below is exact.
prefix_gestures=(
  '{"kind":"tap","frac":0.1}'
  '{"kind":"tap","frac":0.3}'
  '{"kind":"slide","to":1,"dur":2000000000}'
  '{"kind":"tap","frac":0.5}'
)
suffix_gestures=(
  '{"kind":"tap","frac":0.7}'
  '{"kind":"slide","from":1,"dur":1000000000}'
  '{"kind":"tap","frac":0.9}'
)

session_open() {
  rpc "$1" '{"v":1,"op":"open","session":"smoke"}' >/dev/null
  rpc "$1" '{"v":1,"op":"create","session":"smoke","object":"o","create":{"table":"t","column":"v","x":2,"y":2,"w":2,"h":10}}' >/dev/null
}

# perform ADDR OUT GESTURE... — run gestures, appending each raw
# response body (deterministic JSON) to OUT.
perform() {
  local addr="$1" out="$2" g
  shift 2
  for g in "$@"; do
    printf '%s\n' "$(rpc "$addr" '{"v":1,"op":"perform","session":"smoke","object":"o","gesture":'"$g"'}')" >>"$out"
  done
}

# Control: the same exploration, uninterrupted, on a server without
# durability — the resumed stream must be indistinguishable from it.
addr=127.0.0.1:18932
serve_start -addr "$addr" -rows 100000
serve_wait "$addr"
session_open "$addr"
perform "$addr" "$work/control.out" "${prefix_gestures[@]}" "${suffix_gestures[@]}"
serve_stop TERM

# Crash run: prefix, then the plug is pulled.
addr=127.0.0.1:18933
serve_start -addr "$addr" -rows 100000 -session-dir "$work/sessions"
serve_wait "$addr"
session_open "$addr"
perform "$addr" "$work/crash.out" "${prefix_gestures[@]}"
serve_kill9

# Restart on the same log directory; the dead session must be offered
# for resume and replay exactly its logged history (open + create +
# prefix performs).
serve_start -addr "$addr" -rows 100000 -session-dir "$work/sessions"
serve_wait "$addr"
grep -q '1 sessions resumable' "$serve_log" || {
  echo "FAIL: restarted server does not report the crashed session as resumable" >&2
  cat "$serve_log" >&2
  exit 1
}
want_replayed=$((2 + ${#prefix_gestures[@]}))
resume="$(rpc "$addr" '{"v":1,"op":"resume","session":"smoke"}')"
echo "$resume" | grep -q '"replayed":'"$want_replayed"'[,}]' || {
  echo "FAIL: resume response $resume, want replayed=$want_replayed" >&2
  exit 1
}
perform "$addr" "$work/crash.out" "${suffix_gestures[@]}"
serve_stop TERM

if ! cmp -s "$work/control.out" "$work/crash.out"; then
  echo "FAIL: resumed stream diverged from the uninterrupted run:" >&2
  diff "$work/control.out" "$work/crash.out" >&2 || true
  exit 1
fi

echo "ok: $want_replayed requests replayed, $(wc -l <"$work/crash.out") perform responses byte-identical across kill -9"
