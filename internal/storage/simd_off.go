//go:build purego || (!amd64 && !arm64)

package storage

import "math"

// Pure-Go build: no assembly is linked and every dispatch flag is a
// compile-time false, so the kernel call sites dead-code-eliminate the
// SIMD branches and the storage layer runs exactly the reference loops.
// This is the `purego` escape hatch for unsupported hosts (and the
// build CI proves it compiles everywhere) — see ARCHITECTURE.md
// "Kernel layer" for the build-tag matrix.
const (
	simdSum       = false
	simdMinMax    = false
	simdFilterSum = false
	simdFilterAgg = false
	simdCompress  = false
)

func simdAvailable() bool { return false }

func setSIMD(bool) (restore func()) { return func() {} }

// The stubs below are unreachable (their flags are constant false) but
// keep the dispatch seams compiling; they delegate to the scalar
// reference so they would be correct even if called.

func simdSumInt64(v []int64) int64 { return sumInt64(v) }

func simdMinMaxInt64(v []int64) (mn, mx int64) {
	mn, mx = math.MaxInt64, math.MinInt64
	for _, x := range v {
		mn = min(mn, x)
		mx = max(mx, x)
	}
	return mn, mx
}

func simdMinMaxFloat64(v []float64) (mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

func simdFilterSumInt64(v []int64, p intPred) (cnt int, isum int64) {
	for _, x := range v {
		q := p.test(x)
		cnt += q
		isum += x & int64(-q)
	}
	return cnt, isum
}

func simdFilterAggInt64(v []int64, p intPred) filterAggInt {
	f := newFilterAggInt()
	for _, x := range v {
		f.absorb(x, p.test(x))
	}
	return f
}

func simdCompressInt64(v []int64, p intPred, base int, buf []int32) int {
	j := 0
	for i, x := range v {
		buf[j] = int32(base + i)
		j += p.test(x)
	}
	return j
}

func simdCompressFloat64(v []float64, b float64, wLt, wGt, wEq int, base int, buf []int32) int {
	j := 0
	for i, x := range v {
		buf[j] = int32(base + i)
		j += passFloat(x, b, wLt, wGt, wEq)
	}
	return j
}
