// Package storage implements the dbTouch physical storage substrate: dense,
// fixed-width matrixes of typed values (paper §2.6 "Physical Layout").
//
// Each Matrix holds one or more columns of fixed-width fields and can be
// laid out column-major (a column-store: one dense array per attribute) or
// row-major (a row-store: attribute values interleaved per tuple). The
// fixed-width representation is what lets dbTouch map a touch location to a
// tuple identifier with pure arithmetic, without consulting slotted-page
// metadata.
//
// Storage is the shared immutable layer of the architecture: once loaded
// and registered in a Catalog, matrixes, columns and dictionaries are read
// concurrently by every exploration session without locking (see the
// Column sharing contract); the catalog itself and the lazily memoized
// predicate tables are the only internally synchronized pieces.
package storage

import (
	"fmt"
	"math"
	"strconv"
)

// Type identifies the logical type of a column. All types are stored as
// fixed-width 64-bit words; strings are dictionary encoded.
type Type uint8

// Supported column types.
const (
	Int64 Type = iota
	Float64
	Bool
	String
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "INT"
	case Float64:
		return "FLOAT"
	case Bool:
		return "BOOL"
	case String:
		return "STRING"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType converts a type name (as used in CSV schema headers) to a Type.
func ParseType(s string) (Type, error) {
	switch s {
	case "INT", "int", "int64":
		return Int64, nil
	case "FLOAT", "float", "float64":
		return Float64, nil
	case "BOOL", "bool":
		return Bool, nil
	case "STRING", "string", "text":
		return String, nil
	default:
		return 0, fmt.Errorf("storage: unknown type %q", s)
	}
}

// Value is a single typed cell. It is a small value type so operators can
// pass cells around without allocation.
type Value struct {
	Type Type
	I    int64
	F    float64
	B    bool
	S    string
}

// IntValue wraps an int64 as a Value.
func IntValue(v int64) Value { return Value{Type: Int64, I: v} }

// FloatValue wraps a float64 as a Value.
func FloatValue(v float64) Value { return Value{Type: Float64, F: v} }

// BoolValue wraps a bool as a Value.
func BoolValue(v bool) Value { return Value{Type: Bool, B: v} }

// StringValue wraps a string as a Value.
func StringValue(v string) Value { return Value{Type: String, S: v} }

// AsFloat coerces the value to a float64 for aggregation. Bools map to 0/1;
// strings map to their dictionary-free numeric parse or 0.
func (v Value) AsFloat() float64 {
	switch v.Type {
	case Int64:
		return float64(v.I)
	case Float64:
		return v.F
	case Bool:
		if v.B {
			return 1
		}
		return 0
	case String:
		f, err := strconv.ParseFloat(v.S, 64)
		if err != nil {
			return 0
		}
		return f
	default:
		return 0
	}
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Type {
	case Int64:
		return strconv.FormatInt(v.I, 10)
	case Float64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case Bool:
		return strconv.FormatBool(v.B)
	case String:
		return v.S
	default:
		return "?"
	}
}

// Compare orders v against other. It returns a negative number if v < other,
// zero if equal, positive if v > other. Numeric types compare numerically
// (an INT compares against a FLOAT by value); strings compare
// lexicographically; comparing a string against a number compares the
// numeric coercion.
func (v Value) Compare(other Value) int {
	if v.Type == String && other.Type == String {
		switch {
		case v.S < other.S:
			return -1
		case v.S > other.S:
			return 1
		default:
			return 0
		}
	}
	a, b := v.AsFloat(), other.AsFloat()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports whether two values are equal under Compare semantics.
func (v Value) Equal(other Value) bool { return v.Compare(other) == 0 }

// word is the fixed-width 64-bit encoding used by row-major slabs.
func (v Value) word(dict *Dictionary) uint64 {
	switch v.Type {
	case Int64:
		return uint64(v.I)
	case Float64:
		return math.Float64bits(v.F)
	case Bool:
		if v.B {
			return 1
		}
		return 0
	case String:
		return uint64(dict.Intern(v.S))
	default:
		return 0
	}
}

// valueFromWord decodes a 64-bit word back into a Value of type t.
func valueFromWord(w uint64, t Type, dict *Dictionary) Value {
	switch t {
	case Int64:
		return IntValue(int64(w))
	case Float64:
		return FloatValue(math.Float64frombits(w))
	case Bool:
		return BoolValue(w != 0)
	case String:
		return StringValue(dict.Lookup(int32(w)))
	default:
		return Value{}
	}
}
