package protocol

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

// Serialization cost per result frame, binary vs JSON, at the three frame
// sizes the stream coalescer actually produces: 1 (idle session, frame
// per result), 64 (bursty), 4096 (saturated slide). ns/op is the cost of
// one whole frame; bytes/frame and bytes/value report the wire size.
// scripts/bench.sh folds these into BENCH_kernels.json so wire cost joins
// the tracked perf trajectory.

func benchFrameSizes() []int { return []int{1, 64, 4096} }

func BenchmarkResultFrameEncodeBinary(b *testing.B) {
	for _, n := range benchFrameSizes() {
		b.Run(fmt.Sprintf("values=%d", n), func(b *testing.B) {
			results := genSlideRun(rand.New(rand.NewSource(int64(n))), n)
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = AppendBinaryResults(buf[:0], "bench", 1, results)
			}
			b.ReportMetric(float64(len(buf)), "bytes/frame")
			b.ReportMetric(float64(len(buf))/float64(n), "bytes/value")
		})
	}
}

func BenchmarkResultFrameEncodeJSON(b *testing.B) {
	for _, n := range benchFrameSizes() {
		b.Run(fmt.Sprintf("values=%d", n), func(b *testing.B) {
			results := genSlideRun(rand.New(rand.NewSource(int64(n))), n)
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				for _, r := range results {
					if err := enc.Encode(FrameResult(r)); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(buf.Len()), "bytes/frame")
			b.ReportMetric(float64(buf.Len())/float64(n), "bytes/value")
		})
	}
}

func BenchmarkResultFrameDecodeBinary(b *testing.B) {
	for _, n := range benchFrameSizes() {
		b.Run(fmt.Sprintf("values=%d", n), func(b *testing.B) {
			enc := AppendBinaryResults(nil, "bench", 1, genSlideRun(rand.New(rand.NewSource(int64(n))), n))
			payload := enc[4:]
			b.ReportAllocs()
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := DecodeBinaryFrame(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkResultFrameDecodeJSON(b *testing.B) {
	for _, n := range benchFrameSizes() {
		b.Run(fmt.Sprintf("values=%d", n), func(b *testing.B) {
			enc := encodeNDJSON(genSlideRun(rand.New(rand.NewSource(int64(n))), n))
			b.ReportAllocs()
			b.SetBytes(int64(len(enc)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec := json.NewDecoder(bytes.NewReader(enc))
				for {
					var f ResultFrame
					if err := dec.Decode(&f); err != nil {
						break
					}
					_ = f
				}
			}
		})
	}
}

// TestBinaryEncodeSpeedup asserts (not just reports) the acceptance
// bound: binary must be ≥ 3x cheaper to encode than JSON at 4096-value
// frames. It uses testing.Benchmark for measurement discipline — which
// must be called from a test, not a benchmark: the benchmark runner holds
// the testing package's benchmark lock, so a nested call deadlocks. The
// measured margin is large (order of magnitude), so the 3x floor holds
// even on loaded CI machines.
func TestBinaryEncodeSpeedup(t *testing.T) {
	results := genSlideRun(rand.New(rand.NewSource(42)), 4096)
	jsonRes := testing.Benchmark(func(b *testing.B) {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for i := 0; i < b.N; i++ {
			buf.Reset()
			for _, r := range results {
				_ = enc.Encode(FrameResult(r))
			}
		}
	})
	binRes := testing.Benchmark(func(b *testing.B) {
		var buf []byte
		for i := 0; i < b.N; i++ {
			buf = AppendBinaryResults(buf[:0], "bench", 1, results)
		}
	})
	speedup := float64(jsonRes.NsPerOp()) / float64(binRes.NsPerOp())
	t.Logf("encode 4096 values: json %dns, binary %dns, speedup %.1fx", jsonRes.NsPerOp(), binRes.NsPerOp(), speedup)
	if speedup < 3 {
		t.Fatalf("binary encode only %.2fx cheaper than JSON at 4096 values (want >= 3x)", speedup)
	}
}
