package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// The span-equivalence suite runs identical gesture scripts through two
// kernels that differ only in Config.ScalarSlide and asserts the emitted
// Result streams are byte-identical — the vectorized span kernels must be
// indistinguishable from the tuple-at-a-time reference path, including
// virtual-time stamps and latencies. Integer-valued data makes every sum
// exact, so even prefix-sum span aggregation reproduces the scalar
// stream bit for bit.

// equivPair is one scalar/vector kernel pair under a shared script.
type equivPair struct {
	t       *testing.T
	scalar  *Kernel
	vector  *Kernel
	objects [][2]*Object // [i] = {scalar object, vector object}
}

func newEquivPair(t *testing.T, mutate func(*Config)) *equivPair {
	t.Helper()
	mk := func(scalarSlide bool) *Kernel {
		cfg := DefaultConfig()
		cfg.ScalarSlide = scalarSlide
		if mutate != nil {
			mutate(&cfg)
		}
		return NewKernel(cfg)
	}
	return &equivPair{t: t, scalar: mk(true), vector: mk(false)}
}

// addColumn registers the same column object on both kernels.
func (p *equivPair) addColumn(m func() *storage.Matrix, col int, frame touchos.Rect) int {
	p.t.Helper()
	so, err := p.scalar.CreateColumnObject(m(), col, frame)
	if err != nil {
		p.t.Fatal(err)
	}
	vo, err := p.vector.CreateColumnObject(m(), col, frame)
	if err != nil {
		p.t.Fatal(err)
	}
	p.objects = append(p.objects, [2]*Object{so, vo})
	return len(p.objects) - 1
}

func (p *equivPair) addTable(m func() *storage.Matrix, frame touchos.Rect) int {
	p.t.Helper()
	so, err := p.scalar.CreateTableObject(m(), frame)
	if err != nil {
		p.t.Fatal(err)
	}
	vo, err := p.vector.CreateTableObject(m(), frame)
	if err != nil {
		p.t.Fatal(err)
	}
	p.objects = append(p.objects, [2]*Object{so, vo})
	return len(p.objects) - 1
}

func (p *equivPair) setActions(obj int, a Actions) {
	p.objects[obj][0].SetActions(a)
	p.objects[obj][1].SetActions(a)
}

// slide sweeps both twins between fractional heights of the object.
func (p *equivPair) slide(obj int, fromFrac, toFrac float64, dur time.Duration) {
	p.t.Helper()
	for i, k := range []*Kernel{p.scalar, p.vector} {
		o := p.objects[obj][i]
		f := o.View().Frame()
		synth := gesture.Synth{}
		y := func(frac float64) float64 { return f.Origin.Y + 0.02 + frac*(f.Size.H-0.04) }
		events := synth.Slide(
			touchos.Point{X: f.Origin.X + f.Size.W/2, Y: y(fromFrac)},
			touchos.Point{X: f.Origin.X + f.Size.W/2, Y: y(toFrac)},
			k.Clock().Now()+time.Millisecond, dur,
		)
		k.Apply(events)
	}
	p.check()
}

// slideAtX sweeps vertically at an absolute X (table objects: picks the
// touched attribute).
func (p *equivPair) slideAtX(obj int, x, fromFrac, toFrac float64, dur time.Duration) {
	p.t.Helper()
	for i, k := range []*Kernel{p.scalar, p.vector} {
		o := p.objects[obj][i]
		f := o.View().Frame()
		synth := gesture.Synth{}
		y := func(frac float64) float64 { return f.Origin.Y + 0.02 + frac*(f.Size.H-0.04) }
		events := synth.Slide(
			touchos.Point{X: x, Y: y(fromFrac)},
			touchos.Point{X: x, Y: y(toFrac)},
			k.Clock().Now()+time.Millisecond, dur,
		)
		k.Apply(events)
	}
	p.check()
}

func (p *equivPair) idle(d time.Duration) {
	for _, k := range []*Kernel{p.scalar, p.vector} {
		now := k.Clock().Now()
		k.RunIdle(now, now+d)
	}
	p.check()
}

// resultsEqual is DeepEqual except that two NaN aggregates compare equal
// (variance of a single sample is NaN on both paths, and NaN != NaN).
func resultsEqual(a, b Result) bool {
	if math.IsNaN(a.Agg) && math.IsNaN(b.Agg) {
		a.Agg, b.Agg = 0, 0
	}
	return reflect.DeepEqual(a, b)
}

// check asserts the two kernels are indistinguishable so far.
func (p *equivPair) check() {
	p.t.Helper()
	sr, vr := p.scalar.Results(), p.vector.Results()
	if len(sr) != len(vr) {
		p.t.Fatalf("result counts diverge: scalar %d vector %d", len(sr), len(vr))
	}
	for i := range sr {
		if !resultsEqual(sr[i], vr[i]) {
			p.t.Fatalf("result %d diverges:\n scalar: %+v\n vector: %+v", i, sr[i], vr[i])
		}
	}
	if p.scalar.Clock().Now() != p.vector.Clock().Now() {
		p.t.Fatalf("virtual clocks diverge: scalar %v vector %v", p.scalar.Clock().Now(), p.vector.Clock().Now())
	}
}

// randInts builds a deterministic pseudo-random integer column factory.
func randInts(seed int64, n int, max int64) func() *storage.Matrix {
	return func() *storage.Matrix {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(max)
		}
		m, err := storage.NewMatrix("t", storage.NewIntColumn("v", vals))
		if err != nil {
			panic(err)
		}
		return m
	}
}

func TestSpanEquivalenceAggregateKinds(t *testing.T) {
	for _, kind := range []operator.AggKind{operator.Count, operator.Sum, operator.Avg, operator.Min, operator.Max, operator.Var, operator.Stddev} {
		t.Run(kind.String(), func(t *testing.T) {
			p := newEquivPair(t, nil)
			obj := p.addColumn(randInts(7, 60000, 1000), 0, touchos.NewRect(2, 2, 2, 10))
			p.setActions(obj, Actions{Mode: ModeAggregate, Agg: kind})
			p.slide(obj, 0, 1, 1200*time.Millisecond)
			p.slide(obj, 1, 0.3, 600*time.Millisecond)
			p.idle(200 * time.Millisecond)
			p.slide(obj, 0.3, 0.9, 900*time.Millisecond)
		})
	}
}

func TestSpanEquivalenceVarOnFloats(t *testing.T) {
	// Variance-family aggregates absorb spans value by value, so even
	// float data stays bit-identical between the two paths.
	mkFloats := func() *storage.Matrix {
		rng := rand.New(rand.NewSource(11))
		vals := make([]float64, 40000)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 3.7
		}
		m, err := storage.NewMatrix("t", storage.NewFloatColumn("v", vals))
		if err != nil {
			panic(err)
		}
		return m
	}
	p := newEquivPair(t, nil)
	obj := p.addColumn(mkFloats, 0, touchos.NewRect(2, 2, 2, 10))
	p.setActions(obj, Actions{Mode: ModeAggregate, Agg: operator.Stddev})
	p.slide(obj, 0, 1, 1500*time.Millisecond)
	p.slide(obj, 1, 0, 700*time.Millisecond)
}

func TestSpanEquivalenceSummary(t *testing.T) {
	for _, k := range []int{0, 3, 25, 400} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			p := newEquivPair(t, nil)
			obj := p.addColumn(randInts(13, 80000, 500), 0, touchos.NewRect(2, 2, 2, 10))
			p.setActions(obj, Actions{Mode: ModeSummary, Agg: operator.Avg, SummaryK: k})
			p.slide(obj, 0, 1, 1500*time.Millisecond)
			p.setActions(obj, Actions{Mode: ModeSummary, Agg: operator.Max, SummaryK: k})
			p.slide(obj, 1, 0, 800*time.Millisecond)
		})
	}
}

func TestSpanEquivalenceValueOrder(t *testing.T) {
	p := newEquivPair(t, nil)
	obj := p.addColumn(randInts(17, 30000, 100000), 0, touchos.NewRect(2, 2, 2, 10))
	p.setActions(obj, Actions{Mode: ModeScan, ValueOrder: true})
	p.slide(obj, 0, 1, 800*time.Millisecond)
	p.setActions(obj, Actions{Mode: ModeSummary, Agg: operator.Avg, SummaryK: 20, ValueOrder: true})
	p.slide(obj, 0, 1, 1200*time.Millisecond)
}

func TestSpanEquivalenceFiltered(t *testing.T) {
	mk := func() *storage.Matrix {
		rng := rand.New(rand.NewSource(23))
		n := 50000
		v := make([]int64, n)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range v {
			v[i] = rng.Int63n(1000)
			a[i] = int64((i / 4000) % 3)
			b[i] = rng.Int63n(10)
		}
		m, err := storage.NewMatrix("t",
			storage.NewIntColumn("v", v),
			storage.NewIntColumn("a", a),
			storage.NewIntColumn("b", b),
		)
		if err != nil {
			panic(err)
		}
		return m
	}
	filters := []operator.Predicate{
		{Col: 1, Op: operator.Eq, Operand: storage.IntValue(1)},
		{Col: 2, Op: operator.Lt, Operand: storage.IntValue(7)},
	}
	for _, mode := range []Mode{ModeScan, ModeAggregate} {
		t.Run(mode.String(), func(t *testing.T) {
			p := newEquivPair(t, nil)
			obj := p.addColumn(mk, 0, touchos.NewRect(2, 2, 2, 10))
			p.setActions(obj, Actions{Mode: mode, Agg: operator.Sum, Filters: filters})
			p.slide(obj, 0, 1, 1800*time.Millisecond)
			p.slide(obj, 1, 0.2, 700*time.Millisecond)
		})
	}
}

func TestSpanEquivalenceGroupBy(t *testing.T) {
	mk := func() *storage.Matrix {
		rng := rand.New(rand.NewSource(29))
		n := 30000
		vals := make([]int64, n)
		keys := make([]string, n)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
			keys[i] = string(rune('a' + rng.Intn(5)))
		}
		m, err := storage.NewMatrix("t",
			storage.NewIntColumn("v", vals),
			storage.NewStringColumn("k", keys),
		)
		if err != nil {
			panic(err)
		}
		return m
	}
	p := newEquivPair(t, nil)
	obj := p.addColumn(mk, 0, touchos.NewRect(2, 2, 2, 10))
	p.setActions(obj, Actions{Mode: ModeSummary, Agg: operator.Avg, SummaryK: 10,
		Group: &GroupSpec{KeyCol: 1, ValCol: 0, Agg: operator.Sum}})
	p.slide(obj, 0, 1, 1500*time.Millisecond)
	p.slide(obj, 1, 0, 900*time.Millisecond)
}

func TestSpanEquivalenceJoin(t *testing.T) {
	mkSide := func(seed int64) func() *storage.Matrix {
		return randInts(seed, 8000, 2000)
	}
	p := newEquivPair(t, nil)
	left := p.addColumn(mkSide(31), 0, touchos.NewRect(2, 2, 2, 8))
	right := p.addColumn(mkSide(37), 0, touchos.NewRect(6, 2, 2, 8))
	a := p.objects[left][0].Actions()
	a.Join = &JoinSpec{OtherObject: p.objects[right][0].ID(), Side: JoinLeft}
	// Wire the join on each kernel with its own object ids.
	p.objects[left][0].SetActions(a)
	av := p.objects[left][1].Actions()
	av.Join = &JoinSpec{OtherObject: p.objects[right][1].ID(), Side: JoinLeft}
	p.objects[left][1].SetActions(av)

	p.slide(left, 0, 1, 900*time.Millisecond)
	p.slide(right, 0, 1, 900*time.Millisecond)
	p.slide(left, 1, 0, 600*time.Millisecond)
	p.slide(right, 0.2, 0.8, 600*time.Millisecond)
}

func TestSpanEquivalenceTableObject(t *testing.T) {
	mk := func() *storage.Matrix {
		rng := rand.New(rand.NewSource(41))
		n := 20000
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = rng.Int63n(100)
			b[i] = rng.Int63n(100)
		}
		m, err := storage.NewMatrix("t",
			storage.NewIntColumn("a", a),
			storage.NewIntColumn("b", b),
		)
		if err != nil {
			panic(err)
		}
		return m
	}
	for _, mode := range []Mode{ModeScan, ModeAggregate, ModeSummary} {
		t.Run(mode.String(), func(t *testing.T) {
			p := newEquivPair(t, nil)
			obj := p.addTable(mk, touchos.NewRect(2, 2, 6, 10))
			p.setActions(obj, Actions{Mode: mode, Agg: operator.Avg, SummaryK: 15})
			p.slideAtX(obj, 3.5, 0, 1, 900*time.Millisecond) // left column
			p.slideAtX(obj, 6.5, 1, 0, 700*time.Millisecond) // right column
			p.slideAtX(obj, 3.5, 0.2, 0.9, 500*time.Millisecond)
		})
	}
}

// TestSpanEquivalenceRandomScript is the randomized gesture-script
// equivalence test: random mode switches, directions, durations, and
// idle pauses, replayed identically on both kernels.
func TestSpanEquivalenceRandomScript(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			p := newEquivPair(t, nil)
			obj := p.addColumn(randInts(seed+100, 50000, 1000), 0, touchos.NewRect(2, 2, 2, 10))
			kinds := []operator.AggKind{operator.Count, operator.Sum, operator.Avg, operator.Min, operator.Max, operator.Var, operator.Stddev}
			pos := 0.0
			for step := 0; step < 12; step++ {
				if rng.Intn(3) == 0 {
					mode := []Mode{ModeScan, ModeAggregate, ModeSummary}[rng.Intn(3)]
					a := Actions{
						Mode:     mode,
						Agg:      kinds[rng.Intn(len(kinds))],
						SummaryK: rng.Intn(60),
					}
					if rng.Intn(4) == 0 {
						a.ValueOrder = true
					}
					p.setActions(obj, a)
				}
				switch rng.Intn(5) {
				case 0:
					p.idle(time.Duration(50+rng.Intn(400)) * time.Millisecond)
				default:
					next := rng.Float64()
					dur := time.Duration(200+rng.Intn(1200)) * time.Millisecond
					p.slide(obj, pos, next, dur)
					pos = next
				}
			}
		})
	}
}

// TestSpanEquivalenceFusedAggregate drives the fused filter+aggregate
// slide path: a single WHERE conjunct over the aggregated column itself,
// consumed only by the running aggregate, must produce a stream
// byte-identical to the scalar reference — and must actually take the
// fused path on the vector kernel (asserted via the touch.fused counter).
func TestSpanEquivalenceFusedAggregate(t *testing.T) {
	filters := []operator.Predicate{{Col: 0, Op: operator.Lt, Operand: storage.IntValue(600)}}
	for _, kind := range []operator.AggKind{operator.Count, operator.Sum, operator.Avg, operator.Min, operator.Max} {
		t.Run(kind.String(), func(t *testing.T) {
			p := newEquivPair(t, nil)
			obj := p.addColumn(randInts(51, 60000, 1000), 0, touchos.NewRect(2, 2, 2, 10))
			p.setActions(obj, Actions{Mode: ModeAggregate, Agg: kind, Filters: filters})
			p.slide(obj, 0, 1, 1400*time.Millisecond)
			p.slide(obj, 1, 0.2, 700*time.Millisecond)
			p.idle(150 * time.Millisecond)
			p.slide(obj, 0.2, 0.8, 600*time.Millisecond)
			if fused := p.vector.Counters().Get("touch.fused"); fused == 0 {
				t.Fatal("vector kernel never took the fused path")
			}
			if fused := p.scalar.Counters().Get("touch.fused"); fused != 0 {
				t.Fatal("scalar kernel took the fused path")
			}
		})
	}
}

// TestSpanEquivalenceFusedFloatColumn pins the float-order contract:
// float columns fuse only the exact kinds (min/max/count); sum and avg
// are order-sensitive, stay on the unfused path, and every kind's
// stream is byte-identical to the scalar reference either way.
func TestSpanEquivalenceFusedFloatColumn(t *testing.T) {
	mkFloats := func() *storage.Matrix {
		rng := rand.New(rand.NewSource(61))
		vals := make([]float64, 40000)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 5
		}
		m, err := storage.NewMatrix("t", storage.NewFloatColumn("v", vals))
		if err != nil {
			panic(err)
		}
		return m
	}
	filters := []operator.Predicate{{Col: 0, Op: operator.Lt, Operand: storage.FloatValue(1.0)}}
	for _, tc := range []struct {
		kind  operator.AggKind
		fuses bool
	}{
		{operator.Sum, false}, {operator.Avg, false},
		{operator.Min, true}, {operator.Max, true}, {operator.Count, true},
	} {
		t.Run(tc.kind.String(), func(t *testing.T) {
			p := newEquivPair(t, nil)
			obj := p.addColumn(mkFloats, 0, touchos.NewRect(2, 2, 2, 10))
			p.setActions(obj, Actions{Mode: ModeAggregate, Agg: tc.kind, Filters: filters})
			p.slide(obj, 0, 1, 1200*time.Millisecond)
			p.slide(obj, 1, 0.1, 700*time.Millisecond)
			fused := p.vector.Counters().Get("touch.fused")
			if tc.fuses && fused == 0 {
				t.Fatalf("%v over floats should fuse but did not", tc.kind)
			}
			if !tc.fuses && fused != 0 {
				t.Fatalf("%v over floats fused (%d touches) — float sums must keep scalar order", tc.kind, fused)
			}
		})
	}
}

// TestSpanEquivalenceFusedSelective covers fused spans where most touches
// qualify nothing (the touch.filtered early-out) and where everything
// qualifies.
func TestSpanEquivalenceFusedSelective(t *testing.T) {
	for _, operand := range []int64{0, 5, 1000} { // ~0%, ~0.5%, 100% pass
		t.Run(fmt.Sprintf("lt_%d", operand), func(t *testing.T) {
			p := newEquivPair(t, nil)
			obj := p.addColumn(randInts(53, 40000, 1000), 0, touchos.NewRect(2, 2, 2, 10))
			p.setActions(obj, Actions{Mode: ModeAggregate, Agg: operator.Sum,
				Filters: []operator.Predicate{{Col: 0, Op: operator.Lt, Operand: storage.IntValue(operand)}}})
			p.slide(obj, 0, 1, 1200*time.Millisecond)
			p.slide(obj, 1, 0, 800*time.Millisecond)
		})
	}
}

// TestSpanEquivalenceFusedMultiConjunct drives the FilterSel-fused form:
// with adaptation disabled (fixed conjunct order) and the final conjunct
// reading the aggregated column, the prefix conjuncts evaluate normally
// and the last fuses with the aggregate over the survivors.
func TestSpanEquivalenceFusedMultiConjunct(t *testing.T) {
	mk := func() *storage.Matrix {
		rng := rand.New(rand.NewSource(59))
		n := 50000
		v := make([]int64, n)
		a := make([]int64, n)
		for i := range v {
			v[i] = rng.Int63n(1000)
			a[i] = int64((i / 3000) % 4)
		}
		m, err := storage.NewMatrix("t",
			storage.NewIntColumn("v", v),
			storage.NewIntColumn("a", a),
		)
		if err != nil {
			panic(err)
		}
		return m
	}
	filters := []operator.Predicate{
		{Col: 1, Op: operator.Ne, Operand: storage.IntValue(2)},
		{Col: 0, Op: operator.Ge, Operand: storage.IntValue(250)},
	}
	p := newEquivPair(t, func(c *Config) { c.AdaptiveOpt = false })
	obj := p.addColumn(mk, 0, touchos.NewRect(2, 2, 2, 10))
	p.setActions(obj, Actions{Mode: ModeAggregate, Agg: operator.Avg, Filters: filters})
	p.slide(obj, 0, 1, 1600*time.Millisecond)
	p.slide(obj, 1, 0.1, 900*time.Millisecond)
	if fused := p.vector.Counters().Get("touch.fused"); fused == 0 {
		t.Fatal("vector kernel never took the fused multi-conjunct path")
	}
}

func TestSpanEquivalenceValueOrderFiltered(t *testing.T) {
	p := newEquivPair(t, nil)
	obj := p.addColumn(randInts(43, 30000, 1000), 0, touchos.NewRect(2, 2, 2, 10))
	filters := []operator.Predicate{{Col: 0, Op: operator.Lt, Operand: storage.IntValue(500)}}
	p.setActions(obj, Actions{Mode: ModeScan, ValueOrder: true, Filters: filters})
	p.slide(obj, 0, 1, 900*time.Millisecond)
	p.setActions(obj, Actions{Mode: ModeSummary, Agg: operator.Avg, SummaryK: 15, ValueOrder: true, Filters: filters})
	p.slide(obj, 1, 0, 900*time.Millisecond)
}
