package gateway_test

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dbtouch/internal/faultnet"
	"dbtouch/internal/gateway"
	"dbtouch/internal/protocol"
)

// The chaos equivalence suite: N concurrent sessions explore through
// the gateway while faultnet injects network faults and backends are
// killed, and every client-observed /rpc response must be
// byte-identical to an undisturbed single-backend control run. That is
// the tentpole claim — the fleet plus gateway is indistinguishable from
// one reliable server.
//
// Kills land between request waves (an in-process handler cannot be
// SIGKILLed mid-flight without leaving a zombie goroutine mutating
// state that a real dead process could not); the torn-mid-response
// crash is exercised instead by the CutAfter toxic, which resets the
// proxied connection mid-frame while the backend completes and logs the
// request — the lost-response case ReqID dedupe exists for.

const chaosStreamBuffer = 16384

// streamTap collects one /stream connection's NDJSON lines.
type streamTap struct {
	body  io.ReadCloser
	done  chan struct{}
	lines [][]byte
}

func attachStream(t *testing.T, base, session string) *streamTap {
	t.Helper()
	resp, err := http.Get(base + "/stream?session=" + session + "&buffer=" + strconv.Itoa(chaosStreamBuffer))
	if err != nil {
		t.Fatalf("stream attach %s: %v", session, err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream attach %s: %s", session, resp.Status)
	}
	st := &streamTap{body: resp.Body, done: make(chan struct{})}
	go func() {
		defer close(st.done)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			st.lines = append(st.lines, append([]byte(nil), sc.Bytes()...))
		}
	}()
	return st
}

// stop closes the tap and returns everything it saw (safe after close).
func (st *streamTap) stop() [][]byte {
	st.body.Close()
	<-st.done
	return st.lines
}

// runControl executes every session's script sequentially against one
// undisturbed backend, returning per-session response bodies and stream
// lines — the ground truth the chaos run must reproduce byte for byte.
func runControl(t *testing.T, scripts map[string][]protocol.Request) (map[string][][]byte, map[string][][]byte) {
	t.Helper()
	control := newTestBackend(t, t.TempDir(), 0)
	bodies := make(map[string][][]byte)
	lines := make(map[string][][]byte)
	for session, script := range scripts {
		var tap *streamTap
		for i, req := range script {
			_, body := rawPost(t, control.url(), encode(t, req))
			bodies[session] = append(bodies[session], body)
			if i == 1 { // open + create done: attach like the chaos run
				tap = attachStream(t, control.url(), session)
			}
		}
		time.Sleep(300 * time.Millisecond) // let trailing frames land
		lines[session] = tap.stop()
	}
	return bodies, lines
}

// chaosPost is rawPost without t.Fatal — wave workers run off the test
// goroutine.
func chaosPost(base string, body []byte) (int, []byte, error) {
	resp, err := http.Post(base+"/rpc", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// isSubsequence reports whether sub's lines appear in seq in order.
func isSubsequence(sub, seq [][]byte) bool {
	j := 0
	for _, line := range sub {
		for {
			if j >= len(seq) {
				return false
			}
			j++
			if bytes.Equal(seq[j-1], line) {
				break
			}
		}
	}
	return true
}

// chaosConfig parameterizes one equivalence run.
type chaosConfig struct {
	workers     int // backend scheduler pool (0 = GOMAXPROCS)
	sessions    int
	ops         int                                    // script length past open+create
	waveFault   func(w int, proxies []*faultnet.Proxy) // pre-wave fault injection
	waveKill    map[int]int                            // wave -> backend index to kill
	exactStream bool                                   // streams must match byte-for-byte
}

// runChaosEquivalence is the harness: 3 backends on one shared
// session-dir behind faultnet proxies, a gateway in front, N sessions
// advancing in lock-step waves while faults and kills land, then
// byte-comparison against the control run.
func runChaosEquivalence(t *testing.T, cfg chaosConfig) {
	t.Helper()
	scripts := make(map[string][]protocol.Request)
	for i := 0; i < cfg.sessions; i++ {
		id := fmt.Sprintf("chaos-%d", i)
		scripts[id] = sessionScript(id, cfg.ops)
	}
	wantBodies, wantLines := runControl(t, scripts)

	shared := t.TempDir()
	var backends []*testBackend
	var proxies []*faultnet.Proxy
	var fronts []string
	for i := 0; i < 3; i++ {
		b := newTestBackend(t, shared, cfg.workers)
		p, err := faultnet.New(strings.TrimPrefix(b.url(), "http://"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		backends = append(backends, b)
		proxies = append(proxies, p)
		fronts = append(fronts, "http://"+p.Addr())
	}
	opts := fastOpts(t, fronts...)
	opts.ProbeTimeout = 2 * time.Second
	g, gw := newGateway(t, opts)

	maxLen := 0
	for _, s := range scripts {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	gotBodies := make(map[string][][]byte)
	taps := make(map[string]*streamTap)
	type result struct {
		session string
		body    []byte
		err     error
	}
	for w := 0; w < maxLen; w++ {
		if cfg.waveFault != nil {
			cfg.waveFault(w, proxies)
		}
		if idx, ok := cfg.waveKill[w]; ok {
			t.Logf("wave %d: killing backend %d (%s)", w, idx, backends[idx].url())
			backends[idx].kill()
		}
		var wg sync.WaitGroup
		results := make(chan result, len(scripts))
		for session, script := range scripts {
			if w >= len(script) {
				continue
			}
			raw := encode(t, script[w])
			wg.Add(1)
			go func(session string, raw []byte) {
				defer wg.Done()
				_, body, err := chaosPost(gw, raw)
				results <- result{session, body, err}
			}(session, raw)
		}
		wg.Wait()
		close(results)
		for r := range results {
			if r.err != nil {
				t.Fatalf("wave %d, session %s: %v", w, r.session, r.err)
			}
			gotBodies[r.session] = append(gotBodies[r.session], r.body)
		}
		if w == 1 {
			for session := range scripts {
				taps[session] = attachStream(t, gw, session)
			}
		}
	}
	// Clear any lingering toxics so trailing stream frames drain fast.
	for _, p := range proxies {
		p.Set(faultnet.Toxics{})
	}
	time.Sleep(500 * time.Millisecond)

	for session, want := range wantBodies {
		got := gotBodies[session]
		if len(got) != len(want) {
			t.Fatalf("session %s: %d responses, control had %d", session, len(got), len(want))
		}
		// Waves append out of order across sessions but in order within
		// one; re-sort by wave is unnecessary — each session's bodies
		// were appended from its own sequential waves. They are ordered
		// per session because each wave drains before the next starts.
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("session %s request %d diverged under chaos:\n gateway: %s\n control: %s",
					session, i, got[i], want[i])
			}
		}
	}
	for session, tap := range taps {
		got := tap.stop()
		want := wantLines[session]
		if cfg.exactStream {
			if len(got) != len(want) {
				t.Fatalf("session %s stream: %d frames, control had %d", session, len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("session %s stream frame %d diverged:\n gateway: %s\n control: %s",
						session, i, got[i], want[i])
				}
			}
			continue
		}
		// Kills detach streams; frames emitted while detached are not
		// replayed (the StreamResumed contract). What must hold: every
		// relayed frame is genuine and in order — an ordered subsequence
		// of the control stream — and the stream kept working.
		if len(got) == 0 && len(want) > 0 {
			t.Fatalf("session %s stream relayed nothing (control had %d frames)", session, len(want))
		}
		if !isSubsequence(got, want) {
			t.Fatalf("session %s stream is not an ordered subsequence of the control stream (%d vs %d frames)",
				session, len(got), len(want))
		}
	}
	st := g.Stats()
	t.Logf("chaos run: failovers=%d resumes=%d replayed=%d retries=%d migrations=%d",
		st.Failovers, st.Resumes, st.ReplayedRequests, st.Retries, st.Migrations)
}

// TestChaosEquivalenceNetworkFaults: latency, jitter, tear and
// bandwidth toxics rotate across the backends mid-traffic. No
// connection ever dies, so even the streams must match the control run
// byte for byte.
func TestChaosEquivalenceNetworkFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long")
	}
	rng := rand.New(rand.NewSource(7))
	runChaosEquivalence(t, chaosConfig{
		sessions:    5,
		ops:         10,
		exactStream: true,
		waveFault: func(w int, proxies []*faultnet.Proxy) {
			for i, p := range proxies {
				if i == w%len(proxies) {
					switch rng.Intn(3) {
					case 0:
						p.Set(faultnet.Toxics{Latency: 10 * time.Millisecond, Jitter: 10 * time.Millisecond})
					case 1:
						p.Set(faultnet.Toxics{Tear: true})
					default:
						p.Set(faultnet.Toxics{BandwidthBPS: 512 << 10, Tear: true})
					}
				} else {
					p.Set(faultnet.Toxics{})
				}
			}
		},
	})
}

// TestChaosEquivalenceBackendKills: two of the three backends die
// mid-run, with connection resets and torn-mid-frame cuts sprinkled
// in. Every /rpc response must still match the control run exactly;
// streams must relay only genuine in-order frames across failovers.
func TestChaosEquivalenceBackendKills(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite is seconds-long")
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(workers)))
			runChaosEquivalence(t, chaosConfig{
				workers:  workers,
				sessions: 5,
				ops:      10,
				waveKill: map[int]int{4: 0, 8: 2},
				waveFault: func(w int, proxies []*faultnet.Proxy) {
					switch w {
					case 3:
						// Torn response mid-frame on a live backend: the
						// request executes and logs, the reply dies on the
						// wire, the gateway's retry dedupes.
						proxies[1].Set(faultnet.Toxics{CutAfter: 2048, Tear: true})
					case 5:
						proxies[1].Set(faultnet.Toxics{})
						proxies[1].ResetAll()
					case 6:
						proxies[rng.Intn(len(proxies))].Set(faultnet.Toxics{Latency: 15 * time.Millisecond})
					case 7:
						for _, p := range proxies {
							p.Set(faultnet.Toxics{})
						}
					}
				},
			})
		})
	}
}

// TestBreakerRecoveryViaProxy is the health-flap test: a backend dies
// at the TCP level (reset-on-dial), trips the breaker, then recovers.
// The breaker must go half-open and readmit it only after
// SuccessThreshold consecutive probe successes — and while half-open,
// client requests must never touch the backend (no thundering herd;
// the prober alone decides readmission).
func TestBreakerRecoveryViaProxy(t *testing.T) {
	backend := newTestBackend(t, t.TempDir(), 0)
	proxy, err := faultnet.New(strings.TrimPrefix(backend.url(), "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	front := "http://" + proxy.Addr()
	opts := gateway.Options{
		Backends:         []string{front},
		Retry:            protocol.Backoff{Base: 2 * time.Millisecond, Cap: 5 * time.Millisecond, Attempts: 1},
		RequestTimeout:   5 * time.Second,
		HealthInterval:   30 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		FailThreshold:    2,
		SuccessThreshold: 5, // stretches the half-open window for observation
		OpenCooldown:     100 * time.Millisecond,
		Logf:             t.Logf,
	}
	g, gw := newGateway(t, opts)
	waitFor(t, 5*time.Second, "initial ready", func() bool {
		return backendState(g, front).Ready
	})

	// The backend "dies": every new connection is reset.
	proxy.Set(faultnet.Toxics{ResetOnDial: true})
	proxy.ResetAll()
	waitFor(t, 5*time.Second, "breaker open", func() bool {
		return backendState(g, front).State == "open"
	})
	hitsAtOpen := backend.rpcHits.Load()
	if status, _ := rawPost(t, gw, encode(t, protocol.Request{Op: protocol.OpOpen, Session: "while-open"})); status != http.StatusServiceUnavailable {
		t.Fatalf("request against open breaker answered %d, want 503", status)
	}
	if got := backend.rpcHits.Load(); got != hitsAtOpen {
		t.Fatalf("open breaker leaked %d requests to the backend", got-hitsAtOpen)
	}

	// The backend recovers. The prober must walk open -> half-open ->
	// closed; requests sent during half-open stay excluded.
	proxy.Set(faultnet.Toxics{})
	sawHalfOpen := false
	waitFor(t, 10*time.Second, "half-open observed", func() bool {
		s := backendState(g, front).State
		sawHalfOpen = s == "half-open"
		return sawHalfOpen || s == "closed"
	})
	if sawHalfOpen {
		hits := backend.rpcHits.Load()
		sent := 0
		for backendState(g, front).State == "half-open" && sent < 20 {
			status, _ := rawPost(t, gw, encode(t, protocol.Request{Op: protocol.OpOpen, Session: "while-half-open"}))
			if status == http.StatusOK {
				// The breaker closed between the state check and the
				// request; the loop condition ends the probe-only phase.
				break
			}
			sent++
		}
		if sent > 0 && backend.rpcHits.Load() != hits {
			t.Fatalf("half-open breaker leaked %d client requests (probes alone decide readmission)",
				backend.rpcHits.Load()-hits)
		}
	}
	waitFor(t, 10*time.Second, "breaker closed after recovery", func() bool {
		return backendState(g, front).State == "closed"
	})
	status, body := rawPost(t, gw, encode(t, protocol.Request{Op: protocol.OpOpen, Session: "recovered"}))
	if status != http.StatusOK {
		t.Fatalf("request after recovery: %d %s", status, body)
	}
	if trips := backendState(g, front).Trips; trips == 0 {
		t.Fatal("recovery test recorded no breaker trip")
	}
	if probes := backendState(g, front).Probes; probes == 0 {
		t.Fatal("no probes counted")
	}
}
