package sample

import (
	"sort"
	"sync"
	"sync/atomic"

	"dbtouch/internal/storage"
)

// chainKey identifies one versioned sample chain within a table: the
// column index plus the hierarchy shape parameters. Sessions configured
// alike share one chain.
type chainKey struct {
	col      int
	levels   int
	blockLen int
}

// liveEntry is the per-table state of a LiveStore: the versioned chains
// and the refcounted pins holding versions alive.
type liveEntry struct {
	chains map[chainKey]*Versioned
	// pins refcounts readers per pinned epoch. A version stays cached in
	// the chains while any pin references it; Release prunes the caches
	// down to the still-pinned versions plus the current snapshot.
	pins map[uint64]*pinRef
}

type pinRef struct {
	refs int
	snap *storage.TableSnapshot
}

// LiveStore tracks snapshot pins and versioned sample chains for live
// tables — the shared, cross-session half of live ingestion. Kernels pin
// a snapshot per gesture batch; the store refcounts pinned versions so
// an LRU-evicted session releasing its pin can never invalidate a
// version a concurrent session still reads (the refcount, not session
// lifetime, decides when a cached version is pruned).
type LiveStore struct {
	mu     sync.Mutex
	tables map[*storage.Table]*liveEntry
}

// NewLiveStore returns an empty store.
func NewLiveStore() *LiveStore {
	return &LiveStore{tables: make(map[*storage.Table]*liveEntry)}
}

func (ls *LiveStore) entryLocked(t *storage.Table) *liveEntry {
	e, ok := ls.tables[t]
	if !ok {
		e = &liveEntry{chains: make(map[chainKey]*Versioned), pins: make(map[uint64]*pinRef)}
		ls.tables[t] = e
	}
	return e
}

// Pin takes a reference on t's current snapshot and returns the handle a
// reader uses for the whole gesture batch. Concurrent pinners of the
// same epoch share one refcounted snapshot.
func (ls *LiveStore) Pin(t *storage.Table) *Pinned {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	e := ls.entryLocked(t)
	snap := t.Snapshot()
	pr, ok := e.pins[snap.Epoch]
	if !ok {
		pr = &pinRef{snap: snap}
		e.pins[snap.Epoch] = pr
	}
	pr.refs++
	return &Pinned{store: ls, table: t, Snap: pr.snap}
}

// Pinned is one reader's reference to one published table version.
// Release is idempotent: double-release (e.g. eviction racing a normal
// batch-end release) decrements the shared refcount exactly once.
type Pinned struct {
	store    *LiveStore
	table    *storage.Table
	Snap     *storage.TableSnapshot
	released atomic.Bool
}

// Samples returns the Shared sample hierarchy for column col of the
// pinned version, built or extended incrementally by the table's
// versioned chain.
func (p *Pinned) Samples(col, levels, blockLen int) (*Shared, error) {
	if blockLen <= 0 {
		blockLen = 1024
	}
	ls := p.store
	ls.mu.Lock()
	e := ls.entryLocked(p.table)
	key := chainKey{col: col, levels: levels, blockLen: blockLen}
	chain, ok := e.chains[key]
	if !ok {
		chain = NewVersioned(levels, blockLen)
		e.chains[key] = chain
	}
	ls.mu.Unlock()
	base, err := p.Snap.Matrix.Column(col)
	if err != nil {
		return nil, err
	}
	return chain.ForSnapshot(p.Snap.Gen, base)
}

// Release drops the pin's reference and prunes chain caches down to the
// versions still pinned by someone plus the table's current snapshot.
func (p *Pinned) Release() {
	if !p.released.CompareAndSwap(false, true) {
		return
	}
	ls := p.store
	ls.mu.Lock()
	e := ls.tables[p.table]
	if e == nil {
		ls.mu.Unlock()
		return
	}
	if pr, ok := e.pins[p.Snap.Epoch]; ok {
		pr.refs--
		if pr.refs <= 0 {
			delete(e.pins, p.Snap.Epoch)
		}
	}
	keep := make(map[verKey]bool, len(e.pins)+1)
	for _, pr := range e.pins {
		keep[verKey{gen: pr.snap.Gen, rows: pr.snap.Rows}] = true
	}
	cur := p.table.Snapshot()
	keep[verKey{gen: cur.Gen, rows: cur.Rows}] = true
	chains := make([]*Versioned, 0, len(e.chains))
	for _, c := range e.chains {
		chains = append(chains, c)
	}
	ls.mu.Unlock()
	for _, c := range chains {
		c.prune(keep)
	}
}

// PinnedEpochs reports the epochs currently pinned on t, sorted — test
// and ops visibility into the pin lifecycle.
func (ls *LiveStore) PinnedEpochs(t *storage.Table) []uint64 {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	e := ls.tables[t]
	if e == nil {
		return nil
	}
	out := make([]uint64, 0, len(e.pins))
	for ep := range e.pins {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LiveStats summarizes the store for tests and operations: everything
// here must stay bounded in a long-running live session.
type LiveStats struct {
	Tables         int
	Pins           int
	Chains         int
	CachedVersions int
}

// Stats reports current store totals.
func (ls *LiveStore) Stats() LiveStats {
	ls.mu.Lock()
	var st LiveStats
	st.Tables = len(ls.tables)
	chains := make([]*Versioned, 0)
	for _, e := range ls.tables {
		for _, pr := range e.pins {
			st.Pins += pr.refs
		}
		st.Chains += len(e.chains)
		for _, c := range e.chains {
			chains = append(chains, c)
		}
	}
	ls.mu.Unlock()
	for _, c := range chains {
		st.CachedVersions += c.cachedVersions()
	}
	return st
}
