package core

import (
	"fmt"
	"time"

	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
)

// ResultKind classifies what a result carries.
type ResultKind uint8

// Result kinds.
const (
	// ScanValue is a raw cell revealed by a scan touch.
	ScanValue ResultKind = iota
	// AggregateValue is the current value of a running aggregate.
	AggregateValue
	// SummaryValue is one interactive summary (window aggregate).
	SummaryValue
	// TuplePeek is a full tuple revealed by tapping a table object
	// (schema discovery, paper §2.2).
	TuplePeek
	// GroupValue is a group's current aggregate after absorbing the
	// touched tuple.
	GroupValue
	// JoinMatches reports join pairs produced by the touched tuple.
	JoinMatches
)

// String names the kind.
func (k ResultKind) String() string {
	switch k {
	case ScanValue:
		return "scan"
	case AggregateValue:
		return "aggregate"
	case SummaryValue:
		return "summary"
	case TuplePeek:
		return "tuple"
	case GroupValue:
		return "group"
	case JoinMatches:
		return "join"
	default:
		return fmt.Sprintf("ResultKind(%d)", uint8(k))
	}
}

// Result is one answer popped up by one touch. Results appear in place at
// the touch location and fade away shortly after (paper §2.3 "Inspecting
// Results"); FadeAt records when the front-end should have faded it out.
type Result struct {
	Kind     ResultKind
	ObjectID int
	// TupleID is the base-data tuple the touch mapped to.
	TupleID int
	// Col is the attribute touched (table objects; 0 for columns).
	Col int
	// Value is the revealed cell (ScanValue) or a rendering of the
	// result for other kinds.
	Value storage.Value
	// Agg is the numeric answer for aggregate/summary/group results.
	Agg float64
	// WindowLo and WindowHi bound the entries a summary aggregated.
	WindowLo, WindowHi int
	// N is how many entries contributed (summaries, aggregates, groups).
	N int64
	// GroupKey is set for GroupValue results.
	GroupKey string
	// Matches carries join pairs for JoinMatches results.
	Matches []operator.JoinMatch
	// Tuple carries the full row for TuplePeek results.
	Tuple []storage.Value
	// Level is the sample level that served the touch (0 = base data).
	Level int
	// Time is the virtual instant the result was produced.
	Time time.Duration
	// FadeAt is when the result fades from the screen.
	FadeAt time.Duration
	// Latency is how long the kernel was busy producing this result.
	Latency time.Duration
}

// FadeAfter is how long a result stays visible before fading.
const FadeAfter = 1500 * time.Millisecond

// String renders the result for logs and the ASCII front-end.
func (r Result) String() string {
	switch r.Kind {
	case ScanValue:
		return fmt.Sprintf("[%d] %s", r.TupleID, r.Value)
	case AggregateValue:
		return fmt.Sprintf("[%d] agg=%.4g (n=%d)", r.TupleID, r.Agg, r.N)
	case SummaryValue:
		return fmt.Sprintf("[%d-%d] %.4g", r.WindowLo, r.WindowHi-1, r.Agg)
	case TuplePeek:
		return fmt.Sprintf("[%d] %v", r.TupleID, r.Tuple)
	case GroupValue:
		return fmt.Sprintf("%s=%.4g (n=%d)", r.GroupKey, r.Agg, r.N)
	case JoinMatches:
		return fmt.Sprintf("[%d] %d matches", r.TupleID, len(r.Matches))
	default:
		return fmt.Sprintf("result kind %d", r.Kind)
	}
}
