package script

import (
	"fmt"
	"strconv"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/protocol"
)

// Encode translates parsed script commands into versioned protocol
// requests driving the named session — the "record" half of
// record/replay over the wire. Every data-affecting command has a wire
// form; `render` is a local display command and is skipped. The encoding
// is lossless: replaying the requests through a session manager
// (Replay, or dbtouch-serve over HTTP) produces the same result stream
// as running the script directly (asserted by TestProtocolRoundTrip).
func Encode(commands []Command, session string) ([]protocol.Request, error) {
	var out []protocol.Request
	for _, c := range commands {
		reqs, err := encodeOne(c, session)
		if err != nil {
			return nil, fmt.Errorf("script line %d (%s): %w", c.Line, c.Op, err)
		}
		out = append(out, reqs...)
	}
	return out, nil
}

func encodeOne(c Command, session string) ([]protocol.Request, error) {
	one := func(r protocol.Request) []protocol.Request {
		r.V = protocol.Version
		r.Session = session
		return []protocol.Request{r}
	}
	configure := func(name string, spec protocol.ActionsSpec) []protocol.Request {
		return one(protocol.Request{Op: protocol.OpConfigure, Object: name, Actions: &spec})
	}
	perform := func(name string, g gesture.Gesture) []protocol.Request {
		return one(protocol.Request{Op: protocol.OpPerform, Object: name, Gesture: &g})
	}
	switch c.Op {
	case "column":
		if len(c.Args) != 7 {
			return nil, fmt.Errorf("want NAME TABLE COL X Y W H, got %d args", len(c.Args))
		}
		geo, err := floats(c.Args[3:7])
		if err != nil {
			return nil, err
		}
		return one(protocol.Request{Op: protocol.OpCreate, Object: c.Args[0], Create: &protocol.CreateSpec{
			Table: c.Args[1], Column: c.Args[2], X: geo[0], Y: geo[1], W: geo[2], H: geo[3],
		}}), nil
	case "table":
		if len(c.Args) != 6 {
			return nil, fmt.Errorf("want NAME TABLE X Y W H, got %d args", len(c.Args))
		}
		geo, err := floats(c.Args[2:6])
		if err != nil {
			return nil, err
		}
		return one(protocol.Request{Op: protocol.OpCreate, Object: c.Args[0], Create: &protocol.CreateSpec{
			Table: c.Args[1], X: geo[0], Y: geo[1], W: geo[2], H: geo[3],
		}}), nil
	case "scan":
		if len(c.Args) != 1 {
			return nil, fmt.Errorf("want NAME")
		}
		return configure(c.Args[0], protocol.ActionsSpec{Mode: "scan"}), nil
	case "aggregate":
		if len(c.Args) != 2 {
			return nil, fmt.Errorf("want NAME AGG")
		}
		if _, err := parseAgg(c.Args[1]); err != nil {
			return nil, err
		}
		return configure(c.Args[0], protocol.ActionsSpec{Mode: "aggregate", Agg: c.Args[1]}), nil
	case "summarize":
		if len(c.Args) != 3 {
			return nil, fmt.Errorf("want NAME AGG K")
		}
		if _, err := parseAgg(c.Args[1]); err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(c.Args[2])
		if err != nil || k < 0 {
			return nil, fmt.Errorf("bad k %q", c.Args[2])
		}
		return configure(c.Args[0], protocol.ActionsSpec{Mode: "summary", Agg: c.Args[1], K: &k}), nil
	case "where":
		if len(c.Args) != 4 {
			return nil, fmt.Errorf("want NAME COL OP VALUE")
		}
		var value any = c.Args[3]
		if f, err := strconv.ParseFloat(c.Args[3], 64); err == nil {
			value = f
		}
		return configure(c.Args[0], protocol.ActionsSpec{Where: []protocol.FilterSpec{
			{Column: c.Args[1], Op: c.Args[2], Value: value},
		}}), nil
	case "valueorder":
		if len(c.Args) != 2 {
			return nil, fmt.Errorf("want NAME on|off")
		}
		on, err := parseOnOff(c.Args[1])
		if err != nil {
			return nil, err
		}
		return configure(c.Args[0], protocol.ActionsSpec{ValueOrder: &on}), nil
	case "slide":
		if len(c.Args) != 2 && len(c.Args) != 4 {
			return nil, fmt.Errorf("want NAME DUR [FROM TO], got %d args", len(c.Args))
		}
		dur, err := time.ParseDuration(c.Args[1])
		if err != nil {
			return nil, fmt.Errorf("bad duration %q", c.Args[1])
		}
		from, to := 0.0, 1.0
		if len(c.Args) == 4 {
			fs, err := floats(c.Args[2:4])
			if err != nil {
				return nil, err
			}
			from, to = fs[0], fs[1]
		}
		return perform(c.Args[0], gesture.NewSlide(0, from, to, dur)), nil
	case "tap":
		if len(c.Args) != 2 {
			return nil, fmt.Errorf("want NAME FRAC")
		}
		frac, err := strconv.ParseFloat(c.Args[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad fraction %q", c.Args[1])
		}
		return perform(c.Args[0], gesture.NewTap(0, frac)), nil
	case "zoomin", "zoomout":
		if len(c.Args) != 2 {
			return nil, fmt.Errorf("want NAME FACTOR")
		}
		factor, err := strconv.ParseFloat(c.Args[1], 64)
		if err != nil || factor <= 0 {
			return nil, fmt.Errorf("bad factor %q", c.Args[1])
		}
		if c.Op == "zoomout" {
			factor = 1 / factor
		}
		return perform(c.Args[0], gesture.NewZoom(0, factor)), nil
	case "rotate":
		if len(c.Args) != 1 {
			return nil, fmt.Errorf("want NAME")
		}
		return perform(c.Args[0], gesture.NewRotateQuarter(0)), nil
	case "moveto":
		if len(c.Args) != 3 {
			return nil, fmt.Errorf("want NAME X Y")
		}
		xy, err := floats(c.Args[1:3])
		if err != nil {
			return nil, err
		}
		return perform(c.Args[0], gesture.NewMove(0, xy[0], xy[1])), nil
	case "pin":
		if len(c.Args) != 6 {
			return nil, fmt.Errorf("want NAME NEW X Y W H, got %d args", len(c.Args))
		}
		geo, err := floats(c.Args[2:6])
		if err != nil {
			return nil, err
		}
		return one(protocol.Request{Op: protocol.OpPin, Object: c.Args[0], As: c.Args[1], Create: &protocol.CreateSpec{
			X: geo[0], Y: geo[1], W: geo[2], H: geo[3],
		}}), nil
	case "idle":
		if len(c.Args) != 1 {
			return nil, fmt.Errorf("want DUR")
		}
		dur, err := time.ParseDuration(c.Args[0])
		if err != nil {
			return nil, fmt.Errorf("bad duration %q", c.Args[0])
		}
		return one(protocol.Request{Op: protocol.OpIdle, Idle: dur}), nil
	case "render":
		// Local display only; nothing travels.
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown command %q", c.Op)
	}
}

// Replay routes encoded requests through a protocol router (typically a
// session.Manager, local or behind HTTP glue), collecting the frames
// that perform requests produce — the "replay" half of record/replay.
// The session must already be open; replay stops at the first failed
// response.
func Replay(router protocol.Router, reqs []protocol.Request) ([]protocol.ResultFrame, error) {
	var frames []protocol.ResultFrame
	for i, req := range reqs {
		resp := router.HandleRequest(req)
		if !resp.OK {
			return frames, fmt.Errorf("script: replaying request %d (%s): %s", i, req.Op, resp.Error)
		}
		frames = append(frames, resp.Results...)
	}
	return frames, nil
}

func parseOnOff(s string) (bool, error) {
	switch s {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	default:
		return false, fmt.Errorf("bad toggle %q (want on|off)", s)
	}
}
