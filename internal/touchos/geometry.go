// Package touchos simulates the touch operating-system layer the dbTouch
// prototype builds on (paper §2.4 "Object Views" and Figure 3). It
// provides a view hierarchy with hit testing, touch events carrying
// virtual timestamps, and an event dispatcher that coalesces move events
// while the kernel is busy — the iOS behaviour responsible for "a faster
// slide results in fewer tuples processed".
package touchos

import "math"

// Point is a screen location in centimeters. Physical units keep the
// touch-granularity math identical to the paper's (object heights are
// quoted in centimeters).
type Point struct {
	X, Y float64
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Size is a width/height extent in centimeters.
type Size struct {
	W, H float64
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	Origin Point
	Size   Size
}

// NewRect builds a rectangle from origin and extent.
func NewRect(x, y, w, h float64) Rect {
	return Rect{Origin: Point{x, y}, Size: Size{w, h}}
}

// Contains reports whether p lies inside r (inclusive of the top/left
// edge, exclusive of bottom/right, matching pixel hit-test semantics).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Origin.X && p.X < r.Origin.X+r.Size.W &&
		p.Y >= r.Origin.Y && p.Y < r.Origin.Y+r.Size.H
}

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{r.Origin.X + r.Size.W/2, r.Origin.Y + r.Size.H/2}
}

// ScaledAbout returns r scaled by factor around its center — the geometry
// of a pinch zoom gesture.
func (r Rect) ScaledAbout(factor float64) Rect {
	c := r.Center()
	w, h := r.Size.W*factor, r.Size.H*factor
	return Rect{Origin: Point{c.X - w/2, c.Y - h/2}, Size: Size{w, h}}
}
