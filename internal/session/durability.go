package session

import (
	"errors"
	"fmt"
	"sync/atomic"

	"dbtouch/internal/protocol"
	"dbtouch/internal/sessionlog"
	"dbtouch/internal/storage"
)

// Session durability: with a sessionlog.Store attached, the manager
// tees every successfully executed wire request into a per-session
// append-only log (and OpAppends into per-table logs), compacts logs
// into checkpoints past the store's threshold, and serves OpResume by
// replaying checkpoint + tail through the same routing the original
// requests took. Because sessions are deterministic over their virtual
// clocks, a replayed session lands bit-identical to one that never
// died — the crash-point equivalence suite pins exactly that.
//
// Ordering contract: for each session (and each table), the store's
// per-id locker is held across execute + append, so the log order is
// the execution order. Only requests that executed successfully are
// logged — a rejected or overloaded request changed no state, and
// overload outcomes depend on concurrent load, which replay must not
// re-litigate. Requests arriving for a session mid-resume serialize
// behind the same locker and run after the replay completes.

// durability bundles the manager's session-persistence state; the
// manager holds it behind an atomic pointer so the disabled path costs
// one load.
type durability struct {
	store    *sessionlog.Store
	logged   atomic.Int64
	logErrs  atomic.Int64
	resumes  atomic.Int64
	replayed atomic.Int64
}

// EnableDurability attaches a session-log store: from now on every
// executed wire request is teed into it and OpResume is served from it.
// Enable before serving traffic; the store's retention protects live
// sessions automatically. The manager does not own the store — the
// caller (dbtouch-serve) closes it on shutdown.
func (m *Manager) EnableDurability(store *sessionlog.Store) {
	store.SetProtect(func(id string) bool {
		_, ok := m.Get(id)
		return ok
	})
	m.dur.Store(&durability{store: store})
}

// durability returns the attached state, nil when disabled.
func (m *Manager) durability() *durability { return m.dur.Load() }

// DurabilityEnabled reports whether a session-log store is attached.
func (m *Manager) DurabilityEnabled() bool { return m.durability() != nil }

// loggableOp lists the session-scoped ops that mutate session state and
// therefore replay on resume. OpEvict is session-scoped too but removes
// the log instead of appending to it; OpStats/OpAppend are not
// session-scoped.
func loggableOp(op string) bool {
	switch op {
	case protocol.OpOpen, protocol.OpCreate, protocol.OpConfigure,
		protocol.OpPerform, protocol.OpIdle, protocol.OpPin:
		return true
	}
	return false
}

// serveRequest is HandleRequest's routing core, wrapped in the
// exactly-once cache: a session-scoped mutating request carrying a
// ReqID that matches the session's most recent one is answered from
// the cached response without re-executing. That is what makes lost
// responses safe to retry through a proxy — whether the original
// request executed (response torn off the wire) or never arrived, the
// retry converges on one execution and one byte-identical answer. The
// check is advisory outside the durability locker: callers that need
// the guarantee (the gateway) serialize a session's requests
// themselves, which wire clients do anyway by construction.
func (m *Manager) serveRequest(req protocol.Request) protocol.Response {
	dedupe := req.ReqID != "" && req.Session != "" && loggableOp(req.Op)
	if dedupe {
		if s, ok := m.Get(req.Session); ok {
			if resp, hit := s.cachedResponse(req.ReqID); hit {
				return resp
			}
		}
	}
	resp := m.dispatchRequest(req)
	if dedupe && resp.OK {
		if s, ok := m.Get(req.Session); ok {
			s.cacheResponse(req.ReqID, resp)
		}
	}
	return resp
}

// cachedResponse answers a retry of the session's last mutating
// request from the exactly-once cache.
func (s *Session) cachedResponse(reqID string) (protocol.Response, bool) {
	s.dedupeMu.Lock()
	defer s.dedupeMu.Unlock()
	if s.lastReqID == "" || s.lastReqID != reqID {
		return protocol.Response{}, false
	}
	return s.lastResp, true
}

// cacheResponse records the session's last executed mutating request.
func (s *Session) cacheResponse(reqID string, resp protocol.Response) {
	s.dedupeMu.Lock()
	s.lastReqID, s.lastResp = reqID, resp
	s.dedupeMu.Unlock()
}

// dispatchRequest routes one non-duplicate request: with durability
// disabled it is routeRequest; with it enabled, session- and
// table-scoped requests execute and tee under the per-id locker.
func (m *Manager) dispatchRequest(req protocol.Request) protocol.Response {
	d := m.durability()
	if d == nil {
		if req.Op == protocol.OpResume {
			return protocol.Errorf("resume: session durability is not enabled on this server")
		}
		return m.routeRequest(req)
	}
	switch {
	case req.Op == protocol.OpResume:
		return m.handleResume(req)
	case req.Op == protocol.OpAppend && req.Table != "":
		lk := d.store.TableLocker(req.Table)
		lk.Lock()
		defer lk.Unlock()
		resp := m.routeRequest(req)
		if resp.OK {
			d.logAppend(m, req)
		}
		return resp
	case req.Session != "" && (loggableOp(req.Op) || req.Op == protocol.OpEvict):
		lk := d.store.SessionLocker(req.Session)
		lk.Lock()
		defer lk.Unlock()
		resp := m.routeRequest(req)
		if !resp.OK {
			return resp
		}
		switch req.Op {
		case protocol.OpEvict:
			// A wire evict is the user abandoning the session: forget the
			// log (LRU eviction, by contrast, only parks it — see
			// Manager.parkLog).
			d.store.RemoveSession(req.Session)
		case protocol.OpOpen:
			// A successful open means the id was free, so any on-disk
			// history belongs to a dead predecessor: reset it.
			d.store.RemoveSession(req.Session)
			d.logRequest(m, req)
		default:
			d.logRequest(m, req)
		}
		return resp
	}
	return m.routeRequest(req)
}

// logRequest appends one executed request to the session's log and
// compacts past the threshold. Logging failures (disk full, damaged
// log) degrade availability-first: the request already executed and is
// answered OK; the failure is counted in the LogErrors gauge and the
// session simply stops being crash-consistent until appends succeed
// again.
func (d *durability) logRequest(m *Manager, req protocol.Request) {
	payload, err := protocol.EncodeRequest(req)
	if err != nil {
		d.logErrs.Add(1)
		return
	}
	tail, err := d.store.AppendSession(req.Session, payload)
	if err != nil {
		d.logErrs.Add(1)
		return
	}
	d.logged.Add(1)
	if tail >= d.store.CompactBytes() {
		if err := m.compactSession(d, req.Session); err != nil {
			d.logErrs.Add(1)
		}
	}
}

// compactSession folds the session's log into a checkpoint, stamping
// advisory metadata (virtual clock, object bindings, pinned epochs)
// from the live session. Caller holds the session's locker, so the
// kernel is quiescent on the wire path.
func (m *Manager) compactSession(d *durability, id string) error {
	var meta sessionlog.CheckpointMeta
	if s, ok := m.Get(id); ok {
		meta = s.checkpointMeta()
	}
	return d.store.CompactSession(id, meta)
}

// checkpointMeta snapshots the advisory checkpoint fields. runMu keeps
// the kernel reads serialized against any in-flight synchronous batch.
func (s *Session) checkpointMeta() sessionlog.CheckpointMeta {
	var meta sessionlog.CheckpointMeta
	s.runMu.Lock()
	meta.VClockNS = int64(s.kernel.Clock().Now())
	meta.Epochs = s.kernel.PinnedEpochs()
	s.runMu.Unlock()
	s.objMu.Lock()
	if len(s.objNames) > 0 {
		meta.Objects = make(map[string]int, len(s.objNames))
		for name, id := range s.objNames {
			meta.Objects[name] = id
		}
	}
	s.objMu.Unlock()
	return meta
}

// logAppend tees one executed table append; past 4x the session
// threshold the table log is compacted into a single whole-table
// append request (coarser than a session checkpoint: replacing N
// batches with one trades away intermediate epochs, which only matters
// to forensics — restored sessions pin fresh epochs anyway).
func (d *durability) logAppend(m *Manager, req protocol.Request) {
	payload, err := protocol.EncodeRequest(req)
	if err != nil {
		d.logErrs.Add(1)
		return
	}
	tail, err := d.store.AppendTable(req.Table, payload)
	if err != nil {
		d.logErrs.Add(1)
		return
	}
	d.logged.Add(1)
	if tail >= 4*d.store.CompactBytes() {
		if err := m.compactTable(d, req.Table); err != nil {
			d.logErrs.Add(1)
		}
	}
}

// compactTable rewrites a table's log as one append request carrying
// the table's current published snapshot. Caller holds the table's
// locker, so no append races the snapshot read.
func (m *Manager) compactTable(d *durability, name string) error {
	t, ok := m.catalog.Live(name)
	if !ok {
		return fmt.Errorf("session: no live table %q to compact", name)
	}
	snap := t.Snapshot()
	rows := make([][]any, snap.Rows)
	for r := 0; r < snap.Rows; r++ {
		row := make([]any, snap.Matrix.NumCols())
		for c := range row {
			v, err := snap.Matrix.At(r, c)
			if err != nil {
				return err
			}
			row[c] = valueToAny(v)
		}
		rows[r] = row
	}
	payload, err := protocol.EncodeRequest(protocol.Request{
		Op: protocol.OpAppend, Table: name, Rows: rows,
	})
	if err != nil {
		return err
	}
	return d.store.CompactTable(name, payload)
}

// valueToAny renders a storage value as its JSON-append form — the
// inverse of protocol.CoerceValue up to JSON number typing (restored
// appends coerce exactly like the original wire appends did).
func valueToAny(v storage.Value) any {
	switch v.Type {
	case storage.Int64:
		return v.I
	case storage.Float64:
		return v.F
	case storage.Bool:
		return v.B
	default:
		return v.S
	}
}

// Resume re-materializes session id from its persisted log, replaying
// checkpoint + tail through the normal request routing. It returns how
// many requests were replayed. Resuming a live session is a no-op
// (0, nil); concurrent resumes of the same id serialize on the
// session's locker and the losers see the winner's live session. A log
// damaged beyond its torn tail surfaces sessionlog.ErrTornLog; a
// session with no log surfaces sessionlog.ErrNoLog.
func (m *Manager) Resume(id string) (replayed int, err error) {
	d := m.durability()
	if d == nil {
		return 0, errors.New("session: durability is not enabled")
	}
	if id == "" {
		return 0, errors.New("session: resume needs a session id")
	}
	lk := d.store.SessionLocker(id)
	lk.Lock()
	defer lk.Unlock()
	if _, ok := m.Get(id); ok {
		return 0, nil
	}
	rep, err := d.store.LoadSession(id)
	if err != nil {
		return 0, fmt.Errorf("session: resume %q: %w", id, err)
	}
	for _, fr := range rep.Frames {
		req, derr := protocol.DecodeRequest(fr.Payload)
		if derr != nil {
			m.Evict(id)
			return replayed, fmt.Errorf("session: resume %q: frame %d: %w", id, fr.Seq, derr)
		}
		resp := m.replayRequest(req)
		if !resp.OK {
			// The log says this request succeeded once; if it cannot
			// succeed again the replay would land in a different state —
			// tear the partial session down rather than serve it.
			m.Evict(id)
			return replayed, fmt.Errorf("session: resume %q: replaying %s (frame %d): %s",
				id, req.Op, fr.Seq, resp.Error)
		}
		replayed++
		// Repopulate the exactly-once cache: if the crash tore off the
		// response of the log's final request, the client's retry of it
		// (same ReqID) must see the replayed — deterministically
		// identical — response instead of executing twice.
		if req.ReqID != "" {
			if s, ok := m.Get(id); ok {
				s.cacheResponse(req.ReqID, resp)
			}
		}
	}
	d.resumes.Add(1)
	d.replayed.Add(int64(replayed))
	return replayed, nil
}

// replayRequest routes one logged request during resume: identical to
// routeRequest except the global backlog gate on performs is skipped —
// the request was admitted and executed once already, and rejecting it
// now would fail the whole resume over a transient load spike.
func (m *Manager) replayRequest(req protocol.Request) protocol.Response {
	if req.Op == protocol.OpPerform {
		s, ok := m.Get(req.Session)
		if !ok {
			return protocol.Errorf("perform: session %q not found", req.Session)
		}
		return s.handlePerform(req)
	}
	return m.routeRequest(req)
}

// handleResume serves the wire OpResume.
func (m *Manager) handleResume(req protocol.Request) protocol.Response {
	if req.Session == "" {
		return protocol.Errorf("resume: missing session id")
	}
	n, err := m.Resume(req.Session)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			return protocol.Overloadedf("resume: %v", err)
		}
		resp := protocol.Errorf("resume: %v", err)
		// No log at all means the session is unrecoverable — tell the
		// client it is gone for good rather than inviting retries.
		resp.Gone = errors.Is(err, sessionlog.ErrNoLog)
		return resp
	}
	resp := protocol.OK()
	resp.Replayed = n
	return resp
}

// parkLog closes a session's cached log appender while keeping its
// files: LRU eviction and manager shutdown write through to disk (the
// log is already durable per-request) and leave the session resumable.
func (m *Manager) parkLog(id string) {
	if d := m.durability(); d != nil {
		d.store.Park(id)
	}
}

// RestoreTables replays persisted table logs into the catalog's live
// tables — dbtouch-serve calls it at startup, after registering the
// tables and before installing append rate limits, so restored rows are
// not throttled or re-logged. Returns how many tables and rows were
// restored.
func (m *Manager) RestoreTables() (tables, rows int, err error) {
	d := m.durability()
	if d == nil {
		return 0, 0, errors.New("session: durability is not enabled")
	}
	for _, name := range d.store.Tables() {
		rep, err := d.store.LoadTable(name)
		if err != nil {
			return tables, rows, fmt.Errorf("session: restoring table %q: %w", name, err)
		}
		for _, fr := range rep.Frames {
			req, derr := protocol.DecodeRequest(fr.Payload)
			if derr != nil {
				return tables, rows, fmt.Errorf("session: restoring table %q: frame %d: %w", name, fr.Seq, derr)
			}
			if resp := m.routeRequest(req); !resp.OK {
				return tables, rows, fmt.Errorf("session: restoring table %q: frame %d: %s", name, fr.Seq, resp.Error)
			}
			rows += len(req.Rows)
		}
		tables++
	}
	return tables, rows, nil
}

// ResumableSessions lists the session ids with persisted logs (live or
// parked), sorted — what an operator can still resume.
func (m *Manager) ResumableSessions() []string {
	d := m.durability()
	if d == nil {
		return nil
	}
	return d.store.Sessions()
}
