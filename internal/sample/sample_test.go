package sample

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

func buildHierarchy(t *testing.T, n, levels int) (*Hierarchy, *vclock.Clock) {
	t.Helper()
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	clock := vclock.New()
	h, err := Build(storage.NewIntColumn("v", vals), levels, clock, iomodel.DefaultParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return h, clock
}

func TestBuildLevels(t *testing.T) {
	h, _ := buildHierarchy(t, 1024, 3)
	if h.NumLevels() != 4 {
		t.Fatalf("levels = %d, want 4 (base + 3)", h.NumLevels())
	}
	for i := 0; i < h.NumLevels(); i++ {
		l, err := h.Level(i)
		if err != nil {
			t.Fatal(err)
		}
		if l.Stride != 1<<i {
			t.Fatalf("level %d stride = %d", i, l.Stride)
		}
		wantLen := 1024 >> i
		if l.Col.Len() != wantLen {
			t.Fatalf("level %d len = %d, want %d", i, l.Col.Len(), wantLen)
		}
	}
}

func TestBuildStopsAtMinLen(t *testing.T) {
	h, _ := buildHierarchy(t, 200, 20)
	// 200 → 100 → stop (next would be 50 < 64 after the check prev/2 < 64).
	if h.NumLevels() > 3 {
		t.Fatalf("levels = %d; hierarchy should stop shrinking near 64 entries", h.NumLevels())
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	clock := vclock.New()
	if _, err := Build(storage.NewIntColumn("v", nil), 3, clock, iomodel.DefaultParams(), nil); err == nil {
		t.Fatal("empty base should error")
	}
	if _, err := Build(nil, 3, clock, iomodel.DefaultParams(), nil); err == nil {
		t.Fatal("nil base should error")
	}
}

// Property: a sample value at any level equals the base value at the
// represented position (strided sampling, not aggregation).
func TestLevelValueConsistency(t *testing.T) {
	h, _ := buildHierarchy(t, 4096, 6)
	f := func(baseIDRaw uint16, levelRaw uint8) bool {
		level := int(levelRaw) % h.NumLevels()
		baseID := int(baseIDRaw) % 4096
		v, repID, err := h.ValueAt(baseID, level)
		if err != nil {
			return false
		}
		// The represented id must be the stride-aligned neighbor.
		l, _ := h.Level(level)
		if repID != (baseID/l.Stride)*l.Stride {
			return false
		}
		return v == float64(repID) // data is identity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScanAtTyped(t *testing.T) {
	h, _ := buildHierarchy(t, 256, 2)
	v, rep, err := h.ScanAt(130, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep != 130 || v.I != 130 {
		t.Fatalf("ScanAt = %v at %d", v, rep)
	}
	v, rep, err = h.ScanAt(131, 1) // stride 2: snaps to 130
	if err != nil {
		t.Fatal(err)
	}
	if rep != 130 || v.I != 130 {
		t.Fatalf("snapped ScanAt = %v at %d", v, rep)
	}
}

func TestSelectLevelSlowGestureUsesBase(t *testing.T) {
	h, _ := buildHierarchy(t, 1<<14, 10)
	// Tiny gap: expected inter-touch movement under one tuple.
	level := h.SelectLevel(1000, 0.001, time.Millisecond)
	if level != 0 {
		t.Fatalf("slow gesture level = %d, want 0", level)
	}
}

func TestSelectLevelFastGestureUsesCoarse(t *testing.T) {
	h, _ := buildHierarchy(t, 1<<20, 12)
	// 10cm object, 10cm/s, 60ms between touches: gap ≈ 1M*0.6/10 = 63k
	// tuples → level ≈ 15, clamped to max.
	level := h.SelectLevel(10, 10, 60*time.Millisecond)
	if level != h.NumLevels()-1 {
		t.Fatalf("fast gesture level = %d, want max %d", level, h.NumLevels()-1)
	}
}

func TestSelectLevelMonotoneInSpeed(t *testing.T) {
	h, _ := buildHierarchy(t, 1<<20, 12)
	prev := -1
	for _, speed := range []float64{0.01, 0.1, 1, 10, 100} {
		level := h.SelectLevel(10, speed, 60*time.Millisecond)
		if level < prev {
			t.Fatalf("level decreased with speed: %d after %d", level, prev)
		}
		prev = level
	}
}

func TestSelectLevelDegenerateInputs(t *testing.T) {
	h, _ := buildHierarchy(t, 1024, 4)
	if h.SelectLevel(0, 1, time.Millisecond) != 0 {
		t.Fatal("zero extent should select base")
	}
	if h.SelectLevel(10, 0, time.Millisecond) != 0 {
		t.Fatal("zero speed should select base")
	}
	if h.SelectLevel(10, 1, 0) != 0 {
		t.Fatal("zero inter-touch should select base")
	}
}

func TestSelectLevelForGap(t *testing.T) {
	h, _ := buildHierarchy(t, 1024, 4)
	cases := []struct {
		gap  float64
		want int
	}{
		{0, 0},
		{0.5, 0},
		{1, 0},
		{2, 1},
		{3, 1},
		{4, 2},
		{1 << 30, h.NumLevels() - 1}, // clamped to the coarsest level
		{math.NaN(), 0},
		{math.Inf(1), h.NumLevels() - 1},
	}
	for _, tc := range cases {
		if got := h.SelectLevelForGap(tc.gap); got != tc.want {
			t.Fatalf("SelectLevelForGap(%v) = %d, want %d", tc.gap, got, tc.want)
		}
	}
	// The geometric form must agree with the gap form on its own gap.
	rows := 1 << 20
	h2, _ := buildHierarchy(t, rows, 12)
	extent, speed, it := 10.0, 2.0, 60*time.Millisecond
	gap := float64(rows) * speed * it.Seconds() / extent
	if a, b := h2.SelectLevel(extent, speed, it), h2.SelectLevelForGap(gap); a != b {
		t.Fatalf("SelectLevel = %d, SelectLevelForGap = %d for the same gap", a, b)
	}
}

func TestWindowAgg(t *testing.T) {
	h, _ := buildHierarchy(t, 1024, 4)
	sum, n, min, max, err := h.WindowAgg(10, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || min != 10 || max != 19 || sum != 145 {
		t.Fatalf("window agg = sum %v n %d min %v max %v", sum, n, min, max)
	}
	// At level 2 (stride 4) the same window covers entries 8..20 step 4.
	sum, n, _, _, err = h.WindowAgg(10, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || sum != 8+12+16 {
		t.Fatalf("level-2 window = sum %v n %d", sum, n)
	}
}

func TestWindowAggChargesOnlyTouchedLevel(t *testing.T) {
	h, _ := buildHierarchy(t, 1024, 4)
	_, _, _, _, err := h.WindowAgg(0, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	l0, _ := h.Level(0)
	l3, _ := h.Level(3)
	if l0.Tracker.Stats().ValuesRead != 0 {
		t.Fatal("base level charged for a level-3 read")
	}
	if l3.Tracker.Stats().ValuesRead == 0 {
		t.Fatal("level 3 not charged")
	}
}

func TestPromote(t *testing.T) {
	h, clock := buildHierarchy(t, 1024, 2)
	col, err := h.Promote(100, 200, clock, iomodel.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 100 || col.Int(0) != 100 {
		t.Fatalf("promoted region = len %d first %d", col.Len(), col.Int(0))
	}
	if _, err := h.Promote(200, 100, clock, iomodel.DefaultParams()); err == nil {
		t.Fatal("inverted promote range should error")
	}
}

func TestTotalStatsAndCool(t *testing.T) {
	h, _ := buildHierarchy(t, 1024, 2)
	h.ValueAt(5, 0)
	h.ValueAt(5, 1)
	st := h.TotalStats()
	if st.ValuesRead != 2 {
		t.Fatalf("total values read = %d", st.ValuesRead)
	}
	h.ResetStats()
	if h.TotalStats().ValuesRead != 0 {
		t.Fatal("ResetStats incomplete")
	}
	h.Cool()
	l0, _ := h.Level(0)
	if l0.Tracker.WarmBlocks() != 0 {
		t.Fatal("Cool incomplete")
	}
}

func TestBaseLen(t *testing.T) {
	h, _ := buildHierarchy(t, 1000, 2)
	l1, _ := h.Level(1)
	if l1.BaseLen() != 1000 {
		t.Fatalf("BaseLen = %d", l1.BaseLen())
	}
}

func TestSpanAggMatchesWindowAgg(t *testing.T) {
	// The vectorized span read must match the scalar window loop in
	// values, stats, and virtual cost on integer data.
	mk := func() (*Hierarchy, *vclock.Clock) {
		vals := make([]int64, 5000)
		for i := range vals {
			vals[i] = int64((i*2654435761 + 17) % 1000)
		}
		clock := vclock.New()
		params := iomodel.Params{BlockValues: 64, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond}
		h, err := Build(storage.NewIntColumn("v", vals), 4, clock, params, nil)
		if err != nil {
			t.Fatal(err)
		}
		return h, clock
	}
	scalarH, scalarClock := mk()
	spanH, spanClock := mk()
	ranges := [][2]int{{0, 5000}, {10, 11}, {100, 612}, {4990, 5600}, {-5, 40}, {70, 70}}
	for level := 0; level < scalarH.NumLevels(); level++ {
		for _, r := range ranges {
			sSum, sN, sMin, sMax, sErr := scalarH.WindowAgg(r[0], r[1], level)
			vSum, vN, vMin, vMax, vErr := spanH.SpanAgg(r[0], r[1], level)
			if (sErr == nil) != (vErr == nil) {
				t.Fatalf("level %d range %v: err %v vs %v", level, r, sErr, vErr)
			}
			if sSum != vSum || sN != vN || sMin != vMin || sMax != vMax {
				t.Fatalf("level %d range %v: scalar (%v,%d,%v,%v) span (%v,%d,%v,%v)",
					level, r, sSum, sN, sMin, sMax, vSum, vN, vMin, vMax)
			}
		}
	}
	if scalarClock.Now() != spanClock.Now() {
		t.Fatalf("virtual cost diverged: scalar %v span %v", scalarClock.Now(), spanClock.Now())
	}
	for level := 0; level < scalarH.NumLevels(); level++ {
		sl, _ := scalarH.Level(level)
		vl, _ := spanH.Level(level)
		if sl.Tracker.Stats() != vl.Tracker.Stats() {
			t.Fatalf("level %d stats diverged: %+v vs %+v", level, sl.Tracker.Stats(), vl.Tracker.Stats())
		}
	}
}

func TestSpanEntriesEmptyAndClamped(t *testing.T) {
	h, _ := buildHierarchy(t, 256, 1)
	sum, n, _, _, err := h.SpanEntries(40, 40, 0)
	if err != nil || n != 0 || sum != 0 {
		t.Fatalf("empty span = %v,%d,%v", sum, n, err)
	}
	if _, _, _, _, err := h.SpanEntries(0, 10, 99); err == nil {
		t.Fatal("bad level should error")
	}
	sum, n, min, max, err := h.SpanEntries(250, 9999, 0)
	if err != nil || n != 6 || min != 250 || max != 255 || sum != 250+251+252+253+254+255 {
		t.Fatalf("clamped span = %v,%d,%v,%v,%v", sum, n, min, max, err)
	}
}

func TestSpanEntriesExactIntSums(t *testing.T) {
	// Integer columns difference exact int64 prefix sums: span sums stay
	// exact even where float64 prefix accumulation would round (values
	// beyond 2^53).
	big := int64(1) << 60
	vals := []int64{big, 3, big, -7, big, 11, -big, 5}
	for len(vals) < 200 {
		vals = append(vals, int64(len(vals)))
	}
	clock := vclock.New()
	params := iomodel.Params{BlockValues: 4, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond}
	h, err := Build(storage.NewIntColumn("v", vals), 0, clock, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum, n, _, _, err := h.SpanEntries(1, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(3 + big - 7 + big + 11)
	if n != 5 || sum != want {
		t.Fatalf("SpanEntries sum = %v (n=%d), want exact %v", sum, n, want)
	}
	// A float column keeps the float prefix path.
	fvals := make([]float64, 200)
	for i := range fvals {
		fvals[i] = float64(i) + 0.5
	}
	fh, err := Build(storage.NewFloatColumn("f", fvals), 0, clock, params, nil)
	if err != nil {
		t.Fatal(err)
	}
	fsum, fn, _, _, err := fh.SpanEntries(10, 14, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fn != 4 || fsum != 10.5+11.5+12.5+13.5 {
		t.Fatalf("float SpanEntries = %v (n=%d)", fsum, fn)
	}
}
