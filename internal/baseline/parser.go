package baseline

import (
	"fmt"
	"strconv"

	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
)

// Parse parses one SELECT statement of the supported subset:
//
//	SELECT (* | item[, item...]) FROM table
//	  [JOIN table2 ON a.x = b.y]
//	  [WHERE col op literal [AND ...] | col BETWEEN lo AND hi]
//	  [GROUP BY col] [ORDER BY col [ASC|DESC]] [LIMIT n]
//
// item := col | agg(col) | COUNT(*) — aggregates: COUNT SUM AVG MIN MAX
// VAR STDDEV.
func Parse(sql string) (*SelectStmt, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	// allow trailing semicolon
	p.accept(tokSymbol, ";")
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("baseline: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// accept consumes the next token if it matches kind and (optionally) text.
func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind != kind {
		return false
	}
	if text != "" && t.text != text {
		return false
	}
	p.next()
	return true
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.peek()
	if t.kind != kind || (text != "" && t.text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, fmt.Errorf("baseline: expected %s, got %s at %d", want, t, t.pos)
	}
	return p.next(), nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.accept(tokSymbol, "*") {
		stmt.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			stmt.Items = append(stmt.Items, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	stmt.From = from.text

	if p.accept(tokKeyword, "JOIN") {
		join, err := p.parseJoin(stmt.From)
		if err != nil {
			return nil, err
		}
		stmt.Join = join
	}
	if p.accept(tokKeyword, "WHERE") {
		conds, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		stmt.Where = conds
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		ref, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		stmt.GroupBy = &ref
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		ref, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		oc := &OrderClause{Col: ref}
		if p.accept(tokKeyword, "DESC") {
			oc.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
		stmt.OrderBy = oc
	}
	if p.accept(tokKeyword, "LIMIT") {
		nTok, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(nTok.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("baseline: bad LIMIT %q at %d", nTok.text, nTok.pos)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent {
		// Could be agg(...) or a column ref.
		if agg, err := operator.ParseAggKind(t.text); err == nil && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.next() // agg name
			p.next() // (
			item := SelectItem{IsAgg: true, Agg: agg}
			if p.accept(tokSymbol, "*") {
				if agg != operator.Count {
					return SelectItem{}, fmt.Errorf("baseline: only COUNT accepts * at %d", t.pos)
				}
				item.Star = true
			} else {
				ref, err := p.parseColumnRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Col = ref
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			item.Alias = p.parseAlias()
			return item, nil
		}
		ref, err := p.parseColumnRef()
		if err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Col: ref, Alias: p.parseAlias()}, nil
	}
	return SelectItem{}, fmt.Errorf("baseline: expected select item, got %s at %d", t, t.pos)
}

func (p *parser) parseAlias() string {
	if p.accept(tokKeyword, "AS") {
		if t := p.peek(); t.kind == tokIdent {
			p.next()
			return t.text
		}
	}
	return ""
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	first, err := p.expect(tokIdent, "")
	if err != nil {
		return ColumnRef{}, err
	}
	if p.accept(tokSymbol, ".") {
		second, err := p.expect(tokIdent, "")
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: first.text, Column: second.text}, nil
	}
	return ColumnRef{Column: first.text}, nil
}

func (p *parser) parseJoin(leftTable string) (*JoinClause, error) {
	tbl, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	a, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "="); err != nil {
		return nil, err
	}
	b, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	jc := &JoinClause{Table: tbl.text}
	// Normalize so LeftCol references the FROM table.
	switch {
	case a.Table == leftTable || (a.Table == "" && b.Table == tbl.text):
		jc.LeftCol, jc.RightCol = a, b
	case b.Table == leftTable || (b.Table == "" && a.Table == tbl.text):
		jc.LeftCol, jc.RightCol = b, a
	default:
		jc.LeftCol, jc.RightCol = a, b
	}
	return jc, nil
}

func (p *parser) parseWhere() ([]Condition, error) {
	var out []Condition
	for {
		conds, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		out = append(out, conds...)
		if !p.accept(tokKeyword, "AND") {
			break
		}
	}
	return out, nil
}

// parseCondition parses one comparison or BETWEEN (which expands to two
// conjuncts).
func (p *parser) parseCondition() ([]Condition, error) {
	ref, err := p.parseColumnRef()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return []Condition{
			{Col: ref, Op: operator.Ge, Operand: lo},
			{Col: ref, Op: operator.Le, Operand: hi},
		}, nil
	}
	opTok, err := p.expect(tokSymbol, "")
	if err != nil {
		return nil, err
	}
	var op operator.CmpOp
	switch opTok.text {
	case "=":
		op = operator.Eq
	case "<>", "!=":
		op = operator.Ne
	case "<":
		op = operator.Lt
	case "<=":
		op = operator.Le
	case ">":
		op = operator.Gt
	case ">=":
		op = operator.Ge
	default:
		return nil, fmt.Errorf("baseline: unknown operator %q at %d", opTok.text, opTok.pos)
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return []Condition{{Col: ref, Op: op, Operand: lit}}, nil
}

func (p *parser) parseLiteral() (storage.Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if f, err := strconv.ParseFloat(t.text, 64); err == nil {
			return storage.FloatValue(f), nil
		}
		return storage.Value{}, fmt.Errorf("baseline: bad number %q at %d", t.text, t.pos)
	case tokString:
		return storage.StringValue(t.text), nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			return storage.BoolValue(true), nil
		case "FALSE":
			return storage.BoolValue(false), nil
		}
	}
	return storage.Value{}, fmt.Errorf("baseline: expected literal, got %s at %d", t, t.pos)
}
