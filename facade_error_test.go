package dbtouch

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestWhereEveryOp drives each accepted comparison through a filtered
// slide (results must respect the conjunct) and rejects unknown
// operators and columns.
func TestWhereEveryOp(t *testing.T) {
	const n = 20000
	check := func(op string, matches func(v int64) bool) {
		t.Helper()
		db, obj := openWithColumn(t, n)
		obj.Scan()
		if err := obj.Where("v", op, 10000.0); err != nil {
			t.Fatalf("Where(%q): %v", op, err)
		}
		results := obj.Slide(2 * time.Second)
		if len(results) == 0 {
			t.Fatalf("op %q: filtered slide produced no results", op)
		}
		for _, r := range results {
			if !matches(int64(r.TupleID)) {
				t.Fatalf("op %q revealed tuple %d, violating the filter", op, r.TupleID)
			}
		}
		_ = db
	}
	check("=", func(v int64) bool { return v == 10000 })
	check("==", func(v int64) bool { return v == 10000 })
	check("<>", func(v int64) bool { return v != 10000 })
	check("!=", func(v int64) bool { return v != 10000 })
	check("<", func(v int64) bool { return v < 10000 })
	check("<=", func(v int64) bool { return v <= 10000 })
	check(">", func(v int64) bool { return v > 10000 })
	check(">=", func(v int64) bool { return v >= 10000 })

	_, obj := openWithColumn(t, 100)
	if err := obj.Where("v", "~", 1); err == nil || !strings.Contains(err.Error(), "unknown comparison") {
		t.Fatalf("invalid op error = %v", err)
	}
	if err := obj.Where("ghost", "=", 1); err == nil || !strings.Contains(err.Error(), "no column") {
		t.Fatalf("unknown column error = %v", err)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := Open()
	cases := []struct {
		name, csv, wantSub string
	}{
		{"bad header type", "v:COMPLEX\n1\n", "unknown type"},
		{"short row", "a:INT,b:INT\n1\n", "wrong number of fields"},
		{"long row", "a:INT,b:INT\n1,2,3\n", "wrong number of fields"},
		{"bad cell", "a:INT\nnotanumber\n", "column \"a\""},
		{"unbalanced quotes", "a:INT\n\"1\n", "line"},
	}
	for _, c := range cases {
		if err := db.LoadCSV("bad", strings.NewReader(c.csv)); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("%s: error = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
	if len(db.Tables()) != 0 {
		t.Fatalf("failed loads must not register tables, got %v", db.Tables())
	}
	// Sanity: the well-formed variant loads.
	if err := db.LoadCSV("good", strings.NewReader("a:INT,b:FLOAT\n1,2.5\n2,3.5\n")); err != nil {
		t.Fatal(err)
	}
	if len(db.Tables()) != 1 {
		t.Fatalf("tables = %v", db.Tables())
	}
}

func TestSessionDuplicateID(t *testing.T) {
	db := Open()
	if _, err := db.Session("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Session("alice"); err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("duplicate session error = %v", err)
	}
	// "main" is taken by Open's default session.
	if _, err := db.Session("main"); err == nil {
		t.Fatal("Session(\"main\") must collide with the default session")
	}
	// The failed creates must not have clobbered the registry.
	if got := db.Manager().Len(); got != 2 {
		t.Fatalf("live sessions = %d, want 2 (main + alice)", got)
	}
}

// TestSessionAdmissionOverloaded: past the manager's admission cap,
// Session returns the typed ErrOverloaded (no session created, no
// silent eviction) and admits again once a slot frees up.
func TestSessionAdmissionOverloaded(t *testing.T) {
	db := Open()
	db.Manager().SetAdmissionCap(2) // "main" occupies one slot
	if _, err := db.Session("alice"); err != nil {
		t.Fatal(err)
	}
	_, err := db.Session("bob")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Session past admission cap: err = %v, want ErrOverloaded", err)
	}
	if got := db.Manager().Len(); got != 2 {
		t.Fatalf("rejected Session changed live count: %d, want 2", got)
	}
	db.Manager().Evict("alice")
	if _, err := db.Session("bob"); err != nil {
		t.Fatalf("Session after eviction: %v", err)
	}
}
