// Command stream measures the host's sustainable memory bandwidth and
// prints machine-parseable lines for scripts/bench.sh:
//
//	triad_mbps <N>
//	read_mbps <N>
//	read_llc_mbps <N>
//	features <comma-list>
//
// triad is the classic STREAM a[i] = b[i] + s*c[i] over 64 MiB arrays
// (24 bytes of DRAM traffic per element, including the write-allocate
// stream) — the ceiling for kernels that materialize output, like
// FilterRange's selection vector. read is a pure load sweep over the
// same DRAM-sized array — the ceiling for the aggregation kernels
// (Sum/MinMax/FilterSum), which only read. read_llc repeats the load
// sweep over an 8 MiB working set, the size of the 1M-row benchmark
// columns in BENCH_kernels.json: those columns sit in the last-level
// cache, so the tracked kernel numbers are read against this ceiling,
// not DRAM (see ARCHITECTURE.md "Roofline"). A kernel within ~80% of
// its ceiling is memory-bound and further SIMD work cannot help; one
// far below it is compute-bound and a candidate.
//
// Build and run: go run scripts/stream.go
package main

import (
	"fmt"
	"time"

	"dbtouch/internal/storage/cpu"
)

const (
	// 8M float64 per array (64 MiB each) — far beyond any cache, so
	// the DRAM sweeps stream from memory.
	elems = 8 << 20
	// llcElems matches the benchmark columns: 1M values, 8 MiB.
	llcElems = 1 << 20
	// Best-of reps: the max filters scheduler noise, matching how
	// STREAM itself reports.
	reps = 10
)

var sink float64

// readSweep reports the best-of-reps load bandwidth over v in MB/s,
// using eight independent accumulators so the float-add latency chain
// never gates the loads.
func readSweep(v []float64) float64 {
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for i := 0; i+8 <= len(v); i += 8 {
			s0 += v[i]
			s1 += v[i+1]
			s2 += v[i+2]
			s3 += v[i+3]
			s4 += v[i+4]
			s5 += v[i+5]
			s6 += v[i+6]
			s7 += v[i+7]
		}
		sink += s0 + s1 + s2 + s3 + s4 + s5 + s6 + s7
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(len(v)) * 8 / best.Seconds() / 1e6
}

func main() {
	a := make([]float64, elems)
	b := make([]float64, elems)
	c := make([]float64, elems)
	for i := range b {
		b[i] = float64(i)
		c[i] = float64(elems - i)
	}
	s := 3.0

	best := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := range a {
			a[i] = b[i] + s*c[i]
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	sink += a[0]

	fmt.Printf("triad_mbps %.0f\n", float64(elems)*24/best.Seconds()/1e6)
	fmt.Printf("read_mbps %.0f\n", readSweep(b))
	fmt.Printf("read_llc_mbps %.0f\n", readSweep(b[:llcElems]))
	fmt.Printf("features %s\n", cpu.Features())

	// Keep the accumulated results live so no sweep can be eliminated.
	if sink == -1 {
		fmt.Println("unreachable")
	}
}
