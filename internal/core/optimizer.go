package core

import (
	"sort"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
)

// AdaptiveOptimizer reorders WHERE conjuncts on the fly (paper §2.9
// "Optimization"): dbTouch cannot know up front which part of the data a
// gesture will cover, and different regions have different properties, so
// per-predicate selectivities are observed over a decaying window of
// recent touches and the evaluation order adapts — cheapest expected work
// first — without ever blocking a touch.
type AdaptiveOptimizer struct {
	// Enabled gates adaptation (the ablation switch); disabled keeps the
	// user-declared order.
	Enabled bool

	predicates []operator.Predicate
	stats      []*operator.ConjunctStats
	order      []int
	reorders   int
	evals      int64
}

// NewAdaptiveOptimizer wraps the given conjuncts. window is the decay
// window for selectivity statistics.
func NewAdaptiveOptimizer(predicates []operator.Predicate, window int, enabled bool) *AdaptiveOptimizer {
	o := &AdaptiveOptimizer{Enabled: enabled, predicates: predicates}
	o.stats = make([]*operator.ConjunctStats, len(predicates))
	o.order = make([]int, len(predicates))
	for i := range predicates {
		o.stats[i] = operator.NewConjunctStats(window)
		o.order[i] = i
	}
	return o
}

// Eval evaluates the conjunction against tuple row of m with
// short-circuiting in the current adaptive order, charging reads through
// trackers, then reconsiders the order. Evaluated conjuncts update their
// selectivity; short-circuited ones learn nothing (they were not paid
// for).
func (o *AdaptiveOptimizer) Eval(m *storage.Matrix, row int, trackers []*iomodel.Tracker) (bool, error) {
	o.evals++
	pass := true
	for _, idx := range o.order {
		ok, err := o.predicates[idx].Eval(m, row, trackers)
		if err != nil {
			return false, err
		}
		o.stats[idx].Observe(ok)
		if !ok {
			pass = false
			break
		}
	}
	if o.Enabled && o.evals%16 == 0 {
		o.reorder()
	}
	return pass, nil
}

// reorder sorts conjuncts by ascending selectivity: with uniform
// per-predicate cost, evaluating the most selective (lowest pass rate)
// first minimizes expected evaluations.
func (o *AdaptiveOptimizer) reorder() {
	prev := append([]int(nil), o.order...)
	sort.SliceStable(o.order, func(a, b int) bool {
		return o.stats[o.order[a]].Selectivity() < o.stats[o.order[b]].Selectivity()
	})
	for i := range prev {
		if prev[i] != o.order[i] {
			o.reorders++
			return
		}
	}
}

// Order returns the current evaluation order (indexes into the original
// predicate list).
func (o *AdaptiveOptimizer) Order() []int { return append([]int(nil), o.order...) }

// Reorders reports how many times the order changed.
func (o *AdaptiveOptimizer) Reorders() int { return o.reorders }

// Selectivity reports the observed selectivity of predicate i.
func (o *AdaptiveOptimizer) Selectivity(i int) float64 { return o.stats[i].Selectivity() }

// Len reports the number of conjuncts.
func (o *AdaptiveOptimizer) Len() int { return len(o.predicates) }
