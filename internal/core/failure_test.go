package core

import (
	"testing"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Failure injection: malformed or hostile touch streams must never panic
// or corrupt kernel state — the digitizer is an external input source.

func TestCancelledTouchMidSlide(t *testing.T) {
	k, obj := testKernel(t, 10000, DefaultConfig())
	f := obj.View().Frame()
	x := f.Origin.X + 1
	events := []touchos.TouchEvent{
		{Phase: touchos.TouchBegan, Loc: touchos.Point{X: x, Y: 3}, Time: 0},
		{Phase: touchos.TouchMoved, Loc: touchos.Point{X: x, Y: 4}, Time: 50 * time.Millisecond},
		{Phase: touchos.TouchMoved, Loc: touchos.Point{X: x, Y: 5}, Time: 100 * time.Millisecond},
		{Phase: touchos.TouchCancelled, Loc: touchos.Point{X: x, Y: 5}, Time: 150 * time.Millisecond},
	}
	k.Apply(events)
	// The kernel must accept a fresh gesture afterwards.
	results := k.Apply(slideEvents(obj, time.Second, k.Clock().Now()+time.Millisecond))
	if countResults(results, SummaryValue) == 0 {
		t.Fatal("kernel unusable after cancelled touch")
	}
}

func TestMoveWithoutBegan(t *testing.T) {
	k, obj := testKernel(t, 1000, DefaultConfig())
	_ = obj
	events := []touchos.TouchEvent{
		{Phase: touchos.TouchMoved, Loc: touchos.Point{X: 3, Y: 5}, Time: 0},
		{Phase: touchos.TouchEnded, Loc: touchos.Point{X: 3, Y: 5}, Time: 10 * time.Millisecond},
	}
	k.Apply(events) // must not panic; orphan moves are dropped
}

func TestEndedWithoutBegan(t *testing.T) {
	k, _ := testKernel(t, 1000, DefaultConfig())
	k.Apply([]touchos.TouchEvent{
		{Phase: touchos.TouchEnded, Loc: touchos.Point{X: 3, Y: 5}, Time: 0},
	})
}

func TestDoubleBegan(t *testing.T) {
	k, obj := testKernel(t, 1000, DefaultConfig())
	f := obj.View().Frame()
	x := f.Origin.X + 1
	k.Apply([]touchos.TouchEvent{
		{Phase: touchos.TouchBegan, Loc: touchos.Point{X: x, Y: 3}, Time: 0},
		{Phase: touchos.TouchBegan, Loc: touchos.Point{X: x, Y: 4}, Time: 10 * time.Millisecond},
		{Phase: touchos.TouchEnded, Loc: touchos.Point{X: x, Y: 4}, Time: 20 * time.Millisecond},
	})
}

func TestTouchesOffScreen(t *testing.T) {
	k, _ := testKernel(t, 1000, DefaultConfig())
	synth := gesture.Synth{}
	k.Apply(synth.Slide(
		touchos.Point{X: -5, Y: -5}, touchos.Point{X: 100, Y: 100}, 0, time.Second))
	if k.Counters().Get("touch.misses") == 0 {
		t.Fatal("off-screen touches should count as misses")
	}
}

func TestSingleRowColumn(t *testing.T) {
	k := NewKernel(DefaultConfig())
	m, err := storage.NewMatrix("one", storage.NewIntColumn("v", []int64{42}))
	if err != nil {
		t.Fatal(err)
	}
	obj, err := k.CreateColumnObject(m, 0, touchos.NewRect(2, 2, 2, 10))
	if err != nil {
		t.Fatal(err)
	}
	results := k.Apply(slideEvents(obj, time.Second, 0))
	for _, r := range results {
		if r.TupleID != 0 {
			t.Fatalf("single-row object produced tuple %d", r.TupleID)
		}
	}
}

func TestTinyObjectFrame(t *testing.T) {
	k := NewKernel(DefaultConfig())
	m, _ := storage.NewMatrix("t", storage.NewIntColumn("v", mkInts(1000, 0)))
	obj, err := k.CreateColumnObject(m, 0, touchos.NewRect(2, 2, 0.1, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	// A 1mm object registers at most one position; slides degrade to
	// (at most) a couple of touches but never crash.
	results := k.Apply(slideEvents(obj, time.Second, 0))
	_ = results
}

func TestEmptyEventBatch(t *testing.T) {
	k, _ := testKernel(t, 100, DefaultConfig())
	if got := k.Apply(nil); len(got) != 0 {
		t.Fatal("empty batch produced results")
	}
	if got := k.Apply([]touchos.TouchEvent{}); len(got) != 0 {
		t.Fatal("empty batch produced results")
	}
}

func TestBackwardsTimestampsClamped(t *testing.T) {
	k, obj := testKernel(t, 10000, DefaultConfig())
	f := obj.View().Frame()
	x := f.Origin.X + 1
	// Events with non-monotonic times: the dispatcher delivers them when
	// the kernel is free; virtual time never goes backwards.
	events := []touchos.TouchEvent{
		{Phase: touchos.TouchBegan, Loc: touchos.Point{X: x, Y: 3}, Time: 100 * time.Millisecond},
		{Phase: touchos.TouchMoved, Loc: touchos.Point{X: x, Y: 5}, Time: 50 * time.Millisecond},
		{Phase: touchos.TouchEnded, Loc: touchos.Point{X: x, Y: 5}, Time: 150 * time.Millisecond},
	}
	k.Apply(events)
	if k.Clock().Now() < 100*time.Millisecond {
		t.Fatal("virtual clock went backwards")
	}
}

func TestSetActionsMidGestureResets(t *testing.T) {
	k, obj := testKernel(t, 10000, DefaultConfig())
	k.Apply(slideEvents(obj, 500*time.Millisecond, 0))
	before := len(k.Results())
	a := obj.Actions()
	a.Mode = ModeScan
	obj.SetActions(a)
	results := k.Apply(slideEvents(obj, 500*time.Millisecond, k.Clock().Now()+time.Millisecond))
	for _, r := range results {
		if r.Kind == SummaryValue {
			t.Fatal("stale mode after SetActions")
		}
	}
	if len(k.Results()) <= before {
		t.Fatal("no results after reconfiguration")
	}
}

func TestJoinWithMissingPartner(t *testing.T) {
	k, obj := testKernel(t, 1000, DefaultConfig())
	a := obj.Actions()
	a.Join = &JoinSpec{OtherObject: 9999, Side: JoinLeft}
	obj.SetActions(a) // wireJoin fails silently: no partner
	results := k.Apply(slideEvents(obj, time.Second, 0))
	for _, r := range results {
		if r.Kind == JoinMatches {
			t.Fatal("join against missing partner produced matches")
		}
	}
}

func TestGroupSpecAgainstRowMajorIgnored(t *testing.T) {
	// Group-by requires direct column access; a row-major matrix cannot
	// provide it, and SetActions must not panic.
	k := NewKernel(DefaultConfig())
	rm := storage.NewRowMajorMatrix("r", []storage.ColumnMeta{
		{Name: "k", Type: storage.String}, {Name: "v", Type: storage.Int64},
	})
	_ = rm.AppendRow([]storage.Value{storage.StringValue("a"), storage.IntValue(1)})
	obj, err := k.CreateTableObject(rm, touchos.NewRect(2, 2, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	a := obj.Actions()
	a.Group = &GroupSpec{KeyCol: 0, ValCol: 1}
	obj.SetActions(a)
}

func TestInterleavedGesturesOnTwoObjects(t *testing.T) {
	k := NewKernel(DefaultConfig())
	m1, _ := storage.NewMatrix("a", storage.NewIntColumn("x", mkInts(10000, 0)))
	m2, _ := storage.NewMatrix("b", storage.NewIntColumn("y", mkInts(10000, 0)))
	o1, err := k.CreateColumnObject(m1, 0, touchos.NewRect(2, 2, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := k.CreateColumnObject(m2, 0, touchos.NewRect(6, 2, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Two fingers, one per object, sliding simultaneously: the
	// recognizer treats them as a two-finger gesture only when their
	// motion matches pinch/rotate; parallel vertical slides at constant
	// separation neither pinch nor rotate, so no layout accidents.
	synth := gesture.Synth{}
	f1, f2 := o1.View().Frame(), o2.View().Frame()
	s1 := synth.Slide(touchos.Point{X: f1.Origin.X + 1, Y: 2.1}, touchos.Point{X: f1.Origin.X + 1, Y: 9.9}, 0, time.Second)
	s2 := synth.Slide(touchos.Point{X: f2.Origin.X + 1, Y: 2.1}, touchos.Point{X: f2.Origin.X + 1, Y: 9.9}, 0, time.Second)
	for i := range s2 {
		s2[i].Finger = 1
	}
	k.Apply(gesture.Merge(s1, s2))
	if o1.View().Rotation() != 0 || o2.View().Rotation() != 0 {
		t.Fatal("parallel slides misrecognized as rotation")
	}
	if conv, _ := o1.Converting(); conv {
		t.Fatal("parallel slides started a layout conversion")
	}
}

func TestManyObjectsRegistry(t *testing.T) {
	k := NewKernel(Config{ScreenW: 100, ScreenH: 100})
	for i := 0; i < 20; i++ {
		m, _ := storage.NewMatrix(
			names20[i], storage.NewIntColumn("v", mkInts(100, int64(i))))
		x := float64(1 + (i%5)*4)
		y := float64(1 + (i/5)*4)
		if _, err := k.CreateColumnObject(m, 0, touchos.NewRect(x, y, 3, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if len(k.Objects()) != 20 {
		t.Fatalf("objects = %d", len(k.Objects()))
	}
	// Tap each object: hit testing must resolve the right one.
	synth := gesture.Synth{}
	for _, o := range k.Objects() {
		center := o.View().Frame().Center()
		results := k.Apply(synth.Tap(center, k.Clock().Now()+time.Millisecond))
		for _, r := range results {
			if r.ObjectID != o.ID() {
				t.Fatalf("tap on object %d answered by %d", o.ID(), r.ObjectID)
			}
		}
	}
}

var names20 = []string{
	"m00", "m01", "m02", "m03", "m04", "m05", "m06", "m07", "m08", "m09",
	"m10", "m11", "m12", "m13", "m14", "m15", "m16", "m17", "m18", "m19",
}
