package protocol

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dbtouch/internal/core"
)

// admissionGated lists the ops a draining server turns away: the ones
// that would place a new session (or re-place a resumable one) on a
// backend that is about to exit. Everything else — performs on live
// sessions, appends, stats — keeps flowing until shutdown.
func admissionGated(op string) bool {
	return op == OpOpen || op == OpResume
}

// handleWithTimeout routes one request, bounding its wall-clock time
// when d > 0. On timeout the execution is abandoned (it finishes in the
// background under the session's own serialization) and the client gets
// an overloaded envelope — the request may still take effect, which is
// exactly the lost-response case ReqID dedupe exists for.
func handleWithTimeout(r Router, req Request, d time.Duration) Response {
	if d <= 0 {
		return r.HandleRequest(req)
	}
	done := make(chan Response, 1)
	go func() { done <- r.HandleRequest(req) }()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case resp := <-done:
		return resp
	case <-t.C:
		resp := Overloadedf("%s: request exceeded the server's %v rpc deadline", req.Op, d)
		resp.V = req.V
		return resp
	}
}

// ErrOverloaded is the client-side face of server admission control: a
// request answered 503/overloaded wraps it, so callers back off with
// errors.Is(err, protocol.ErrOverloaded) and retry after the hinted
// delay.
var ErrOverloaded = errors.New("protocol: server overloaded")

// maxRequestBytes bounds one wire request; gestures and specs are tiny.
const maxRequestBytes = 1 << 20

// maxResponseBytes bounds one decoded response on the client side.
// Responses carry whole result batches (a long gesture is tens of
// thousands of frames), so the bound is generous — it exists to keep a
// broken server from exhausting client memory, not to size payloads.
const maxResponseBytes = 64 << 20

// maxStreamBuffer caps the client-requested /stream ring size: the
// buffer is allocated up front, so an unbounded query parameter would
// let one request exhaust server memory.
const maxStreamBuffer = 1 << 16

// maxBinaryBatch caps how many queued results one binary frame coalesces:
// the first result is taken blocking, then TryNext drains whatever has
// already accumulated, so a fast producer amortizes the frame header over
// thousands of values while an idle session still flushes every result
// immediately.
const maxBinaryBatch = 4096

// Router handles decoded protocol requests. session.Manager implements
// it; tests may substitute fakes.
type Router interface {
	HandleRequest(Request) Response
}

// Subscriber is the optional streaming side of a Router: it opens a
// bounded result stream on a session. session.Manager implements it.
type Subscriber interface {
	SubscribeSession(id string, buffer int) (*core.ResultStream, error)
}

// handlerConfig collects NewHTTPHandler's options.
type handlerConfig struct {
	rpcTimeout time.Duration
	admitting  func() bool
}

// HandlerOption configures NewHTTPHandler.
type HandlerOption func(*handlerConfig)

// WithRPCTimeout bounds one /rpc request's wall-clock execution: past d
// the handler answers 503 (overloaded envelope, Retry-After stamped)
// and abandons the slow execution to finish in the background — the
// session's own locks keep that safe, and the connection is freed so a
// stuck request cannot wedge the serving goroutine's client. Zero
// disables the bound. /stream is never bounded (streams are long-lived
// by design).
func WithRPCTimeout(d time.Duration) HandlerOption {
	return func(c *handlerConfig) { c.rpcTimeout = d }
}

// WithAdmitGate installs an admission gate consulted before
// session-creating ops (open, resume): while fn reports false — the
// server is draining — those requests are answered 503 + Retry-After so
// a gateway or retrying client places the session elsewhere. In-flight
// sessions keep working; only new arrivals are turned away.
func WithAdmitGate(fn func() bool) HandlerOption {
	return func(c *handlerConfig) { c.admitting = fn }
}

// NewHTTPHandler serves the wire protocol over HTTP:
//
//	POST /rpc                            one Request in, one Response out
//	GET  /stream?session=ID[&buffer=N]   results as NDJSON frames, flushed
//	                                     as the session emits them, until
//	                                     the client disconnects
//
// The stream endpoint requires the router to implement Subscriber.
func NewHTTPHandler(r Router, opts ...HandlerOption) http.Handler {
	var cfg handlerConfig
	for _, o := range opts {
		o(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/rpc", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(req.Body, maxRequestBytes))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		decoded, err := DecodeRequest(body)
		var resp Response
		switch {
		case err != nil:
			resp = Errorf("%v", err)
		case cfg.admitting != nil && admissionGated(decoded.Op) && !cfg.admitting():
			resp = Overloadedf("%s: server is draining; retry against another backend", decoded.Op)
			resp.V = decoded.V
		default:
			resp = handleWithTimeout(r, decoded, cfg.rpcTimeout)
		}
		w.Header().Set("Content-Type", "application/json")
		data, err := EncodeResponse(resp)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if resp.Overloaded {
			// Admission control speaks HTTP: 503 plus a Retry-After hint,
			// with the full response envelope still in the body.
			ra := resp.RetryAfter
			if ra <= 0 {
				ra = DefaultRetryAfterSec
			}
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write(data)
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, req *http.Request) {
		sub, ok := r.(Subscriber)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusNotImplemented)
			return
		}
		id := req.URL.Query().Get("session")
		buffer, _ := strconv.Atoi(req.URL.Query().Get("buffer"))
		if buffer > maxStreamBuffer {
			buffer = maxStreamBuffer
		}
		stream, err := sub.SubscribeSession(id, buffer)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		defer stream.Close()
		flusher, canFlush := w.(http.Flusher)
		// Content negotiation through the version gate: a v2 client asks
		// for the binary columnar encoding via Accept; everyone else gets
		// the v1 NDJSON frames unchanged. The response Content-Type tells
		// the client which decoder won.
		binary := strings.Contains(req.Header.Get("Accept"), BinaryContentType)
		if binary {
			w.Header().Set("Content-Type", BinaryContentType)
		} else {
			w.Header().Set("Content-Type", NDJSONContentType)
		}
		if canFlush {
			flusher.Flush()
		}
		// Unblock Next when the client goes away.
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-req.Context().Done():
				stream.Close()
			case <-done:
			}
		}()
		if binary {
			var buf []byte
			batch := make([]core.Result, 0, 64)
			for {
				result, ok := stream.Next()
				if !ok {
					return
				}
				// Coalesce whatever the session has already queued into one
				// columnar frame; an idle stream still ships frame-per-result.
				batch = append(batch[:0], result)
				for len(batch) < maxBinaryBatch {
					r, ok := stream.TryNext()
					if !ok {
						break
					}
					batch = append(batch, r)
				}
				buf = AppendBinaryResults(buf[:0], id, 0, batch)
				if _, err := w.Write(buf); err != nil {
					return
				}
				if canFlush {
					flusher.Flush()
				}
			}
		}
		enc := json.NewEncoder(w)
		for {
			result, ok := stream.Next()
			if !ok {
				return
			}
			if err := enc.Encode(FrameResult(result)); err != nil {
				return
			}
			if canFlush {
				flusher.Flush()
			}
		}
	})
	return mux
}

// Client speaks the wire protocol to a dbtouch-serve endpoint — the thin
// half of the remote deployment: it holds no data, only descriptions of
// intent and the frames that come back.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient overrides http.DefaultClient when set.
	HTTPClient *http.Client
	// AutoResume makes the client transparent to session loss: when a
	// session-scoped request fails with Gone (the session was evicted or
	// the server restarted), the client sends one OpResume and retries
	// the request once. Requires a server running with session
	// durability; without one the original Gone failure surfaces.
	AutoResume bool
	// Retry, when set, is the client's retry policy: overloaded
	// responses (503 + Retry-After) are retried with capped backoff and
	// full jitter, honoring the server's Retry-After hint, and
	// StreamResumed retries reopening a dropped stream the same way.
	// Exhausting the budget surfaces ErrRetriesExhausted wrapping the
	// last failure. Nil keeps single-attempt behavior.
	Retry *Backoff
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Do sends one request and decodes the server's response envelope. A
// transport-level failure returns an error; a server-side failure comes
// back inside the Response (OK=false) wrapped as an error too. With
// AutoResume set, a Gone failure on a session-scoped request triggers
// one OpResume + retry before surfacing. With Retry set, overloaded
// responses are retried under the shared backoff policy (Retry-After
// honored) before ErrRetriesExhausted surfaces.
func (c *Client) Do(req Request) (Response, error) {
	if c.Retry == nil {
		return c.doResuming(req)
	}
	var resp Response
	err := c.Retry.Retry(context.Background(), func() (bool, time.Duration, error) {
		var err error
		resp, err = c.doResuming(req)
		if err != nil && errors.Is(err, ErrOverloaded) {
			return true, RetryAfterDuration(resp), err
		}
		return false, 0, err
	})
	return resp, err
}

// doResuming is one Do attempt including the AutoResume Gone-handling.
func (c *Client) doResuming(req Request) (Response, error) {
	resp, err := c.do(req)
	if err != nil && resp.Gone && c.AutoResume && req.Session != "" && resumableOp(req.Op) {
		if _, rerr := c.Resume(req.Session); rerr != nil {
			return resp, err // surface the original failure
		}
		return c.do(req)
	}
	return resp, err
}

// resumableOp reports whether a Gone failure on op is worth a resume +
// retry: session-scoped work, not lifecycle or server-scoped ops.
func resumableOp(op string) bool {
	switch op {
	case OpCreate, OpConfigure, OpPerform, OpIdle, OpPin:
		return true
	}
	return false
}

func (c *Client) do(req Request) (Response, error) {
	data, err := EncodeRequest(req)
	if err != nil {
		return Response{}, err
	}
	httpResp, err := c.httpClient().Post(c.Base+"/rpc", "application/json", bytes.NewReader(data))
	if err != nil {
		return Response{}, err
	}
	defer httpResp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(httpResp.Body, maxResponseBytes))
	if err != nil {
		return Response{}, err
	}
	resp, err := DecodeResponse(body)
	if err != nil {
		return Response{}, err
	}
	if resp.Overloaded || httpResp.StatusCode == http.StatusServiceUnavailable {
		ra := resp.RetryAfter
		if ra <= 0 {
			ra = DefaultRetryAfterSec
		}
		return resp, fmt.Errorf("%w (retry after %ds): %s", ErrOverloaded, ra, resp.Error)
	}
	if !resp.OK {
		return resp, fmt.Errorf("protocol: server: %s", resp.Error)
	}
	return resp, nil
}

// FrameStream iterates result frames from a /stream connection in
// whichever encoding the server chose; ContentType records the winner.
// Next returns io.EOF when the server closes the stream cleanly.
type FrameStream struct {
	// ContentType is the negotiated encoding: BinaryContentType or
	// NDJSONContentType.
	ContentType string

	body io.ReadCloser
	bin  *BinaryScanner
	dec  *json.Decoder
}

// Next returns the next result frame or io.EOF at a clean end of stream.
func (fs *FrameStream) Next() (ResultFrame, error) {
	if fs.bin != nil {
		return fs.bin.Next()
	}
	var f ResultFrame
	if err := fs.dec.Decode(&f); err != nil {
		return ResultFrame{}, err
	}
	return f, nil
}

// Close releases the underlying connection.
func (fs *FrameStream) Close() error { return fs.body.Close() }

// OpenStream opens the session's result stream with the given Accept
// preference and wires up the decoder the server chose. Most callers use
// Client.Stream / Client.StreamNDJSON, which wrap this in the callback
// loop; tests use it directly to pin negotiation outcomes.
func (c *Client) OpenStream(ctx context.Context, session string, buffer int, accept string) (*FrameStream, error) {
	u := c.Base + "/stream?session=" + url.QueryEscape(session)
	if buffer > 0 {
		u += "&buffer=" + strconv.Itoa(buffer)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", accept)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		return nil, fmt.Errorf("protocol: stream: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	fs := &FrameStream{ContentType: resp.Header.Get("Content-Type"), body: resp.Body}
	if strings.Contains(fs.ContentType, BinaryContentType) {
		fs.bin = NewBinaryScanner(resp.Body)
	} else {
		fs.dec = json.NewDecoder(resp.Body)
	}
	return fs, nil
}
