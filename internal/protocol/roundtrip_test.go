package protocol_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dbtouch"
	"dbtouch/internal/protocol"
	"dbtouch/internal/script"
)

// streamBuffer is large enough that no round-trip run ever drops.
const streamBuffer = 1 << 17

// newInstance builds a dbtouch instance with the deterministic tables
// the round-trip scripts touch: a 100k-row int column table "t" and a
// small multi-column table "multi".
func newInstance(t *testing.T) *dbtouch.DB {
	t.Helper()
	db := dbtouch.Open()
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(i * 7 % 1000)
	}
	db.NewTable("t").Int("v", vals).MustCreate()
	n := 5000
	ids := make([]int64, n)
	temps := make([]float64, n)
	sites := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		temps[i] = float64((i*13)%100) / 2
		sites[i] = fmt.Sprintf("site%d", i%7)
	}
	db.NewTable("multi").Int("id", ids).Float("temp", temps).String("site", sites).MustCreate()
	return db
}

func drain(stream *dbtouch.ResultStream) []dbtouch.Result {
	var out []dbtouch.Result
	for {
		r, ok := stream.TryNext()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// runDirect executes the script against the facade (Object methods on
// the default session) and returns the complete result stream.
func runDirect(t *testing.T, text string) []dbtouch.Result {
	t.Helper()
	db := newInstance(t)
	commands, err := script.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	stream := db.Subscribe(streamBuffer)
	if err := script.NewRunner(db, nil).Run(commands); err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if stream.Dropped() != 0 {
		t.Fatalf("direct stream dropped %d results; raise streamBuffer", stream.Dropped())
	}
	return drain(stream)
}

// runWire executes the same script encoded to protocol requests,
// serialized to JSON bytes, decoded back, and routed through
// Manager.HandleRequest into a fresh session — the full wire round trip
// minus the TCP socket.
func runWire(t *testing.T, text string) []dbtouch.Result {
	t.Helper()
	db := newInstance(t)
	m := db.Manager()
	commands, err := script.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	reqs, err := script.Encode(commands, "wire")
	if err != nil {
		t.Fatal(err)
	}
	if resp := m.HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpOpen, Session: "wire"}); !resp.OK {
		t.Fatalf("open: %s", resp.Error)
	}
	stream, err := m.SubscribeSession("wire", streamBuffer)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		data, err := protocol.EncodeRequest(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		decoded, err := protocol.DecodeRequest(data)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp := m.HandleRequest(decoded); !resp.OK {
			t.Fatalf("request %d (%s): %s", i, req.Op, resp.Error)
		}
	}
	if stream.Dropped() != 0 {
		t.Fatalf("wire stream dropped %d results; raise streamBuffer", stream.Dropped())
	}
	return drain(stream)
}

// assertEquivalent runs the script down both paths and returns the
// result count. Zero is legitimate (random WHERE conjuncts can
// contradict); callers decide whether emptiness is acceptable.
func assertEquivalent(t *testing.T, text string) int {
	t.Helper()
	direct := runDirect(t, text)
	wire := runWire(t, text)
	if len(direct) != len(wire) {
		t.Fatalf("direct %d results, wire %d:\n%s", len(direct), len(wire), text)
	}
	for i := range direct {
		if !reflect.DeepEqual(direct[i], wire[i]) {
			t.Fatalf("result %d diverged:\ndirect %+v\nwire   %+v\nscript:\n%s", i, direct[i], wire[i], text)
		}
	}
	return len(direct)
}

// randomScript synthesizes a gesture script from a seed: place a column,
// then a run of randomized configuration changes and gestures.
func randomScript(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("column obj t v 2 2 2 10\n")
	b.WriteString("summarize obj avg 10\n")
	steps := 12 + rng.Intn(8)
	for i := 0; i < steps; i++ {
		switch rng.Intn(12) {
		case 0:
			fmt.Fprintf(&b, "scan obj\n")
		case 1:
			aggs := []string{"count", "sum", "avg", "min", "max", "var", "stddev"}
			fmt.Fprintf(&b, "aggregate obj %s\n", aggs[rng.Intn(len(aggs))])
		case 2:
			fmt.Fprintf(&b, "summarize obj avg %d\n", 1+rng.Intn(20))
		case 3:
			ops := []string{"=", "<>", "<", "<=", ">", ">="}
			fmt.Fprintf(&b, "where obj v %s %d\n", ops[rng.Intn(len(ops))], rng.Intn(1000))
		case 4:
			fmt.Fprintf(&b, "tap obj %.2f\n", rng.Float64())
		case 5:
			fmt.Fprintf(&b, "zoomin obj %.2f\n", 1.1+rng.Float64())
		case 6:
			fmt.Fprintf(&b, "zoomout obj %.2f\n", 1.1+rng.Float64())
		case 7:
			fmt.Fprintf(&b, "moveto obj %.1f %.1f\n", rng.Float64()*10, rng.Float64()*8)
		case 8:
			fmt.Fprintf(&b, "idle %dms\n", 100+rng.Intn(900))
		case 9:
			fmt.Fprintf(&b, "rotate obj\n")
		case 10:
			onOff := []string{"on", "off"}
			fmt.Fprintf(&b, "valueorder obj %s\n", onOff[rng.Intn(2)])
		default:
			from, to := rng.Float64(), rng.Float64()
			fmt.Fprintf(&b, "slide obj %dms %.2f %.2f\n", 200+rng.Intn(1300), from, to)
		}
	}
	// End on a slide so every script measurably produces results.
	b.WriteString("slide obj 1s\n")
	return b.String()
}

// TestProtocolRoundTrip is the acceptance gate for the wire protocol:
// for randomized gesture scripts, encode → JSON → decode → HandleRequest
// produces a result stream byte-identical to driving the facade's Object
// methods directly. Run under -race in CI.
func TestProtocolRoundTrip(t *testing.T) {
	var total int64
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			n := assertEquivalent(t, randomScript(seed))
			atomic.AddInt64(&total, int64(n))
		})
	}
	t.Cleanup(func() {
		// A fully empty suite would mean the generator broke, not that
		// equivalence held vacuously.
		if atomic.LoadInt64(&total) == 0 {
			t.Error("no randomized script produced any results")
		}
	})
}

// TestProtocolRoundTripTableAndPin covers the deterministic paths the
// randomized generator avoids: whole-table objects (tuple peeks, string
// columns) and hot-region promotion.
func TestProtocolRoundTripTableAndPin(t *testing.T) {
	assertEquivalent(t, `
table grid multi 2 2 6 12
scan grid
tap grid 0.5
slide grid 1500ms
aggregate grid avg
slide grid 800ms 0.2 0.8
`)
	assertEquivalent(t, `
column obj t v 2 2 2 10
summarize obj avg 5
slide obj 1s 0.2 0.4
slide obj 1s 0.2 0.4
pin obj hot 9 2 2 6
slide hot 500ms
tap hot 0.5
`)
}

// TestProtocolRoundTripPause covers the pause/back-and-forth gestures
// that only exist as facade calls (no script syntax): built as values,
// shipped as JSON, performed remotely.
func TestProtocolRoundTripPause(t *testing.T) {
	run := func(viaWire bool) []dbtouch.Result {
		db := newInstance(t)
		obj, err := db.NewColumnObject("t", "v", 2, 2, 2, 10)
		if err != nil {
			t.Fatal(err)
		}
		obj.Summarize(dbtouch.Avg, 8)
		stream := db.Subscribe(streamBuffer)
		gestures := []dbtouch.Gesture{
			obj.SlideWithPauseGesture(2*time.Second, 0.4, 500*time.Millisecond),
			obj.SlideBackAndForthGesture(700*time.Millisecond, 2),
			obj.SlideUpGesture(time.Second),
		}
		for _, g := range gestures {
			if viaWire {
				data, err := protocol.EncodeRequest(protocol.Request{Op: protocol.OpPerform, Gesture: &g})
				if err != nil {
					t.Fatal(err)
				}
				decoded, err := protocol.DecodeRequest(data)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := db.Perform(*decoded.Gesture); err != nil {
					t.Fatal(err)
				}
			} else if _, err := db.Perform(g); err != nil {
				t.Fatal(err)
			}
		}
		return drain(stream)
	}
	direct := run(false)
	wire := run(true)
	if len(direct) == 0 || !reflect.DeepEqual(direct, wire) {
		t.Fatalf("pause gestures diverged: direct %d results, wire %d", len(direct), len(wire))
	}
}
