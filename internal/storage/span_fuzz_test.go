package storage

import (
	"math"
	"testing"
)

// Native fuzz targets for the predicate lowering and the compare+compress
// kernels. These complement the fixed differential matrix in
// simd_diff_test.go: the fuzzer explores the (operator, operand, value)
// cube beyond the hand-picked edges, with the scalar semantics
// (Value.Compare via passFloat) as ground truth. CI runs them for a few
// seconds per target as a smoke; longer local runs just work:
//
//	go test -fuzz=FuzzIntPredFor -fuzztime=60s ./internal/storage/
//
// On hosts without AVX2 the kernel targets still run — the dispatch
// wrappers fall back to the scalar loops, so the differential is vacuous
// but never wrong.

// fuzzEdgeBits are float64 payloads whose int64 reinterpretations and
// float values both sit on lowering boundaries: MinInt64/MaxInt64
// rounding, the 2^53 exactness cliff, NaN, infinities, and signed zero.
var fuzzEdgeBits = []uint64{
	math.Float64bits(0),
	math.Float64bits(math.Copysign(0, -1)),
	math.Float64bits(1),
	math.Float64bits(-1),
	math.Float64bits(math.NaN()),
	math.Float64bits(math.Inf(1)),
	math.Float64bits(math.Inf(-1)),
	math.Float64bits(1 << 53),
	math.Float64bits(-(1 << 53)),
	math.Float64bits(1<<53 + 2),
	math.Float64bits(math.MaxInt64),
	math.Float64bits(math.MinInt64),
	math.Float64bits(9.3e18), // just above MaxInt64
	math.Float64bits(0.5),
}

var fuzzEdgeInts = []int64{
	0, 1, -1,
	math.MaxInt64, math.MinInt64,
	math.MaxInt64 - 1, math.MinInt64 + 1,
	1 << 53, -(1 << 53), 1<<53 + 1, -(1<<53 + 1),
	100, -100,
}

// FuzzIntPredFor checks the integer lowering of `float64(v) op b`
// against the float reference for arbitrary (op, b, v): the lowered
// interval predicate must agree with passFloat bit for bit, and the
// constant-outcome flags must be consistent with the per-value verdicts.
func FuzzIntPredFor(f *testing.F) {
	for _, bb := range fuzzEdgeBits {
		for _, v := range fuzzEdgeInts {
			for op := 0; op < 6; op++ {
				f.Add(uint8(op), bb, v)
			}
		}
	}
	f.Fuzz(func(t *testing.T, opByte uint8, bBits uint64, v int64) {
		op := RangeOp(opByte % 6)
		b := math.Float64frombits(bBits)
		p, none, all := intPredFor(op, b)
		if none && all {
			t.Fatalf("op=%d b=%v: none and all both true", op, b)
		}
		wLt, wGt, wEq := op.wants()
		want := passFloat(float64(v), b, wLt, wGt, wEq)
		if got := p.test(v); got != want {
			t.Fatalf("op=%d b=%v v=%d: lowered pred says %d, float reference says %d (pred %+v)",
				op, b, v, got, want, p)
		}
		if none && want != 0 {
			t.Fatalf("op=%d b=%v v=%d: flagged none but float reference passes", op, b, v)
		}
		if all && want != 1 {
			t.Fatalf("op=%d b=%v v=%d: flagged all but float reference fails", op, b, v)
		}
	})
}

// FuzzCompressInt64 differentials the int compare+compress kernel (AVX2
// VPCMPGTQ + LUT-driven PSHUFB compaction on amd64) against the scalar
// branch-free reference over fuzzer-chosen values, predicate bounds, and
// slice lengths — ragged tails included, since the fuzzer controls n.
func FuzzCompressInt64(f *testing.F) {
	for _, v := range fuzzEdgeInts {
		f.Add(v, int64(-50), int64(50), false, uint8(7))
		f.Add(v, int64(math.MinInt64), int64(math.MaxInt64), true, uint8(16))
		f.Add(v, int64(1), int64(-1), false, uint8(3))
	}
	f.Fuzz(func(t *testing.T, seed, lo, hi int64, neg bool, nByte uint8) {
		n := int(nByte) // 0..255 spans sub-vector through multi-block
		p := intPred{lo: lo, hi: hi}
		if neg {
			p.neg = 1
		}
		// Deterministic value stream from the seed: a Weyl sequence mixed
		// with the edge set so every run hits lowering boundaries.
		v := make([]int64, n)
		x := uint64(seed)
		for i := range v {
			x = x*6364136223846793005 + 1442695040888963407
			if x%4 == 0 {
				v[i] = fuzzEdgeInts[(x>>32)%uint64(len(fuzzEdgeInts))]
			} else {
				v[i] = int64(x)
			}
		}
		base := int(x % 1000)
		gbuf := make([]int32, n)
		wbuf := make([]int32, n)
		gj := simdCompressInt64(v, p, base, gbuf)
		wj := 0
		for i, val := range v {
			if wj < len(wbuf) {
				wbuf[wj] = int32(base + i)
			}
			wj += p.test(val)
		}
		if gj != wj {
			t.Fatalf("pred %+v n=%d: kernel wrote %d positions, scalar %d", p, n, gj, wj)
		}
		for i := 0; i < gj; i++ {
			if gbuf[i] != wbuf[i] {
				t.Fatalf("pred %+v n=%d: buf[%d] kernel %d, scalar %d", p, n, i, gbuf[i], wbuf[i])
			}
		}
	})
}

// FuzzCompressFloat64 differentials the float compare+compress kernel
// against passFloat for arbitrary operands (NaN and infinities reachable
// through bBits) and all eight wants masks.
func FuzzCompressFloat64(f *testing.F) {
	for _, bb := range fuzzEdgeBits {
		f.Add(int64(1), bb, uint8(1), uint8(32))
		f.Add(int64(2), bb, uint8(5), uint8(9))
		f.Add(int64(3), bb, uint8(7), uint8(255))
	}
	f.Fuzz(func(t *testing.T, seed int64, bBits uint64, wantsByte, nByte uint8) {
		n := int(nByte)
		b := math.Float64frombits(bBits)
		wLt, wGt, wEq := int(wantsByte)&1, int(wantsByte)>>1&1, int(wantsByte)>>2&1
		v := make([]float64, n)
		x := uint64(seed)
		for i := range v {
			x = x*6364136223846793005 + 1442695040888963407
			if x%4 == 0 {
				v[i] = math.Float64frombits(fuzzEdgeBits[(x>>32)%uint64(len(fuzzEdgeBits))])
			} else {
				// Reinterpreted bits cover NaN payloads, subnormals, and
				// both infinities without any float arithmetic in the
				// generator.
				v[i] = math.Float64frombits(x)
			}
		}
		base := int(x % 1000)
		gbuf := make([]int32, n)
		wbuf := make([]int32, n)
		gj := simdCompressFloat64(v, b, wLt, wGt, wEq, base, gbuf)
		wj := 0
		for i, val := range v {
			if wj < len(wbuf) {
				wbuf[wj] = int32(base + i)
			}
			wj += passFloat(val, b, wLt, wGt, wEq)
		}
		if gj != wj {
			t.Fatalf("b=%v wants=%03b n=%d: kernel wrote %d positions, scalar %d", b, wantsByte&7, n, gj, wj)
		}
		for i := 0; i < gj; i++ {
			if gbuf[i] != wbuf[i] {
				t.Fatalf("b=%v wants=%03b n=%d: buf[%d] kernel %d, scalar %d", b, wantsByte&7, n, i, gbuf[i], wbuf[i])
			}
		}
	})
}
