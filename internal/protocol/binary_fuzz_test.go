package protocol

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// FuzzBinaryFrameDecode hammers the wire trust boundary: arbitrary bytes
// fed to the frame decoder and the length-prefixed stream scanner must
// error cleanly — never panic, never allocate proportionally to a lying
// header. Seeds cover valid frames of every shape plus the adversarial
// cases the unit tests pin.
func FuzzBinaryFrameDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 5, 300} {
		enc := AppendBinaryResults(nil, "seed", 7, genResults(rng, n))
		f.Add(enc[4:]) // frame payload sans length prefix
		f.Add(enc)     // length-prefixed stream bytes
	}
	slide := AppendBinaryResults(nil, "s", 1, genSlideRun(rng, 64))
	f.Add(slide[4 : len(slide)/2])                                                // truncated mid-frame
	f.Add([]byte{binaryMagic, BinaryVersion, frameKindResults, 0, 0, 1, 0, 0xFF}) // lying row count
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})                                         // oversized length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, frames, err := DecodeBinaryFrame(data)
		if err == nil {
			// Anything the decoder accepts must respect its own bounds.
			if len(frames) == 0 || len(frames) > MaxBinaryFrameResults {
				t.Fatalf("accepted frame with %d results", len(frames))
			}
			if len(hdr.Session) > len(data) {
				t.Fatalf("session %q longer than input", hdr.Session)
			}
		}

		// The same bytes as a length-prefixed stream: Next must terminate
		// with io.EOF or an error, never hang on the in-memory reader.
		stream := append(binary.LittleEndian.AppendUint32(nil, uint32(len(data))), data...)
		sc := NewBinaryScanner(bytes.NewReader(stream))
		decoded := 0
		for {
			if _, err := sc.Next(); err != nil {
				break
			}
			if decoded++; decoded > MaxBinaryFrameResults {
				t.Fatalf("scanner produced more than %d results from one frame", MaxBinaryFrameResults)
			}
		}
	})
}
