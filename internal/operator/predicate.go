package operator

import (
	"fmt"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
)

// CmpOp is a comparison operator for predicates.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator in SQL syntax.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(op))
	}
}

// Apply evaluates "left op right" under Value.Compare semantics.
func (op CmpOp) Apply(left, right storage.Value) bool {
	c := left.Compare(right)
	switch op {
	case Eq:
		return c == 0
	case Ne:
		return c != 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	default:
		return false
	}
}

// Predicate is one conjunct of a WHERE restriction over a matrix column.
type Predicate struct {
	// Col is the attribute index the predicate reads.
	Col int
	Op  CmpOp
	// Operand is the constant compared against.
	Operand storage.Value
}

// String renders the predicate.
func (p Predicate) String() string {
	return fmt.Sprintf("col%d %s %s", p.Col, p.Op, p.Operand)
}

// Eval tests the predicate against tuple row of m, charging one value
// read per evaluation to the per-column tracker (trackers indexed by
// column; nil entries skip accounting).
func (p Predicate) Eval(m *storage.Matrix, row int, trackers []*iomodel.Tracker) (bool, error) {
	v, err := m.At(row, p.Col)
	if err != nil {
		return false, err
	}
	if p.Col < len(trackers) && trackers[p.Col] != nil {
		trackers[p.Col].Access(row)
	}
	return p.Op.Apply(v, p.Operand), nil
}

// ConjunctStats tracks the observed selectivity and cost of one predicate
// over a sliding window of recent touches. The adaptive optimizer
// (paper §2.9 "Optimization") reorders conjuncts as gestures wander into
// data regions with different properties, so the statistics must forget:
// a decayed counter halves the weight of history every window.
type ConjunctStats struct {
	// window is the decay period in evaluations.
	window  int
	evals   float64
	passes  float64
	samples int
}

// NewConjunctStats returns stats with the given decay window (values
// <= 0 select 64).
func NewConjunctStats(window int) *ConjunctStats {
	if window <= 0 {
		window = 64
	}
	return &ConjunctStats{window: window}
}

// Observe records one evaluation outcome.
func (s *ConjunctStats) Observe(passed bool) {
	s.evals++
	if passed {
		s.passes++
	}
	s.samples++
	if s.samples >= s.window {
		// Exponential decay: keep half the weight.
		s.evals /= 2
		s.passes /= 2
		s.samples = 0
	}
}

// Selectivity estimates the probability a tuple passes. With no
// observations it returns 0.5 (uninformative prior).
func (s *ConjunctStats) Selectivity() float64 {
	if s.evals == 0 {
		return 0.5
	}
	return s.passes / s.evals
}

// Observations reports the (decayed) evaluation weight.
func (s *ConjunctStats) Observations() float64 { return s.evals }
