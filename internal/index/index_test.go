package index

import (
	"sort"
	"testing"
	"testing/quick"

	"dbtouch/internal/storage"
)

func TestBuildAndRankAccess(t *testing.T) {
	col := storage.NewIntColumn("v", []int64{30, 10, 20, 40, 10})
	idx := New(col)
	if idx.Built() {
		t.Fatal("index should start unbuilt")
	}
	idx.Build(nil)
	wantOrder := []float64{10, 10, 20, 30, 40}
	for rank, want := range wantOrder {
		v, pos, err := idx.ValueAtRank(rank, nil)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("rank %d = %v, want %v", rank, v, want)
		}
		if col.Float(pos) != want {
			t.Fatal("returned position inconsistent with value")
		}
	}
}

func TestRankErrors(t *testing.T) {
	col := storage.NewIntColumn("v", []int64{1})
	idx := New(col)
	if _, err := idx.PositionOfRank(0); err == nil {
		t.Fatal("unbuilt index should error")
	}
	idx.Build(nil)
	if _, err := idx.PositionOfRank(5); err == nil {
		t.Fatal("out-of-range rank should error")
	}
	if _, err := idx.RankOf(0, nil); err != nil {
		t.Fatal("built RankOf should work")
	}
}

// Property: the permutation is a true sort of the column.
func TestPermutationSortedProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		idx := New(storage.NewIntColumn("v", vals))
		idx.Build(nil)
		prev := -1 << 62
		seen := make(map[int]bool)
		for r := 0; r < idx.Len(); r++ {
			v, pos, err := idx.ValueAtRank(r, nil)
			if err != nil || seen[pos] {
				return false
			}
			seen[pos] = true
			if int64(v) < int64(prev) {
				return false
			}
			prev = int(v)
		}
		return len(seen) == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMatchesNaive(t *testing.T) {
	vals := []int64{5, 1, 9, 3, 7, 3, 8, 2}
	col := storage.NewIntColumn("v", vals)
	idx := New(col)
	idx.Build(nil)
	got, err := idx.Range(3, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want []int
	for i, v := range vals {
		if v >= 3 && v <= 7 {
			want = append(want, i)
		}
	}
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
	// Empty and inverted ranges.
	if r, _ := idx.Range(100, 200, nil); len(r) != 0 {
		t.Fatal("out-of-domain range should be empty")
	}
	if r, _ := idx.Range(7, 3, nil); r != nil {
		t.Fatal("inverted range should be nil")
	}
}

func TestRankOfLowerBound(t *testing.T) {
	col := storage.NewIntColumn("v", []int64{10, 20, 30})
	idx := New(col)
	idx.Build(nil)
	cases := []struct {
		v    float64
		want int
	}{{5, 0}, {10, 0}, {15, 1}, {30, 2}, {31, 3}}
	for _, tc := range cases {
		got, err := idx.RankOf(tc.v, nil)
		if err != nil || got != tc.want {
			t.Errorf("RankOf(%v) = %d, %v; want %d", tc.v, got, err, tc.want)
		}
	}
}

func TestRegistryLazyBuild(t *testing.T) {
	r := NewRegistry()
	col := storage.NewIntColumn("v", []int64{3, 1, 2})
	idx1 := r.For(0, col, nil)
	if !idx1.Built() {
		t.Fatal("For should build")
	}
	if r.Builds() != 1 {
		t.Fatalf("builds = %d", r.Builds())
	}
	idx2 := r.For(0, col, nil)
	if idx2 != idx1 || r.Builds() != 1 {
		t.Fatal("second For should reuse the built index")
	}
	r.For(1, col, nil)
	if r.Builds() != 2 {
		t.Fatal("distinct level should build separately")
	}
}
