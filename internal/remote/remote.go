// Package remote simulates the paper's remote-processing deployment
// (§4 "Remote Processing"): the touch device stores only small (coarse)
// samples and answers touches locally at once, while a server stores the
// base data and big samples and ships fine-grained refinements back.
// Because "sending a new remote request for every single touch input of a
// long gesture will lead to extensive administration and communication
// costs", the device batches touch requests into round trips.
//
// The split mirrors the session layer's ownership contract: a Device is
// per-session mutable state (local hierarchy, request pipeline, stats) and
// belongs to one exploration session, while one Server is the shared side
// and may serve any number of concurrent devices — its request handling is
// serialized internally, modeling a single-queue server process.
package remote

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/sample"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

// NetParams models the device↔server link.
type NetParams struct {
	// RTT is the round-trip latency per request.
	RTT time.Duration
	// BytesPerSec is the transfer bandwidth.
	BytesPerSec float64
}

// DefaultNet models a 2013-era WAN link: 60ms RTT, 2 MB/s.
func DefaultNet() NetParams {
	return NetParams{RTT: 60 * time.Millisecond, BytesPerSec: 2 << 20}
}

// Server owns the base data and the full sample hierarchy, with its own
// clock: server work overlaps device work, so server read time contributes
// to response latency without blocking the device. One server may be
// shared by many concurrent device sessions; requests are served one at a
// time under an internal lock (a single-queue server). Note that server
// cache state (warm blocks) is shared across devices, so a request's cost
// depends on what earlier requests — possibly another device's — already
// warmed, exactly as on a real shared server; with concurrent devices the
// arrival order, and hence per-device cost, follows the goroutine
// schedule. Single-device deployments remain fully deterministic.
type Server struct {
	mu        sync.Mutex
	clock     *vclock.Clock
	hierarchy *sample.Hierarchy
}

// NewServer builds a server over base with a full hierarchy.
func NewServer(base *storage.Column, levels int, params iomodel.Params) (*Server, error) {
	clock := vclock.New()
	h, err := sample.Build(base, levels, clock, params, nil)
	if err != nil {
		return nil, err
	}
	return &Server{clock: clock, hierarchy: h}, nil
}

// ReadRange serves a dense window read at a level, returning the values,
// the base ids they represent, and the server time consumed.
func (s *Server) ReadRange(lo, hi, level int) (values []float64, ids []int, cost time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.clock.Now()
	l, err := s.hierarchy.Level(level)
	if err != nil {
		return nil, nil, 0
	}
	from, to := lo/l.Stride, (hi+l.Stride-1)/l.Stride
	if from < 0 {
		from = 0
	}
	if to > l.Col.Len() {
		to = l.Col.Len()
	}
	for i := from; i < to; i++ {
		l.Tracker.Access(i)
		values = append(values, l.Col.Float(i))
		ids = append(ids, i*l.Stride)
	}
	return values, ids, s.clock.Now() - start
}

// readIDs serves point reads for the given base ids at a level (duplicates
// after stride snapping are deduplicated), returning the values, the base
// ids they represent, and the server time consumed.
func (s *Server) readIDs(baseIDs []int, level int) (values []float64, ids []int, cost time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.clock.Now()
	l, err := s.hierarchy.Level(level)
	if err != nil {
		return nil, nil, 0
	}
	seen := make(map[int]bool, len(baseIDs))
	for _, baseID := range baseIDs {
		idx := baseID / l.Stride
		if idx < 0 {
			idx = 0
		}
		if idx >= l.Col.Len() {
			idx = l.Col.Len() - 1
		}
		if seen[idx] {
			continue
		}
		seen[idx] = true
		l.Tracker.Access(idx)
		values = append(values, l.Col.Float(idx))
		ids = append(ids, idx*l.Stride)
	}
	return values, ids, s.clock.Now() - start
}

// Refinement is a fine-grained server answer for one base tuple.
type Refinement struct {
	BaseID int
	Value  float64
	Level  int
	// RequestedAt is when the batch containing this refinement left the
	// device; ArrivesAt is when the refinement lands back.
	RequestedAt time.Duration
	ArrivesAt   time.Duration
}

// Stats counts device-side activity.
type Stats struct {
	LocalAnswers int64
	RoundTrips   int64
	TouchesAsked int64
	BytesMoved   int64
	Refinements  int64
}

// Device is the touch-side half: coarse local hierarchy plus an async
// request pipeline to the server.
type Device struct {
	clock *vclock.Clock
	local *sample.Hierarchy
	// localFinest is the finest level index available locally, counted
	// in *server* level numbering (device level 0 == server level
	// serverOffset).
	serverOffset int
	server       *Server
	net          NetParams
	// BatchWindow groups touch requests arriving within the window into
	// one round trip; zero sends one request per touch.
	BatchWindow time.Duration

	pendingIDs    []int
	pendingLevel  int
	batchDeadline time.Duration

	inFlight []Refinement
	stats    Stats
}

// NewDevice builds a device holding only the levels of base coarser than
// or equal to serverOffset (i.e. a 1/2^serverOffset sample downward).
func NewDevice(clock *vclock.Clock, server *Server, serverOffset, localLevels int, params iomodel.Params) (*Device, error) {
	if serverOffset < 0 || serverOffset >= server.hierarchy.NumLevels() {
		return nil, fmt.Errorf("remote: server offset %d out of range", serverOffset)
	}
	lvl, err := server.hierarchy.Level(serverOffset)
	if err != nil {
		return nil, err
	}
	// The device's base is a copy of the server's level at serverOffset.
	local, err := sample.Build(lvl.Col.Clone(), localLevels, clock, params, nil)
	if err != nil {
		return nil, err
	}
	return &Device{
		clock:        clock,
		local:        local,
		serverOffset: serverOffset,
		server:       server,
		net:          DefaultNet(),
		BatchWindow:  150 * time.Millisecond,
	}, nil
}

// SetNet overrides the network parameters.
func (d *Device) SetNet(n NetParams) { d.net = n }

// Stats returns device counters.
func (d *Device) Stats() Stats { return d.stats }

// Answer is the immediate (local) response to a touch.
type Answer struct {
	Value float64
	// BaseID is the base tuple the local sample entry represents.
	BaseID int
	// Local level that answered, in server level numbering.
	Level int
}

// Touch answers a touch on base tuple baseID immediately from local data
// and enqueues a request for detail at wantLevel (server numbering; lower
// = finer). Refinements arrive asynchronously; see Poll.
func (d *Device) Touch(baseID, wantLevel int) Answer {
	d.stats.TouchesAsked++
	stride := 1 << d.serverOffset
	localID := baseID / stride
	v, localBase, err := d.local.ValueAt(localID, 0)
	if err != nil {
		return Answer{}
	}
	ans := Answer{Value: v, BaseID: localBase * stride, Level: d.serverOffset}
	d.stats.LocalAnswers++
	if wantLevel < d.serverOffset {
		d.enqueue(baseID, wantLevel)
	}
	return ans
}

// enqueue batches a detail request.
func (d *Device) enqueue(baseID, level int) {
	if len(d.pendingIDs) == 0 {
		d.batchDeadline = d.clock.Now() + d.BatchWindow
		d.pendingLevel = level
	}
	if level < d.pendingLevel {
		d.pendingLevel = level
	}
	d.pendingIDs = append(d.pendingIDs, baseID)
	if d.BatchWindow == 0 {
		d.flush()
	}
}

// flush sends the pending batch as one round trip.
func (d *Device) flush() {
	if len(d.pendingIDs) == 0 {
		return
	}
	sort.Ints(d.pendingIDs)
	values, ids, serverCost := d.server.readIDs(d.pendingIDs, d.pendingLevel)
	bytes := int64(len(values)) * 8
	transfer := time.Duration(float64(bytes) / d.net.BytesPerSec * float64(time.Second))
	arrive := d.clock.Now() + d.net.RTT + serverCost + transfer
	requested := d.clock.Now()
	for i, v := range values {
		d.inFlight = append(d.inFlight, Refinement{
			BaseID: ids[i], Value: v, Level: d.pendingLevel,
			RequestedAt: requested, ArrivesAt: arrive,
		})
	}
	d.stats.RoundTrips++
	d.stats.BytesMoved += bytes
	d.pendingIDs = d.pendingIDs[:0]
}

// Poll delivers refinements that have arrived by the current virtual
// time, flushing any batch whose window expired.
func (d *Device) Poll() []Refinement {
	now := d.clock.Now()
	if len(d.pendingIDs) > 0 && now >= d.batchDeadline {
		d.flush()
	}
	var arrived, waiting []Refinement
	for _, r := range d.inFlight {
		if r.ArrivesAt <= now {
			arrived = append(arrived, r)
		} else {
			waiting = append(waiting, r)
		}
	}
	d.inFlight = waiting
	d.stats.Refinements += int64(len(arrived))
	return arrived
}

// Flush forces the current batch out (end of gesture).
func (d *Device) Flush() { d.flush() }

// InFlight reports refinements still traveling.
func (d *Device) InFlight() int { return len(d.inFlight) }
