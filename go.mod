module dbtouch

go 1.24
