package operator

import (
	"sort"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
)

// IncrementalGroupBy maintains per-group running aggregates fed one tuple
// per touch. Like the symmetric join, it is non-blocking: the current
// group table is always presentable, refining as the gesture covers more
// tuples (paper §2.9: "the same is true for hash-based grouping").
type IncrementalGroupBy struct {
	keyCol *storage.Column
	valCol *storage.Column
	kind   AggKind
	groups map[string]*RunningAgg
	seen   map[int]bool
}

// NewIncrementalGroupBy groups valCol by keyCol with the given aggregate.
func NewIncrementalGroupBy(keyCol, valCol *storage.Column, kind AggKind) *IncrementalGroupBy {
	return &IncrementalGroupBy{
		keyCol: keyCol,
		valCol: valCol,
		kind:   kind,
		groups: make(map[string]*RunningAgg),
		seen:   make(map[int]bool),
	}
}

// Push absorbs tuple id (idempotent for revisited tuples), charging both
// the key and value reads, and returns the group key's current aggregate.
func (g *IncrementalGroupBy) Push(id int, keyTracker, valTracker *iomodel.Tracker) (key string, value float64, ok bool) {
	if id < 0 || id >= g.keyCol.Len() || g.seen[id] {
		return "", 0, false
	}
	g.seen[id] = true
	if keyTracker != nil {
		keyTracker.Access(id)
	}
	if valTracker != nil {
		valTracker.Access(id)
	}
	key = g.keyCol.Value(id).String()
	agg, okGroup := g.groups[key]
	if !okGroup {
		agg = NewRunningAgg(g.kind)
		g.groups[key] = agg
	}
	agg.Add(g.valCol.Float(id))
	return key, agg.Value(), true
}

// Group reports one group's current state.
type Group struct {
	Key   string
	Value float64
	N     int64
}

// Groups returns the current group table sorted by key.
func (g *IncrementalGroupBy) Groups() []Group {
	out := make([]Group, 0, len(g.groups))
	for k, agg := range g.groups {
		out = append(out, Group{Key: k, Value: agg.Value(), N: agg.N()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// SeenTuples reports how many distinct tuples have been absorbed.
func (g *IncrementalGroupBy) SeenTuples() int { return len(g.seen) }
