//go:build !race

package storage

// raceEnabled is false in normal builds; see race_on.go for why the
// SIMD dispatch consults it.
const raceEnabled = false
