// Quickstart: load a column, slide a finger over it, read the summaries.
//
// This is the minimal dbTouch loop — no SQL, no schema: put data on
// screen, touch it, watch answers pop up.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"dbtouch"
)

func main() {
	// A million sensor readings with a hot region hiding at 60-63%.
	rng := rand.New(rand.NewSource(1))
	temps := make([]float64, 1_000_000)
	for i := range temps {
		temps[i] = 20 + rng.Float64()*5
		if i > 600_000 && i < 630_000 {
			temps[i] += 40 // overheating!
		}
	}

	db := dbtouch.Open()
	db.NewTable("readings").Float("temp", temps).MustCreate()

	// Place the column on screen: 2cm wide, 10cm tall, at (2,2).
	obj, err := db.NewColumnObject("readings", "temp", 2, 2, 2, 10)
	if err != nil {
		panic(err)
	}

	// Configure what a touch does: interactive summaries (average of the
	// 21 entries around each touched tuple).
	obj.Summarize(dbtouch.Avg, 10)

	// Slide a finger from the top of the object to the bottom in two
	// seconds. Every delivered touch maps to a tuple and produces one
	// summary; slower slides produce more of them.
	results := obj.Slide(2 * time.Second)

	fmt.Printf("slide produced %d summaries (virtual time %v)\n\n",
		len(results), db.Now().Round(time.Millisecond))
	for _, r := range results {
		marker := ""
		if r.Agg > 30 {
			marker = "  ← hot!"
		}
		fmt.Printf("tuples %8d-%8d  avg=%6.2f%s\n", r.WindowLo, r.WindowHi-1, r.Agg, marker)
	}

	fmt.Println("\nThe hot region shows up without a single query — now zoom in and")
	fmt.Println("slide slower over it for detail (see examples/sensor-monitoring).")
}
