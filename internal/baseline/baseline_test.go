package baseline

import (
	"strings"
	"testing"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

func TestLexer(t *testing.T) {
	toks, err := lex("SELECT avg(v), 'str lit' FROM t WHERE a <= -1.5e2 AND b <> 3;")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind != tokEOF {
			texts = append(texts, tok.text)
		}
	}
	want := []string{"SELECT", "avg", "(", "v", ")", ",", "str lit", "FROM", "t",
		"WHERE", "a", "<=", "-1.5e2", "AND", "b", "<>", "3", ";"}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string should error")
	}
	if _, err := lex("SELECT @v"); err == nil {
		t.Fatal("bad rune should error")
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT * FROM t",
		"SELECT v FROM t WHERE v > 5",
		"SELECT avg(v), count(*) FROM t",
		"SELECT k, sum(v) FROM t GROUP BY k",
		"SELECT v FROM t ORDER BY v DESC LIMIT 10",
		"SELECT * FROM a JOIN b ON a.x = b.y",
		"SELECT v FROM t WHERE v BETWEEN 1 AND 5",
	}
	for _, sql := range cases {
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("Parse(%q): %v", sql, err)
		}
		// Round-trip: the rendered statement must re-parse to the same
		// rendering (BETWEEN normalizes to two conjuncts).
		again, err := Parse(stmt.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", stmt.String(), err)
		}
		if again.String() != stmt.String() {
			t.Fatalf("round trip changed: %q vs %q", stmt.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT v t",
		"SELECT v FROM t WHERE",
		"SELECT v FROM t WHERE v ~ 3",
		"SELECT sum(*) FROM t", // only COUNT takes *
		"SELECT v FROM t LIMIT -1",
		"SELECT v FROM t garbage",
		"SELECT v FROM t JOIN u ON a.x <> b.y",
	}
	for _, sql := range cases {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	clock := vclock.New()
	e := New(clock, iomodel.DefaultParams())
	m, err := storage.NewMatrix("t",
		storage.NewIntColumn("id", []int64{0, 1, 2, 3, 4, 5}),
		storage.NewFloatColumn("v", []float64{10, 20, 30, 40, 50, 60}),
		storage.NewStringColumn("k", []string{"a", "b", "a", "b", "a", "b"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(m); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQueryProject(t *testing.T) {
	e := newEngine(t)
	rs, err := e.Query("SELECT v FROM t WHERE id >= 2 AND id < 4")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 || rs.Rows[0][0].AsFloat() != 30 || rs.Rows[1][0].AsFloat() != 40 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if rs.Elapsed <= 0 {
		t.Fatal("query should consume virtual time")
	}
}

func TestQueryStar(t *testing.T) {
	e := newEngine(t)
	rs, err := e.Query("SELECT * FROM t LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 || len(rs.Columns) != 3 {
		t.Fatalf("star = %v cols %v", rs.Rows, rs.Columns)
	}
}

func TestQueryAggregates(t *testing.T) {
	e := newEngine(t)
	rs, err := e.Query("SELECT avg(v), count(*), min(v), max(v), sum(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	row := rs.Rows[0]
	want := []float64{35, 6, 10, 60, 210}
	for i, w := range want {
		if row[i].AsFloat() != w {
			t.Fatalf("agg %d = %v, want %v", i, row[i], w)
		}
	}
}

func TestQueryAggregateWithFilter(t *testing.T) {
	e := newEngine(t)
	rs, err := e.Query("SELECT sum(v) FROM t WHERE k = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rows[0][0].AsFloat(); got != 90 {
		t.Fatalf("filtered sum = %v, want 90", got)
	}
}

func TestQueryGroupBy(t *testing.T) {
	e := newEngine(t)
	rs, err := e.Query("SELECT k, sum(v), count(*) FROM t GROUP BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("groups = %v", rs.Rows)
	}
	// sorted by key: a then b
	if rs.Rows[0][0].S != "a" || rs.Rows[0][1].AsFloat() != 90 || rs.Rows[0][2].AsFloat() != 3 {
		t.Fatalf("group a = %v", rs.Rows[0])
	}
	if rs.Rows[1][0].S != "b" || rs.Rows[1][1].AsFloat() != 120 {
		t.Fatalf("group b = %v", rs.Rows[1])
	}
}

func TestQueryOrderByLimit(t *testing.T) {
	e := newEngine(t)
	rs, err := e.Query("SELECT v FROM t ORDER BY v DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 || rs.Rows[0][0].AsFloat() != 60 || rs.Rows[2][0].AsFloat() != 40 {
		t.Fatalf("ordered rows = %v", rs.Rows)
	}
}

func TestQueryBetween(t *testing.T) {
	e := newEngine(t)
	rs, err := e.Query("SELECT count(*) FROM t WHERE v BETWEEN 20 AND 40")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].AsFloat() != 3 {
		t.Fatalf("between count = %v", rs.Rows[0][0])
	}
}

func TestQueryJoin(t *testing.T) {
	clock := vclock.New()
	e := New(clock, iomodel.DefaultParams())
	left, _ := storage.NewMatrix("a", storage.NewIntColumn("x", []int64{1, 2, 3, 2}))
	right, _ := storage.NewMatrix("b", storage.NewIntColumn("y", []int64{2, 2, 9}))
	_ = e.Register(left)
	_ = e.Register(right)
	rs, err := e.Query("SELECT count(*) FROM a JOIN b ON a.x = b.y")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].AsFloat() != 4 { // rows 1,3 of a × rows 0,1 of b
		t.Fatalf("join count = %v", rs.Rows[0][0])
	}
	// Materialized join pairs.
	rs, err = e.Query("SELECT * FROM a JOIN b ON a.x = b.y LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Fatalf("join rows = %v", rs.Rows)
	}
}

func TestQueryErrors(t *testing.T) {
	e := newEngine(t)
	cases := []string{
		"SELECT v FROM missing",
		"SELECT nope FROM t",
		"SELECT avg(nope) FROM t",
		"SELECT k, v FROM t GROUP BY k", // non-grouped plain column
		"SELECT v, avg(v) FROM t",       // mixed without group by
		"SELECT v FROM t JOIN u ON t.v = u.v",
	}
	for _, sql := range cases {
		if _, err := e.Query(sql); err == nil {
			t.Errorf("Query(%q) should fail", sql)
		}
	}
}

func TestEngineChargesReads(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Query("SELECT avg(v) FROM t"); err != nil {
		t.Fatal(err)
	}
	st := e.TotalStats()
	if st.ValuesRead != 6 {
		t.Fatalf("values read = %d, want 6 (full scan)", st.ValuesRead)
	}
	if e.Queries() != 1 {
		t.Fatalf("queries = %d", e.Queries())
	}
}

func TestEngineFullScansEveryQuery(t *testing.T) {
	// The monolithic property: even a highly selective WHERE costs a
	// full scan of the filter column.
	e := newEngine(t)
	_, _ = e.Query("SELECT v FROM t WHERE id = 3")
	st := e.TotalStats()
	if st.ValuesRead < 6 {
		t.Fatalf("values read = %d; baseline must scan everything", st.ValuesRead)
	}
}

func TestRegisterRowMajorConverts(t *testing.T) {
	clock := vclock.New()
	e := New(clock, iomodel.DefaultParams())
	rm := storage.NewRowMajorMatrix("r", []storage.ColumnMeta{{Name: "x", Type: storage.Int64}})
	_ = rm.AppendRow([]storage.Value{storage.IntValue(5)})
	if err := e.Register(rm); err != nil {
		t.Fatal(err)
	}
	rs, err := e.Query("SELECT x FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].I != 5 {
		t.Fatalf("row-major register lost data: %v", rs.Rows)
	}
}

func TestSelectItemNames(t *testing.T) {
	stmt, err := Parse("SELECT avg(v) AS mean, count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Items[0].Name() != "mean" {
		t.Fatalf("alias = %q", stmt.Items[0].Name())
	}
	if !strings.Contains(stmt.Items[1].Name(), "count") {
		t.Fatalf("default name = %q", stmt.Items[1].Name())
	}
	if stmt.Items[1].Agg != operator.Count {
		t.Fatal("agg kind wrong")
	}
}
