package sessionlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf(`{"v":2,"op":"perform","session":"u","n":%d}`, i))
}

func mustAppendN(t *testing.T, st *Store, id string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := st.AppendSession(id, payloadFor(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func assertHistory(t *testing.T, rep *Replay, n int) {
	t.Helper()
	if len(rep.Frames) != n {
		t.Fatalf("replay has %d frames, want %d", len(rep.Frames), n)
	}
	for i, fr := range rep.Frames {
		if fr.Seq != uint64(i+1) {
			t.Fatalf("frame %d has seq %d, want %d", i, fr.Seq, i+1)
		}
		if string(fr.Payload) != string(payloadFor(i)) {
			t.Fatalf("frame %d payload = %q, want %q", i, fr.Payload, payloadFor(i))
		}
	}
}

func TestAppendLoadRoundTrip(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mustAppendN(t, st, "u", 10)
	rep, err := st.LoadSession("u")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Torn {
		t.Fatal("clean log reported torn")
	}
	assertHistory(t, rep, 10)
	if rep.LastSeq != 10 {
		t.Fatalf("LastSeq = %d, want 10", rep.LastSeq)
	}
}

func TestLoadMissingSessionIsErrNoLog(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.LoadSession("ghost"); err == nil || !errors.Is(err, ErrNoLog) {
		t.Fatalf("load of missing session = %v, want ErrNoLog", err)
	}
}

func TestCompactionPreservesHistoryAndBoundsTail(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mustAppendN(t, st, "u", 20)
	meta := CheckpointMeta{VClockNS: 12345, Objects: map[string]int{"col": 1}}
	if err := st.CompactSession("u", meta); err != nil {
		t.Fatal(err)
	}
	if _, tail := st.SessionBytes("u"); tail != 0 {
		t.Fatalf("tail after compaction = %d bytes, want 0", tail)
	}
	// History survives the rewrite, and the meta round-trips.
	rep, err := st.LoadSession("u")
	if err != nil {
		t.Fatal(err)
	}
	assertHistory(t, rep, 20)
	if rep.Meta == nil || rep.Meta.VClockNS != 12345 || rep.Meta.Objects["col"] != 1 {
		t.Fatalf("checkpoint meta did not round-trip: %+v", rep.Meta)
	}
	if rep.Meta.LastSeq != 20 || rep.Meta.Frames != 20 {
		t.Fatalf("checkpoint coverage = seq %d / %d frames, want 20/20", rep.Meta.LastSeq, rep.Meta.Frames)
	}
	// Appends after compaction continue the sequence.
	for i := 20; i < 25; i++ {
		if _, err := st.AppendSession("u", payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = st.LoadSession("u")
	if err != nil {
		t.Fatal(err)
	}
	assertHistory(t, rep, 25)
	// A second compaction folds the tail in.
	if err := st.CompactSession("u", CheckpointMeta{}); err != nil {
		t.Fatal(err)
	}
	rep, err = st.LoadSession("u")
	if err != nil {
		t.Fatal(err)
	}
	assertHistory(t, rep, 25)
	if st.Stats().Compactions != 2 {
		t.Fatalf("Compactions = %d, want 2", st.Stats().Compactions)
	}
}

// TestCrashBetweenCheckpointAndTruncate simulates the one non-atomic
// window in compaction: the checkpoint renamed into place but the log
// not yet truncated. The duplicate frames must be skipped by sequence
// number, not replayed twice.
func TestCrashBetweenCheckpointAndTruncate(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustAppendN(t, st, "u", 8)
	logPath := filepath.Join(dir, "s-u.log")
	preCompact, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.CompactSession("u", CheckpointMeta{}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Put the pre-compaction log back: exactly what the crash window
	// leaves behind.
	if err := os.WriteFile(logPath, preCompact, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rep, err := st2.LoadSession("u")
	if err != nil {
		t.Fatal(err)
	}
	assertHistory(t, rep, 8)
	// And the appender reopens past the duplicates.
	if _, err := st2.AppendSession("u", payloadFor(8)); err != nil {
		t.Fatal(err)
	}
	rep, err = st2.LoadSession("u")
	if err != nil {
		t.Fatal(err)
	}
	assertHistory(t, rep, 9)
}

func TestRemoveSessionForgetsHistory(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mustAppendN(t, st, "u", 4)
	if err := st.CompactSession("u", CheckpointMeta{}); err != nil {
		t.Fatal(err)
	}
	if err := st.RemoveSession("u"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadSession("u"); !errors.Is(err, ErrNoLog) {
		t.Fatalf("load after remove = %v, want ErrNoLog", err)
	}
	// A re-created session starts a fresh history at seq 1.
	mustAppendN(t, st, "u", 2)
	rep, err := st.LoadSession("u")
	if err != nil {
		t.Fatal(err)
	}
	assertHistory(t, rep, 2)
}

// TestAppenderFDCache proves the open-file LRU: many sessions appended
// round-robin stay correct while only MaxOpenLogs descriptors are
// cached (the 10k-session soak depends on this).
func TestAppenderFDCache(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir(), MaxOpenLogs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const sessions, rounds = 7, 5
	for r := 0; r < rounds; r++ {
		for s := 0; s < sessions; s++ {
			id := fmt.Sprintf("u%d", s)
			if _, err := st.AppendSession(id, payloadFor(r)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if open := st.Stats().OpenLogs; open > 2 {
		t.Fatalf("OpenLogs = %d, want <= 2", open)
	}
	for s := 0; s < sessions; s++ {
		rep, err := st.LoadSession(fmt.Sprintf("u%d", s))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Frames) != rounds || rep.LastSeq != rounds {
			t.Fatalf("session u%d: %d frames last seq %d, want %d", s, len(rep.Frames), rep.LastSeq, rounds)
		}
	}
}

// TestRetentionDropsOldestParked pins the rotation contract: past the
// byte budget the oldest parked sessions lose their files first, while
// protected (live) sessions survive.
func TestRetentionDropsOldestParked(t *testing.T) {
	protected := map[string]bool{"live": true}
	st, err := Open(Options{
		Dir:         t.TempDir(),
		RetainBytes: 8 << 10,
		Protect:     func(id string) bool { return protected[id] },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	big := make([]byte, 1024)
	for i := range big {
		big[i] = byte(i)
	}
	for s := 0; s < 8; s++ {
		id := fmt.Sprintf("old%d", s)
		for i := 0; i < 3; i++ {
			if _, err := st.AppendSession(id, big); err != nil {
				t.Fatal(err)
			}
		}
		st.Park(id)
	}
	// The protected session appends last, pushing well past the budget.
	for i := 0; i < 8; i++ {
		if _, err := st.AppendSession("live", big); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().DroppedSessions == 0 {
		t.Fatal("retention dropped nothing past the budget")
	}
	if _, err := st.LoadSession("live"); err != nil {
		t.Fatalf("protected session was dropped: %v", err)
	}
	// Survivors must fit the budget modulo the protected session and
	// whatever is still open for append.
	var total int64
	entries, _ := os.ReadDir(st.dir)
	for _, e := range entries {
		if info, err := e.Info(); err == nil {
			total += info.Size()
		}
	}
	liveBytes, _ := st.SessionBytes("live")
	if total-liveBytes > 8<<10 {
		t.Fatalf("unprotected leftovers = %d bytes, budget 8192", total-liveBytes)
	}
}

func TestTableLogCompaction(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 6; i++ {
		if _, err := st.AppendTable("events", payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	replacement := []byte(`{"v":2,"op":"append","table":"events","rows":[[1],[2]]}`)
	if err := st.CompactTable("events", replacement); err != nil {
		t.Fatal(err)
	}
	rep, err := st.LoadTable("events")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Frames) != 1 || string(rep.Frames[0].Payload) != string(replacement) {
		t.Fatalf("compacted table log = %d frames, want the single replacement", len(rep.Frames))
	}
	if rep.LastSeq != 6 {
		t.Fatalf("replacement seq = %d, want 6 (continuity preserved)", rep.LastSeq)
	}
	// Appends continue the sequence after the rewrite.
	if _, err := st.AppendTable("events", payloadFor(6)); err != nil {
		t.Fatal(err)
	}
	rep, err = st.LoadTable("events")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Frames) != 2 || rep.LastSeq != 7 {
		t.Fatalf("post-compaction append: %d frames last seq %d, want 2/7", len(rep.Frames), rep.LastSeq)
	}
	if got := st.Tables(); len(got) != 1 || got[0] != "events" {
		t.Fatalf("Tables() = %v", got)
	}
}

func TestSessionsListsEscapedIDs(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ids := []string{"plain", "user/42", "sp ace", "pct%sign"}
	for _, id := range ids {
		if _, err := st.AppendSession(id, payloadFor(0)); err != nil {
			t.Fatalf("append %q: %v", id, err)
		}
	}
	got := st.Sessions()
	if len(got) != len(ids) {
		t.Fatalf("Sessions() = %v, want %d ids", got, len(ids))
	}
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("Sessions() returned unknown id %q (escaping does not round-trip)", id)
		}
		rep, err := st.LoadSession(id)
		if err != nil || len(rep.Frames) != 1 {
			t.Fatalf("load %q after escape round-trip: %v", id, err)
		}
	}
}
