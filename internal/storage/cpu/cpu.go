// Package cpu probes the host processor for the SIMD features the
// storage kernels dispatch on. It is a deliberately tiny subset of
// golang.org/x/sys/cpu (which this module does not depend on): one
// CPUID/XGETBV probe on amd64, a constant on arm64 (NEON is baseline),
// and all-false everywhere else or under the purego build tag.
//
// The flags are computed once at init and never change; readers need no
// synchronization. The purego tag forces every flag false even on
// capable hardware — that is the switch that pins the whole storage
// layer to the pure-Go reference kernels (see ARCHITECTURE.md "Kernel
// layer" for the build-tag matrix).
package cpu

// X86 reports amd64 feature bits relevant to the span kernels. All
// fields are false on other architectures and under the purego tag.
var X86 struct {
	// HasAVX2 reports AVX2 support usable from userspace: CPUID
	// advertises AVX2 and the OS has enabled YMM state (OSXSAVE set and
	// XCR0 bits 1–2 both on). Both halves matter — a VM or container
	// that masks XSAVE must not dispatch into VEX-256 kernels.
	HasAVX2 bool
	// HasFMA and HasAVX512F are detected for bench provenance
	// (BENCH_*.json records them) but nothing dispatches on them yet.
	HasFMA     bool
	HasAVX512F bool
}

// ARM64 reports arm64 feature bits. ASIMD (NEON) is architecturally
// mandatory on arm64, so outside purego builds it is constant true.
var ARM64 struct {
	HasASIMD bool
}

// Features renders the detected flags as a comma-separated list for
// bench metadata ("avx2,fma", "asimd", or "" when nothing is usable).
func Features() string {
	s := ""
	add := func(on bool, name string) {
		if !on {
			return
		}
		if s != "" {
			s += ","
		}
		s += name
	}
	add(X86.HasAVX2, "avx2")
	add(X86.HasFMA, "fma")
	add(X86.HasAVX512F, "avx512f")
	add(ARM64.HasASIMD, "asimd")
	return s
}
