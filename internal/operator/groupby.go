package operator

import (
	"math"
	"sort"
	"strconv"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
)

// IncrementalGroupBy maintains per-group running aggregates fed one tuple
// — or one contiguous tuple span — per touch. Like the symmetric join, it
// is non-blocking: the current group table is always presentable,
// refining as the gesture covers more tuples (paper §2.9: "the same is
// true for hash-based grouping").
//
// Groups are keyed internally by a typed 64-bit code (dictionary code,
// raw integer, float bits, or bool bit) so the hot path hashes a word
// instead of materializing a string per tuple; display names render once
// per group and match storage.Value.String exactly.
type IncrementalGroupBy struct {
	keyCol *storage.Column
	valCol *storage.Column
	kind   AggKind
	groups map[int64]*groupEntry
	// seen is a bitset over tuple ids; seenCount tracks its population.
	seen      []uint64
	seenCount int
}

type groupEntry struct {
	name string
	agg  *RunningAgg
}

// NewIncrementalGroupBy groups valCol by keyCol with the given aggregate.
func NewIncrementalGroupBy(keyCol, valCol *storage.Column, kind AggKind) *IncrementalGroupBy {
	return &IncrementalGroupBy{
		keyCol: keyCol,
		valCol: valCol,
		kind:   kind,
		groups: make(map[int64]*groupEntry),
		seen:   make([]uint64, (keyCol.Len()+63)/64),
	}
}

// Seen reports whether tuple id has already been absorbed.
func (g *IncrementalGroupBy) Seen(id int) bool {
	if id < 0 || id >= g.keyCol.Len() {
		return false
	}
	return g.seen[id>>6]&(1<<(uint(id)&63)) != 0
}

func (g *IncrementalGroupBy) markSeen(id int) {
	g.seen[id>>6] |= 1 << (uint(id) & 63)
	g.seenCount++
}

// keyCode computes the typed 64-bit group code of tuple id.
func (g *IncrementalGroupBy) keyCode(id int) int64 {
	switch g.keyCol.Type() {
	case storage.Float64:
		return int64(math.Float64bits(g.keyCol.Floats()[id]))
	default:
		// Int64 values, bool bits, and dictionary codes are already
		// distinct 64-bit codes.
		return g.keyCol.Int(id)
	}
}

// keyName renders the display name of tuple id's group, matching
// storage.Value.String for the key cell.
func (g *IncrementalGroupBy) keyName(id int) string {
	switch g.keyCol.Type() {
	case storage.Int64:
		return strconv.FormatInt(g.keyCol.Int(id), 10)
	case storage.Float64:
		return strconv.FormatFloat(g.keyCol.Floats()[id], 'g', -1, 64)
	case storage.Bool:
		return strconv.FormatBool(g.keyCol.Int(id) != 0)
	default:
		return g.keyCol.Dict().Lookup(int32(g.keyCol.Int(id)))
	}
}

// entryFor returns (creating if needed) the group of tuple id.
func (g *IncrementalGroupBy) entryFor(id int) *groupEntry {
	code := g.keyCode(id)
	e, ok := g.groups[code]
	if !ok {
		e = &groupEntry{name: g.keyName(id), agg: NewRunningAgg(g.kind)}
		g.groups[code] = e
	}
	return e
}

// Push absorbs tuple id (idempotent for revisited tuples), charging both
// the key and value reads, and returns the group key's current aggregate.
func (g *IncrementalGroupBy) Push(id int, keyTracker, valTracker *iomodel.Tracker) (key string, value float64, ok bool) {
	if id < 0 || id >= g.keyCol.Len() || g.Seen(id) {
		return "", 0, false
	}
	g.markSeen(id)
	if keyTracker != nil {
		keyTracker.Access(id)
	}
	if valTracker != nil {
		valTracker.Access(id)
	}
	e := g.entryFor(id)
	e.agg.Add(g.valCol.Float(id))
	return e.name, e.agg.Value(), true
}

// PushRange absorbs every not-yet-seen tuple in [lo, hi) in ascending
// order — the span version of Push. Key and value reads are charged per
// contiguous run of fresh tuples through the trackers' ranged accounting,
// so the virtual cost matches a per-tuple Push loop while the bookkeeping
// runs per block. It reports how many tuples were newly absorbed.
func (g *IncrementalGroupBy) PushRange(lo, hi int, keyTracker, valTracker *iomodel.Tracker) int {
	if lo < 0 {
		lo = 0
	}
	if n := g.keyCol.Len(); hi > n {
		hi = n
	}
	absorbed := 0
	runStart := -1
	flush := func(end int) {
		if runStart < 0 {
			return
		}
		if keyTracker != nil {
			keyTracker.AccessRange(runStart, end)
		}
		if valTracker != nil {
			valTracker.AccessRange(runStart, end)
		}
		runStart = -1
	}
	for id := lo; id < hi; id++ {
		if g.Seen(id) {
			flush(id)
			continue
		}
		if runStart < 0 {
			runStart = id
		}
		g.markSeen(id)
		e := g.entryFor(id)
		e.agg.Add(g.valCol.Float(id))
		absorbed++
	}
	flush(hi)
	return absorbed
}

// Rebind swaps the group-by onto newer (longer) snapshot views of the
// same columns, growing the seen bitset to cover the new tuples. Group
// state and absorbed tuples carry over: append-only growth never moves
// an already-absorbed id, so the bitset stays valid.
func (g *IncrementalGroupBy) Rebind(keyCol, valCol *storage.Column) {
	g.keyCol = keyCol
	g.valCol = valCol
	need := (keyCol.Len() + 63) / 64
	for len(g.seen) < need {
		g.seen = append(g.seen, 0)
	}
}

// GroupOf reports the current state of tuple id's group without charging
// reads (the caller just absorbed the tuple) and without creating it.
func (g *IncrementalGroupBy) GroupOf(id int) (key string, value float64, ok bool) {
	if id < 0 || id >= g.keyCol.Len() {
		return "", 0, false
	}
	e, found := g.groups[g.keyCode(id)]
	if !found {
		return "", 0, false
	}
	return e.name, e.agg.Value(), true
}

// Group reports one group's current state.
type Group struct {
	Key   string
	Value float64
	N     int64
}

// Groups returns the current group table sorted by key.
func (g *IncrementalGroupBy) Groups() []Group {
	out := make([]Group, 0, len(g.groups))
	for _, e := range g.groups {
		out = append(out, Group{Key: e.name, Value: e.agg.Value(), N: e.agg.N()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// SeenTuples reports how many distinct tuples have been absorbed.
func (g *IncrementalGroupBy) SeenTuples() int { return g.seenCount }
