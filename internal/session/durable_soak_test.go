package session

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"dbtouch/internal/gesture"
	"dbtouch/internal/protocol"
	"dbtouch/internal/sessionlog"
)

// TestDurableSoak10kSessions extends the 10k-session contract to the
// durable manager: 10k wire-opened sessions (each open logged, cycling
// the store's bounded fd cache), parked sessions holding no goroutines
// and no open log files, a hot subset driven hard enough to force
// checkpoint compaction, the whole log directory inside its retention
// budget, and a victim of that scale still resumable at the end.
func TestDurableSoak10kSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-session soak")
	}
	dir := t.TempDir()
	st, err := sessionlog.Open(sessionlog.Options{
		Dir:          dir,
		CompactBytes: 4 << 10,
		RetainBytes:  4 << 20,
		MaxOpenLogs:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	m := testManager(t, 100_000)
	defer m.Close()
	m.EnableDurability(st)

	baseGoroutines := runtime.NumGoroutine()
	const sessions = 10_000
	for i := 0; i < sessions; i++ {
		resp := m.HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpOpen, Session: sessionName(i)})
		if !resp.OK {
			t.Fatalf("open %d: %s", i, resp.Error)
		}
	}
	if m.Len() != sessions {
		t.Fatalf("%d live sessions, want %d", m.Len(), sessions)
	}
	// Wire sessions are synchronous: 10k of them parked must cost no
	// goroutines beyond test noise.
	if g := runtime.NumGoroutine(); g > baseGoroutines+10 {
		t.Fatalf("%d goroutines after 10k durable opens (baseline %d)", g, baseGoroutines)
	}
	// The fd cache, not the session count, bounds open log files.
	if open := st.Stats().OpenLogs; open > 64 {
		t.Fatalf("%d open log files, cache bound is 64", open)
	}

	// Hot subset: enough gestures per session to roll each log through
	// several compactions.
	const hot = 64
	tap := gesture.NewTap(0, 0.5)
	for i := 0; i < hot; i++ {
		sid := sessionName(i)
		if resp := m.HandleRequest(protocol.Request{
			V: protocol.Version, Op: protocol.OpCreate, Session: sid, Object: "obj",
			Create: &protocol.CreateSpec{Table: "t", Column: "v", X: 2, Y: 2, W: 2, H: 10},
		}); !resp.OK {
			t.Fatalf("create %s: %s", sid, resp.Error)
		}
		for j := 0; j < 120; j++ {
			if resp := m.HandleRequest(protocol.Request{
				V: protocol.Version, Op: protocol.OpPerform, Session: sid, Object: "obj", Gesture: &tap,
			}); !resp.OK {
				t.Fatalf("perform %s/%d: %s", sid, j, resp.Error)
			}
		}
	}

	stats := m.Stats()
	if stats.LogErrors != 0 {
		t.Fatalf("%d log errors during soak", stats.LogErrors)
	}
	if stats.LogCompactions == 0 {
		t.Fatal("hot sessions never compacted; per-session tails unbounded")
	}
	// Per-session on-disk bytes stay bounded: a compacted hot session's
	// tail sits under the threshold plus one frame's slack.
	for i := 0; i < hot; i++ {
		if _, tail := st.SessionBytes(sessionName(i)); tail > (4<<10)+1024 {
			t.Fatalf("session %s tail %d bytes exceeds compaction bound", sessionName(i), tail)
		}
	}
	if size := dirSize(t, dir); size > (4<<20)+(1<<20) {
		t.Fatalf("log dir %d bytes, retention budget 4MiB (+1MiB slack for protected live sessions)", size)
	}

	// A session of that fleet dies and comes back.
	victim := sessionName(3)
	if !m.Evict(victim) {
		t.Fatal("evict failed")
	}
	n, err := m.Resume(victim)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("resume of %s replayed nothing", victim)
	}
	if resp := m.HandleRequest(protocol.Request{
		V: protocol.Version, Op: protocol.OpPerform, Session: victim, Object: "obj", Gesture: &tap,
	}); !resp.OK {
		t.Fatalf("perform after resume: %s", resp.Error)
	}
}

// TestDurableRetentionDropsColdHistories pins the disk bound under
// pressure: with a tight retention budget and far more dead session
// histories than it can hold, the store deletes the oldest parked logs
// while live sessions' histories survive.
func TestDurableRetentionDropsColdHistories(t *testing.T) {
	dir := t.TempDir()
	st, err := sessionlog.Open(sessionlog.Options{Dir: dir, RetainBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := testManager(t, 10_000)
	defer m.Close()
	m.EnableDurability(st)

	idle := protocol.Request{V: protocol.Version, Op: protocol.OpIdle, Idle: time.Second}
	for i := 0; i < 200; i++ {
		sid := fmt.Sprintf("cold-%03d", i)
		if resp := m.HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpOpen, Session: sid}); !resp.OK {
			t.Fatalf("open: %s", resp.Error)
		}
		for j := 0; j < 20; j++ {
			req := idle
			req.Session = sid
			if resp := m.HandleRequest(req); !resp.OK {
				t.Fatalf("idle: %s", resp.Error)
			}
		}
		m.Evict(sid) // parks the history; it is now retention fodder
	}
	// One live session: its history must survive any pressure.
	if resp := m.HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpOpen, Session: "live"}); !resp.OK {
		t.Fatalf("open live: %s", resp.Error)
	}

	if st.Stats().DroppedSessions == 0 {
		t.Fatal("retention never engaged")
	}
	if size := dirSize(t, dir); size > (32<<10)+(8<<10) {
		t.Fatalf("log dir %d bytes despite 32KiB retention budget", size)
	}
	if _, err := m.Resume("live"); err != nil {
		t.Fatalf("live session's history was dropped: %v", err)
	}
}
