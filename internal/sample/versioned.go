package sample

import (
	"fmt"
	"sync"

	"dbtouch/internal/storage"
)

// verKey identifies one published version of a live column: the
// compaction generation plus the row count. Within a generation rows
// only grow, so (gen, rows) names exactly one snapshot prefix and the
// statistics for it are a pure function of the key — which is what makes
// the cache below safe to share across sessions.
type verKey struct {
	gen  uint64
	rows int
}

// levelTail is the append-only accumulator for one sample level of a
// versioned chain. Every array grows strictly at the end as the table
// grows, so a published Shared can expose capped prefix views of these
// arrays and stay immutable while the chain keeps extending.
type levelTail struct {
	// stride is the base-tuple distance between entries (2^level).
	stride int
	// col holds the level's sample values (nil for level 0, whose values
	// are the base column itself).
	col *storage.Column
	// iprefix/prefix mirror spanStats: exact int64 prefix sums for
	// integer-backed columns, strictly left-to-right float sums otherwise.
	// Extending by one value appends exactly the term a from-scratch
	// build would have added at that index, so any prefix view of these
	// arrays is bit-identical to a frozen single-pass build — the float
	// order contract survives incremental extension.
	iprefix []int64
	prefix  []float64
	// blockMin/blockMax hold zone-map entries for COMPLETE blocks only.
	// SpanEntries reads zone maps for interior blocks exclusively (head
	// and tail partial blocks scan natively), and the interior block
	// index is always < floor(n/blockLen), so complete blocks suffice;
	// a block is computed once, when it completes, and never changes.
	blockMin, blockMax []float64
}

// Versioned incrementally maintains the sample hierarchy of one live
// column across append epochs: each extension appends to level tails and
// prefix sums instead of rebuilding, and ForSnapshot carves an immutable
// Shared out of the tails for any published (gen, rows) version. The
// exact-int64 and left-to-right-float prefix contracts of spanStats are
// preserved, so a Shared served from the chain is indistinguishable from
// one built from scratch over the same frozen prefix.
type Versioned struct {
	mu        sync.Mutex
	maxLevels int
	blockLen  int
	gen       uint64
	baseLen   int
	tails     []*levelTail
	cache     map[verKey]*Shared
}

// NewVersioned builds an empty chain with the given depth bound and
// zone-map block size (values per block; <=0 selects the 1024 default
// that sharedLevel.stats uses).
func NewVersioned(maxLevels, blockLen int) *Versioned {
	if blockLen <= 0 {
		blockLen = 1024
	}
	return &Versioned{maxLevels: maxLevels, blockLen: blockLen, cache: make(map[verKey]*Shared)}
}

func ceilDiv(n, d int) int { return (n + d - 1) / d }

// levelsFor reports the highest stored level for n base rows, matching
// BuildShared's stopping rule: level i exists iff i <= maxLevels and the
// previous level holds at least 2*minLen entries.
func (v *Versioned) levelsFor(n int) int {
	const minLen = 64
	top := 0
	prevLen := n
	for i := 1; i <= v.maxLevels; i++ {
		if prevLen/2 < minLen {
			break
		}
		top = i
		prevLen = ceilDiv(prevLen, 2)
	}
	return top
}

// ForSnapshot returns the Shared hierarchy for one published version of
// the column. base must be the snapshot's own column view (its pointer
// becomes level 0, preserving the matrix-column identity the fused slide
// path checks) and gen the snapshot's compaction generation. Results are
// cached per version; concurrent sessions pinning the same version share
// one Shared.
func (v *Versioned) ForSnapshot(gen uint64, base *storage.Column) (*Shared, error) {
	rows := base.Len()
	if rows == 0 {
		return nil, fmt.Errorf("sample: empty live column %q", base.Name())
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	key := verKey{gen: gen, rows: rows}
	if s, ok := v.cache[key]; ok {
		return s, nil
	}
	if gen < v.gen {
		// A pin from before a compaction: the tails have been rebased, so
		// rebuild this one version from scratch (rare — only sessions
		// straddling a compaction pay it, once, and the result is cached
		// for the other sessions pinned to the same version).
		s, err := BuildShared(base, v.maxLevels)
		if err != nil {
			return nil, err
		}
		v.cache[key] = s
		return s, nil
	}
	if gen > v.gen {
		// Compaction rebased row positions; restart the tails.
		v.gen = gen
		v.baseLen = 0
		v.tails = nil
	}
	if rows > v.baseLen {
		v.extendLocked(base, rows)
	}
	s, err := v.buildLocked(base, rows)
	if err != nil {
		return nil, err
	}
	v.cache[key] = s
	return s, nil
}

// extendLocked advances the tails to cover rows base values, reading new
// values through base (which shares the table's backing arrays, so any
// same-generation snapshot view of length >= rows serves).
func (v *Versioned) extendLocked(base *storage.Column, rows int) {
	isInt := base.Type() != storage.Float64
	if len(v.tails) == 0 {
		t0 := &levelTail{stride: 1}
		if isInt {
			t0.iprefix = []int64{0}
		} else {
			t0.prefix = []float64{0}
		}
		v.tails = append(v.tails, t0)
	}
	top := v.levelsFor(rows)
	for li := len(v.tails); li <= top; li++ {
		t := &levelTail{stride: 1 << li, col: base.EmptyLike()}
		if isInt {
			t.iprefix = []int64{0}
		} else {
			t.prefix = []float64{0}
		}
		v.tails = append(v.tails, t)
	}
	for li, t := range v.tails {
		levelLen := ceilDiv(rows, t.stride)
		col := t.col // level values; base for level 0
		if li == 0 {
			col = base
		} else {
			for k := col.Len(); k < levelLen; k++ {
				col.AppendAt(base, k*t.stride)
			}
		}
		if isInt {
			for k := len(t.iprefix) - 1; k < levelLen; k++ {
				t.iprefix = append(t.iprefix, t.iprefix[len(t.iprefix)-1]+col.Int(k))
			}
		} else {
			acc := t.prefix[len(t.prefix)-1]
			for k := len(t.prefix) - 1; k < levelLen; k++ {
				acc += col.Float(k)
				t.prefix = append(t.prefix, acc)
			}
		}
		for b := len(t.blockMin); (b+1)*v.blockLen <= levelLen; b++ {
			lo, hi := b*v.blockLen, (b+1)*v.blockLen
			min, max, _ := col.MinMaxRange(lo, hi)
			t.blockMin = append(t.blockMin, min)
			t.blockMax = append(t.blockMax, max)
		}
	}
	v.baseLen = rows
}

// statsView carves the frozen statistics for the first n level entries
// out of the tail's append-only arrays.
func (t *levelTail) statsView(n, blockLen int) *spanStats {
	nb := n / blockLen
	s := &spanStats{
		blockMin: t.blockMin[:nb:nb],
		blockMax: t.blockMax[:nb:nb],
		blockLen: blockLen,
	}
	if t.iprefix != nil {
		s.iprefix = t.iprefix[: n+1 : n+1]
	} else {
		s.prefix = t.prefix[: n+1 : n+1]
	}
	return s
}

// buildLocked assembles the immutable Shared for rows base values. The
// sharedLevels are pre-seeded with the chain's statistics (their
// single-flight build is consumed up front), so attached sessions never
// trigger a from-scratch stats build.
func (v *Versioned) buildLocked(base *storage.Column, rows int) (*Shared, error) {
	s := &Shared{}
	lvl0 := &sharedLevel{stride: 1, col: base, span: v.tails[0].statsView(rows, v.blockLen)}
	lvl0.once.Do(func() {})
	s.levels = append(s.levels, lvl0)
	top := v.levelsFor(rows)
	for li := 1; li <= top; li++ {
		t := v.tails[li]
		levelLen := ceilDiv(rows, t.stride)
		colView, err := t.col.Prefix(levelLen)
		if err != nil {
			return nil, err
		}
		sl := &sharedLevel{stride: t.stride, col: colView, span: t.statsView(levelLen, v.blockLen)}
		sl.once.Do(func() {})
		s.levels = append(s.levels, sl)
	}
	return s, nil
}

// prune drops cached versions not in keep (called by the live store when
// pins are released; correctness never depends on the cache, only reuse).
func (v *Versioned) prune(keep map[verKey]bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for k := range v.cache {
		if !keep[k] {
			delete(v.cache, k)
		}
	}
}

// cachedVersions reports the number of cached Shared versions (test and
// ops visibility).
func (v *Versioned) cachedVersions() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.cache)
}
