package touchos

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// QuarterTurns counts 90° rotations applied to a view. The paper's rotate
// gesture (§2.8) rotates a data object by a quarter turn, flipping its
// physical layout; rotation changes only the view transform, so touches
// and identifiers calculated relative to the object view are unaffected.
type QuarterTurns int

// Normalized returns the rotation folded into [0, 3].
func (q QuarterTurns) Normalized() QuarterTurns {
	r := int(q) % 4
	if r < 0 {
		r += 4
	}
	return QuarterTurns(r)
}

// Horizontal reports whether the rotation leaves the view lying sideways
// (long axis horizontal when it started vertical).
func (q QuarterTurns) Horizontal() bool {
	n := q.Normalized()
	return n == 1 || n == 3
}

// DataProps carries the dbTouch-added view properties (paper §2.4:
// "dbTouch adds a number of properties to each view, e.g. the number of
// data entries in the underlying column or table").
type DataProps struct {
	// ObjectID links the view to a kernel data object; 0 means none.
	ObjectID int
	// Rows is the tuple count of the underlying data.
	Rows int
	// Cols is the attribute count (1 for single-column objects).
	Cols int
}

// View is a placeholder for a visual object, arranged in a master-view
// hierarchy exactly as in modern touch operating systems.
type View struct {
	id       int
	name     string
	frame    Rect // in parent coordinates
	rotation QuarterTurns
	z        int // stacking order among siblings; higher is on top
	parent   *View
	children []*View
	props    DataProps
	hidden   bool
}

// nextViewID is atomic: views are created from every session's
// goroutine (kernel construction, object placement), and ids only need
// to be unique, not dense.
var nextViewID atomic.Int64

// NewScreen creates a root view of the given size, representing the
// device screen.
func NewScreen(w, h float64) *View {
	return NewView("screen", NewRect(0, 0, w, h))
}

// NewView creates a detached view with the given frame.
func NewView(name string, frame Rect) *View {
	return &View{id: int(nextViewID.Add(1)), name: name, frame: frame}
}

// ID returns the unique view identifier.
func (v *View) ID() int { return v.id }

// Name returns the view's debug name.
func (v *View) Name() string { return v.name }

// Frame returns the view's rectangle in parent coordinates.
func (v *View) Frame() Rect { return v.frame }

// SetFrame moves/resizes the view.
func (v *View) SetFrame(r Rect) { v.frame = r }

// Rotation returns the accumulated quarter turns.
func (v *View) Rotation() QuarterTurns { return v.rotation }

// Rotate adds quarter turns to the view's transform.
func (v *View) Rotate(turns QuarterTurns) { v.rotation = (v.rotation + turns).Normalized() }

// Props returns the dbTouch data properties.
func (v *View) Props() DataProps { return v.props }

// SetProps attaches dbTouch data properties.
func (v *View) SetProps(p DataProps) { v.props = p }

// Hidden reports whether the view is excluded from hit testing.
func (v *View) Hidden() bool { return v.hidden }

// SetHidden toggles hit-test visibility.
func (v *View) SetHidden(h bool) { v.hidden = h }

// Parent returns the master view, or nil for the root.
func (v *View) Parent() *View { return v.parent }

// Children returns the subviews in stacking order (bottom first).
func (v *View) Children() []*View {
	out := append([]*View(nil), v.children...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].z < out[j].z })
	return out
}

// AddChild places child into v's hierarchy on top of existing children.
func (v *View) AddChild(child *View) error {
	if child == v {
		return fmt.Errorf("touchos: view %q cannot be its own child", v.name)
	}
	for p := v; p != nil; p = p.parent {
		if p == child {
			return fmt.Errorf("touchos: adding %q under %q would create a cycle", child.name, v.name)
		}
	}
	if child.parent != nil {
		child.parent.RemoveChild(child)
	}
	child.parent = v
	maxZ := 0
	for _, c := range v.children {
		if c.z > maxZ {
			maxZ = c.z
		}
	}
	child.z = maxZ + 1
	v.children = append(v.children, child)
	return nil
}

// RemoveChild detaches child from v.
func (v *View) RemoveChild(child *View) {
	for i, c := range v.children {
		if c == child {
			v.children = append(v.children[:i], v.children[i+1:]...)
			child.parent = nil
			return
		}
	}
}

// ToLocal converts a point from parent coordinates into v's rotated local
// coordinate system. Local coordinates always have Y running along the
// view's own height axis, so tuple mapping is rotation independent
// (paper §2.4: "touches and identifiers calculated relative to the object
// view are not affected" by rotation).
func (v *View) ToLocal(p Point) Point {
	rel := p.Sub(v.frame.Origin)
	switch v.rotation.Normalized() {
	case 1: // 90° clockwise: local Y runs along parent X
		return Point{X: rel.Y, Y: v.frame.Size.W - rel.X}
	case 2:
		return Point{X: v.frame.Size.W - rel.X, Y: v.frame.Size.H - rel.Y}
	case 3:
		return Point{X: v.frame.Size.H - rel.Y, Y: rel.X}
	default:
		return rel
	}
}

// LocalSize returns the view extent in its rotated local coordinates:
// after an odd number of quarter turns, width and height swap.
func (v *View) LocalSize() Size {
	if v.rotation.Horizontal() {
		return Size{W: v.frame.Size.H, H: v.frame.Size.W}
	}
	return v.frame.Size
}

// HitTest finds the topmost unhidden descendant whose frame contains p
// (p in v's parent coordinates, as delivered by the digitizer for the
// root view). It returns nil when the point misses v entirely.
func (v *View) HitTest(p Point) *View {
	if v.hidden || !v.frame.Contains(p) {
		return nil
	}
	inner := p.Sub(v.frame.Origin)
	children := v.Children()
	for i := len(children) - 1; i >= 0; i-- {
		if hit := children[i].HitTest(inner); hit != nil {
			return hit
		}
	}
	return v
}

// ScreenOrigin returns the view's origin in root coordinates.
func (v *View) ScreenOrigin() Point {
	o := v.frame.Origin
	for p := v.parent; p != nil; p = p.parent {
		o = o.Add(p.frame.Origin)
	}
	return o
}

// FromScreen converts a root-coordinate point into v's local coordinates,
// walking the parent chain and applying v's rotation.
func (v *View) FromScreen(p Point) Point {
	if v.parent != nil {
		p = p.Sub(v.parent.ScreenOrigin())
	}
	return v.ToLocal(p)
}
