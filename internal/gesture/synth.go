// Package gesture provides touch-gesture recognition and synthesis.
//
// The recognizer classifies raw touch streams into the paper's gesture
// vocabulary (tap, slide, pinch zoom, two-finger rotate — Figure 1). The
// synthesizer is the reproduction's replacement for a human finger: it
// emits digitizer-rate touch samples along parameterized trajectories so
// experiments can vary exactly what the paper varies — gesture speed,
// direction changes, pauses, and object size.
package gesture

import (
	"math"
	"time"

	"dbtouch/internal/touchos"
)

// Waypoint pins a location at an instant along a synthesized trajectory.
type Waypoint struct {
	At  time.Duration
	Loc touchos.Point
}

// Synth generates raw touch-event streams at a digitizer sampling rate.
type Synth struct {
	// Hz is the digitizer sampling rate; zero selects touchos.DigitizerHz.
	Hz float64
}

func (s Synth) period() time.Duration {
	hz := s.Hz
	if hz <= 0 {
		hz = touchos.DigitizerHz
	}
	return time.Duration(float64(time.Second) / hz)
}

// Tap produces a touch-down/up pair at loc.
func (s Synth) Tap(loc touchos.Point, at time.Duration) []touchos.TouchEvent {
	return []touchos.TouchEvent{
		{Finger: 0, Phase: touchos.TouchBegan, Loc: loc, Time: at},
		{Finger: 0, Phase: touchos.TouchEnded, Loc: loc, Time: at + 50*time.Millisecond},
	}
}

// Slide produces a single-finger straight slide from one point to another
// over dur, beginning at start.
func (s Synth) Slide(from, to touchos.Point, start, dur time.Duration) []touchos.TouchEvent {
	return s.Path([]Waypoint{{At: start, Loc: from}, {At: start + dur, Loc: to}})
}

// Path produces a single-finger gesture through the waypoints with
// piecewise-linear interpolation. Consecutive waypoints at the same
// location synthesize a pause (the finger stays down, the digitizer keeps
// sampling the same spot). Waypoints must be in nondecreasing time order.
func (s Synth) Path(points []Waypoint) []touchos.TouchEvent {
	if len(points) == 0 {
		return nil
	}
	period := s.period()
	events := []touchos.TouchEvent{{
		Finger: 0, Phase: touchos.TouchBegan, Loc: points[0].Loc, Time: points[0].At,
	}}
	for seg := 1; seg < len(points); seg++ {
		a, b := points[seg-1], points[seg]
		segDur := b.At - a.At
		if segDur <= 0 {
			continue
		}
		for t := a.At + period; t <= b.At; t += period {
			frac := float64(t-a.At) / float64(segDur)
			loc := touchos.Point{
				X: a.Loc.X + (b.Loc.X-a.Loc.X)*frac,
				Y: a.Loc.Y + (b.Loc.Y-a.Loc.Y)*frac,
			}
			events = append(events, touchos.TouchEvent{
				Finger: 0, Phase: touchos.TouchMoved, Loc: loc, Time: t,
			})
		}
	}
	last := points[len(points)-1]
	events = append(events, touchos.TouchEvent{
		Finger: 0, Phase: touchos.TouchEnded, Loc: last.Loc, Time: last.At + period,
	})
	return events
}

// PauseResume produces a slide from 'from' to 'to' with a mid-gesture
// pause: the finger travels pauseAt of the way, rests for pauseDur, then
// completes the slide. Total moving time is dur.
func (s Synth) PauseResume(from, to touchos.Point, start, dur time.Duration, pauseAt float64, pauseDur time.Duration) []touchos.TouchEvent {
	mid := touchos.Point{
		X: from.X + (to.X-from.X)*pauseAt,
		Y: from.Y + (to.Y-from.Y)*pauseAt,
	}
	t1 := start + time.Duration(float64(dur)*pauseAt)
	return s.Path([]Waypoint{
		{At: start, Loc: from},
		{At: t1, Loc: mid},
		{At: t1 + pauseDur, Loc: mid},
		{At: start + dur + pauseDur, Loc: to},
	})
}

// BackAndForth produces a slide that sweeps from 'from' to 'to' and back,
// repeated passes times (passes=1 is a single round trip). Each leg takes
// legDur.
func (s Synth) BackAndForth(from, to touchos.Point, start, legDur time.Duration, passes int) []touchos.TouchEvent {
	if passes < 1 {
		passes = 1
	}
	points := []Waypoint{{At: start, Loc: from}}
	t := start
	for p := 0; p < passes; p++ {
		t += legDur
		points = append(points, Waypoint{At: t, Loc: to})
		t += legDur
		points = append(points, Waypoint{At: t, Loc: from})
	}
	return s.Path(points)
}

// Pinch produces a two-finger pinch about center: finger spread changes
// from spread0 to spread1 over dur. spread1 > spread0 is a zoom-in,
// spread1 < spread0 a zoom-out.
func (s Synth) Pinch(center touchos.Point, spread0, spread1 float64, start, dur time.Duration) []touchos.TouchEvent {
	period := s.period()
	place := func(spread float64) (touchos.Point, touchos.Point) {
		h := spread / 2
		return touchos.Point{X: center.X, Y: center.Y - h},
			touchos.Point{X: center.X, Y: center.Y + h}
	}
	p0, p1 := place(spread0)
	events := []touchos.TouchEvent{
		{Finger: 0, Phase: touchos.TouchBegan, Loc: p0, Time: start},
		{Finger: 1, Phase: touchos.TouchBegan, Loc: p1, Time: start},
	}
	for t := start + period; t <= start+dur; t += period {
		frac := float64(t-start) / float64(dur)
		q0, q1 := place(spread0 + (spread1-spread0)*frac)
		events = append(events,
			touchos.TouchEvent{Finger: 0, Phase: touchos.TouchMoved, Loc: q0, Time: t},
			touchos.TouchEvent{Finger: 1, Phase: touchos.TouchMoved, Loc: q1, Time: t},
		)
	}
	q0, q1 := place(spread1)
	events = append(events,
		touchos.TouchEvent{Finger: 0, Phase: touchos.TouchEnded, Loc: q0, Time: start + dur + period},
		touchos.TouchEvent{Finger: 1, Phase: touchos.TouchEnded, Loc: q1, Time: start + dur + period},
	)
	return events
}

// Rotate produces a two-finger rotation about center by angle radians
// (positive is counterclockwise) at the given radius over dur.
func (s Synth) Rotate(center touchos.Point, radius, angle float64, start, dur time.Duration) []touchos.TouchEvent {
	period := s.period()
	place := func(theta float64) (touchos.Point, touchos.Point) {
		return touchos.Point{
				X: center.X + radius*math.Cos(theta),
				Y: center.Y + radius*math.Sin(theta),
			}, touchos.Point{
				X: center.X - radius*math.Cos(theta),
				Y: center.Y - radius*math.Sin(theta),
			}
	}
	p0, p1 := place(0)
	events := []touchos.TouchEvent{
		{Finger: 0, Phase: touchos.TouchBegan, Loc: p0, Time: start},
		{Finger: 1, Phase: touchos.TouchBegan, Loc: p1, Time: start},
	}
	for t := start + period; t <= start+dur; t += period {
		frac := float64(t-start) / float64(dur)
		q0, q1 := place(angle * frac)
		events = append(events,
			touchos.TouchEvent{Finger: 0, Phase: touchos.TouchMoved, Loc: q0, Time: t},
			touchos.TouchEvent{Finger: 1, Phase: touchos.TouchMoved, Loc: q1, Time: t},
		)
	}
	q0, q1 := place(angle)
	events = append(events,
		touchos.TouchEvent{Finger: 0, Phase: touchos.TouchEnded, Loc: q0, Time: start + dur + period},
		touchos.TouchEvent{Finger: 1, Phase: touchos.TouchEnded, Loc: q1, Time: start + dur + period},
	)
	return events
}

// Merge interleaves several event streams into one time-ordered stream
// (stable for equal timestamps).
func Merge(streams ...[]touchos.TouchEvent) []touchos.TouchEvent {
	var out []touchos.TouchEvent
	for _, s := range streams {
		out = append(out, s...)
	}
	// Insertion sort keeps the merge stable; streams are individually
	// sorted and typically short.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Time < out[j-1].Time; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
