package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary matrix format:
//
//	magic "DBT1" | layout u8 | ncols u32 | nrows u64
//	per column: name | type u8 | (STRING: dict size u32 + strings)
//	column-major: per column, nrows fixed-width words
//	row-major:    nrows*ncols words, row interleaved
//
// Strings and names are length-prefixed (u32 + bytes). All integers are
// little endian. The format keeps the fixed-width invariant on disk so a
// future mmap-style loader could address tuples positionally.
const binaryMagic = "DBT1"

// WriteBinary serializes m in the dbTouch binary format.
func WriteBinary(m *Matrix, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(m.layout)); err != nil {
		return err
	}
	if err := writeString(bw, m.name); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(m.schema))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(m.rows)); err != nil {
		return err
	}
	for i, cm := range m.schema {
		if err := writeString(bw, cm.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(cm.Type)); err != nil {
			return err
		}
		if cm.Type == String {
			dict := m.dictFor(i)
			if err := binary.Write(bw, binary.LittleEndian, uint32(dict.Len())); err != nil {
				return err
			}
			for code := int32(0); int(code) < dict.Len(); code++ {
				if err := writeString(bw, dict.Lookup(code)); err != nil {
					return err
				}
			}
		}
	}
	if m.layout == ColumnMajor {
		for c := range m.schema {
			for r := 0; r < m.rows; r++ {
				if err := binary.Write(bw, binary.LittleEndian, m.wordAt(r, c)); err != nil {
					return err
				}
			}
		}
	} else {
		for _, w64 := range m.slab {
			if err := binary.Write(bw, binary.LittleEndian, w64); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a matrix written by WriteBinary.
func ReadBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading binary magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("storage: bad magic %q, want %q", magic, binaryMagic)
	}
	layoutByte, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	layout := Layout(layoutByte)
	if layout != ColumnMajor && layout != RowMajor {
		return nil, fmt.Errorf("storage: bad layout byte %d", layoutByte)
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	var ncols uint32
	if err := binary.Read(br, binary.LittleEndian, &ncols); err != nil {
		return nil, err
	}
	var nrows uint64
	if err := binary.Read(br, binary.LittleEndian, &nrows); err != nil {
		return nil, err
	}
	if ncols == 0 {
		return nil, fmt.Errorf("storage: binary matrix %q has zero columns", name)
	}
	schema := make([]ColumnMeta, ncols)
	dicts := make([]*Dictionary, ncols)
	for i := range schema {
		colName, err := readString(br)
		if err != nil {
			return nil, err
		}
		tb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		schema[i] = ColumnMeta{Name: colName, Type: Type(tb)}
		if Type(tb) == String {
			var dn uint32
			if err := binary.Read(br, binary.LittleEndian, &dn); err != nil {
				return nil, err
			}
			d := NewDictionary()
			for j := uint32(0); j < dn; j++ {
				s, err := readString(br)
				if err != nil {
					return nil, err
				}
				d.Intern(s)
			}
			dicts[i] = d
		}
	}
	m := &Matrix{name: name, layout: layout, schema: schema, rows: int(nrows)}
	if layout == ColumnMajor {
		m.cols = make([]*Column, ncols)
		for c := range schema {
			col := NewEmptyColumn(schema[c].Name, schema[c].Type)
			if schema[c].Type == String {
				col.dict = dicts[c]
			}
			for r := uint64(0); r < nrows; r++ {
				var w uint64
				if err := binary.Read(br, binary.LittleEndian, &w); err != nil {
					return nil, fmt.Errorf("storage: reading column %d word %d: %w", c, r, err)
				}
				col.appendWord(w)
			}
			m.cols[c] = col
		}
	} else {
		m.dicts = dicts
		m.slab = make([]uint64, nrows*uint64(ncols))
		for i := range m.slab {
			if err := binary.Read(br, binary.LittleEndian, &m.slab[i]); err != nil {
				return nil, fmt.Errorf("storage: reading slab word %d: %w", i, err)
			}
		}
	}
	return m, nil
}

// wordAt encodes the cell at (row, col) of a column-major matrix as a
// 64-bit word.
func (m *Matrix) wordAt(row, col int) uint64 {
	c := m.cols[col]
	switch c.typ {
	case Int64:
		return uint64(c.ints[row])
	case Float64:
		return math.Float64bits(c.flts[row])
	case Bool:
		return uint64(c.bools[row])
	case String:
		return uint64(c.codes[row])
	default:
		return 0
	}
}

// dictFor returns the dictionary for column i under either layout.
func (m *Matrix) dictFor(i int) *Dictionary {
	if m.layout == ColumnMajor {
		return m.cols[i].dict
	}
	return m.dicts[i]
}

// appendWord appends a raw 64-bit word decoded per the column type; string
// columns append the code directly (the dictionary must already hold it).
func (c *Column) appendWord(w uint64) {
	switch c.typ {
	case Int64:
		c.ints = append(c.ints, int64(w))
	case Float64:
		c.flts = append(c.flts, math.Float64frombits(w))
	case Bool:
		c.bools = append(c.bools, byte(w&1))
	case String:
		c.codes = append(c.codes, int32(w))
	}
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("storage: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
