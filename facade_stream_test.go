package dbtouch

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestPerformMatchesObjectMethods is the facade half of the round-trip
// acceptance: gesture values built by the builders and executed with
// Perform must produce streams byte-identical to the classic methods.
func TestPerformMatchesObjectMethods(t *testing.T) {
	direct := func() []Result {
		db, obj := openWithColumn(t, 100000)
		obj.Summarize(Avg, 10)
		stream := db.Subscribe(1 << 14)
		obj.Slide(2 * time.Second)
		obj.ZoomIn(1.8)
		obj.MoveTo(2, 2)
		obj.SlideRange(0.5, 0.7, time.Second)
		obj.Tap(0.3)
		db.Idle(500 * time.Millisecond)
		obj.SlideUp(time.Second)
		return drainAll(stream)
	}()
	performed := func() []Result {
		db, obj := openWithColumn(t, 100000)
		obj.Summarize(Avg, 10)
		stream := db.Subscribe(1 << 14)
		gestures := []Gesture{
			obj.SlideGesture(2 * time.Second),
			obj.ZoomInGesture(1.8),
			obj.MoveToGesture(2, 2),
			obj.SlideRangeGesture(0.5, 0.7, time.Second),
			obj.TapGesture(0.3),
		}
		for _, g := range gestures {
			if _, err := db.Perform(g); err != nil {
				t.Fatal(err)
			}
		}
		db.Idle(500 * time.Millisecond)
		if _, err := db.Perform(obj.SlideUpGesture(time.Second)); err != nil {
			t.Fatal(err)
		}
		return drainAll(stream)
	}()
	if len(direct) == 0 {
		t.Fatal("no results")
	}
	if !reflect.DeepEqual(direct, performed) {
		t.Fatalf("streams diverged: direct %d results, performed %d", len(direct), len(performed))
	}
}

func drainAll(s *ResultStream) []Result {
	var out []Result
	for {
		r, ok := s.TryNext()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func TestSubscribeAcrossGoroutines(t *testing.T) {
	db, obj := openWithColumn(t, 100000)
	obj.Summarize(Avg, 10)
	stream := db.Subscribe(0)
	var wg sync.WaitGroup
	var streamed []Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r, ok := stream.Next(); ok; r, ok = stream.Next() {
			streamed = append(streamed, r)
		}
	}()
	want := 0
	for i := 0; i < 4; i++ {
		want += len(obj.Slide(time.Second))
	}
	stream.Close()
	wg.Wait()
	if int64(len(streamed))+stream.Dropped() != int64(want) {
		t.Fatalf("streamed %d + dropped %d != emitted %d", len(streamed), stream.Dropped(), want)
	}
}

func TestPerformErrors(t *testing.T) {
	db, obj := openWithColumn(t, 1000)
	if _, err := db.Perform(Gesture{Kind: "warp", Target: obj.ID()}); err == nil {
		t.Fatal("unknown kind must error")
	}
	if _, err := db.Perform(obj.SlideGesture(-time.Second)); err == nil {
		t.Fatal("negative duration must error")
	}
	if _, err := db.Perform(Gesture{Kind: GestureSlide, Target: 999, Dur: time.Second}); err == nil {
		t.Fatal("unknown target must error")
	}

	// An evicted handle is inert: Perform neither errors nor panics.
	alice, err := db.Session("alice")
	if err != nil {
		t.Fatal(err)
	}
	aobj, err := alice.NewColumnObject("t", "v", 2, 2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	db.Manager().Evict("alice")
	results, err := alice.Perform(aobj.SlideGesture(time.Second))
	if err != nil || results != nil {
		t.Fatalf("evicted Perform = (%d results, %v), want inert", len(results), err)
	}
}
