package datagen

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	spec := Spec{Dist: Uniform, N: 1000, Seed: 7, Min: 0, Max: 100}
	a := Floats(spec)
	b := Floats(spec)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	spec.Seed = 8
	c := Floats(spec)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestUniformBounds(t *testing.T) {
	vals := Floats(Spec{Dist: Uniform, N: 5000, Seed: 1, Min: 10, Max: 20})
	for _, v := range vals {
		if v < 10 || v >= 20 {
			t.Fatalf("uniform value %v outside [10,20)", v)
		}
	}
}

func TestSortedIsMonotone(t *testing.T) {
	vals := Floats(Spec{Dist: Sorted, N: 100, Seed: 1, Min: 0, Max: 50})
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatalf("sorted data decreases at %d", i)
		}
	}
	if vals[0] != 0 || vals[len(vals)-1] != 50 {
		t.Fatalf("sorted endpoints = %v, %v", vals[0], vals[len(vals)-1])
	}
}

func TestStepsHasPlateaus(t *testing.T) {
	vals := Floats(Spec{Dist: Steps, N: 100, Seed: 1, Min: 0, Max: 40, StepLevels: 5})
	distinct := map[float64]bool{}
	for _, v := range vals {
		distinct[v] = true
	}
	if len(distinct) != 5 {
		t.Fatalf("steps produced %d levels, want 5", len(distinct))
	}
}

func TestPeriodicRange(t *testing.T) {
	vals := Floats(Spec{Dist: Periodic, N: 200, Seed: 1, Min: 0, Max: 10, Period: 50})
	if vals[0] != vals[50] || vals[3] != vals[53] {
		t.Fatal("periodic data should repeat with the period")
	}
}

func TestNormalMoments(t *testing.T) {
	vals := Floats(Spec{Dist: Normal, N: 50000, Seed: 1, Mean: 100, Stddev: 5})
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	if math.Abs(mean-100) > 0.5 {
		t.Fatalf("normal mean = %v, want ≈100", mean)
	}
}

func TestZipfSkew(t *testing.T) {
	vals := Ints(Spec{Dist: Zipf, N: 10000, Seed: 1, Min: 0, Max: 1000, ZipfS: 1.5, ZipfV: 1})
	zeros := 0
	for _, v := range vals {
		if v == 0 {
			zeros++
		}
	}
	if zeros < len(vals)/4 {
		t.Fatalf("zipf should be head-heavy; zero count = %d", zeros)
	}
}

func TestIntsRounds(t *testing.T) {
	ints := Ints(Spec{Dist: Sorted, N: 3, Seed: 1, Min: 0, Max: 2})
	want := []int64{0, 1, 2}
	for i, w := range want {
		if ints[i] != w {
			t.Fatalf("Ints = %v, want %v", ints, want)
		}
	}
}

func TestStringsCardinality(t *testing.T) {
	strs := Strings(1000, 4, 9)
	distinct := map[string]bool{}
	for _, s := range strs {
		distinct[s] = true
	}
	if len(distinct) > 4 {
		t.Fatalf("cardinality %d exceeds requested 4", len(distinct))
	}
}

func TestColumnsBuild(t *testing.T) {
	ic := IntColumn("i", Spec{Dist: Uniform, N: 10, Seed: 1})
	fc := FloatColumn("f", Spec{Dist: Uniform, N: 10, Seed: 1})
	if ic.Len() != 10 || fc.Len() != 10 {
		t.Fatal("column constructors wrong length")
	}
}

func TestPlantOutlierRegion(t *testing.T) {
	data := Floats(Spec{Dist: Uniform, N: 10000, Seed: 2, Min: 0, Max: 100})
	baseline := append([]float64(nil), data...)
	p := Plant(data, OutlierRegion, 0.5, 0.05, 3)
	if p.Start != 5000 || p.End-p.Start != 500 {
		t.Fatalf("region = [%d,%d)", p.Start, p.End)
	}
	for i := p.Start; i < p.End; i++ {
		if data[i] <= baseline[i] {
			t.Fatalf("planted value at %d not raised", i)
		}
	}
	for _, i := range []int{0, 4999, 5500, 9999} {
		if data[i] != baseline[i] {
			t.Fatalf("unplanted value at %d changed", i)
		}
	}
}

func TestPlantLevelShiftExtendsToEnd(t *testing.T) {
	data := Floats(Spec{Dist: Uniform, N: 1000, Seed: 2})
	p := Plant(data, LevelShift, 0.7, 0.01, 3)
	if p.End != 1000 {
		t.Fatalf("level shift End = %d, want 1000", p.End)
	}
}

func TestPlantSpikesAreExtreme(t *testing.T) {
	data := Floats(Spec{Dist: Uniform, N: 10000, Seed: 2, Min: 0, Max: 100})
	p := Plant(data, Spike, 0.2, 0.1, 3)
	max := 0.0
	for i := p.Start; i < p.End; i++ {
		if data[i] > max {
			max = data[i]
		}
	}
	if max < 500 {
		t.Fatalf("spike max = %v, want extreme", max)
	}
}

func TestPlantCorrelatedBothColumns(t *testing.T) {
	a := Floats(Spec{Dist: Uniform, N: 1000, Seed: 2, Min: 0, Max: 10})
	b := Floats(Spec{Dist: Uniform, N: 1000, Seed: 4, Min: 0, Max: 10})
	a0, b0 := append([]float64(nil), a...), append([]float64(nil), b...)
	p := PlantCorrelated(a, b, 0.4, 0.1, 5)
	mid := p.Center()
	if a[mid] <= a0[mid] || b[mid] <= b0[mid] {
		t.Fatal("correlated bump missing from one column")
	}
}

func TestPatternPredicates(t *testing.T) {
	p := Pattern{Start: 100, End: 200}
	if !p.Contains(150) || p.Contains(200) || p.Contains(99) {
		t.Fatal("Contains boundaries wrong")
	}
	if !p.Overlaps(150, 160) || !p.Overlaps(0, 101) || p.Overlaps(200, 300) {
		t.Fatal("Overlaps boundaries wrong")
	}
	if p.Center() != 150 {
		t.Fatal("Center wrong")
	}
}

func TestPlantEmptyData(t *testing.T) {
	p := Plant(nil, OutlierRegion, 0.5, 0.1, 1)
	if p.Start != 0 || p.End != 0 {
		t.Fatalf("empty plant = %+v", p)
	}
}
