// Package vclock provides a virtual clock for deterministic simulation.
//
// All dbTouch latency accounting runs on virtual time: touch events carry
// virtual timestamps, the kernel charges simulated processing time per data
// access, and benchmarks measure virtual durations. This removes the host
// machine from the measurements and makes every experiment reproducible.
//
// Ownership contract: every exploration session owns exactly one Clock and
// is the only writer to it — virtual timelines of different sessions are
// independent and never merge. A Clock is nevertheless safe for concurrent
// use (all state is atomic), so monitors, the session manager, and tests
// may read Now from other goroutines while a session runs, and the -race
// suites can drive many sessions at once without false sharing hazards.
// Determinism is a property of single-writer use, not of the type: two
// goroutines racing Advance calls get a well-defined total but an
// unpredictable interleaving.
package vclock

import (
	"sync/atomic"
	"time"
)

// Clock is a manually advanced virtual clock. The zero value is a clock at
// time zero, ready to use. See the package comment for the ownership
// contract: one session writes, anyone may read.
type Clock struct {
	now atomic.Int64 // virtual time in nanoseconds
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now reports the current virtual time as an offset from session start.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d. Negative durations are ignored:
// virtual time never goes backwards.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now.Add(int64(d))
	}
}

// AdvanceTo moves the clock forward to t if t is in the future; it is a
// no-op otherwise and reports whether the clock moved.
func (c *Clock) AdvanceTo(t time.Duration) bool {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return false
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return true
		}
	}
}

// Reset rewinds the clock to zero for reuse across experiment repetitions.
func (c *Clock) Reset() { c.now.Store(0) }

// Stopwatch measures elapsed virtual time between Start and Elapsed calls.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// NewStopwatch returns a stopwatch bound to clock, already started.
func NewStopwatch(clock *Clock) *Stopwatch {
	return &Stopwatch{clock: clock, start: clock.Now()}
}

// Restart resets the stopwatch origin to the current virtual time.
func (s *Stopwatch) Restart() { s.start = s.clock.Now() }

// Elapsed reports virtual time since the last Restart (or construction).
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }
