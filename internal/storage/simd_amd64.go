//go:build amd64 && !purego

package storage

import (
	"math"

	"dbtouch/internal/storage/cpu"
)

// AVX2 dispatch (amd64). Each flag gates one kernel family at its
// dispatch seam in span.go / span_fused.go; they all require AVX2 (the
// kernels use VPCMPGTQ/VPERMD, which SSE-only hosts lack) and a
// non-race build (see race_on.go). The purego build tag removes this
// file entirely and substitutes simd_off.go's constant-false flags, so
// `go build -tags purego` carries no assembly at all.
//
// The assembly in simd_amd64.s processes only whole vector blocks
// (multiples of 4 or 8 elements); the wrappers here run the remainder
// through the scalar reference loops and merge. Every merge is exact:
// int64 sums wrap associatively, counts and extrema are
// order-insensitive, and the compress kernels write positions in
// ascending order before the tail continues — so dispatched results are
// bit-identical to the pure-Go kernels (asserted by simd_diff_test.go
// and, end to end, by the kernel-vs-compose property suite).
var (
	simdSum       = cpu.X86.HasAVX2 && !raceEnabled
	simdMinMax    = cpu.X86.HasAVX2 && !raceEnabled
	simdFilterSum = cpu.X86.HasAVX2 && !raceEnabled
	simdFilterAgg = cpu.X86.HasAVX2 && !raceEnabled
	simdCompress  = cpu.X86.HasAVX2 && !raceEnabled
)

// simdAvailable reports whether this build+host can run the SIMD
// kernels at all (used by the paired scalar/SIMD benchmarks).
func simdAvailable() bool { return cpu.X86.HasAVX2 && !raceEnabled }

// setSIMD forces every dispatch flag on or off for the paired
// benchmarks and returns a restore func. "On" is clamped to
// simdAvailable().
func setSIMD(on bool) (restore func()) {
	oldSum, oldMM, oldFS, oldFA, oldC := simdSum, simdMinMax, simdFilterSum, simdFilterAgg, simdCompress
	set := on && simdAvailable()
	simdSum, simdMinMax, simdFilterSum, simdFilterAgg, simdCompress = set, set, set, set, set
	return func() {
		simdSum, simdMinMax, simdFilterSum, simdFilterAgg, simdCompress = oldSum, oldMM, oldFS, oldFA, oldC
	}
}

// Assembly kernels (simd_amd64.s). Length preconditions are the
// wrappers' responsibility: avxSumInt64/avxFilterSumInt64 and the
// compress kernels need len(v) % 8 == 0, the 4-lane kernels
// len(v) % 4 == 0, all with len(v) > 0.

//go:noescape
func avxSumInt64(v []int64) int64

//go:noescape
func avxMinMaxInt64(v []int64, lanes *[8]int64)

//go:noescape
func avxMinMaxFloat64(v []float64, lanes *[8]float64)

//go:noescape
func avxFilterSumInt64(v []int64, lo, hi int64, kxor uint64) (cnt, isum int64)

//go:noescape
func avxFilterAggInt64(v []int64, lo, hi int64, kxor uint64, lanes *[8]int64) (cnt, isum int64)

//go:noescape
func avxCompressInt64(v []int64, lo, hi int64, kxor uint64, base int64, lut *byte, out *int32) int64

//go:noescape
func avxCompressFloat64(v []float64, b float64, wlt, wgt, weq uint64, base int64, lut *byte, out *int32) int64

// compressLUT maps an 8-bit pass mask to the lane indices of its set
// bits, packed to the front — the VPERMD shuffle table for the
// compare+compress kernels.
var compressLUT = func() (t [256][8]byte) {
	for m := range t {
		k := 0
		for lane := 0; lane < 8; lane++ {
			if m>>lane&1 != 0 {
				t[m][k] = byte(lane)
				k++
			}
		}
	}
	return
}()

// kxorFor converts intPred.neg to the mask the asm XORs the fail mask
// with: all-ones complements it into the pass mask (neg == 0), zero
// keeps it (neg == 1, RangeNe's complemented interval).
func kxorFor(p intPred) uint64 {
	if p.neg != 0 {
		return 0
	}
	return ^uint64(0)
}

// simdSumInt64 sums v exactly (wrapping int64 addition is associative,
// so the vector lane order is bit-identical to the scalar loop).
func simdSumInt64(v []int64) int64 {
	n := len(v) &^ 7
	var s int64
	if n > 0 {
		s = avxSumInt64(v[:n])
	}
	for _, x := range v[n:] {
		s += x
	}
	return s
}

// simdMinMaxInt64 reports the extrema of v (len(v) > 0 not required:
// empty input reports the MaxInt64/MinInt64 sentinels like an empty
// scalar loop).
func simdMinMaxInt64(v []int64) (mn, mx int64) {
	mn, mx = math.MaxInt64, math.MinInt64
	n := len(v) &^ 3
	if n > 0 {
		var lanes [8]int64
		avxMinMaxInt64(v[:n], &lanes)
		for i := 0; i < 4; i++ {
			mn = min(mn, lanes[i])
			mx = max(mx, lanes[4+i])
		}
	}
	for _, x := range v[n:] {
		mn = min(mn, x)
		mx = max(mx, x)
	}
	return mn, mx
}

// simdMinMaxFloat64 reports the extrema of v, skipping NaN exactly like
// the scalar `if v < mn` loop: the asm's ordered compares (LT_OQ/GT_OQ)
// are false on NaN, so NaN lanes never replace the running extrema.
func simdMinMaxFloat64(v []float64) (mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	n := len(v) &^ 3
	if n > 0 {
		var lanes [8]float64
		avxMinMaxFloat64(v[:n], &lanes)
		for i := 0; i < 4; i++ {
			if lanes[i] < mn {
				mn = lanes[i]
			}
			if lanes[4+i] > mx {
				mx = lanes[4+i]
			}
		}
	}
	for _, x := range v[n:] {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

// simdFilterSumInt64 counts and sums the values passing p.
func simdFilterSumInt64(v []int64, p intPred) (cnt int, isum int64) {
	n := len(v) &^ 7
	if n > 0 {
		c, s := avxFilterSumInt64(v[:n], p.lo, p.hi, kxorFor(p))
		cnt, isum = int(c), s
	}
	for _, x := range v[n:] {
		q := p.test(x)
		cnt += q
		isum += x & int64(-q)
	}
	return cnt, isum
}

// simdFilterAggInt64 counts, sums and min/maxes the values passing p.
// The asm returns its four min and four max lanes (pass-masked, with
// the same MaxInt64/MinInt64 sentinels filterAggInt uses) and the
// wrapper folds them with the scalar tail.
func simdFilterAggInt64(v []int64, p intPred) filterAggInt {
	f := newFilterAggInt()
	n := len(v) &^ 3
	if n > 0 {
		var lanes [8]int64
		c, s := avxFilterAggInt64(v[:n], p.lo, p.hi, kxorFor(p), &lanes)
		f.cnt, f.isum = int(c), s
		for i := 0; i < 4; i++ {
			f.mn = min(f.mn, lanes[i])
			f.mx = max(f.mx, lanes[4+i])
		}
	}
	for _, x := range v[n:] {
		f.absorb(x, p.test(x))
	}
	return f
}

// simdCompressInt64 appends to buf the positions base+i whose v[i]
// passes p, returning the count written. buf must have room for
// len(v) entries: the asm stores whole 8-lane blocks unconditionally
// (the cursor only advances by the pass count), exactly like the scalar
// kernel's unconditional buf[j] store.
func simdCompressInt64(v []int64, p intPred, base int, buf []int32) int {
	j := 0
	n := len(v) &^ 7
	if len(buf) < len(v) {
		n = 0 // callers always size buf via selGrow; stay safe regardless
	}
	if n > 0 {
		j = int(avxCompressInt64(v[:n], p.lo, p.hi, kxorFor(p), int64(base), &compressLUT[0][0], &buf[0]))
	}
	for i := n; i < len(v); i++ {
		buf[j] = int32(base + i)
		j += p.test(v[i])
	}
	return j
}

// simdCompressFloat64 is the float compress kernel: positions whose
// value satisfies the decomposed wants masks (passFloat semantics; NaN
// fails both ordered compares and lands on the wEq mask).
func simdCompressFloat64(v []float64, b float64, wLt, wGt, wEq int, base int, buf []int32) int {
	j := 0
	n := len(v) &^ 7
	if len(buf) < len(v) {
		n = 0
	}
	if n > 0 {
		j = int(avxCompressFloat64(v[:n], b, mask64(wLt), mask64(wGt), mask64(wEq), int64(base), &compressLUT[0][0], &buf[0]))
	}
	for i := n; i < len(v); i++ {
		buf[j] = int32(base + i)
		j += passFloat(v[i], b, wLt, wGt, wEq)
	}
	return j
}

// mask64 widens a 0/1 wants weight to the all-or-nothing qword mask the
// asm ANDs compare results with.
func mask64(w int) uint64 {
	if w != 0 {
		return ^uint64(0)
	}
	return 0
}
