package storage

import (
	"fmt"
	"math"
)

// Layout identifies the physical order of a Matrix.
type Layout uint8

// Physical layouts. The paper's rotate gesture (§2.8) switches between the
// two: rotating a row-oriented table projects all attributes into
// individual dense arrays, and vice versa.
const (
	ColumnMajor Layout = iota
	RowMajor
)

// String names the layout.
func (l Layout) String() string {
	if l == RowMajor {
		return "row-major"
	}
	return "column-major"
}

// ColumnMeta describes one attribute of a Matrix.
type ColumnMeta struct {
	Name string
	Type Type
}

// Matrix is the paper's storage unit: a dense matrix of fixed-width fields,
// one or more columns wide, associated with one visual data object.
//
// Column-major matrixes store one *Column per attribute. Row-major
// matrixes store a single interleaved slab of 64-bit words with
// stride = number of attributes; string attributes keep a per-column
// dictionary so every cell stays fixed width.
type Matrix struct {
	name   string
	layout Layout
	schema []ColumnMeta

	// column-major representation
	cols []*Column

	// row-major representation
	slab  []uint64
	dicts []*Dictionary // indexed by column; nil for non-string columns
	rows  int
}

// NewMatrix builds a column-major matrix from columns. All columns must
// have equal length.
func NewMatrix(name string, cols ...*Column) (*Matrix, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("storage: matrix %q needs at least one column", name)
	}
	n := cols[0].Len()
	schema := make([]ColumnMeta, len(cols))
	for i, c := range cols {
		if c.Len() != n {
			return nil, fmt.Errorf("storage: matrix %q column %q has %d rows, want %d", name, c.Name(), c.Len(), n)
		}
		schema[i] = ColumnMeta{Name: c.Name(), Type: c.Type()}
	}
	return &Matrix{name: name, layout: ColumnMajor, schema: schema, cols: cols, rows: n}, nil
}

// NewRowMajorMatrix builds an empty row-major matrix with the given schema.
func NewRowMajorMatrix(name string, schema []ColumnMeta) *Matrix {
	m := &Matrix{name: name, layout: RowMajor, schema: append([]ColumnMeta(nil), schema...)}
	m.dicts = make([]*Dictionary, len(schema))
	for i, cm := range schema {
		if cm.Type == String {
			m.dicts[i] = NewDictionary()
		}
	}
	return m
}

// Name reports the matrix name.
func (m *Matrix) Name() string { return m.name }

// Rename sets the matrix name.
func (m *Matrix) Rename(name string) { m.name = name }

// Layout reports the current physical layout.
func (m *Matrix) Layout() Layout { return m.layout }

// Schema returns the attribute descriptors (shared; do not mutate).
func (m *Matrix) Schema() []ColumnMeta { return m.schema }

// NumRows reports the tuple count.
func (m *Matrix) NumRows() int { return m.rows }

// NumCols reports the attribute count.
func (m *Matrix) NumCols() int { return len(m.schema) }

// ColumnIndex resolves an attribute name to its position, or -1.
func (m *Matrix) ColumnIndex(name string) int {
	for i, cm := range m.schema {
		if cm.Name == name {
			return i
		}
	}
	return -1
}

// Column returns the col-th column of a column-major matrix. For row-major
// matrixes it returns an error: positional column access there requires a
// gather (see GatherColumn) or a layout conversion.
func (m *Matrix) Column(col int) (*Column, error) {
	if col < 0 || col >= len(m.schema) {
		return nil, fmt.Errorf("storage: matrix %q has no column %d", m.name, col)
	}
	if m.layout != ColumnMajor {
		return nil, fmt.Errorf("storage: matrix %q is row-major; convert layout or gather column %d", m.name, col)
	}
	return m.cols[col], nil
}

// At returns the cell at (row, col) regardless of layout.
func (m *Matrix) At(row, col int) (Value, error) {
	if row < 0 || row >= m.rows || col < 0 || col >= len(m.schema) {
		return Value{}, fmt.Errorf("storage: cell (%d,%d) out of range in matrix %q (%dx%d)", row, col, m.name, m.rows, len(m.schema))
	}
	if m.layout == ColumnMajor {
		return m.cols[col].Value(row), nil
	}
	w := m.slab[row*len(m.schema)+col]
	return valueFromWord(w, m.schema[col].Type, m.dicts[col]), nil
}

// Float returns the float coercion of cell (row, col) without Value
// boxing — the span-execution hot path. String cells coerce to their
// dictionary code (matching Column.Float); out-of-range coordinates
// return 0.
func (m *Matrix) Float(row, col int) float64 {
	if row < 0 || row >= m.rows || col < 0 || col >= len(m.schema) {
		return 0
	}
	if m.layout == ColumnMajor {
		return m.cols[col].Float(row)
	}
	w := m.slab[row*len(m.schema)+col]
	if m.schema[col].Type == Float64 {
		return math.Float64frombits(w)
	}
	// Int64 words round-trip through their two's-complement bits; bool
	// and dictionary-code words are small non-negative integers.
	return float64(int64(w))
}

// Row materializes tuple row as a slice of values.
func (m *Matrix) Row(row int) ([]Value, error) {
	if row < 0 || row >= m.rows {
		return nil, fmt.Errorf("storage: row %d out of range in matrix %q of %d rows", row, m.name, m.rows)
	}
	out := make([]Value, len(m.schema))
	for c := range m.schema {
		v, err := m.At(row, c)
		if err != nil {
			return nil, err
		}
		out[c] = v
	}
	return out, nil
}

// AppendRow adds a tuple. The value count must match the schema width.
func (m *Matrix) AppendRow(vals []Value) error {
	if len(vals) != len(m.schema) {
		return fmt.Errorf("storage: appending %d values to matrix %q with %d columns", len(vals), m.name, len(m.schema))
	}
	if m.layout == ColumnMajor {
		if m.cols == nil {
			m.cols = make([]*Column, len(m.schema))
			for i, cm := range m.schema {
				m.cols[i] = NewEmptyColumn(cm.Name, cm.Type)
			}
		}
		for i, v := range vals {
			m.cols[i].Append(v)
		}
	} else {
		for i, v := range vals {
			m.slab = append(m.slab, v.word(m.dicts[i]))
		}
	}
	m.rows++
	return nil
}

// GatherColumn materializes attribute col of a row-major matrix over the
// row range [lo, hi) as a fresh Column. For column-major matrixes it
// slices the existing column.
func (m *Matrix) GatherColumn(col, lo, hi int) (*Column, error) {
	if col < 0 || col >= len(m.schema) {
		return nil, fmt.Errorf("storage: matrix %q has no column %d", m.name, col)
	}
	if lo < 0 || hi > m.rows || lo > hi {
		return nil, fmt.Errorf("storage: range [%d,%d) out of bounds for matrix %q of %d rows", lo, hi, m.name, m.rows)
	}
	if m.layout == ColumnMajor {
		return m.cols[col].Slice(lo, hi)
	}
	cm := m.schema[col]
	out := NewEmptyColumn(cm.Name, cm.Type)
	stride := len(m.schema)
	for r := lo; r < hi; r++ {
		w := m.slab[r*stride+col]
		out.Append(valueFromWord(w, cm.Type, m.dicts[col]))
	}
	return out, nil
}

// ConvertRange copies rows [lo, hi) of m into dst, which must share m's
// schema but may use the opposite layout. It is the chunked primitive the
// incremental rotate gesture is built on (paper §2.8: "changing the layout
// can be done in steps").
func (m *Matrix) ConvertRange(dst *Matrix, lo, hi int) error {
	if len(dst.schema) != len(m.schema) {
		return fmt.Errorf("storage: convert between mismatched schemas (%d vs %d columns)", len(m.schema), len(dst.schema))
	}
	if lo < 0 || hi > m.rows || lo > hi {
		return fmt.Errorf("storage: convert range [%d,%d) out of bounds for %d rows", lo, hi, m.rows)
	}
	buf := make([]Value, len(m.schema))
	for r := lo; r < hi; r++ {
		for c := range m.schema {
			v, err := m.At(r, c)
			if err != nil {
				return err
			}
			buf[c] = v
		}
		if err := dst.AppendRow(buf); err != nil {
			return err
		}
	}
	return nil
}

// ToLayout returns a full copy of m in the requested layout. If m already
// uses that layout, m itself is returned.
func (m *Matrix) ToLayout(l Layout) (*Matrix, error) {
	if m.layout == l {
		return m, nil
	}
	var dst *Matrix
	if l == RowMajor {
		dst = NewRowMajorMatrix(m.name, m.schema)
	} else {
		cols := make([]*Column, len(m.schema))
		for i, cm := range m.schema {
			cols[i] = NewEmptyColumn(cm.Name, cm.Type)
		}
		dst = &Matrix{name: m.name, layout: ColumnMajor, schema: append([]ColumnMeta(nil), m.schema...), cols: cols}
	}
	if err := m.ConvertRange(dst, 0, m.rows); err != nil {
		return nil, err
	}
	return dst, nil
}

// Project returns a new single-column column-major matrix containing a
// copy of attribute col — the drag-a-column-out-of-a-table gesture
// (paper §2.8).
func (m *Matrix) Project(col int) (*Matrix, error) {
	c, err := m.GatherColumn(col, 0, m.rows)
	if err != nil {
		return nil, err
	}
	out := c.Clone()
	return NewMatrix(m.name+"."+out.Name(), out)
}

// WordsPerRow reports the fixed row width in 64-bit words (the schema
// width; every field is fixed width by construction).
func (m *Matrix) WordsPerRow() int { return len(m.schema) }
