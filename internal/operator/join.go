package operator

import (
	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
)

// JoinMatch reports one joined pair of tuple identifiers.
type JoinMatch struct {
	LeftID  int
	RightID int
	// Key is the join key value the pair matched on.
	Key storage.Value
}

// SymmetricHashJoin is the non-blocking join dbTouch needs (paper §2.9
// "Joins"): because the gesture — not the engine — decides which tuples
// arrive, neither input can be designated the build side up front. The
// operator keeps a hash table per side; each pushed tuple is inserted
// into its own side's table and probed against the other, so matches
// stream out as touches arrive and the user never waits for a build
// phase.
type SymmetricHashJoin struct {
	left     *storage.Column
	right    *storage.Column
	leftTab  map[float64][]int
	rightTab map[float64][]int
	// seenLeft/seenRight (bitsets over tuple ids) avoid double-inserting
	// a tuple the gesture revisits (back-and-forth slides walk the same
	// ids repeatedly).
	seenLeft  []uint64
	seenRight []uint64
	nLeft     int
	nRight    int
	matches   int64
}

// NewSymmetricHashJoin joins left and right on value equality.
func NewSymmetricHashJoin(left, right *storage.Column) *SymmetricHashJoin {
	return &SymmetricHashJoin{
		left:      left,
		right:     right,
		leftTab:   make(map[float64][]int),
		rightTab:  make(map[float64][]int),
		seenLeft:  make([]uint64, (left.Len()+63)/64),
		seenRight: make([]uint64, (right.Len()+63)/64),
	}
}

func seenBit(seen []uint64, id int) bool { return seen[id>>6]&(1<<(uint(id)&63)) != 0 }

// RebindSide swaps one side's column for a newer (longer) snapshot view,
// growing that side's seen bitset. Hash tables and the match count carry
// over: append-only growth never moves an already-inserted id.
func (j *SymmetricHashJoin) RebindSide(isLeft bool, col *storage.Column) {
	grow := func(seen []uint64, n int) []uint64 {
		for len(seen) < (n+63)/64 {
			seen = append(seen, 0)
		}
		return seen
	}
	if isLeft {
		j.left = col
		j.seenLeft = grow(j.seenLeft, col.Len())
	} else {
		j.right = col
		j.seenRight = grow(j.seenRight, col.Len())
	}
}

// PushLeft feeds tuple id of the left input, charging the read to
// tracker, and returns any new matches against right tuples seen so far.
func (j *SymmetricHashJoin) PushLeft(id int, tracker *iomodel.Tracker) []JoinMatch {
	return j.push(id, true, tracker, nil)
}

// PushRight feeds tuple id of the right input.
func (j *SymmetricHashJoin) PushRight(id int, tracker *iomodel.Tracker) []JoinMatch {
	return j.push(id, false, tracker, nil)
}

// PushRange feeds every not-yet-seen tuple of one side in [lo, hi) in
// ascending order — the span version of Push. Reads are charged per
// contiguous run of fresh tuples through the tracker's ranged accounting
// (identical virtual cost to a per-tuple loop), and all new matches are
// returned in push order. isLeft selects the side.
func (j *SymmetricHashJoin) PushRange(lo, hi int, isLeft bool, tracker *iomodel.Tracker) []JoinMatch {
	col := j.right
	if isLeft {
		col = j.left
	}
	if lo < 0 {
		lo = 0
	}
	if n := col.Len(); hi > n {
		hi = n
	}
	seen := j.seenRight
	if isLeft {
		seen = j.seenLeft
	}
	var out []JoinMatch
	runStart := -1
	flush := func(end int) {
		if runStart >= 0 {
			if tracker != nil {
				tracker.AccessRange(runStart, end)
			}
			runStart = -1
		}
	}
	for id := lo; id < hi; id++ {
		if seenBit(seen, id) {
			flush(id)
			continue
		}
		if runStart < 0 {
			runStart = id
		}
		out = j.push(id, isLeft, nil, out)
	}
	flush(hi)
	return out
}

// push inserts one fresh tuple into its side's table, probes the other
// side, and appends any matches to out. A non-nil tracker charges the
// read (per-tuple callers); span callers charge ranges themselves and
// pass nil.
func (j *SymmetricHashJoin) push(id int, isLeft bool, tracker *iomodel.Tracker, out []JoinMatch) []JoinMatch {
	col, seen, own, other := j.right, j.seenRight, j.rightTab, j.leftTab
	if isLeft {
		col, seen, own, other = j.left, j.seenLeft, j.leftTab, j.rightTab
	}
	if id < 0 || id >= col.Len() || seenBit(seen, id) {
		return out
	}
	seen[id>>6] |= 1 << (uint(id) & 63)
	if isLeft {
		j.nLeft++
	} else {
		j.nRight++
	}
	if tracker != nil {
		tracker.Access(id)
	}
	key := col.Float(id)
	own[key] = append(own[key], id)
	partners := other[key]
	if len(partners) == 0 {
		return out
	}
	for _, p := range partners {
		m := JoinMatch{Key: col.Value(id)}
		if isLeft {
			m.LeftID, m.RightID = id, p
		} else {
			m.LeftID, m.RightID = p, id
		}
		out = append(out, m)
	}
	j.matches += int64(len(partners))
	return out
}

// Matches reports the total matches emitted so far.
func (j *SymmetricHashJoin) Matches() int64 { return j.matches }

// SeenLeft reports how many distinct left tuples have been pushed.
func (j *SymmetricHashJoin) SeenLeft() int { return j.nLeft }

// SeenRight reports how many distinct right tuples have been pushed.
func (j *SymmetricHashJoin) SeenRight() int { return j.nRight }

// BlockingHashJoin is the classic build-then-probe hash join used by the
// traditional baseline: it consumes the entire build side before emitting
// anything — exactly the behaviour the paper argues breaks interactivity.
type BlockingHashJoin struct {
	table map[float64][]int
	built bool
}

// NewBlockingHashJoin returns an empty blocking join.
func NewBlockingHashJoin() *BlockingHashJoin {
	return &BlockingHashJoin{table: make(map[float64][]int)}
}

// Build consumes the whole build column, charging every read.
func (j *BlockingHashJoin) Build(build *storage.Column, tracker *iomodel.Tracker) {
	for i := 0; i < build.Len(); i++ {
		if tracker != nil {
			tracker.Access(i)
		}
		key := build.Float(i)
		j.table[key] = append(j.table[key], i)
	}
	j.built = true
}

// Built reports whether the build phase has completed.
func (j *BlockingHashJoin) Built() bool { return j.built }

// Probe matches one probe-side tuple; it must not be called before Build
// completes (the blocking property under test) and returns the matching
// build-side ids.
func (j *BlockingHashJoin) Probe(probe *storage.Column, id int, tracker *iomodel.Tracker) []int {
	if !j.built {
		return nil
	}
	if tracker != nil {
		tracker.Access(id)
	}
	return j.table[probe.Float(id)]
}

// TableSize reports the number of distinct keys in the build table — used
// by the hash-table cache to report reuse value.
func (j *BlockingHashJoin) TableSize() int { return len(j.table) }
