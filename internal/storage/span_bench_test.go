package storage

import (
	"fmt"
	"math/rand"
	"testing"
)

// Per-kernel microbenchmarks over 1M-row columns — the tracked kernel
// baseline. scripts/bench.sh runs these (plus the end-to-end touch
// benchmarks) and emits BENCH_kernels.json; the CI bench-smoke step
// keeps them compiling. Filter kernels run at 1%, 50% and 99%
// selectivity: 50% is the branch-predictor worst case the branch-free
// inner loops exist for.

const benchRows = 1 << 20

func benchIntCol() *Column {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, benchRows)
	for i := range vals {
		vals[i] = int64(rng.Intn(100))
	}
	return NewIntColumn("v", vals)
}

func benchFloatCol() *Column {
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, benchRows)
	for i := range vals {
		vals[i] = rng.Float64() * 100
	}
	return NewFloatColumn("v", vals)
}

func benchBoolCol() *Column {
	rng := rand.New(rand.NewSource(3))
	vals := make([]bool, benchRows)
	for i := range vals {
		vals[i] = rng.Intn(2) == 0
	}
	return NewBoolColumn("v", vals)
}

func benchStringCol() *Column {
	rng := rand.New(rand.NewSource(4))
	words := make([]string, 100)
	for i := range words {
		words[i] = fmt.Sprintf("w%02d", i)
	}
	vals := make([]string, benchRows)
	for i := range vals {
		vals[i] = words[rng.Intn(len(words))]
	}
	return NewStringColumn("v", vals)
}

func benchCols() map[string]*Column {
	return map[string]*Column{
		"int64":   benchIntCol(),
		"float64": benchFloatCol(),
		"bool":    benchBoolCol(),
		"string":  benchStringCol(),
	}
}

// selectivities maps label → operand for `v < operand` over values
// uniform in [0, 100).
var selectivities = []struct {
	label   string
	operand int64
}{
	{"sel01", 1},
	{"sel50", 50},
	{"sel99", 99},
}

func BenchmarkSumRange(b *testing.B) {
	for name, c := range benchCols() {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			for i := 0; i < b.N; i++ {
				sinkF, _ = c.SumRange(0, benchRows)
			}
		})
	}
}

func BenchmarkSumRangeInt64(b *testing.B) {
	c := benchIntCol()
	b.SetBytes(benchRows * 8)
	for i := 0; i < b.N; i++ {
		sinkI, _, _ = c.SumRangeInt64(0, benchRows)
	}
}

func BenchmarkMinMaxRange(b *testing.B) {
	for name, c := range benchCols() {
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			for i := 0; i < b.N; i++ {
				sinkF, sinkF2, _ = c.MinMaxRange(0, benchRows)
			}
		})
	}
}

func BenchmarkFilterRange(b *testing.B) {
	for _, typ := range []string{"int64", "float64"} {
		c := benchCols()[typ]
		for _, sel := range selectivities {
			b.Run(typ+"/"+sel.label, func(b *testing.B) {
				b.SetBytes(benchRows * 8)
				var out []int32
				for i := 0; i < b.N; i++ {
					out = c.FilterRange(0, benchRows, RangeLt, IntValue(sel.operand), out[:0])
				}
				sinkN = len(out)
			})
		}
	}
}

func BenchmarkFilterAggRange(b *testing.B) {
	for _, typ := range []string{"int64", "float64", "bool", "string"} {
		c := benchCols()[typ]
		for _, sel := range selectivities {
			operand := IntValue(sel.operand)
			if typ == "bool" {
				operand = IntValue(1)
			}
			if typ == "string" {
				operand = StringValue(fmt.Sprintf("w%02d", sel.operand))
			}
			b.Run(typ+"/"+sel.label, func(b *testing.B) {
				b.SetBytes(benchRows * 8)
				for i := 0; i < b.N; i++ {
					fa := c.FilterAggRange(0, benchRows, RangeLt, operand)
					sinkF = fa.Sum
					sinkN = fa.N
				}
			})
		}
	}
}

func BenchmarkFilterCountRange(b *testing.B) {
	c := benchIntCol()
	for _, sel := range selectivities {
		b.Run("int64/"+sel.label, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			for i := 0; i < b.N; i++ {
				sinkN = c.FilterCountRange(0, benchRows, RangeLt, IntValue(sel.operand))
			}
		})
	}
}

func BenchmarkFilterAggSel(b *testing.B) {
	c := benchIntCol()
	base := c.FilterRange(0, benchRows, RangeLt, IntValue(50), nil)
	b.Run("int64/sel50of50", func(b *testing.B) {
		b.SetBytes(int64(len(base)) * 8)
		for i := 0; i < b.N; i++ {
			fa := c.FilterAggSel(base, RangeLt, IntValue(25))
			sinkF = fa.Sum
		}
	})
}

// BenchmarkFilterSumRange is the sum-specialized fused kernel the
// acceptance bar measures: it must run ≥ 2x faster than
// BenchmarkFilterThenSumRangeOverSel (the unfused pipeline shape it
// replaces) at ≥ 50% selectivity on 1M-row int64 — measured ~8x on the
// reference container, and still ~1.6x against the idealized typed
// gather compose (BenchmarkFilterThenSumCompose).
func BenchmarkFilterSumRange(b *testing.B) {
	for _, typ := range []string{"int64", "float64"} {
		c := benchCols()[typ]
		for _, sel := range selectivities {
			b.Run(typ+"/"+sel.label, func(b *testing.B) {
				b.SetBytes(benchRows * 8)
				for i := 0; i < b.N; i++ {
					fa := c.FilterSumRange(0, benchRows, RangeLt, IntValue(sel.operand))
					sinkF = fa.Sum
					sinkN = fa.N
				}
			})
		}
	}
}

// BenchmarkFilterThenSumCompose is the unfused sum reference:
// FilterRange materializes the selection, then a second typed pass sums
// it — the best the storage layer can do without fusion.
func BenchmarkFilterThenSumCompose(b *testing.B) {
	c := benchIntCol()
	for _, sel := range selectivities {
		b.Run("int64/"+sel.label, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			var out []int32
			for i := 0; i < b.N; i++ {
				out = c.FilterRange(0, benchRows, RangeLt, IntValue(sel.operand), out[:0])
				var sum int64
				for _, p := range out {
					sum += c.ints[p]
				}
				sinkF = float64(sum)
				sinkN = len(out)
			}
		})
	}
}

// BenchmarkFilterThenSumRangeOverSel is the unfused pipeline shape the
// fused kernels replace: FilterRange materializes the selection, then
// SumRange absorbs each maximal contiguous run of it (how the span path
// feeds a running aggregate without fusion). At mid selectivities runs
// are short, so the per-run dispatch dominates — exactly the overhead
// fusion removes.
func BenchmarkFilterThenSumRangeOverSel(b *testing.B) {
	c := benchIntCol()
	for _, sel := range selectivities {
		b.Run("int64/"+sel.label, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			var out []int32
			for i := 0; i < b.N; i++ {
				out = c.FilterRange(0, benchRows, RangeLt, IntValue(sel.operand), out[:0])
				var sum float64
				n := 0
				forEachRun(out, func(lo, hi int) {
					s, k := c.SumRange(lo, hi)
					sum += s
					n += k
				})
				sinkF = sum
				sinkN = n
			}
		})
	}
}

// forEachRun mirrors operator.ForEachRun (storage cannot import operator).
func forEachRun(sel []int32, fn func(lo, hi int)) {
	if len(sel) == 0 {
		return
	}
	runStart, prev := sel[0], sel[0]
	for _, r := range sel[1:] {
		if r != prev+1 {
			fn(int(runStart), int(prev)+1)
			runStart = r
		}
		prev = r
	}
	fn(int(runStart), int(prev)+1)
}

// BenchmarkFilterThenAggCompose is the unfused full-aggregate reference
// for FilterAggRange: FilterRange materializes the selection, then a
// second pass computes sum, count, min and max over it.
func BenchmarkFilterThenAggCompose(b *testing.B) {
	c := benchIntCol()
	for _, sel := range selectivities {
		b.Run("int64/"+sel.label, func(b *testing.B) {
			b.SetBytes(benchRows * 8)
			var out []int32
			for i := 0; i < b.N; i++ {
				out = c.FilterRange(0, benchRows, RangeLt, IntValue(sel.operand), out[:0])
				var sum int64
				n := 0
				mn, mx := int64(1<<62), int64(-(1 << 62))
				for _, p := range out {
					v := c.ints[p]
					sum += v
					n++
					if v < mn {
						mn = v
					}
					if v > mx {
						mx = v
					}
				}
				sinkF = float64(sum)
				sinkN = n
			}
		})
	}
}

var (
	sinkF  float64
	sinkF2 float64
	sinkI  int64
	sinkN  int
)
