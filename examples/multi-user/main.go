// Multi-user: several people explore the same data set at the same time.
//
// dbTouch's vision only matters at scale if many users can slide over the
// same data at once. This example opens one dbTouch instance over a
// million-value sensor column and forks a session per user: each session
// has its own on-screen object, virtual clock and result stream, driven
// from its own goroutine, while the column data and the sample hierarchy
// underneath are shared and immutable — built once, read by everyone.
//
// Because every session runs on its own virtual timeline, concurrency
// never changes answers: each user's result stream is exactly what they
// would have seen exploring alone.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dbtouch"
)

// user describes one concurrent explorer: which slice of the data they
// sweep and how fast.
type user struct {
	name     string
	from, to float64       // fractional slide range over the object
	dur      time.Duration // gesture duration (slower = finer granularity)
}

func main() {
	// A million readings with a hot region hiding at 60-63%.
	rng := rand.New(rand.NewSource(1))
	temps := make([]float64, 1_000_000)
	for i := range temps {
		temps[i] = 20 + rng.Float64()*5
		if i > 600_000 && i < 630_000 {
			temps[i] += 40
		}
	}

	db := dbtouch.Open()
	db.NewTable("readings").Float("temp", temps).MustCreate()

	users := []user{
		{"ana", 0.0, 1.0, 2 * time.Second},   // full coarse pass
		{"ben", 0.5, 0.8, 3 * time.Second},   // slow sweep of the upper-middle
		{"chloe", 1.0, 0.0, 1 * time.Second}, // quick bottom-to-top skim
		{"dev", 0.55, 0.68, 4 * time.Second}, // dwelling right on the anomaly
	}

	type report struct {
		name    string
		results int
		hottest float64
		virtual time.Duration
	}
	reports := make([]report, len(users))

	var wg sync.WaitGroup
	for i, u := range users {
		wg.Add(1)
		go func(i int, u user) {
			defer wg.Done()
			// Session forks a handle over the same storage: new screen,
			// new clock, shared (immutable) columns and sample levels.
			sess, err := db.Session(u.name)
			if err != nil {
				panic(err)
			}
			obj, err := sess.NewColumnObject("readings", "temp", 2, 2, 2, 10)
			if err != nil {
				panic(err)
			}
			obj.Summarize(dbtouch.Avg, 10)
			results := obj.SlideRange(u.from, u.to, u.dur)
			hottest := 0.0
			for _, r := range results {
				if r.Agg > hottest {
					hottest = r.Agg
				}
			}
			reports[i] = report{u.name, len(results), hottest, sess.Now()}
		}(i, u)
	}
	wg.Wait()

	sort.Slice(reports, func(i, j int) bool { return reports[i].name < reports[j].name })
	fmt.Printf("%d users explored %d readings concurrently:\n\n", len(users), len(temps))
	for _, r := range reports {
		verdict := "nothing unusual"
		if r.hottest > 30 {
			verdict = fmt.Sprintf("found the hot region (avg %.1f°)", r.hottest)
		}
		fmt.Printf("%-6s %2d summaries in %-6v of virtual session time — %s\n",
			r.name, r.results, r.virtual.Round(time.Millisecond), verdict)
	}
	fmt.Println("\nEvery session ran on its own virtual clock over shared immutable")
	fmt.Println("storage: same answers as exploring alone, N users at a time.")
}
