//go:build race

package storage

// raceEnabled reports that this binary was built with the race detector.
// The SIMD dispatch flags fold it in (see simd_amd64.go / simd_arm64.go):
// under -race every kernel takes the pure-Go path, because the race
// detector cannot instrument loads performed inside assembly — a data
// race on a shared column's backing slice would go unreported if the hot
// loops ran in .s files. Forcing the scalar path keeps the concurrent
// equivalence suites (internal/session under -race) able to observe
// every read the kernels perform. The asm itself is still exercised
// under -race by the differential suite (simd_diff_test.go), which calls
// the kernels directly rather than through the dispatch.
const raceEnabled = true
