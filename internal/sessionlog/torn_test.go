package sessionlog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// buildLog writes n frames for session "u" into a fresh store dir and
// returns the dir, the log path, and the byte offset where the final
// frame begins.
func buildLog(t *testing.T, n int) (dir, logPath string, finalStart int64) {
	t.Helper()
	dir = t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tail, err := st.AppendSession("u", payloadFor(i))
		if err != nil {
			t.Fatal(err)
		}
		if i == n-2 {
			finalStart = tail
		}
	}
	st.Close()
	return dir, filepath.Join(dir, "s-u.log"), finalStart
}

// TestTruncateEveryByteOffset is the fault-injection contract from the
// ISSUE: for EVERY possible truncation point inside the final frame,
// loading must replay cleanly to the last complete request — never a
// partial frame, never an error. This is the crash model for unbuffered
// appends: a kill -9 can only shorten the file.
func TestTruncateEveryByteOffset(t *testing.T) {
	const frames = 5
	dir, logPath, finalStart := buildLog(t, frames)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for cut := finalStart; cut < int64(len(full)); cut++ {
		if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := st.LoadSession("u")
		if err != nil {
			t.Fatalf("cut at byte %d: load failed: %v", cut, err)
		}
		if len(rep.Frames) != frames-1 {
			t.Fatalf("cut at byte %d: replayed %d frames, want %d", cut, len(rep.Frames), frames-1)
		}
		for i, fr := range rep.Frames {
			if string(fr.Payload) != string(payloadFor(i)) {
				t.Fatalf("cut at byte %d: frame %d corrupted", cut, i)
			}
		}
		if wantTorn := cut > finalStart; rep.Torn != wantTorn {
			t.Fatalf("cut at byte %d: Torn = %v, want %v", cut, rep.Torn, wantTorn)
		}
	}
}

// TestAppendAfterEveryTruncation is the recovery half: reopening an
// appender over any torn tail heals the file (truncating the partial
// frame) and continues the sequence where the last complete frame left
// off, so post-resume appends never bury a tear mid-file.
func TestAppendAfterEveryTruncation(t *testing.T) {
	const frames = 4
	dir, logPath, finalStart := buildLog(t, frames)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for cut := finalStart; cut < int64(len(full)); cut++ {
		if err := os.WriteFile(logPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.AppendSession("u", []byte("recovered")); err != nil {
			t.Fatalf("cut at byte %d: append after reopen: %v", cut, err)
		}
		rep, err := st.LoadSession("u")
		st.Close()
		if err != nil {
			t.Fatalf("cut at byte %d: %v", cut, err)
		}
		if len(rep.Frames) != frames {
			t.Fatalf("cut at byte %d: %d frames after recovery append, want %d", cut, len(rep.Frames), frames)
		}
		last := rep.Frames[frames-1]
		if string(last.Payload) != "recovered" || last.Seq != uint64(frames) {
			t.Fatalf("cut at byte %d: recovery frame = seq %d %q", cut, last.Seq, last.Payload)
		}
	}
}

// TestMidLogCorruptionIsTornLog: damage that is not a tail — a flipped
// byte in a non-final frame — must surface as the typed ErrTornLog,
// never as a silent partial replay.
func TestMidLogCorruptionIsTornLog(t *testing.T) {
	_, logPath, finalStart := buildLog(t, 5)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in each non-final frame region.
	for _, off := range []int64{frameHeader + 2, finalStart - 3} {
		dir2 := t.TempDir()
		bad := append([]byte(nil), full...)
		bad[off] ^= 0xFF
		if err := os.WriteFile(filepath.Join(dir2, "s-u.log"), bad, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(Options{Dir: dir2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.LoadSession("u"); !errors.Is(err, ErrTornLog) {
			t.Fatalf("corruption at byte %d: load = %v, want ErrTornLog", off, err)
		}
		// The appender must refuse the damaged log too, not append past it.
		if _, err := st.AppendSession("u", []byte("x")); !errors.Is(err, ErrTornLog) {
			t.Fatalf("corruption at byte %d: append = %v, want ErrTornLog", off, err)
		}
		st.Close()
	}
}

// TestCorruptFinalFrameIsToleratedTail: the same flipped byte in the
// FINAL frame is indistinguishable from a torn write, so it degrades to
// the torn-tail path — replay the prefix, drop the damage.
func TestCorruptFinalFrameIsToleratedTail(t *testing.T) {
	const frames = 5
	dir, logPath, finalStart := buildLog(t, frames)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), full...)
	bad[finalStart+frameHeader+1] ^= 0xFF
	if err := os.WriteFile(logPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rep, err := st.LoadSession("u")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Frames) != frames-1 || !rep.Torn {
		t.Fatalf("corrupt final frame: %d frames torn=%v, want %d torn", len(rep.Frames), rep.Torn, frames-1)
	}
}

// TestTruncatedCheckpointIsTornLog: checkpoints are written atomically
// (temp + rename), so any truncation of one is corruption — the typed
// error, not a partial replay.
func TestTruncatedCheckpointIsTornLog(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustAppendN(t, st, "u", 10)
	if err := st.CompactSession("u", CheckpointMeta{}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	ckptPath := filepath.Join(dir, "s-u.ckpt")
	full, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	// A spread of truncation points: inside the magic, the meta frame,
	// and the compressed body.
	for _, frac := range []int{1, 4, len(full) / 2, len(full) - 3} {
		st2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckptPath, full[:frac], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := st2.LoadSession("u"); !errors.Is(err, ErrTornLog) {
			t.Fatalf("checkpoint cut at %d: load = %v, want ErrTornLog", frac, err)
		}
		st2.Close()
	}
	// Restore and prove the baseline loads.
	if err := os.WriteFile(ckptPath, full, 0o644); err != nil {
		t.Fatal(err)
	}
	st3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	rep, err := st3.LoadSession("u")
	if err != nil || len(rep.Frames) != 10 {
		t.Fatalf("restored checkpoint: %v (%d frames)", err, len(rep.Frames))
	}
}

// TestSequenceGapIsTornLog: a log whose frames skip a sequence number
// (history lost mid-file) must refuse to replay.
func TestSequenceGapIsTornLog(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = AppendFrame(buf, 1, payloadFor(0))
	buf = AppendFrame(buf, 3, payloadFor(2)) // gap: seq 2 missing
	if err := os.WriteFile(filepath.Join(dir, "s-u.log"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.LoadSession("u"); !errors.Is(err, ErrTornLog) {
		t.Fatalf("sequence gap: load = %v, want ErrTornLog", err)
	}
}

// TestOversizedLengthPrefixIsTornLog: a length prefix past
// MaxFrameBytes is corruption, not a frame to wait for.
func TestOversizedLengthPrefixIsTornLog(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = AppendFrame(buf, 1, payloadFor(0))
	// Hand-craft a header claiming an absurd payload, followed by data.
	huge := make([]byte, frameHeader+8)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0x7F
	buf = append(buf, huge...)
	if err := os.WriteFile(filepath.Join(dir, "s-u.log"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.LoadSession("u"); !errors.Is(err, ErrTornLog) {
		t.Fatalf("oversized length: load = %v, want ErrTornLog", err)
	}
}
