// Live ingestion, self-hosted: the system's own exploration telemetry is
// fed back in as a live table and explored while it is still growing.
//
// A probe session slides over a synthetic sensor column; every result it
// produces becomes a telemetry row (virtual timestamp, result kind,
// value) shipped over the wire protocol's append op into a live "events"
// table served by the same in-process HTTP server. A second session then
// places the growing value column on its screen and slides over it —
// each gesture batch pins the newest snapshot epoch, so the explorer
// always reads a consistent frozen prefix no matter how fast the feed
// appends underneath. Retention and an append rate limit keep the
// telemetry table bounded, the way a long-running deployment would run
// it (see docs/operations.md).
package main

import (
	"fmt"
	"net"
	"net/http"
	"time"

	"dbtouch"
	"dbtouch/internal/datagen"
	"dbtouch/internal/protocol"
)

func main() {
	db := dbtouch.Open()

	// The data under observation: a sensor column with planted outliers.
	data := datagen.Floats(datagen.Spec{Dist: datagen.Uniform, N: 500_000, Seed: 9, Min: 0, Max: 1000})
	datagen.Plant(data, datagen.OutlierRegion, 0.6, 0.03, 9)
	db.NewTable("sensors").Float("reading", data).MustCreate()

	// The telemetry sink: an appendable live table with bounded history
	// and a rate-limited feed.
	events := db.NewLiveTable("events").
		Int("ts", nil).
		String("kind", nil).
		Float("value", nil).
		MustCreate()
	if err := events.Retain(50_000, 0, ""); err != nil {
		panic(err)
	}
	events.LimitAppends(200_000, 50_000)

	// Serve both tables over the wire protocol on a loopback port; the
	// telemetry feed goes through HTTP like any remote ingester would.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	server := &http.Server{Handler: protocol.NewHTTPHandler(db.Manager())}
	go server.Serve(ln)
	defer server.Close()
	feed := &protocol.Client{Base: "http://" + ln.Addr().String()}
	fmt.Printf("server up at %s, live table %q at epoch %d\n\n", feed.Base, "events", events.Epoch())

	// Probe session: explores the sensors and emits telemetry. Results
	// are buffered on a channel so the touch pipeline never blocks on the
	// network, and a shipper goroutine batches them into append calls.
	probe, err := db.Session("probe")
	if err != nil {
		panic(err)
	}
	telemetry := make(chan []any, 4096)
	probe.OnResult(func(r dbtouch.Result) {
		select {
		case telemetry <- []any{int64(r.Time), r.Kind.String(), r.Agg}:
		default: // feed saturated: drop telemetry, never stall a gesture
		}
	})
	shipped := make(chan int)
	go func() {
		total := 0
		batch := make([][]any, 0, 256)
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if _, _, err := feed.Append("events", batch); err == nil {
				total += len(batch)
			} // overloaded appends drop the batch; a real feed would back off and retry
			batch = batch[:0]
		}
		for row := range telemetry {
			batch = append(batch, row)
			// Keep draining while rows are ready, then flush the moment the
			// feed goes quiet so the table tracks the probe with low latency.
		drain:
			for len(batch) < cap(batch) {
				select {
				case next, ok := <-telemetry:
					if !ok {
						flush()
						shipped <- total
						return
					}
					batch = append(batch, next)
				default:
					break drain
				}
			}
			flush()
		}
		flush()
		shipped <- total
	}()

	sensors, err := probe.NewColumnObject("sensors", "reading", 2, 2, 2, 10)
	if err != nil {
		panic(err)
	}
	sensors.Summarize(dbtouch.Avg, 12)

	// First probe pass primes the telemetry table (an object cannot bind
	// to a table that has never seen a row).
	first := sensors.Slide(800 * time.Millisecond)
	for events.Rows() == 0 {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("primed: probe emitted %d results, events table at epoch %d\n", len(first), events.Epoch())

	// Explorer session: watches the telemetry arrive. Its object binds to
	// the live table and follows appends batch by batch.
	explorer, err := db.Session("explorer")
	if err != nil {
		panic(err)
	}
	watch, err := explorer.NewColumnObject("events", "value", 6, 2, 2, 10)
	if err != nil {
		panic(err)
	}
	watch.Aggregate(dbtouch.Max)

	// Interleave: the probe explores (generating telemetry), the explorer
	// slides over whatever has landed so far. Each explorer gesture pins
	// one snapshot epoch for its whole duration.
	for round := 1; round <= 4; round++ {
		probeResults := sensors.Slide(800 * time.Millisecond)
		probe.Idle(200 * time.Millisecond)

		// Wait for this round's telemetry to land before exploring it
		// (the feed is asynchronous; a real dashboard would just slide
		// over whatever has arrived).
		for deadline := time.Now().Add(time.Second); events.Epoch() < uint64(round+2) && time.Now().Before(deadline); {
			time.Sleep(time.Millisecond)
		}

		before := events.Epoch()
		watchResults := watch.Slide(600 * time.Millisecond)
		var peak float64
		for _, r := range watchResults {
			if r.Kind == dbtouch.AggregateValue && r.Agg > peak {
				peak = r.Agg
			}
		}
		fmt.Printf("round %d: probe emitted %3d results | events at epoch %3d, %6d rows | explorer saw running max %.1f\n",
			round, len(probeResults), before, events.Rows(), peak)
		explorer.Idle(200 * time.Millisecond)
	}

	close(telemetry)
	fmt.Printf("\nshipped %d telemetry rows over the wire; table ended at epoch %d with %d rows retained\n",
		<-shipped, events.Epoch(), events.Rows())
}
