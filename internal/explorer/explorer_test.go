package explorer

import (
	"testing"

	"dbtouch/internal/core"
	"dbtouch/internal/datagen"
	"dbtouch/internal/iomodel"
)

func TestNewTaskShape(t *testing.T) {
	task := NewTask("x", datagen.OutlierRegion, 10000, 3)
	if task.Rows != 10000 || task.Column.Len() != 10000 || task.IDs.Len() != 10000 {
		t.Fatal("task columns malformed")
	}
	if task.Pattern.End <= task.Pattern.Start {
		t.Fatalf("pattern = %+v", task.Pattern)
	}
	if task.IDs.Int(42) != 42 {
		t.Fatal("id column must be the identity")
	}
}

func TestDiscoveryCorrectness(t *testing.T) {
	p := datagen.Pattern{Start: 1000, End: 1100}
	rows := 100000
	good := Discovery{Found: true, Lo: 950, Hi: 1200}
	if !good.Correct(p, rows) {
		t.Fatal("overlapping tight report should be correct")
	}
	miss := Discovery{Found: true, Lo: 5000, Hi: 5100}
	if miss.Correct(p, rows) {
		t.Fatal("non-overlapping report should be wrong")
	}
	vague := Discovery{Found: true, Lo: 0, Hi: rows}
	if vague.Correct(p, rows) {
		t.Fatal("reporting the whole column is not a discovery")
	}
	notFound := Discovery{Found: false, Lo: 900, Hi: 1200}
	if notFound.Correct(p, rows) {
		t.Fatal("unfound discovery cannot be correct")
	}
}

func TestAnomalousRegionPointAnomaly(t *testing.T) {
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 10
	}
	vals[17] = 100
	lo, hi, found := anomalousRegion(vals, 3)
	if !found || lo > 17 || hi < 17 {
		t.Fatalf("point anomaly: [%d,%d] found=%v", lo, hi, found)
	}
}

func TestAnomalousRegionChangePoint(t *testing.T) {
	vals := make([]float64, 40)
	for i := range vals {
		if i < 20 {
			vals[i] = 10
		} else {
			vals[i] = 50
		}
	}
	lo, hi, found := anomalousRegion(vals, 3)
	if !found {
		t.Fatal("change point not detected")
	}
	if lo < 17 || hi > 22 {
		t.Fatalf("change point localized to [%d,%d], want ≈[19,20]", lo, hi)
	}
}

func TestAnomalousRegionCleanData(t *testing.T) {
	vals := make([]float64, 40)
	for i := range vals {
		vals[i] = 10 + float64(i%3)*0.01
	}
	if _, _, found := anomalousRegion(vals, 3); found {
		t.Fatal("clean data should trigger nothing")
	}
	if _, _, found := anomalousRegion(vals[:3], 3); found {
		t.Fatal("too-short series should trigger nothing")
	}
}

func TestDBTouchAgentFindsOutliers(t *testing.T) {
	task := NewTask("outliers", datagen.OutlierRegion, 50000, 3)
	d, err := DefaultDBTouchAgent().Run(task, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Correct(task.Pattern, task.Rows) {
		t.Fatalf("dbtouch agent failed: %v (plant [%d,%d))", d, task.Pattern.Start, task.Pattern.End)
	}
	if d.TuplesRead >= int64(task.Rows) {
		t.Fatalf("agent read %d tuples of %d; exploration must not scan everything", d.TuplesRead, task.Rows)
	}
}

func TestDBTouchAgentFindsLevelShift(t *testing.T) {
	task := NewTask("shift", datagen.LevelShift, 50000, 5)
	d, err := DefaultDBTouchAgent().Run(task, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Correct(task.Pattern, task.Rows) {
		t.Fatalf("level shift not found: %v", d)
	}
}

func TestSQLAgentFindsOutliers(t *testing.T) {
	task := NewTask("outliers", datagen.OutlierRegion, 50000, 3)
	d, err := DefaultSQLAgent().Run(task, iomodel.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Correct(task.Pattern, task.Rows) {
		t.Fatalf("sql agent failed: %v", d)
	}
	if d.Actions < 2 {
		t.Fatal("sql agent should need several queries")
	}
}

func TestContestDBTouchWins(t *testing.T) {
	task := NewTask("outliers", datagen.OutlierRegion, 50000, 3)
	db, err := DefaultDBTouchAgent().Run(task, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sql, err := DefaultSQLAgent().Run(task, iomodel.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !db.Correct(task.Pattern, task.Rows) || !sql.Correct(task.Pattern, task.Rows) {
		t.Fatalf("agents: db=%v sql=%v", db, sql)
	}
	// The paper's claim: touch exploration reaches the insight first.
	if db.Elapsed >= sql.Elapsed {
		t.Fatalf("dbtouch %v not faster than sql %v", db.Elapsed, sql.Elapsed)
	}
	if db.TuplesRead >= sql.TuplesRead {
		t.Fatalf("dbtouch read %d tuples, sql %d; dbtouch must touch less data", db.TuplesRead, sql.TuplesRead)
	}
}
