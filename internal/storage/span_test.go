package storage

import (
	"math"
	"testing"
)

func TestSumRangeMatchesScalar(t *testing.T) {
	c := NewIntColumn("v", []int64{3, 1, 4, 1, 5, 9, 2, 6})
	sum, n := c.SumRange(2, 6)
	if sum != 4+1+5+9 || n != 4 {
		t.Fatalf("SumRange = %v, %d", sum, n)
	}
	// Clamping.
	sum, n = c.SumRange(-3, 100)
	if n != 8 || sum != 31 {
		t.Fatalf("clamped SumRange = %v, %d", sum, n)
	}
	if _, n := c.SumRange(5, 2); n != 0 {
		t.Fatal("inverted range should be empty")
	}
}

func TestSumRangeAllTypes(t *testing.T) {
	fc := NewFloatColumn("f", []float64{0.5, 1.5, 2.5})
	if sum, n := fc.SumRange(0, 3); sum != 4.5 || n != 3 {
		t.Fatalf("float SumRange = %v, %d", sum, n)
	}
	bc := NewBoolColumn("b", []bool{true, false, true, true})
	if sum, n := bc.SumRange(0, 4); sum != 3 || n != 4 {
		t.Fatalf("bool SumRange = %v, %d", sum, n)
	}
	sc := NewStringColumn("s", []string{"a", "b", "a"})
	// String cells coerce to dictionary codes (matching Column.Float).
	if sum, n := sc.SumRange(0, 3); sum != 0+1+0 || n != 3 {
		t.Fatalf("string SumRange = %v, %d", sum, n)
	}
}

func TestMinMaxRange(t *testing.T) {
	c := NewIntColumn("v", []int64{3, 1, 4, 1, 5, 9, 2, 6})
	min, max, n := c.MinMaxRange(1, 6)
	if min != 1 || max != 9 || n != 5 {
		t.Fatalf("MinMaxRange = %v, %v, %d", min, max, n)
	}
	min, max, n = c.MinMaxRange(4, 4)
	if !math.IsInf(min, 1) || !math.IsInf(max, -1) || n != 0 {
		t.Fatalf("empty MinMaxRange = %v, %v, %d", min, max, n)
	}
}

func TestCountRangeClamps(t *testing.T) {
	c := NewIntColumn("v", make([]int64, 10))
	if got := c.CountRange(-5, 7); got != 7 {
		t.Fatalf("CountRange = %d", got)
	}
	if got := c.CountRange(8, 100); got != 2 {
		t.Fatalf("CountRange = %d", got)
	}
}

func TestAddRangeToOrder(t *testing.T) {
	c := NewFloatColumn("v", []float64{1, 2, 3, 4})
	var got []float64
	n := c.AddRangeTo(1, 3, func(v float64) { got = append(got, v) })
	if n != 2 || len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("AddRangeTo = %v (n=%d)", got, n)
	}
}

func TestFilterRangeMatchesPredicateSemantics(t *testing.T) {
	c := NewIntColumn("v", []int64{5, 3, 8, 3, 1, 9})
	ops := []RangeOp{RangeEq, RangeNe, RangeLt, RangeLe, RangeGt, RangeGe}
	operand := IntValue(3)
	for _, op := range ops {
		sel := c.FilterRange(0, c.Len(), op, operand, nil)
		// Scalar reference via Value.Compare.
		var want []int32
		for i := 0; i < c.Len(); i++ {
			if op.applyCmp(c.Value(i).Compare(operand)) {
				want = append(want, int32(i))
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("op %d: sel = %v, want %v", op, sel, want)
		}
		for i := range sel {
			if sel[i] != want[i] {
				t.Fatalf("op %d: sel = %v, want %v", op, sel, want)
			}
		}
	}
}

func TestFilterRangeStringLexicographic(t *testing.T) {
	c := NewStringColumn("s", []string{"pear", "apple", "fig", "apple", "quince"})
	sel := c.FilterRange(0, c.Len(), RangeLt, StringValue("grape"), nil)
	if len(sel) != 3 || sel[0] != 1 || sel[1] != 2 || sel[2] != 3 {
		t.Fatalf("string RangeLt sel = %v", sel)
	}
	// Equality against an interned value.
	sel = c.FilterRange(0, c.Len(), RangeEq, StringValue("apple"), nil)
	if len(sel) != 2 {
		t.Fatalf("string RangeEq sel = %v", sel)
	}
}

func TestFilterSelRefines(t *testing.T) {
	c := NewIntColumn("v", []int64{5, 3, 8, 3, 1, 9})
	first := c.FilterRange(0, c.Len(), RangeGt, IntValue(2), nil) // 5 3 8 3 9
	out := c.FilterSel(first, RangeLt, IntValue(6), nil)          // 5 3 3
	if len(out) != 3 || out[0] != 0 || out[1] != 1 || out[2] != 3 {
		t.Fatalf("FilterSel = %v", out)
	}
}

func TestFilterRangeMixedTypeCoercion(t *testing.T) {
	// Int column vs float operand compares numerically, as Value.Compare does.
	c := NewIntColumn("v", []int64{1, 2, 3})
	sel := c.FilterRange(0, 3, RangeGe, FloatValue(2.5), nil)
	if len(sel) != 1 || sel[0] != 2 {
		t.Fatalf("mixed coercion sel = %v", sel)
	}
}

func TestGatherTyped(t *testing.T) {
	sc := NewStringColumn("s", []string{"x", "y", "z"})
	g := sc.Gather([]int{2, 0, 5})
	if g.Len() != 2 || g.Value(0).S != "z" || g.Value(1).S != "x" {
		t.Fatalf("string Gather = %v", g)
	}
	bc := NewBoolColumn("b", []bool{true, false, true})
	gb := bc.Gather([]int{1, 2})
	if gb.Len() != 2 || gb.Value(0).B || !gb.Value(1).B {
		t.Fatalf("bool Gather broken")
	}
}

func TestStridedTypedArms(t *testing.T) {
	bc := NewBoolColumn("b", []bool{true, false, true, false, true})
	sb := bc.Strided(0, 2)
	if sb.Len() != 3 || !sb.Value(0).B || !sb.Value(1).B || !sb.Value(2).B {
		t.Fatalf("bool Strided = %v", sb)
	}
	sc := NewStringColumn("s", []string{"a", "b", "c", "d"})
	ss := sc.Strided(1, 2)
	if ss.Len() != 2 || ss.Value(0).S != "b" || ss.Value(1).S != "d" {
		t.Fatalf("string Strided values wrong")
	}
}

func TestPassByCodeMemoExtendsWithDict(t *testing.T) {
	sc := NewStringColumn("s", []string{"a", "c", "a", "c"})
	sel := sc.FilterRange(0, sc.Len(), RangeLt, StringValue("b"), nil)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 2 {
		t.Fatalf("first filter sel = %v", sel)
	}
	// Interning a new code after the table was memoized must extend it.
	sc.Append(StringValue("aa"))
	sel = sc.FilterRange(0, sc.Len(), RangeLt, StringValue("b"), nil)
	if len(sel) != 3 || sel[2] != 4 {
		t.Fatalf("post-append filter sel = %v", sel)
	}
	// Memo hit: same outcome on repeat, distinct operand gets its own table.
	again := sc.FilterRange(0, sc.Len(), RangeLt, StringValue("b"), nil)
	if len(again) != 3 {
		t.Fatalf("memoized filter sel = %v", again)
	}
	ge := sc.FilterRange(0, sc.Len(), RangeGe, StringValue("b"), nil)
	if len(ge) != 2 || ge[0] != 1 || ge[1] != 3 {
		t.Fatalf("distinct-operand sel = %v", ge)
	}
}
