package mapping

import (
	"testing"
	"testing/quick"

	"dbtouch/internal/touchos"
)

func TestTupleIDRuleOfThree(t *testing.T) {
	tests := []struct {
		t, o float64
		n    int
		want int
	}{
		{0, 10, 100, 0},
		{5, 10, 100, 50},
		{9.99, 10, 100, 99},
		{10, 10, 100, 99}, // clamp at end
		{-1, 10, 100, 0},  // clamp below
		{2.5, 10, 4, 1},   // few tuples
	}
	for _, tc := range tests {
		got, err := TupleID(tc.t, tc.o, tc.n)
		if err != nil {
			t.Fatalf("TupleID(%v,%v,%d): %v", tc.t, tc.o, tc.n, err)
		}
		if got != tc.want {
			t.Errorf("TupleID(%v,%v,%d) = %d, want %d", tc.t, tc.o, tc.n, got, tc.want)
		}
	}
}

func TestTupleIDErrors(t *testing.T) {
	if _, err := TupleID(1, 10, 0); err != ErrEmptyObject {
		t.Fatalf("empty object error = %v", err)
	}
	if _, err := TupleID(1, 0, 10); err != ErrDegenerateView {
		t.Fatalf("degenerate view error = %v", err)
	}
}

// Property: TupleID is monotone in t and always in range.
func TestTupleIDProperties(t *testing.T) {
	f := func(t1, t2 float64, nRaw uint16) bool {
		n := int(nRaw)%100000 + 1
		o := 10.0
		a, b := t1, t2
		if a > b {
			a, b = b, a
		}
		idA, err1 := TupleID(a, o, n)
		idB, err2 := TupleID(b, o, n)
		if err1 != nil || err2 != nil {
			return false
		}
		return idA <= idB && idA >= 0 && idB < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowAtQuantization(t *testing.T) {
	m := ObjectMap{Rows: 1_000_000}
	size := touchos.Size{W: 2, H: 10}
	// Two touches within the same digitizer cell map to the same tuple.
	a, err := m.RowAt(touchos.Point{X: 1, Y: 5.00}, size)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.RowAt(touchos.Point{X: 1, Y: 5.01}, size)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("sub-resolution touches mapped differently: %d vs %d", a, b)
	}
	// Touches a full position apart map to different tuples.
	c, err := m.RowAt(touchos.Point{X: 1, Y: 5.1}, size)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatalf("distinct positions mapped identically: %d", a)
	}
}

func TestRowAtMonotone(t *testing.T) {
	m := ObjectMap{Rows: 10000}
	size := touchos.Size{W: 2, H: 10}
	prev := -1
	for y := 0.0; y < 10; y += 0.05 {
		id, err := m.RowAt(touchos.Point{X: 1, Y: y}, size)
		if err != nil {
			t.Fatal(err)
		}
		if id < prev {
			t.Fatalf("RowAt not monotone at y=%v: %d < %d", y, id, prev)
		}
		if id < 0 || id >= 10000 {
			t.Fatalf("RowAt out of range: %d", id)
		}
		prev = id
	}
}

func TestGranularitySnapping(t *testing.T) {
	m := ObjectMap{Rows: 10000, Granularity: 100}
	size := touchos.Size{W: 2, H: 10}
	for y := 0.0; y < 10; y += 0.3 {
		id, err := m.RowAt(touchos.Point{X: 1, Y: y}, size)
		if err != nil {
			t.Fatal(err)
		}
		if id%100 != 0 {
			t.Fatalf("granularity 100 produced id %d", id)
		}
	}
}

func TestPositionsAndAddressable(t *testing.T) {
	m := ObjectMap{Rows: 1_000_000}
	if got := m.Positions(10); got != 200 {
		t.Fatalf("Positions(10cm) = %d, want 200", got)
	}
	if got := m.AddressableTuples(10); got != 200 {
		t.Fatalf("AddressableTuples = %d, want 200 (position bound)", got)
	}
	small := ObjectMap{Rows: 50}
	if got := small.AddressableTuples(10); got != 50 {
		t.Fatalf("AddressableTuples = %d, want 50 (row bound)", got)
	}
	if got := m.Positions(0.01); got != 1 {
		t.Fatalf("tiny object Positions = %d, want 1", got)
	}
}

func TestColAtTableMapping(t *testing.T) {
	m := ObjectMap{Rows: 100, Cols: 4}
	size := touchos.Size{W: 8, H: 10}
	cases := []struct {
		x    float64
		want int
	}{{0.5, 0}, {2.5, 1}, {4.5, 2}, {7.9, 3}}
	for _, tc := range cases {
		got, err := m.ColAt(touchos.Point{X: tc.x, Y: 5}, size)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("ColAt(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestCellCombines(t *testing.T) {
	m := ObjectMap{Rows: 1000, Cols: 2}
	size := touchos.Size{W: 4, H: 10}
	row, col, err := m.Cell(touchos.Point{X: 3, Y: 5}, size)
	if err != nil {
		t.Fatal(err)
	}
	if col != 1 {
		t.Fatalf("col = %d, want 1", col)
	}
	if row < 450 || row > 550 {
		t.Fatalf("row = %d, want ≈500", row)
	}
}

// Rotating a view must not change which tuples a slide along the data
// axis reaches (paper §2.4).
func TestRotationInvariantMapping(t *testing.T) {
	m := ObjectMap{Rows: 10000}

	upright := touchos.NewView("u", touchos.NewRect(2, 2, 2, 10))
	rotated := touchos.NewView("r", touchos.NewRect(2, 2, 2, 10))
	rotated.Rotate(1)

	// Slide down the upright object's height.
	idUp, err := m.RowOnView(upright, touchos.Point{X: 3, Y: 7}) // 50% of height
	if err != nil {
		t.Fatal(err)
	}
	// The rotated object's height axis runs along screen X; the same
	// fractional position along that axis is (2 + 0.5*10 ... but frame is
	// 2x10 rotated → in screen coords, local Y comes from X offset).
	// Local Y = rel.X per ToLocal(rot=1): point at rel.X=5 → local Y=5.
	idRot, err := m.RowOnView(rotated, touchos.Point{X: 2 + 0.5, Y: 2 + 5})
	_ = idRot
	if err != nil {
		t.Fatal(err)
	}
	// Both map via the same Rule of Three on the same local fraction.
	half, err := m.RowAt(touchos.Point{X: 1, Y: 5}, touchos.Size{W: 2, H: 10})
	if err != nil {
		t.Fatal(err)
	}
	if idUp != half {
		t.Fatalf("upright mapping %d != direct %d", idUp, half)
	}
}

func TestValidate(t *testing.T) {
	if err := (ObjectMap{Rows: -1}).Validate(); err == nil {
		t.Fatal("negative rows should fail validation")
	}
	if err := (ObjectMap{Granularity: -2}).Validate(); err == nil {
		t.Fatal("negative granularity should fail validation")
	}
	if err := (ObjectMap{Rows: 10, Cols: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRowAtErrors(t *testing.T) {
	m := ObjectMap{Rows: 0}
	if _, err := m.RowAt(touchos.Point{X: 1, Y: 1}, touchos.Size{W: 2, H: 10}); err == nil {
		t.Fatal("empty object should error")
	}
	m = ObjectMap{Rows: 10}
	if _, err := m.RowAt(touchos.Point{X: 1, Y: 1}, touchos.Size{W: 2, H: 0}); err == nil {
		t.Fatal("zero-height view should error")
	}
	if _, err := m.ColAt(touchos.Point{X: 1, Y: 1}, touchos.Size{W: 0, H: 10}); err == nil {
		t.Fatal("zero-width view should error for ColAt")
	}
}
