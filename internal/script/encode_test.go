package script

import (
	"strings"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/protocol"
	"dbtouch/internal/session"
	"dbtouch/internal/storage"
)

func parseText(t *testing.T, text string) []Command {
	t.Helper()
	commands, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return commands
}

func TestEncodeShapes(t *testing.T) {
	reqs, err := Encode(parseText(t, `
column obj t v 2 2 2 10
summarize obj avg 10
valueorder obj on
where obj v >= 250
slide obj 1500ms 0.2 0.9
tap obj 0.5
zoomout obj 2
rotate obj
moveto obj 5 5
pin obj hot 9 2 2 6
idle 2s
render
`), "sess")
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []string{
		protocol.OpCreate, protocol.OpConfigure, protocol.OpConfigure, protocol.OpConfigure,
		protocol.OpPerform, protocol.OpPerform, protocol.OpPerform, protocol.OpPerform,
		protocol.OpPerform, protocol.OpPin, protocol.OpIdle,
	}
	if len(reqs) != len(wantOps) {
		t.Fatalf("encoded %d requests, want %d (render must be skipped)", len(reqs), len(wantOps))
	}
	for i, req := range reqs {
		if req.Op != wantOps[i] {
			t.Fatalf("request %d op = %s, want %s", i, req.Op, wantOps[i])
		}
		if req.Session != "sess" || req.V != protocol.Version {
			t.Fatalf("request %d envelope = %+v", i, req)
		}
	}
	if g := reqs[4].Gesture; g == nil || g.From != 0.2 || g.To != 0.9 || g.Dur != 1500*time.Millisecond {
		t.Fatalf("slide gesture = %+v", reqs[4].Gesture)
	}
	if g := reqs[6].Gesture; g == nil || g.Factor != 0.5 {
		t.Fatalf("zoomout 2 should encode factor 0.5, got %+v", reqs[6].Gesture)
	}
	if w := reqs[3].Actions.Where; len(w) != 1 || w[0].Value != 250.0 {
		t.Fatalf("where spec = %+v", reqs[3].Actions)
	}
	if reqs[9].As != "hot" || reqs[9].Object != "obj" {
		t.Fatalf("pin request = %+v", reqs[9])
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []string{
		"column obj t v 2 2\n",
		"slide obj notaduration\n",
		"zoomin obj -1\n",
		"valueorder obj maybe\n",
		"teleport obj\n",
		"aggregate obj median\n",
	}
	for _, text := range bad {
		if _, err := Encode(parseText(t, text), "s"); err == nil {
			t.Fatalf("Encode(%q) should fail", strings.TrimSpace(text))
		}
	}
}

func TestReplayThroughManager(t *testing.T) {
	m := session.NewManager(core.Config{})
	vals := make([]int64, 50000)
	for i := range vals {
		vals[i] = int64(i)
	}
	matrix, err := storage.NewMatrix("t", storage.NewIntColumn("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	m.Catalog().Register(matrix)
	defer m.Close()

	reqs, err := Encode(parseText(t, `
column obj t v 2 2 2 10
summarize obj avg 5
slide obj 1s
`), "u")
	if err != nil {
		t.Fatal(err)
	}
	if resp := m.HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpOpen, Session: "u"}); !resp.OK {
		t.Fatal(resp.Error)
	}
	frames, err := Replay(m, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("replay produced no frames")
	}
	if frames[0].Kind != "summary" {
		t.Fatalf("frame kind = %q", frames[0].Kind)
	}

	// Replay stops at the first failing request.
	broken := append(append([]protocol.Request{}, reqs...), protocol.Request{
		V: protocol.Version, Op: protocol.OpPerform, Session: "u", Object: "ghost",
		Gesture: reqs[2].Gesture,
	})
	if _, err := Replay(m, broken); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("replay error = %v", err)
	}
}
