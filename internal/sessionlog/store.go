package sessionlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Defaults for Options zero values.
const (
	// DefaultCompactBytes is the log-tail size that triggers compaction
	// into a checkpoint.
	DefaultCompactBytes = 256 << 10
	// DefaultMaxOpenLogs caps cached appender file descriptors; colder
	// logs are closed and reopened on demand, so 10k live sessions cost
	// O(DefaultMaxOpenLogs) fds, not O(sessions).
	DefaultMaxOpenLogs = 64
)

// Options configures a Store. Zero values select the defaults.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// CompactBytes is the per-log tail threshold: Append reports the
	// tail size and the session layer compacts once it crosses this.
	CompactBytes int64
	// RetainBytes bounds the directory's total size: past it, the
	// oldest unprotected session file pairs are deleted (they lose
	// resumability — the same trade the flight recorder makes). 0
	// disables the bound. Table logs are data, never dropped.
	RetainBytes int64
	// MaxOpenLogs caps cached appender fds.
	MaxOpenLogs int
	// Protect exempts a session from retention deletion (the session
	// manager protects live sessions). May be replaced via SetProtect.
	Protect func(id string) bool
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	// AppendedFrames and AppendedBytes count lifetime appends.
	AppendedFrames int64
	AppendedBytes  int64
	// Compactions counts checkpoint rewrites (sessions and tables).
	Compactions int64
	// DroppedSessions counts session logs deleted by retention.
	DroppedSessions int64
	// TornTruncations counts torn tails healed on appender reopen.
	TornTruncations int64
	// OpenLogs is the current cached-appender count.
	OpenLogs int
}

// Replay is one log's decoded history: checkpoint frames followed by
// the tail, duplicates from a crash between checkpoint-rename and
// log-truncate already skipped.
type Replay struct {
	// Meta is the checkpoint header, nil when no checkpoint exists.
	Meta *CheckpointMeta
	// Frames is the full replayable history in sequence order.
	Frames []Frame
	// Torn reports a tolerated torn tail: trailing bytes of a partial
	// final frame were dropped.
	Torn bool
	// LastSeq is the sequence number of the last frame (0 if none).
	LastSeq uint64
}

// Store owns one directory of session and table logs. All methods are
// safe for concurrent use; callers serialize per-log execute+append
// sequences with SessionLocker/TableLocker (the store's own mutex only
// protects its internal state and makes individual file operations
// atomic with respect to each other).
type Store struct {
	dir          string
	compactBytes int64
	retainBytes  int64
	maxOpen      int

	mu        sync.Mutex
	protect   func(string) bool
	appenders map[string]*appender
	order     []string // appender LRU, oldest first
	locks     map[string]*sync.Mutex
	sinceScan int64
	closed    bool
	stats     Stats
}

// appender is one open log file positioned at its end.
type appender struct {
	f       *os.File
	size    int64
	nextSeq uint64
}

// Open opens (creating if needed) the log directory.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("sessionlog: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("sessionlog: %w", err)
	}
	st := &Store{
		dir:          opts.Dir,
		compactBytes: opts.CompactBytes,
		retainBytes:  opts.RetainBytes,
		maxOpen:      opts.MaxOpenLogs,
		protect:      opts.Protect,
		appenders:    make(map[string]*appender),
		locks:        make(map[string]*sync.Mutex),
	}
	if st.compactBytes <= 0 {
		st.compactBytes = DefaultCompactBytes
	}
	if st.maxOpen <= 0 {
		st.maxOpen = DefaultMaxOpenLogs
	}
	return st, nil
}

// CompactBytes reports the configured compaction threshold.
func (st *Store) CompactBytes() int64 { return st.compactBytes }

// SetProtect installs the retention exemption callback. The callback
// runs while the store's mutex is held, so it must not call back into
// the store.
func (st *Store) SetProtect(fn func(id string) bool) {
	st.mu.Lock()
	st.protect = fn
	st.mu.Unlock()
}

// SessionLocker returns the mutex serializing one session's
// execute+append sequences (and its resume). Lockers are per-id and
// live for the store's lifetime.
func (st *Store) SessionLocker(id string) *sync.Mutex { return st.locker(sessionBase(id)) }

// TableLocker is SessionLocker for a table log.
func (st *Store) TableLocker(name string) *sync.Mutex { return st.locker(tableBase(name)) }

func (st *Store) locker(base string) *sync.Mutex {
	st.mu.Lock()
	defer st.mu.Unlock()
	lk, ok := st.locks[base]
	if !ok {
		lk = &sync.Mutex{}
		st.locks[base] = lk
	}
	return lk
}

// AppendSession appends one framed request payload to the session's
// log with a single unbuffered write (a crash loses at most this
// frame, and only as a tolerated torn tail). It returns the log's tail
// size so the caller can trigger compaction past CompactBytes.
func (st *Store) AppendSession(id string, payload []byte) (tail int64, err error) {
	return st.appendTo(sessionBase(id), payload)
}

// AppendTable appends one framed request payload to a table's log.
func (st *Store) AppendTable(name string, payload []byte) (tail int64, err error) {
	return st.appendTo(tableBase(name), payload)
}

func (st *Store) appendTo(base string, payload []byte) (int64, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return 0, fmt.Errorf("sessionlog: store closed")
	}
	ap, err := st.appenderLocked(base)
	if err != nil {
		return 0, err
	}
	buf := AppendFrame(nil, ap.nextSeq, payload)
	n, err := ap.f.Write(buf)
	if err != nil {
		// A short write leaves a torn tail in a file we keep appending
		// to; truncate back so the log stays clean mid-file.
		if n > 0 {
			ap.f.Truncate(ap.size)
			ap.f.Seek(ap.size, 0)
		}
		return ap.size, fmt.Errorf("sessionlog: append %s: %w", base, err)
	}
	ap.size += int64(len(buf))
	ap.nextSeq++
	st.stats.AppendedFrames++
	st.stats.AppendedBytes += int64(len(buf))
	st.sinceScan += int64(len(buf))
	st.maybeRetainLocked()
	return ap.size, nil
}

// appenderLocked returns the cached appender for base, opening the log
// (healing any torn tail) on a miss and evicting the coldest cached
// appenders past MaxOpenLogs. Caller holds st.mu.
func (st *Store) appenderLocked(base string) (*appender, error) {
	if ap, ok := st.appenders[base]; ok {
		for i, b := range st.order {
			if b == base {
				st.order = append(append(st.order[:i:i], st.order[i+1:]...), base)
				break
			}
		}
		return ap, nil
	}
	path := filepath.Join(st.dir, base+".log")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sessionlog: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sessionlog: %w", err)
	}
	frames, tail, err := parseFrames(data)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sessionlog: %s: %w", base, err)
	}
	size := int64(len(data) - tail)
	if tail > 0 {
		// The torn frame was never acknowledged; drop it so future
		// appends don't bury a tear mid-file.
		if err := f.Truncate(size); err != nil {
			f.Close()
			return nil, fmt.Errorf("sessionlog: healing %s: %w", base, err)
		}
		st.stats.TornTruncations++
	}
	next := uint64(1)
	if len(frames) > 0 {
		next = frames[len(frames)-1].Seq + 1
	} else if meta, err := st.checkpointLastSeq(base); err == nil {
		next = meta + 1
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("sessionlog: %w", err)
	}
	ap := &appender{f: f, size: size, nextSeq: next}
	st.appenders[base] = ap
	st.order = append(st.order, base)
	for len(st.appenders) > st.maxOpen {
		victim := st.order[0]
		st.order = st.order[1:]
		st.appenders[victim].f.Close()
		delete(st.appenders, victim)
	}
	return ap, nil
}

// checkpointLastSeq reads just the checkpoint header's LastSeq (0 with
// an error if no checkpoint). Caller holds st.mu.
func (st *Store) checkpointLastSeq(base string) (uint64, error) {
	data, err := os.ReadFile(filepath.Join(st.dir, base+".ckpt"))
	if err != nil {
		return 0, err
	}
	meta, _, err := decodeCheckpointHeader(data)
	if err != nil {
		return 0, err
	}
	return meta.LastSeq, nil
}

// LoadSession decodes a session's full replayable history: checkpoint
// frames plus the log tail, dedup'd by sequence number. A missing
// session is ErrNoLog; damage beyond a torn tail is ErrTornLog.
// Callers hold the session's locker to keep the load atomic against
// appends.
func (st *Store) LoadSession(id string) (*Replay, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.loadLocked(sessionBase(id))
}

// LoadTable decodes a table log's history.
func (st *Store) LoadTable(name string) (*Replay, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.loadLocked(tableBase(name))
}

func (st *Store) loadLocked(base string) (*Replay, error) {
	meta, ckptFrames, haveCkpt, err := readCheckpointFile(filepath.Join(st.dir, base+".ckpt"))
	if err != nil {
		return nil, err
	}
	logData, err := os.ReadFile(filepath.Join(st.dir, base+".log"))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("sessionlog: %w", err)
	}
	if !haveCkpt && logData == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoLog, base)
	}
	frames, tail, err := parseFrames(logData)
	if err != nil {
		return nil, fmt.Errorf("sessionlog: %s.log: %w", base, err)
	}
	rep := &Replay{Frames: ckptFrames, Torn: tail > 0}
	if haveCkpt {
		rep.Meta = &meta
		rep.LastSeq = meta.LastSeq
	}
	for _, fr := range frames {
		if fr.Seq <= rep.LastSeq {
			// Duplicate of a checkpointed frame: a crash landed between
			// the checkpoint rename and the log truncate.
			continue
		}
		if rep.LastSeq != 0 || len(rep.Frames) > 0 {
			if fr.Seq != rep.LastSeq+1 {
				return nil, fmt.Errorf("%w: %s.log: sequence gap (frame %d after %d)",
					ErrTornLog, base, fr.Seq, rep.LastSeq)
			}
		}
		rep.LastSeq = fr.Seq
		rep.Frames = append(rep.Frames, fr)
	}
	if len(rep.Frames) == 0 && !haveCkpt && tail == 0 && len(logData) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoLog, base)
	}
	return rep, nil
}

// CompactSession rewrites the session's full history into a fresh
// checkpoint (atomically, via temp file + rename) and truncates the
// log. The caller holds the session's locker and supplies the advisory
// meta fields; the store stamps the coverage fields.
func (st *Store) CompactSession(id string, meta CheckpointMeta) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	meta.Session = id
	return st.compactLocked(sessionBase(id), meta)
}

func (st *Store) compactLocked(base string, meta CheckpointMeta) error {
	rep, err := st.loadLocked(base)
	if err != nil {
		return err
	}
	if rep.Torn {
		return fmt.Errorf("%w: refusing to compact %s with a torn tail", ErrTornLog, base)
	}
	meta.LastSeq = rep.LastSeq
	meta.Frames = len(rep.Frames)
	meta.WrittenUnixNS = time.Now().UnixNano()
	img, err := encodeCheckpoint(meta, rep.Frames)
	if err != nil {
		return fmt.Errorf("sessionlog: encoding checkpoint %s: %w", base, err)
	}
	path := filepath.Join(st.dir, base+".ckpt")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, img, 0o644); err != nil {
		return fmt.Errorf("sessionlog: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sessionlog: %w", err)
	}
	// The log's frames are now covered by the checkpoint; a crash right
	// here leaves duplicates that loadLocked skips by sequence number.
	if ap, ok := st.appenders[base]; ok {
		if err := ap.f.Truncate(0); err != nil {
			return fmt.Errorf("sessionlog: truncating %s: %w", base, err)
		}
		if _, err := ap.f.Seek(0, 0); err != nil {
			return fmt.Errorf("sessionlog: %w", err)
		}
		ap.size = 0
	} else if err := os.Truncate(filepath.Join(st.dir, base+".log"), 0); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("sessionlog: truncating %s: %w", base, err)
	}
	st.stats.Compactions++
	return nil
}

// CompactTable atomically replaces a table's log with a single frame
// carrying replacement (a whole-table append request), keeping the
// sequence number so later appends stay contiguous. The caller holds
// the table's locker.
func (st *Store) CompactTable(name string, replacement []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	base := tableBase(name)
	rep, err := st.loadLocked(base)
	if err != nil {
		return err
	}
	if rep.Torn {
		return fmt.Errorf("%w: refusing to compact %s with a torn tail", ErrTornLog, base)
	}
	path := filepath.Join(st.dir, base+".log")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, AppendFrame(nil, rep.LastSeq, replacement), 0o644); err != nil {
		return fmt.Errorf("sessionlog: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sessionlog: %w", err)
	}
	st.closeAppenderLocked(base) // cached size/offset are stale; reopen lazily
	st.stats.Compactions++
	return nil
}

// Park closes the session's cached appender, keeping its files: the
// session stays resumable (Manager eviction parks; only a wire evict
// removes).
func (st *Store) Park(id string) {
	st.mu.Lock()
	st.closeAppenderLocked(sessionBase(id))
	st.mu.Unlock()
}

// RemoveSession deletes the session's log and checkpoint — it is no
// longer resumable. A fresh open of the same id also removes, giving
// the id a clean history.
func (st *Store) RemoveSession(id string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	base := sessionBase(id)
	st.closeAppenderLocked(base)
	var first error
	for _, suffix := range []string{".log", ".ckpt"} {
		if err := os.Remove(filepath.Join(st.dir, base+suffix)); err != nil && !os.IsNotExist(err) && first == nil {
			first = err
		}
	}
	return first
}

func (st *Store) closeAppenderLocked(base string) {
	ap, ok := st.appenders[base]
	if !ok {
		return
	}
	ap.f.Close()
	delete(st.appenders, base)
	for i, b := range st.order {
		if b == base {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// Sessions lists every session id with persisted state, sorted.
func (st *Store) Sessions() []string { return st.list("s-") }

// Tables lists every table with a persisted log, sorted.
func (st *Store) Tables() []string { return st.list("t-") }

func (st *Store) list(prefix string) []string {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		var base string
		switch {
		case strings.HasSuffix(name, ".log"):
			base = strings.TrimSuffix(name, ".log")
		case strings.HasSuffix(name, ".ckpt"):
			base = strings.TrimSuffix(name, ".ckpt")
		default:
			continue
		}
		id, ok := unescapeName(base[len(prefix):])
		if !ok || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// SessionBytes reports the session's total on-disk footprint (log +
// checkpoint) and its log tail alone.
func (st *Store) SessionBytes(id string) (total, tail int64) {
	base := sessionBase(id)
	if fi, err := os.Stat(filepath.Join(st.dir, base+".log")); err == nil {
		tail = fi.Size()
		total += fi.Size()
	}
	if fi, err := os.Stat(filepath.Join(st.dir, base+".ckpt")); err == nil {
		total += fi.Size()
	}
	return total, tail
}

// Stats snapshots the store's counters.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	s.OpenLogs = len(st.appenders)
	return s
}

// Close closes every cached appender. Appends fail afterwards; reads
// still work (the files are the durable artifact).
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, ap := range st.appenders {
		ap.f.Close()
	}
	st.appenders = make(map[string]*appender)
	st.order = nil
	st.closed = true
	return nil
}

// maybeRetainLocked enforces the retention budget: when the directory
// exceeds RetainBytes, the oldest session file pairs that are neither
// open for append nor protected are deleted (those sessions lose
// resumability). Table logs count toward the total but are never
// deleted — they are the data, not a cache of it. Scans are amortized:
// one directory walk per ~1/8 budget of appended bytes.
func (st *Store) maybeRetainLocked() {
	if st.retainBytes <= 0 {
		return
	}
	threshold := st.retainBytes / 8
	if threshold < 4096 {
		threshold = 4096
	}
	if st.sinceScan < threshold {
		return
	}
	st.sinceScan = 0
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return
	}
	type pair struct {
		base  string
		bytes int64
		mtime time.Time
	}
	pairs := make(map[string]*pair)
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		total += info.Size()
		name := e.Name()
		var base string
		switch {
		case !strings.HasPrefix(name, "s-"):
			continue
		case strings.HasSuffix(name, ".log"):
			base = strings.TrimSuffix(name, ".log")
		case strings.HasSuffix(name, ".ckpt"):
			base = strings.TrimSuffix(name, ".ckpt")
		default:
			continue
		}
		p, ok := pairs[base]
		if !ok {
			p = &pair{base: base}
			pairs[base] = p
		}
		p.bytes += info.Size()
		if info.ModTime().After(p.mtime) {
			p.mtime = info.ModTime()
		}
	}
	if total <= st.retainBytes {
		return
	}
	victims := make([]*pair, 0, len(pairs))
	for _, p := range pairs {
		victims = append(victims, p)
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].mtime.Before(victims[j].mtime) })
	for _, p := range victims {
		if total <= st.retainBytes {
			break
		}
		if _, open := st.appenders[p.base]; open {
			continue
		}
		if st.protect != nil {
			if id, ok := unescapeName(strings.TrimPrefix(p.base, "s-")); ok && st.protect(id) {
				continue
			}
		}
		os.Remove(filepath.Join(st.dir, p.base+".log"))
		os.Remove(filepath.Join(st.dir, p.base+".ckpt"))
		total -= p.bytes
		st.stats.DroppedSessions++
	}
}

// File naming: "s-<escaped id>.log/.ckpt" for sessions, "t-<escaped
// name>.log" for tables. Escaping is conservative %XX so arbitrary ids
// round-trip through the filesystem.

func sessionBase(id string) string { return "s-" + escapeName(id) }
func tableBase(name string) string { return "t-" + escapeName(name) }

func escapeName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' {
			b.WriteByte(c)
			continue
		}
		fmt.Fprintf(&b, "%%%02X", c)
	}
	return b.String()
}

func unescapeName(s string) (string, bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		if i+2 >= len(s) {
			return "", false
		}
		var c byte
		if _, err := fmt.Sscanf(s[i+1:i+3], "%02X", &c); err != nil {
			return "", false
		}
		b.WriteByte(c)
		i += 2
	}
	return b.String(), true
}
