//go:build arm64 && !purego

#include "textflag.h"

// NEON span kernels. Same contracts as the AVX2 file: whole vector
// blocks only (the Go wrappers run remainders through scalar loops),
// int64 sums wrap associatively so lane order is bit-identical to the
// scalar reference, and the interval predicate is
// pass = ((lo > v) | (v > hi)) XOR kxor.
//
// Go's arm64 assembler has no CMGT vector mnemonic, so the two
// signed-greater-than compares are WORD-encoded:
//   CMGT Vd.2D, Vn.2D, Vm.2D = 0x4EE03400 | Rm<<16 | Rn<<5 | Rd
// (C7.2.35: Q=1 U=0 size=11). Register numbers are therefore fixed and
// each WORD is annotated with the instruction it encodes; verify with
// `GOARCH=arm64 go build` + `go tool objdump`.

// func neonSumInt64(v []int64) int64
// Four 2-lane accumulators, 8 elements per iteration.
TEXT ·neonSumInt64(SB), NOSPLIT, $0-32
	MOVD v_base+0(FP), R0
	MOVD v_len+8(FP), R1
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16

sumloop:
	VLD1.P 64(R0), [V0.D2, V1.D2, V2.D2, V3.D2]
	VADD   V0.D2, V4.D2, V4.D2
	VADD   V1.D2, V5.D2, V5.D2
	VADD   V2.D2, V6.D2, V6.D2
	VADD   V3.D2, V7.D2, V7.D2
	SUBS   $8, R1, R1
	BNE    sumloop

	VADD V5.D2, V4.D2, V4.D2
	VADD V7.D2, V6.D2, V6.D2
	VADD V6.D2, V4.D2, V4.D2
	VMOV V4.D[0], R2
	VMOV V4.D[1], R3
	ADD  R3, R2, R2
	MOVD R2, ret+24(FP)
	RET

// func neonFilterSumInt64(v []int64, lo, hi int64, kxor uint64) (cnt, isum int64)
// Fused filter+sum: 4 elements per iteration, count via cnt -= pass and
// summand via v & pass, as in the scalar branch-free loop.
TEXT ·neonFilterSumInt64(SB), NOSPLIT, $0-64
	MOVD v_base+0(FP), R0
	MOVD v_len+8(FP), R1
	MOVD lo+24(FP), R2
	MOVD hi+32(FP), R3
	MOVD kxor+40(FP), R4
	VDUP R2, V8.D2
	VDUP R3, V9.D2
	VDUP R4, V10.D2
	VEOR V4.B16, V4.B16, V4.B16 // sum lanes
	VEOR V5.B16, V5.B16, V5.B16 // cnt lanes

fsloop:
	VLD1.P 32(R0), [V0.D2, V1.D2]
	WORD   $0x4EE03502          // CMGT V2.2D, V8.2D, V0.2D   (lo > v)
	WORD   $0x4EE93403          // CMGT V3.2D, V0.2D, V9.2D   (v > hi)
	VORR   V3.B16, V2.B16, V2.B16
	VEOR   V10.B16, V2.B16, V2.B16 // pass mask
	VSUB   V2.D2, V5.D2, V5.D2  // cnt += 1 per pass lane
	VAND   V2.B16, V0.B16, V0.B16
	VADD   V0.D2, V4.D2, V4.D2
	WORD   $0x4EE13502          // CMGT V2.2D, V8.2D, V1.2D
	WORD   $0x4EE93423          // CMGT V3.2D, V1.2D, V9.2D
	VORR   V3.B16, V2.B16, V2.B16
	VEOR   V10.B16, V2.B16, V2.B16
	VSUB   V2.D2, V5.D2, V5.D2
	VAND   V2.B16, V1.B16, V1.B16
	VADD   V1.D2, V4.D2, V4.D2
	SUBS   $4, R1, R1
	BNE    fsloop

	VMOV V5.D[0], R2
	VMOV V5.D[1], R3
	ADD  R3, R2, R2
	MOVD R2, cnt+48(FP)
	VMOV V4.D[0], R2
	VMOV V4.D[1], R3
	ADD  R3, R2, R2
	MOVD R2, isum+56(FP)
	RET
