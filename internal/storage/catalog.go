package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Catalog is the schema-lite registry of matrixes. dbTouch deliberately
// exposes only "what objects exist" (paper §2.2 "Schema-less Querying");
// detailed schema discovery happens through exploration gestures.
type Catalog struct {
	mu       sync.RWMutex
	matrixes map[string]*Matrix
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{matrixes: make(map[string]*Matrix)}
}

// Register adds m under its name, replacing any previous entry with the
// same name.
func (c *Catalog) Register(m *Matrix) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.matrixes[m.Name()] = m
}

// Drop removes the named matrix and reports whether it existed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.matrixes[name]
	delete(c.matrixes, name)
	return ok
}

// Get resolves a matrix by name.
func (c *Catalog) Get(name string) (*Matrix, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.matrixes[name]
	if !ok {
		return nil, fmt.Errorf("storage: no matrix named %q", name)
	}
	return m, nil
}

// List returns the registered matrix names in sorted order.
func (c *Catalog) List() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.matrixes))
	for name := range c.matrixes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of registered matrixes.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.matrixes)
}
