package experiments

import (
	"fmt"

	"dbtouch/internal/core"
	"dbtouch/internal/datagen"
	"dbtouch/internal/explorer"
	"dbtouch/internal/index"
	"dbtouch/internal/iomodel"
	"dbtouch/internal/metrics"
	"dbtouch/internal/storage"
)

// indexOver adapts the index package for the IndexedSlide experiment.
func indexOver(col *storage.Column) *index.Sorted { return index.New(col) }

// Contest (Appendix A) runs the dbTouch-vs-DBMS exploration contest on
// three planted-pattern tasks: an outlier region, a level shift and a
// spike cluster. Both agents pay analyst think time (deciding the next
// gesture vs composing the next SQL query) and both engines charge the
// same virtual cost model; the reported times are end-to-end
// time-to-discovery.
func Contest(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"task", "agent", "found", "time", "machine-time", "tuples-read", "actions",
	}}
	tasks := []explorer.Task{
		explorer.NewTask("outliers", datagen.OutlierRegion, s.ContestRows, 3),
		explorer.NewTask("levelshift", datagen.LevelShift, s.ContestRows, 5),
		explorer.NewTask("spikes", datagen.Spike, s.ContestRows, 9),
	}
	dbAgent := explorer.DefaultDBTouchAgent()
	sqlAgent := explorer.DefaultSQLAgent()
	for _, task := range tasks {
		d, err := dbAgent.Run(task, core.DefaultConfig())
		if err != nil {
			panic(err)
		}
		addContestRow(t, task, "dbtouch", d)

		q, err := sqlAgent.Run(task, iomodel.DefaultParams())
		if err != nil {
			panic(err)
		}
		addContestRow(t, task, "sql-dbms", q)
	}
	return t
}

func addContestRow(t *metrics.Table, task explorer.Task, agent string, d explorer.Discovery) {
	found := "no"
	if d.Correct(task.Pattern, task.Rows) {
		found = "yes"
	}
	t.AddRow(task.Name, agent, found,
		d.Elapsed.String(), d.MachineTime.String(),
		fmt.Sprint(d.TuplesRead), fmt.Sprint(d.Actions))
}
