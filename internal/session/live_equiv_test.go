package session

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/storage"
)

// The live-ingestion equivalence suite: sessions explore a table that an
// appender is growing underneath them. Each session pins a snapshot
// epoch per gesture batch (recorded via the kernel's OnPin hook), and
// the claim under test is that the session's result stream is
// byte-identical to replaying its script against a frozen table driven
// to exactly the same epoch sequence — i.e. a pinned snapshot really is
// immutable and complete, and the incremental span statistics served for
// it are indistinguishable from a from-scratch build. Run under -race
// this also proves the copy-on-tail publication protocol: racing
// appends, repins, and statistic extensions never touch memory a reader
// holds.

const (
	liveBaseRows      = 20_000
	liveAppendBatches = 30
	liveAppendRows    = 500
)

// liveVal is the deterministic row content: a pure function of the
// global row index, so the live run and every replay generate identical
// tables from identical epoch counts.
func liveVal(i int) int64 { return int64((i*7919 + i/3) % 1000) }

func liveEquivTable(t *testing.T) *storage.Table {
	t.Helper()
	vals := make([]int64, liveBaseRows)
	for i := range vals {
		vals[i] = liveVal(i)
	}
	tb, err := storage.NewTable("events", storage.NewIntColumn("v", vals))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// liveAppendRowsFor synthesizes append batch j (row indexes continue
// past the base and past all earlier batches).
func liveAppendRowsFor(j int) [][]storage.Value {
	rows := make([][]storage.Value, liveAppendRows)
	for i := range rows {
		rows[i] = []storage.Value{storage.IntValue(liveVal(liveBaseRows + j*liveAppendRows + i))}
	}
	return rows
}

// setupLiveEquivManager builds a manager over a fresh live table and one
// configured session per script, recording each session's result stream
// and per-batch pinned epochs.
func setupLiveEquivManager(t *testing.T, scripts []sessionScript) (*Manager, map[string]*[]core.Result, map[string]*[]uint64) {
	t.Helper()
	m := NewManager(core.DefaultConfig())
	m.Catalog().RegisterLive(liveEquivTable(t))
	streams := make(map[string]*[]core.Result, len(scripts))
	epochs := make(map[string]*[]uint64, len(scripts))
	for _, sc := range scripts {
		s, err := m.Create(sc.id)
		if err != nil {
			t.Fatal(err)
		}
		obj, err := s.CreateColumnObject("events", "v", equivFrame)
		if err != nil {
			t.Fatal(err)
		}
		obj.SetActions(sc.actions)
		stream := &[]core.Result{}
		s.OnResult(func(r core.Result) { *stream = append(*stream, r) })
		eps := &[]uint64{}
		if err := s.Do(func(k *core.Kernel) error {
			k.OnPin(func(table string, epoch uint64) { *eps = append(*eps, epoch) })
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		streams[sc.id] = stream
		epochs[sc.id] = eps
	}
	return m, streams, epochs
}

func TestLiveAppendExploreEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			const nSessions = 5
			scripts := make([]sessionScript, nSessions)
			for i := range scripts {
				scripts[i] = genScript(fmt.Sprintf("live%d", i), rand.New(rand.NewSource(seed*100+int64(i))))
			}

			for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
				// Live run: all sessions on the scheduler while an appender
				// goroutine grows the table between (and during) their
				// batches. Which epoch each batch pins is scheduling-
				// dependent — the recorded sequence is the ground truth the
				// replay reconstructs.
				m, streams, epochs := setupLiveEquivManager(t, scripts)
				if err := m.SetWorkers(workers); err != nil {
					t.Fatal(err)
				}
				for _, sc := range scripts {
					s, _ := m.Get(sc.id)
					s.Start()
				}
				appendErr := make(chan error, 1)
				go func() {
					for j := 0; j < liveAppendBatches; j++ {
						if _, err := m.Append("events", liveAppendRowsFor(j)); err != nil {
							appendErr <- err
							return
						}
						time.Sleep(time.Millisecond)
					}
					appendErr <- nil
				}()
				for b := 0; ; b++ {
					any := false
					for _, sc := range scripts {
						if b < len(sc.batches) {
							any = true
							if _, err := m.Dispatch(sc.id, sc.batches[b]); err != nil {
								t.Fatal(err)
							}
						}
					}
					if !any {
						break
					}
				}
				for _, sc := range scripts {
					s, _ := m.Get(sc.id)
					s.Drain()
				}
				if err := <-appendErr; err != nil {
					t.Fatalf("appender: %v", err)
				}
				m.Close()

				// Frozen replay, one isolated manager per session: drive a
				// fresh copy of the table to each recorded epoch (epoch =
				// 1 + append batches applied), dispatch the same script
				// batch synchronously, and demand the identical stream.
				for _, sc := range scripts {
					recorded := *epochs[sc.id]
					if len(recorded) != len(sc.batches) {
						t.Fatalf("session %s (pool %d): %d pinned epochs for %d batches",
							sc.id, workers, len(recorded), len(sc.batches))
					}
					rm, rstreams, _ := setupLiveEquivManager(t, []sessionScript{sc})
					applied := 0
					for i, batch := range sc.batches {
						e := recorded[i]
						if e < 1 || e > liveAppendBatches+1 {
							t.Fatalf("session %s: pinned epoch %d out of range", sc.id, e)
						}
						for uint64(applied+1) < e {
							if _, err := rm.Append("events", liveAppendRowsFor(applied)); err != nil {
								t.Fatalf("replay append: %v", err)
							}
							applied++
						}
						if _, err := rm.Dispatch(sc.id, batch); err != nil {
							t.Fatalf("replay dispatch: %v", err)
						}
					}
					rm.Close()

					live, frozen := *streams[sc.id], *rstreams[sc.id]
					if len(live) == 0 {
						t.Fatalf("session %s (pool %d): live run emitted nothing", sc.id, workers)
					}
					if !reflect.DeepEqual(live, frozen) {
						limit := len(live)
						if len(frozen) < limit {
							limit = len(frozen)
						}
						for i := 0; i < limit; i++ {
							if !reflect.DeepEqual(live[i], frozen[i]) {
								t.Fatalf("session %s (pool %d): result %d differs\nlive:   %+v\nfrozen: %+v",
									sc.id, workers, i, live[i], frozen[i])
							}
						}
						t.Fatalf("session %s (pool %d): stream lengths differ (live %d, frozen %d)",
							sc.id, workers, len(live), len(frozen))
					}
				}
			}
		})
	}
}
