// Package session implements concurrent exploration sessions over shared
// immutable storage — the sharding step toward the ROADMAP's
// millions-of-users north star.
//
// A Session owns everything that is mutable about one user's exploration:
// a kernel with its virtual clock, screen, dispatcher, result log, and
// per-object trackers/prefetchers/cursors. The storage underneath —
// catalog, columns, dictionaries, and the sample hierarchies' columns and
// span statistics — is the shared immutable layer: built once, read by
// every session without locking on the hot span path (the only
// synchronization is single-flight initialization of lazily built shared
// statistics and the memoized string-predicate tables).
//
// A Manager creates and evicts sessions by ID, routes touch-event batches
// to the right session, and runs sessions concurrently: each started
// session processes its batches on its own worker goroutine, so N users
// slide over the same table in parallel with zero cross-session virtual
// time interference. Because every session's timeline is its own virtual
// clock, a session's result stream is byte-identical whether it runs
// alone, sequentially with others, or concurrently with them — asserted
// by the package's equivalence suite under the race detector.
package session

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Sentinel errors callers can test with errors.Is.
var (
	// ErrClosed reports use of a session after Close or manager eviction.
	ErrClosed = errors.New("session closed")
	// ErrWorkerRunning reports a synchronous call (Apply, Idle) while the
	// worker goroutine owns the kernel.
	ErrWorkerRunning = errors.New("session worker running")
	// ErrNotStarted reports Enqueue before Start.
	ErrNotStarted = errors.New("session not started")
)

// Session is one user's exploration context: a kernel confined to one
// goroutine at a time, over storage shared with every other session of
// the same Manager.
//
// A session has two driving modes. Before Start, the owner calls Apply
// (or Manager.Dispatch) and batches run synchronously on the calling
// goroutine. After Start, a worker goroutine owns the kernel: batches go
// through Enqueue/Dispatch, and the caller synchronizes with Drain before
// reading results. The two modes must not be mixed — Apply fails once the
// worker runs.
type Session struct {
	id      string
	manager *Manager
	kernel  *core.Kernel

	// mu guards the lifecycle state below.
	mu      sync.Mutex
	started bool
	closed  bool
	queue   chan []touchos.TouchEvent
	done    chan struct{}
	// enqMu serializes channel sends against Close, so the queue never
	// closes under a blocked sender.
	enqMu sync.Mutex
	// runMu serializes kernel execution: concurrent synchronous Applies
	// (or an Apply racing the worker's first batch) run one at a time.
	// Determinism still requires one logical driver per session; the lock
	// only guarantees batches stay atomic, never interleaved.
	runMu sync.Mutex
	// pendingMu/pendingCond/pendingN count enqueued-but-unfinished
	// batches for Drain. A plain condition variable (not a WaitGroup):
	// Enqueue may race Drain from the zero count, which WaitGroup reuse
	// rules forbid.
	pendingMu   sync.Mutex
	pendingCond *sync.Cond
	pendingN    int

	// lastUsed is the manager's dispatch tick at the session's last use,
	// for least-recently-used eviction. Guarded by manager.mu.
	lastUsed uint64

	// objMu guards objNames, the session's wire-protocol object registry:
	// remote clients address objects by chosen name, the kernel by id.
	objMu    sync.Mutex
	objNames map[string]int
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Kernel exposes the session's kernel for object creation and
// configuration. Setup must happen before Start (or between Drain and the
// next Enqueue only from the worker's perspective — in practice: set up,
// then start).
func (s *Session) Kernel() *core.Kernel { return s.kernel }

// CreateColumnObject places one column of a cataloged table on the
// session's screen. The sample hierarchy's columns come from the shared
// store; only the trackers are session-private.
func (s *Session) CreateColumnObject(table, column string, frame touchos.Rect) (*core.Object, error) {
	m, err := s.kernel.Lookup(table)
	if err != nil {
		return nil, err
	}
	idx := m.ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("session %q: table %q has no column %q", s.id, table, column)
	}
	return s.kernel.CreateColumnObject(m, idx, frame)
}

// CreateTableObject places a whole cataloged table on the session's
// screen.
func (s *Session) CreateTableObject(table string, frame touchos.Rect) (*core.Object, error) {
	m, err := s.kernel.Lookup(table)
	if err != nil {
		return nil, err
	}
	return s.kernel.CreateTableObject(m, frame)
}

// touch refreshes the session's recently-used stamp for the manager's
// LRU cap, whatever path drove it (Dispatch, Enqueue, or a facade
// handle's synchronous Apply).
func (s *Session) touch() {
	if s.manager == nil {
		return
	}
	s.manager.mu.Lock()
	s.manager.tick++
	s.lastUsed = s.manager.tick
	s.manager.mu.Unlock()
}

// Apply processes a touch-event batch synchronously on the caller's
// goroutine and returns the results it emitted. It is the pre-Start
// (sequential) driving mode; once the worker runs, use Enqueue.
func (s *Session) Apply(events []touchos.TouchEvent) ([]core.Result, error) {
	if err := s.checkSynchronous(); err != nil {
		return nil, err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.kernel.Apply(events), nil
}

// Idle advances the session's virtual time by d with no touch activity,
// giving background machinery (prefetch, layout conversion) the gap. Same
// driving contract as Apply: synchronous, pre-Start only.
func (s *Session) Idle(d time.Duration) error {
	if err := s.checkSynchronous(); err != nil {
		return err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	from := s.kernel.Clock().Now()
	s.kernel.RunIdle(from, from+d)
	return nil
}

// Perform executes a serializable gesture description on the session's
// kernel: the wire-ready form of driving a session. Same contract as
// Apply — synchronous, pre-Start only.
func (s *Session) Perform(g gesture.Gesture) ([]core.Result, error) {
	if err := s.checkSynchronous(); err != nil {
		return nil, err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.kernel.Perform(g)
}

// Do runs fn with exclusive synchronous access to the session's kernel —
// the seam the protocol handler uses for object creation, configuration
// and promotion. Same contract as Apply: synchronous, pre-Start only.
func (s *Session) Do(fn func(*core.Kernel) error) error {
	if err := s.checkSynchronous(); err != nil {
		return err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return fn(s.kernel)
}

// Subscribe registers a bounded result stream on the session's kernel
// (buffer <= 0 selects the default size). Unlike Apply, subscribing is
// legal while the worker runs — that is the point: the stream hands
// results across goroutines, so a monitor can cursor through them while
// the worker keeps executing. The registration itself is serialized
// against the running kernel.
func (s *Session) Subscribe(buffer int) *core.ResultStream {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.kernel.Subscribe(buffer)
}

// BindObject names a kernel object for wire-protocol addressing. Later
// binds of the same name shadow earlier ones, mirroring script replay.
func (s *Session) BindObject(name string, id int) {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	if s.objNames == nil {
		s.objNames = make(map[string]int)
	}
	s.objNames[name] = id
}

// BoundObject resolves a wire-protocol object name to its kernel id.
func (s *Session) BoundObject(name string) (int, bool) {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	id, ok := s.objNames[name]
	return id, ok
}

// QueueDepth reports how many enqueued batches the worker has not yet
// finished — the manager's per-session backlog metric.
func (s *Session) QueueDepth() int {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	return s.pendingN
}

// Started reports whether the worker goroutine owns the kernel.
func (s *Session) Started() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started
}

// checkSynchronous gates the synchronous driving mode and refreshes the
// LRU stamp.
func (s *Session) checkSynchronous() error {
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("session %q: %w", s.id, ErrClosed)
	}
	if s.started {
		return fmt.Errorf("session %q: %w; use Enqueue", s.id, ErrWorkerRunning)
	}
	return nil
}

// Start hands the kernel to a worker goroutine. Subsequent batches go
// through Enqueue; the caller must not touch the kernel again until Drain
// (for reads) or Close.
func (s *Session) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.queue = make(chan []touchos.TouchEvent, 64)
	s.done = make(chan struct{})
	go s.run()
}

// run is the worker loop: it owns the kernel until the queue closes.
func (s *Session) run() {
	defer close(s.done)
	for events := range s.queue {
		s.runMu.Lock()
		s.kernel.Apply(events)
		s.runMu.Unlock()
		s.pendingMu.Lock()
		s.pendingN--
		if s.pendingN == 0 {
			s.pendingCond.Broadcast()
		}
		s.pendingMu.Unlock()
	}
}

// Enqueue hands a batch to the worker goroutine, blocking briefly when
// the queue is full (backpressure, not loss).
func (s *Session) Enqueue(events []touchos.TouchEvent) error {
	s.touch()
	s.enqMu.Lock()
	defer s.enqMu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("session %q: %w", s.id, ErrClosed)
	}
	if !s.started {
		s.mu.Unlock()
		return fmt.Errorf("session %q: %w; use Apply or Start first", s.id, ErrNotStarted)
	}
	s.pendingMu.Lock()
	s.pendingN++
	s.pendingMu.Unlock()
	s.mu.Unlock()
	s.queue <- events
	return nil
}

// Drain blocks until every batch enqueued so far has been processed.
// After Drain (and before further Enqueues) the kernel's results and
// counters are safe to read from the caller's goroutine. A concurrent
// Enqueue extends the wait — Drain returns only at a moment the queue is
// empty.
func (s *Session) Drain() {
	s.pendingMu.Lock()
	for s.pendingN > 0 {
		s.pendingCond.Wait()
	}
	s.pendingMu.Unlock()
}

// Close stops the worker (processing whatever is already queued), closes
// every subscribed result stream (so consumers blocked in Next see
// end-of-stream instead of hanging on an evicted session), and marks the
// session unusable. It is idempotent and safe to call from any
// goroutine; Manager.Evict calls it.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		done := s.done
		s.mu.Unlock()
		if done != nil {
			<-done
		}
		return
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	if started {
		s.enqMu.Lock()
		close(s.queue)
		s.enqMu.Unlock()
		<-s.done
	}
	// The worker (if any) has exited; runMu serializes against a
	// synchronous Apply/Perform that slipped in before closed was set.
	s.runMu.Lock()
	s.kernel.CloseSubscriptions()
	s.runMu.Unlock()
}

// Results returns the session's retained results (the kernel's bounded,
// fade-pruned window). Synchronize with Drain when the worker is running.
func (s *Session) Results() []core.Result { return s.kernel.Results() }

// OnResult registers the session's live result callback. The callback
// runs on whichever goroutine owns the kernel (the worker once started),
// so it must not share unsynchronized state across sessions.
func (s *Session) OnResult(fn func(core.Result)) { s.kernel.OnResult(fn) }

// Catalog exposes the shared catalog.
func (s *Session) Catalog() *storage.Catalog { return s.kernel.Catalog() }
