//go:build purego || (!amd64 && !arm64)

package cpu

// No probe: every feature flag keeps its false zero value, which pins
// the storage layer to the pure-Go reference kernels.
