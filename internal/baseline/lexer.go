// Package baseline implements a small traditional database engine — the
// "open-source column store DBMS" of the paper's Appendix A exploration
// contest. It accepts a SQL subset, plans monolithically, and executes in
// the classic blocking fashion: full scans, build-then-probe hash joins,
// and complete answers only. Every value read is charged to the same
// virtual-clock cost model the dbTouch kernel uses, so the contest
// compares like against like: the only difference is who controls the
// data flow.
package baseline

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol
	tokKeyword
)

// token is one lexical unit with its source position (1-based).
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognized case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"GROUP": true, "BY": true, "ORDER": true, "ASC": true, "DESC": true,
	"LIMIT": true, "JOIN": true, "ON": true, "AS": true,
	"TRUE": true, "FALSE": true, "NOT": true, "BETWEEN": true,
}

// lex tokenizes a SQL string.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for i < n && input[i] != '\'' {
				sb.WriteByte(input[i])
				i++
			}
			if i >= n {
				return nil, fmt.Errorf("baseline: unterminated string literal at %d", start+1)
			}
			i++ // closing quote
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start + 1})
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1])) && startsValue(toks)):
			start := i
			i++
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start + 1})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			if keywords[strings.ToUpper(word)] {
				toks = append(toks, token{kind: tokKeyword, text: strings.ToUpper(word), pos: start + 1})
			} else {
				toks = append(toks, token{kind: tokIdent, text: word, pos: start + 1})
			}
		default:
			start := i
			// two-character operators first
			if i+1 < n {
				two := input[i : i+2]
				if two == "<=" || two == ">=" || two == "<>" || two == "!=" {
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start + 1})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '.', '*', '=', '<', '>', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start + 1})
				i++
			default:
				return nil, fmt.Errorf("baseline: unexpected character %q at %d", c, start+1)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: n + 1})
	return toks, nil
}

// startsValue reports whether a '-' at the current position begins a
// negative literal (after an operator/keyword) rather than binary minus
// (this subset has no arithmetic, so it always does unless following a
// value).
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	return last.kind == tokSymbol || last.kind == tokKeyword
}
