package dbtouch

import (
	"errors"
	"fmt"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/operator"
	"dbtouch/internal/session"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Object is the handle to one on-screen data object. Its methods both
// configure the touch actions and synthesize the gestures of Figure 1.
type Object struct {
	db    *DB
	inner *core.Object
}

// ID returns the kernel object id.
func (o *Object) ID() int { return o.inner.ID() }

// Rows reports the tuple count of the backing data.
func (o *Object) Rows() int { return o.inner.Rows() }

// Frame reports the object's on-screen rectangle (centimeters).
func (o *Object) Frame() (x, y, w, h float64) {
	f := o.inner.View().Frame()
	return f.Origin.X, f.Origin.Y, f.Size.W, f.Size.H
}

// Inner exposes the kernel object (advanced use).
func (o *Object) Inner() *core.Object { return o.inner }

// SetActions replaces the full touch configuration.
func (o *Object) SetActions(a Actions) { o.inner.SetActions(a) }

// Actions returns the current touch configuration.
func (o *Object) Actions() Actions { return o.inner.Actions() }

// Scan configures touches to reveal raw values.
func (o *Object) Scan() *Object {
	a := o.inner.Actions()
	a.Mode = core.ModeScan
	o.inner.SetActions(a)
	return o
}

// Aggregate configures touches to maintain a running aggregate.
func (o *Object) Aggregate(kind AggKind) *Object {
	a := o.inner.Actions()
	a.Mode = core.ModeAggregate
	a.Agg = kind
	o.inner.SetActions(a)
	return o
}

// Summarize configures interactive summaries: each touch aggregates the
// 2k+1 entries around the touched tuple.
func (o *Object) Summarize(kind AggKind, k int) *Object {
	a := o.inner.Actions()
	a.Mode = core.ModeSummary
	a.Agg = kind
	a.SummaryK = k
	o.inner.SetActions(a)
	return o
}

// Where adds a WHERE conjunct on the named column of the object's
// backing table. op is one of = <> < <= > >=.
func (o *Object) Where(column, op string, operand any) error {
	m := o.inner.Matrix()
	idx := m.ColumnIndex(column)
	if idx < 0 {
		return fmt.Errorf("dbtouch: no column %q", column)
	}
	cmp, err := parseOp(op)
	if err != nil {
		return err
	}
	a := o.inner.Actions()
	a.Filters = append(a.Filters, operator.Predicate{Col: idx, Op: cmp, Operand: toValue(operand)})
	o.inner.SetActions(a)
	return nil
}

// ValueOrder toggles index-backed value-order slides (slide position maps
// to rank, not storage position).
func (o *Object) ValueOrder(on bool) *Object {
	a := o.inner.Actions()
	a.ValueOrder = on
	o.inner.SetActions(a)
	return o
}

// GroupBy configures incremental grouping of valColumn by keyColumn.
func (o *Object) GroupBy(keyColumn, valColumn string, kind AggKind) error {
	m := o.inner.Matrix()
	k, v := m.ColumnIndex(keyColumn), m.ColumnIndex(valColumn)
	if k < 0 || v < 0 {
		return fmt.Errorf("dbtouch: group columns %q/%q not found", keyColumn, valColumn)
	}
	a := o.inner.Actions()
	a.Group = &core.GroupSpec{KeyCol: k, ValCol: v, Agg: kind}
	o.inner.SetActions(a)
	return nil
}

// JoinWith wires a symmetric (non-blocking) equi-join between this
// object's column and other's column; touches on either object stream
// matches out.
func (o *Object) JoinWith(other *Object) {
	a := o.inner.Actions()
	a.Join = &core.JoinSpec{OtherObject: other.ID(), Side: core.JoinLeft}
	o.inner.SetActions(a)
}

// Gesture builders. Each *Gesture method describes a gesture against
// this object as a serializable value without executing it: ship the
// value through a script, the wire protocol, or a queue, then execute it
// with DB.Perform (or Session.Perform on the session layer). The
// classic imperative methods below are thin wrappers — building the
// description and performing it immediately — and stay byte-identical
// to pre-protocol behavior.

// TapGesture describes a single touch at the given fractional height.
func (o *Object) TapGesture(frac float64) Gesture { return gesture.NewTap(o.ID(), frac) }

// SlideGesture describes a top-to-bottom sweep over dur.
func (o *Object) SlideGesture(dur time.Duration) Gesture {
	return gesture.NewSlide(o.ID(), 0, 1, dur)
}

// SlideUpGesture describes a bottom-to-top sweep over dur.
func (o *Object) SlideUpGesture(dur time.Duration) Gesture {
	return gesture.NewSlide(o.ID(), 1, 0, dur)
}

// SlideRangeGesture describes a sweep between two fractional heights
// (0 = top, 1 = bottom) over dur.
func (o *Object) SlideRangeGesture(fromFrac, toFrac float64, dur time.Duration) Gesture {
	return gesture.NewSlide(o.ID(), fromFrac, toFrac, dur)
}

// SlideWithPauseGesture describes a top-to-bottom sweep with a rest at
// pauseFrac for pauseDur.
func (o *Object) SlideWithPauseGesture(dur time.Duration, pauseFrac float64, pauseDur time.Duration) Gesture {
	return gesture.NewSlidePause(o.ID(), dur, pauseFrac, pauseDur)
}

// SlideBackAndForthGesture describes passes down-and-up round trips,
// legDur per leg.
func (o *Object) SlideBackAndForthGesture(legDur time.Duration, passes int) Gesture {
	return gesture.NewBackAndForth(o.ID(), legDur, passes)
}

// ZoomInGesture describes a pinch growing the object by factor (> 1).
func (o *Object) ZoomInGesture(factor float64) Gesture {
	return gesture.NewZoom(o.ID(), factor)
}

// ZoomOutGesture describes a pinch shrinking the object by factor (> 1).
func (o *Object) ZoomOutGesture(factor float64) Gesture {
	if factor > 0 {
		return gesture.NewZoom(o.ID(), 1/factor)
	}
	return gesture.NewZoom(o.ID(), 0) // invalid by construction, like the input
}

// RotateQuarterGesture describes a two-finger quarter-turn rotation.
func (o *Object) RotateQuarterGesture() Gesture { return gesture.NewRotateQuarter(o.ID()) }

// MoveToGesture describes repositioning the top-left corner to (x, y).
func (o *Object) MoveToGesture(x, y float64) Gesture { return gesture.NewMove(o.ID(), x, y) }

// perform executes a description, preserving the legacy imperative
// contract: an evicted session or an invalid parameter (zoom factor <= 0)
// degrades to a silent no-op exactly as the pre-protocol methods did,
// while driving a worker-owned session synchronously stays the panic it
// always was (DB.Apply's contract) — that is a programming error, not a
// condition to swallow.
func (o *Object) perform(g Gesture) []Result {
	results, err := o.db.Perform(g)
	if errors.Is(err, session.ErrWorkerRunning) {
		panic(err)
	}
	return results
}

// Slide sweeps a single finger top-to-bottom over the object in dur and
// returns the results the gesture produced.
func (o *Object) Slide(dur time.Duration) []Result {
	return o.perform(o.SlideGesture(dur))
}

// SlideUp sweeps bottom-to-top.
func (o *Object) SlideUp(dur time.Duration) []Result {
	return o.perform(o.SlideUpGesture(dur))
}

// SlideRange sweeps between two fractional heights of the object (0 =
// top, 1 = bottom) in dur.
func (o *Object) SlideRange(fromFrac, toFrac float64, dur time.Duration) []Result {
	return o.perform(o.SlideRangeGesture(fromFrac, toFrac, dur))
}

// SlideWithPause sweeps top-to-bottom pausing at pauseFrac for pauseDur —
// the prefetching scenario of §2.6.
func (o *Object) SlideWithPause(dur time.Duration, pauseFrac float64, pauseDur time.Duration) []Result {
	return o.perform(o.SlideWithPauseGesture(dur, pauseFrac, pauseDur))
}

// SlideBackAndForth sweeps down and back up `passes` times, legDur per
// leg — the revisit scenario caching exploits.
func (o *Object) SlideBackAndForth(legDur time.Duration, passes int) []Result {
	return o.perform(o.SlideBackAndForthGesture(legDur, passes))
}

// Tap touches the object at the given fractional height once.
func (o *Object) Tap(frac float64) []Result {
	return o.perform(o.TapGesture(frac))
}

// MoveTo repositions the object's top-left corner (the pan gesture of
// §2.8, applied directly).
func (o *Object) MoveTo(x, y float64) {
	o.perform(o.MoveToGesture(x, y))
}

// ZoomIn grows the object by factor (> 1) with a pinch gesture, raising
// the granularity a slide can address.
func (o *Object) ZoomIn(factor float64) {
	o.perform(o.ZoomInGesture(factor))
}

// ZoomOut shrinks the object by factor (> 1).
func (o *Object) ZoomOut(factor float64) {
	o.perform(o.ZoomOutGesture(factor))
}

// RotateQuarter applies a two-finger quarter-turn rotation: the view
// rotates, and multi-column objects start an incremental row↔column
// layout conversion with a sample-first preview.
func (o *Object) RotateQuarter() {
	o.perform(o.RotateQuarterGesture())
}

// Converting reports whether a layout conversion is running, with its
// progress in [0,1].
func (o *Object) Converting() (bool, float64) { return o.inner.Converting() }

// PinHotRegion materializes the most revisited region of this column as
// its own data object at (x, y, w, h) — cache-to-sample promotion
// (paper §2.6): future queries at this granularity feed from the copy.
// Requires the gesture-aware cache policy (the default).
func (o *Object) PinHotRegion(x, y, w, h float64) (*Object, error) {
	inner, err := o.db.kernel.PromoteHotRegion(o.inner, touchos.NewRect(x, y, w, h))
	if err != nil {
		return nil, err
	}
	return &Object{db: o.db, inner: inner}, nil
}

// parseOp maps SQL comparison syntax to operator.CmpOp (the canonical
// table is operator.ParseCmpOp, shared with the script language and the
// wire protocol).
func parseOp(op string) (operator.CmpOp, error) {
	return operator.ParseCmpOp(op)
}

// toValue coerces a Go value into a storage.Value.
func toValue(v any) storage.Value {
	switch x := v.(type) {
	case int:
		return storage.IntValue(int64(x))
	case int64:
		return storage.IntValue(x)
	case float64:
		return storage.FloatValue(x)
	case bool:
		return storage.BoolValue(x)
	case string:
		return storage.StringValue(x)
	default:
		return storage.StringValue(fmt.Sprint(v))
	}
}
