// Command dbtouch-contest runs the Appendix A exploration contest: a
// scripted dbTouch analyst (gestures, half a second of thinking between
// them) races a scripted SQL analyst (full queries, ten seconds to
// compose each) to locate planted patterns. Both engines charge the same
// virtual storage cost model; the winner is whoever reports a correct
// localization first.
package main

import (
	"flag"
	"fmt"
	"os"

	"dbtouch/internal/core"
	"dbtouch/internal/datagen"
	"dbtouch/internal/explorer"
	"dbtouch/internal/iomodel"
	"dbtouch/internal/metrics"
)

func main() {
	rows := flag.Int("rows", 1_000_000, "contest data size")
	seed := flag.Int64("seed", 3, "base seed for task generation")
	flag.Parse()

	kinds := []struct {
		name string
		kind datagen.PatternKind
	}{
		{"outlier-region", datagen.OutlierRegion},
		{"level-shift", datagen.LevelShift},
		{"spike-cluster", datagen.Spike},
		{"trend-region", datagen.TrendRegion},
	}
	t := &metrics.Table{Header: []string{
		"task", "agent", "correct", "time-to-insight", "machine-time", "tuples-read", "actions",
	}}
	dbAgent := explorer.DefaultDBTouchAgent()
	sqlAgent := explorer.DefaultSQLAgent()
	for i, kc := range kinds {
		task := explorer.NewTask(kc.name, kc.kind, *rows, *seed+int64(i)*2)
		d, err := dbAgent.Run(task, core.DefaultConfig())
		if err != nil {
			fmt.Fprintln(os.Stderr, "contest:", err)
			os.Exit(1)
		}
		addRow(t, task, "dbtouch", d)
		q, err := sqlAgent.Run(task, iomodel.DefaultParams())
		if err != nil {
			fmt.Fprintln(os.Stderr, "contest:", err)
			os.Exit(1)
		}
		addRow(t, task, "sql-dbms", q)
	}
	t.Fprint(os.Stdout)
	fmt.Println("\nnotes: time-to-insight includes analyst think time (0.5s per gesture,")
	fmt.Println("10s per SQL query); machine-time is engine cost only, on the shared")
	fmt.Println("virtual storage model.")
}

func addRow(t *metrics.Table, task explorer.Task, agent string, d explorer.Discovery) {
	correct := "no"
	if d.Correct(task.Pattern, task.Rows) {
		correct = "yes"
	}
	t.AddRow(task.Name, agent, correct, d.Elapsed.String(), d.MachineTime.String(),
		fmt.Sprint(d.TuplesRead), fmt.Sprint(d.Actions))
}
