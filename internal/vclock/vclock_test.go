package vclock

import (
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestAdvance(t *testing.T) {
	c := New()
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if got := c.Now(); got != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", got)
	}
}

func TestAdvanceNegativeIgnored(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	c.Advance(-10 * time.Second)
	if got := c.Now(); got != time.Second {
		t.Fatalf("Now() = %v after negative advance, want 1s", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	if !c.AdvanceTo(4 * time.Second) {
		t.Fatal("AdvanceTo future returned false")
	}
	if c.AdvanceTo(2 * time.Second) {
		t.Fatal("AdvanceTo past returned true")
	}
	if got := c.Now(); got != 4*time.Second {
		t.Fatalf("Now() = %v, want 4s", got)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Advance(time.Minute)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Now() = %v after Reset, want 0", c.Now())
	}
}

func TestStopwatch(t *testing.T) {
	c := New()
	c.Advance(time.Second)
	sw := NewStopwatch(c)
	c.Advance(3 * time.Second)
	if got := sw.Elapsed(); got != 3*time.Second {
		t.Fatalf("Elapsed() = %v, want 3s", got)
	}
	sw.Restart()
	if got := sw.Elapsed(); got != 0 {
		t.Fatalf("Elapsed() after Restart = %v, want 0", got)
	}
	c.Advance(time.Second)
	if got := sw.Elapsed(); got != time.Second {
		t.Fatalf("Elapsed() = %v, want 1s", got)
	}
}
