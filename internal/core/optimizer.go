package core

import (
	"sort"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
)

// AdaptiveOptimizer reorders WHERE conjuncts on the fly (paper §2.9
// "Optimization"): dbTouch cannot know up front which part of the data a
// gesture will cover, and different regions have different properties, so
// per-predicate selectivities are observed over a decaying window of
// recent touches and the evaluation order adapts — cheapest expected work
// first — without ever blocking a touch.
type AdaptiveOptimizer struct {
	// Enabled gates adaptation (the ablation switch); disabled keeps the
	// user-declared order.
	Enabled bool

	predicates []operator.Predicate
	stats      []*operator.ConjunctStats
	order      []int
	reorders   int
	evals      int64

	// selA/selB are reusable selection scratch buffers for EvalSpan.
	selA, selB []int32
}

// NewAdaptiveOptimizer wraps the given conjuncts. window is the decay
// window for selectivity statistics.
func NewAdaptiveOptimizer(predicates []operator.Predicate, window int, enabled bool) *AdaptiveOptimizer {
	o := &AdaptiveOptimizer{Enabled: enabled, predicates: predicates}
	o.stats = make([]*operator.ConjunctStats, len(predicates))
	o.order = make([]int, len(predicates))
	for i := range predicates {
		o.stats[i] = operator.NewConjunctStats(window)
		o.order[i] = i
	}
	return o
}

// Eval evaluates the conjunction against tuple row of m with
// short-circuiting in the current adaptive order, charging reads through
// trackers, then reconsiders the order. Evaluated conjuncts update their
// selectivity; short-circuited ones learn nothing (they were not paid
// for).
func (o *AdaptiveOptimizer) Eval(m *storage.Matrix, row int, trackers []*iomodel.Tracker) (bool, error) {
	o.evals++
	pass := true
	for _, idx := range o.order {
		ok, err := o.predicates[idx].Eval(m, row, trackers)
		if err != nil {
			return false, err
		}
		o.stats[idx].Observe(ok)
		if !ok {
			pass = false
			break
		}
	}
	if o.Enabled && o.evals%16 == 0 {
		o.reorder()
	}
	return pass, nil
}

// EvalSpan evaluates the conjunction over tuple span [lo, hi) of m and
// returns the qualifying rows in ascending order (a selection vector that
// aliases internal scratch; callers must consume it before the next
// call). The vectorized path refines the span conjunct by conjunct
// through the storage filter kernels; scalar selects the tuple-at-a-time
// reference path. Both observe identical per-conjunct statistics, charge
// identical virtual costs, and reconsider the conjunct order only at span
// boundaries, so they qualify identical tuples.
func (o *AdaptiveOptimizer) EvalSpan(m *storage.Matrix, lo, hi int, trackers []*iomodel.Tracker, scalar bool) ([]int32, error) {
	if lo < 0 {
		lo = 0
	}
	if n := m.NumRows(); hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	var sel []int32
	var err error
	if scalar {
		sel, err = o.evalSpanScalar(m, lo, hi, trackers)
	} else {
		sel, err = o.evalSpanVector(m, lo, hi, trackers)
	}
	if err != nil {
		return nil, err
	}
	o.NoteSpan(hi - lo)
	return sel, nil
}

// NoteSpan advances the evaluation counter by the span width and
// reconsiders the conjunct order at the same cadence as EvalSpan — the
// bookkeeping twin for the fused slide path, which evaluates conjuncts
// through the fused kernels instead of EvalSpan.
func (o *AdaptiveOptimizer) NoteSpan(n int) {
	prev := o.evals
	o.evals += int64(n)
	if o.Enabled && prev/16 != o.evals/16 {
		o.reorder()
	}
}

// FusionPlan splits the conjunction for the fused filter+aggregate slide
// path: the first prefixLen conjuncts of the current order are evaluated
// normally (EvalSpanPrefix), and the final conjunct — which must read
// col, the aggregated column — fuses with the aggregate scan. The fused
// kernel reports only aggregate outcomes, not per-row ones, so the final
// conjunct's selectivity statistics go unobserved; the split is therefore
// offered only when that cannot change observable behavior — a single
// conjunct (the order cannot change), or adaptation disabled (the
// statistics are never consulted).
func (o *AdaptiveOptimizer) FusionPlan(col int) (final operator.Predicate, prefixLen int, ok bool) {
	n := len(o.order)
	if n == 0 {
		return operator.Predicate{}, 0, false
	}
	last := o.predicates[o.order[n-1]]
	if last.Col != col {
		return operator.Predicate{}, 0, false
	}
	if n > 1 && o.Enabled {
		return operator.Predicate{}, 0, false
	}
	return last, n - 1, true
}

// EvalSpanPrefix evaluates the first prefixLen conjuncts of the current
// order over [lo, hi) exactly as the vectorized EvalSpan does — same
// kernels, same charges, same statistics — and returns the surviving
// selection (aliasing internal scratch, like EvalSpan). prefixLen == 0
// returns nil: the whole span survives. Unlike EvalSpan it does not
// advance the evaluation counter; the caller completes the span with the
// fused final conjunct and then calls NoteSpan.
func (o *AdaptiveOptimizer) EvalSpanPrefix(m *storage.Matrix, lo, hi int, trackers []*iomodel.Tracker, prefixLen int) ([]int32, error) {
	if prefixLen <= 0 {
		return nil, nil
	}
	if lo < 0 {
		lo = 0
	}
	if n := m.NumRows(); hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	var sel []int32
	first := true
	for _, idx := range o.order[:prefixLen] {
		out := o.selB[:0]
		out, _, err := o.predicates[idx].EvalRange(m, lo, hi, sel, trackers, out)
		if err != nil {
			return nil, err
		}
		o.observeSpan(idx, lo, hi, sel, first, out)
		o.selA, o.selB = out, o.selA
		sel, first = out, false
		if len(sel) == 0 {
			break
		}
	}
	return sel, nil
}

// evalSpanVector is the column-at-a-time path: each conjunct filters the
// survivors of the previous ones in one kernel call.
func (o *AdaptiveOptimizer) evalSpanVector(m *storage.Matrix, lo, hi int, trackers []*iomodel.Tracker) ([]int32, error) {
	var sel []int32
	first := true
	for _, idx := range o.order {
		out := o.selB[:0]
		out, _, err := o.predicates[idx].EvalRange(m, lo, hi, sel, trackers, out)
		if err != nil {
			return nil, err
		}
		o.observeSpan(idx, lo, hi, sel, first, out)
		o.selA, o.selB = out, o.selA
		sel, first = out, false
		if len(sel) == 0 {
			break
		}
	}
	if first {
		// No conjuncts: the whole span qualifies.
		sel = o.selA[:0]
		for row := lo; row < hi; row++ {
			sel = append(sel, int32(row))
		}
		o.selA = sel
	}
	return sel, nil
}

// evalSpanScalar is the tuple-at-a-time reference: per row, evaluate
// conjuncts in the current order with short-circuiting.
func (o *AdaptiveOptimizer) evalSpanScalar(m *storage.Matrix, lo, hi int, trackers []*iomodel.Tracker) ([]int32, error) {
	sel := o.selA[:0]
	for row := lo; row < hi; row++ {
		pass := true
		for _, idx := range o.order {
			ok, err := o.predicates[idx].Eval(m, row, trackers)
			if err != nil {
				return nil, err
			}
			o.stats[idx].Observe(ok)
			if !ok {
				pass = false
				break
			}
		}
		if pass {
			sel = append(sel, int32(row))
		}
	}
	o.selA = sel
	return sel, nil
}

// observeSpan replays conjunct idx's span outcomes into its statistics in
// row order: evaluated rows are the previous selection (or the whole span
// for the first conjunct), passing rows the refined one. Row order
// matters because the decay window halves counters at fixed sample
// boundaries — this keeps the vectorized statistics bit-identical to the
// scalar path's.
func (o *AdaptiveOptimizer) observeSpan(idx, lo, hi int, evaluated []int32, full bool, passing []int32) {
	s := o.stats[idx]
	j := 0
	observe := func(row int32) {
		passed := j < len(passing) && passing[j] == row
		if passed {
			j++
		}
		s.Observe(passed)
	}
	if full {
		for row := lo; row < hi; row++ {
			observe(int32(row))
		}
		return
	}
	for _, row := range evaluated {
		observe(row)
	}
}

// reorder sorts conjuncts by ascending selectivity: with uniform
// per-predicate cost, evaluating the most selective (lowest pass rate)
// first minimizes expected evaluations.
func (o *AdaptiveOptimizer) reorder() {
	prev := append([]int(nil), o.order...)
	sort.SliceStable(o.order, func(a, b int) bool {
		return o.stats[o.order[a]].Selectivity() < o.stats[o.order[b]].Selectivity()
	})
	for i := range prev {
		if prev[i] != o.order[i] {
			o.reorders++
			return
		}
	}
}

// Order returns the current evaluation order (indexes into the original
// predicate list).
func (o *AdaptiveOptimizer) Order() []int { return append([]int(nil), o.order...) }

// Reorders reports how many times the order changed.
func (o *AdaptiveOptimizer) Reorders() int { return o.reorders }

// Selectivity reports the observed selectivity of predicate i.
func (o *AdaptiveOptimizer) Selectivity(i int) float64 { return o.stats[i].Selectivity() }

// Len reports the number of conjuncts.
func (o *AdaptiveOptimizer) Len() int { return len(o.predicates) }
