package touchos

import (
	"testing"
	"time"

	"dbtouch/internal/vclock"
)

func TestRectContains(t *testing.T) {
	r := NewRect(1, 1, 2, 3)
	if !r.Contains(Point{1, 1}) {
		t.Fatal("top-left corner should be inside")
	}
	if r.Contains(Point{3, 4}) {
		t.Fatal("bottom-right corner should be outside (exclusive)")
	}
	if !r.Contains(Point{2, 2.5}) {
		t.Fatal("interior point should be inside")
	}
}

func TestRectScaledAbout(t *testing.T) {
	r := NewRect(0, 0, 4, 2)
	s := r.ScaledAbout(2)
	if s.Size.W != 8 || s.Size.H != 4 {
		t.Fatalf("scaled size = %v", s.Size)
	}
	if s.Center() != r.Center() {
		t.Fatalf("center moved: %v vs %v", s.Center(), r.Center())
	}
}

func TestViewHierarchy(t *testing.T) {
	screen := NewScreen(10, 10)
	a := NewView("a", NewRect(1, 1, 4, 4))
	b := NewView("b", NewRect(6, 1, 3, 3))
	if err := screen.AddChild(a); err != nil {
		t.Fatal(err)
	}
	if err := screen.AddChild(b); err != nil {
		t.Fatal(err)
	}
	if got := screen.HitTest(Point{2, 2}); got != a {
		t.Fatalf("HitTest(2,2) = %v", got)
	}
	if got := screen.HitTest(Point{7, 2}); got != b {
		t.Fatalf("HitTest(7,2) = %v", got)
	}
	if got := screen.HitTest(Point{5.5, 9}); got != screen {
		t.Fatalf("HitTest on empty area = %v, want screen", got)
	}
	if got := screen.HitTest(Point{-1, -1}); got != nil {
		t.Fatal("HitTest outside screen should be nil")
	}
}

func TestHitTestStackingOrder(t *testing.T) {
	screen := NewScreen(10, 10)
	bottom := NewView("bottom", NewRect(1, 1, 5, 5))
	top := NewView("top", NewRect(2, 2, 5, 5))
	_ = screen.AddChild(bottom)
	_ = screen.AddChild(top) // added later: on top
	if got := screen.HitTest(Point{3, 3}); got != top {
		t.Fatalf("overlap HitTest = %q, want top", got.Name())
	}
	if got := screen.HitTest(Point{1.5, 1.5}); got != bottom {
		t.Fatalf("non-overlap HitTest = %q, want bottom", got.Name())
	}
}

func TestHiddenViewSkipped(t *testing.T) {
	screen := NewScreen(10, 10)
	v := NewView("v", NewRect(1, 1, 2, 2))
	_ = screen.AddChild(v)
	v.SetHidden(true)
	if got := screen.HitTest(Point{2, 2}); got != screen {
		t.Fatal("hidden view should not hit-test")
	}
}

func TestAddChildCycleRejected(t *testing.T) {
	a := NewView("a", NewRect(0, 0, 5, 5))
	b := NewView("b", NewRect(0, 0, 2, 2))
	if err := a.AddChild(b); err != nil {
		t.Fatal(err)
	}
	if err := b.AddChild(a); err == nil {
		t.Fatal("cycle should be rejected")
	}
	if err := a.AddChild(a); err == nil {
		t.Fatal("self-child should be rejected")
	}
}

func TestRemoveChild(t *testing.T) {
	a := NewView("a", NewRect(0, 0, 5, 5))
	b := NewView("b", NewRect(0, 0, 2, 2))
	_ = a.AddChild(b)
	a.RemoveChild(b)
	if b.Parent() != nil || len(a.Children()) != 0 {
		t.Fatal("RemoveChild did not detach")
	}
}

func TestToLocalRotations(t *testing.T) {
	v := NewView("v", NewRect(0, 0, 2, 4)) // 2 wide, 4 tall
	p := Point{0.5, 1}                     // in parent coords

	v.Rotate(0)
	if got := v.ToLocal(p); got != (Point{0.5, 1}) {
		t.Fatalf("rot0 local = %v", got)
	}

	// After one quarter turn the local height axis runs along parent X.
	v2 := NewView("v2", NewRect(0, 0, 2, 4))
	v2.Rotate(1)
	got := v2.ToLocal(Point{0.5, 1})
	if got.X != 1 || got.Y != 1.5 {
		t.Fatalf("rot1 local = %v, want (1, 1.5)", got)
	}
	if size := v2.LocalSize(); size.W != 4 || size.H != 2 {
		t.Fatalf("rot1 LocalSize = %v", size)
	}

	v3 := NewView("v3", NewRect(0, 0, 2, 4))
	v3.Rotate(2)
	got = v3.ToLocal(Point{0.5, 1})
	if got.X != 1.5 || got.Y != 3 {
		t.Fatalf("rot2 local = %v, want (1.5, 3)", got)
	}
}

func TestRotationNormalization(t *testing.T) {
	v := NewView("v", NewRect(0, 0, 1, 1))
	v.Rotate(5) // == 1
	if v.Rotation() != 1 {
		t.Fatalf("rotation = %d, want 1", v.Rotation())
	}
	v.Rotate(-2) // 1-2 = -1 == 3
	if v.Rotation() != 3 {
		t.Fatalf("rotation = %d, want 3", v.Rotation())
	}
	if !QuarterTurns(1).Horizontal() || QuarterTurns(2).Horizontal() {
		t.Fatal("Horizontal() wrong")
	}
}

func TestFromScreenNested(t *testing.T) {
	screen := NewScreen(20, 20)
	panel := NewView("panel", NewRect(5, 5, 10, 10))
	inner := NewView("inner", NewRect(2, 2, 4, 4))
	_ = screen.AddChild(panel)
	_ = panel.AddChild(inner)
	// Screen point (8, 9) = panel-local (3,4) = inner frame origin (2,2)
	// → inner local (1, 2).
	got := inner.FromScreen(Point{8, 9})
	if got.X != 1 || got.Y != 2 {
		t.Fatalf("FromScreen = %v, want (1,2)", got)
	}
}

// --- dispatcher tests ---

func constantHandler(busy time.Duration) (Handler, *[]TouchEvent) {
	var delivered []TouchEvent
	return func(e TouchEvent) time.Duration {
		delivered = append(delivered, e)
		return busy
	}, &delivered
}

func moveStream(n int, period time.Duration) []TouchEvent {
	events := []TouchEvent{{Phase: TouchBegan, Time: 0}}
	for i := 1; i <= n; i++ {
		events = append(events, TouchEvent{
			Phase: TouchMoved,
			Loc:   Point{0, float64(i)},
			Time:  time.Duration(i) * period,
		})
	}
	events = append(events, TouchEvent{Phase: TouchEnded, Time: time.Duration(n+1) * period})
	return events
}

func TestDispatcherDeliversAllWhenIdle(t *testing.T) {
	clock := vclock.New()
	d := NewDispatcher(clock)
	handler, delivered := constantHandler(time.Millisecond) // faster than 16ms arrivals
	stats := d.Dispatch(moveStream(10, 16*time.Millisecond), handler, nil)
	if stats.Delivered != 12 { // began + 10 moves + ended
		t.Fatalf("delivered = %d, want 12", stats.Delivered)
	}
	if stats.Coalesced != 0 {
		t.Fatalf("coalesced = %d, want 0", stats.Coalesced)
	}
	if len(*delivered) != 12 {
		t.Fatalf("handler saw %d", len(*delivered))
	}
}

func TestDispatcherCoalescesWhenBusy(t *testing.T) {
	clock := vclock.New()
	d := NewDispatcher(clock)
	handler, _ := constantHandler(64 * time.Millisecond) // 4x slower than arrivals
	stats := d.Dispatch(moveStream(40, 16*time.Millisecond), handler, nil)
	if stats.Coalesced == 0 {
		t.Fatal("busy kernel should coalesce moves")
	}
	if stats.Delivered+stats.Coalesced != 42 {
		t.Fatalf("delivered %d + coalesced %d != 42 events", stats.Delivered, stats.Coalesced)
	}
	// Slower kernel ⇒ fewer deliveries: this is the Figure 4 mechanism.
	if stats.Delivered >= 40 {
		t.Fatalf("delivered = %d, expected far fewer than arrivals", stats.Delivered)
	}
}

func TestSlowerGestureDeliversMore(t *testing.T) {
	count := func(gestureDur time.Duration) int {
		clock := vclock.New()
		d := NewDispatcher(clock)
		handler, _ := constantHandler(60 * time.Millisecond)
		n := int(gestureDur / (16 * time.Millisecond))
		stats := d.Dispatch(moveStream(n, 16*time.Millisecond), handler, nil)
		return stats.Delivered
	}
	fast := count(500 * time.Millisecond)
	slow := count(4 * time.Second)
	if slow <= fast*4 {
		t.Fatalf("4s gesture delivered %d, 0.5s delivered %d; want ~8x", slow, fast)
	}
}

func TestDispatcherDeliversEndedWithFinalLocation(t *testing.T) {
	clock := vclock.New()
	d := NewDispatcher(clock)
	var last TouchEvent
	handler := func(e TouchEvent) time.Duration {
		last = e
		return 100 * time.Millisecond // very busy: everything coalesces
	}
	d.Dispatch(moveStream(10, 10*time.Millisecond), handler, nil)
	if last.Phase != TouchEnded {
		t.Fatalf("last delivered = %v, want ended", last.Phase)
	}
}

func TestDispatcherOrdersMovesBeforeLaterBarriers(t *testing.T) {
	clock := vclock.New()
	d := NewDispatcher(clock)
	var phases []TouchPhase
	handler := func(e TouchEvent) time.Duration {
		phases = append(phases, e.Phase)
		return 30 * time.Millisecond
	}
	events := []TouchEvent{
		{Phase: TouchBegan, Time: 0},
		{Phase: TouchMoved, Time: 5 * time.Millisecond},
		{Phase: TouchMoved, Time: 10 * time.Millisecond},
		{Phase: TouchEnded, Time: 40 * time.Millisecond},
	}
	d.Dispatch(events, handler, nil)
	want := []TouchPhase{TouchBegan, TouchMoved, TouchEnded}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v", phases)
	}
	for i, p := range want {
		if phases[i] != p {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
}

func TestDispatcherIdleCallback(t *testing.T) {
	clock := vclock.New()
	d := NewDispatcher(clock)
	var gaps []time.Duration
	idle := func(from, to time.Duration) { gaps = append(gaps, to-from) }
	handler, _ := constantHandler(time.Millisecond)
	events := []TouchEvent{
		{Phase: TouchBegan, Time: 0},
		{Phase: TouchMoved, Time: 100 * time.Millisecond}, // long gap
		{Phase: TouchEnded, Time: 110 * time.Millisecond},
	}
	d.Dispatch(events, handler, idle)
	if len(gaps) == 0 {
		t.Fatal("idle callback never invoked")
	}
	foundLong := false
	for _, g := range gaps {
		if g >= 90*time.Millisecond {
			foundLong = true
		}
	}
	if !foundLong {
		t.Fatalf("no long idle gap reported: %v", gaps)
	}
}

func TestDispatcherMultiFingerCoalescing(t *testing.T) {
	clock := vclock.New()
	d := NewDispatcher(clock)
	var fingers []int
	handler := func(e TouchEvent) time.Duration {
		if e.Phase == TouchMoved {
			fingers = append(fingers, e.Finger)
		}
		return 50 * time.Millisecond
	}
	var events []TouchEvent
	events = append(events,
		TouchEvent{Finger: 0, Phase: TouchBegan, Time: 0},
		TouchEvent{Finger: 1, Phase: TouchBegan, Time: 0},
	)
	for i := 1; i <= 20; i++ {
		tm := time.Duration(i) * 16 * time.Millisecond
		events = append(events,
			TouchEvent{Finger: 0, Phase: TouchMoved, Time: tm},
			TouchEvent{Finger: 1, Phase: TouchMoved, Time: tm},
		)
	}
	events = append(events,
		TouchEvent{Finger: 0, Phase: TouchEnded, Time: 400 * time.Millisecond},
		TouchEvent{Finger: 1, Phase: TouchEnded, Time: 400 * time.Millisecond},
	)
	d.Dispatch(events, handler, nil)
	// Both fingers must get move deliveries (per-finger coalescing, not
	// global last-write-wins).
	saw0, saw1 := false, false
	for _, f := range fingers {
		if f == 0 {
			saw0 = true
		}
		if f == 1 {
			saw1 = true
		}
	}
	if !saw0 || !saw1 {
		t.Fatalf("fingers delivered = %v; both fingers should appear", fingers)
	}
}
