// Remote exploration over the wire protocol: a dbtouch-serve HTTP server
// holds the data; a thin client describes gestures as serializable
// values, performs them over /rpc, and watches results stream in over
// /stream — the paper's §4 remote-processing deployment end to end.
//
// The example is self-contained: it starts the server in-process on a
// loopback port (exactly what `go run ./cmd/dbtouch-serve` binds) and
// then talks to it only through HTTP.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"dbtouch"
	"dbtouch/internal/datagen"
	"dbtouch/internal/gesture"
	"dbtouch/internal/protocol"
)

func main() {
	// Server side: full data, sample hierarchies, session manager.
	db := dbtouch.Open()
	data := datagen.Floats(datagen.Spec{Dist: datagen.Uniform, N: 200_000, Seed: 7, Min: 0, Max: 1000})
	datagen.Plant(data, datagen.OutlierRegion, 0.6, 0.03, 7)
	db.NewTable("sensors").Float("reading", data).MustCreate()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	server := &http.Server{Handler: protocol.NewHTTPHandler(db.Manager())}
	go server.Serve(ln)
	defer server.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("server up at %s\n\n", base)

	// Client side: no data, only descriptions of intent.
	c := &protocol.Client{Base: base}
	if err := c.Open("analyst"); err != nil {
		panic(err)
	}
	if _, err := c.CreateColumn("analyst", "col", "sensors", "reading", 2, 2, 2, 10); err != nil {
		panic(err)
	}
	if err := c.Configure("analyst", "col", protocol.ActionsSpec{Mode: "summary", Agg: "avg", K: intp(10)}); err != nil {
		panic(err)
	}

	// Watch the session's live result stream from a second connection
	// while gestures are performed on the first.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamed := make(chan protocol.ResultFrame, 64)
	go func() {
		defer close(streamed)
		c.Stream(ctx, "analyst", 0, func(f protocol.ResultFrame) bool {
			streamed <- f
			return true
		})
	}()
	time.Sleep(50 * time.Millisecond) // let the subscription land before gesturing

	frames, err := c.Perform("analyst", "col", gesture.NewSlide(0, 0, 1, 2*time.Second))
	if err != nil {
		panic(err)
	}
	fmt.Printf("slide over 200k tuples answered with %d frames; first few via /stream:\n", len(frames))
	for i := 0; i < 5; i++ {
		f, ok := <-streamed
		if !ok {
			break
		}
		fmt.Printf("  [%7d-%7d] avg=%8.2f  (level %d, t=%v)\n",
			f.WindowLo, f.WindowHi, f.Agg, f.Level, f.Time.Round(time.Millisecond))
	}

	// Zoom in (finer granularity), drill into the outlier region.
	if _, err := c.Perform("analyst", "col", gesture.NewZoom(0, 1.8)); err != nil {
		panic(err)
	}
	drill, err := c.Perform("analyst", "col", gesture.NewSlide(0, 0.55, 0.67, 2*time.Second))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ndrill into the hot region: %d frames, e.g. %s\n", len(drill), render(drill))

	st, err := c.Stats()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nserver stats: %d live session(s), %d eviction(s)\n", st.Live, st.Evictions)
}

func render(frames []protocol.ResultFrame) string {
	if len(frames) == 0 {
		return "(none)"
	}
	f := frames[len(frames)/2]
	return fmt.Sprintf("avg=%.2f over [%d, %d)", f.Agg, f.WindowLo, f.WindowHi)
}

func intp(v int) *int { return &v }
