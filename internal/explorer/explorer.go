// Package explorer implements the Appendix A exploration contest:
// "two audience members will simultaneously start exploring the data sets;
// one using the tablet dbTouch prototype, while the other will be using
// the SQL interface of the DBMS... The winner is the one who can first
// figure out the data properties and patterns."
//
// Humans are replaced by scripted analyst agents. Both agents pay
// "think time" — composing a SQL query takes far longer than deciding the
// next gesture — and both engines charge data access to the same virtual
// cost model, so the contest measures the end-to-end time-to-insight the
// paper argues about.
package explorer

import (
	"fmt"
	"math"
	"time"

	"dbtouch/internal/datagen"
	"dbtouch/internal/storage"
)

// Task is one contest data set with a planted pattern to discover.
type Task struct {
	Name    string
	Rows    int
	Column  *storage.Column
	IDs     *storage.Column // explicit position column for SQL range predicates
	Pattern datagen.Pattern
}

// NewTask builds a contest task: a float column of n values with one
// planted pattern, plus an id column (0..n-1) so the SQL agent can
// restrict ranges.
func NewTask(name string, kind datagen.PatternKind, n int, seed int64) Task {
	data := datagen.Floats(datagen.Spec{Dist: datagen.Uniform, N: n, Seed: seed, Min: 0, Max: 1000})
	// Region position/width derive from the seed so tasks differ.
	frac := 0.15 + float64(seed%7)/10.0
	if frac > 0.8 {
		frac = 0.8
	}
	p := datagen.Plant(data, kind, frac, 0.03, seed+1)
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	return Task{
		Name:    name,
		Rows:    n,
		Column:  storage.NewFloatColumn("v", data),
		IDs:     storage.NewIntColumn("id", ids),
		Pattern: p,
	}
}

// Discovery is an agent's verdict.
type Discovery struct {
	// Found reports whether the agent located the planted region.
	Found bool
	// Lo and Hi bound the region the agent reported.
	Lo, Hi int
	// Elapsed is virtual time from contest start to the report.
	Elapsed time.Duration
	// MachineTime is Elapsed minus analyst think time — the pure
	// engine cost.
	MachineTime time.Duration
	// TuplesRead counts values the engine charged.
	TuplesRead int64
	// Actions counts gestures (dbTouch) or queries (SQL) issued.
	Actions int
}

// Correct checks the report against the planted pattern: the reported
// range must overlap the plant and not be absurdly wider than it.
func (d Discovery) Correct(p datagen.Pattern, rows int) bool {
	if !d.Found {
		return false
	}
	if !p.Overlaps(d.Lo, d.Hi) {
		return false
	}
	plantWidth := p.End - p.Start
	reportWidth := d.Hi - d.Lo
	// Reporting "the whole column" is not a discovery; allow a generous
	// 20x localization factor (and never stricter than 1% of the data).
	limit := plantWidth * 20
	if min := rows / 100; limit < min {
		limit = min
	}
	return reportWidth <= limit
}

// String renders the discovery.
func (d Discovery) String() string {
	if !d.Found {
		return "not found"
	}
	return fmt.Sprintf("[%d,%d) in %v (machine %v, %d tuples, %d actions)",
		d.Lo, d.Hi, d.Elapsed, d.MachineTime, d.TuplesRead, d.Actions)
}

// anomalousRegion finds the strongest signal in a series of window
// aggregates: either a point anomaly (a window whose value deviates from
// the series) or a change point (an adjacent pair with an outsized jump,
// the level-shift signature). It returns the index range [lo, hi] of the
// implicated windows and whether anything exceeded the threshold.
func anomalousRegion(vals []float64, threshold float64) (lo, hi int, found bool) {
	if len(vals) < 4 {
		return 0, 0, false
	}
	z := zScores(vals)
	best, bestZ := -1, threshold
	for i, zv := range z {
		if math.Abs(zv) > bestZ {
			best, bestZ = i, math.Abs(zv)
		}
	}
	if best >= 0 {
		lo, hi = best, best
		for lo-1 >= 0 && math.Abs(z[lo-1]) > threshold/2 {
			lo--
		}
		for hi+1 < len(z) && math.Abs(z[hi+1]) > threshold/2 {
			hi++
		}
		// A run covering most of the series is a shift, not an outlier
		// region; fall through to change-point detection.
		if hi-lo < len(vals)/2 {
			return lo, hi, true
		}
	}
	// Change-point: z-score the first differences.
	diffs := make([]float64, len(vals)-1)
	for i := range diffs {
		diffs[i] = vals[i+1] - vals[i]
	}
	dz := zScores(diffs)
	best, bestZ = -1, threshold
	for i, zv := range dz {
		if math.Abs(zv) > bestZ {
			best, bestZ = i, math.Abs(zv)
		}
	}
	if best >= 0 {
		return best, best + 1, true
	}
	return 0, 0, false
}

// zScores computes per-point z-scores against the slice's own mean/std.
func zScores(vals []float64) []float64 {
	n := len(vals)
	if n < 3 {
		return make([]float64, n)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	out := make([]float64, n)
	if sd == 0 {
		return out
	}
	for i, v := range vals {
		out[i] = (v - mean) / sd
	}
	return out
}
