package core

import (
	"fmt"
	"sort"
	"time"

	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// HotRegion describes a heavily revisited tuple range of a column object.
type HotRegion struct {
	// Lo and Hi bound the base-tuple range [Lo, Hi).
	Lo, Hi int
	// Touches is the access count that made the region hot.
	Touches int
}

// recordTouch histograms the touched base id (512 buckets per object).
func (o *Object) recordTouch(id int) {
	if o.touchBuckets == nil {
		o.touchBuckets = make(map[int]int)
		o.bucketSize = o.matrix.NumRows() / 512
		if o.bucketSize < 1 {
			o.bucketSize = 1
		}
	}
	o.touchBuckets[id/o.bucketSize]++
}

// HotRegions reports contiguous base-tuple ranges the user has revisited
// at least minTouches times per bucket, hottest first — the kernel
// "observing the gesture patterns" (paper §2.6) to decide what deserves
// its own materialized copy. Adjacent hot buckets merge into one region.
func (o *Object) HotRegions(minTouches int) []HotRegion {
	if minTouches <= 0 {
		minTouches = 2
	}
	var hot []int
	for b, c := range o.touchBuckets {
		if c >= minTouches {
			hot = append(hot, b)
		}
	}
	if len(hot) == 0 {
		return nil
	}
	sort.Ints(hot)
	rows := o.matrix.NumRows()
	var out []HotRegion
	for _, b := range hot {
		lo := b * o.bucketSize
		hi := (b + 1) * o.bucketSize
		if hi > rows {
			hi = rows
		}
		touches := o.touchBuckets[b]
		if n := len(out); n > 0 && lo <= out[n-1].Hi+o.bucketSize {
			out[n-1].Hi = hi
			out[n-1].Touches += touches
			continue
		}
		out = append(out, HotRegion{Lo: lo, Hi: hi, Touches: touches})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Touches > out[j].Touches })
	return out
}

// PromoteHotRegion materializes the hottest revisited region of a column
// object as its own data object with the given frame — the paper's §2.6
// "caching may be used to create a new copy (sample) of the data which
// will allow dbTouch to answer future queries requesting data at a
// similar granularity". The new object has its own full sample hierarchy
// over just the region, so slides over it run at region granularity.
func (k *Kernel) PromoteHotRegion(o *Object, frame touchos.Rect) (*Object, error) {
	if !o.IsColumn() {
		return nil, fmt.Errorf("core: hot-region promotion requires a column object")
	}
	regions := o.HotRegions(2)
	if len(regions) == 0 {
		return nil, fmt.Errorf("core: object %d has no hot regions yet", o.id)
	}
	r := regions[0]
	col, err := o.hierarchy.Promote(r.Lo, r.Hi, k.clock, k.cfg.IO)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s[%d:%d]", o.view.Name(), r.Lo, r.Hi)
	m, err := storage.NewMatrix(name, col)
	if err != nil {
		return nil, err
	}
	// Copying the region costs one pass over it. The promoted table is
	// session-derived: under shared storage it stays private to this
	// session instead of entering the cross-session catalog.
	k.clock.Advance(k.cfg.IO.WarmLatency * time.Duration(2*(r.Hi-r.Lo)))
	k.registerDerived(m)
	k.counters.Add("cache.promotions", 1)
	promoted, err := k.CreateColumnObject(m, 0, frame)
	if err != nil {
		return nil, err
	}
	promoted.SetActions(o.actions)
	return promoted, nil
}
