package session

import (
	"os"
	"reflect"
	"testing"

	"dbtouch/internal/core"
	"dbtouch/internal/ftdc"
	"dbtouch/internal/storage"
)

// TestFTDCSampleSchema pins the metric vector's shape: parallel slices,
// stable schema across ticks (a capture chunk's column identity), and
// the gauges tracking what the manager actually does.
func TestFTDCSampleSchema(t *testing.T) {
	m := NewManager(core.Config{})
	defer m.Close()
	names, values := m.FTDCSample()
	if len(names) != len(values) || len(names) == 0 {
		t.Fatalf("%d names, %d values", len(names), len(values))
	}
	names2, _ := m.FTDCSample()
	if !reflect.DeepEqual(names, names2) {
		t.Fatal("schema changed between ticks")
	}
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	for _, want := range []string{"ts_unix_ns", "sessions_live", "queued_batches", "kernel_bytes", "append_epochs"} {
		if _, ok := idx[want]; !ok {
			t.Fatalf("metric %q missing from schema %v", want, names)
		}
	}

	if _, err := m.Create("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create("b"); err != nil {
		t.Fatal(err)
	}
	_, values = m.FTDCSample()
	if got := values[idx["sessions_live"]]; got != 2 {
		t.Fatalf("sessions_live = %d, want 2", got)
	}
	if values[idx["ts_unix_ns"]] <= 0 {
		t.Fatal("ts_unix_ns not populated")
	}
}

// TestFTDCSoak10kSessions is the flight-recorder acceptance gate: with
// 10k live sessions and live-table ingestion running, every tick the
// sampler records must come back from the on-disk capture exactly, and
// the capture directory must stay inside its retention bound for the
// whole soak.
func TestFTDCSoak10kSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-session soak")
	}
	m := NewManager(core.Config{})
	defer m.Close()
	lt, err := storage.NewTable("events", storage.NewIntColumn("v", nil))
	if err != nil {
		t.Fatal(err)
	}
	m.Catalog().RegisterLive(lt)
	const sessions = 10000
	for i := 0; i < sessions; i++ {
		if _, err := m.Create(sessionName(i)); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	// The budget is tiny because the encoding is effective: near-constant
	// gauges cost ~a byte a tick, so even a 400-tick soak is only a few
	// KB — the budget must sit below that for retention to engage.
	opts := ftdc.Options{Dir: dir, MaxChunkSamples: 25, MaxFileBytes: 1 << 8, RetainBytes: 1 << 10}
	rec, err := ftdc.NewRecorder(opts)
	if err != nil {
		t.Fatal(err)
	}
	bound := opts.RetainBytes + opts.MaxFileBytes + 1<<10 // budget + live file + one chunk of slack

	// Soak: many ticks against the live manager, with ingestion advancing
	// the storage gauges between ticks. Retention must engage mid-soak,
	// and the directory must never exceed its bound even transiently.
	const ticks = 400
	var want [][]int64
	for i := 0; i < ticks; i++ {
		if _, err := m.Append("events", [][]storage.Value{{storage.IntValue(int64(i))}}); err != nil {
			t.Fatal(err)
		}
		names, values := m.FTDCSample()
		want = append(want, append([]int64(nil), values...))
		if err := rec.Record(names, values); err != nil {
			t.Fatal(err)
		}
		if i%50 == 0 {
			if size := dirSize(t, dir); size > bound {
				t.Fatalf("tick %d: capture dir %d bytes exceeds bound %d", i, size, bound)
			}
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if size := dirSize(t, dir); size > bound {
		t.Fatalf("final capture dir %d bytes exceeds bound %d", size, bound)
	}
	if rec.Stats().FilesRemoved == 0 {
		t.Fatal("soak never exercised retention")
	}

	// Exact round-trip of whatever retention kept: decoded rows must be a
	// contiguous tail of the recorded ticks, bit-for-bit.
	chunks, err := ftdc.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int64
	for _, c := range chunks {
		for s := 0; s < c.SampleCount(); s++ {
			row := make([]int64, len(c.Columns))
			for mi := range c.Columns {
				row[mi] = c.Columns[mi][s]
			}
			got = append(got, row)
		}
	}
	if len(got) == 0 {
		t.Fatal("capture decoded to zero ticks")
	}
	tail := want[len(want)-len(got):]
	if !reflect.DeepEqual(got, tail) {
		t.Fatalf("decoded %d ticks diverge from the recorded tail", len(got))
	}

	// The sample vector must reflect the soak's scale exactly.
	names, _ := m.FTDCSample()
	liveIdx := -1
	for i, n := range names {
		if n == "sessions_live" {
			liveIdx = i
		}
	}
	last := got[len(got)-1]
	if last[liveIdx] != sessions {
		t.Fatalf("captured sessions_live = %d, want %d", last[liveIdx], sessions)
	}
}

func sessionName(i int) string {
	// Fixed-width ids keep map iteration and stats sorting cheap to reason
	// about in the soak.
	const digits = "0123456789"
	b := []byte{'s', 0, 0, 0, 0, 0}
	for p := 5; p >= 1; p-- {
		b[p] = digits[i%10]
		i /= 10
	}
	return string(b)
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		total += info.Size()
	}
	return total
}
