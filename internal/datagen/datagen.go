// Package datagen produces the synthetic data sets used throughout the
// reproduction: the paper evaluates on "a column of 10^7 integer values"
// and motivates exploration with astronomy and IT-monitoring streams whose
// interesting regions must be *discovered*. Generators are deterministic
// given a seed so every experiment is repeatable.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"dbtouch/internal/storage"
)

// Dist selects a value distribution.
type Dist uint8

// Supported distributions.
const (
	Uniform Dist = iota
	Normal
	Zipf
	Sorted
	Steps
	Periodic
)

// String names the distribution.
func (d Dist) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Normal:
		return "normal"
	case Zipf:
		return "zipf"
	case Sorted:
		return "sorted"
	case Steps:
		return "steps"
	case Periodic:
		return "periodic"
	default:
		return fmt.Sprintf("Dist(%d)", uint8(d))
	}
}

// Spec describes a synthetic column.
type Spec struct {
	Dist Dist
	N    int
	Seed int64
	// Min/Max bound Uniform and Sorted values and scale other dists.
	Min, Max float64
	// Mean/Stddev configure Normal.
	Mean, Stddev float64
	// ZipfS and ZipfV configure Zipf (s > 1, v >= 1).
	ZipfS, ZipfV float64
	// StepLevels is the number of plateaus for Steps.
	StepLevels int
	// Period is the cycle length (in rows) for Periodic.
	Period int
}

// Ints generates an int64 column per spec.
func Ints(spec Spec) []int64 {
	f := Floats(spec)
	out := make([]int64, len(f))
	for i, v := range f {
		out[i] = int64(math.Round(v))
	}
	return out
}

// Floats generates a float64 column per spec.
func Floats(spec Spec) []float64 {
	rng := rand.New(rand.NewSource(spec.Seed))
	out := make([]float64, spec.N)
	lo, hi := spec.Min, spec.Max
	if hi <= lo {
		lo, hi = 0, 1000
	}
	span := hi - lo
	switch spec.Dist {
	case Normal:
		mean, sd := spec.Mean, spec.Stddev
		if sd <= 0 {
			mean, sd = lo+span/2, span/6
		}
		for i := range out {
			out[i] = rng.NormFloat64()*sd + mean
		}
	case Zipf:
		s, v := spec.ZipfS, spec.ZipfV
		if s <= 1 {
			s = 1.2
		}
		if v < 1 {
			v = 1
		}
		z := rand.NewZipf(rng, s, v, uint64(span))
		for i := range out {
			out[i] = lo + float64(z.Uint64())
		}
	case Sorted:
		for i := range out {
			out[i] = lo + span*float64(i)/float64(max(1, spec.N-1))
		}
	case Steps:
		levels := spec.StepLevels
		if levels <= 0 {
			levels = 5
		}
		per := max(1, spec.N/levels)
		for i := range out {
			level := min(i/per, levels-1)
			out[i] = lo + span*float64(level)/float64(max(1, levels-1))
		}
	case Periodic:
		period := spec.Period
		if period <= 0 {
			period = max(1, spec.N/20)
		}
		for i := range out {
			phase := 2 * math.Pi * float64(i%period) / float64(period)
			out[i] = lo + span/2 + span/2*math.Sin(phase)
		}
	default: // Uniform
		for i := range out {
			out[i] = lo + rng.Float64()*span
		}
	}
	return out
}

// IntColumn generates a storage column of int64 values per spec.
func IntColumn(name string, spec Spec) *storage.Column {
	return storage.NewIntColumn(name, Ints(spec))
}

// FloatColumn generates a storage column of float64 values per spec.
func FloatColumn(name string, spec Spec) *storage.Column {
	return storage.NewFloatColumn(name, Floats(spec))
}

// Strings generates n strings drawn from a vocabulary of cardinality card.
func Strings(n int, card int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	if card <= 0 {
		card = 16
	}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("v%04d", rng.Intn(card))
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
