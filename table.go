package dbtouch

import (
	"fmt"

	"dbtouch/internal/storage"
)

// TableBuilder assembles an in-memory table column by column.
type TableBuilder struct {
	db   *DB
	name string
	cols []*storage.Column
	err  error
}

// NewTable starts building a table with the given name.
func (db *DB) NewTable(name string) *TableBuilder {
	return &TableBuilder{db: db, name: name}
}

// Int adds an INT column.
func (b *TableBuilder) Int(name string, vals []int64) *TableBuilder {
	b.cols = append(b.cols, storage.NewIntColumn(name, vals))
	return b
}

// Float adds a FLOAT column.
func (b *TableBuilder) Float(name string, vals []float64) *TableBuilder {
	b.cols = append(b.cols, storage.NewFloatColumn(name, vals))
	return b
}

// Bool adds a BOOL column.
func (b *TableBuilder) Bool(name string, vals []bool) *TableBuilder {
	b.cols = append(b.cols, storage.NewBoolColumn(name, vals))
	return b
}

// String adds a dictionary-encoded STRING column.
func (b *TableBuilder) String(name string, vals []string) *TableBuilder {
	b.cols = append(b.cols, storage.NewStringColumn(name, vals))
	return b
}

// Create registers the table and returns an error if columns mismatch.
func (b *TableBuilder) Create() error {
	if b.err != nil {
		return b.err
	}
	m, err := storage.NewMatrix(b.name, b.cols...)
	if err != nil {
		return fmt.Errorf("dbtouch: creating table %q: %w", b.name, err)
	}
	b.db.kernel.Catalog().Register(m)
	return nil
}

// MustCreate registers the table, panicking on error (examples/tests).
func (b *TableBuilder) MustCreate() {
	if err := b.Create(); err != nil {
		panic(err)
	}
}
