package ftdc

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// ReadFile decodes every chunk in one capture file. A truncated tail —
// the normal state of the file a live recorder is still writing, or of a
// capture cut off by a crash — is not an error: the chunks decoded
// before the truncation are returned. A corrupt chunk body returns the
// chunks decoded so far alongside the error, so a damaged capture still
// yields its readable prefix.
func ReadFile(path string) ([]Chunk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ftdc: %w", err)
	}
	defer f.Close()
	var (
		chunks []Chunk
		prefix [4]byte
	)
	for {
		if _, err := io.ReadFull(f, prefix[:]); err != nil {
			// io.EOF: clean end. Unexpected EOF: a torn length prefix from
			// an in-progress or interrupted write — equally fine.
			return chunks, nil
		}
		n := binary.LittleEndian.Uint32(prefix[:])
		if n == 0 || n > maxChunkBytes {
			return chunks, fmt.Errorf("ftdc: %s: chunk length %d out of range", path, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return chunks, nil // torn chunk body
		}
		c, err := decodeChunk(payload)
		if err != nil {
			return chunks, fmt.Errorf("ftdc: %s: %w", path, err)
		}
		chunks = append(chunks, c)
	}
}

// ReadDir decodes a whole capture directory in recording order (capture
// files are sequence-numbered). Per-file tolerance matches ReadFile.
func ReadDir(dir string) ([]Chunk, error) {
	files, err := captureFiles(dir)
	if err != nil {
		return nil, err
	}
	var chunks []Chunk
	for _, f := range files {
		c, err := ReadFile(f.name)
		chunks = append(chunks, c...)
		if err != nil {
			return chunks, err
		}
	}
	return chunks, nil
}

// Column returns the named metric's values, or nil if the chunk does not
// carry it.
func (c Chunk) Column(name string) []int64 {
	for i, n := range c.Names {
		if n == name {
			return c.Columns[i]
		}
	}
	return nil
}
