package cache

import (
	"testing"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/vclock"
)

func TestGestureAwareKeepsFingerNeighborhood(t *testing.T) {
	g := NewGestureAware(4)
	lastUse := map[int]time.Duration{}
	// Finger moved through blocks 0..20, budget retains them all so far.
	for b := 0; b <= 20; b++ {
		g.Touched(b, time.Duration(b), 1)
		lastUse[b] = time.Duration(b)
	}
	victim := g.Victim(lastUse)
	if victim != 0 {
		t.Fatalf("victim = %d, want 0 (farthest from frontier 20)", victim)
	}
}

func TestGestureAwareVictimFallsBackWithoutState(t *testing.T) {
	g := NewGestureAware(4)
	lastUse := map[int]time.Duration{3: 1, 7: 2}
	v := g.Victim(lastUse)
	if v != 3 && v != 7 {
		t.Fatalf("victim %d not a warm block", v)
	}
}

func TestGestureAwareForgotClearsCounts(t *testing.T) {
	g := NewGestureAware(4)
	g.Touched(5, 0, 1)
	g.Touched(5, 1, 1)
	g.Forgot(5)
	if ranges := g.HotRanges(1, 0); len(ranges) != 0 {
		t.Fatalf("forgot block still hot: %v", ranges)
	}
}

func TestHotRangesMergesRuns(t *testing.T) {
	g := NewGestureAware(4)
	for i := 0; i < 3; i++ {
		for b := 10; b <= 12; b++ {
			g.Touched(b, 0, 1)
		}
		g.Touched(20, 0, 1)
	}
	ranges := g.HotRanges(2, 1)
	if len(ranges) != 2 {
		t.Fatalf("ranges = %v", ranges)
	}
	if ranges[0].FromBlock != 10 || ranges[0].ToBlock != 12 {
		t.Fatalf("hottest run = %+v", ranges[0])
	}
	if ranges[0].Touches < ranges[1].Touches {
		t.Fatal("ranges not sorted by touches")
	}
}

func TestNonePolicyEvictsNewest(t *testing.T) {
	n := None{}
	lastUse := map[int]time.Duration{1: 10, 2: 30, 3: 20}
	if v := n.Victim(lastUse); v != 2 {
		t.Fatalf("victim = %d, want newest (2)", v)
	}
}

// The policies must satisfy iomodel.EvictionPolicy and actually drive a
// tracker.
func TestPoliciesIntegrateWithTracker(t *testing.T) {
	for _, policy := range []iomodel.EvictionPolicy{NewGestureAware(4), None{}} {
		clock := vclock.New()
		tr := iomodel.New(clock, iomodel.Params{
			BlockValues: 4, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond, WarmBudget: 2,
		}, policy)
		for i := 0; i < 40; i += 4 {
			tr.Access(i)
		}
		if tr.WarmBlocks() > 2 {
			t.Fatalf("%s: budget exceeded: %d warm", policy.Name(), tr.WarmBlocks())
		}
		if tr.Stats().Evictions == 0 {
			t.Fatalf("%s: no evictions under pressure", policy.Name())
		}
	}
}

// A gesture that pauses and re-examines the area just behind the finger
// (the paper's canonical revisit) benefits from keeping the frontier
// neighborhood warm; a policy ignorant of the gesture keeps stale blocks.
func TestGestureAwareRevisitBeatsNone(t *testing.T) {
	run := func(policy iomodel.EvictionPolicy) int64 {
		clock := vclock.New()
		tr := iomodel.New(clock, iomodel.Params{
			BlockValues: 1, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond, WarmBudget: 8,
		}, policy)
		tr.SetDirection(1)
		for b := 0; b < 16; b++ {
			tr.Access(b) // slide down once
		}
		for pass := 0; pass < 3; pass++ {
			for b := 15; b >= 12; b-- {
				tr.SetDirection(-1)
				tr.Access(b) // re-examine just behind the finger
			}
			for b := 12; b <= 15; b++ {
				tr.SetDirection(1)
				tr.Access(b)
			}
		}
		return tr.Stats().ColdFetches
	}
	aware := run(NewGestureAware(4))
	none := run(None{})
	if aware >= none {
		t.Fatalf("gesture-aware cold=%d, none cold=%d; aware should refetch less", aware, none)
	}
}

func TestHashTableCache(t *testing.T) {
	c := NewHashTableCache(2)
	c.Put(Key("t", "a", 0), "tableA")
	c.Put(Key("t", "b", 0), "tableB")
	if v, ok := c.Get(Key("t", "a", 0)); !ok || v != "tableA" {
		t.Fatalf("Get A = %v, %v", v, ok)
	}
	// Insert a third: LRU (b) evicted because a was just used.
	c.Put(Key("t", "c", 0), "tableC")
	if _, ok := c.Get(Key("t", "b", 0)); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get(Key("t", "a", 0)); !ok {
		t.Fatal("a should have survived")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Hits() < 2 || c.Misses() < 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestHashTableCacheUpdate(t *testing.T) {
	c := NewHashTableCache(2)
	key := Key("t", "a", 1)
	c.Put(key, 1)
	c.Put(key, 2)
	if v, _ := c.Get(key); v != 2 {
		t.Fatalf("updated value = %v", v)
	}
	if c.Len() != 1 {
		t.Fatal("update should not grow the cache")
	}
}

func TestKeyFormat(t *testing.T) {
	if Key("orders", "amount", 3) != "orders.amount@3" {
		t.Fatalf("key = %q", Key("orders", "amount", 3))
	}
}
