package operator

import (
	"math"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
)

// Fusion dispatch: when a WHERE-restricted slide span is consumed only by
// a running aggregate — no group-by, join, scan reveal, or promotion
// needs the qualifying positions — the filter and the aggregate fuse into
// one scan through the storage fused kernels (Column.FilterAggRange /
// FilterAggSel / FilterCountRange / FilterCountSel) instead of
// materializing a selection vector and re-reading it.
//
// Charging stays byte-compatible with the unfused pipeline (EvalRange,
// then per-run charging, then per-row absorption): the predicate column's
// tracker is charged for every evaluated row exactly as EvalRange
// charges, and the value tracker is charged per qualifying value block by
// block — the fused scan is chunked at the cost model's block size, and
// each chunk reports how many values qualified inside its block. The
// virtual cost model decomposes per (block, count), so these charges are
// indistinguishable from the per-run charges of a materialized selection.

// FuseFilterAgg evaluates one WHERE conjunct over col fused with
// aggregation of the same column's qualifying values. With sel == nil the
// conjunct covers the base span [lo, hi); otherwise it refines the
// surviving selection sel of earlier conjuncts (the FilterSel-fused form)
// and lo/hi are ignored. kind selects the aggregate-specialized kernel:
// COUNT runs the count-only kernels, SUM/AVG the sum kernels (extrema
// come back ±Inf), MIN/MAX the extrema kernels (sum comes back 0) —
// each skips the bookkeeping its consumer ignores, which is most of the
// per-element cost. Unfusable kinds fall back to the full kernel.
//
// predTracker is charged for every evaluated row — AccessRange over the
// span, or one read per selected row batched by contiguous runs — exactly
// as Predicate.EvalRange charges. valTracker is charged one read per
// qualifying value, placed in the block that holds it, exactly as
// per-run charging of the materialized selection would. Either tracker
// may be nil to skip its accounting.
func FuseFilterAgg(col *storage.Column, lo, hi int, sel []int32, op CmpOp, operand storage.Value, predTracker, valTracker *iomodel.Tracker, kind AggKind) storage.FilterAgg {
	rop := op.rangeOp()
	mode := fusedModeFor(kind)
	onBlock := func(start, count int) {
		if valTracker != nil {
			valTracker.AccessCount(start, count)
		}
	}
	if sel == nil {
		if lo < 0 {
			lo = 0
		}
		if n := col.Len(); hi > n {
			hi = n
		}
		if hi <= lo {
			return storage.FilterAgg{Min: math.Inf(1), Max: math.Inf(-1)}
		}
		if predTracker != nil {
			predTracker.AccessRange(lo, hi)
		}
		return col.FilterAggRangeBlocked(lo, hi, chunkSize(valTracker, hi-lo), rop, operand, mode, onBlock)
	}
	chargeSelection(predTracker, sel)
	return col.FilterAggSelBlocked(sel, chunkSize(valTracker, col.Len()), rop, operand, mode, onBlock)
}

// fusedModeFor maps an aggregate kind to what the fused scan maintains.
func fusedModeFor(kind AggKind) storage.FusedMode {
	switch kind {
	case Count:
		return storage.FusedCount
	case Sum, Avg:
		return storage.FusedSum
	case Min, Max:
		return storage.FusedMinMax
	default:
		return storage.FusedFull
	}
}

// chunkSize picks the scan chunk width: the tracker's cost-model block
// size, or the whole span when no tracker charges the scan.
func chunkSize(tracker *iomodel.Tracker, span int) int {
	if tracker == nil {
		if span < 1 {
			return 1
		}
		return span
	}
	return tracker.Params().BlockValues
}
