package session

import (
	"errors"

	"dbtouch/internal/core"
	"dbtouch/internal/protocol"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// failf renders one failed operation for the wire, marking
// admission-control rejections (ErrOverloaded) so the HTTP layer can
// answer 503 + Retry-After.
func failf(op string, err error) protocol.Response {
	if errors.Is(err, ErrOverloaded) {
		return protocol.Overloadedf("%s: %v", op, err)
	}
	return protocol.Errorf("%s: %v", op, err)
}

// HandleRequest routes one decoded protocol request into the manager:
// session lifecycle ops run on the manager itself, everything else
// resolves the named session and executes under its synchronous driving
// contract (wire-driven sessions are request-at-a-time by construction —
// each request is one batch, serialized by the session's run lock).
// Errors come back as failed responses, never panics: the wire is a
// trust boundary.
func (m *Manager) HandleRequest(req protocol.Request) protocol.Response {
	if err := req.CheckVersion(); err != nil {
		return protocol.Errorf("%v", err)
	}
	// Answer in the version the request spoke: a v1 client sees response
	// envelopes byte-identical to a v1 server's, which is what makes the
	// protocol bump invisible until a client opts into v2 features.
	resp := m.serveRequest(req)
	resp.V = req.V
	return resp
}

func (m *Manager) routeRequest(req protocol.Request) protocol.Response {
	switch req.Op {
	case protocol.OpOpen:
		if req.Session == "" {
			return protocol.Errorf("open: missing session id")
		}
		if _, err := m.Create(req.Session); err != nil {
			return failf("open", err)
		}
		return protocol.OK()
	case protocol.OpEvict:
		if !m.Evict(req.Session) {
			resp := protocol.Errorf("evict: session %q not found", req.Session)
			resp.Gone = true
			return resp
		}
		return protocol.OK()
	case protocol.OpAppend:
		return m.handleAppend(req)
	case protocol.OpStats:
		st := m.Stats()
		frame := protocol.StatsFrame{
			Live: st.Live, Max: st.Max, Evictions: st.Evictions,
			Workers: st.Workers, Parked: st.Parked, Runnable: st.Runnable,
			Running: st.Running, Steals: st.Steals, Dispatches: st.Dispatches,
			QueuedBatches: st.QueuedBatches, MaxQueuedBatches: st.MaxQueuedBatches,
			LoggedRequests: st.LoggedRequests, LogErrors: st.LogErrors,
			LogCompactions: st.LogCompactions, Resumes: st.Resumes,
			ReplayedRequests: st.ReplayedRequests,
		}
		for _, s := range st.Sessions {
			frame.Sessions = append(frame.Sessions, protocol.SessionFrame{
				ID: s.ID, Started: s.Started, State: string(s.State), QueueDepth: s.QueueDepth,
			})
		}
		resp := protocol.OK()
		resp.Stats = &frame
		return resp
	}
	s, ok := m.Get(req.Session)
	if !ok {
		// Gone tells a resume-aware client this is worth an OpResume +
		// retry rather than a hard failure (the session may only have
		// been LRU-evicted, or the server restarted).
		resp := protocol.Errorf("%s: session %q not found", req.Op, req.Session)
		resp.Gone = true
		return resp
	}
	switch req.Op {
	case protocol.OpIdle:
		if err := s.Idle(req.Idle); err != nil {
			return protocol.Errorf("idle: %v", err)
		}
		return protocol.OK()
	case protocol.OpPerform:
		// Synchronous wire work obeys the same backpressure as Enqueue:
		// while the scheduler's backlog gauge sits at the cap, performs
		// are rejected so remote clients back off with the rest.
		if backlog, limit, over := m.overloaded(); over {
			return protocol.Overloadedf("perform: session %q: %v (manager backlog %d batches at cap %d)",
				req.Session, ErrOverloaded, backlog, limit)
		}
		return s.handlePerform(req)
	case protocol.OpCreate:
		return s.handleCreate(req)
	case protocol.OpConfigure:
		return s.handleConfigure(req)
	case protocol.OpPin:
		return s.handlePin(req)
	default:
		return protocol.Errorf("unknown op %q", req.Op)
	}
}

// handleAppend routes an OpAppend into the named live table. A
// rate-limited append (storage.ErrAppendLimited) renders as an
// overloaded response, so remote feeders back off like overloaded
// gesture clients do.
func (m *Manager) handleAppend(req protocol.Request) protocol.Response {
	if req.Table == "" {
		return protocol.Errorf("append: missing table name")
	}
	if len(req.Rows) == 0 {
		return protocol.Errorf("append: no rows")
	}
	rows := make([][]storage.Value, len(req.Rows))
	for i, r := range req.Rows {
		vals := make([]storage.Value, len(r))
		for j, cell := range r {
			vals[j] = protocol.CoerceValue(cell)
		}
		rows[i] = vals
	}
	snap, err := m.Append(req.Table, rows)
	if err != nil {
		if errors.Is(err, storage.ErrAppendLimited) {
			return protocol.Overloadedf("append: %v", err)
		}
		return protocol.Errorf("append: %v", err)
	}
	resp := protocol.OK()
	resp.Epoch = snap.Epoch
	resp.Rows = snap.Rows
	return resp
}

// SubscribeSession opens a bounded result stream on the named session —
// the subscription half of the wire protocol (the HTTP handler streams
// its frames). The stream observes results of requests handled after the
// subscription.
func (m *Manager) SubscribeSession(id string, buffer int) (*core.ResultStream, error) {
	s, ok := m.Get(id)
	if !ok {
		return nil, &notFoundError{id: id}
	}
	return s.Subscribe(buffer), nil
}

// notFoundError reports an unknown session id.
type notFoundError struct{ id string }

func (e *notFoundError) Error() string { return "session \"" + e.id + "\" not found" }

func (s *Session) handlePerform(req protocol.Request) protocol.Response {
	if req.Gesture == nil {
		return protocol.Errorf("perform: missing gesture")
	}
	id, ok := s.BoundObject(req.Object)
	if !ok {
		return protocol.Errorf("perform: unknown object %q", req.Object)
	}
	g := *req.Gesture
	g.Target = id
	results, err := s.Perform(g)
	if err != nil {
		return protocol.Errorf("perform: %v", err)
	}
	resp := protocol.OK()
	resp.Results = protocol.FrameResults(results)
	return resp
}

func (s *Session) handleCreate(req protocol.Request) protocol.Response {
	spec := req.Create
	if spec == nil {
		return protocol.Errorf("create: missing spec")
	}
	if req.Object == "" {
		return protocol.Errorf("create: missing object name")
	}
	var objID int
	err := s.Do(func(k *core.Kernel) error {
		frame := touchos.NewRect(spec.X, spec.Y, spec.W, spec.H)
		var (
			o   *core.Object
			err error
		)
		if spec.Column != "" {
			o, err = s.CreateColumnObject(spec.Table, spec.Column, frame)
		} else {
			o, err = s.CreateTableObject(spec.Table, frame)
		}
		if err != nil {
			return err
		}
		objID = o.ID()
		return nil
	})
	if err != nil {
		return protocol.Errorf("create: %v", err)
	}
	s.BindObject(req.Object, objID)
	resp := protocol.OK()
	resp.ObjectID = objID
	return resp
}

func (s *Session) handleConfigure(req protocol.Request) protocol.Response {
	if req.Actions == nil {
		return protocol.Errorf("configure: missing actions")
	}
	id, ok := s.BoundObject(req.Object)
	if !ok {
		return protocol.Errorf("configure: unknown object %q", req.Object)
	}
	err := s.Do(func(k *core.Kernel) error {
		o, err := k.Object(id)
		if err != nil {
			return err
		}
		a, err := req.Actions.Apply(o.Actions(), o.Matrix())
		if err != nil {
			return err
		}
		o.SetActions(a)
		return nil
	})
	if err != nil {
		return protocol.Errorf("configure: %v", err)
	}
	return protocol.OK()
}

func (s *Session) handlePin(req protocol.Request) protocol.Response {
	spec := req.Create
	if spec == nil {
		return protocol.Errorf("pin: missing placement")
	}
	if req.As == "" {
		return protocol.Errorf("pin: missing name for the promoted object")
	}
	id, ok := s.BoundObject(req.Object)
	if !ok {
		return protocol.Errorf("pin: unknown object %q", req.Object)
	}
	var objID int
	err := s.Do(func(k *core.Kernel) error {
		o, err := k.Object(id)
		if err != nil {
			return err
		}
		promoted, err := k.PromoteHotRegion(o, touchos.NewRect(spec.X, spec.Y, spec.W, spec.H))
		if err != nil {
			return err
		}
		objID = promoted.ID()
		return nil
	})
	if err != nil {
		return protocol.Errorf("pin: %v", err)
	}
	s.BindObject(req.As, objID)
	resp := protocol.OK()
	resp.ObjectID = objID
	return resp
}
