package protocol

import (
	"net/http"
	"sync/atomic"
)

// Health is a server's readiness state machine, served at /healthz and
// polled by the gateway's health checker (and by the smoke scripts'
// readiness loop). Three states, strictly more honest than a TCP
// connect:
//
//	starting  listening but not yet serving (restores in progress) — 503
//	ready     admitting and serving traffic                         — 200
//	draining  shutting down: finish in-flight, admit nothing new    — 503
//
// The body distinguishes draining from dead for the gateway: a draining
// backend's sessions are proactively migrated (their logs are intact
// and its in-flight work will finish), while a connect failure only
// trips the circuit breaker.
type Health struct {
	state atomic.Int32
}

// HealthState is one /healthz answer.
type HealthState int32

// Health states, in lifecycle order.
const (
	HealthStarting HealthState = iota
	HealthReady
	HealthDraining
)

// String renders the state as its wire body.
func (s HealthState) String() string {
	switch s {
	case HealthReady:
		return "ready"
	case HealthDraining:
		return "draining"
	default:
		return "starting"
	}
}

// NewHealth returns a Health in the starting state.
func NewHealth() *Health { return &Health{} }

// Set moves the state machine.
func (h *Health) Set(s HealthState) { h.state.Store(int32(s)) }

// Get reports the current state.
func (h *Health) Get() HealthState { return HealthState(h.state.Load()) }

// Ready reports whether the server is admitting traffic.
func (h *Health) Ready() bool { return h.Get() == HealthReady }

// Handler serves GET /healthz: 200 with body "ready" when ready, 503
// with body "starting" or "draining" otherwise. The body is plain text
// on purpose — parseable by curl -sf, grep and the gateway alike.
func (h *Health) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s := h.Get()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s != HealthReady {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write([]byte(s.String() + "\n"))
	})
}
