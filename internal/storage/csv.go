package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV loads a column-major matrix from CSV. The first record must be a
// header of "name:TYPE" fields, e.g. "temp:FLOAT,host:STRING,ok:BOOL".
// A bare name defaults to FLOAT, the type most exploration workloads use.
func ReadCSV(name string, r io.Reader) (*Matrix, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: reading CSV header: %w", err)
	}
	cols := make([]*Column, len(header))
	for i, h := range header {
		colName, typeName, found := strings.Cut(strings.TrimSpace(h), ":")
		typ := Float64
		if found {
			typ, err = ParseType(strings.TrimSpace(typeName))
			if err != nil {
				return nil, fmt.Errorf("storage: CSV column %d: %w", i, err)
			}
		}
		cols[i] = NewEmptyColumn(strings.TrimSpace(colName), typ)
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("storage: reading CSV line %d: %w", line+1, err)
		}
		line++
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("storage: CSV line %d has %d fields, want %d", line, len(rec), len(cols))
		}
		for i, field := range rec {
			v, err := parseField(strings.TrimSpace(field), cols[i].Type())
			if err != nil {
				return nil, fmt.Errorf("storage: CSV line %d column %q: %w", line, cols[i].Name(), err)
			}
			cols[i].Append(v)
		}
	}
	return NewMatrix(name, cols...)
}

func parseField(s string, t Type) (Value, error) {
	switch t {
	case Int64:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as INT: %w", s, err)
		}
		return IntValue(n), nil
	case Float64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as FLOAT: %w", s, err)
		}
		return FloatValue(f), nil
	case Bool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("parsing %q as BOOL: %w", s, err)
		}
		return BoolValue(b), nil
	case String:
		return StringValue(s), nil
	default:
		return Value{}, fmt.Errorf("unsupported type %v", t)
	}
}

// WriteCSV serializes m (any layout) as CSV with a typed header, the
// inverse of ReadCSV.
func WriteCSV(m *Matrix, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, m.NumCols())
	for i, cm := range m.Schema() {
		header[i] = cm.Name + ":" + cm.Type.String()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("storage: writing CSV header: %w", err)
	}
	rec := make([]string, m.NumCols())
	for r := 0; r < m.NumRows(); r++ {
		for c := 0; c < m.NumCols(); c++ {
			v, err := m.At(r, c)
			if err != nil {
				return err
			}
			rec[c] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: writing CSV row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
