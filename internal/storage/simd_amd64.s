//go:build amd64 && !purego

#include "textflag.h"

// AVX2 span kernels. Conventions shared by every routine:
//
//   - Lengths are whole vector blocks only (len%8==0 for the 2-vector
//     routines, len%4==0 for the 1-vector ones, len>0); the Go wrappers
//     in simd_amd64.go run remainders through the scalar loops.
//   - The interval predicate is the storage.intPred lowering: an
//     element passes iff (lo <= v && v <= hi) XOR neg. Vectorized as
//     fail = (lo > v) | (v > hi); pass = fail XOR kxor, where kxor is
//     all-ones for neg==0 and zero for neg==1. A pass lane is all-ones
//     (-1), so `cnt -= pass` counts and `v & pass` masks the summand —
//     the same identities the scalar branch-free loops use.
//   - int64 sums may wrap; wrapping addition is associative, so lane
//     order cannot change the result (bit-identity with the scalar
//     reference).
//   - Min/max routines return their four per-lane partial minima and
//     maxima through a *[8]T rather than reducing across lanes in asm;
//     the wrapper folds them, which keeps the horizontal step in Go.
//   - VZEROUPPER before every RET (Go's ABI expects clean upper YMM
//     state on return).

// iota8: the dword lanes 0..7, seed for the compress position counter.
DATA iota8<>+0(SB)/4, $0
DATA iota8<>+4(SB)/4, $1
DATA iota8<>+8(SB)/4, $2
DATA iota8<>+12(SB)/4, $3
DATA iota8<>+16(SB)/4, $4
DATA iota8<>+20(SB)/4, $5
DATA iota8<>+24(SB)/4, $6
DATA iota8<>+28(SB)/4, $7
GLOBL iota8<>(SB), RODATA|NOPTR, $32

// func avxSumInt64(v []int64) int64
// Four accumulators, 32 elements per main-loop iteration.
TEXT ·avxSumInt64(SB), NOSPLIT, $0-32
	MOVQ  v_base+0(FP), SI
	MOVQ  v_len+8(FP), CX
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	CMPQ  CX, $32
	JL    sumtail

sumloop32:
	VPADDQ (SI), Y0, Y0
	VPADDQ 32(SI), Y1, Y1
	VPADDQ 64(SI), Y2, Y2
	VPADDQ 96(SI), Y3, Y3
	VPADDQ 128(SI), Y0, Y0
	VPADDQ 160(SI), Y1, Y1
	VPADDQ 192(SI), Y2, Y2
	VPADDQ 224(SI), Y3, Y3
	ADDQ   $256, SI
	SUBQ   $32, CX
	CMPQ   CX, $32
	JGE    sumloop32

sumtail:
	TESTQ CX, CX
	JZ    sumreduce

sumtail8:
	VPADDQ (SI), Y0, Y0
	VPADDQ 32(SI), Y1, Y1
	ADDQ   $64, SI
	SUBQ   $8, CX
	JNZ    sumtail8

sumreduce:
	VPADDQ       Y1, Y0, Y0
	VPADDQ       Y3, Y2, Y2
	VPADDQ       Y2, Y0, Y0
	VEXTRACTI128 $1, Y0, X1
	VPADDQ       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDQ       X1, X0, X0
	VZEROUPPER
	MOVQ         X0, AX
	MOVQ         AX, ret+24(FP)
	RET

// func avxMinMaxInt64(v []int64, lanes *[8]int64)
// lanes[0:4] = per-lane minima, lanes[4:8] = per-lane maxima.
TEXT ·avxMinMaxInt64(SB), NOSPLIT, $0-32
	MOVQ         v_base+0(FP), SI
	MOVQ         v_len+8(FP), CX
	MOVQ         lanes+24(FP), DI
	MOVQ         $0x7FFFFFFFFFFFFFFF, AX
	MOVQ         AX, X0
	VPBROADCASTQ X0, Y0             // running minima = MaxInt64
	MOVQ         $0x8000000000000000, AX
	MOVQ         AX, X1
	VPBROADCASTQ X1, Y1             // running maxima = MinInt64

mmloop:
	VMOVDQU   (SI), Y2
	VPCMPGTQ  Y2, Y0, Y3            // mn > v ?
	VBLENDVPD Y3, Y2, Y0, Y0        // mn = pick v where smaller
	VPCMPGTQ  Y1, Y2, Y3            // v > mx ?
	VBLENDVPD Y3, Y2, Y1, Y1
	ADDQ      $32, SI
	SUBQ      $4, CX
	JNZ       mmloop

	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VZEROUPPER
	RET

// func avxMinMaxFloat64(v []float64, lanes *[8]float64)
// Ordered compares (LT_OQ/GT_OQ) are false for NaN operands, so NaN
// elements never replace a running extremum — the scalar `if v < mn`
// NaN-skip, lane for lane.
TEXT ·avxMinMaxFloat64(SB), NOSPLIT, $0-32
	MOVQ         v_base+0(FP), SI
	MOVQ         v_len+8(FP), CX
	MOVQ         lanes+24(FP), DI
	MOVQ         $0x7FF0000000000000, AX // +Inf
	MOVQ         AX, X0
	VPBROADCASTQ X0, Y0
	MOVQ         $0xFFF0000000000000, AX // -Inf
	MOVQ         AX, X1
	VPBROADCASTQ X1, Y1

fmmloop:
	VMOVDQU   (SI), Y2
	VCMPPD    $0x11, Y0, Y2, Y3     // v < mn (LT_OQ)
	VBLENDVPD Y3, Y2, Y0, Y0
	VCMPPD    $0x1E, Y1, Y2, Y3     // v > mx (GT_OQ)
	VBLENDVPD Y3, Y2, Y1, Y1
	ADDQ      $32, SI
	SUBQ      $4, CX
	JNZ       fmmloop

	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VZEROUPPER
	RET

// func avxFilterSumInt64(v []int64, lo, hi int64, kxor uint64) (cnt, isum int64)
// The hot fused filter+sum inner loop: two vectors (8 elements) per
// iteration with independent count/sum accumulator pairs.
TEXT ·avxFilterSumInt64(SB), NOSPLIT, $0-64
	MOVQ         v_base+0(FP), SI
	MOVQ         v_len+8(FP), CX
	VPBROADCASTQ lo+24(FP), Y8
	VPBROADCASTQ hi+32(FP), Y9
	VPBROADCASTQ kxor+40(FP), Y10
	VPXOR        Y0, Y0, Y0         // sum lanes a
	VPXOR        Y1, Y1, Y1         // sum lanes b
	VPXOR        Y2, Y2, Y2         // cnt lanes a
	VPXOR        Y3, Y3, Y3         // cnt lanes b

fsloop:
	VMOVDQU  (SI), Y4
	VMOVDQU  32(SI), Y5
	VPCMPGTQ Y4, Y8, Y6             // lo > v
	VPCMPGTQ Y9, Y4, Y7             // v > hi
	VPOR     Y7, Y6, Y6
	VPXOR    Y10, Y6, Y6            // pass mask
	VPSUBQ   Y6, Y2, Y2             // cnt += 1 per pass lane
	VPAND    Y6, Y4, Y4
	VPADDQ   Y4, Y0, Y0
	VPCMPGTQ Y5, Y8, Y6
	VPCMPGTQ Y9, Y5, Y7
	VPOR     Y7, Y6, Y6
	VPXOR    Y10, Y6, Y6
	VPSUBQ   Y6, Y3, Y3
	VPAND    Y6, Y5, Y5
	VPADDQ   Y5, Y1, Y1
	ADDQ     $64, SI
	SUBQ     $8, CX
	JNZ      fsloop

	VPADDQ       Y1, Y0, Y0
	VPADDQ       Y3, Y2, Y2
	VEXTRACTI128 $1, Y0, X1
	VPADDQ       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDQ       X1, X0, X0
	VEXTRACTI128 $1, Y2, X3
	VPADDQ       X3, X2, X2
	VPSHUFD      $0xEE, X2, X3
	VPADDQ       X3, X2, X2
	VZEROUPPER
	MOVQ         X2, AX
	MOVQ         AX, cnt+48(FP)
	MOVQ         X0, AX
	MOVQ         AX, isum+56(FP)
	RET

// func avxFilterAggInt64(v []int64, lo, hi int64, kxor uint64, lanes *[8]int64) (cnt, isum int64)
// Full fused filter+aggregate: count, sum, and pass-masked per-lane
// min/max (sentinel-initialized like filterAggInt).
TEXT ·avxFilterAggInt64(SB), NOSPLIT, $0-72
	MOVQ         v_base+0(FP), SI
	MOVQ         v_len+8(FP), CX
	VPBROADCASTQ lo+24(FP), Y8
	VPBROADCASTQ hi+32(FP), Y9
	VPBROADCASTQ kxor+40(FP), Y10
	MOVQ         lanes+48(FP), DI
	MOVQ         $0x7FFFFFFFFFFFFFFF, AX
	MOVQ         AX, X0
	VPBROADCASTQ X0, Y11            // minima
	MOVQ         $0x8000000000000000, AX
	MOVQ         AX, X1
	VPBROADCASTQ X1, Y12            // maxima
	VPXOR        Y0, Y0, Y0         // sum
	VPXOR        Y2, Y2, Y2         // cnt

faloop:
	VMOVDQU   (SI), Y4
	VPCMPGTQ  Y4, Y8, Y6            // lo > v
	VPCMPGTQ  Y9, Y4, Y7            // v > hi
	VPOR      Y7, Y6, Y6
	VPXOR     Y10, Y6, Y6           // pass
	VPSUBQ    Y6, Y2, Y2
	VPAND     Y6, Y4, Y5
	VPADDQ    Y5, Y0, Y0
	VPCMPGTQ  Y4, Y11, Y7           // mn > v
	VPAND     Y6, Y7, Y7            // ... and passes
	VBLENDVPD Y7, Y4, Y11, Y11
	VPCMPGTQ  Y12, Y4, Y7           // v > mx
	VPAND     Y6, Y7, Y7
	VBLENDVPD Y7, Y4, Y12, Y12
	ADDQ      $32, SI
	SUBQ      $4, CX
	JNZ       faloop

	VMOVDQU      Y11, (DI)
	VMOVDQU      Y12, 32(DI)
	VEXTRACTI128 $1, Y0, X1
	VPADDQ       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDQ       X1, X0, X0
	VEXTRACTI128 $1, Y2, X3
	VPADDQ       X3, X2, X2
	VPSHUFD      $0xEE, X2, X3
	VPADDQ       X3, X2, X2
	VZEROUPPER
	MOVQ         X2, AX
	MOVQ         AX, cnt+56(FP)
	MOVQ         X0, AX
	MOVQ         AX, isum+64(FP)
	RET

// func avxCompressInt64(v []int64, lo, hi int64, kxor uint64, base int64, lut *byte, out *int32) int64
// Compare+compress: 8 candidates per iteration. The two 4-lane pass
// masks collapse to an 8-bit movemask; a 256-entry shuffle LUT packs
// the passing position dwords to the front with VPERMD; the 8-dword
// store is unconditional and the cursor advances by POPCNT — the
// vector form of the scalar `buf[j] = pos; j += pass`.
TEXT ·avxCompressInt64(SB), NOSPLIT, $0-80
	MOVQ         v_base+0(FP), SI
	MOVQ         v_len+8(FP), CX
	VPBROADCASTQ lo+24(FP), Y8
	VPBROADCASTQ hi+32(FP), Y9
	VPBROADCASTQ kxor+40(FP), Y10
	MOVQ         lut+56(FP), R8
	MOVQ         out+64(FP), DI
	MOVQ         base+48(FP), AX
	MOVQ         AX, X0
	VPBROADCASTD X0, Y11
	VMOVDQU      iota8<>(SB), Y12
	VPADDD       Y12, Y11, Y11      // positions {base..base+7}
	MOVL         $8, AX
	MOVQ         AX, X0
	VPBROADCASTD X0, Y12            // position step
	XORQ         R9, R9             // output cursor

cloop:
	VMOVDQU  (SI), Y4
	VMOVDQU  32(SI), Y5
	VPCMPGTQ Y4, Y8, Y6
	VPCMPGTQ Y9, Y4, Y7
	VPOR     Y7, Y6, Y6
	VPXOR    Y10, Y6, Y6            // pass mask lanes 0-3
	VPCMPGTQ Y5, Y8, Y7
	VPCMPGTQ Y9, Y5, Y13
	VPOR     Y13, Y7, Y7
	VPXOR    Y10, Y7, Y7            // pass mask lanes 4-7
	VMOVMSKPD Y6, AX
	VMOVMSKPD Y7, BX
	SHLQ     $4, BX
	ORQ      BX, AX                 // 8-bit pass mask
	// VEX-encoded load+widen of the LUT entry: a legacy SSE MOVQ here
	// would pay the AVX-SSE transition penalty on every iteration.
	VPMOVZXBD (R8)(AX*8), Y6        // LUT entry: packed lane indices

	VPERMD   Y11, Y6, Y7            // gather passing positions
	VMOVDQU  Y7, (DI)(R9*4)
	POPCNTQ  AX, AX
	ADDQ     AX, R9
	VPADDD   Y12, Y11, Y11
	ADDQ     $64, SI
	SUBQ     $8, CX
	JNZ      cloop

	MOVQ R9, ret+72(FP)
	VZEROUPPER
	RET

// func avxCompressFloat64(v []float64, b float64, wlt, wgt, weq uint64, base int64, lut *byte, out *int32) int64
// Float compare+compress under the decomposed wants masks:
// pass = (v<b ? wlt : 0) | (v>b ? wgt : 0) | (unordered-or-equal ? weq : 0).
// Ordered compares are false on NaN, so NaN lands on the weq mask —
// passFloat's "equal-ish" semantics, lane for lane.
TEXT ·avxCompressFloat64(SB), NOSPLIT, $0-88
	MOVQ         v_base+0(FP), SI
	MOVQ         v_len+8(FP), CX
	VPBROADCASTQ b+24(FP), Y8
	VPBROADCASTQ wlt+32(FP), Y9
	VPBROADCASTQ wgt+40(FP), Y10
	VPBROADCASTQ weq+48(FP), Y13
	VPCMPEQD     Y14, Y14, Y14      // all-ones
	MOVQ         lut+64(FP), R8
	MOVQ         out+72(FP), DI
	MOVQ         base+56(FP), AX
	MOVQ         AX, X0
	VPBROADCASTD X0, Y11
	VMOVDQU      iota8<>(SB), Y12
	VPADDD       Y12, Y11, Y11
	MOVL         $8, AX
	MOVQ         AX, X0
	VPBROADCASTD X0, Y12
	XORQ         R9, R9

fcloop:
	VMOVDQU (SI), Y4
	VMOVDQU 32(SI), Y5
	// lanes 0-3
	VCMPPD  $0x11, Y8, Y4, Y6       // lt (LT_OQ)
	VCMPPD  $0x1E, Y8, Y4, Y7       // gt (GT_OQ)
	VPOR    Y7, Y6, Y15
	VPXOR   Y14, Y15, Y15           // eqish = !(lt|gt)
	VPAND   Y9, Y6, Y6
	VPAND   Y10, Y7, Y7
	VPAND   Y13, Y15, Y15
	VPOR    Y7, Y6, Y6
	VPOR    Y15, Y6, Y6             // pass lanes 0-3
	// lanes 4-7
	VCMPPD  $0x11, Y8, Y5, Y7
	VCMPPD  $0x1E, Y8, Y5, Y15
	VPOR    Y15, Y7, Y4
	VPXOR   Y14, Y4, Y4
	VPAND   Y9, Y7, Y7
	VPAND   Y10, Y15, Y15
	VPAND   Y13, Y4, Y4
	VPOR    Y15, Y7, Y7
	VPOR    Y4, Y7, Y7              // pass lanes 4-7
	VMOVMSKPD Y6, AX
	VMOVMSKPD Y7, BX
	SHLQ    $4, BX
	ORQ     BX, AX
	VPMOVZXBD (R8)(AX*8), Y6
	VPERMD  Y11, Y6, Y7
	VMOVDQU Y7, (DI)(R9*4)
	POPCNTQ AX, AX
	ADDQ    AX, R9
	VPADDD  Y12, Y11, Y11
	ADDQ    $64, SI
	SUBQ    $8, CX
	JNZ     fcloop

	MOVQ R9, ret+80(FP)
	VZEROUPPER
	RET
