package ftdc

import (
	"sync"
	"time"
)

// SampleFunc returns one tick's metric vector: parallel name and value
// slices. The sampler calls it on every tick; implementations should be
// cheap reads of existing gauges, not fresh computation.
type SampleFunc func() (names []string, values []int64)

// Sampler drives a Recorder on a fixed tick. Start/Stop are idempotent;
// Stop flushes so the capture ends at the last observed tick.
type Sampler struct {
	rec      *Recorder
	interval time.Duration
	sample   SampleFunc

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewSampler wires a sample function to a recorder. interval <= 0 takes
// DefaultInterval.
func NewSampler(rec *Recorder, interval time.Duration, sample SampleFunc) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Sampler{rec: rec, interval: interval, sample: sample}
}

// Start begins sampling. The first sample is taken immediately, so even
// a short-lived process leaves a capture.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.run(s.stop, s.done)
}

// Stop ends sampling and flushes the partial chunk.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	s.rec.Flush()
}

func (s *Sampler) run(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		names, values := s.sample()
		if len(names) > 0 {
			// A failed write (disk full, directory removed) must not take
			// the engine down with it: the recorder is best-effort by
			// design, and the next flush retries.
			_ = s.rec.Record(names, values)
		}
		select {
		case <-stop:
			return
		case <-tick.C:
		}
	}
}
