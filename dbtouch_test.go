package dbtouch

import (
	"strings"
	"testing"
	"time"
)

func identityInts(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

func openWithColumn(t *testing.T, n int, opts ...Option) (*DB, *Object) {
	t.Helper()
	db := Open(opts...)
	db.NewTable("t").Int("v", identityInts(n)).MustCreate()
	obj, err := db.NewColumnObject("t", "v", 2, 2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	return db, obj
}

func TestOpenAndSlide(t *testing.T) {
	db, obj := openWithColumn(t, 100000)
	obj.Summarize(Avg, 10)
	results := obj.Slide(2 * time.Second)
	if len(results) < 20 {
		t.Fatalf("results = %d", len(results))
	}
	if db.Now() < 2*time.Second {
		t.Fatalf("virtual time = %v after a 2s gesture", db.Now())
	}
	if db.TouchLatency().Count() == 0 {
		t.Fatal("latency histogram empty")
	}
	if len(db.Results()) != len(results) {
		t.Fatal("Results() should retain the whole latest gesture")
	}
}

func TestScanAggregateModes(t *testing.T) {
	_, obj := openWithColumn(t, 10000)
	obj.Scan()
	for _, r := range obj.Slide(time.Second) {
		if r.Kind != ScanValue {
			t.Fatalf("scan mode produced %v", r.Kind)
		}
	}
	obj.Aggregate(Max)
	results := obj.Slide(time.Second)
	if len(results) == 0 || results[len(results)-1].Kind != AggregateValue {
		t.Fatal("aggregate mode broken")
	}
}

func TestSlideUpReverses(t *testing.T) {
	_, obj := openWithColumn(t, 100000)
	obj.Scan()
	results := obj.SlideUp(time.Second)
	prev := 1 << 60
	for _, r := range results {
		if r.Kind != ScanValue {
			continue
		}
		if r.TupleID > prev {
			t.Fatalf("upward slide ids not decreasing: %d after %d", r.TupleID, prev)
		}
		prev = r.TupleID
	}
}

func TestTapFraction(t *testing.T) {
	_, obj := openWithColumn(t, 1000)
	results := obj.Tap(0.9)
	if len(results) != 1 {
		t.Fatalf("tap results = %v", results)
	}
	if results[0].TupleID < 800 {
		t.Fatalf("tap at 0.9 mapped to %d", results[0].TupleID)
	}
}

func TestWhereRejectsBadInput(t *testing.T) {
	_, obj := openWithColumn(t, 100)
	if err := obj.Where("missing", "=", 1); err == nil {
		t.Fatal("unknown column should error")
	}
	if err := obj.Where("v", "~", 1); err == nil {
		t.Fatal("unknown operator should error")
	}
	if err := obj.Where("v", ">=", 50); err != nil {
		t.Fatal(err)
	}
}

func TestZoomChangesFrame(t *testing.T) {
	_, obj := openWithColumn(t, 1000)
	_, _, _, h0 := obj.Frame()
	obj.ZoomIn(2)
	_, _, _, h1 := obj.Frame()
	if h1 <= h0 {
		t.Fatalf("zoom-in: %v -> %v", h0, h1)
	}
	obj.ZoomOut(2)
	_, _, _, h2 := obj.Frame()
	if h2 >= h1 {
		t.Fatalf("zoom-out: %v -> %v", h1, h2)
	}
	obj.MoveTo(5, 5)
	x, y, _, _ := obj.Frame()
	if x != 5 || y != 5 {
		t.Fatalf("MoveTo = (%v,%v)", x, y)
	}
}

func TestLoadCSV(t *testing.T) {
	db := Open()
	err := db.LoadCSV("m", strings.NewReader("a:INT,b:FLOAT\n1,2.5\n3,4.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "m" {
		t.Fatalf("tables = %v", got)
	}
	obj, err := db.NewColumnObject("m", "b", 2, 2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Rows() != 2 {
		t.Fatalf("rows = %d", obj.Rows())
	}
}

func TestNewColumnObjectErrors(t *testing.T) {
	db := Open()
	if _, err := db.NewColumnObject("missing", "v", 0, 0, 1, 1); err == nil {
		t.Fatal("missing table should error")
	}
	db.NewTable("t").Int("v", identityInts(10)).MustCreate()
	if _, err := db.NewColumnObject("t", "nope", 0, 0, 1, 1); err == nil {
		t.Fatal("missing column should error")
	}
}

func TestTableBuilderValidation(t *testing.T) {
	db := Open()
	err := db.NewTable("ragged").
		Int("a", identityInts(5)).
		Int("b", identityInts(6)).
		Create()
	if err == nil {
		t.Fatal("ragged table should error")
	}
}

func TestTableObjectAndProjection(t *testing.T) {
	db := Open()
	db.NewTable("t").
		Int("a", identityInts(1000)).
		Float("b", make([]float64, 1000)).
		MustCreate()
	table, err := db.NewTableObject("t", 2, 2, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	peeks := table.Tap(0.5)
	if len(peeks) != 1 || peeks[0].Kind != TuplePeek {
		t.Fatalf("table tap = %v", peeks)
	}
	col, err := db.ProjectColumnOut(table, "a", 8, 2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	col.Summarize(Avg, 5)
	if res := col.Slide(time.Second); len(res) == 0 {
		t.Fatal("projected column unusable")
	}
	if _, err := db.ProjectColumnOut(table, "zzz", 0, 0, 1, 1); err == nil {
		t.Fatal("projecting unknown column should error")
	}
}

func TestGroupByFacade(t *testing.T) {
	db := Open()
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = string(rune('a' + i%2))
	}
	db.NewTable("t").Int("v", identityInts(1000)).String("k", keys).MustCreate()
	obj, err := db.NewColumnObject("t", "v", 2, 2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.GroupBy("k", "v", Count); err != nil {
		t.Fatal(err)
	}
	results := obj.Slide(time.Second)
	saw := false
	for _, r := range results {
		if r.Kind == GroupValue {
			saw = true
		}
	}
	if !saw {
		t.Fatal("no group results")
	}
	if err := obj.GroupBy("zzz", "v", Count); err == nil {
		t.Fatal("bad group column should error")
	}
}

func TestJoinWithFacade(t *testing.T) {
	db := Open()
	db.NewTable("l").Int("x", identityInts(100)).MustCreate()
	db.NewTable("r").Int("y", identityInts(100)).MustCreate()
	lo, err := db.NewColumnObject("l", "x", 2, 2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := db.NewColumnObject("r", "y", 6, 2, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	lo.JoinWith(ro)
	r1 := lo.Slide(time.Second)
	r2 := ro.Slide(time.Second)
	matches := 0
	for _, r := range append(r1, r2...) {
		if r.Kind == JoinMatches {
			matches += len(r.Matches)
		}
	}
	if matches == 0 {
		t.Fatal("identical columns must join")
	}
}

func TestOptionsApply(t *testing.T) {
	db := Open(
		WithScreen(30, 40),
		WithUIOverhead(5*time.Millisecond),
		WithSamples(false),
		WithPrefetch(false),
		WithAdaptiveOptimizer(false),
		WithResponseBound(time.Millisecond),
		WithCachePolicy("none"),
	)
	cfg := db.Kernel().Config()
	if cfg.ScreenW != 30 || cfg.ScreenH != 40 {
		t.Fatal("screen option lost")
	}
	if cfg.UIOverhead != 5*time.Millisecond || cfg.UseSamples || cfg.Prefetch || cfg.AdaptiveOpt {
		t.Fatalf("options lost: %+v", cfg)
	}
	if cfg.ResponseBound != time.Millisecond {
		t.Fatal("response bound lost")
	}
}

func TestFasterDeviceProcessesMore(t *testing.T) {
	slowDB, slowObj := openWithColumn(t, 100000) // 65ms UI (iPad-1 class)
	fastDB, fastObj := openWithColumn(t, 100000, WithUIOverhead(10*time.Millisecond))
	slow := len(slowObj.Slide(2 * time.Second))
	fast := len(fastObj.Slide(2 * time.Second))
	if fast <= slow*2 {
		t.Fatalf("fast device %d entries vs slow %d; hardware should matter", fast, slow)
	}
	_, _ = slowDB, fastDB
}

func TestIdleAdvancesClock(t *testing.T) {
	db, _ := openWithColumn(t, 100)
	before := db.Now()
	db.Idle(3 * time.Second)
	if db.Now()-before != 3*time.Second {
		t.Fatalf("Idle advanced %v", db.Now()-before)
	}
}

func TestRotateQuarterOnColumn(t *testing.T) {
	_, obj := openWithColumn(t, 1000)
	obj.RotateQuarter()
	if obj.Inner().View().Rotation() == 0 {
		t.Fatal("rotation not applied")
	}
	if conv, _ := obj.Converting(); conv {
		t.Fatal("single column should not start conversion")
	}
}

func TestOnResultStreams(t *testing.T) {
	db, obj := openWithColumn(t, 10000)
	var n int
	db.OnResult(func(Result) { n++ })
	res := obj.Slide(time.Second)
	if n != len(res) {
		t.Fatalf("callback %d vs returned %d", n, len(res))
	}
}

// TestEvictedSessionHandleInert locks in the facade eviction contract: a
// handle whose session the manager evicted drops gestures instead of
// panicking or touching freed state.
func TestEvictedSessionHandleInert(t *testing.T) {
	db := Open()
	db.NewTable("t").Int("v", identityInts(10_000)).MustCreate()
	user, err := db.Session("u1")
	if err != nil {
		t.Fatal(err)
	}
	obj, err := user.NewColumnObject("t", "v", 2, 2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res := obj.Slide(500 * time.Millisecond); len(res) == 0 {
		t.Fatal("live session produced no results")
	}
	if !db.Manager().Evict("u1") {
		t.Fatal("Evict failed")
	}
	if res := obj.Slide(500 * time.Millisecond); res != nil {
		t.Fatalf("evicted handle still produced %d results", len(res))
	}
	user.Idle(time.Second) // must not panic
}
