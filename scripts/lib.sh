# lib.sh — shared helpers for the end-to-end smoke scripts: workspace
# setup with cleanup, dbtouch-serve lifecycle, readiness polling and an
# rpc helper. Source from a script living in scripts/:
#
#   . "$(dirname "$0")/lib.sh"
#   lib_init
#   serve_start -addr "$addr" -rows 100000
#   serve_wait "$addr"
#   rpc "$addr" '{"v":1,"op":"open","session":"ci"}'
#   serve_stop TERM
#
# lib_init creates $work (a temp dir, removed on exit) and cds to the
# repo root; serve_start builds the server once into $work and runs it
# with the given flags, logging to $work/serve-N.log; serve_stop sends a
# signal (default TERM) and waits. Any still-running server is killed -9
# by the EXIT trap, so a failing assertion never leaks a process.

set -euo pipefail

serve_pid=""
serve_pids=()
serve_log_n=0

lib_cleanup() {
  local p
  for p in ${serve_pids[@]+"${serve_pids[@]}"}; do
    kill -9 "$p" 2>/dev/null || true
  done
  [ -n "${work:-}" ] && rm -rf "$work"
}

# lib_init — temp workspace + cleanup trap, cwd at the repo root.
lib_init() {
  cd "$(dirname "$0")/.."
  work="$(mktemp -d)"
  trap lib_cleanup EXIT
}

# serve_start FLAGS... — build (once) and launch dbtouch-serve in the
# background with FLAGS, output to a fresh $serve_log. Sets $serve_pid
# (the just-started server) and appends to serve_pids, so fleet scripts
# can run several servers at once; every pid is killed -9 on exit.
serve_start() {
  if [ ! -x "$work/dbtouch-serve" ]; then
    go build -o "$work/dbtouch-serve" ./cmd/dbtouch-serve
  fi
  serve_log_n=$((serve_log_n + 1))
  serve_log="$work/serve-$serve_log_n.log"
  "$work/dbtouch-serve" "$@" >"$serve_log" 2>&1 &
  serve_pid=$!
  serve_pids+=("$serve_pid")
}

# gateway_start FLAGS... — build (once) and launch dbtouch-gateway, same
# lifecycle tracking as serve_start.
gateway_start() {
  if [ ! -x "$work/dbtouch-gateway" ]; then
    go build -o "$work/dbtouch-gateway" ./cmd/dbtouch-gateway
  fi
  serve_log_n=$((serve_log_n + 1))
  serve_log="$work/gateway-$serve_log_n.log"
  "$work/dbtouch-gateway" "$@" >"$serve_log" 2>&1 &
  serve_pid=$!
  serve_pids+=("$serve_pid")
}

# serve_wait ADDR [PID] — poll GET /healthz until it answers 200 "ready"
# (dbtouch-serve and dbtouch-gateway both serve it), dumping the process
# log on premature exit or timeout. PID defaults to the last-started
# process.
serve_wait() {
  local addr="$1" pid="${2:-$serve_pid}"
  for _ in $(seq 1 100); do
    if [ "$(curl -sf "http://$addr/healthz" 2>/dev/null)" = "ready" ]; then
      return 0
    fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "FAIL: server exited during startup" >&2
      cat "$serve_log" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "FAIL: server never became ready on $addr" >&2
  cat "$serve_log" >&2
  exit 1
}

# serve_stop [SIGNAL] [PID] — signal a server (default TERM to the
# last-started one) and wait for it.
serve_stop() {
  local sig="${1:-TERM}" pid="${2:-$serve_pid}"
  [ -n "$pid" ] || return 0
  kill "-$sig" "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  if [ "$pid" = "$serve_pid" ]; then serve_pid=""; fi
}

# serve_kill9 [PID] — kill -9, the crash the durability layer must
# survive.
serve_kill9() {
  local pid="${1:-$serve_pid}"
  [ -n "$pid" ] || return 0
  kill -9 "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true
  if [ "$pid" = "$serve_pid" ]; then serve_pid=""; fi
}

# rpc ADDR JSON — POST one request, print the raw response body.
rpc() {
  curl -sf -d "$2" "http://$1/rpc"
}
