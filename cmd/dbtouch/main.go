// Command dbtouch is the interactive demo: it loads a synthetic data set
// with a planted pattern, replays an exploration session of gestures, and
// renders the screen after each gesture the way the iPad prototype's
// display would look (objects as rectangles, results popping up in place
// and fading).
//
// Usage:
//
//	dbtouch                  # default session over 1M values
//	dbtouch -rows 100000 -pattern outliers -mode summary -k 10
//	dbtouch -csv data.csv -table readings -column temp
//	dbtouch -sessions 4      # four concurrent users over the same data
//	dbtouch -sessions 8 -workers 2   # eight users on a two-worker scheduler
//
// With -sessions, the closing report includes the work-stealing
// scheduler's state (workers, parked/runnable/running sessions, steals,
// queue depths); run dbtouch -help for the column key.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dbtouch"
	"dbtouch/internal/datagen"
	"dbtouch/internal/gesture"
	"dbtouch/internal/script"
	"dbtouch/internal/touchos"
	"dbtouch/internal/viz"
)

// statsColumnsHelp documents the -sessions report, column by column, so
// `dbtouch -help` explains everything the scheduler printout shows.
const statsColumnsHelp = `
With -sessions N > 1, the sessions run on the manager's bounded
work-stealing scheduler and the final report prints one line per
session plus a scheduler summary.

Session columns:
  session   session id
  state     sync     — never started; batches run on the caller
            parked   — started, queue empty, holding no goroutine
            runnable — queued batches, waiting in a worker deque
            running  — a pool worker is executing its batches
  queue     enqueued-but-unfinished event batches (backlog)
  lastUsed  manager dispatch tick at last use (lower = next LRU victim)

Scheduler summary fields:
  workers     pool size (default GOMAXPROCS; 0 = scheduler never started)
  parked/runnable/running
              started sessions partitioned by state at snapshot time
  steals      lifetime deque steals (work migrating between workers)
  dispatches  lifetime scheduler dispatches (one per session quantum)
  queued      total backlog across sessions (the admission-control gauge)
`

func main() {
	rows := flag.Int("rows", 1_000_000, "synthetic column length")
	pattern := flag.String("pattern", "outliers", "planted pattern: outliers, levelshift, spikes, trend, none")
	mode := flag.String("mode", "summary", "touch mode: scan, aggregate, summary")
	k := flag.Int("k", 10, "interactive summary half-window")
	csvPath := flag.String("csv", "", "load a CSV file instead of synthetic data")
	table := flag.String("table", "t", "table name (with -csv)")
	column := flag.String("column", "v", "column name (with -csv)")
	seed := flag.Int64("seed", 42, "data seed")
	scriptPath := flag.String("script", "", "run an exploration script (see internal/script) instead of the default session")
	sessions := flag.Int("sessions", 1, "run N concurrent exploration sessions over the shared data")
	workers := flag.Int("workers", 0, "scheduler pool size for -sessions (0 = GOMAXPROCS)")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintf(out, "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprint(out, statsColumnsHelp)
	}
	flag.Parse()

	db := dbtouch.Open()
	colName := *column
	tblName := *table
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := db.LoadCSV(tblName, f); err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
	} else {
		data := datagen.Floats(datagen.Spec{Dist: datagen.Uniform, N: *rows, Seed: *seed, Min: 0, Max: 1000})
		var planted string
		switch *pattern {
		case "outliers":
			p := datagen.Plant(data, datagen.OutlierRegion, 0.6, 0.03, *seed)
			planted = fmt.Sprintf("outlier region at tuples [%d, %d)", p.Start, p.End)
		case "levelshift":
			p := datagen.Plant(data, datagen.LevelShift, 0.55, 0.01, *seed)
			planted = fmt.Sprintf("level shift at tuple %d", p.Start)
		case "spikes":
			p := datagen.Plant(data, datagen.Spike, 0.3, 0.05, *seed)
			planted = fmt.Sprintf("spikes inside [%d, %d)", p.Start, p.End)
		case "trend":
			p := datagen.Plant(data, datagen.TrendRegion, 0.4, 0.1, *seed)
			planted = fmt.Sprintf("trend over [%d, %d)", p.Start, p.End)
		}
		db.NewTable(tblName).Float(colName, data).MustCreate()
		if planted != "" {
			fmt.Printf("(spoiler: %s — try to see it in the summaries)\n\n", planted)
		}
	}

	if *scriptPath != "" {
		f, err := os.Open(*scriptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		defer f.Close()
		commands, err := script.Parse(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		if err := script.NewRunner(db, os.Stdout).Run(commands); err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		return
	}

	if *sessions > 1 {
		multiUser(db, tblName, colName, *mode, *k, *sessions, *workers)
		return
	}

	obj, err := db.NewColumnObject(tblName, colName, 2, 2, 2, 10)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtouch:", err)
		os.Exit(1)
	}
	switch *mode {
	case "scan":
		obj.Scan()
	case "aggregate":
		obj.Aggregate(dbtouch.Avg)
	default:
		obj.Summarize(dbtouch.Avg, *k)
	}

	render := func(caption string) {
		fmt.Println("──", caption, "── virtual time", db.Now().Round(time.Millisecond))
		fmt.Print(viz.Render(db.Kernel().Screen(), db.Kernel().Objects(), db.Results(), db.Now()))
		fmt.Println()
	}

	fmt.Printf("Loaded %q.%s: %d tuples as a 2x10cm column object.\n\n", tblName, colName, obj.Rows())

	obj.Tap(0.5)
	render("tap mid-column: one value pops up")

	obj.Slide(2 * time.Second)
	render("2s slide top→bottom: results appear and fade as the finger moves")

	obj.ZoomIn(1.8)
	obj.MoveTo(2, 2)
	obj.Slide(3 * time.Second)
	render("zoom in, slide slower: finer granularity over the same data")

	obj.SlideRange(0.5, 0.7, 2*time.Second)
	render("drill into the lower-middle region")

	hist := db.TouchLatency()
	fmt.Printf("touches handled: %d   per-touch latency: %v\n",
		hist.Count(), hist)
	st := obj.Inner().Hierarchy().TotalStats()
	fmt.Printf("values read: %d (of %d total)   cold blocks: %d   bytes: %d\n",
		st.ValuesRead, obj.Rows(), st.ColdFetches, st.BytesRead)
}

// multiUser runs n concurrent exploration sessions over the shared
// table on the manager's bounded work-stealing scheduler: every user's
// slide is enqueued to their session, a fixed pool of workers executes
// the batches (stealing across deques, parking idle sessions), and each
// session's screen is rendered in turn. The column data and sample
// hierarchies are shared and immutable; screens, clocks and result logs
// are per session. Run dbtouch -help for the report's column key.
func multiUser(db *dbtouch.DB, tblName, colName, mode string, k, n, workers int) {
	mgr := db.Manager()
	if workers > 0 {
		if err := mgr.SetWorkers(workers); err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("%d concurrent sessions exploring %q.%s\n\n", n, tblName, colName)
	users := make([]*dbtouch.DB, n)
	frame := touchos.NewRect(2, 2, 2, 10)
	for i := range users {
		u, err := db.Session(fmt.Sprintf("user%d", i+1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		obj, err := u.NewColumnObject(tblName, colName, frame.Origin.X, frame.Origin.Y, frame.Size.W, frame.Size.H)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		switch mode {
		case "scan":
			obj.Scan()
		case "aggregate":
			obj.Aggregate(dbtouch.Avg)
		default:
			obj.Summarize(dbtouch.Avg, k)
		}
		users[i] = u
	}
	// Hand every session to the scheduler, then enqueue each user's
	// slide: user i sweeps the i-th n-quantile of the column, slower
	// users seeing finer granularity. The pool — not a goroutine per
	// session — executes the batches. The slide description synthesizes
	// through gesture.Gesture, the same trajectory math every other
	// driving path uses.
	var synth gesture.Synth
	for i, u := range users {
		s, _ := mgr.Get(u.SessionID())
		s.Start()
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		g := gesture.NewSlide(0, lo, hi, time.Duration(i+1)*time.Second)
		events, err := g.Synthesize(synth, frame, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		if _, err := mgr.Dispatch(u.SessionID(), events); err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
	}
	for _, u := range users {
		s, _ := mgr.Get(u.SessionID())
		s.Drain()
	}
	for _, u := range users {
		fmt.Printf("── %s ── virtual time %v\n", u.SessionID(), u.Now().Round(time.Millisecond))
		fmt.Print(viz.Render(u.Kernel().Screen(), u.Kernel().Objects(), u.Results(), u.Now()))
		fmt.Printf("touches handled: %d   results: %d\n\n",
			u.TouchLatency().Count(), len(u.Results()))
	}
	st := mgr.Stats()
	limit := "unlimited"
	if st.Max > 0 {
		limit = fmt.Sprint(st.Max)
	}
	fmt.Printf("── session manager ── %d live (cap %s), %d evicted\n", st.Live, limit, st.Evictions)
	fmt.Printf("── scheduler ── workers=%d parked=%d runnable=%d running=%d steals=%d dispatches=%d queued=%d\n",
		st.Workers, st.Parked, st.Runnable, st.Running, st.Steals, st.Dispatches, st.QueuedBatches)
	for _, s := range st.Sessions {
		fmt.Printf("  %-10s %-8s queue=%d lastUsed=%d\n", s.ID, s.State, s.QueueDepth, s.LastUsed)
	}
}
