package iomodel

import (
	"testing"
	"time"

	"dbtouch/internal/vclock"
)

func testParams() Params {
	return Params{BlockValues: 10, ColdLatency: time.Millisecond, WarmLatency: time.Microsecond, WarmBudget: 3}
}

func TestColdThenWarm(t *testing.T) {
	clock := vclock.New()
	tr := New(clock, testParams(), nil)
	first := tr.Access(5)
	if first != time.Millisecond+time.Microsecond {
		t.Fatalf("cold access cost = %v", first)
	}
	second := tr.Access(7) // same block (5/10 == 7/10)
	if second != time.Microsecond {
		t.Fatalf("warm access cost = %v", second)
	}
	if got := clock.Now(); got != first+second {
		t.Fatalf("clock = %v, want %v", got, first+second)
	}
	st := tr.Stats()
	if st.ColdFetches != 1 || st.WarmHits != 1 || st.ValuesRead != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAccessRange(t *testing.T) {
	clock := vclock.New()
	tr := New(clock, testParams(), nil)
	cost := tr.AccessRange(0, 25) // blocks 0,1,2 cold + 25 warm reads
	want := 3*time.Millisecond + 25*time.Microsecond
	if cost != want {
		t.Fatalf("range cost = %v, want %v", cost, want)
	}
}

func TestEvictionBudget(t *testing.T) {
	clock := vclock.New()
	tr := New(clock, testParams(), nil) // budget 3 blocks
	for b := 0; b < 5; b++ {
		tr.Access(b * 10)
	}
	if tr.WarmBlocks() != 3 {
		t.Fatalf("warm blocks = %d, want 3 (budget)", tr.WarmBlocks())
	}
	if tr.Stats().Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", tr.Stats().Evictions)
	}
	// LRU: blocks 0 and 1 evicted; 2,3,4 warm.
	if tr.IsWarm(0) || tr.IsWarm(10) {
		t.Fatal("oldest blocks should have been evicted")
	}
	if !tr.IsWarm(20) || !tr.IsWarm(30) || !tr.IsWarm(40) {
		t.Fatal("recent blocks should be warm")
	}
}

func TestPrefetchBlock(t *testing.T) {
	clock := vclock.New()
	tr := New(clock, testParams(), nil)
	used := tr.PrefetchBlock(0, 10*time.Millisecond)
	if used != time.Millisecond {
		t.Fatalf("prefetch cost = %v", used)
	}
	if clock.Now() != 0 {
		t.Fatal("prefetch must not advance the clock (background work)")
	}
	if !tr.IsWarm(5) {
		t.Fatal("block should be warm after prefetch")
	}
	// Insufficient budget is a no-op.
	if used := tr.PrefetchBlock(100, time.Microsecond); used != 0 {
		t.Fatalf("underfunded prefetch cost = %v, want 0", used)
	}
	// Already-warm block costs nothing.
	if used := tr.PrefetchBlock(3, 10*time.Millisecond); used != 0 {
		t.Fatalf("warm prefetch cost = %v, want 0", used)
	}
	if got := tr.Stats().Prefetched; got != 1 {
		t.Fatalf("prefetched = %d, want 1", got)
	}
}

func TestPrefetchRangeBudget(t *testing.T) {
	clock := vclock.New()
	tr := New(clock, testParams(), nil)
	// Budget for exactly two cold blocks.
	used, frontier := tr.PrefetchRange(0, 100, 2*time.Millisecond)
	if used != 2*time.Millisecond {
		t.Fatalf("used = %v, want 2ms", used)
	}
	if !tr.IsWarm(0) || !tr.IsWarm(10) || tr.IsWarm(20) {
		t.Fatal("exactly the first two blocks should be warm")
	}
	if frontier != 20 {
		t.Fatalf("frontier = %d, want 20 (first unprocessed value)", frontier)
	}
	// A later call resumes from the frontier and skips warm blocks free.
	used, frontier = tr.PrefetchRange(0, 100, 2*time.Millisecond)
	if used != 2*time.Millisecond || frontier != 40 {
		t.Fatalf("resume used=%v frontier=%d, want 2ms/40", used, frontier)
	}
}

func TestCool(t *testing.T) {
	clock := vclock.New()
	tr := New(clock, testParams(), nil)
	tr.Access(0)
	tr.Cool()
	if tr.WarmBlocks() != 0 {
		t.Fatal("Cool should drop all warmth")
	}
	cost := tr.Access(0)
	if cost != time.Millisecond+time.Microsecond {
		t.Fatalf("post-Cool access should be cold, got %v", cost)
	}
}

func TestResetStats(t *testing.T) {
	clock := vclock.New()
	tr := New(clock, testParams(), nil)
	tr.Access(0)
	tr.ResetStats()
	if tr.Stats() != (Stats{}) {
		t.Fatalf("stats after reset = %+v", tr.Stats())
	}
	if !tr.IsWarm(0) {
		t.Fatal("ResetStats must keep warmth")
	}
}

func TestZeroBlockValuesClamped(t *testing.T) {
	clock := vclock.New()
	tr := New(clock, Params{BlockValues: 0, ColdLatency: time.Millisecond}, nil)
	tr.Access(3) // must not divide by zero
	if tr.Block(3) != 3 {
		t.Fatalf("block size should clamp to 1, Block(3)=%d", tr.Block(3))
	}
}

func TestBytesReadAccounting(t *testing.T) {
	clock := vclock.New()
	p := testParams()
	tr := New(clock, p, nil)
	tr.Access(0)
	tr.Access(1)
	want := int64(p.BlockValues) * 8
	if got := tr.Stats().BytesRead; got != want {
		t.Fatalf("BytesRead = %d, want %d (one block)", got, want)
	}
}

func TestUnlimitedBudgetNeverEvicts(t *testing.T) {
	clock := vclock.New()
	p := testParams()
	p.WarmBudget = 0
	tr := New(clock, p, nil)
	for b := 0; b < 100; b++ {
		tr.Access(b * 10)
	}
	if tr.Stats().Evictions != 0 {
		t.Fatal("unlimited budget should never evict")
	}
	if tr.WarmBlocks() != 100 {
		t.Fatalf("warm blocks = %d", tr.WarmBlocks())
	}
}

func TestAccessRangeMatchesScalarLoop(t *testing.T) {
	// Block-granular ranged charging must match a per-value Access loop
	// in total cost, stats, and warm state.
	scalarClock, rangedClock := vclock.New(), vclock.New()
	scalar := New(scalarClock, testParams(), nil)
	ranged := New(rangedClock, testParams(), nil)
	var scalarCost time.Duration
	for i := 3; i < 28; i++ {
		scalarCost += scalar.Access(i)
	}
	rangedCost := ranged.AccessRange(3, 28)
	if scalarCost != rangedCost {
		t.Fatalf("costs diverge: scalar %v ranged %v", scalarCost, rangedCost)
	}
	if scalar.Stats() != ranged.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", scalar.Stats(), ranged.Stats())
	}
	if scalar.WarmBlocks() != ranged.WarmBlocks() {
		t.Fatal("warm state diverges")
	}
	if scalarClock.Now() != rangedClock.Now() {
		t.Fatal("clocks diverge")
	}
	// Re-reading warm data stays equivalent.
	if scalar.Access(5) != func() time.Duration { return ranged.AccessRange(5, 6) }() {
		t.Fatal("warm re-read diverges")
	}
}

func TestAccessRangeEmpty(t *testing.T) {
	tr := New(vclock.New(), testParams(), nil)
	if tr.AccessRange(7, 7) != 0 || tr.AccessRange(9, 2) != 0 {
		t.Fatal("empty range should be free")
	}
	if tr.Stats().ValuesRead != 0 {
		t.Fatal("empty range charged values")
	}
}

func TestAccessStridedMatchesScalarLoop(t *testing.T) {
	scalar := New(vclock.New(), testParams(), nil)
	ranged := New(vclock.New(), testParams(), nil)
	var scalarCost time.Duration
	for i := 2; i < 40; i += 3 {
		scalarCost += scalar.Access(i)
	}
	if got := ranged.AccessStrided(2, 40, 3); got != scalarCost {
		t.Fatalf("strided cost = %v, want %v", got, scalarCost)
	}
	if scalar.Stats() != ranged.Stats() {
		t.Fatalf("strided stats diverge: %+v vs %+v", scalar.Stats(), ranged.Stats())
	}
	if tr := New(vclock.New(), testParams(), nil); tr.AccessStrided(0, 10, 0) != 0 {
		t.Fatal("zero stride should be free")
	}
}

func TestAccessCountMatchesScalarLoop(t *testing.T) {
	scalar := New(vclock.New(), testParams(), nil)
	counted := New(vclock.New(), testParams(), nil)
	// k reads within one block: same cost, stats and clock as k Access
	// calls to positions of that block.
	var scalarCost time.Duration
	for i := 0; i < 7; i++ {
		scalarCost += scalar.Access(20 + i)
	}
	if got := counted.AccessCount(23, 7); got != scalarCost {
		t.Fatalf("AccessCount cost = %v, want %v", got, scalarCost)
	}
	if scalar.Stats() != counted.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", scalar.Stats(), counted.Stats())
	}
	// Second charge hits the now-warm block.
	scalarCost = scalar.Access(25)
	if got := counted.AccessCount(25, 1); got != scalarCost {
		t.Fatalf("warm AccessCount cost = %v, want %v", got, scalarCost)
	}
	if counted.AccessCount(5, 0) != 0 || counted.AccessCount(5, -3) != 0 {
		t.Fatal("non-positive count should be free")
	}
}
