//go:build arm64 && !purego

package storage

import (
	"math"

	"dbtouch/internal/storage/cpu"
)

// NEON dispatch (arm64). Only the sum and fused filter+sum kernels have
// assembly bodies here: those are the two hottest loops, they need only
// VADD/CMGT/logic ops, and the port stays small enough to audit by
// decode (this tree is developed on amd64, so the arm64 kernels are
// assemble- and objdump-verified rather than benchmarked in CI — keep
// them conservative). Min/max, full aggregate and compare+compress take
// the pure-Go kernels, which the gc compiler already keeps branch-free.
var (
	simdSum       = cpu.ARM64.HasASIMD && !raceEnabled
	simdFilterSum = cpu.ARM64.HasASIMD && !raceEnabled
	simdMinMax    = false
	simdFilterAgg = false
	simdCompress  = false
)

// simdAvailable reports whether this build+host can run the SIMD
// kernels at all (used by the paired scalar/SIMD benchmarks).
func simdAvailable() bool { return cpu.ARM64.HasASIMD && !raceEnabled }

// setSIMD forces the implemented dispatch flags on or off for the
// paired benchmarks and returns a restore func. Flags with no arm64
// assembly stay false either way.
func setSIMD(on bool) (restore func()) {
	oldSum, oldFS := simdSum, simdFilterSum
	set := on && simdAvailable()
	simdSum, simdFilterSum = set, set
	return func() {
		simdSum, simdFilterSum = oldSum, oldFS
	}
}

// Assembly kernels (simd_arm64.s). neonSumInt64 needs len(v) % 8 == 0,
// neonFilterSumInt64 len(v) % 4 == 0, both with len(v) > 0.

//go:noescape
func neonSumInt64(v []int64) int64

//go:noescape
func neonFilterSumInt64(v []int64, lo, hi int64, kxor uint64) (cnt, isum int64)

// simdSumInt64 sums v exactly (wrapping int64 addition is associative,
// so the vector lane order is bit-identical to the scalar loop).
func simdSumInt64(v []int64) int64 {
	n := len(v) &^ 7
	var s int64
	if n > 0 {
		s = neonSumInt64(v[:n])
	}
	for _, x := range v[n:] {
		s += x
	}
	return s
}

// simdFilterSumInt64 counts and sums the values passing p.
func simdFilterSumInt64(v []int64, p intPred) (cnt int, isum int64) {
	n := len(v) &^ 3
	if n > 0 {
		c, s := neonFilterSumInt64(v[:n], p.lo, p.hi, kxorFor(p))
		cnt, isum = int(c), s
	}
	for _, x := range v[n:] {
		q := p.test(x)
		cnt += q
		isum += x & int64(-q)
	}
	return cnt, isum
}

// kxorFor converts intPred.neg to the mask the asm XORs the fail mask
// with: all-ones complements it into the pass mask (neg == 0), zero
// keeps it (neg == 1, RangeNe's complemented interval).
func kxorFor(p intPred) uint64 {
	if p.neg != 0 {
		return 0
	}
	return ^uint64(0)
}

// The kernels below have no arm64 assembly; their flags are false and
// these scalar bodies exist only to keep the shared dispatch seams
// compiling (and correct, were they ever called).

func simdMinMaxInt64(v []int64) (mn, mx int64) {
	mn, mx = math.MaxInt64, math.MinInt64
	for _, x := range v {
		mn = min(mn, x)
		mx = max(mx, x)
	}
	return mn, mx
}

func simdMinMaxFloat64(v []float64) (mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if x < mn {
			mn = x
		}
		if x > mx {
			mx = x
		}
	}
	return mn, mx
}

func simdFilterAggInt64(v []int64, p intPred) filterAggInt {
	f := newFilterAggInt()
	for _, x := range v {
		f.absorb(x, p.test(x))
	}
	return f
}

func simdCompressInt64(v []int64, p intPred, base int, buf []int32) int {
	j := 0
	for i, x := range v {
		buf[j] = int32(base + i)
		j += p.test(x)
	}
	return j
}

func simdCompressFloat64(v []float64, b float64, wLt, wGt, wEq int, base int, buf []int32) int {
	j := 0
	for i, x := range v {
		buf[j] = int32(base + i)
		j += passFloat(x, b, wLt, wGt, wEq)
	}
	return j
}
