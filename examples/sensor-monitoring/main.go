// Sensor monitoring: the paper's IT-analyst scenario — "a data analyst of
// an IT business browses daily data of monitoring streams to figure out
// user behavior patterns".
//
// A day of per-second latency measurements hides an hour-long incident.
// The session shows the full exploration loop: coarse pass → spot the
// anomaly → zoom in → slow slide for detail → WHERE filter to isolate
// the bad host.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"dbtouch"
)

func main() {
	const secondsPerDay = 86_400
	rng := rand.New(rand.NewSource(7))

	latency := make([]float64, secondsPerDay)
	host := make([]string, secondsPerDay)
	hosts := []string{"web-1", "web-2", "web-3", "db-1"}
	incidentStart := 15 * 3600          // 15:00
	incidentEnd := incidentStart + 3600 // one bad hour
	for i := range latency {
		latency[i] = 20 + rng.Float64()*10 // healthy: 20-30ms
		host[i] = hosts[rng.Intn(len(hosts))]
		if i >= incidentStart && i < incidentEnd && host[i] == "db-1" {
			latency[i] += 400 // db-1 melting down for an hour
		}
	}

	db := dbtouch.Open()
	db.NewTable("monitoring").
		Float("latency_ms", latency).
		String("host", host).
		MustCreate()

	obj, err := db.NewColumnObject("monitoring", "latency_ms", 2, 2, 2, 10)
	if err != nil {
		panic(err)
	}
	obj.Summarize(dbtouch.Max, 50) // max over ~100s windows surfaces spikes

	// Pass 1: a quick 2-second sweep over the whole day.
	fmt.Println("pass 1: fast sweep over 24h of data")
	results := obj.Slide(2 * time.Second)
	worst, worstAt := 0.0, 0
	for _, r := range results {
		if r.Agg > worst {
			worst, worstAt = r.Agg, r.TupleID
		}
	}
	fmt.Printf("  %d summaries; worst max=%.0fms around second %d (%s)\n\n",
		len(results), worst, worstAt, clock(worstAt))

	// Pass 2: zoom in (bigger object = finer granularity) and slide
	// slowly over the suspicious region.
	fmt.Println("pass 2: zoom in and drill into the region around the spike")
	obj.ZoomIn(2)
	obj.MoveTo(2, 2)
	frac := float64(worstAt) / float64(secondsPerDay)
	results = obj.SlideRange(frac-0.03, frac+0.03, 3*time.Second)
	var lo, hi int
	first := true
	for _, r := range results {
		if r.Agg > 200 {
			if first {
				lo, first = r.WindowLo, false
			}
			hi = r.WindowHi
		}
	}
	fmt.Printf("  incident bounded to seconds [%d, %d] ≈ %s-%s (truth: %s-%s)\n\n",
		lo, hi, clock(lo), clock(hi), clock(incidentStart), clock(incidentEnd))

	// Pass 3: same region but restricted to one host at a time — the
	// WHERE-filtered slide of §2.9. Scan mode reveals the raw value of
	// each touched tuple that passes the filter, so every reading belongs
	// to the probed host.
	fmt.Println("pass 3: which host? filtered scans over the incident window")
	for _, h := range hosts {
		probe, err := db.NewColumnObject("monitoring", "latency_ms", 6, 2, 2, 10)
		if err != nil {
			panic(err)
		}
		probe.Scan()
		if err := probe.Where("host", "=", h); err != nil {
			panic(err)
		}
		res := probe.SlideRange(frac-0.05, frac+0.05, 4*time.Second)
		worst := 0.0
		seen := 0
		for _, r := range res {
			if r.Kind != dbtouch.ScanValue {
				continue
			}
			seen++
			if v := r.Value.AsFloat(); v > worst {
				worst = v
			}
		}
		verdict := "healthy"
		if worst > 200 {
			verdict = "GUILTY"
		}
		fmt.Printf("  %-6s readings=%2d worst=%6.0fms  %s\n", h, seen, worst, verdict)
	}

	fmt.Printf("\nwhole session: %v of virtual time, %d touches, no SQL written\n",
		db.Now().Round(time.Millisecond), db.TouchLatency().Count())
}

func clock(second int) string {
	return fmt.Sprintf("%02d:%02d", second/3600, (second%3600)/60)
}
