// Package metrics provides the lightweight instrumentation the benchmark
// harness reports: latency histograms (per-touch response times), counters
// and labeled series that print as the rows/curves of the paper's figures.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Histogram buckets durations in powers of two from 1µs to ~1m, plus
// under/overflow buckets, and tracks exact sum/count/min/max.
type Histogram struct {
	buckets [28]int64
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h.count == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.count++
	h.sum += d
	h.buckets[bucketFor(d)]++
}

func bucketFor(d time.Duration) int {
	if d < time.Microsecond {
		return 0
	}
	b := int(math.Log2(float64(d)/float64(time.Microsecond))) + 1
	if b < 0 {
		b = 0
	}
	if b >= len(Histogram{}.bucketsArray()) {
		b = len(Histogram{}.bucketsArray()) - 1
	}
	return b
}

func (h Histogram) bucketsArray() []int64 { return h.buckets[:] }

// Count reports observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean reports the average duration (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min reports the smallest observation.
func (h *Histogram) Min() time.Duration { return h.min }

// Max reports the largest observation.
func (h *Histogram) Max() time.Duration { return h.max }

// Sum reports the total of all observations.
func (h *Histogram) Sum() time.Duration { return h.sum }

// Quantile approximates the q-quantile (0 < q <= 1) from the buckets,
// returning the upper bound of the bucket containing the quantile.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return time.Microsecond
			}
			return time.Duration(float64(time.Microsecond) * math.Pow(2, float64(i)))
		}
	}
	return h.max
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v min=%v max=%v",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.min, h.max)
}

// Point is one (x, y) observation of a series.
type Point struct {
	X float64
	Y float64
	// Label optionally annotates the point (e.g. a policy name).
	Label string
}

// Series is a labeled sequence of points — one curve of a figure.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// AddLabeled appends an annotated point.
func (s *Series) AddLabeled(x, y float64, label string) {
	s.Points = append(s.Points, Point{X: x, Y: y, Label: label})
}

// Fprint renders the series as an aligned two-column table.
func (s *Series) Fprint(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", s.Name)
	x, y := s.XLabel, s.YLabel
	if x == "" {
		x = "x"
	}
	if y == "" {
		y = "y"
	}
	fmt.Fprintf(w, "%-24s %-16s\n", x, y)
	for _, p := range s.Points {
		label := ""
		if p.Label != "" {
			label = "  # " + p.Label
		}
		fmt.Fprintf(w, "%-24.4g %-16.4g%s\n", p.X, p.Y, label)
	}
}

// Table accumulates rows for aligned text output (benchmark tables).
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, hdr := range t.Header {
		widths[i] = len(hdr)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Counters is a named counter set with deterministic printing order.
type Counters struct {
	values map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{values: make(map[string]int64)} }

// Add increments name by delta.
func (c *Counters) Add(name string, delta int64) { c.values[name] += delta }

// Get reads a counter.
func (c *Counters) Get(name string) int64 { return c.values[name] }

// Names returns counter names sorted.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.values))
	for n := range c.values {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fprint renders all counters.
func (c *Counters) Fprint(w io.Writer) {
	for _, n := range c.Names() {
		fmt.Fprintf(w, "%-32s %d\n", n, c.values[n])
	}
}
