// Package index provides per-sample-level sorted indexes (paper §2.6
// "Indexing"): dbTouch "can maintain a separate index for each sample
// level, treating each copy separately". An index turns the slide gesture
// into an index scan — sliding maps screen position to *rank* in value
// order instead of position in storage order — and supports value-range
// lookups for predicates. Indexes build lazily on first use so untouched
// levels cost nothing, in the spirit of adaptive indexing.
package index

import (
	"fmt"
	"sort"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
)

// Sorted is a value-ordered permutation of one column (one sample level).
type Sorted struct {
	col *storage.Column
	// perm[rank] = position of the rank-th smallest value.
	perm []int
	// built tracks lazy construction.
	built bool
}

// New returns an unbuilt index over col.
func New(col *storage.Column) *Sorted {
	return &Sorted{col: col}
}

// Built reports whether the index has been materialized.
func (s *Sorted) Built() bool { return s.built }

// Build materializes the index, charging one read per value to tracker
// plus O(n log n) comparisons at warm-read cost (sorting is in-memory
// work over data already fetched).
func (s *Sorted) Build(tracker *iomodel.Tracker) {
	if s.built {
		return
	}
	n := s.col.Len()
	s.perm = make([]int, n)
	for i := range s.perm {
		s.perm[i] = i
		if tracker != nil {
			tracker.Access(i)
		}
	}
	col := s.col
	sort.SliceStable(s.perm, func(a, b int) bool {
		return col.Float(s.perm[a]) < col.Float(s.perm[b])
	})
	s.built = true
}

// Len reports the indexed value count.
func (s *Sorted) Len() int { return s.col.Len() }

// PositionOfRank returns the storage position holding the rank-th
// smallest value. The index must be built.
func (s *Sorted) PositionOfRank(rank int) (int, error) {
	if !s.built {
		return 0, fmt.Errorf("index: not built")
	}
	if rank < 0 || rank >= len(s.perm) {
		return 0, fmt.Errorf("index: rank %d out of range [0,%d)", rank, len(s.perm))
	}
	return s.perm[rank], nil
}

// ValueAtRank reads the rank-th smallest value, charging the read.
func (s *Sorted) ValueAtRank(rank int, tracker *iomodel.Tracker) (float64, int, error) {
	pos, err := s.PositionOfRank(rank)
	if err != nil {
		return 0, 0, err
	}
	if tracker != nil {
		tracker.Access(pos)
	}
	return s.col.Float(pos), pos, nil
}

// RankOf returns the smallest rank whose value is >= v (a lower bound),
// in [0, Len()]. Binary search touches O(log n) values.
func (s *Sorted) RankOf(v float64, tracker *iomodel.Tracker) (int, error) {
	if !s.built {
		return 0, fmt.Errorf("index: not built")
	}
	lo := sort.Search(len(s.perm), func(i int) bool {
		if tracker != nil {
			tracker.Access(s.perm[i])
		}
		return s.col.Float(s.perm[i]) >= v
	})
	return lo, nil
}

// Range returns the storage positions of all values in [lo, hi],
// charging the binary searches plus one read per emitted position.
func (s *Sorted) Range(lo, hi float64, tracker *iomodel.Tracker) ([]int, error) {
	if !s.built {
		return nil, fmt.Errorf("index: not built")
	}
	if hi < lo {
		return nil, nil
	}
	from, err := s.RankOf(lo, tracker)
	if err != nil {
		return nil, err
	}
	out := []int{}
	for r := from; r < len(s.perm); r++ {
		pos := s.perm[r]
		if tracker != nil {
			tracker.Access(pos)
		}
		if s.col.Float(pos) > hi {
			break
		}
		out = append(out, pos)
	}
	return out, nil
}

// AddRankRange feeds the values at ranks [lo, hi) into add in rank order,
// charging one read per rank, and reports how many values were fed — the
// span kernel for value-order slides (one call per rank window instead of
// a ValueAtRank round trip per rank). Ranks clamp to [0, Len()).
func (s *Sorted) AddRankRange(lo, hi int, tracker *iomodel.Tracker, add func(float64)) int {
	if !s.built {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.perm) {
		hi = len(s.perm)
	}
	for r := lo; r < hi; r++ {
		pos := s.perm[r]
		if tracker != nil {
			tracker.Access(pos)
		}
		add(s.col.Float(pos))
	}
	if hi < lo {
		return 0
	}
	return hi - lo
}

// Registry lazily builds and caches one Sorted per sample level.
type Registry struct {
	indexes map[int]*Sorted
	builds  int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{indexes: make(map[int]*Sorted)}
}

// For returns the index for level, building it on first use against col
// and charging construction to tracker.
func (r *Registry) For(level int, col *storage.Column, tracker *iomodel.Tracker) *Sorted {
	idx, ok := r.indexes[level]
	if !ok {
		idx = New(col)
		r.indexes[level] = idx
	}
	if !idx.Built() {
		idx.Build(tracker)
		r.builds++
	}
	return idx
}

// Builds reports how many lazy builds have run.
func (r *Registry) Builds() int { return r.builds }
