package session_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"dbtouch"
	"dbtouch/internal/gesture"
	"dbtouch/internal/protocol"
	"dbtouch/internal/sessionlog"
)

// Resume-path behavior around the crash-equivalence core: the facade
// handle lifecycle, the typed failure modes, and the gauges.

// TestEvictedFacadeResume (the evicted-facade satellite): a facade
// handle whose session the manager evicted goes inert; db.Resume
// re-materializes the session and hands back a live replacement whose
// stream continues exactly where the old one stopped, matching a
// never-evicted control run.
func TestEvictedFacadeResume(t *testing.T) {
	const seed, sid = 11, "crash-11"
	reqs := wireRequests(t, seed, sid)
	cut := len(reqs) / 2

	ctrlDB, ctrlStore := newDurableInstance(t, t.TempDir())
	defer ctrlStore.Close()
	defer ctrlDB.Manager().Close()
	var control [][]byte
	feed(t, ctrlDB.Manager(), reqs, &control)

	db, store := newDurableInstance(t, t.TempDir())
	defer store.Close()
	defer db.Manager().Close()
	var got [][]byte
	feed(t, db.Manager(), reqs[:cut], &got)

	// Attach a facade handle onto the live wire session: Resume on a
	// live session is a no-op attach.
	h, err := db.Resume(sid)
	if err != nil {
		t.Fatal(err)
	}
	if h.SessionID() != sid {
		t.Fatalf("handle bound to %q, want %q", h.SessionID(), sid)
	}

	if !db.Manager().Evict(sid) {
		t.Fatal("evict failed")
	}
	// The old handle is inert now: gestures are dropped, not errors.
	if res, err := h.Perform(gesture.NewTap(1, 0.5)); err != nil || res != nil {
		t.Fatalf("evicted handle: got (%v, %v), want inert (nil, nil)", res, err)
	}

	h2, err := db.Resume(sid)
	if err != nil {
		t.Fatal(err)
	}
	if h2.SessionID() != sid {
		t.Fatalf("resumed handle bound to %q", h2.SessionID())
	}
	// The replacement handle is live: its subscription sees the frames
	// of every post-resume request.
	stream := h2.Subscribe(1 << 16)
	defer stream.Close()
	feed(t, db.Manager(), reqs[cut:], &got)
	assertStreams(t, control, got, "evicted facade resume")
	if _, ok := stream.TryNext(); !ok {
		t.Fatal("resumed handle's subscription saw no frames")
	}
}

// TestResumeGauges pins the observability contract: logged requests,
// resumes and replayed counts flow through Stats and the wire
// StatsFrame.
func TestResumeGauges(t *testing.T) {
	const seed, sid = 13, "crash-13"
	reqs := wireRequests(t, seed, sid)
	// A second script into the same session (minus its open) pushes the
	// log tail past the store's compaction threshold.
	reqs = append(reqs, wireRequests(t, seed+1, sid)[1:]...)

	db, store := newDurableInstance(t, t.TempDir())
	defer store.Close()
	defer db.Manager().Close()
	var got [][]byte
	feed(t, db.Manager(), reqs, &got)

	st := db.Manager().Stats()
	if st.LoggedRequests != int64(len(reqs)) {
		t.Fatalf("LoggedRequests = %d, want %d", st.LoggedRequests, len(reqs))
	}
	if st.LogErrors != 0 {
		t.Fatalf("LogErrors = %d, want 0", st.LogErrors)
	}
	if st.LogCompactions == 0 {
		t.Fatal("no compactions despite the tiny CompactBytes threshold")
	}
	if st.Resumes != 0 || st.ReplayedRequests != 0 {
		t.Fatalf("resume gauges non-zero before any resume: %+v", st)
	}

	db.Manager().Evict(sid)
	if n := resume(t, db, sid); n != len(reqs) {
		t.Fatalf("replayed %d, want %d", n, len(reqs))
	}
	resp := db.Manager().HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpStats})
	if !resp.OK || resp.Stats == nil {
		t.Fatalf("stats: %s", resp.Error)
	}
	if resp.Stats.Resumes != 1 || resp.Stats.ReplayedRequests != int64(len(reqs)) {
		t.Fatalf("wire stats resumes=%d replayed=%d, want 1/%d",
			resp.Stats.Resumes, resp.Stats.ReplayedRequests, len(reqs))
	}
	// Replayed requests are served from the log, not re-teed into it.
	if resp.Stats.LoggedRequests != int64(len(reqs)) {
		t.Fatalf("replay re-logged: LoggedRequests = %d, want %d",
			resp.Stats.LoggedRequests, len(reqs))
	}
}

// TestResumeFailureModes pins the typed failures: no durability, no
// log (Gone), wire-evicted session (history forgotten, Gone), and a
// log corrupted beyond its tail (ErrTornLog, never a partial session).
func TestResumeFailureModes(t *testing.T) {
	t.Run("disabled", func(t *testing.T) {
		db := dbtouch.Open()
		defer db.Manager().Close()
		resp := db.Manager().HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpResume, Session: "x"})
		if resp.OK || resp.Gone {
			t.Fatalf("want plain failure without durability, got %+v", resp)
		}
	})

	t.Run("no log", func(t *testing.T) {
		db, store := newDurableInstance(t, t.TempDir())
		defer store.Close()
		defer db.Manager().Close()
		resp := db.Manager().HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpResume, Session: "never-existed"})
		if resp.OK || !resp.Gone {
			t.Fatalf("want Gone failure for unknown session, got %+v", resp)
		}
		if _, err := db.Manager().Resume("never-existed"); !errors.Is(err, sessionlog.ErrNoLog) {
			t.Fatalf("err = %v, want ErrNoLog", err)
		}
	})

	t.Run("wire evict forgets history", func(t *testing.T) {
		const sid = "crash-17"
		db, store := newDurableInstance(t, t.TempDir())
		defer store.Close()
		defer db.Manager().Close()
		var got [][]byte
		feed(t, db.Manager(), wireRequests(t, 17, sid), &got)
		resp := db.Manager().HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpEvict, Session: sid})
		if !resp.OK {
			t.Fatalf("evict: %s", resp.Error)
		}
		resp = db.Manager().HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpResume, Session: sid})
		if resp.OK || !resp.Gone {
			t.Fatalf("resume after wire evict: want Gone failure, got %+v", resp)
		}
	})

	t.Run("mid-log corruption", func(t *testing.T) {
		const sid = "crash-19"
		dir := t.TempDir()
		db, store := newDurableInstance(t, dir)
		var got [][]byte
		feed(t, db.Manager(), wireRequests(t, 19, sid), &got)
		db.Manager().Evict(sid)
		store.Close()
		db.Manager().Close()

		// Flip a byte well inside the log: damage that truncation cannot
		// explain must surface as ErrTornLog, never a partial replay.
		logPath := filepath.Join(dir, "s-"+sid+".log")
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 64 {
			t.Fatalf("log only %d bytes; session log never compacted tail?", len(data))
		}
		data[20] ^= 0xFF
		if err := os.WriteFile(logPath, data, 0o644); err != nil {
			t.Fatal(err)
		}

		db2, store2 := newDurableInstance(t, dir)
		defer store2.Close()
		defer db2.Manager().Close()
		if _, err := db2.Manager().Resume(sid); !errors.Is(err, sessionlog.ErrTornLog) {
			t.Fatalf("err = %v, want ErrTornLog", err)
		}
		// Never partial-batch state: the failed resume left no session.
		if _, ok := db2.Manager().Get(sid); ok {
			t.Fatal("failed resume left a partially replayed session live")
		}
	})
}

// TestOpenResetsHistory: re-opening an id whose predecessor died (and
// was never resumed) starts a fresh log — resume afterwards replays
// only the new incarnation.
func TestOpenResetsHistory(t *testing.T) {
	const sid = "reborn"
	dir := t.TempDir()
	db, store := newDurableInstance(t, dir)
	defer store.Close()
	defer db.Manager().Close()
	m := db.Manager()

	var got [][]byte
	feed(t, m, wireRequests(t, 23, sid), &got)
	m.Evict(sid)

	// Second incarnation: open succeeds because the session is not live,
	// and wipes the predecessor's history.
	open := protocol.Request{V: protocol.Version, Op: protocol.OpOpen, Session: sid}
	if resp := m.HandleRequest(open); !resp.OK {
		t.Fatalf("reopen: %s", resp.Error)
	}
	if resp := m.HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpIdle, Session: sid, Idle: 1e9}); !resp.OK {
		t.Fatalf("idle: %s", resp.Error)
	}
	m.Evict(sid)
	if n := resume(t, db, sid); n != 2 {
		t.Fatalf("replayed %d requests, want 2 (open + idle of the new incarnation)", n)
	}
}

// TestResumableSessions lists parked histories.
func TestResumableSessions(t *testing.T) {
	db, store := newDurableInstance(t, t.TempDir())
	defer store.Close()
	defer db.Manager().Close()
	m := db.Manager()
	for _, sid := range []string{"b", "a"} {
		if resp := m.HandleRequest(protocol.Request{V: protocol.Version, Op: protocol.OpOpen, Session: sid}); !resp.OK {
			t.Fatalf("open %s: %s", sid, resp.Error)
		}
	}
	m.Evict("a")
	got := m.ResumableSessions()
	want := fmt.Sprint([]string{"a", "b"})
	if fmt.Sprint(got) != want {
		t.Fatalf("ResumableSessions = %v, want %s", got, want)
	}
}
