# lib.sh — shared helpers for the end-to-end smoke scripts: workspace
# setup with cleanup, dbtouch-serve lifecycle, readiness polling and an
# rpc helper. Source from a script living in scripts/:
#
#   . "$(dirname "$0")/lib.sh"
#   lib_init
#   serve_start -addr "$addr" -rows 100000
#   serve_wait "$addr"
#   rpc "$addr" '{"v":1,"op":"open","session":"ci"}'
#   serve_stop TERM
#
# lib_init creates $work (a temp dir, removed on exit) and cds to the
# repo root; serve_start builds the server once into $work and runs it
# with the given flags, logging to $work/serve-N.log; serve_stop sends a
# signal (default TERM) and waits. Any still-running server is killed -9
# by the EXIT trap, so a failing assertion never leaks a process.

set -euo pipefail

serve_pid=""
serve_log_n=0

lib_cleanup() {
  [ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null || true
  [ -n "${work:-}" ] && rm -rf "$work"
}

# lib_init — temp workspace + cleanup trap, cwd at the repo root.
lib_init() {
  cd "$(dirname "$0")/.."
  work="$(mktemp -d)"
  trap lib_cleanup EXIT
}

# serve_start FLAGS... — build (once) and launch dbtouch-serve in the
# background with FLAGS, output to a fresh $serve_log.
serve_start() {
  if [ ! -x "$work/dbtouch-serve" ]; then
    go build -o "$work/dbtouch-serve" ./cmd/dbtouch-serve
  fi
  serve_log_n=$((serve_log_n + 1))
  serve_log="$work/serve-$serve_log_n.log"
  "$work/dbtouch-serve" "$@" >"$serve_log" 2>&1 &
  serve_pid=$!
}

# serve_wait ADDR — poll until the server answers /rpc (an open of a
# throwaway session), dumping the server log on timeout.
serve_wait() {
  local addr="$1"
  for _ in $(seq 1 100); do
    if curl -sf -d '{"v":1,"op":"open","session":"readiness-probe"}' "http://$addr/rpc" >/dev/null 2>&1; then
      curl -sf -d '{"v":1,"op":"evict","session":"readiness-probe"}' "http://$addr/rpc" >/dev/null 2>&1 || true
      return 0
    fi
    if ! kill -0 "$serve_pid" 2>/dev/null; then
      echo "FAIL: dbtouch-serve exited during startup" >&2
      cat "$serve_log" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "FAIL: dbtouch-serve never became ready on $addr" >&2
  cat "$serve_log" >&2
  exit 1
}

# serve_stop [SIGNAL] — signal the server (default TERM) and wait for it.
serve_stop() {
  local sig="${1:-TERM}"
  [ -n "$serve_pid" ] || return 0
  kill "-$sig" "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" 2>/dev/null || true
  serve_pid=""
}

# serve_kill9 — kill -9, the crash the durability layer must survive.
serve_kill9() {
  [ -n "$serve_pid" ] || return 0
  kill -9 "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" 2>/dev/null || true
  serve_pid=""
}

# rpc ADDR JSON — POST one request, print the raw response body.
rpc() {
  curl -sf -d "$2" "http://$1/rpc"
}
