// Package protocol defines the versioned wire encoding of the gesture
// API — the paper's §4 remote-processing deployment made concrete: a
// thin touch device (or any client) describes intent as serializable
// gesture values and session operations, a server holding the full data
// executes them, and result frames stream back.
//
// The package owns only the wire forms and their (de)serialization:
// Request/Response envelopes, gesture payloads (reusing
// gesture.Gesture, which is wire-ready by design), object and action
// specs, and ResultFrame, the one-way rendering of core.Result for
// clients. Routing decoded requests into live sessions is the session
// layer's job (session.Manager.HandleRequest); shipping bytes is the
// HTTP handler/client pair in this package. Encoding is JSON with an
// explicit version field; durations are int64 nanoseconds, so a request
// round-trips losslessly — replaying a decoded gesture script is
// byte-identical to driving the API directly (asserted by
// TestProtocolRoundTrip).
package protocol

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
)

// Version is the current protocol version. Decoders accept any version
// in [1, Version]; newer versions are rejected, never misread.
//
// Version history:
//
//	v1: JSON requests/responses, NDJSON result streams.
//	v2: adds the binary columnar stream encoding (binary.go), negotiated
//	    per connection via the Accept header on GET /stream. Requests
//	    and /rpc responses are unchanged; servers answer each request in
//	    the version it spoke, so a v1 client sees byte-identical
//	    envelopes and NDJSON remains the fallback and the record/replay
//	    ground truth.
const Version = 2

// Request operations.
const (
	// OpOpen creates the named session.
	OpOpen = "open"
	// OpEvict removes the named session and everything it owns.
	OpEvict = "evict"
	// OpCreate places a data object on the session's screen and binds it
	// to the client-chosen name in Request.Object.
	OpCreate = "create"
	// OpConfigure updates the touch actions of the object named in
	// Request.Object (mode, aggregate, summary window, WHERE conjuncts).
	OpConfigure = "configure"
	// OpPerform executes Request.Gesture against the object named in
	// Request.Object and returns the produced result frames.
	OpPerform = "perform"
	// OpIdle advances the session's virtual time with no touch activity.
	OpIdle = "idle"
	// OpPin promotes the hottest revisited region of the object named in
	// Request.Object as a new object bound to Request.As.
	OpPin = "pin"
	// OpStats snapshots the manager (live sessions, evictions, queues).
	OpStats = "stats"
	// OpAppend appends Request.Rows to the live table named in
	// Request.Table — the ingestion entry point. Appends are session-less:
	// they publish a new snapshot epoch that every session picks up at its
	// next batch start. Rate-limited appends come back Overloaded.
	OpAppend = "append"
	// OpResume re-materializes the session named in Request.Session from
	// its persisted request log (servers running with session durability
	// tee every executed request into one): the server replays checkpoint
	// plus tail through its normal request path, landing bit-identical to
	// a session that never died, and answers with Response.Replayed. A
	// resume of a session that is already live succeeds with Replayed 0.
	// Ops are extensible within a protocol version — an old server answers
	// OpResume with a clean "unknown op" failure — so this needs no
	// version bump.
	OpResume = "resume"
)

// Request is one decoded client operation. Field use by op:
//
//	open/evict   Session
//	create       Session, Object (name to bind), Create
//	configure    Session, Object, Actions
//	perform      Session, Object, Gesture (Target stamped server-side)
//	idle         Session, Idle
//	pin          Session, Object, As, Create (placement rect only)
//	stats        —
//	append       Table, Rows
//	resume       Session
type Request struct {
	V  int    `json:"v"`
	Op string `json:"op"`
	// ReqID, when set, makes a session-scoped mutating request
	// exactly-once: the session caches its most recent (ReqID, response)
	// pair, and a retry carrying the same ReqID is answered from the
	// cache instead of re-executing. The cache survives crashes — resume
	// replay repopulates it — which is what lets a proxy safely retry a
	// perform whose response was lost in flight (the request may or may
	// not have executed; with a ReqID both cases converge on one
	// execution and one byte-identical response). Clients driving the
	// server directly may leave it empty; the gateway stamps one per
	// forwarded mutating request. Ids only need to differ between
	// consecutive requests of one session.
	ReqID string `json:"reqId,omitempty"`
	// Session names the exploration session the operation addresses.
	Session string `json:"session,omitempty"`
	// Object is the client-chosen object name: the one being created
	// (OpCreate) or the target (OpConfigure/OpPerform/OpPin). Clients
	// address objects by name because kernel ids are per-session state.
	Object string `json:"object,omitempty"`
	// As names the promoted object of an OpPin.
	As      string           `json:"as,omitempty"`
	Gesture *gesture.Gesture `json:"gesture,omitempty"`
	Idle    time.Duration    `json:"idle,omitempty"`
	Create  *CreateSpec      `json:"create,omitempty"`
	Actions *ActionsSpec     `json:"actions,omitempty"`
	// Table names the live table an OpAppend targets.
	Table string `json:"table,omitempty"`
	// Rows carries OpAppend's values, one inner slice per row in the
	// table's column order; cells coerce like filter operands
	// (CoerceValue).
	Rows [][]any `json:"rows,omitempty"`
}

// CreateSpec places an object: one column of a table (Column set) or the
// whole table (Column empty) at frame (X, Y, W, H) centimeters. OpPin
// uses only the frame.
type CreateSpec struct {
	Table  string  `json:"table,omitempty"`
	Column string  `json:"column,omitempty"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	W      float64 `json:"w"`
	H      float64 `json:"h"`
}

// ActionsSpec is a delta against an object's current touch
// configuration: zero-valued fields keep the current setting, Where
// entries append conjuncts. This mirrors the facade builders (Scan
// changes only the mode, Where only appends), so a recorded script
// replays to the same configuration.
type ActionsSpec struct {
	// Mode is "scan", "aggregate" or "summary" ("" keeps the current).
	Mode string `json:"mode,omitempty"`
	// Agg names the aggregate: count, sum, avg, min, max, var, stddev.
	Agg string `json:"agg,omitempty"`
	// K is the interactive-summary half window.
	K *int `json:"k,omitempty"`
	// ValueOrder toggles index-backed value-order slides.
	ValueOrder *bool `json:"valueOrder,omitempty"`
	// Where appends WHERE conjuncts.
	Where []FilterSpec `json:"where,omitempty"`
}

// FilterSpec is one WHERE conjunct on a named column. Value is the
// decoded JSON operand (number, string or bool).
type FilterSpec struct {
	Column string `json:"column"`
	Op     string `json:"op"`
	Value  any    `json:"value"`
}

// Response is the server's answer to one request.
type Response struct {
	V  int  `json:"v"`
	OK bool `json:"ok"`
	// Error holds the failure message when OK is false.
	Error string `json:"error,omitempty"`
	// Overloaded marks a failure as an admission-control rejection
	// (session/manager backlog or session cap hit): the request was not
	// executed and should be retried after RetryAfter seconds. The HTTP
	// transport renders it as status 503 with a Retry-After header.
	Overloaded bool `json:"overloaded,omitempty"`
	// RetryAfter is the suggested backoff in seconds when Overloaded.
	RetryAfter int `json:"retryAfter,omitempty"`
	// ObjectID reports the kernel id of a created/promoted object.
	ObjectID int `json:"objectId,omitempty"`
	// Results carries the frames an OpPerform produced.
	Results []ResultFrame `json:"results,omitempty"`
	// Stats answers OpStats.
	Stats *StatsFrame `json:"stats,omitempty"`
	// Epoch is the snapshot epoch an OpAppend published; Rows is the live
	// table's row count in that snapshot.
	Epoch uint64 `json:"epoch,omitempty"`
	Rows  int    `json:"rows,omitempty"`
	// Gone marks a failure as "session not found": the session was
	// evicted or the server restarted. A resume-aware client reacts by
	// sending OpResume and retrying (Client.AutoResume automates it).
	Gone bool `json:"gone,omitempty"`
	// Replayed answers OpResume: how many logged requests were replayed
	// to reconstruct the session.
	Replayed int `json:"replayed,omitempty"`
}

// ResultFrame is the wire rendering of one core.Result — a one-way
// display form for thin clients (values render as strings; join matches
// as a count).
type ResultFrame struct {
	Kind     string        `json:"kind"`
	ObjectID int           `json:"objectId"`
	TupleID  int           `json:"tupleId"`
	Col      int           `json:"col,omitempty"`
	Value    string        `json:"value,omitempty"`
	Agg      float64       `json:"agg,omitempty"`
	WindowLo int           `json:"windowLo,omitempty"`
	WindowHi int           `json:"windowHi,omitempty"`
	N        int64         `json:"n,omitempty"`
	GroupKey string        `json:"group,omitempty"`
	Matches  int           `json:"matches,omitempty"`
	Level    int           `json:"level,omitempty"`
	Time     time.Duration `json:"time"`
	FadeAt   time.Duration `json:"fadeAt,omitempty"`
	Latency  time.Duration `json:"latency,omitempty"`
}

// FrameResult renders a kernel result for the wire.
func FrameResult(r core.Result) ResultFrame {
	f := ResultFrame{
		Kind:     r.Kind.String(),
		ObjectID: r.ObjectID,
		TupleID:  r.TupleID,
		Col:      r.Col,
		Agg:      r.Agg,
		WindowLo: r.WindowLo,
		WindowHi: r.WindowHi,
		N:        r.N,
		GroupKey: r.GroupKey,
		Matches:  len(r.Matches),
		Level:    r.Level,
		Time:     r.Time,
		FadeAt:   r.FadeAt,
		Latency:  r.Latency,
	}
	switch r.Kind {
	case core.ScanValue:
		f.Value = r.Value.String()
	case core.TuplePeek:
		f.Value = fmt.Sprintf("%v", r.Tuple)
	}
	return f
}

// FrameResults renders a result batch.
func FrameResults(results []core.Result) []ResultFrame {
	if len(results) == 0 {
		return nil
	}
	out := make([]ResultFrame, len(results))
	for i, r := range results {
		out[i] = FrameResult(r)
	}
	return out
}

// StatsFrame is the wire form of a manager snapshot: admission state
// (live/max/evictions, backlog gauge and cap) plus the scheduler
// counters (pool size, parked/runnable/running partition, steals,
// dispatches).
type StatsFrame struct {
	Live             int            `json:"live"`
	Max              int            `json:"max,omitempty"`
	Evictions        int64          `json:"evictions"`
	Workers          int            `json:"workers,omitempty"`
	Parked           int            `json:"parked,omitempty"`
	Runnable         int            `json:"runnable,omitempty"`
	Running          int            `json:"running,omitempty"`
	Steals           int64          `json:"steals,omitempty"`
	Dispatches       int64          `json:"dispatches,omitempty"`
	QueuedBatches    int64          `json:"queuedBatches,omitempty"`
	MaxQueuedBatches int64          `json:"maxQueuedBatches,omitempty"`
	Sessions         []SessionFrame `json:"sessions,omitempty"`
	// Durability gauges (all zero when the server runs without a session
	// log): requests teed to session/table logs, append/compaction
	// failures, checkpoint compactions, resumes served and requests
	// replayed by them.
	LoggedRequests   int64 `json:"loggedRequests,omitempty"`
	LogErrors        int64 `json:"logErrors,omitempty"`
	LogCompactions   int64 `json:"logCompactions,omitempty"`
	Resumes          int64 `json:"resumes,omitempty"`
	ReplayedRequests int64 `json:"replayedRequests,omitempty"`
}

// SessionFrame is one session's row in a StatsFrame. State is the
// scheduling state: sync, parked, runnable or running.
type SessionFrame struct {
	ID         string `json:"id"`
	Started    bool   `json:"started,omitempty"`
	State      string `json:"state,omitempty"`
	QueueDepth int    `json:"queueDepth,omitempty"`
}

// OK returns a successful response envelope.
func OK() Response { return Response{V: Version, OK: true} }

// Errorf returns a failed response envelope.
func Errorf(format string, args ...any) Response {
	return Response{V: Version, Error: fmt.Sprintf(format, args...)}
}

// DefaultRetryAfterSec is the backoff hint stamped on overloaded
// responses when the server does not choose one.
const DefaultRetryAfterSec = 1

// Overloadedf returns a failed response marked as an admission-control
// rejection with the default retry hint.
func Overloadedf(format string, args ...any) Response {
	resp := Errorf(format, args...)
	resp.Overloaded = true
	resp.RetryAfter = DefaultRetryAfterSec
	return resp
}

// CheckVersion validates the request's version field.
func (r Request) CheckVersion() error {
	if r.V < 1 || r.V > Version {
		return fmt.Errorf("protocol: unsupported version %d (speaking %d)", r.V, Version)
	}
	return nil
}

// EncodeRequest stamps the current version and marshals the request.
func EncodeRequest(r Request) ([]byte, error) {
	r.V = Version
	return json.Marshal(r)
}

// DecodeRequest unmarshals and version-checks one request.
func DecodeRequest(data []byte) (Request, error) {
	var r Request
	if err := json.Unmarshal(data, &r); err != nil {
		return Request{}, fmt.Errorf("protocol: decoding request: %w", err)
	}
	if err := r.CheckVersion(); err != nil {
		return Request{}, err
	}
	return r, nil
}

// EncodeResponse marshals the response, stamping the current version
// when the caller did not choose one. Handlers answer in the version the
// request spoke (HandleRequest echoes it), so v1 clients receive
// envelopes byte-identical to a v1 server's.
func EncodeResponse(r Response) ([]byte, error) {
	if r.V < 1 || r.V > Version {
		r.V = Version
	}
	return json.Marshal(r)
}

// DecodeResponse unmarshals one response.
func DecodeResponse(data []byte) (Response, error) {
	var r Response
	if err := json.Unmarshal(data, &r); err != nil {
		return Response{}, fmt.Errorf("protocol: decoding response: %w", err)
	}
	return r, nil
}

// ParseMode maps a wire mode name to the kernel touch mode.
func ParseMode(s string) (core.Mode, error) {
	switch strings.ToLower(s) {
	case "scan":
		return core.ModeScan, nil
	case "aggregate":
		return core.ModeAggregate, nil
	case "summary":
		return core.ModeSummary, nil
	default:
		return 0, fmt.Errorf("protocol: unknown mode %q", s)
	}
}

// ParseAgg maps a wire aggregate name to the operator kind. The wire is
// case-insensitive; the table itself lives in operator.ParseAggKind.
func ParseAgg(s string) (operator.AggKind, error) {
	return operator.ParseAggKind(strings.ToLower(s))
}

// ParseCmp maps SQL comparison syntax to the operator comparison
// (operator.ParseCmpOp is the canonical table).
func ParseCmp(op string) (operator.CmpOp, error) {
	return operator.ParseCmpOp(op)
}

// CoerceValue converts a decoded JSON operand into a typed storage value
// with the same coercion the facade applies to Go operands.
func CoerceValue(v any) storage.Value {
	switch x := v.(type) {
	case int:
		return storage.IntValue(int64(x))
	case int64:
		return storage.IntValue(x)
	case float64:
		return storage.FloatValue(x)
	case bool:
		return storage.BoolValue(x)
	case string:
		return storage.StringValue(x)
	default:
		return storage.StringValue(fmt.Sprint(v))
	}
}

// Apply folds the delta into an object's current touch configuration.
// The matrix resolves filter column names; unknown names, modes,
// aggregates or comparisons reject the whole delta unapplied.
func (a ActionsSpec) Apply(cur core.Actions, m *storage.Matrix) (core.Actions, error) {
	out := cur
	if a.Mode != "" {
		mode, err := ParseMode(a.Mode)
		if err != nil {
			return cur, err
		}
		out.Mode = mode
	}
	if a.Agg != "" {
		agg, err := ParseAgg(a.Agg)
		if err != nil {
			return cur, err
		}
		out.Agg = agg
	}
	if a.K != nil {
		if *a.K < 0 {
			return cur, fmt.Errorf("protocol: negative summary window %d", *a.K)
		}
		out.SummaryK = *a.K
	}
	if a.ValueOrder != nil {
		out.ValueOrder = *a.ValueOrder
	}
	if len(a.Where) > 0 {
		// Full-capacity slice: later appends copy instead of sharing the
		// caller's backing array.
		out.Filters = out.Filters[:len(out.Filters):len(out.Filters)]
		for _, f := range a.Where {
			idx := m.ColumnIndex(f.Column)
			if idx < 0 {
				return cur, fmt.Errorf("protocol: no column %q", f.Column)
			}
			cmp, err := ParseCmp(f.Op)
			if err != nil {
				return cur, err
			}
			out.Filters = append(out.Filters, operator.Predicate{Col: idx, Op: cmp, Operand: CoerceValue(f.Value)})
		}
	}
	return out, nil
}
