package script

import (
	"bytes"
	"strings"
	"testing"

	"dbtouch"
)

func newDB(t *testing.T) *dbtouch.DB {
	t.Helper()
	db := dbtouch.Open()
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(i)
	}
	keys := make([]string, len(vals))
	for i := range keys {
		keys[i] = "k"
	}
	db.NewTable("t").Int("v", vals).String("k", keys).MustCreate()
	return db
}

func TestParse(t *testing.T) {
	src := `
# a comment
column c t v 2 2 2 10
slide c 2s   # trailing comment

tap c 0.5
`
	cmds, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("commands = %v", cmds)
	}
	if cmds[0].Op != "column" || len(cmds[0].Args) != 7 {
		t.Fatalf("first = %+v", cmds[0])
	}
	if cmds[1].Line != 4 {
		t.Fatalf("line tracking = %d", cmds[1].Line)
	}
}

func runScript(t *testing.T, src string) (*Runner, string) {
	t.Helper()
	cmds, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	r := NewRunner(newDB(t), &out)
	if err := r.Run(cmds); err != nil {
		t.Fatal(err)
	}
	return r, out.String()
}

func TestFullSession(t *testing.T) {
	_, out := runScript(t, `
column c t v 2 2 2 10
summarize c avg 10
slide c 2s
tap c 0.5
zoomin c 2
moveto c 2 2
slide c 1s 0.4 0.6
render
`)
	if !strings.Contains(out, "slide:") || !strings.Contains(out, "tap:") {
		t.Fatalf("output missing gesture reports:\n%s", out)
	}
	if !strings.Contains(out, "t.v") {
		t.Fatalf("render missing object label:\n%s", out)
	}
}

func TestScanWhereAggregate(t *testing.T) {
	r, _ := runScript(t, `
column c t v 2 2 2 10
scan c
where c v >= 50000
slide c 2s
aggregate c max
slide c 1s
`)
	obj, ok := r.Object("c")
	if !ok {
		t.Fatal("object lost")
	}
	for _, res := range obj.Inner().Matrix().Schema() {
		_ = res
	}
}

func TestPinCommand(t *testing.T) {
	r, out := runScript(t, `
column c t v 2 2 2 10
summarize c avg 10
slide c 1s 0.4 0.6
slide c 1s 0.6 0.4
slide c 1s 0.4 0.6
pin c hot 6 2 2 10
slide hot 1s
`)
	if _, ok := r.Object("hot"); !ok {
		t.Fatal("pinned object not registered")
	}
	if !strings.Contains(out, "pin: hot") {
		t.Fatalf("pin output missing:\n%s", out)
	}
}

func TestErrorsCarryLineNumbers(t *testing.T) {
	cmds, err := Parse(strings.NewReader("column c t v 2 2 2 10\nslide ghost 2s\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(newDB(t), nil)
	err = r.Run(cmds)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error = %v, want line 2 reference", err)
	}
}

func TestBadCommands(t *testing.T) {
	cases := []string{
		"bogus x",
		"column c t v 2 2",      // arity
		"slide c nope",          // duration (also unknown object first)
		"summarize c median 10", // aggregate
		"tap c notafrac",
		"idle xyz",
	}
	for _, src := range cases {
		cmds, err := Parse(strings.NewReader("column c t v 2 2 2 10\n" + src))
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(newDB(t), nil)
		if err := r.Run(cmds); err == nil {
			t.Errorf("script %q should fail", src)
		}
	}
}

func TestIdleAdvancesTime(t *testing.T) {
	r, _ := runScript(t, "column c t v 2 2 2 10\nidle 3s\n")
	if r.DB.Now() < 3_000_000_000 {
		t.Fatalf("idle did not advance time: %v", r.DB.Now())
	}
}
