// Command dbtouch is the interactive demo: it loads a synthetic data set
// with a planted pattern, replays an exploration session of gestures, and
// renders the screen after each gesture the way the iPad prototype's
// display would look (objects as rectangles, results popping up in place
// and fading).
//
// Usage:
//
//	dbtouch                  # default session over 1M values
//	dbtouch -rows 100000 -pattern outliers -mode summary -k 10
//	dbtouch -csv data.csv -table readings -column temp
//	dbtouch -sessions 4      # four concurrent users over the same data
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"dbtouch"
	"dbtouch/internal/datagen"
	"dbtouch/internal/script"
	"dbtouch/internal/viz"
)

func main() {
	rows := flag.Int("rows", 1_000_000, "synthetic column length")
	pattern := flag.String("pattern", "outliers", "planted pattern: outliers, levelshift, spikes, trend, none")
	mode := flag.String("mode", "summary", "touch mode: scan, aggregate, summary")
	k := flag.Int("k", 10, "interactive summary half-window")
	csvPath := flag.String("csv", "", "load a CSV file instead of synthetic data")
	table := flag.String("table", "t", "table name (with -csv)")
	column := flag.String("column", "v", "column name (with -csv)")
	seed := flag.Int64("seed", 42, "data seed")
	scriptPath := flag.String("script", "", "run an exploration script (see internal/script) instead of the default session")
	sessions := flag.Int("sessions", 1, "run N concurrent exploration sessions over the shared data")
	flag.Parse()

	db := dbtouch.Open()
	colName := *column
	tblName := *table
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := db.LoadCSV(tblName, f); err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
	} else {
		data := datagen.Floats(datagen.Spec{Dist: datagen.Uniform, N: *rows, Seed: *seed, Min: 0, Max: 1000})
		var planted string
		switch *pattern {
		case "outliers":
			p := datagen.Plant(data, datagen.OutlierRegion, 0.6, 0.03, *seed)
			planted = fmt.Sprintf("outlier region at tuples [%d, %d)", p.Start, p.End)
		case "levelshift":
			p := datagen.Plant(data, datagen.LevelShift, 0.55, 0.01, *seed)
			planted = fmt.Sprintf("level shift at tuple %d", p.Start)
		case "spikes":
			p := datagen.Plant(data, datagen.Spike, 0.3, 0.05, *seed)
			planted = fmt.Sprintf("spikes inside [%d, %d)", p.Start, p.End)
		case "trend":
			p := datagen.Plant(data, datagen.TrendRegion, 0.4, 0.1, *seed)
			planted = fmt.Sprintf("trend over [%d, %d)", p.Start, p.End)
		}
		db.NewTable(tblName).Float(colName, data).MustCreate()
		if planted != "" {
			fmt.Printf("(spoiler: %s — try to see it in the summaries)\n\n", planted)
		}
	}

	if *scriptPath != "" {
		f, err := os.Open(*scriptPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		defer f.Close()
		commands, err := script.Parse(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		if err := script.NewRunner(db, os.Stdout).Run(commands); err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		return
	}

	if *sessions > 1 {
		multiUser(db, tblName, colName, *mode, *k, *sessions)
		return
	}

	obj, err := db.NewColumnObject(tblName, colName, 2, 2, 2, 10)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtouch:", err)
		os.Exit(1)
	}
	switch *mode {
	case "scan":
		obj.Scan()
	case "aggregate":
		obj.Aggregate(dbtouch.Avg)
	default:
		obj.Summarize(dbtouch.Avg, *k)
	}

	render := func(caption string) {
		fmt.Println("──", caption, "── virtual time", db.Now().Round(time.Millisecond))
		fmt.Print(viz.Render(db.Kernel().Screen(), db.Kernel().Objects(), db.Results(), db.Now()))
		fmt.Println()
	}

	fmt.Printf("Loaded %q.%s: %d tuples as a 2x10cm column object.\n\n", tblName, colName, obj.Rows())

	obj.Tap(0.5)
	render("tap mid-column: one value pops up")

	obj.Slide(2 * time.Second)
	render("2s slide top→bottom: results appear and fade as the finger moves")

	obj.ZoomIn(1.8)
	obj.MoveTo(2, 2)
	obj.Slide(3 * time.Second)
	render("zoom in, slide slower: finer granularity over the same data")

	obj.SlideRange(0.5, 0.7, 2*time.Second)
	render("drill into the lower-middle region")

	hist := db.TouchLatency()
	fmt.Printf("touches handled: %d   per-touch latency: %v\n",
		hist.Count(), hist)
	st := obj.Inner().Hierarchy().TotalStats()
	fmt.Printf("values read: %d (of %d total)   cold blocks: %d   bytes: %d\n",
		st.ValuesRead, obj.Rows(), st.ColdFetches, st.BytesRead)
}

// multiUser runs n concurrent exploration sessions over the shared table:
// every user slides a different region at a different speed on their own
// goroutine, then each session's screen is rendered in turn. The column
// data and sample hierarchies are shared and immutable; screens, clocks
// and result logs are per session.
func multiUser(db *dbtouch.DB, tblName, colName, mode string, k, n int) {
	fmt.Printf("%d concurrent sessions exploring %q.%s\n\n", n, tblName, colName)
	users := make([]*dbtouch.DB, n)
	for i := range users {
		u, err := db.Session(fmt.Sprintf("user%d", i+1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbtouch:", err)
			os.Exit(1)
		}
		users[i] = u
	}
	var wg sync.WaitGroup
	for i, u := range users {
		wg.Add(1)
		go func(i int, u *dbtouch.DB) {
			defer wg.Done()
			obj, err := u.NewColumnObject(tblName, colName, 2, 2, 2, 10)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dbtouch:", err)
				return
			}
			switch mode {
			case "scan":
				obj.Scan()
			case "aggregate":
				obj.Aggregate(dbtouch.Avg)
			default:
				obj.Summarize(dbtouch.Avg, k)
			}
			// Each user explores their own slice of the data at their own
			// pace: user i slides over the i-th n-quantile, slower users
			// see finer granularity.
			lo := float64(i) / float64(n)
			hi := float64(i+1) / float64(n)
			obj.SlideRange(lo, hi, time.Duration(i+1)*time.Second)
		}(i, u)
	}
	wg.Wait()
	for _, u := range users {
		fmt.Printf("── %s ── virtual time %v\n", u.SessionID(), u.Now().Round(time.Millisecond))
		fmt.Print(viz.Render(u.Kernel().Screen(), u.Kernel().Objects(), u.Results(), u.Now()))
		fmt.Printf("touches handled: %d   results: %d\n\n",
			u.TouchLatency().Count(), len(u.Results()))
	}
	st := db.Manager().Stats()
	cap := "unlimited"
	if st.Max > 0 {
		cap = fmt.Sprint(st.Max)
	}
	fmt.Printf("── session manager ── %d live (cap %s), %d evicted\n", st.Live, cap, st.Evictions)
	for _, s := range st.Sessions {
		state := "sync"
		if s.Started {
			state = "worker"
		}
		fmt.Printf("  %-10s %-6s queue=%d lastUsed=%d\n", s.ID, state, s.QueueDepth, s.LastUsed)
	}
}
