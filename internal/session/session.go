// Package session implements concurrent exploration sessions over shared
// immutable storage — the sharding step toward the ROADMAP's
// millions-of-users north star.
//
// A Session owns everything that is mutable about one user's exploration:
// a kernel with its virtual clock, screen, dispatcher, result log, and
// per-object trackers/prefetchers/cursors. The storage underneath —
// catalog, columns, dictionaries, and the sample hierarchies' columns and
// span statistics — is the shared immutable layer: built once, read by
// every session without locking on the hot span path (the only
// synchronization is single-flight initialization of lazily built shared
// statistics and the memoized string-predicate tables).
//
// A Manager creates and evicts sessions by ID, routes touch-event batches
// to the right session, and runs started sessions on a bounded
// work-stealing scheduler: a fixed worker pool (default GOMAXPROCS)
// pulls runnable sessions from per-worker deques, sessions park at zero
// goroutines while their event queues are empty, and a per-session
// fairness budget keeps one gesture-spamming user from starving the
// rest — 10k mostly-idle users cost O(workers) goroutines, not
// O(sessions). Queue-depth and eviction metrics (Manager.Stats) feed
// admission control: past the configured caps, Enqueue and Create
// return ErrOverloaded instead of queueing unboundedly. Because every
// session's timeline is its own virtual clock and the scheduler runs
// each session's batches in order on at most one worker at a time, a
// session's result stream is byte-identical whether it runs alone,
// sequentially with others, or concurrently with them at any pool size —
// asserted by the package's equivalence suite under the race detector.
package session

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/protocol"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Sentinel errors callers can test with errors.Is.
var (
	// ErrClosed reports use of a session after Close or manager eviction.
	ErrClosed = errors.New("session closed")
	// ErrWorkerRunning reports a synchronous call (Apply, Idle) on a
	// started session — once handed to the scheduler, the kernel belongs
	// to the worker pool.
	ErrWorkerRunning = errors.New("session worker running")
	// ErrNotStarted reports Enqueue before Start.
	ErrNotStarted = errors.New("session not started")
	// ErrOverloaded reports an admission-control rejection: a session or
	// manager backlog cap was hit (Enqueue) or the live-session admission
	// ceiling was reached (Create). The work was not queued; back off and
	// retry. The wire protocol surfaces it as HTTP 503 + Retry-After.
	ErrOverloaded = errors.New("overloaded")
)

// Session is one user's exploration context: a kernel confined to one
// goroutine at a time, over storage shared with every other session of
// the same Manager.
//
// A session has two driving modes. Before Start, the owner calls Apply
// (or Manager.Dispatch) and batches run synchronously on the calling
// goroutine. After Start, the session belongs to the manager's
// work-stealing scheduler: batches go through Enqueue/Dispatch, workers
// execute them in order (at most one worker per session at a time), and
// the caller synchronizes with Drain before reading results. A started
// session with an empty queue is parked — it holds no goroutine at all.
// The two modes must not be mixed — Apply fails once the session is
// started.
type Session struct {
	id      string
	manager *Manager
	kernel  *core.Kernel

	// mu guards the lifecycle state below.
	mu      sync.Mutex
	started bool
	closed  bool
	// runMu serializes kernel execution: concurrent synchronous Applies
	// (or an Apply racing the scheduler's first batch) run one at a time.
	// Determinism still requires one logical driver per session; the lock
	// only guarantees batches stay atomic, never interleaved.
	runMu sync.Mutex
	// pendingMu guards the scheduler-facing state: the FIFO batch queue,
	// the park/runnable/running state, and pendingN, the count of
	// enqueued-but-unfinished batches for Drain. A plain condition
	// variable (not a WaitGroup): Enqueue may race Drain from the zero
	// count, which WaitGroup reuse rules forbid.
	pendingMu   sync.Mutex
	pendingCond *sync.Cond
	pendingN    int
	// batches is the session's queued-but-unexecuted event batches; the
	// scheduler pops from the front. pendingN ≥ len(batches): a batch
	// leaves the queue when a worker picks it up and leaves pendingN when
	// it finishes executing.
	batches [][]touchos.TouchEvent
	// schedState is schedParked, schedRunnable or schedRunning.
	schedState int

	// lastUsed is the manager's dispatch tick at the session's last use,
	// for least-recently-used eviction. Guarded by manager.mu.
	lastUsed uint64

	// objMu guards objNames, the session's wire-protocol object registry:
	// remote clients address objects by chosen name, the kernel by id.
	objMu    sync.Mutex
	objNames map[string]int

	// dedupeMu guards the exactly-once cache: the ReqID and full
	// response of the session's most recent mutating wire request.
	// Wire-driven sessions are request-at-a-time, so one entry is
	// enough — a retry can only ever duplicate the last request (see
	// durability.go, serveRequest).
	dedupeMu  sync.Mutex
	lastReqID string
	lastResp  protocol.Response
}

// ID returns the session identifier.
func (s *Session) ID() string { return s.id }

// Kernel exposes the session's kernel for object creation and
// configuration. Setup must happen before Start (or between Drain and the
// next Enqueue only from the worker's perspective — in practice: set up,
// then start).
func (s *Session) Kernel() *core.Kernel { return s.kernel }

// CreateColumnObject places one column of a cataloged table on the
// session's screen. The sample hierarchy's columns come from the shared
// store; only the trackers are session-private.
func (s *Session) CreateColumnObject(table, column string, frame touchos.Rect) (*core.Object, error) {
	m, err := s.kernel.Lookup(table)
	if err != nil {
		return nil, err
	}
	idx := m.ColumnIndex(column)
	if idx < 0 {
		return nil, fmt.Errorf("session %q: table %q has no column %q", s.id, table, column)
	}
	return s.kernel.CreateColumnObject(m, idx, frame)
}

// CreateTableObject places a whole cataloged table on the session's
// screen.
func (s *Session) CreateTableObject(table string, frame touchos.Rect) (*core.Object, error) {
	m, err := s.kernel.Lookup(table)
	if err != nil {
		return nil, err
	}
	return s.kernel.CreateTableObject(m, frame)
}

// touch refreshes the session's recently-used stamp for the manager's
// LRU cap, whatever path drove it (Dispatch, Enqueue, or a facade
// handle's synchronous Apply).
func (s *Session) touch() {
	if s.manager == nil {
		return
	}
	s.manager.mu.Lock()
	s.manager.tick++
	s.lastUsed = s.manager.tick
	s.manager.mu.Unlock()
}

// Apply processes a touch-event batch synchronously on the caller's
// goroutine and returns the results it emitted. It is the pre-Start
// (sequential) driving mode; once the worker runs, use Enqueue.
func (s *Session) Apply(events []touchos.TouchEvent) ([]core.Result, error) {
	if err := s.checkSynchronous(); err != nil {
		return nil, err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.kernel.Apply(events), nil
}

// Idle advances the session's virtual time by d with no touch activity,
// giving background machinery (prefetch, layout conversion) the gap. Same
// driving contract as Apply: synchronous, pre-Start only.
func (s *Session) Idle(d time.Duration) error {
	if err := s.checkSynchronous(); err != nil {
		return err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	from := s.kernel.Clock().Now()
	s.kernel.RunIdle(from, from+d)
	return nil
}

// Perform executes a serializable gesture description on the session's
// kernel: the wire-ready form of driving a session. Same contract as
// Apply — synchronous, pre-Start only.
func (s *Session) Perform(g gesture.Gesture) ([]core.Result, error) {
	if err := s.checkSynchronous(); err != nil {
		return nil, err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.kernel.Perform(g)
}

// Do runs fn with exclusive synchronous access to the session's kernel —
// the seam the protocol handler uses for object creation, configuration
// and promotion. Same contract as Apply: synchronous, pre-Start only.
func (s *Session) Do(fn func(*core.Kernel) error) error {
	if err := s.checkSynchronous(); err != nil {
		return err
	}
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return fn(s.kernel)
}

// Subscribe registers a bounded result stream on the session's kernel
// (buffer <= 0 selects the default size). Unlike Apply, subscribing is
// legal while the worker runs — that is the point: the stream hands
// results across goroutines, so a monitor can cursor through them while
// the worker keeps executing. The registration itself is serialized
// against the running kernel.
func (s *Session) Subscribe(buffer int) *core.ResultStream {
	s.runMu.Lock()
	defer s.runMu.Unlock()
	return s.kernel.Subscribe(buffer)
}

// BindObject names a kernel object for wire-protocol addressing. Later
// binds of the same name shadow earlier ones, mirroring script replay.
func (s *Session) BindObject(name string, id int) {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	if s.objNames == nil {
		s.objNames = make(map[string]int)
	}
	s.objNames[name] = id
}

// BoundObject resolves a wire-protocol object name to its kernel id.
func (s *Session) BoundObject(name string) (int, bool) {
	s.objMu.Lock()
	defer s.objMu.Unlock()
	id, ok := s.objNames[name]
	return id, ok
}

// QueueDepth reports how many enqueued batches the scheduler has not
// yet finished — the manager's per-session backlog metric and an
// admission-control input.
func (s *Session) QueueDepth() int {
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	return s.pendingN
}

// State reports the session's scheduling state: StateSync for a session
// never handed to the scheduler, else parked, runnable or running.
func (s *Session) State() SessionState {
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if !started {
		return StateSync
	}
	s.pendingMu.Lock()
	defer s.pendingMu.Unlock()
	switch s.schedState {
	case schedRunnable:
		return StateRunnable
	case schedRunning:
		return StateRunning
	default:
		return StateParked
	}
}

// Started reports whether the session has been handed to the scheduler.
func (s *Session) Started() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started
}

// checkSynchronous gates the synchronous driving mode and refreshes the
// LRU stamp.
func (s *Session) checkSynchronous() error {
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("session %q: %w", s.id, ErrClosed)
	}
	if s.started {
		return fmt.Errorf("session %q: %w; use Enqueue", s.id, ErrWorkerRunning)
	}
	return nil
}

// Start hands the session to the manager's work-stealing scheduler.
// Subsequent batches go through Enqueue; the caller must not touch the
// kernel again until Drain (for reads) or Close. Starting is cheap: a
// started session with nothing queued is parked and holds no goroutine
// (the pool itself is shared and bounded).
func (s *Session) Start() {
	s.mu.Lock()
	if s.started || s.closed {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	// Build the shared pool only while this session is still registered:
	// a Start racing Manager.Close/Evict must not resurrect a pool after
	// the teardown loop has finished (schedulerFor is a no-op then — the
	// closed session can never enqueue, so no pool is needed).
	s.manager.schedulerFor(s)
}

// Enqueue hands a batch to the scheduler. It never blocks: past the
// per-session queue cap or the manager's global backlog cap it rejects
// the batch with ErrOverloaded (backpressure the caller can see and
// retry), so a burst cannot queue unbounded work behind a busy session.
func (s *Session) Enqueue(events []touchos.TouchEvent) error {
	s.touch()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("session %q: %w", s.id, ErrClosed)
	}
	if !s.started {
		s.mu.Unlock()
		return fmt.Errorf("session %q: %w; use Apply or Start first", s.id, ErrNotStarted)
	}
	// Reserve a global backlog slot first (exact under the cap: CAS, not
	// check-then-add), so the batch is accounted before it can become
	// poppable — the worker's decrement after executing it then always
	// follows this increment and the gauge never goes negative.
	if backlog, gcap, ok := s.manager.reserveBatch(); !ok {
		s.mu.Unlock()
		return fmt.Errorf("session %q: %w (manager backlog %d batches at cap %d)",
			s.id, ErrOverloaded, backlog, gcap)
	}
	s.pendingMu.Lock()
	if qcap := int(s.manager.sessionQueueCap.Load()); len(s.batches) >= qcap {
		depth := len(s.batches)
		s.pendingMu.Unlock()
		s.mu.Unlock()
		s.manager.queuedBatches.Add(-1) // release the unused reservation
		return fmt.Errorf("session %q: %w (queue depth %d at session cap %d)",
			s.id, ErrOverloaded, depth, qcap)
	}
	s.batches = append(s.batches, events)
	s.pendingN++
	wake := s.schedState == schedParked
	if wake {
		s.schedState = schedRunnable
	}
	s.pendingMu.Unlock()
	s.mu.Unlock()
	if wake {
		s.manager.scheduler().submit(s)
	}
	return nil
}

// Drain blocks until every batch enqueued so far has been processed.
// After Drain (and before further Enqueues) the kernel's results and
// counters are safe to read from the caller's goroutine. A concurrent
// Enqueue extends the wait — Drain returns only at a moment the queue is
// empty.
func (s *Session) Drain() {
	s.pendingMu.Lock()
	for s.pendingN > 0 {
		s.pendingCond.Wait()
	}
	s.pendingMu.Unlock()
}

// Close stops the session: already-queued batches still execute on the
// scheduler, then every subscribed result stream is closed (so consumers
// blocked in Next see end-of-stream instead of hanging on an evicted
// session) and the session is unusable. It is idempotent and safe to
// call from any goroutine; Manager.Evict calls it.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.Drain() // another closer may still be draining; match its wait
		return
	}
	s.closed = true
	s.mu.Unlock()
	// New Enqueues are rejected now; wait for the scheduler to finish the
	// backlog. Once pendingN hits zero the last kernel execution has
	// completed (batches decrement only after Apply returns).
	s.Drain()
	// runMu serializes against a synchronous Apply/Perform that slipped
	// in before closed was set.
	s.runMu.Lock()
	s.kernel.CloseSubscriptions()
	// Release live-table snapshot pins only now — after the drain, under
	// runMu — so an eviction mid-batch cannot unpin the version the
	// in-flight batch is still reading, and the shared store's refcounts
	// keep versions other sessions pinned alive regardless (the
	// eviction-race regression test drives exactly this schedule).
	s.kernel.ReleaseLive()
	s.runMu.Unlock()
}

// Results returns the session's retained results (the kernel's bounded,
// fade-pruned window). Synchronize with Drain when the worker is running.
func (s *Session) Results() []core.Result { return s.kernel.Results() }

// OnResult registers the session's live result callback. The callback
// runs on whichever goroutine owns the kernel (the worker once started),
// so it must not share unsynchronized state across sessions.
func (s *Session) OnResult(fn func(core.Result)) { s.kernel.OnResult(fn) }

// Catalog exposes the shared catalog.
func (s *Session) Catalog() *storage.Catalog { return s.kernel.Catalog() }
