package operator

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"dbtouch/internal/iomodel"
	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

// The fusion charging contract: FuseFilterAgg must advance the virtual
// clock and evolve tracker stats exactly as the unfused pipeline —
// EvalRange to a selection vector, per-run charging of the value tracker,
// then a scalar add loop — for any span, selectivity, block size, and
// eviction pressure. The aggregate itself must match the scalar loop.

type fusionFixture struct {
	m     *storage.Matrix
	col   *storage.Column
	clock *vclock.Clock
	pred  *iomodel.Tracker
	val   *iomodel.Tracker
}

func newFusionFixture(t *testing.T, vals []int64, params iomodel.Params) *fusionFixture {
	t.Helper()
	col := storage.NewIntColumn("v", vals)
	m, err := storage.NewMatrix("t", col)
	if err != nil {
		t.Fatal(err)
	}
	clock := vclock.New()
	return &fusionFixture{
		m:     m,
		col:   col,
		clock: clock,
		pred:  iomodel.New(clock, params, nil),
		val:   iomodel.New(clock, params, nil),
	}
}

// runUnfused is the compose-of-parts reference over one span.
func runUnfused(t *testing.T, f *fusionFixture, lo, hi int, p Predicate) (n int, sum, mn, mx float64) {
	t.Helper()
	trackers := []*iomodel.Tracker{f.pred}
	sel, _, err := p.EvalRange(f.m, lo, hi, nil, trackers, nil)
	if err != nil {
		t.Fatal(err)
	}
	chargeSelection(f.val, sel)
	mn, mx = math.Inf(1), math.Inf(-1)
	var isum int64
	for _, r := range sel {
		v := f.col.Float(int(r))
		isum += f.col.Int(int(r))
		n++
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return n, float64(isum), mn, mx
}

func eqStats(a, b iomodel.Stats) bool { return a == b }

func TestFuseFilterAggChargesLikeUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	params := iomodel.Params{
		BlockValues: 64,
		ColdLatency: 40 * time.Microsecond,
		WarmLatency: 7 * time.Nanosecond,
		WarmBudget:  8, // eviction pressure: warm state must also match
	}
	vals := make([]int64, 20000)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	for _, operand := range []int64{10, 500, 990} { // ~1%, 50%, 99%
		t.Run(fmt.Sprintf("lt_%d", operand), func(t *testing.T) {
			ref := newFusionFixture(t, vals, params)
			fus := newFusionFixture(t, vals, params)
			p := Predicate{Col: 0, Op: Lt, Operand: storage.IntValue(operand)}
			// Several spans back to back, like consecutive slide steps,
			// so later spans hit warm blocks left by earlier ones.
			spans := [][2]int{{0, 3000}, {3000, 9100}, {9050, 9050}, {8000, 20000}, {-5, 70}}
			for _, s := range spans {
				wantN, wantSum, _, _ := runUnfused(t, ref, s[0], s[1], p)
				fa := FuseFilterAgg(fus.col, s[0], s[1], nil, p.Op, p.Operand, fus.pred, fus.val, Avg)
				if fa.N != wantN || fa.Sum != wantSum {
					t.Fatalf("span %v: fused %+v, unfused n=%d sum=%v", s, fa, wantN, wantSum)
				}
				if ref.clock.Now() != fus.clock.Now() {
					t.Fatalf("span %v: clocks diverge: unfused %v fused %v", s, ref.clock.Now(), fus.clock.Now())
				}
				if !eqStats(ref.pred.Stats(), fus.pred.Stats()) {
					t.Fatalf("span %v: predicate tracker stats diverge:\n unfused %+v\n fused   %+v", s, ref.pred.Stats(), fus.pred.Stats())
				}
				if !eqStats(ref.val.Stats(), fus.val.Stats()) {
					t.Fatalf("span %v: value tracker stats diverge:\n unfused %+v\n fused   %+v", s, ref.val.Stats(), fus.val.Stats())
				}
				if ref.val.WarmBlocks() != fus.val.WarmBlocks() {
					t.Fatalf("span %v: warm sets diverge: %d vs %d", s, ref.val.WarmBlocks(), fus.val.WarmBlocks())
				}
			}
		})
	}
}

func TestFuseFilterAggSelChargesLikeUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	params := iomodel.Params{
		BlockValues: 32,
		ColdLatency: 25 * time.Microsecond,
		WarmLatency: 5 * time.Nanosecond,
	}
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(rng.Intn(100))
	}
	ref := newFusionFixture(t, vals, params)
	fus := newFusionFixture(t, vals, params)
	// A sparse prior selection, as a prefix conjunct would leave behind.
	var sel []int32
	for i := 0; i < len(vals); i++ {
		if rng.Intn(3) == 0 {
			sel = append(sel, int32(i))
		}
	}
	p := Predicate{Col: 0, Op: Ge, Operand: storage.IntValue(40)}

	// Unfused: refine via EvalRange(sel), then charge + aggregate.
	refined, _, err := p.EvalRange(ref.m, 0, len(vals), sel, []*iomodel.Tracker{ref.pred}, nil)
	if err != nil {
		t.Fatal(err)
	}
	chargeSelection(ref.val, refined)
	var wantN int
	var wantISum int64
	for _, r := range refined {
		wantISum += vals[r]
		wantN++
	}

	fa := FuseFilterAgg(fus.col, 0, 0, sel, p.Op, p.Operand, fus.pred, fus.val, Sum)
	if fa.N != wantN || fa.IntSum != wantISum {
		t.Fatalf("fused sel form: %+v, want n=%d isum=%d", fa, wantN, wantISum)
	}
	if ref.clock.Now() != fus.clock.Now() {
		t.Fatalf("clocks diverge: unfused %v fused %v", ref.clock.Now(), fus.clock.Now())
	}
	if !eqStats(ref.pred.Stats(), fus.pred.Stats()) || !eqStats(ref.val.Stats(), fus.val.Stats()) {
		t.Fatalf("tracker stats diverge:\n pred %+v vs %+v\n val %+v vs %+v",
			ref.pred.Stats(), fus.pred.Stats(), ref.val.Stats(), fus.val.Stats())
	}
}

// TestFuseFilterAggKindDispatch pins what each kind-specialized kernel
// maintains: every kind reports the exact qualifying count; sum kinds
// carry the sum (±Inf extrema), extrema kinds the min/max (zero sum).
func TestFuseFilterAggKindDispatch(t *testing.T) {
	vals := []int64{5, 1, 9, 3, 7, 2, 8}
	col := storage.NewIntColumn("v", vals)
	run := func(kind AggKind) storage.FilterAgg {
		return FuseFilterAgg(col, 0, len(vals), nil, Gt, storage.IntValue(4), nil, nil, kind)
	}
	for _, kind := range []AggKind{Count, Sum, Avg, Min, Max, Var} {
		if fa := run(kind); fa.N != 4 {
			t.Fatalf("%v: N = %d, want 4", kind, fa.N)
		}
	}
	if fa := run(Count); fa.Sum != 0 || !math.IsInf(fa.Min, 1) || !math.IsInf(fa.Max, -1) {
		t.Fatalf("Count = %+v", fa)
	}
	if fa := run(Sum); fa.IntSum != 5+9+7+8 || !math.IsInf(fa.Min, 1) {
		t.Fatalf("Sum = %+v", fa)
	}
	if fa := run(Min); fa.Min != 5 || fa.Max != 9 || fa.Sum != 0 {
		t.Fatalf("Min = %+v", fa)
	}
	// Unfusable kinds fall back to the full kernel: everything maintained.
	if fa := run(Var); fa.IntSum != 5+9+7+8 || fa.Min != 5 || fa.Max != 9 {
		t.Fatalf("Var fallback = %+v", fa)
	}
}

func TestFusableAgg(t *testing.T) {
	fusable := map[AggKind]bool{Count: true, Sum: true, Avg: true, Min: true, Max: true, Var: false, Stddev: false}
	for kind, want := range fusable {
		if FusableAgg(kind) != want {
			t.Fatalf("FusableAgg(%v) = %v, want %v", kind, FusableAgg(kind), want)
		}
	}
}
