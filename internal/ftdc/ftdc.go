// Package ftdc implements a flight recorder for engine telemetry,
// modeled on MongoDB's full-time diagnostic data capture: a sampler
// captures every scheduler/session/storage gauge on a fixed tick into
// delta-of-delta + varint-compressed columnar chunks with bounded
// on-disk retention, so an operator can diagnose an incident after the
// fact without having had any monitoring attached at the time.
//
// The capture is exact: every gauge is an int64 and the codec
// round-trips values bit-for-bit (wrapping arithmetic, no floats), so a
// decoded capture is the ground truth of what the engine observed, not
// an approximation. Rates (e.g. kernel GB/s) are captured as cumulative
// counters and differentiated by the reader.
//
// On-disk layout: a capture directory holds ftdc-NNNNNNNN.bin files,
// each a sequence of length-prefixed chunks. One chunk is a columnar
// block of up to MaxChunkSamples ticks sharing one metric schema:
//
//	u32 LE  payload length
//	u8      magic 0xFD
//	u8      version (1)
//	uvarint metric count
//	uvarint sample count
//	        per metric: uvarint name length + name bytes
//	        per metric column:
//	          zigzag varint  reference (first sample's value)
//	          then per subsequent sample, delta-of-delta zigzag varint;
//	          a zero (byte 0x00) is followed by a uvarint counting how
//	          many additional consecutive zeros it stands for (run
//	          length), which is what makes near-constant gauges nearly
//	          free.
//
// A schema change (metric added or removed) closes the current chunk and
// starts a new one, so readers never guess at column identity.
package ftdc

import (
	"encoding/binary"
	"fmt"
)

const (
	chunkMagic   = 0xFD
	chunkVersion = 1

	// maxChunkBytes bounds one decoded chunk allocation. Captures travel
	// between machines, so the decoder treats files as a trust boundary.
	maxChunkBytes = 8 << 20
	// maxChunkMetrics bounds the schema width a decoder will accept.
	maxChunkMetrics = 1 << 12
	// maxChunkSamplesLimit bounds the sample count a decoder will accept
	// (far above any sane recorder configuration).
	maxChunkSamplesLimit = 1 << 20
)

// Chunk is one decoded columnar block: len(Columns) == len(Names), and
// every column holds the same number of samples.
type Chunk struct {
	Names   []string
	Columns [][]int64
}

// SampleCount returns the number of ticks the chunk holds.
func (c Chunk) SampleCount() int {
	if len(c.Columns) == 0 {
		return 0
	}
	return len(c.Columns[0])
}

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendColumn encodes one metric column: reference value, then
// delta-of-delta residuals with zero run-length coding. All arithmetic
// wraps, so MinInt64/MaxInt64 excursions round-trip exactly.
func appendColumn(dst []byte, col []int64) []byte {
	dst = binary.AppendUvarint(dst, zigzag(col[0]))
	prev, prevDelta := col[0], int64(0)
	zeros := uint64(0)
	flush := func() {
		if zeros > 0 {
			dst = append(dst, 0x00)
			dst = binary.AppendUvarint(dst, zeros-1)
			zeros = 0
		}
	}
	for _, v := range col[1:] {
		delta := v - prev
		dd := delta - prevDelta
		prev, prevDelta = v, delta
		if dd == 0 {
			zeros++
			continue
		}
		flush()
		dst = binary.AppendUvarint(dst, zigzag(dd))
	}
	flush()
	return dst
}

// appendChunk encodes one chunk payload (without the length prefix).
func appendChunk(dst []byte, names []string, cols [][]int64) []byte {
	dst = append(dst, chunkMagic, chunkVersion)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	samples := 0
	if len(cols) > 0 {
		samples = len(cols[0])
	}
	dst = binary.AppendUvarint(dst, uint64(samples))
	for _, name := range names {
		dst = binary.AppendUvarint(dst, uint64(len(name)))
		dst = append(dst, name...)
	}
	for _, col := range cols {
		if samples > 0 {
			dst = appendColumn(dst, col)
		}
	}
	return dst
}

// chunkReader walks a payload with bounds checks; every read error is
// sticky, so decode paths check once at the end of a section.
type chunkReader struct {
	buf []byte
	pos int
	err error
}

func (r *chunkReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *chunkReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("ftdc: truncated chunk at byte %d", r.pos)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

func (r *chunkReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("ftdc: bad varint at byte %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *chunkReader) str(n uint64) string {
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.pos) {
		r.fail("ftdc: string of %d bytes overruns chunk", n)
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

// decodeChunk decodes one chunk payload. Inputs are untrusted: every
// bound is checked and allocations are capped before they happen.
func decodeChunk(payload []byte) (Chunk, error) {
	if len(payload) > maxChunkBytes {
		return Chunk{}, fmt.Errorf("ftdc: chunk of %d bytes exceeds limit %d", len(payload), maxChunkBytes)
	}
	r := &chunkReader{buf: payload}
	if m := r.byte(); r.err == nil && m != chunkMagic {
		return Chunk{}, fmt.Errorf("ftdc: bad chunk magic 0x%02x", m)
	}
	if v := r.byte(); r.err == nil && (v < 1 || v > chunkVersion) {
		return Chunk{}, fmt.Errorf("ftdc: unsupported chunk version %d (speaking %d)", v, chunkVersion)
	}
	metrics := r.uvarint()
	samples := r.uvarint()
	if r.err != nil {
		return Chunk{}, r.err
	}
	if metrics == 0 || metrics > maxChunkMetrics {
		return Chunk{}, fmt.Errorf("ftdc: chunk claims %d metrics (limit %d)", metrics, maxChunkMetrics)
	}
	if samples > maxChunkSamplesLimit {
		return Chunk{}, fmt.Errorf("ftdc: chunk claims %d samples (limit %d)", samples, maxChunkSamplesLimit)
	}
	// Every metric costs at least one name-length byte, and every sample
	// at least one payload byte per metric unless zero-run-coded; the
	// loose guard below still rejects wildly lying headers before the
	// column allocation.
	if metrics > uint64(len(payload)) {
		return Chunk{}, fmt.Errorf("ftdc: %d metrics in a %d-byte chunk", metrics, len(payload))
	}
	c := Chunk{
		Names:   make([]string, metrics),
		Columns: make([][]int64, metrics),
	}
	for i := range c.Names {
		c.Names[i] = r.str(r.uvarint())
	}
	if r.err != nil {
		return Chunk{}, r.err
	}
	for i := range c.Columns {
		col, err := r.column(int(samples))
		if err != nil {
			return Chunk{}, err
		}
		c.Columns[i] = col
	}
	if r.pos != len(payload) {
		return Chunk{}, fmt.Errorf("ftdc: %d trailing bytes after chunk", len(payload)-r.pos)
	}
	return c, nil
}

// column decodes one metric column of n samples.
func (r *chunkReader) column(n int) ([]int64, error) {
	if n == 0 {
		return nil, nil
	}
	col := make([]int64, 0, n)
	v := unzigzag(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	col = append(col, v)
	delta := int64(0)
	for len(col) < n {
		dd := unzigzag(r.uvarint())
		if r.err != nil {
			return nil, r.err
		}
		if dd == 0 {
			run := r.uvarint() + 1
			if r.err != nil {
				return nil, r.err
			}
			if run > uint64(n-len(col)) {
				return nil, fmt.Errorf("ftdc: zero run of %d overruns column of %d", run, n)
			}
			for j := uint64(0); j < run; j++ {
				v += delta
				col = append(col, v)
			}
			continue
		}
		delta += dd
		v += delta
		col = append(col, v)
	}
	return col, nil
}
