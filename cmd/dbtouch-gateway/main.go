// Command dbtouch-gateway fronts a fleet of dbtouch-serve backends with
// one protocol-compatible address: clients speak /rpc and /stream to the
// gateway exactly as they would to a single server, and the gateway
// routes each session to a backend (rendezvous hashing plus an explicit
// pin table), health-checks the fleet, and makes backend failure
// invisible by resuming sessions from the shared -session-dir on a
// healthy backend before retrying the in-flight request.
//
// Usage:
//
//	dbtouch-gateway -addr :8070 \
//	    -backends http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// Every backend must run with the same -session-dir (a shared
// filesystem) for failover to work; without it, sessions on a dead
// backend are lost rather than migrated. See docs/operations.md,
// "Running a fleet".
//
// Endpoints:
//
//	POST /rpc       forwarded to the session's backend, with retry,
//	                backoff and failover-by-resume
//	GET  /stream    frame-aligned relay with resume-and-reattach
//	GET  /healthz   gateway readiness (ready iff >= 1 backend is)
//	GET  /gatewayz  JSON routing snapshot: breaker states, pins, counters
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dbtouch/internal/gateway"
	"dbtouch/internal/protocol"
)

func main() {
	addr := flag.String("addr", ":8070", "listen address")
	backends := flag.String("backends", "", "comma-separated dbtouch-serve roots to front (required), e.g. http://127.0.0.1:8081,http://127.0.0.1:8082")
	requestTimeout := flag.Duration("request-timeout", 0, "deadline for one forwarded /rpc attempt (0 = 30s)")
	healthInterval := flag.Duration("health-interval", 0, "active /healthz probe period (0 = 1s)")
	probeTimeout := flag.Duration("probe-timeout", 0, "deadline for one health probe (0 = the probe period)")
	failThreshold := flag.Int("fail-threshold", 0, "consecutive failures that trip a backend's breaker open (0 = 3)")
	successThreshold := flag.Int("success-threshold", 0, "consecutive half-open probe successes that close the breaker (0 = 2)")
	openCooldown := flag.Duration("open-cooldown", 0, "how long an open breaker waits before probing again (0 = 5s)")
	retryAttempts := flag.Int("retry-attempts", 0, "proxy-path retries after the first attempt (0 = 4)")
	retryBase := flag.Duration("retry-base", 0, "first retry's backoff ceiling (0 = 50ms; grows exponentially, full jitter)")
	retryCap := flag.Duration("retry-cap", 0, "backoff ceiling for any single retry (0 = 2s)")
	quiet := flag.Bool("quiet", false, "suppress routing state-transition logs")
	flag.Parse()

	if *backends == "" {
		fmt.Fprintln(os.Stderr, "dbtouch-gateway: -backends is required")
		os.Exit(1)
	}
	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	opts := gateway.Options{
		Backends:         list,
		RequestTimeout:   *requestTimeout,
		HealthInterval:   *healthInterval,
		ProbeTimeout:     *probeTimeout,
		FailThreshold:    *failThreshold,
		SuccessThreshold: *successThreshold,
		OpenCooldown:     *openCooldown,
		Retry: protocol.Backoff{
			Base:     *retryBase,
			Cap:      *retryCap,
			Attempts: *retryAttempts,
		},
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	g, err := gateway.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtouch-gateway:", err)
		os.Exit(1)
	}

	// The same HTTP hardening as dbtouch-serve, and the same reason
	// WriteTimeout stays 0: /stream responses are unbounded by design.
	srv := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    64 << 10,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dbtouch-gateway:", err)
		os.Exit(1)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		// Finish in-flight forwards briefly, then cut live streams.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		g.Close()
		os.Exit(0)
	}()

	fmt.Printf("dbtouch-gateway listening on %s, fronting %d backends (protocol v%d)\n",
		ln.Addr(), len(list), protocol.Version)
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "dbtouch-gateway:", err)
		os.Exit(1)
	}
}
