package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestColumnTypesRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		col  *Column
		want []Value
	}{
		{
			"ints",
			NewIntColumn("i", []int64{1, -2, 3}),
			[]Value{IntValue(1), IntValue(-2), IntValue(3)},
		},
		{
			"floats",
			NewFloatColumn("f", []float64{1.5, -2.25}),
			[]Value{FloatValue(1.5), FloatValue(-2.25)},
		},
		{
			"bools",
			NewBoolColumn("b", []bool{true, false, true}),
			[]Value{BoolValue(true), BoolValue(false), BoolValue(true)},
		},
		{
			"strings",
			NewStringColumn("s", []string{"x", "y", "x"}),
			[]Value{StringValue("x"), StringValue("y"), StringValue("x")},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.col.Len() != len(tc.want) {
				t.Fatalf("Len() = %d, want %d", tc.col.Len(), len(tc.want))
			}
			for i, want := range tc.want {
				if got := tc.col.Value(i); !got.Equal(want) {
					t.Errorf("Value(%d) = %v, want %v", i, got, want)
				}
			}
		})
	}
}

func TestColumnAppendAndSet(t *testing.T) {
	c := NewEmptyColumn("v", Int64)
	c.Append(IntValue(10))
	c.Append(FloatValue(2.9)) // coerces to int
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
	if got := c.Int(1); got != 2 {
		t.Fatalf("coerced append = %d, want 2", got)
	}
	c.Set(0, IntValue(7))
	if got := c.Int(0); got != 7 {
		t.Fatalf("Set/Int = %d, want 7", got)
	}
}

func TestColumnFloatCoercion(t *testing.T) {
	b := NewBoolColumn("b", []bool{true, false})
	if b.Float(0) != 1 || b.Float(1) != 0 {
		t.Fatalf("bool Float() = %v, %v; want 1, 0", b.Float(0), b.Float(1))
	}
	s := NewStringColumn("s", []string{"a", "b", "a"})
	if s.Float(2) != s.Float(0) {
		t.Fatal("equal strings should share dictionary codes")
	}
}

func TestColumnSlice(t *testing.T) {
	c := NewIntColumn("v", []int64{0, 1, 2, 3, 4})
	s, err := c.Slice(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Int(0) != 1 || s.Int(2) != 3 {
		t.Fatalf("Slice contents wrong: len=%d first=%d last=%d", s.Len(), s.Int(0), s.Int(2))
	}
	if _, err := c.Slice(3, 2); err == nil {
		t.Fatal("inverted slice bounds should error")
	}
	if _, err := c.Slice(0, 99); err == nil {
		t.Fatal("out-of-range slice should error")
	}
}

func TestColumnStrided(t *testing.T) {
	c := NewIntColumn("v", []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	s := c.Strided(0, 3)
	want := []int64{0, 3, 6, 9}
	if s.Len() != len(want) {
		t.Fatalf("Strided len = %d, want %d", s.Len(), len(want))
	}
	for i, w := range want {
		if s.Int(i) != w {
			t.Errorf("Strided[%d] = %d, want %d", i, s.Int(i), w)
		}
	}
	if c.Strided(0, 0).Len() != 0 {
		t.Fatal("zero stride should produce empty column")
	}
}

// Property: for any offset/stride, Strided picks exactly the values at
// offset + k*stride.
func TestStridedProperty(t *testing.T) {
	f := func(vals []int64, offsetRaw, strideRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		offset := int(offsetRaw) % len(vals)
		stride := int(strideRaw)%7 + 1
		c := NewIntColumn("v", vals)
		s := c.Strided(offset, stride)
		j := 0
		for i := offset; i < len(vals); i += stride {
			if s.Int(j) != vals[i] {
				return false
			}
			j++
		}
		return s.Len() == j
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColumnGather(t *testing.T) {
	c := NewFloatColumn("v", []float64{10, 20, 30})
	g := c.Gather([]int{2, 0, 99, -1})
	if g.Len() != 2 {
		t.Fatalf("Gather len = %d, want 2 (out-of-range skipped)", g.Len())
	}
	if g.Float(0) != 30 || g.Float(1) != 10 {
		t.Fatalf("Gather values = %v, %v", g.Float(0), g.Float(1))
	}
}

func TestColumnClone(t *testing.T) {
	c := NewStringColumn("s", []string{"a", "b"})
	cl := c.Clone()
	cl.Set(0, StringValue("z"))
	if c.Value(0).S != "a" {
		t.Fatal("Clone should not share storage with original")
	}
	if cl.Value(0).S != "z" {
		t.Fatal("Clone mutation lost")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{FloatValue(2.5), IntValue(2), 1},
		{StringValue("a"), StringValue("b"), -1},
		{StringValue("b"), StringValue("b"), 0},
		{BoolValue(true), BoolValue(false), 1},
		{StringValue("10"), IntValue(9), 1}, // numeric coercion
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); sign(got) != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want sign %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func sign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}

func TestValueAsFloat(t *testing.T) {
	if IntValue(3).AsFloat() != 3 {
		t.Fatal("int AsFloat")
	}
	if BoolValue(true).AsFloat() != 1 {
		t.Fatal("bool AsFloat")
	}
	if StringValue("2.5").AsFloat() != 2.5 {
		t.Fatal("numeric string AsFloat")
	}
	if StringValue("xyz").AsFloat() != 0 {
		t.Fatal("non-numeric string AsFloat should be 0")
	}
	if math.IsNaN(FloatValue(math.NaN()).AsFloat()) != true {
		t.Fatal("NaN should survive")
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatal("distinct strings share a code")
	}
	if again := d.Intern("alpha"); again != a {
		t.Fatal("re-interning changed the code")
	}
	if got := d.Lookup(a); got != "alpha" {
		t.Fatalf("Lookup = %q", got)
	}
	if got := d.Lookup(999); got != "" {
		t.Fatalf("unknown code Lookup = %q, want empty", got)
	}
	if _, ok := d.Code("gamma"); ok {
		t.Fatal("Code should not intern")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	cl := d.Clone()
	cl.Intern("gamma")
	if d.Len() != 2 {
		t.Fatal("Clone should be independent")
	}
}
