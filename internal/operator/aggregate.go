// Package operator implements dbTouch's incremental query operators. In a
// traditional kernel, operators pull tuples under the engine's control; in
// dbTouch every user touch pushes exactly one step of work through an
// operator (paper §2.3: the slide gesture is "equivalent to the next
// operation where an operator requests the next tuple to process", except
// the user triggers the next actions). Operators here are therefore
// incremental — they always have a current answer ready — and since the
// span-execution refactor each one absorbs work a *span* at a time: the
// tuple range a slide step swept arrives as one unit through the batch
// entry points (RunningAgg.AddSpan, predicate EvalSpan/selection vectors,
// IncrementalGroupBy.PushRange, SymmetricHashJoin.PushRange), with the
// tuple-at-a-time calls kept as the scalar reference path.
//
// Operator state is per-session: every exploration session owns its own
// aggregates, group tables and join state, so concurrent sessions never
// share operator instances (see internal/session).
package operator

import (
	"fmt"
	"math"
)

// AggKind selects an aggregation function.
type AggKind uint8

// Supported aggregates.
const (
	Count AggKind = iota
	Sum
	Avg
	Min
	Max
	Var
	Stddev
)

// String names the aggregate.
func (k AggKind) String() string {
	switch k {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "avg"
	case Min:
		return "min"
	case Max:
		return "max"
	case Var:
		return "var"
	case Stddev:
		return "stddev"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// ParseAggKind resolves an aggregate by name (case-sensitive SQL-ish).
func ParseAggKind(s string) (AggKind, error) {
	switch s {
	case "count", "COUNT":
		return Count, nil
	case "sum", "SUM":
		return Sum, nil
	case "avg", "AVG":
		return Avg, nil
	case "min", "MIN":
		return Min, nil
	case "max", "MAX":
		return Max, nil
	case "var", "VAR":
		return Var, nil
	case "stddev", "STDDEV":
		return Stddev, nil
	default:
		return 0, fmt.Errorf("operator: unknown aggregate %q", s)
	}
}

// FusableAgg reports whether kind's running state can absorb a fused
// filter+aggregate result through RunningAgg.AddSpan: count, sum, avg,
// min and max merge exactly from (n, sum, min, max); the Welford variance
// family is order-sensitive and must absorb values one at a time. The
// fusion dispatch (FuseFilterAgg, core's trySlideFused) consults this
// before routing a filtered slide through the fused kernels.
func FusableAgg(kind AggKind) bool {
	switch kind {
	case Count, Sum, Avg, Min, Max:
		return true
	default:
		return false
	}
}

// RunningAgg maintains a running aggregate that can absorb one value per
// touch and report the current answer at any time — the "running aggregate
// continuously updated" of paper §2.3. Variance uses Welford's online
// algorithm so a single pass stays numerically stable however long the
// gesture wanders.
type RunningAgg struct {
	kind AggKind
	n    int64
	sum  float64
	min  float64
	max  float64
	mean float64
	m2   float64
}

// NewRunningAgg returns an empty running aggregate of the given kind.
func NewRunningAgg(kind AggKind) *RunningAgg {
	return &RunningAgg{kind: kind, min: math.Inf(1), max: math.Inf(-1)}
}

// Kind reports the aggregate function.
func (a *RunningAgg) Kind() AggKind { return a.kind }

// Add absorbs one value.
func (a *RunningAgg) Add(v float64) {
	a.n++
	a.sum += v
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
	delta := v - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (v - a.mean)
}

// AddN absorbs a pre-aggregated group of n values with the given sum,
// minimum and maximum (used when feeding from coarser sample levels).
// Variance absorbs the group mean n times, a standard approximation for
// merged sketches.
func (a *RunningAgg) AddN(n int64, sum, min, max float64) {
	if n <= 0 {
		return
	}
	groupMean := sum / float64(n)
	for i := int64(0); i < n; i++ {
		a.Add(groupMean)
	}
	if min < a.min {
		a.min = min
	}
	if max > a.max {
		a.max = max
	}
}

// NeedsPerValue reports whether the aggregate's answer depends on the
// exact per-value update order (the Welford variance family). Such
// aggregates must absorb spans value by value (AddRangeTo); the others
// merge a whole span exactly via AddSpan.
func (a *RunningAgg) NeedsPerValue() bool { return a.kind == Var || a.kind == Stddev }

// AddSpan merges a span of n values with the given sum, minimum and
// maximum in O(1). For count/sum/avg/min/max the merged answer is exactly
// what n sequential Add calls would report (the span sum is accumulated
// with one addition, so integer-valued data stays bit-identical); the
// Welford mean/m2 state is not maintained, so variance-family aggregates
// must use per-value absorption instead (see NeedsPerValue).
func (a *RunningAgg) AddSpan(n int64, sum, min, max float64) {
	if n <= 0 {
		return
	}
	a.n += n
	a.sum += sum
	if min < a.min {
		a.min = min
	}
	if max > a.max {
		a.max = max
	}
}

// N reports how many values have been absorbed.
func (a *RunningAgg) N() int64 { return a.n }

// Value reports the current aggregate answer. Aggregates over zero values
// report NaN for min/max/avg/var and 0 for count/sum.
func (a *RunningAgg) Value() float64 {
	switch a.kind {
	case Count:
		return float64(a.n)
	case Sum:
		return a.sum
	case Avg:
		if a.n == 0 {
			return math.NaN()
		}
		return a.sum / float64(a.n)
	case Min:
		if a.n == 0 {
			return math.NaN()
		}
		return a.min
	case Max:
		if a.n == 0 {
			return math.NaN()
		}
		return a.max
	case Var:
		if a.n < 2 {
			return math.NaN()
		}
		return a.m2 / float64(a.n-1)
	case Stddev:
		if a.n < 2 {
			return math.NaN()
		}
		return math.Sqrt(a.m2 / float64(a.n-1))
	default:
		return math.NaN()
	}
}

// Reset clears the aggregate for reuse.
func (a *RunningAgg) Reset() {
	*a = RunningAgg{kind: a.kind, min: math.Inf(1), max: math.Inf(-1)}
}
