package session_test

import (
	"errors"
	"fmt"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/session"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// sensorTable builds a small deterministic table shared by the examples.
func sensorTable() *storage.Matrix {
	data := make([]int64, 20_000)
	for i := range data {
		data[i] = int64(i % 100)
	}
	m, err := storage.NewMatrix("readings", storage.NewIntColumn("temp", data))
	if err != nil {
		panic(err)
	}
	return m
}

// slide synthesizes a 1-second top-to-bottom slide over the example
// object frame, starting at the session's current virtual time.
func slide(s *session.Session) []touchos.TouchEvent {
	var synth gesture.Synth
	start := s.Kernel().Clock().Now()
	return synth.Slide(
		touchos.Point{X: 3, Y: 2.02},
		touchos.Point{X: 3, Y: 11.98},
		start, time.Second,
	)
}

// ExampleManager shows the multi-user shape: one manager owns the shared
// immutable storage (catalog + sample hierarchies); each user gets a
// session with its own virtual clock and result stream, and started
// sessions run concurrently on the manager's bounded work-stealing
// scheduler — parked at zero goroutines whenever their queues drain.
func ExampleManager() {
	mgr := session.NewManager(core.DefaultConfig())
	mgr.Catalog().Register(sensorTable())

	for _, user := range []string{"alice", "bob"} {
		s, err := mgr.Create(user)
		if err != nil {
			panic(err)
		}
		if _, err := s.CreateColumnObject("readings", "temp", touchos.NewRect(2, 2, 2, 10)); err != nil {
			panic(err)
		}
		s.Start() // hand the session to the shared scheduler
	}

	// Route one gesture to each session; batches run concurrently.
	for _, user := range mgr.Sessions() {
		s, _ := mgr.Get(user)
		if _, err := mgr.Dispatch(user, slide(s)); err != nil {
			panic(err)
		}
	}
	for _, user := range []string{"alice", "bob"} {
		s, _ := mgr.Get(user)
		s.Drain() // synchronize before reading results
		fmt.Printf("%s: %d summaries in %v of virtual session time\n",
			user, len(s.Results()), s.Kernel().Clock().Now().Round(time.Millisecond))
	}
	mgr.Close()
	// Output:
	// alice: 16 summaries in 1.138s of virtual session time
	// bob: 16 summaries in 1.138s of virtual session time
}

// ExampleSession shows the synchronous (single-goroutine) driving mode:
// before Start, batches run on the caller's goroutine and return their
// results directly — handy for tests and sequential replay.
func ExampleSession() {
	mgr := session.NewManager(core.DefaultConfig())
	mgr.Catalog().Register(sensorTable())

	s, err := mgr.Create("solo")
	if err != nil {
		panic(err)
	}
	obj, err := s.CreateColumnObject("readings", "temp", touchos.NewRect(2, 2, 2, 10))
	if err != nil {
		panic(err)
	}
	a := obj.Actions()
	a.Mode = core.ModeAggregate
	obj.SetActions(a)

	results, err := s.Apply(slide(s))
	if err != nil {
		panic(err)
	}
	last := results[len(results)-1]
	fmt.Printf("running aggregate absorbed %d sample entries\n", last.N)
	mgr.Evict("solo")
	// Output:
	// running aggregate absorbed 82 sample entries
}

// ExampleManager_workers pins the scheduler pool size. The pool is
// shared by every started session and fixed at first start — two
// workers here serve four users (and would serve ten thousand: parked
// sessions hold no goroutine, so goroutines stay O(workers), never
// O(sessions)).
func ExampleManager_workers() {
	mgr := session.NewManager(core.DefaultConfig())
	mgr.Catalog().Register(sensorTable())
	if err := mgr.SetWorkers(2); err != nil { // before the first Start
		panic(err)
	}

	users := []string{"alice", "bob", "carol", "dave"}
	for _, user := range users {
		s, err := mgr.Create(user)
		if err != nil {
			panic(err)
		}
		if _, err := s.CreateColumnObject("readings", "temp", touchos.NewRect(2, 2, 2, 10)); err != nil {
			panic(err)
		}
		s.Start()
	}
	for _, user := range users {
		s, _ := mgr.Get(user)
		if err := s.Enqueue(slide(s)); err != nil {
			panic(err)
		}
	}
	for _, user := range users {
		s, _ := mgr.Get(user)
		s.Drain()
	}
	st := mgr.Stats()
	fmt.Printf("%d workers served %d sessions\n", st.Workers, st.Live)
	for _, user := range users {
		s, _ := mgr.Get(user)
		fmt.Printf("%s: %d summaries\n", user, len(s.Results()))
	}
	mgr.Close()
	// Output:
	// 2 workers served 4 sessions
	// alice: 16 summaries
	// bob: 16 summaries
	// carol: 16 summaries
	// dave: 16 summaries
}

// ExampleManager_backpressure documents the admission contract: past
// the configured caps the manager rejects work with the typed
// ErrOverloaded instead of queueing it, and admits again once load
// drops. The same rejection travels the wire protocol as HTTP 503 with
// a Retry-After hint.
func ExampleManager_backpressure() {
	mgr := session.NewManager(core.DefaultConfig())
	mgr.Catalog().Register(sensorTable())
	mgr.SetAdmissionCap(2) // hard ceiling: reject, don't evict

	for _, user := range []string{"alice", "bob"} {
		if _, err := mgr.Create(user); err != nil {
			panic(err)
		}
	}
	_, err := mgr.Create("carol")
	fmt.Println("overloaded:", errors.Is(err, session.ErrOverloaded))
	fmt.Println(err)

	// The caller backs off; capacity returns when a session leaves.
	mgr.Evict("alice")
	_, err = mgr.Create("carol")
	fmt.Println("after eviction:", err)
	mgr.Close()
	// Output:
	// overloaded: true
	// session "carol": overloaded (2 live sessions at admission cap 2)
	// after eviction: <nil>
}
