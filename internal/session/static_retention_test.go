package session

import (
	"fmt"
	"testing"
	"time"

	"dbtouch/internal/core"
	"dbtouch/internal/gesture"
	"dbtouch/internal/operator"
	"dbtouch/internal/storage"
	"dbtouch/internal/touchos"
)

// Week-long static-session retention audit (ROADMAP item 5, frozen-table
// half of TestLiveRetentionKeepsStateBounded): a session exploring an
// immutable table for a virtual week — a million tap gestures spaced
// ~600ms apart — must hold only bounded state. No ingestion, no
// compaction: every growth here would be a leak in the kernel's own
// bookkeeping (retained results, counters, group tables, histograms).
func TestStaticRetentionWeekLongSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("million-gesture sweep")
	}
	const (
		gestures = 1_000_000
		spacing  = 600 * time.Millisecond // x 1M taps ≈ 6.9 virtual days
		perBatch = 2000
		keyCard  = 8
	)
	m := NewManager(core.DefaultConfig())
	defer m.Close()
	const rows = 50_000
	ts := make([]int64, rows)
	keys := make([]string, rows)
	vals := make([]int64, rows)
	for i := 0; i < rows; i++ {
		ts[i] = int64(i)
		keys[i] = fmt.Sprintf("k%d", i%keyCard)
		vals[i] = int64(i % 997)
	}
	mx, err := storage.NewMatrix("events",
		storage.NewIntColumn("ts", ts),
		storage.NewStringColumn("key", keys),
		storage.NewIntColumn("value", vals),
	)
	if err != nil {
		t.Fatal(err)
	}
	m.Catalog().Register(mx)

	// Same two-session shape as the live audit: a scanner aggregating a
	// column and a grouper folding the table by key.
	sa, err := m.Create("scanner")
	if err != nil {
		t.Fatal(err)
	}
	oa, err := sa.CreateColumnObject("events", "value", equivFrame)
	if err != nil {
		t.Fatal(err)
	}
	oa.SetActions(core.Actions{Mode: core.ModeAggregate, Agg: operator.Sum})
	sb, err := m.Create("grouper")
	if err != nil {
		t.Fatal(err)
	}
	ob, err := sb.CreateTableObject("events", equivFrame)
	if err != nil {
		t.Fatal(err)
	}
	ob.SetActions(core.Actions{Mode: core.ModeScan, Group: &core.GroupSpec{KeyCol: 1, ValCol: 2, Agg: operator.Sum}})

	// Taps march down the object in a deterministic cycle; applied in
	// batches so the test stays fast while each tap remains its own
	// gesture (the synthesizer separates them on the virtual clock).
	var synth gesture.Synth
	x := equivFrame.Origin.X + equivFrame.Size.W/2
	var cur time.Duration
	done := 0
	for done < gestures {
		n := perBatch
		if gestures-done < n {
			n = gestures - done
		}
		var events []touchos.TouchEvent
		for i := 0; i < n; i++ {
			frac := 0.05 + 0.9*float64((done+i)%97)/97
			y := equivFrame.Origin.Y + frac*equivFrame.Size.H
			events = append(events, synth.Tap(touchos.Point{X: x, Y: y}, cur)...)
			cur += spacing
		}
		// The scanner takes every tap; the grouper rides along at a tenth
		// of the rate (a week of occasional regrouping).
		if _, err := m.Dispatch("scanner", events); err != nil {
			t.Fatal(err)
		}
		if done%(10*perBatch) == 0 {
			if _, err := m.Dispatch("grouper", events[:len(events)/10]); err != nil {
				t.Fatal(err)
			}
		}
		done += n
	}
	if week := 6 * 24 * time.Hour; cur < week {
		t.Fatalf("virtual sweep only covered %v, want at least %v", cur, week)
	}

	for _, id := range []string{"scanner", "grouper"} {
		s, _ := m.Get(id)
		if err := s.Do(func(k *core.Kernel) error {
			emitted := k.Counters().Get("results.emitted")
			if emitted == 0 {
				return fmt.Errorf("%s emitted no results", id)
			}
			// Fade pruning bounds the retained window regardless of how
			// many results a week produced. Pruning runs between applied
			// batches, so the window is at most one batch of taps plus
			// whatever was still visible — never a function of the total.
			if retained := len(k.Results()); retained > perBatch+64 || int64(retained) >= emitted/2 {
				return fmt.Errorf("%s retains %d of %d results — fade pruning broke", id, retained, emitted)
			}
			// The counter namespace is a fixed vocabulary: a million
			// gestures must not mint new names.
			if n := len(k.Counters().Names()); n > 40 {
				return fmt.Errorf("%s counter namespace grew to %d entries", id, n)
			}
			// The touch-latency histogram is fixed-bucket: observations
			// accumulate, state does not.
			if h := k.TouchLatency(); h.Count() == 0 {
				return fmt.Errorf("%s recorded no touch latencies", id)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Group-table cardinality is the key domain, not the touch count.
	var groups int
	if err := sb.Do(func(k *core.Kernel) error {
		o, err := k.Object(ob.ID())
		if err != nil {
			return err
		}
		groups = len(o.Groups())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if groups > keyCard {
		t.Fatalf("group table holds %d groups for a %d-key domain", groups, keyCard)
	}

	// The scanner's virtual clock really lived through the week: gestures
	// advanced it past the spacing sum's order of magnitude.
	if now := sa.Kernel().Clock().Now(); now < 6*24*time.Hour {
		t.Fatalf("scanner clock at %v after a week-long sweep", now)
	}
}
