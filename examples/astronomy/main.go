// Astronomy: the paper's second motivating scenario — "an astronomer
// wants to browse parts of the sky to look for interesting effects".
//
// A sky-survey table (right ascension, declination, brightness) hides a
// transient: a cluster of anomalously bright observations. The session
// demonstrates table objects (tap to peek tuples, vertical slides over a
// fat rectangle), dragging a column out of the table, and the rotate
// gesture flipping the physical layout.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"dbtouch"
)

func main() {
	const n = 2_000_000
	rng := rand.New(rand.NewSource(11))
	ra := make([]float64, n)
	dec := make([]float64, n)
	mag := make([]float64, n)
	for i := range ra {
		ra[i] = rng.Float64() * 360
		dec[i] = rng.Float64()*180 - 90
		mag[i] = 14 + rng.NormFloat64()*1.5 // apparent magnitude
		// A transient brightening in one patch of the survey sequence.
		if i > 1_200_000 && i < 1_215_000 {
			mag[i] -= 6 // lower magnitude = much brighter
		}
	}

	db := dbtouch.Open()
	db.NewTable("survey").
		Float("ra", ra).
		Float("dec", dec).
		Float("mag", mag).
		MustCreate()

	// The whole survey as a fat rectangle.
	table, err := db.NewTableObject("survey", 2, 2, 6, 12)
	if err != nil {
		panic(err)
	}

	// Tap to discover the schema — no catalog browsing needed.
	fmt.Println("tap the table: a full tuple pops up (schema discovery)")
	for _, r := range table.Tap(0.25) {
		if r.Kind == dbtouch.TuplePeek {
			fmt.Printf("  tuple %d: ra=%s dec=%s mag=%s\n",
				r.TupleID, r.Tuple[0], r.Tuple[1], r.Tuple[2])
		}
	}

	// Drag the magnitude column out of the table into its own object
	// (paper §2.8) and sweep it for the transient.
	fmt.Println("\ndrag 'mag' out of the table, sweep it with min-summaries")
	magObj, err := db.ProjectColumnOut(table, "mag", 10, 2, 2, 10)
	if err != nil {
		panic(err)
	}
	magObj.Summarize(dbtouch.Min, 100)
	results := magObj.Slide(3 * time.Second)
	best, bestAt := 99.0, 0
	for _, r := range results {
		if r.Agg < best {
			best, bestAt = r.Agg, r.TupleID
		}
	}
	fmt.Printf("  %d summaries; brightest window min=%.1f mag near observation %d\n",
		len(results), best, bestAt)

	// Zoom and localize the transient.
	magObj.ZoomIn(2)
	magObj.MoveTo(10, 2)
	frac := float64(bestAt) / float64(n)
	var lo, hi int
	first := true
	for _, r := range magObj.SlideRange(frac-0.02, frac+0.02, 2*time.Second) {
		if r.Agg < 11 {
			if first {
				lo, first = r.WindowLo, false
			}
			hi = r.WindowHi
		}
	}
	fmt.Printf("  transient localized to observations [%d, %d] (truth: [1200000, 1215000])\n", lo, hi)

	// Rotate the survey table: its physical layout flips column-major →
	// row-major incrementally, sample-first (paper §2.8). Idle time
	// completes the conversion in the background.
	fmt.Println("\nrotate the table: physical layout flips, converting incrementally")
	table.RotateQuarter()
	converting, progress := table.Converting()
	fmt.Printf("  converting=%v progress=%.0f%%\n", converting, progress*100)
	for i := 0; converting && i < 100; i++ {
		db.Idle(200 * time.Millisecond) // user looks at the screen
		converting, progress = table.Converting()
	}
	fmt.Printf("  done: layout=%v after %v of background work\n",
		table.Inner().Matrix().Layout(), db.Now().Round(time.Millisecond))
}
