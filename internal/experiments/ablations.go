package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"dbtouch"
	"dbtouch/internal/metrics"
)

// SampleHierarchy (Ext-1) compares sample-based storage against feeding
// every touch from base data (§2.6 "Sample-based Storage"): same 2 s
// slide, measuring entries, values read, bytes moved from cold storage
// and mean per-touch latency.
func SampleHierarchy(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"storage", "entries", "values-read", "cold-blocks", "bytes-read", "mean-touch",
	}}
	for _, useSamples := range []bool{true, false} {
		db, obj := s.newDB(10, ablationConfig(func(c *dbtouch.Config) {
			c.UseSamples = useSamples
			c.Prefetch = false
		}))
		results := obj.Slide(2 * time.Second)
		stats := obj.Inner().Hierarchy().TotalStats()
		name := "base-data-only"
		if useSamples {
			name = "sample-hierarchy"
		}
		t.AddRow(name,
			fmt.Sprint(countKind(results, dbtouch.SummaryValue)),
			fmt.Sprint(stats.ValuesRead),
			fmt.Sprint(stats.ColdFetches),
			fmt.Sprint(stats.BytesRead),
			db.TouchLatency().Mean().String(),
		)
	}
	return t
}

// Prefetch (Ext-2) measures §2.6 "Prefetching Data": a slide pauses
// mid-gesture for 2 s; with prefetching the kernel spends the pause
// warming the blocks the extrapolated gesture will reach, so the resumed
// half of the slide finds data warm.
func Prefetch(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"prefetch", "entries", "cold-on-touch-path", "prefetched-blocks", "mean-touch", "p99-touch",
	}}
	for _, enabled := range []bool{true, false} {
		db, obj := s.newDB(10, ablationConfig(func(c *dbtouch.Config) {
			c.Prefetch = enabled
			c.UseSamples = false // isolate the mechanism at base level
		}))
		results := obj.SlideWithPause(3*time.Second, 0.5, 2*time.Second)
		stats := obj.Inner().Hierarchy().TotalStats()
		name := "off"
		if enabled {
			name = "on"
		}
		t.AddRow(name,
			fmt.Sprint(countKind(results, dbtouch.SummaryValue)),
			fmt.Sprint(stats.ColdFetches),
			fmt.Sprint(stats.Prefetched),
			db.TouchLatency().Mean().String(),
			db.TouchLatency().Quantile(0.99).String(),
		)
	}
	return t
}

// Caching (Ext-3) measures §2.6 "Caching Data" with a back-and-forth
// slide (two round trips) under a tight warm budget, comparing the
// gesture-aware policy against LRU and against no caching.
func Caching(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"policy", "entries", "cold-fetches", "warm-hits", "evictions", "mean-touch",
	}}
	for _, policy := range []string{"gesture-aware", "lru", "none"} {
		db, obj := s.newDB(10, ablationConfig(func(c *dbtouch.Config) {
			c.Prefetch = false
			c.UseSamples = false
			c.IO.WarmBudget = 24
		}), dbtouch.WithCachePolicy(policy))
		results := obj.SlideBackAndForth(1500*time.Millisecond, 2)
		stats := obj.Inner().Hierarchy().TotalStats()
		t.AddRow(policy,
			fmt.Sprint(countKind(results, dbtouch.SummaryValue)),
			fmt.Sprint(stats.ColdFetches),
			fmt.Sprint(stats.WarmHits),
			fmt.Sprint(stats.Evictions),
			db.TouchLatency().Mean().String(),
		)
	}
	return t
}

// SummaryK (Ext-4) sweeps the interactive-summaries half-window k
// (§2.7): each touch inspects 2k+1 entries, trading per-touch cost for
// data coverage.
func SummaryK(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"k", "entries", "values-read", "values-per-touch", "mean-touch",
	}}
	for _, k := range []int{0, 1, 5, 10, 50, 100, 500} {
		db, obj := s.newDB(10, ablationConfig(func(c *dbtouch.Config) {
			c.UseSamples = false
			c.Prefetch = false
		}))
		obj.Summarize(dbtouch.Avg, k)
		results := obj.Slide(2 * time.Second)
		stats := obj.Inner().Hierarchy().TotalStats()
		entries := countKind(results, dbtouch.SummaryValue)
		perTouch := float64(0)
		if entries > 0 {
			perTouch = float64(stats.ValuesRead) / float64(entries)
		}
		t.AddRow(fmt.Sprint(k),
			fmt.Sprint(entries),
			fmt.Sprint(stats.ValuesRead),
			fmt.Sprintf("%.1f", perTouch),
			db.TouchLatency().Mean().String(),
		)
	}
	return t
}

// AdaptiveOptimizer (Ext-7) measures §2.9 "Optimization": a slide crosses
// data whose predicate selectivities flip halfway, so the best conjunct
// order changes mid-gesture. Adaptive reordering cuts predicate
// evaluations versus the user-declared order.
func AdaptiveOptimizer(s Scale) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"optimizer", "touches-passed", "touches-filtered", "predicate-evals", "reorders",
	}}
	rows := s.Rows
	// Column a is selective (rarely passes) in the first half; column b
	// is selective in the second half. Values are pseudo-random per row
	// so the touch-position quantization grid cannot alias with them.
	rng := rand.New(rand.NewSource(17))
	a := make([]int64, rows)
	b := make([]int64, rows)
	for i := 0; i < rows; i++ {
		if i < rows/2 {
			a[i] = int64(rng.Intn(100)) // a < 5 passes 5%
			b[i] = 0                    // b < 5 always passes
		} else {
			a[i] = 0
			b[i] = int64(rng.Intn(100))
		}
	}
	v := make([]int64, rows)
	for i := range v {
		v[i] = int64(i)
	}
	for _, adaptive := range []bool{true, false} {
		db := dbtouch.Open(ablationConfig(func(c *dbtouch.Config) {
			c.AdaptiveOpt = adaptive
			c.UseSamples = false
			c.Prefetch = false
		}))
		db.NewTable("t").Int("v", v).Int("a", a).Int("b", b).MustCreate()
		obj, err := db.NewColumnObject("t", "v", 2, 2, 2, 10)
		if err != nil {
			panic(err)
		}
		obj.Scan()
		// Declared order: b first (bad for the first half).
		if err := obj.Where("b", "<", 5); err != nil {
			panic(err)
		}
		if err := obj.Where("a", "<", 5); err != nil {
			panic(err)
		}
		results := obj.Slide(4 * time.Second)
		evals := int64(0)
		for _, col := range []string{"a", "b"} {
			idx := obj.Inner().Matrix().ColumnIndex(col)
			tr := obj.Inner().TrackerFor(idx)
			if tr != nil {
				evals += tr.Stats().ValuesRead
			}
		}
		name := "fixed-order"
		if adaptive {
			name = "adaptive"
		}
		t.AddRow(name,
			fmt.Sprint(countKind(results, dbtouch.ScanValue)),
			fmt.Sprint(db.Kernel().Counters().Get("touch.filtered")),
			fmt.Sprint(evals),
			fmt.Sprint(obj.Inner().OptimizerReorders()),
		)
	}
	return t
}
