package storage

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "id:INT,temp:FLOAT,host:STRING,ok:BOOL\n1,20.5,web,true\n2,21.0,db,false\n"
	m, err := ReadCSV("readings", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 2 || m.NumCols() != 4 {
		t.Fatalf("dims = %dx%d", m.NumRows(), m.NumCols())
	}
	v, _ := m.At(1, 2)
	if v.S != "db" {
		t.Fatalf("cell = %v", v)
	}
	b, _ := m.At(0, 3)
	if !b.B {
		t.Fatalf("bool cell = %v", b)
	}
}

func TestReadCSVDefaultsToFloat(t *testing.T) {
	m, err := ReadCSV("t", strings.NewReader("x\n1.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema()[0].Type != Float64 {
		t.Fatalf("bare header type = %v, want FLOAT", m.Schema()[0].Type)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"bad type", "x:BLOB\n1\n"},
		{"bad int", "x:INT\nnope\n"},
		{"bad float", "x:FLOAT\nnope\n"},
		{"bad bool", "x:BOOL\nmaybe\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV("t", strings.NewReader(tc.in)); err == nil {
				t.Fatalf("want error for %q", tc.in)
			}
		})
	}
}

func TestCSVRoundTrip(t *testing.T) {
	m, err := NewMatrix("t",
		NewIntColumn("i", []int64{5, -7}),
		NewStringColumn("s", []string{"hello, world", "line"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(m, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < m.NumRows(); r++ {
		for c := 0; c < m.NumCols(); c++ {
			a, _ := m.At(r, c)
			b, _ := back.At(r, c)
			if !a.Equal(b) {
				t.Errorf("cell (%d,%d): %v != %v", r, c, a, b)
			}
		}
	}
}

func TestBinaryRoundTripColumnMajor(t *testing.T) {
	m, err := NewMatrix("bin",
		NewIntColumn("i", []int64{1, 2, 3}),
		NewFloatColumn("f", []float64{0.25, -1, 42}),
		NewBoolColumn("b", []bool{true, false, true}),
		NewStringColumn("s", []string{"x", "yz", "x"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	assertBinaryRoundTrip(t, m)
}

func TestBinaryRoundTripRowMajor(t *testing.T) {
	m := NewRowMajorMatrix("bin", []ColumnMeta{
		{Name: "i", Type: Int64}, {Name: "s", Type: String},
	})
	_ = m.AppendRow([]Value{IntValue(9), StringValue("alpha")})
	_ = m.AppendRow([]Value{IntValue(-3), StringValue("beta")})
	assertBinaryRoundTrip(t, m)
}

func assertBinaryRoundTrip(t *testing.T, m *Matrix) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(m, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != m.Name() || back.Layout() != m.Layout() ||
		back.NumRows() != m.NumRows() || back.NumCols() != m.NumCols() {
		t.Fatalf("shape mismatch: %s/%v %dx%d", back.Name(), back.Layout(), back.NumRows(), back.NumCols())
	}
	for r := 0; r < m.NumRows(); r++ {
		for c := 0; c < m.NumCols(); c++ {
			a, _ := m.At(r, c)
			b, _ := back.At(r, c)
			if !a.Equal(b) {
				t.Errorf("cell (%d,%d): %v != %v", r, c, a, b)
			}
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a dbtouch file")); err == nil {
		t.Fatal("garbage should be rejected")
	}
	if _, err := ReadBinary(strings.NewReader("DBT1")); err == nil {
		t.Fatal("truncated file should be rejected")
	}
}

func TestParseType(t *testing.T) {
	for in, want := range map[string]Type{
		"INT": Int64, "int64": Int64, "FLOAT": Float64,
		"BOOL": Bool, "STRING": String, "text": String,
	} {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseType("DECIMAL"); err == nil {
		t.Fatal("unknown type should error")
	}
}
