//go:build arm64 && !purego

package cpu

func init() {
	// Advanced SIMD is mandatory in the arm64 base profile Go targets,
	// so there is nothing to probe.
	ARM64.HasASIMD = true
}
