// Package faultnet is an in-process TCP fault injector — a
// toxiproxy-style proxy the chaos suites put between the gateway and
// its backends to make the network misbehave on demand. A Proxy
// listens on a loopback port, forwards every accepted connection to
// one upstream address, and applies the currently-set Toxics to the
// bytes flowing through:
//
//	Latency/Jitter  added one-way delay per forwarded chunk
//	BandwidthBPS    throughput cap per direction
//	Tear            writes split into tiny chunks, so frame and HTTP
//	                message boundaries land mid-write on the peer
//	CutAfter       	hard connection reset (RST, not FIN) once a
//	                connection has carried this many bytes — combined
//	                with Tear this is the torn-mid-frame write
//	Blackhole       bytes are read and dropped; peers block forever
//	ResetOnDial     accepted connections are reset immediately
//
// Toxics are runtime-mutable (Set) and apply to live connections at
// their next chunk; ResetAll resets every live connection at once —
// the "network partition heals/breaks" event in a fault schedule. The
// zero Toxics value forwards cleanly, so a Proxy with no toxics set is
// byte-transparent (the self-test suite pins that, plus each toxic's
// observable effect, against a plain echo server).
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Toxics is one fault configuration. Fields compose; the zero value is
// a transparent proxy.
type Toxics struct {
	// Latency delays each forwarded chunk (both directions); Jitter
	// adds a uniform random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// BandwidthBPS caps each direction's throughput in bytes/second
	// (0 = unlimited).
	BandwidthBPS int
	// Tear forwards writes in chunks of at most tearChunk bytes, so the
	// peer observes message boundaries torn mid-frame.
	Tear bool
	// CutAfter hard-resets (RST) a connection once its total forwarded
	// bytes (both directions) reach this count (0 = never). Each
	// connection counts independently from the moment the toxic is set.
	CutAfter int64
	// Blackhole reads and discards everything: connections stay open
	// but no byte ever arrives, the slow-failure mode timeouts exist
	// for.
	Blackhole bool
	// ResetOnDial resets every newly accepted connection immediately —
	// the backend looks dead at the TCP level while its process lives.
	ResetOnDial bool
}

// tearChunk is the max forwarded chunk size under the Tear toxic:
// small enough to split any wire frame (binary frame headers are 4+
// bytes, JSON lines tens), large enough to keep tests fast.
const tearChunk = 7

// Proxy is one listener forwarding to one upstream, with mutable
// toxics. Safe for concurrent use.
type Proxy struct {
	upstream string
	ln       net.Listener

	mu     sync.Mutex
	toxics Toxics
	conns  map[net.Conn]struct{}
	closed bool

	// bytes counts total forwarded bytes (both directions, all
	// connections) — test observability.
	bytes atomic.Int64

	wg sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to upstream
// ("host:port"). Close releases it.
func New(upstream string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{upstream: upstream, ln: ln, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address — what clients dial instead
// of the upstream.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Upstream returns the address the proxy forwards to.
func (p *Proxy) Upstream() string { return p.upstream }

// Set replaces the active toxics; live connections observe the change
// at their next forwarded chunk.
func (p *Proxy) Set(t Toxics) {
	p.mu.Lock()
	p.toxics = t
	p.mu.Unlock()
}

// Toxics returns the active configuration.
func (p *Proxy) Toxics() Toxics {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.toxics
}

// Bytes reports total bytes forwarded through the proxy.
func (p *Proxy) Bytes() int64 { return p.bytes.Load() }

// ResetAll hard-resets every live connection: in-flight requests and
// streams die with a connection reset, as if a switch port flapped.
func (p *Proxy) ResetAll() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		rst(c)
	}
}

// Close stops the listener and resets every live connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.ResetAll()
	p.wg.Wait()
	return err
}

// rst force-closes a connection with an RST (linger 0) rather than a
// clean FIN — the peer sees "connection reset by peer", not EOF.
func rst(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.Toxics().ResetOnDial {
			rst(client)
			continue
		}
		upstream, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
		if err != nil {
			rst(client)
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			rst(client)
			rst(upstream)
			return
		}
		p.conns[client] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()

		// budget is the connection's shared CutAfter countdown (both
		// directions); counting starts when the toxic is armed.
		budget := new(atomic.Int64)
		budget.Store(-1)
		p.wg.Add(2)
		go p.pump(client, upstream, budget)
		go p.pump(upstream, client, budget)
	}
}

// drop deregisters and resets both ends of a connection pair.
func (p *Proxy) drop(a, b net.Conn) {
	p.mu.Lock()
	delete(p.conns, a)
	delete(p.conns, b)
	p.mu.Unlock()
	rst(a)
	rst(b)
}

// pump forwards src→dst applying the active toxics per chunk. Each
// direction runs its own pump; the shared budget implements CutAfter
// across both.
func (p *Proxy) pump(src, dst net.Conn, budget *atomic.Int64) {
	defer p.wg.Done()
	defer p.drop(src, dst)
	buf := make([]byte, 32<<10)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.forward(dst, buf[:n], budget, rng) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// forward applies toxics to one chunk. Returns false when the
// connection died (cut, blackhole teardown, or write failure).
func (p *Proxy) forward(dst net.Conn, chunk []byte, budget *atomic.Int64, rng *rand.Rand) bool {
	t := p.Toxics()
	if t.Blackhole {
		// Swallow silently; the connection stays open and idle.
		return true
	}
	// Arm (or disarm) the shared cut budget when the toxic changes.
	if t.CutAfter > 0 {
		budget.CompareAndSwap(-1, t.CutAfter)
	} else {
		budget.Store(-1)
	}
	if t.Latency > 0 || t.Jitter > 0 {
		d := t.Latency
		if t.Jitter > 0 {
			d += time.Duration(rng.Int63n(int64(t.Jitter)))
		}
		time.Sleep(d)
	}
	if t.BandwidthBPS > 0 {
		time.Sleep(time.Duration(float64(len(chunk)) / float64(t.BandwidthBPS) * float64(time.Second)))
	}
	for len(chunk) > 0 {
		piece := chunk
		if t.Tear && len(piece) > tearChunk {
			piece = piece[:tearChunk]
		}
		// CutAfter: spend budget; on exhaustion forward the partial
		// piece that fits, then reset — tearing the frame mid-write.
		if b := budget.Load(); b >= 0 {
			if b == 0 {
				return false // deferred drop resets both ends
			}
			if int64(len(piece)) > b {
				piece = piece[:b]
			}
			budget.Add(-int64(len(piece)))
		}
		if _, err := dst.Write(piece); err != nil {
			return false
		}
		p.bytes.Add(int64(len(piece)))
		chunk = chunk[len(piece):]
	}
	return true
}
