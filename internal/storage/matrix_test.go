package storage

import (
	"testing"
	"testing/quick"
)

func testMatrix(t *testing.T) *Matrix {
	t.Helper()
	m, err := NewMatrix("t",
		NewIntColumn("id", []int64{0, 1, 2, 3}),
		NewFloatColumn("v", []float64{0.5, 1.5, 2.5, 3.5}),
		NewStringColumn("tag", []string{"a", "b", "a", "c"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix("empty"); err == nil {
		t.Fatal("matrix with no columns should error")
	}
	_, err := NewMatrix("ragged",
		NewIntColumn("a", []int64{1, 2}),
		NewIntColumn("b", []int64{1}),
	)
	if err == nil {
		t.Fatal("ragged columns should error")
	}
}

func TestMatrixAt(t *testing.T) {
	m := testMatrix(t)
	v, err := m.At(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "b" {
		t.Fatalf("At(1,2) = %v, want b", v)
	}
	if _, err := m.At(99, 0); err == nil {
		t.Fatal("out-of-range row should error")
	}
	if _, err := m.At(0, 99); err == nil {
		t.Fatal("out-of-range col should error")
	}
}

func TestMatrixRow(t *testing.T) {
	m := testMatrix(t)
	row, err := m.Row(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 3 || row[0].I != 2 || row[1].F != 2.5 || row[2].S != "a" {
		t.Fatalf("Row(2) = %v", row)
	}
}

func TestMatrixColumnIndex(t *testing.T) {
	m := testMatrix(t)
	if got := m.ColumnIndex("v"); got != 1 {
		t.Fatalf("ColumnIndex(v) = %d", got)
	}
	if got := m.ColumnIndex("nope"); got != -1 {
		t.Fatalf("ColumnIndex(nope) = %d, want -1", got)
	}
}

func TestRowMajorAppendAndAt(t *testing.T) {
	m := NewRowMajorMatrix("r", []ColumnMeta{
		{Name: "i", Type: Int64}, {Name: "s", Type: String}, {Name: "b", Type: Bool},
	})
	rows := [][]Value{
		{IntValue(10), StringValue("x"), BoolValue(true)},
		{IntValue(-5), StringValue("y"), BoolValue(false)},
		{IntValue(7), StringValue("x"), BoolValue(true)},
	}
	for _, r := range rows {
		if err := m.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if m.NumRows() != 3 {
		t.Fatalf("NumRows = %d", m.NumRows())
	}
	for r, want := range rows {
		for c, w := range want {
			got, err := m.At(r, c)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(w) {
				t.Errorf("At(%d,%d) = %v, want %v", r, c, got, w)
			}
		}
	}
	if err := m.AppendRow([]Value{IntValue(1)}); err == nil {
		t.Fatal("short row should error")
	}
}

func TestColumnAccessOnRowMajorErrors(t *testing.T) {
	m := NewRowMajorMatrix("r", []ColumnMeta{{Name: "i", Type: Int64}})
	_ = m.AppendRow([]Value{IntValue(1)})
	if _, err := m.Column(0); err == nil {
		t.Fatal("Column on row-major should error (gather instead)")
	}
	g, err := m.GatherColumn(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Int(0) != 1 {
		t.Fatal("GatherColumn wrong value")
	}
}

// Property: converting to the other layout and back preserves every cell.
func TestLayoutRoundTripProperty(t *testing.T) {
	f := func(ints []int64, seed uint8) bool {
		if len(ints) == 0 {
			ints = []int64{int64(seed)}
		}
		floats := make([]float64, len(ints))
		strs := make([]string, len(ints))
		for i, v := range ints {
			floats[i] = float64(v) / 3
			strs[i] = string(rune('a' + (byte(v)+seed)%5))
		}
		m, err := NewMatrix("t",
			NewIntColumn("i", ints),
			NewFloatColumn("f", floats),
			NewStringColumn("s", strs),
		)
		if err != nil {
			return false
		}
		rm, err := m.ToLayout(RowMajor)
		if err != nil {
			return false
		}
		back, err := rm.ToLayout(ColumnMajor)
		if err != nil {
			return false
		}
		for r := 0; r < m.NumRows(); r++ {
			for c := 0; c < m.NumCols(); c++ {
				a, err1 := m.At(r, c)
				b, err2 := back.At(r, c)
				if err1 != nil || err2 != nil || !a.Equal(b) {
					return false
				}
			}
		}
		return back.Layout() == ColumnMajor && rm.Layout() == RowMajor
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConvertRangeChunked(t *testing.T) {
	m := testMatrix(t)
	dst := NewRowMajorMatrix(m.Name(), m.Schema())
	if err := m.ConvertRange(dst, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.ConvertRange(dst, 2, 4); err != nil {
		t.Fatal(err)
	}
	if dst.NumRows() != 4 {
		t.Fatalf("chunked conversion rows = %d", dst.NumRows())
	}
	v, err := dst.At(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.S != "c" {
		t.Fatalf("converted cell = %v, want c", v)
	}
	if err := m.ConvertRange(dst, 3, 2); err == nil {
		t.Fatal("inverted range should error")
	}
}

func TestProject(t *testing.T) {
	m := testMatrix(t)
	p, err := m.Project(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 1 || p.NumRows() != 4 {
		t.Fatalf("Project dims = %dx%d", p.NumRows(), p.NumCols())
	}
	v, _ := p.At(2, 0)
	if v.F != 2.5 {
		t.Fatalf("projected value = %v", v)
	}
	// Projection is a copy: mutating it must not touch the original.
	col, _ := p.Column(0)
	col.Set(0, FloatValue(99))
	orig, _ := m.At(0, 1)
	if orig.F != 0.5 {
		t.Fatal("Project should deep-copy")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	m := testMatrix(t)
	c.Register(m)
	got, err := c.Get("t")
	if err != nil || got != m {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := c.Get("missing"); err == nil {
		t.Fatal("missing matrix should error")
	}
	if names := c.List(); len(names) != 1 || names[0] != "t" {
		t.Fatalf("List = %v", names)
	}
	if !c.Drop("t") || c.Len() != 0 {
		t.Fatal("Drop failed")
	}
	if c.Drop("t") {
		t.Fatal("double Drop should report false")
	}
}
