package dbtouch_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"dbtouch"
	"dbtouch/internal/experiments"
)

// Benchmarks regenerate every figure of the paper plus the ablations of
// DESIGN.md. Each bench reports the figure's headline quantity as custom
// metrics (virtual time, entries, etc.) alongside wall-clock cost of the
// simulation itself. Run the full paper-scale sweep with
//
//	go test -bench=. -benchmem
//
// or print the full series/tables with cmd/dbtouch-bench.
func benchScale() experiments.Scale {
	if testing.Short() {
		return experiments.Small()
	}
	// Paper scale is 10^7; benches use 10^6 so `go test -bench=.`
	// finishes in seconds. cmd/dbtouch-bench runs the full 10^7.
	return experiments.Scale{Rows: 1_000_000, ContestRows: 200_000, TableRows: 100_000}
}

// BenchmarkFig4aGestureSpeed regenerates Figure 4(a): entries returned
// vs gesture completion time (0.5s..4s slide over a 10cm column object).
func BenchmarkFig4aGestureSpeed(b *testing.B) {
	s := benchScale()
	var entries float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig4aGestureSpeed(s)
		entries = series.Points[len(series.Points)-1].Y
	}
	b.ReportMetric(entries, "entries@4s")
}

// BenchmarkFig4bObjectSize regenerates Figure 4(b): entries returned vs
// object size under progressive zoom-in at constant slide speed.
func BenchmarkFig4bObjectSize(b *testing.B) {
	s := benchScale()
	var entries float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig4bObjectSize(s)
		entries = series.Points[len(series.Points)-1].Y
	}
	b.ReportMetric(entries, "entries@20cm")
}

// BenchmarkContest regenerates the Appendix A exploration contest
// (dbTouch vs SQL DBMS time-to-insight on planted patterns).
func BenchmarkContest(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Contest(s)
	}
}

// BenchmarkSampleHierarchy regenerates Ext-1 (§2.6 sample-based storage).
func BenchmarkSampleHierarchy(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.SampleHierarchy(s)
	}
}

// BenchmarkPrefetch regenerates Ext-2 (§2.6 prefetching during pauses).
func BenchmarkPrefetch(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Prefetch(s)
	}
}

// BenchmarkCaching regenerates Ext-3 (§2.6 gesture-aware caching).
func BenchmarkCaching(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.Caching(s)
	}
}

// BenchmarkSummaryK regenerates Ext-4 (§2.7 interactive summaries sweep).
func BenchmarkSummaryK(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.SummaryK(s)
	}
}

// BenchmarkRotateLayout regenerates Ext-5 (§2.8 incremental layout
// change).
func BenchmarkRotateLayout(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.RotateLayout(s)
	}
}

// BenchmarkJoinNonBlocking regenerates Ext-6 (§2.9 non-blocking joins).
func BenchmarkJoinNonBlocking(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.JoinNonBlocking(s)
	}
}

// BenchmarkAdaptiveOptimizer regenerates Ext-7 (§2.9 on-the-fly
// optimization).
func BenchmarkAdaptiveOptimizer(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.AdaptiveOptimizer(s)
	}
}

// BenchmarkRemote regenerates Ext-8 (§4 remote processing).
func BenchmarkRemote(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.RemoteProcessing(s)
	}
}

// BenchmarkZoomGranularity regenerates Ext-9 (§2.5 zoom granularity).
func BenchmarkZoomGranularity(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.ZoomGranularity(s)
	}
}

// BenchmarkIndexedSlide regenerates Ext-10 (§2.6 per-sample indexing).
func BenchmarkIndexedSlide(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		experiments.IndexedSlide(s)
	}
}

// BenchmarkConcurrentSessions measures the session layer: N sessions run
// the identical gesture script over one shared table on the bounded
// work-stealing scheduler, each with its own virtual clock, over shared
// immutable sample hierarchies. Two throughput metrics, two claims:
// touches/vsec (aggregate over virtual session time) is linear in N by
// construction and states that sessions never interfere on the
// virtual-time axis; touches/wallsec (and ns/op) carry the contention
// signal — a shared lock sneaking onto the span path degrades them, and
// on a multi-core host they scale with real parallelism. Before timing,
// each group's per-session result streams are asserted byte-identical to
// sequential execution of the same script.
func BenchmarkConcurrentSessions(b *testing.B) {
	s := benchScale()
	seq := experiments.RunSequentialSessions(s.Rows, 1)
	if len(seq.Streams[0]) == 0 {
		b.Fatal("sequential reference produced no results")
	}
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			// Fixture outside the timer: data, matrix and the shared
			// sample hierarchy build once; iterations time session
			// creation + gesture execution only.
			fx := experiments.NewSessionBench(s.Rows)
			defer fx.Close()
			check := fx.Run(n, true)
			for i, stream := range check.Streams {
				if !reflect.DeepEqual(stream, seq.Streams[0]) {
					b.Fatalf("session %d stream differs from sequential execution", i)
				}
			}
			b.ResetTimer()
			var r experiments.ConcurrentSessionsResult
			for i := 0; i < b.N; i++ {
				r = fx.Run(n, true)
			}
			b.ReportMetric(r.AggThroughput, "touches/vsec")
			b.ReportMetric(r.WallThroughput, "touches/wallsec")
			b.ReportMetric(float64(r.Touches), "touches")
		})
	}
}

// BenchmarkTouchPipeline measures the raw kernel hot path: one slide
// touch through hit-test, recognition, mapping and a k=10 summary.
func BenchmarkTouchPipeline(b *testing.B) {
	db := dbtouch.Open()
	db.NewTable("t").Int("v", benchInts(1_000_000)).MustCreate()
	obj, err := db.NewColumnObject("t", "v", 2, 2, 2, 10)
	if err != nil {
		b.Fatal(err)
	}
	obj.Summarize(dbtouch.Avg, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj.Slide(500 * time.Millisecond)
	}
	b.ReportMetric(float64(db.TouchLatency().Count())/float64(b.N), "touches/op")
}

func benchInts(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}
