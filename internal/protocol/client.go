package protocol

import (
	"context"
	"fmt"
	"io"
	"time"

	"dbtouch/internal/gesture"
)

// Convenience calls wrapping Client.Do, one per protocol op.

// Open creates a session on the server.
func (c *Client) Open(session string) error {
	_, err := c.Do(Request{Op: OpOpen, Session: session})
	return err
}

// Evict removes a session on the server.
func (c *Client) Evict(session string) error {
	_, err := c.Do(Request{Op: OpEvict, Session: session})
	return err
}

// CreateColumn places one column of a table on the session's screen and
// binds it to name, returning the kernel object id.
func (c *Client) CreateColumn(session, name, table, column string, x, y, w, h float64) (int, error) {
	resp, err := c.Do(Request{
		Op: OpCreate, Session: session, Object: name,
		Create: &CreateSpec{Table: table, Column: column, X: x, Y: y, W: w, H: h},
	})
	return resp.ObjectID, err
}

// CreateTable places a whole table on the session's screen under name.
func (c *Client) CreateTable(session, name, table string, x, y, w, h float64) (int, error) {
	resp, err := c.Do(Request{
		Op: OpCreate, Session: session, Object: name,
		Create: &CreateSpec{Table: table, X: x, Y: y, W: w, H: h},
	})
	return resp.ObjectID, err
}

// Configure applies a touch-configuration delta to a named object.
func (c *Client) Configure(session, name string, spec ActionsSpec) error {
	_, err := c.Do(Request{Op: OpConfigure, Session: session, Object: name, Actions: &spec})
	return err
}

// Perform executes a gesture description against a named object and
// returns the frames it produced. The description's Target is stamped
// server-side from the name.
func (c *Client) Perform(session, name string, g gesture.Gesture) ([]ResultFrame, error) {
	resp, err := c.Do(Request{Op: OpPerform, Session: session, Object: name, Gesture: &g})
	return resp.Results, err
}

// Append appends rows to a live table on the server and returns the new
// snapshot epoch and total row count. Cells are coerced server-side
// (JSON numbers arrive as float64; integer columns coerce them back).
// A rate-limited append surfaces as an overloaded error with Retry-After.
func (c *Client) Append(table string, rows [][]any) (epoch uint64, total int, err error) {
	resp, err := c.Do(Request{Op: OpAppend, Table: table, Rows: rows})
	if err != nil {
		return 0, 0, err
	}
	return resp.Epoch, resp.Rows, nil
}

// Idle advances the session's virtual time with no touch activity.
func (c *Client) Idle(session string, d time.Duration) error {
	_, err := c.Do(Request{Op: OpIdle, Session: session, Idle: d})
	return err
}

// Stats snapshots the server's session manager.
func (c *Client) Stats() (StatsFrame, error) {
	resp, err := c.Do(Request{Op: OpStats})
	if err != nil {
		return StatsFrame{}, err
	}
	if resp.Stats == nil {
		return StatsFrame{}, fmt.Errorf("protocol: stats response carried no stats")
	}
	return *resp.Stats, nil
}

// Stream subscribes to a session's live results and invokes fn for each
// frame until fn returns false, the context is cancelled, or the server
// closes the stream. buffer sizes the server-side ring (0 = default).
// The client offers the binary columnar encoding and falls back to v1
// NDJSON if the server predates it — either side can be older than the
// other, and fn sees identical frames regardless of which encoding won.
func (c *Client) Stream(ctx context.Context, session string, buffer int, fn func(ResultFrame) bool) error {
	return c.streamWith(ctx, session, buffer, BinaryContentType+", "+NDJSONContentType, fn)
}

// StreamNDJSON is Stream pinned to the v1 NDJSON encoding — what a
// pre-binary client sends, and the record/replay ground truth.
func (c *Client) StreamNDJSON(ctx context.Context, session string, buffer int, fn func(ResultFrame) bool) error {
	return c.streamWith(ctx, session, buffer, NDJSONContentType, fn)
}

func (c *Client) streamWith(ctx context.Context, session string, buffer int, accept string, fn func(ResultFrame) bool) error {
	fs, err := c.OpenStream(ctx, session, buffer, accept)
	if err != nil {
		return err
	}
	defer fs.Close()
	for {
		frame, err := fs.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("protocol: stream frame: %w", err)
		}
		if !fn(frame) {
			return nil
		}
	}
}
