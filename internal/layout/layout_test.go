package layout

import (
	"testing"
	"testing/quick"
	"time"

	"dbtouch/internal/storage"
	"dbtouch/internal/vclock"
)

func buildRowMajor(t *testing.T, rows int) *storage.Matrix {
	t.Helper()
	m := storage.NewRowMajorMatrix("t", []storage.ColumnMeta{
		{Name: "a", Type: storage.Int64},
		{Name: "b", Type: storage.Float64},
		{Name: "s", Type: storage.String},
	})
	for r := 0; r < rows; r++ {
		err := m.AppendRow([]storage.Value{
			storage.IntValue(int64(r)),
			storage.FloatValue(float64(r) / 2),
			storage.StringValue(string(rune('a' + r%3))),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestConversionRun(t *testing.T) {
	src := buildRowMajor(t, 100)
	clock := vclock.New()
	conv, err := NewConversion(src, clock, 32)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Result().Layout() != storage.ColumnMajor {
		t.Fatal("target layout should be the opposite of row-major")
	}
	if err := conv.Run(); err != nil {
		t.Fatal(err)
	}
	if !conv.Done() || conv.Progress() != 1 {
		t.Fatal("conversion incomplete after Run")
	}
	dst := conv.Result()
	for r := 0; r < 100; r++ {
		for c := 0; c < 3; c++ {
			a, _ := src.At(r, c)
			b, errB := dst.At(r, c)
			if errB != nil || !a.Equal(b) {
				t.Fatalf("cell (%d,%d): %v vs %v", r, c, a, b)
			}
		}
	}
	wantCost := time.Duration(100) * CostPerRow
	if clock.Now() != wantCost {
		t.Fatalf("clock = %v, want %v", clock.Now(), wantCost)
	}
}

func TestConversionColumnToRow(t *testing.T) {
	src, err := storage.NewMatrix("cm",
		storage.NewIntColumn("x", []int64{1, 2, 3}),
		storage.NewIntColumn("y", []int64{4, 5, 6}),
	)
	if err != nil {
		t.Fatal(err)
	}
	conv, err := NewConversion(src, vclock.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Result().Layout() != storage.RowMajor {
		t.Fatal("column-major source should convert to row-major")
	}
	if err := conv.Run(); err != nil {
		t.Fatal(err)
	}
	v, _ := conv.Result().At(2, 1)
	if v.I != 6 {
		t.Fatalf("converted cell = %v", v)
	}
}

func TestStepChunks(t *testing.T) {
	src := buildRowMajor(t, 100)
	conv, err := NewConversion(src, vclock.New(), 30)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := conv.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
	}
	if steps != 4 { // 30+30+30+10
		t.Fatalf("steps = %d, want 4", steps)
	}
	// Further steps are no-ops.
	done, err := conv.Step()
	if err != nil || !done {
		t.Fatal("post-completion Step should report done")
	}
}

func TestRunFor(t *testing.T) {
	src := buildRowMajor(t, 10000)
	clock := vclock.New()
	conv, err := NewConversion(src, clock, 100)
	if err != nil {
		t.Fatal(err)
	}
	budget := 500 * time.Microsecond // 100-row chunks cost 20µs each
	used, err := conv.RunFor(budget)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Done() {
		t.Fatal("tiny budget should not complete a 10k-row conversion")
	}
	if used < budget/2 || used > 2*budget {
		t.Fatalf("used = %v, want ≈%v", used, budget)
	}
	if conv.Progress() <= 0 {
		t.Fatal("no progress made")
	}
}

func TestSampleFirstPreview(t *testing.T) {
	src := buildRowMajor(t, 1000)
	clock := vclock.New()
	conv, err := NewConversion(src, clock, 100)
	if err != nil {
		t.Fatal(err)
	}
	preview, err := conv.SampleFirst(100)
	if err != nil {
		t.Fatal(err)
	}
	if preview.NumRows() != 10 {
		t.Fatalf("preview rows = %d, want 10", preview.NumRows())
	}
	if preview.Layout() != storage.ColumnMajor {
		t.Fatal("preview must use the target layout")
	}
	// Preview row k is source row k*100.
	v, _ := preview.At(3, 0)
	if v.I != 300 {
		t.Fatalf("preview cell = %v, want 300", v)
	}
	if conv.Preview() != preview {
		t.Fatal("Preview accessor mismatch")
	}
	// The full conversion still runs to completion independently.
	if err := conv.Run(); err != nil {
		t.Fatal(err)
	}
	if conv.Result().NumRows() != 1000 {
		t.Fatal("full conversion rows wrong")
	}
}

func TestSampleFirstValidation(t *testing.T) {
	conv, err := NewConversion(buildRowMajor(t, 10), vclock.New(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conv.SampleFirst(1); err == nil {
		t.Fatal("stride 1 should be rejected")
	}
}

func TestNewConversionNilSource(t *testing.T) {
	if _, err := NewConversion(nil, vclock.New(), 0); err == nil {
		t.Fatal("nil source should error")
	}
}

// Property: converting row-major → column-major preserves all cells for
// arbitrary int data.
func TestConversionPreservesDataProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		m := storage.NewRowMajorMatrix("p", []storage.ColumnMeta{
			{Name: "v", Type: storage.Int64},
			{Name: "w", Type: storage.Int64},
		})
		for _, v := range vals {
			if err := m.AppendRow([]storage.Value{storage.IntValue(v), storage.IntValue(-v)}); err != nil {
				return false
			}
		}
		conv, err := NewConversion(m, vclock.New(), 3)
		if err != nil {
			return false
		}
		if err := conv.Run(); err != nil {
			return false
		}
		dst := conv.Result()
		for r, v := range vals {
			a, err1 := dst.At(r, 0)
			b, err2 := dst.At(r, 1)
			if err1 != nil || err2 != nil || a.I != v || b.I != -v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
