// Package mapping translates touch locations into tuple identifiers — the
// key step of a dbTouch system (paper §2.4 "From Touch to Tuple
// Identifiers"). The translation is the Rule of Three: with touch location
// t, object size o, and n total tuples, the identifier is id = n·t/o.
//
// The package also models touch granularity (§2.5): a visual object of a
// few centimeters can only register a bounded number of distinct touch
// positions, so each object size admits a bounded number of addressable
// tuples; zooming in raises that bound.
package mapping

import (
	"errors"
	"fmt"

	"dbtouch/internal/touchos"
)

// TouchResolutionPerCm is the number of distinct touch positions the
// digitizer resolves per centimeter. Capacitive panels resolve finger
// centroids far more finely than a finger is wide; the effective limit for
// deliberate pointing is around 20 positions/cm.
const TouchResolutionPerCm = 20.0

// ErrEmptyObject reports a mapping against an object with no tuples.
var ErrEmptyObject = errors.New("mapping: data object has no tuples")

// ErrDegenerateView reports a view with zero extent along the mapped axis.
var ErrDegenerateView = errors.New("mapping: view has zero size along the data axis")

// TupleID applies the Rule of Three: the relative location t within object
// extent o selects tuple id = n·t/o, clamped into [0, n).
func TupleID(t, o float64, n int) (int, error) {
	if n <= 0 {
		return 0, ErrEmptyObject
	}
	if o <= 0 {
		return 0, ErrDegenerateView
	}
	id := int(float64(n) * t / o)
	if id < 0 {
		id = 0
	}
	if id >= n {
		id = n - 1
	}
	return id, nil
}

// ObjectMap translates local touch coordinates on one data-object view to
// tuple/attribute identifiers.
type ObjectMap struct {
	// Rows is the tuple count of the underlying matrix.
	Rows int
	// Cols is the attribute count (1 for a single-column object).
	Cols int
	// Granularity coarsens addressing: ids snap to multiples of
	// Granularity. 1 (or 0) means full resolution. The paper lets users
	// vary "how many tuples correspond to each touch" on demand.
	Granularity int
	// ResolutionPerCm overrides the digitizer pointing resolution; zero
	// selects TouchResolutionPerCm.
	ResolutionPerCm float64
}

func (m ObjectMap) resolution() float64 {
	if m.ResolutionPerCm > 0 {
		return m.ResolutionPerCm
	}
	return TouchResolutionPerCm
}

// Positions reports how many distinct touch positions the object registers
// along an axis of the given extent — the physical bound on addressable
// tuples for that object size (paper §2.5 "Touching Samples").
func (m ObjectMap) Positions(extent float64) int {
	p := int(extent * m.resolution())
	if p < 1 {
		p = 1
	}
	return p
}

// AddressableTuples reports how many distinct tuples a slide over the full
// extent can touch: bounded both by the tuple count and by the physical
// position count.
func (m ObjectMap) AddressableTuples(extent float64) int {
	p := m.Positions(extent)
	rows := m.effectiveRows()
	if p < rows {
		return p
	}
	return rows
}

func (m ObjectMap) effectiveRows() int {
	g := m.Granularity
	if g <= 1 {
		return m.Rows
	}
	return (m.Rows + g - 1) / g
}

// RowAt maps a local Y coordinate within a view of the given local size to
// a tuple identifier. The location is first quantized to the digitizer's
// position grid, then mapped by the Rule of Three, then snapped to the
// granularity grid.
func (m ObjectMap) RowAt(local touchos.Point, size touchos.Size) (int, error) {
	if m.Rows <= 0 {
		return 0, ErrEmptyObject
	}
	if size.H <= 0 {
		return 0, ErrDegenerateView
	}
	positions := m.Positions(size.H)
	// Quantize to the digitizer grid.
	p := int(local.Y / size.H * float64(positions))
	if p < 0 {
		p = 0
	}
	if p >= positions {
		p = positions - 1
	}
	// Rule of Three over the quantized grid.
	id := int(float64(m.Rows) * (float64(p) + 0.5) / float64(positions))
	if id >= m.Rows {
		id = m.Rows - 1
	}
	if g := m.Granularity; g > 1 {
		id = (id / g) * g
	}
	return id, nil
}

// ColAt maps a local X coordinate to an attribute index for table objects:
// "the tuple identifier is determined via the height, while the attribute
// seen is determined by the relative width of the touch location" (§2.4).
func (m ObjectMap) ColAt(local touchos.Point, size touchos.Size) (int, error) {
	if m.Cols <= 0 {
		return 0, ErrEmptyObject
	}
	if size.W <= 0 {
		return 0, ErrDegenerateView
	}
	c := int(local.X / size.W * float64(m.Cols))
	if c < 0 {
		c = 0
	}
	if c >= m.Cols {
		c = m.Cols - 1
	}
	return c, nil
}

// Cell maps a local point to (row, col) for 2-D table objects.
func (m ObjectMap) Cell(local touchos.Point, size touchos.Size) (row, col int, err error) {
	row, err = m.RowAt(local, size)
	if err != nil {
		return 0, 0, err
	}
	col, err = m.ColAt(local, size)
	if err != nil {
		return 0, 0, err
	}
	return row, col, nil
}

// RowOnView maps a screen-coordinate touch on view v to a tuple id,
// handling rotation via the view's local coordinate system.
func (m ObjectMap) RowOnView(v *touchos.View, screen touchos.Point) (int, error) {
	return m.RowAt(v.FromScreen(screen), v.LocalSize())
}

// CellOnView maps a screen-coordinate touch on a table view to (row, col).
func (m ObjectMap) CellOnView(v *touchos.View, screen touchos.Point) (row, col int, err error) {
	return m.Cell(v.FromScreen(screen), v.LocalSize())
}

// Validate reports configuration errors up front.
func (m ObjectMap) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return fmt.Errorf("mapping: negative dimensions %dx%d", m.Rows, m.Cols)
	}
	if m.Granularity < 0 {
		return fmt.Errorf("mapping: negative granularity %d", m.Granularity)
	}
	return nil
}
